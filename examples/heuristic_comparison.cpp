// Head-to-head of all eight scheduling algorithms on one workload - a small-
// scale interactive version of the paper's Figs. 4-6.
//
//   ./heuristic_comparison [--scenario=paper/static-n200] [--nodes=128]
//                          [--workflows=3] [--hours=36] [--csv]
#include <iostream>

#include "exp/reporters.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace dpjit;
  const auto cli = util::Config::from_args(argc, argv);

  // Any registered scenario works as the common workload for the head-to-head
  // (e.g. --scenario=tail/heavy-tailed-loads compares under heavy tails).
  const auto scenario = cli.get_string("scenario", "paper/static-n200");
  exp::ExperimentConfig base = exp::scenario_registry().at(scenario).config();
  base.nodes = static_cast<int>(cli.get_int("nodes", 128));
  base.workflows_per_node = static_cast<int>(cli.get_int("workflows", 3));
  base.seed = static_cast<std::uint64_t>(cli.get_int("seed", 3));
  base.system.horizon_s = cli.get_double("hours", 36.0) * 3600.0;

  std::cout << "comparing the paper's eight algorithms on " << base.nodes << " peers, "
            << base.workflows_per_node << " workflows/node (scenario " << scenario << ")\n\n";

  const auto results = exp::run_sweep(exp::across_algorithms(base));

  exp::print_summary_table(std::cout, results);
  std::cout << "\naverage finish-time over time (Fig. 5 shape):\n";
  exp::print_time_series(std::cout, results, "act");
  std::cout << "\naverage efficiency over time (Fig. 6 shape):\n";
  exp::print_time_series(std::cout, results, "ae");

  if (cli.get_bool("csv", false)) {
    std::cout << "\n--- CSV (throughput) ---\n";
    exp::write_time_series_csv(std::cout, results, "throughput");
  }
  if (cli.get_bool("json", false)) {
    std::cout << "\n--- JSON (full results) ---\n";
    exp::write_results_json(std::cout, results);
  }
  return 0;
}
