// Churn resilience demo (paper Section IV.B, dynamic environment).
//
// Runs the same workload under increasing dynamic factors, with and without
// the failed-task rescheduling extension (the paper's future work), and shows
// how throughput degrades while finished workflows keep stable completion
// times - and how rescheduling recovers the lost throughput.
//
//   ./churn_resilience [--nodes=200] [--hours=18]
#include <iostream>

#include "exp/reporters.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "util/config.hpp"
#include "util/table_printer.hpp"

int main(int argc, char** argv) {
  using namespace dpjit;
  const auto cli = util::Config::from_args(argc, argv);

  exp::ExperimentConfig base;
  base.nodes = static_cast<int>(cli.get_int("nodes", 200));
  base.workflows_per_node = static_cast<int>(cli.get_int("workflows", 3));
  base.algorithm = cli.get_string("algorithm", "dsmf");
  base.seed = static_cast<std::uint64_t>(cli.get_int("seed", 11));
  base.system.horizon_s = cli.get_double("hours", 18.0) * 3600.0;

  // The dynamic environments come from the scenario registry; "" is the
  // static base. The correlated-waves scenario shows what a flash outage
  // every 4th interval does on top of df=0.1.
  const auto& registry = exp::scenario_registry();
  std::vector<exp::ExperimentConfig> configs;
  std::vector<std::string> labels;
  for (const char* name :
       {"", "paper/dynamic-df10", "paper/dynamic-df20", "paper/dynamic-df40"}) {
    for (bool resched : {false, true}) {
      if (*name == '\0' && resched) continue;  // rescheduling is a no-op without churn
      exp::ExperimentConfig cfg = *name == '\0' ? base : registry.at(name).apply(base);
      cfg.nodes = base.nodes;  // keep the interactive scale, not the scenario's
      cfg.reschedule = resched;
      configs.push_back(cfg);
      labels.push_back("df=" + util::TablePrinter::fmt(cfg.dynamic_factor, 2) +
                       (resched ? "+resched" : ""));
    }
  }
  {
    exp::ExperimentConfig cfg = registry.at("churn/correlated-waves").apply(base);
    cfg.nodes = base.nodes;
    configs.push_back(cfg);
    labels.push_back("df=0.10+waves");
  }

  std::cout << "churn resilience: " << base.nodes << " peers (" << base.nodes / 2
            << " stable homes), algorithm=" << base.algorithm << "\n\n";
  const auto results = exp::run_sweep(configs);

  util::TablePrinter table(
      {"scenario", "finished", "submitted", "ACT(s)", "AE", "tasks_failed", "rescheduled"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    table.add_row({labels[i], std::to_string(r.workflows_finished),
                   std::to_string(r.workflows_submitted), util::TablePrinter::fmt(r.act, 6),
                   util::TablePrinter::fmt(r.ae, 4), std::to_string(r.tasks_failed),
                   std::to_string(r.tasks_rescheduled)});
  }
  table.print(std::cout);

  std::cout << "\nthroughput over time:\n";
  exp::print_time_series(std::cout, results, "throughput", labels);
  return 0;
}
