// Hotspot analysis: where does each scheduling heuristic actually put the
// work? Runs the same workload under two algorithms with tracing enabled and
// compares node-level utilization, hotspot intensity and Jain's fairness -
// the node-level view behind the paper's hotspot-mitigation argument
// (Section III.D).
//
//   ./hotspot_analysis [--scenario=paper/static-n200] [--nodes=48]
//                      [--workflows=3] [--a=dsmf] [--b=dheft]
#include <iostream>

#include "exp/scenario.hpp"
#include "exp/trace_analysis.hpp"
#include "exp/workload_factory.hpp"
#include "util/config.hpp"

namespace {

dpjit::exp::TraceSummary run_traced(const dpjit::exp::ExperimentConfig& cfg, bool print) {
  dpjit::exp::World world(cfg);
  world.system().trace().enable(true);
  world.run();
  if (print) {
    dpjit::exp::print_trace_report(std::cout, world.system().trace(), cfg.system.horizon_s, 8);
  }
  return dpjit::exp::summarize_trace(world.system().trace(), cfg.system.horizon_s);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dpjit;
  const auto cli = util::Config::from_args(argc, argv);

  // The workload shape comes from a registered scenario (the heavy-tailed and
  // mixed-template scenarios give very different hotspot pictures).
  exp::ExperimentConfig cfg =
      exp::scenario_registry().at(cli.get_string("scenario", "paper/static-n200")).config();
  cfg.nodes = static_cast<int>(cli.get_int("nodes", 48));
  cfg.workflows_per_node = static_cast<int>(cli.get_int("workflows", 3));
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 23));

  const std::string algo_a = cli.get_string("a", "dsmf");
  const std::string algo_b = cli.get_string("b", "dheft");

  std::cout << "=== " << algo_a << " ===\n";
  cfg.algorithm = algo_a;
  const auto a = run_traced(cfg, true);

  std::cout << "\n=== " << algo_b << " ===\n";
  cfg.algorithm = algo_b;
  const auto b = run_traced(cfg, true);

  std::cout << "\ncomparison (" << algo_a << " vs " << algo_b << "):\n"
            << "  hotspot utilization: " << a.max_utilization * 100 << "% vs "
            << b.max_utilization * 100 << "%\n"
            << "  busy-time fairness : " << a.busy_fairness << " vs " << b.busy_fairness
            << " (1 = perfectly balanced)\n"
            << "  mean queue wait    : " << a.mean_queue_wait_s << " s vs "
            << b.mean_queue_wait_s << " s\n";
  return 0;
}
