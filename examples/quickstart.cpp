// Quickstart: build a small P2P grid, submit a handful of random scientific
// workflows, schedule them with DSMF and print what happened.
//
//   ./quickstart [--scenario=paper/static-n200] [--nodes=64] [--workflows=3]
//                [--algorithm=dsmf] [--seed=7]
#include <iostream>

#include "exp/reporters.hpp"
#include "exp/scenario.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  const auto cli = dpjit::util::Config::from_args(argc, argv);

  // Start from a registered scenario (see `scenario_runner --list`), then
  // shrink to an interactive scale.
  const auto scenario = cli.get_string("scenario", "paper/static-n200");
  dpjit::exp::ExperimentConfig cfg = dpjit::exp::scenario_registry().at(scenario).config();
  cfg.nodes = static_cast<int>(cli.get_int("nodes", 64));
  cfg.workflows_per_node = static_cast<int>(cli.get_int("workflows", 3));
  cfg.algorithm = cli.get_string("algorithm", "dsmf");
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  cfg.system.horizon_s = cli.get_double("hours", 36.0) * 3600.0;

  std::cout << "dpjit quickstart (" << scenario << "): " << cfg.nodes << " peers, "
            << cfg.workflows_per_node << " workflows per node, algorithm=" << cfg.algorithm
            << "\n\n";

  const auto result = dpjit::exp::run_experiment(cfg);

  std::cout << "finished " << result.workflows_finished << "/" << result.workflows_submitted
            << " workflows\n"
            << "  average completion time (ACT, Eq.2): " << result.act << " s\n"
            << "  average efficiency     (AE,  Eq.3): " << result.ae << "\n"
            << "  mean response time               : " << result.mean_response << " s\n"
            << "  gossip messages sent             : " << result.gossip_messages << "\n"
            << "  events processed                 : " << result.events_processed << "\n\n";

  std::cout << "throughput over time (workflows finished by hour):\n";
  dpjit::exp::print_time_series(std::cout, {result}, "throughput");
  return 0;
}
