// Montage astronomy mosaicking on a P2P grid.
//
// The paper's motivation: scientific workflows with complex dependencies
// executed on geographically dispersed volunteer resources. This example
// submits Montage-style mosaicking DAGs (projection -> background fit ->
// model -> correction -> co-addition) from several laboratories (home nodes),
// runs the dual-phase DSMF scheduler, and reports per-workflow completion
// and efficiency. It also dumps the first DAG as Graphviz for inspection.
//
//   ./montage_pipeline [--labs=6] [--mosaics=4] [--width=8] [--nodes=96]
#include <fstream>
#include <iostream>

#include "dag/dot.hpp"
#include "dag/templates.hpp"
#include "exp/metrics.hpp"
#include "exp/workload_factory.hpp"
#include "net/stats.hpp"
#include "util/config.hpp"
#include "util/table_printer.hpp"

int main(int argc, char** argv) {
  using namespace dpjit;
  const auto cli = util::Config::from_args(argc, argv);
  const int labs = static_cast<int>(cli.get_int("labs", 6));
  const int mosaics = static_cast<int>(cli.get_int("mosaics", 4));
  const int width = static_cast<int>(cli.get_int("width", 8));

  exp::ExperimentConfig cfg;
  cfg.nodes = static_cast<int>(cli.get_int("nodes", 96));
  cfg.workflows_per_node = 0;  // we submit our own workload below
  cfg.algorithm = cli.get_string("algorithm", "dsmf");
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

  exp::World world(cfg);
  net::print_topology_stats(std::cout, net::topology_stats(world.topology(), world.routing()));
  std::cout << '\n';

  dag::TemplateParams tpl;
  tpl.load_mi = 3000.0;
  tpl.data_mb = 200.0;
  int submitted = 0;
  for (int lab = 0; lab < labs; ++lab) {
    for (int m = 0; m < mosaics; ++m) {
      auto wf = dag::make_montage(WorkflowId{}, width, tpl);
      if (lab == 0 && m == 0) {
        std::ofstream dot("montage.dot");
        dag::write_dot(dot, wf);
        std::cout << "wrote montage.dot (" << wf.task_count() << " tasks, " << wf.edge_count()
                  << " edges)\n";
      }
      world.system().submit(NodeId{lab}, std::move(wf));
      ++submitted;
    }
  }

  world.run();

  const auto& reports = world.metrics().reports();
  std::cout << "\n" << reports.size() << "/" << submitted << " mosaics completed\n\n";
  util::TablePrinter table({"workflow", "home", "completion(s)", "efficiency"});
  for (const auto& r : reports) {
    table.add_row({std::to_string(r.id.get()), std::to_string(r.home.get()),
                   util::TablePrinter::fmt(r.completion_time(), 6),
                   util::TablePrinter::fmt(r.efficiency(), 4)});
  }
  table.print(std::cout);
  std::cout << "\nACT = " << world.metrics().act() << " s, AE = " << world.metrics().ae()
            << "\n";
  return 0;
}
