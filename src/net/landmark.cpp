#include "net/landmark.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace dpjit::net {

LandmarkEstimator::LandmarkEstimator(const Routing& routing, int landmark_count,
                                     util::Rng& rng) {
  const int n = routing.node_count();
  if (landmark_count < 1) throw std::invalid_argument("landmark_count >= 1");
  landmark_count = std::min(landmark_count, n);
  for (std::size_t i : rng.sample_indices(static_cast<std::size_t>(n),
                                          static_cast<std::size_t>(landmark_count))) {
    landmarks_.push_back(NodeId{static_cast<NodeId::underlying_type>(i)});
  }
  std::sort(landmarks_.begin(), landmarks_.end());

  vectors_.resize(static_cast<std::size_t>(n));
  for (int u = 0; u < n; ++u) {
    auto& vec = vectors_[static_cast<std::size_t>(u)];
    vec.reserve(landmarks_.size());
    for (NodeId l : landmarks_) {
      const double bw = (NodeId{u} == l) ? kInf : routing.bandwidth_mbps(NodeId{u}, l);
      vec.push_back(bw);
    }
  }
}

const std::vector<double>& LandmarkEstimator::vector_of(NodeId n) const {
  assert(n.valid() && static_cast<std::size_t>(n.get()) < vectors_.size());
  return vectors_[static_cast<std::size_t>(n.get())];
}

double LandmarkEstimator::estimate_mbps(NodeId u, NodeId v, double fallback_mbps) const {
  if (u == v) return kInf;
  const auto& vu = vector_of(u);
  const auto& vv = vector_of(v);
  double best = 0.0;
  for (std::size_t i = 0; i < landmarks_.size(); ++i) {
    best = std::max(best, std::min(vu[i], vv[i]));
  }
  if (best <= 0.0 || !std::isfinite(best)) {
    // `best` is infinite when u or v *is* a landmark and the other side's
    // bandwidth to it is infinite too (u == v case is excluded above), which
    // cannot happen for distinct nodes; 0 means no landmark is reachable.
    return best > 0.0 ? best : fallback_mbps;
  }
  return best;
}

double LandmarkEstimator::local_mean_mbps(NodeId n) const {
  const auto& vec = vector_of(n);
  double sum = 0.0;
  std::size_t count = 0;
  for (double bw : vec) {
    if (std::isfinite(bw)) {
      sum += bw;
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

}  // namespace dpjit::net
