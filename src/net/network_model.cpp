#include "net/network_model.hpp"

#include <stdexcept>
#include <string>

namespace dpjit::net {
namespace {

constexpr NetworkModeInfo kBottleneckInfo{
    "bottleneck",
    /*contended=*/false,
    /*zero_lookahead=*/false,
    /*shardable=*/false,
    "static routed-path bandwidth (no contention state)",
};

constexpr NetworkModeInfo kFluidFairInfo{
    "fluid-fair",
    /*contended=*/true,
    /*zero_lookahead=*/true,
    /*shardable=*/false,
    "live what-if solver probe, cache keyed on the solver mutation stamp",
};

constexpr NetworkModeInfo kQuantisedFairInfo{
    "quantised-fair",
    /*contended=*/true,
    /*zero_lookahead=*/false,
    /*shardable=*/true,
    "live what-if solver probe, cache keyed on the solver mutation stamp AND "
    "the epoch barrier stamp",
};

}  // namespace

const NetworkModeInfo& network_mode_info(NetworkMode mode) {
  switch (mode) {
    case NetworkMode::kBottleneck: return kBottleneckInfo;
    case NetworkMode::kFluidFair: return kFluidFairInfo;
    case NetworkMode::kQuantisedFair: return kQuantisedFairInfo;
  }
  throw std::invalid_argument("network_mode_info: unknown NetworkMode");
}

std::string_view to_string(NetworkMode mode) { return network_mode_info(mode).name; }

NetworkMode parse_network_mode(std::string_view name) {
  if (name == "bottleneck") return NetworkMode::kBottleneck;
  if (name == "fluid-fair" || name == "fair-sharing") return NetworkMode::kFluidFair;
  if (name == "quantised-fair") return NetworkMode::kQuantisedFair;
  throw std::invalid_argument("parse_network_mode: unknown mode '" + std::string(name) +
                              "' (expected bottleneck | fluid-fair | quantised-fair)");
}

}  // namespace dpjit::net
