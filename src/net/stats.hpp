// Topology statistics: the numbers one checks to confirm a generated WAN
// "looks like" Brite output (degree distribution, hop diameter, latency and
// bottleneck-bandwidth distributions).
#pragma once

#include <ostream>

#include "net/routing.hpp"

namespace dpjit::net {

struct TopologyStats {
  int nodes = 0;
  std::size_t links = 0;
  double mean_degree = 0.0;
  int min_degree = 0;
  int max_degree = 0;
  /// Longest shortest path in hops over reachable pairs.
  int hop_diameter = 0;
  double mean_latency_s = 0.0;
  double max_latency_s = 0.0;
  /// Mean pairwise bottleneck bandwidth (Mb/s).
  double mean_bandwidth_mbps = 0.0;
  /// True when all pairs are reachable.
  bool connected = true;
};

/// Computes the statistics (O(n^2) pair scan over the routing tables).
[[nodiscard]] TopologyStats topology_stats(const Topology& topo, const Routing& routing);

/// Human-readable dump.
void print_topology_stats(std::ostream& os, const TopologyStats& stats);

}  // namespace dpjit::net
