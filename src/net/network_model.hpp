// The network-model seam (ROADMAP item 1, PR 9).
//
// Every layer that cares how transfers share the network - the
// grid::TransferManager that executes them, the net::RateOracle probes the
// contention-aware policies consume, core::GridSystem's run loop, and the
// scenario registry - selects behaviour through this one enum instead of a
// scattered `bool fair_sharing`. The mode matrix below is the single source
// of truth for the properties the layers branch on:
//
//   mode            contended  lookahead            shardable  oracle path
//   --------------  ---------  -------------------  ---------  -------------------
//   bottleneck      no         n/a (no rate state)  no [1]     static routed path
//   fluid-fair      yes        ZERO (a rate change  no         live what-if probe,
//                              is instantly global)            probe cache keyed on
//                                                              the solver stamp
//   quantised-fair  yes        one epoch (rates     YES        live what-if probe,
//                              frozen between                  cache additionally
//                              barriers)                       keyed on the barrier
//                                                              stamp
//
// [1] bottleneck transfers are independent point events and could shard in
//     principle, but the workflow world around them (shared RNG streams,
//     gossip, scheduling) runs on the serial engine either way; only the
//     quantised mode moves the workflow run onto sim::ShardEngine.
//
// Epoch-quantised fair sharing is the lookahead-compatible contended model:
// max-min rates are re-solved ONLY at epoch barriers t = kE and frozen in
// between, flows accrue volume against the frozen rates, and completions
// surface at barriers. Freezing manufactures exactly the non-zero lookahead
// the conservative time-window PDES loop needs, so quantised runs ride
// sim::ShardEngine with cross-shard completions delivered as window-barrier
// messages (see core/workflow_shard.hpp for the pipeline).
#pragma once

#include <string_view>

namespace dpjit::net {

enum class NetworkMode {
  /// The paper's evaluation model: latency + size/bottleneck-bandwidth,
  /// transfers never contend.
  kBottleneck,
  /// Fluid max-min fair sharing, incrementally re-solved on every flow
  /// join/leave (the PR 4 ablation; zero lookahead).
  kFluidFair,
  /// Max-min fair sharing with rates frozen per epoch and re-solved only at
  /// epoch barriers (non-zero lookahead; the sharded workflow path).
  kQuantisedFair,
};

/// Static properties of a mode - the row of the matrix above. Kept as data so
/// CLI tools (scenario_runner --describe) and docs render from one place.
struct NetworkModeInfo {
  std::string_view name;        ///< canonical spelling, e.g. "quantised-fair"
  bool contended = false;       ///< concurrent transfers share link capacity
  bool zero_lookahead = false;  ///< rate changes propagate instantly
  /// The workflow path can run on sim::ShardEngine under this mode.
  bool shardable = false;
  std::string_view oracle_path;  ///< how RateOracle probes are answered
};

/// The matrix row for `mode`.
[[nodiscard]] const NetworkModeInfo& network_mode_info(NetworkMode mode);

[[nodiscard]] std::string_view to_string(NetworkMode mode);

/// Parses a canonical mode name ("bottleneck", "fluid-fair",
/// "quantised-fair"; "fair-sharing" is accepted as the legacy alias of
/// fluid-fair). Throws std::invalid_argument on anything else.
[[nodiscard]] NetworkMode parse_network_mode(std::string_view name);

}  // namespace dpjit::net
