#include "net/stats.hpp"

#include <algorithm>
#include <cmath>

namespace dpjit::net {

TopologyStats topology_stats(const Topology& topo, const Routing& routing) {
  TopologyStats s;
  s.nodes = topo.node_count();
  s.links = topo.link_count();
  s.connected = topo.connected();

  s.min_degree = s.nodes > 0 ? static_cast<int>(topo.incident(NodeId{0}).size()) : 0;
  for (int i = 0; i < s.nodes; ++i) {
    const int deg = static_cast<int>(topo.incident(NodeId{i}).size());
    s.mean_degree += deg;
    s.min_degree = std::min(s.min_degree, deg);
    s.max_degree = std::max(s.max_degree, deg);
  }
  if (s.nodes > 0) s.mean_degree /= s.nodes;

  double lat_sum = 0.0;
  double bw_sum = 0.0;
  std::size_t pairs = 0;
  for (int u = 0; u < s.nodes; ++u) {
    for (int v = u + 1; v < s.nodes; ++v) {
      const double lat = routing.latency_s(NodeId{u}, NodeId{v});
      if (!std::isfinite(lat)) continue;
      lat_sum += lat;
      s.max_latency_s = std::max(s.max_latency_s, lat);
      bw_sum += routing.bandwidth_mbps(NodeId{u}, NodeId{v});
      s.hop_diameter = std::max(s.hop_diameter, routing.hops(NodeId{u}, NodeId{v}));
      ++pairs;
    }
  }
  if (pairs > 0) {
    s.mean_latency_s = lat_sum / static_cast<double>(pairs);
    s.mean_bandwidth_mbps = bw_sum / static_cast<double>(pairs);
  }
  return s;
}

void print_topology_stats(std::ostream& os, const TopologyStats& s) {
  os << "topology: " << s.nodes << " nodes, " << s.links << " links"
     << (s.connected ? " (connected)" : " (DISCONNECTED)") << '\n'
     << "  degree: mean " << s.mean_degree << ", min " << s.min_degree << ", max "
     << s.max_degree << '\n'
     << "  hop diameter: " << s.hop_diameter << '\n'
     << "  latency: mean " << s.mean_latency_s * 1000.0 << " ms, max "
     << s.max_latency_s * 1000.0 << " ms\n"
     << "  mean pair bottleneck bandwidth: " << s.mean_bandwidth_mbps << " Mb/s\n";
}

}  // namespace dpjit::net
