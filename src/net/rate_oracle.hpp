// Live-network rate queries for contention-aware scheduling.
//
// The first scheduling phase estimates transfer costs when ranking candidate
// resource nodes (Eq. 4's LTD term). The baseline policies use *static*
// estimates - gossiped averages or landmark coordinates - which ignore what
// the network is doing right now. A RateOracle answers the question those
// policies cannot ask: "if a new transfer started on this path at this
// instant, what rate would it actually get, and when would it finish?"
//
// grid::TransferManager implements this interface for both network models:
//  - bottleneck mode: the routed path's bottleneck bandwidth (transfers do
//    not contend, so the static answer is also the live one);
//  - fair-sharing mode: a what-if probe of the incremental max-min solver
//    (net::FairShareSolver::probe_rate) - the rate the flow would be
//    allocated against the *current* set of in-flight transfers, without
//    mutating any solver state.
//
// The oracle reports instantaneous conditions: a fair-mode rate holds until
// the next flow arrival/completion re-solves the component, so predicted
// transfer times are extrapolations, not guarantees. That is exactly the
// quality of information a just-in-time scheduler can act on.
#pragma once

#include <cmath>
#include <utility>
#include <vector>

#include "util/types.hpp"

namespace dpjit::net {

/// The canonical transfer-time ladder shared by every oracle implementation
/// and cache: `latency + size / rate` with the edge cases pinned in one
/// place (unreachable pair -> +inf, empty payload -> latency only, saturated
/// zero-rate path -> +inf, infinite rate -> latency only). Loopback is the
/// caller's job (src == dst costs 0 before any latency lookup).
[[nodiscard]] inline double transfer_time_from_rate(double latency_s, double rate_mbps,
                                                    double size_mb) {
  if (!std::isfinite(latency_s)) return kInf;
  if (size_mb <= 0.0) return latency_s;
  if (rate_mbps <= 0.0) return kInf;
  if (std::isinf(rate_mbps)) return latency_s;
  return latency_s + size_mb / rate_mbps;
}

/// Read-only view of the live network for what-if transfer queries.
/// Implementations must not mutate observable network state when answering.
class RateOracle {
 public:
  virtual ~RateOracle() = default;

  /// Rate (Mb/s) a new src->dst transfer would be allocated if it started
  /// now. +inf for loopback (src == dst); 0 when the routed path is
  /// unreachable or crosses a saturated/zero-capacity link.
  [[nodiscard]] virtual double predicted_rate_mbps(NodeId src, NodeId dst) const = 0;

  /// Predicted wall-clock seconds to deliver `size_mb` megabits from src to
  /// dst starting now: propagation latency plus size over the predicted
  /// rate. 0 for loopback; +inf when the transfer could never complete
  /// (unreachable pair or zero predicted rate).
  [[nodiscard]] virtual double expected_transfer_time_s(NodeId src, NodeId dst,
                                                        double size_mb) const = 0;

  /// Batched probe: one predicted rate per (src, dst) pair, in pair order.
  /// Each entry equals predicted_rate_mbps(src, dst) bit-for-bit - the batch
  /// is a convenience (one virtual call, one walk) for callers that prefetch
  /// a scheduling cycle's worth of pairs, not a different estimator.
  /// Duplicate pairs are allowed and each receives the same answer.
  [[nodiscard]] virtual std::vector<double> probe_rates(
      const std::vector<std::pair<NodeId, NodeId>>& pairs) const {
    std::vector<double> rates;
    rates.reserve(pairs.size());
    for (const auto& [src, dst] : pairs) rates.push_back(predicted_rate_mbps(src, dst));
    return rates;
  }
};

}  // namespace dpjit::net
