// Internet-like WAN topology, replacing the paper's Brite tool.
//
// Brite's router-level Waxman mode places nodes uniformly on a plane and adds
// links with probability P(u,v) = alpha * exp(-d(u,v) / (beta * L)) where d is
// the Euclidean distance and L the plane diagonal. We reproduce Brite's
// *incremental growth* variant: nodes join one at a time and connect to
// `links_per_node` existing nodes sampled with Waxman weights, which guarantees
// a connected graph (what Brite does when asked for a connected topology).
#pragma once

#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace dpjit::net {

/// 2-D position on the Brite plane.
struct Point {
  double x = 0.0;
  double y = 0.0;
};

/// Euclidean distance between two points.
[[nodiscard]] double distance(const Point& a, const Point& b);

/// An undirected physical link.
struct Link {
  NodeId a;
  NodeId b;
  /// Link capacity in Mb/s (paper Table I: 0.1 - 10 Mb/s).
  double bandwidth_mbps = 1.0;
  /// Propagation latency in seconds (derived from Euclidean distance).
  double latency_s = 0.0;
};

/// Waxman/Brite generation parameters. Defaults follow common Brite settings
/// and paper Table I for link bandwidth.
struct TopologyParams {
  int node_count = 100;
  double alpha = 0.15;        ///< Waxman alpha (link probability scale)
  double beta = 0.2;          ///< Waxman beta (distance sensitivity)
  int links_per_node = 2;     ///< Brite incremental-growth links per new node
  double plane_size = 1000.0; ///< side of the square placement plane
  double min_bandwidth_mbps = 0.1;
  double max_bandwidth_mbps = 10.0;
  /// Latency per plane distance unit, seconds (default ~ 10 us/unit, i.e.
  /// roughly fiber propagation if one unit is a kilometre).
  double latency_per_unit = 1e-5;

  void validate() const;  ///< throws std::invalid_argument on bad bounds
};

/// An immutable undirected multigraph-free topology with node positions.
class Topology {
 public:
  /// Generates a connected Waxman topology; deterministic in `rng`.
  static Topology generate_waxman(const TopologyParams& params, util::Rng& rng);

  /// Builds a topology from an explicit link list (used by tests).
  static Topology from_links(int node_count, std::vector<Link> links);

  [[nodiscard]] int node_count() const { return static_cast<int>(positions_.size()); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] const Point& position(NodeId n) const;
  [[nodiscard]] const Link& link(LinkId l) const;
  [[nodiscard]] const std::vector<Link>& links() const { return links_; }

  /// Links incident to `n` (as link ids).
  [[nodiscard]] const std::vector<LinkId>& incident(NodeId n) const;

  /// Neighbor on the other side of link `l` from node `n`.
  [[nodiscard]] NodeId other_end(LinkId l, NodeId n) const;

  /// True when every node can reach every other node.
  [[nodiscard]] bool connected() const;

 private:
  std::vector<Point> positions_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> incident_;
};

}  // namespace dpjit::net
