// Max-min fair bandwidth allocation among concurrent flows (progressive
// filling). This is the optional contended network model: the paper's own
// evaluation - like most grid simulators of its era - charges each transfer
// the full bottleneck bandwidth of its path; the flow-sharing model is our
// ablation showing how the scheduling comparison behaves when transfers
// crossing the same link share it fairly.
#pragma once

#include <vector>

#include "util/types.hpp"

namespace dpjit::net {

/// One flow: the set of link ids its route crosses.
struct FlowPath {
  std::vector<LinkId> links;
};

/// Computes the max-min fair rate (Mb/s) of each flow given per-link
/// capacities. Flows with an empty path (loopback transfers) get +inf.
/// Progressive filling: repeatedly saturate the most constrained link,
/// freezing its flows at the fair share. O(iterations * flows * links).
[[nodiscard]] std::vector<double> max_min_fair_rates(const std::vector<FlowPath>& flows,
                                                     const std::vector<double>& link_capacity_mbps);

}  // namespace dpjit::net
