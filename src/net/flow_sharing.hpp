// Max-min fair bandwidth allocation among concurrent flows (progressive
// filling). This is the optional contended network model: the paper's own
// evaluation - like most grid simulators of its era - charges each transfer
// the full bottleneck bandwidth of its path; the flow-sharing model is our
// ablation showing how the scheduling comparison behaves when transfers
// crossing the same link share it fairly.
//
// Two entry points:
//  - max_min_fair_rates(): the stateless reference solve over one flow set.
//  - FairShareSolver: the incremental engine the TransferManager drives. It
//    maintains per-link flow sets, so adding or removing a flow only
//    re-solves the *bottleneck component* that flow belongs to (the flows and
//    links transitively reachable through shared links); disjoint components
//    are independent max-min subproblems and keep their rates untouched.
//    Batch removal (churn teardown) re-solves the union of the affected
//    components once instead of once per flow.
//
// Both solvers use the same round-synchronous freeze: each round first finds
// the minimum fair share over all links, then marks every bottleneck link
// *before* any capacity is subtracted, and only then freezes the flows
// crossing marked links. Because every flow frozen in a round receives the
// identical share and link capacities are reduced by that same value once per
// crossing, the computed rates are bit-identical under any permutation of the
// flow set - a property the golden-digest policy relies on (flow iteration
// order inside the TransferManager is hash-map order).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/types.hpp"

namespace dpjit::net {

/// One flow: the set of link ids its route crosses.
struct FlowPath {
  std::vector<LinkId> links;
};

/// Computes the max-min fair rate (Mb/s) of each flow given per-link
/// capacities. Flows with an empty path (loopback transfers) get +inf; flows
/// whose path only crosses zero-capacity links get 0 (callers must not wait
/// for such flows to complete - see TransferManager's zero-rate guard).
/// Round-synchronous progressive filling: each round saturates every link at
/// the current minimum fair share and freezes its flows, with the bottleneck
/// set determined before any capacity is subtracted, so the result does not
/// depend on flow order. O(rounds * flows * links).
[[nodiscard]] std::vector<double> max_min_fair_rates(const std::vector<FlowPath>& flows,
                                                     const std::vector<double>& link_capacity_mbps);

/// Incremental max-min fair solver over a fixed link set. Flows are keyed by
/// caller-chosen 64-bit ids (the TransferManager uses transfer ids). After
/// every mutation, `updated()` lists the flows whose rate was re-solved (the
/// affected bottleneck component, including a newly added flow and excluding
/// removed ones); all other flows keep their previous rates, which match a
/// from-scratch solve bit-for-bit (see flow_sharing_test differential tests).
class FairShareSolver {
 public:
  /// One entry of updated(): the re-solved flow, its new rate, and the
  /// caller's cookie from add(). The cookie spares the caller a hash lookup
  /// per re-keyed flow - at a thousand contending flows every mutation
  /// re-solves the whole component, so those lookups were a measurable slice
  /// of fair-mode wall time.
  struct UpdatedFlow {
    std::uint64_t id;
    double rate;
    void* user;
  };

  explicit FairShareSolver(std::vector<double> link_capacity_mbps);

  /// Adds a flow crossing `links` and re-solves its component. An empty path
  /// gets rate +inf and never interacts with other flows. Duplicate links in
  /// one path are counted per crossing (defensive; real routes are simple).
  /// `user` is an opaque cookie handed back in every updated() entry for this
  /// flow; it must stay valid for the flow's lifetime.
  /// Precondition: `id` not present.
  void add(std::uint64_t id, std::vector<LinkId> links, void* user = nullptr);

  /// Removes one flow and re-solves the component it belonged to.
  /// Precondition: `id` present.
  void remove(std::uint64_t id);

  /// Removes every flow in `ids` with a single re-solve of the union of the
  /// affected components (churn teardown: one solve, not one per flow).
  /// Precondition: all ids present, no duplicates.
  void remove_batch(const std::vector<std::uint64_t>& ids);

  /// Current rate of a present flow (Mb/s; +inf for empty paths).
  [[nodiscard]] double rate(std::uint64_t id) const;

  /// What-if probe: the max-min rate a *hypothetical* new flow crossing
  /// `links` would be allocated if it joined right now. Bit-identical to the
  /// rate `add()` would assign, but without mutating any observable solver
  /// state: no present flow's rate, path, or membership changes, and a
  /// subsequent mutation behaves exactly as if the probe never ran
  /// (property-tested via a state digest over 10k probes). Empty `links`
  /// (loopback) returns +inf; a path crossing a saturated/zero-capacity link
  /// returns 0.
  ///
  /// Cost: amortized O(rounds + path events), NOT a fresh component solve.
  /// The first probe after a mutation lazily builds a *probe schedule* for
  /// the touched component - a replay log of the unmodified progressive fill
  /// (per-round shares plus each link's (remaining, active) trajectory) - and
  /// every later probe against the same mutation stamp answers from it. The
  /// replay is bit-exact by the phantom-flow prefix argument: until the probe
  /// flow itself saturates, its +1 on each crossed link either never sets the
  /// round share (so the real process is untouched) or does - in which case
  /// the probe freezes that very round and the answer is min(round share,
  /// probe ratio), exactly what the from-scratch loop returns. Probes whose
  /// path spans two separate flow components (the phantom would merge them)
  /// fall back to probe_rate_reference(), as does any schedule that hit a
  /// defensive break while building. Only mutable cache/scratch state is
  /// touched, so this is const but NOT safe to call concurrently with any
  /// other member.
  [[nodiscard]] double probe_rate(const std::vector<LinkId>& links) const;

  /// The from-scratch probe: collects the component and runs the
  /// round-synchronous fill until the phantom flow freezes, exactly like
  /// add() would (early-out at the probe's freeze round). This is the slow
  /// path probe_rate() falls back to, its differential-test anchor, and the
  /// "before" side of the perf harness's probe stage. Same purity contract
  /// as probe_rate().
  [[nodiscard]] double probe_rate_reference(const std::vector<LinkId>& links) const;

  [[nodiscard]] bool contains(std::uint64_t id) const { return flows_.count(id) > 0; }
  [[nodiscard]] std::size_t flow_count() const { return flows_.size(); }
  [[nodiscard]] std::size_t link_count() const { return caps_.size(); }

  /// Flows re-solved by the last add/remove/remove_batch.
  /// Invalidated by the next mutation.
  [[nodiscard]] const std::vector<UpdatedFlow>& updated() const { return updated_; }

  /// Counter bumped by every observable mutation (add/remove/remove_batch)
  /// and by NOTHING else - in particular not by probe_rate(), whose scratch
  /// epoch ticks on every call. Two probes of the same path between equal
  /// mutation stamps are guaranteed bit-identical, which is the invalidation
  /// key the TransferManager's probe cache is built on. (The internal
  /// `epoch_` cannot serve: it stamps solve scratch and therefore moves on
  /// const probes too.)
  [[nodiscard]] std::uint64_t mutation_stamp() const { return mutation_stamp_; }

  /// From-scratch reference solve of the current flow set (id -> rate), in
  /// unspecified order. Test hook for incremental-vs-full differential checks.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, double>> full_solve() const;

 private:
  struct FlowRec {
    std::vector<LinkId> links;
    /// slot[k]: this flow's index in link_flows_[links[k]] (swap-erase keeps
    /// these in sync; duplicate links get one slot per crossing).
    std::vector<std::uint32_t> slot;
    double rate = 0.0;
    void* user = nullptr;  ///< caller cookie, echoed in updated()
    /// BFS epoch stamp (component collection). `mutable`: pure solve scratch,
    /// written by the const probe path too.
    mutable std::uint64_t mark = 0;
    mutable bool frozen = false;  ///< scratch of the current solve round
  };

  /// One entry of a link's flow set: the flow id plus which of the flow's
  /// path slots points back here (so swap-erase can fix the moved entry),
  /// plus the FlowRec itself (unordered_map nodes are address-stable, so the
  /// hot solve/collect loops dereference instead of re-hashing the id).
  struct LinkSlot {
    std::uint64_t flow;
    std::uint32_t path_index;
    FlowRec* rec;
  };

  /// Replay log of one component's unmodified progressive fill at a fixed
  /// mutation stamp: the share of every round, plus for each member link its
  /// initial (remaining=cap, active) state and the (round, remaining, active)
  /// checkpoints where a freeze changed it - everything a probe needs to
  /// re-run the fill with its phantom flow overlaid, without touching the
  /// real flow set.
  struct ProbeSchedule {
    struct LinkEvent {
      std::uint32_t round;  ///< state below holds from the START of this round
      std::int32_t active;
      double remaining;
    };
    struct LinkTrack {
      std::int32_t active0;
      std::uint32_t first;  ///< index of this link's events in `events`
      std::uint32_t count;
    };
    std::vector<double> round_share;  ///< post-clamp share per round
    std::vector<LinkEvent> events;    ///< grouped per link, round-ascending
    std::unordered_map<std::uint32_t, LinkTrack> links;
    bool clean = false;  ///< fill drained without hitting a defensive break
  };

  void unlink(FlowRec& rec);
  /// Collects the component(s) reachable from `seed_links` into comp_flows_ /
  /// comp_links_ (excluding flows already marked with the current epoch), and
  /// initializes the fill state in the same walk: every collected link gets
  /// remaining_ = cap and its active flow count, every collected flow gets
  /// frozen = false. const: only epoch-stamped scratch and the mutable
  /// FlowRec marks move.
  void collect_component(const std::vector<LinkId>& seed_links) const;
  /// Round-synchronous max-min solve restricted to the collected component;
  /// fills updated_ with the new rates.
  void solve_component();
  /// Builds (and caches) the ProbeSchedule of the flow component containing
  /// `seed` - a flowed link - labelling every member link with the schedule
  /// index for the current mutation stamp. Returns that index. const: replays
  /// the fill on the mutable scratch without writing any flow's rate.
  std::uint32_t build_probe_schedule(LinkId seed) const;

  std::vector<double> caps_;
  std::unordered_map<std::uint64_t, FlowRec> flows_;
  std::vector<std::vector<LinkSlot>> link_flows_;
  std::uint64_t mutation_stamp_ = 0;

  // --- solve scratch (allocated once; epoch-stamped to avoid O(links)
  // clears). `mutable` so the side-effect-free probe_rate() can reuse the
  // exact machinery the mutating solves run on.
  mutable std::uint64_t epoch_ = 0;
  mutable std::vector<std::uint64_t> link_mark_;
  mutable std::vector<double> remaining_;
  mutable std::vector<int> active_;
  /// remaining_[l] / active_[l] memoized per link, refreshed only when a
  /// freeze touches the link, so the per-round share scan is one load instead
  /// of one divide per link. Valid only for links of the component being
  /// solved, between rounds (stale mid-round by design: the bottleneck mask
  /// must see the pre-round ratios).
  mutable std::vector<double> ratio_;
  mutable std::vector<char> bottleneck_;
  mutable std::vector<std::uint32_t> comp_links_;
  mutable std::vector<std::pair<std::uint64_t, FlowRec*>> comp_flows_;
  mutable std::vector<std::uint32_t> touched_;  ///< links hit by this round's freezes
  /// Dedupes touched_ within a round (touch_mark_[l] == touch_stamp_ means
  /// "already queued this round"), so a link crossed by many freezing flows
  /// gets one ratio refresh instead of one per crossing.
  mutable std::vector<std::uint64_t> touch_mark_;
  mutable std::uint64_t touch_stamp_ = 0;
  std::vector<UpdatedFlow> updated_;

  // --- probe-schedule cache, valid for one mutation stamp. link_sched_[l] =
  // (stamp+1, index into scheds_); the +1 keeps the zero-initialized state
  // invalid. Cleared lazily by the first probe after a mutation.
  mutable std::vector<ProbeSchedule> scheds_;
  mutable std::vector<std::pair<std::uint64_t, std::uint32_t>> link_sched_;
  mutable std::uint64_t sched_stamp_ = 0;  ///< mutation_stamp_ + 1 scheds_ is for
  // scratch for probe_rate's replay: the path grouped to (link, crossings),
  // and the phantom-overlaid per-link replay cursors.
  struct ProbeCursor {
    std::uint32_t link;
    std::int32_t crossings;
    std::int32_t active;  ///< real active + crossings
    double remaining;
    std::uint32_t next;  ///< next unapplied event index in the schedule
    std::uint32_t end;
  };
  mutable std::vector<ProbeCursor> probe_cursors_;
  mutable std::uint64_t probe_count_ = 0;  ///< for the sampled debug cross-check
};

}  // namespace dpjit::net
