// Max-min fair bandwidth allocation among concurrent flows (progressive
// filling). This is the optional contended network model: the paper's own
// evaluation - like most grid simulators of its era - charges each transfer
// the full bottleneck bandwidth of its path; the flow-sharing model is our
// ablation showing how the scheduling comparison behaves when transfers
// crossing the same link share it fairly.
//
// Two entry points:
//  - max_min_fair_rates(): the stateless reference solve over one flow set.
//  - FairShareSolver: the incremental engine the TransferManager drives. It
//    maintains per-link flow sets, so adding or removing a flow only
//    re-solves the *bottleneck component* that flow belongs to (the flows and
//    links transitively reachable through shared links); disjoint components
//    are independent max-min subproblems and keep their rates untouched.
//    Batch removal (churn teardown) re-solves the union of the affected
//    components once instead of once per flow.
//
// Both solvers use the same round-synchronous freeze: each round first finds
// the minimum fair share over all links, then marks every bottleneck link
// *before* any capacity is subtracted, and only then freezes the flows
// crossing marked links. Because every flow frozen in a round receives the
// identical share and link capacities are reduced by that same value once per
// crossing, the computed rates are bit-identical under any permutation of the
// flow set - a property the golden-digest policy relies on (flow iteration
// order inside the TransferManager is hash-map order).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/types.hpp"

namespace dpjit::net {

/// One flow: the set of link ids its route crosses.
struct FlowPath {
  std::vector<LinkId> links;
};

/// Computes the max-min fair rate (Mb/s) of each flow given per-link
/// capacities. Flows with an empty path (loopback transfers) get +inf; flows
/// whose path only crosses zero-capacity links get 0 (callers must not wait
/// for such flows to complete - see TransferManager's zero-rate guard).
/// Round-synchronous progressive filling: each round saturates every link at
/// the current minimum fair share and freezes its flows, with the bottleneck
/// set determined before any capacity is subtracted, so the result does not
/// depend on flow order. O(rounds * flows * links).
[[nodiscard]] std::vector<double> max_min_fair_rates(const std::vector<FlowPath>& flows,
                                                     const std::vector<double>& link_capacity_mbps);

/// Incremental max-min fair solver over a fixed link set. Flows are keyed by
/// caller-chosen 64-bit ids (the TransferManager uses transfer ids). After
/// every mutation, `updated()` lists the flows whose rate was re-solved (the
/// affected bottleneck component, including a newly added flow and excluding
/// removed ones); all other flows keep their previous rates, which match a
/// from-scratch solve bit-for-bit (see flow_sharing_test differential tests).
class FairShareSolver {
 public:
  explicit FairShareSolver(std::vector<double> link_capacity_mbps);

  /// Adds a flow crossing `links` and re-solves its component. An empty path
  /// gets rate +inf and never interacts with other flows. Duplicate links in
  /// one path are counted per crossing (defensive; real routes are simple).
  /// Precondition: `id` not present.
  void add(std::uint64_t id, std::vector<LinkId> links);

  /// Removes one flow and re-solves the component it belonged to.
  /// Precondition: `id` present.
  void remove(std::uint64_t id);

  /// Removes every flow in `ids` with a single re-solve of the union of the
  /// affected components (churn teardown: one solve, not one per flow).
  /// Precondition: all ids present, no duplicates.
  void remove_batch(const std::vector<std::uint64_t>& ids);

  /// Current rate of a present flow (Mb/s; +inf for empty paths).
  [[nodiscard]] double rate(std::uint64_t id) const;

  /// What-if probe: the max-min rate a *hypothetical* new flow crossing
  /// `links` would be allocated if it joined right now. Bit-identical to the
  /// rate `add()` would assign (same component collection, same
  /// round-synchronous freeze arithmetic, early-out at the round the probe
  /// flow would freeze), but without mutating any observable solver state:
  /// no present flow's rate, path, or membership changes, and a subsequent
  /// mutation behaves exactly as if the probe never ran (property-tested via
  /// a state digest over 10k probes). Empty `links` (loopback) returns +inf;
  /// a path crossing a saturated/zero-capacity link returns 0. Only the
  /// epoch-stamped scratch arrays are touched (declared `mutable`), so this
  /// is const but NOT safe to call concurrently with any other member.
  [[nodiscard]] double probe_rate(const std::vector<LinkId>& links) const;

  [[nodiscard]] bool contains(std::uint64_t id) const { return flows_.count(id) > 0; }
  [[nodiscard]] std::size_t flow_count() const { return flows_.size(); }
  [[nodiscard]] std::size_t link_count() const { return caps_.size(); }

  /// Flows re-solved by the last add/remove/remove_batch, as (id, rate).
  /// Invalidated by the next mutation.
  [[nodiscard]] const std::vector<std::pair<std::uint64_t, double>>& updated() const {
    return updated_;
  }

  /// From-scratch reference solve of the current flow set (id -> rate), in
  /// unspecified order. Test hook for incremental-vs-full differential checks.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, double>> full_solve() const;

 private:
  struct FlowRec {
    std::vector<LinkId> links;
    /// slot[k]: this flow's index in link_flows_[links[k]] (swap-erase keeps
    /// these in sync; duplicate links get one slot per crossing).
    std::vector<std::uint32_t> slot;
    double rate = 0.0;
    /// BFS epoch stamp (component collection). `mutable`: pure solve scratch,
    /// written by the const probe path too.
    mutable std::uint64_t mark = 0;
    mutable bool frozen = false;  ///< scratch of the current solve round
  };

  /// One entry of a link's flow set: the flow id plus which of the flow's
  /// path slots points back here (so swap-erase can fix the moved entry).
  struct LinkSlot {
    std::uint64_t flow;
    std::uint32_t path_index;
  };

  void unlink(FlowRec& rec);
  /// Collects the component(s) reachable from `seed_links` into comp_flows_ /
  /// comp_links_ (excluding flows already marked with the current epoch).
  /// const: only epoch-stamped scratch and the mutable FlowRec marks move.
  void collect_component(const std::vector<LinkId>& seed_links) const;
  /// Round-synchronous max-min solve restricted to the collected component;
  /// fills updated_ with the new rates.
  void solve_component();

  std::vector<double> caps_;
  std::unordered_map<std::uint64_t, FlowRec> flows_;
  std::vector<std::vector<LinkSlot>> link_flows_;

  // --- solve scratch (allocated once; epoch-stamped to avoid O(links)
  // clears). `mutable` so the side-effect-free probe_rate() can reuse the
  // exact machinery the mutating solves run on.
  mutable std::uint64_t epoch_ = 0;
  mutable std::vector<std::uint64_t> link_mark_;
  mutable std::vector<double> remaining_;
  mutable std::vector<int> active_;
  mutable std::vector<char> bottleneck_;
  mutable std::vector<std::uint32_t> comp_links_;
  mutable std::vector<std::uint64_t> comp_flows_;
  std::vector<std::pair<std::uint64_t, double>> updated_;
};

}  // namespace dpjit::net
