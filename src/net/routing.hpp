// Shortest-path routing over the topology.
//
// Paths are latency-shortest (Dijkstra per source). For every ordered pair we
// precompute the end-to-end latency and the *bottleneck bandwidth* (minimum
// link bandwidth along the chosen path) - the quantity the paper's
// `bandwidth(p_h', p_h)` denotes - plus a next-hop matrix from which full
// paths can be reconstructed for the flow-sharing network model.
//
// Links can fail and recover at runtime (sim::FaultPlan waves). Instead of a
// full O(n^2 log n) rebuild, set_link_state repairs only the affected source
// rows: a failed link invalidates exactly the sources whose shortest-path
// tree used it (detected structurally from the next-hop matrix - the tree
// contains link (a,b) iff it is the parent edge of a or of b), and a restored
// link invalidates exactly the sources for which it offers an equal-or-better
// path to one of its endpoints (O(1) per source from the latency matrix).
// Each affected row is rebuilt by a fresh per-source Dijkstra over the
// currently-up links, so the repaired matrices are identical to a full
// rebuild (routing_repair_test cross-checks this).
#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.hpp"

namespace dpjit::net {

/// All-pairs routing derived from a Topology. Mutable only through
/// set_link_state (fault injection); otherwise immutable after construction.
class Routing {
 public:
  /// Runs Dijkstra from every source, one source per thread-pool task;
  /// workers write disjoint row blocks of the flattened matrices, so the
  /// result is bit-identical to a serial build regardless of thread count.
  /// `threads` <= 0 means hardware concurrency. O(n * E log n) total work;
  /// fine for n <= ~4000.
  explicit Routing(const Topology& topo, int threads = 0);

  /// End-to-end latency in seconds; 0 for u == v; +inf when unreachable.
  [[nodiscard]] double latency_s(NodeId u, NodeId v) const;

  /// Bottleneck bandwidth (Mb/s) along the routed path; +inf for u == v;
  /// 0 when unreachable.
  [[nodiscard]] double bandwidth_mbps(NodeId u, NodeId v) const;

  /// Time in seconds to transfer `mb` megabits from u to v:
  /// latency + mb / bottleneck-bandwidth. 0 when u == v. +inf when unreachable.
  [[nodiscard]] double transfer_time_s(NodeId u, NodeId v, double mb) const;

  /// Hop count of the routed path (0 for u == v).
  [[nodiscard]] int hops(NodeId u, NodeId v) const;

  /// Sequence of link ids from u to v (empty when u == v or unreachable).
  [[nodiscard]] std::vector<LinkId> path_links(NodeId u, NodeId v) const;

  [[nodiscard]] int node_count() const { return n_; }

  /// Mean pairwise bottleneck bandwidth over all ordered pairs u != v that are
  /// reachable, computed once at build time from the healthy (all-links-up)
  /// topology - the "true" system average used when computing eft (Eq. 1).
  /// The name says *initial*: this is deliberately NOT refreshed by
  /// set_link_state, so it goes stale the moment links fail or recover. That
  /// is the intended contract - eft ranks workflows against the stable
  /// healthy-network average so a mid-run failure wave cannot reshuffle
  /// relative rankings - and the rename exists so no caller can mistake it
  /// for a live mean again (see "Stale mean bandwidth" in ARCHITECTURE.md).
  [[nodiscard]] double initial_mean_pair_bandwidth_mbps() const { return mean_bandwidth_mbps_; }

  /// Takes a link down / brings it back up and incrementally repairs the
  /// affected source rows (see the header comment). No-op when the state does
  /// not change. Serial; O(affected_rows * E log n).
  void set_link_state(LinkId l, bool up);

  [[nodiscard]] bool link_state(LinkId l) const {
    return link_up_[static_cast<std::size_t>(l.get())] != 0;
  }

  /// Source rows rebuilt by set_link_state repairs so far (tests/bench).
  [[nodiscard]] std::uint64_t repaired_rows() const { return repaired_rows_; }

 private:
  [[nodiscard]] std::size_t idx(NodeId u, NodeId v) const {
    return static_cast<std::size_t>(u.get()) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(v.get());
  }

  /// Dijkstra + matrix fill for sources [src_begin, src_end).
  void build_rows(const Topology& topo, int src_begin, int src_end);

  /// Resets source row u to the unreachable defaults (rebuild prerequisite:
  /// build_rows only writes reachable entries).
  void reset_row(int u);

  /// Link id of the last hop on the routed u -> v path, or invalid when
  /// u == v / unreachable. O(hops) walk of the next-hop matrix.
  [[nodiscard]] LinkId::underlying_type last_link(NodeId u, NodeId v) const;

  int n_ = 0;
  const Topology* topo_ = nullptr;
  double mean_bandwidth_mbps_ = 0.0;
  /// Per-link up/down state (fault injection); all up at construction.
  std::vector<char> link_up_;
  std::uint64_t repaired_rows_ = 0;
  // Flattened n x n matrices (float to halve memory at n = 2000).
  std::vector<float> latency_;
  std::vector<float> bandwidth_;
  // next_hop_[u][v] = link id of the first hop on the u -> v path.
  std::vector<LinkId::underlying_type> next_link_;
};

}  // namespace dpjit::net
