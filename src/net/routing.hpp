// Shortest-path routing over the topology.
//
// Paths are latency-shortest (Dijkstra per source). For every ordered pair we
// precompute the end-to-end latency and the *bottleneck bandwidth* (minimum
// link bandwidth along the chosen path) - the quantity the paper's
// `bandwidth(p_h', p_h)` denotes - plus a next-hop matrix from which full
// paths can be reconstructed for the flow-sharing network model.
#pragma once

#include <vector>

#include "net/topology.hpp"

namespace dpjit::net {

/// All-pairs routing derived from a Topology. Immutable after construction.
class Routing {
 public:
  /// Runs Dijkstra from every source, one source per thread-pool task;
  /// workers write disjoint row blocks of the flattened matrices, so the
  /// result is bit-identical to a serial build regardless of thread count.
  /// `threads` <= 0 means hardware concurrency. O(n * E log n) total work;
  /// fine for n <= ~4000.
  explicit Routing(const Topology& topo, int threads = 0);

  /// End-to-end latency in seconds; 0 for u == v; +inf when unreachable.
  [[nodiscard]] double latency_s(NodeId u, NodeId v) const;

  /// Bottleneck bandwidth (Mb/s) along the routed path; +inf for u == v;
  /// 0 when unreachable.
  [[nodiscard]] double bandwidth_mbps(NodeId u, NodeId v) const;

  /// Time in seconds to transfer `mb` megabits from u to v:
  /// latency + mb / bottleneck-bandwidth. 0 when u == v. +inf when unreachable.
  [[nodiscard]] double transfer_time_s(NodeId u, NodeId v, double mb) const;

  /// Hop count of the routed path (0 for u == v).
  [[nodiscard]] int hops(NodeId u, NodeId v) const;

  /// Sequence of link ids from u to v (empty when u == v or unreachable).
  [[nodiscard]] std::vector<LinkId> path_links(NodeId u, NodeId v) const;

  [[nodiscard]] int node_count() const { return n_; }

  /// Mean pairwise bottleneck bandwidth over all ordered pairs u != v that are
  /// reachable - the "true" system average used when computing eft (Eq. 1).
  /// Computed once at build time; O(1) here.
  [[nodiscard]] double mean_pair_bandwidth_mbps() const { return mean_bandwidth_mbps_; }

 private:
  [[nodiscard]] std::size_t idx(NodeId u, NodeId v) const {
    return static_cast<std::size_t>(u.get()) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(v.get());
  }

  /// Dijkstra + matrix fill for sources [src_begin, src_end).
  void build_rows(const Topology& topo, int src_begin, int src_end);

  int n_ = 0;
  const Topology* topo_ = nullptr;
  double mean_bandwidth_mbps_ = 0.0;
  // Flattened n x n matrices (float to halve memory at n = 2000).
  std::vector<float> latency_;
  std::vector<float> bandwidth_;
  // next_hop_[u][v] = link id of the first hop on the u -> v path.
  std::vector<LinkId::underlying_type> next_link_;
};

}  // namespace dpjit::net
