#include "net/topology.hpp"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace dpjit::net {

double distance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

void TopologyParams::validate() const {
  auto check = [](bool ok, const char* what) {
    if (!ok) throw std::invalid_argument(std::string("TopologyParams: ") + what);
  };
  check(node_count >= 1, "node_count >= 1");
  check(alpha > 0.0 && alpha <= 1.0, "alpha in (0,1]");
  check(beta > 0.0, "beta > 0");
  check(links_per_node >= 1, "links_per_node >= 1");
  check(plane_size > 0.0, "plane_size > 0");
  check(min_bandwidth_mbps > 0.0 && min_bandwidth_mbps <= max_bandwidth_mbps, "bandwidth bounds");
  check(latency_per_unit >= 0.0, "latency_per_unit >= 0");
}

Topology Topology::generate_waxman(const TopologyParams& params, util::Rng& rng) {
  params.validate();
  Topology topo;
  const int n = params.node_count;
  topo.positions_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    topo.positions_.push_back(Point{rng.uniform(0.0, params.plane_size),
                                    rng.uniform(0.0, params.plane_size)});
  }
  topo.incident_.resize(static_cast<std::size_t>(n));

  const double diag = params.plane_size * std::numbers::sqrt2;
  auto waxman_weight = [&](int u, int v) {
    const double d = distance(topo.positions_[static_cast<std::size_t>(u)],
                              topo.positions_[static_cast<std::size_t>(v)]);
    return params.alpha * std::exp(-d / (params.beta * diag));
  };

  auto add_link = [&](int u, int v) {
    const double d = distance(topo.positions_[static_cast<std::size_t>(u)],
                              topo.positions_[static_cast<std::size_t>(v)]);
    Link link;
    link.a = NodeId{u};
    link.b = NodeId{v};
    link.bandwidth_mbps = rng.uniform(params.min_bandwidth_mbps, params.max_bandwidth_mbps);
    link.latency_s = d * params.latency_per_unit;
    const LinkId id{static_cast<LinkId::underlying_type>(topo.links_.size())};
    topo.links_.push_back(link);
    topo.incident_[static_cast<std::size_t>(u)].push_back(id);
    topo.incident_[static_cast<std::size_t>(v)].push_back(id);
  };

  // Incremental growth: node i joins and picks up to links_per_node distinct
  // existing nodes by Waxman-weighted roulette selection.
  for (int i = 1; i < n; ++i) {
    const int m = std::min(params.links_per_node, i);
    std::vector<char> chosen(static_cast<std::size_t>(i), 0);
    for (int k = 0; k < m; ++k) {
      double total = 0.0;
      for (int j = 0; j < i; ++j) {
        if (!chosen[static_cast<std::size_t>(j)]) total += waxman_weight(i, j);
      }
      int pick = -1;
      if (total <= 0.0) {
        // Degenerate weights (numerically zero): fall back to uniform choice.
        int remaining = 0;
        for (int j = 0; j < i; ++j) remaining += chosen[static_cast<std::size_t>(j)] ? 0 : 1;
        int idx = static_cast<int>(rng.index(static_cast<std::size_t>(remaining)));
        for (int j = 0; j < i; ++j) {
          if (chosen[static_cast<std::size_t>(j)]) continue;
          if (idx-- == 0) {
            pick = j;
            break;
          }
        }
      } else {
        double r = rng.uniform(0.0, total);
        for (int j = 0; j < i; ++j) {
          if (chosen[static_cast<std::size_t>(j)]) continue;
          r -= waxman_weight(i, j);
          if (r <= 0.0) {
            pick = j;
            break;
          }
        }
        if (pick < 0) {  // floating point leftover: take the last unchosen
          for (int j = i - 1; j >= 0; --j) {
            if (!chosen[static_cast<std::size_t>(j)]) {
              pick = j;
              break;
            }
          }
        }
      }
      assert(pick >= 0);
      chosen[static_cast<std::size_t>(pick)] = 1;
      add_link(i, pick);
    }
  }
  return topo;
}

Topology Topology::from_links(int node_count, std::vector<Link> links) {
  if (node_count < 1) throw std::invalid_argument("from_links: node_count >= 1");
  Topology topo;
  topo.positions_.resize(static_cast<std::size_t>(node_count));
  topo.incident_.resize(static_cast<std::size_t>(node_count));
  for (const Link& link : links) {
    if (!link.a.valid() || !link.b.valid() || link.a.get() >= node_count ||
        link.b.get() >= node_count) {
      throw std::out_of_range("from_links: link endpoint out of range");
    }
    // Zero capacity is allowed: a dead/saturated link the fair-sharing model
    // assigns rate 0 across (the bottleneck model treats such paths as
    // unreachable). Note that routing is latency-shortest and bandwidth-blind,
    // so a dead link on the chosen route poisons that pair even when a live
    // detour exists - deliberate: a saturated link drops what is routed over
    // it. Generated Waxman topologies always have positive bounds.
    if (link.bandwidth_mbps < 0.0) throw std::invalid_argument("from_links: bandwidth < 0");
    const LinkId id{static_cast<LinkId::underlying_type>(topo.links_.size())};
    topo.links_.push_back(link);
    topo.incident_[static_cast<std::size_t>(link.a.get())].push_back(id);
    topo.incident_[static_cast<std::size_t>(link.b.get())].push_back(id);
  }
  return topo;
}

const Point& Topology::position(NodeId n) const {
  assert(n.valid() && static_cast<std::size_t>(n.get()) < positions_.size());
  return positions_[static_cast<std::size_t>(n.get())];
}

const Link& Topology::link(LinkId l) const {
  assert(l.valid() && static_cast<std::size_t>(l.get()) < links_.size());
  return links_[static_cast<std::size_t>(l.get())];
}

const std::vector<LinkId>& Topology::incident(NodeId n) const {
  assert(n.valid() && static_cast<std::size_t>(n.get()) < incident_.size());
  return incident_[static_cast<std::size_t>(n.get())];
}

NodeId Topology::other_end(LinkId l, NodeId n) const {
  const Link& link = this->link(l);
  assert(link.a == n || link.b == n);
  return link.a == n ? link.b : link.a;
}

bool Topology::connected() const {
  if (positions_.empty()) return true;
  std::vector<char> seen(positions_.size(), 0);
  std::vector<NodeId> stack{NodeId{0}};
  std::size_t count = 0;
  while (!stack.empty()) {
    NodeId u = stack.back();
    stack.pop_back();
    auto ui = static_cast<std::size_t>(u.get());
    if (seen[ui]) continue;
    seen[ui] = 1;
    ++count;
    for (LinkId l : incident_[ui]) stack.push_back(other_end(l, u));
  }
  return count == positions_.size();
}

}  // namespace dpjit::net
