#include "net/flow_sharing.hpp"

#include <cassert>
#include <cmath>
#include <limits>

namespace dpjit::net {
namespace {

/// Relative slack when testing whether a link saturates at the current round
/// share: keeps ties robust against last-ulp division noise. Links within
/// this band of the minimum freeze together (round-synchronously), which is
/// what makes the result independent of flow order.
constexpr double kShareTolerance = 1e-12;

}  // namespace

std::vector<double> max_min_fair_rates(const std::vector<FlowPath>& flows,
                                       const std::vector<double>& link_capacity_mbps) {
  const std::size_t nf = flows.size();
  std::vector<double> rate(nf, 0.0);
  std::vector<char> frozen(nf, 0);

  // Remaining capacity per link and the number of unfrozen flows crossing it.
  std::vector<double> remaining = link_capacity_mbps;
  std::vector<int> active_count(link_capacity_mbps.size(), 0);
  std::vector<char> bottleneck(link_capacity_mbps.size(), 0);

  std::size_t unfrozen = 0;
  for (std::size_t f = 0; f < nf; ++f) {
    if (flows[f].links.empty()) {
      rate[f] = kInf;  // loopback: no shared resource
      frozen[f] = 1;
      continue;
    }
    ++unfrozen;
    for (LinkId l : flows[f].links) {
      assert(l.valid() && static_cast<std::size_t>(l.get()) < link_capacity_mbps.size());
      ++active_count[static_cast<std::size_t>(l.get())];
    }
  }

  while (unfrozen > 0) {
    // Find the smallest fair share among links carrying unfrozen flows.
    double share = std::numeric_limits<double>::infinity();
    for (std::size_t l = 0; l < remaining.size(); ++l) {
      if (active_count[l] > 0) {
        share = std::min(share, remaining[l] / active_count[l]);
      }
    }
    if (!std::isfinite(share)) break;  // defensive: no constrained link left
    share = std::max(share, 0.0);

    // Round-synchronous freeze: mark every link that saturates at `share`
    // BEFORE subtracting any capacity. A link with ratio > share keeps
    // ratio > share under the subtractions below, so computing the mask from
    // pre-round state is what a sequential freeze gets wrong: mid-round
    // mutation can flip near-tie comparisons depending on flow order.
    for (std::size_t l = 0; l < remaining.size(); ++l) {
      bottleneck[l] = active_count[l] > 0 &&
                      remaining[l] / active_count[l] <= share * (1.0 + kShareTolerance);
    }

    bool froze_any = false;
    for (std::size_t f = 0; f < nf; ++f) {
      if (frozen[f]) continue;
      bool bottlenecked = false;
      for (LinkId l : flows[f].links) {
        if (bottleneck[static_cast<std::size_t>(l.get())]) {
          bottlenecked = true;
          break;
        }
      }
      if (!bottlenecked) continue;
      rate[f] = share;
      frozen[f] = 1;
      froze_any = true;
      --unfrozen;
      for (LinkId l : flows[f].links) {
        const auto li = static_cast<std::size_t>(l.get());
        remaining[li] -= share;
        if (remaining[li] < 0.0) remaining[li] = 0.0;
        --active_count[li];
      }
    }
    if (!froze_any) break;  // defensive: numerical stalemate
  }
  return rate;
}

// ---------------------------------------------------------------------------
// FairShareSolver
// ---------------------------------------------------------------------------

FairShareSolver::FairShareSolver(std::vector<double> link_capacity_mbps)
    : caps_(std::move(link_capacity_mbps)),
      link_flows_(caps_.size()),
      link_mark_(caps_.size(), 0),
      remaining_(caps_.size(), 0.0),
      active_(caps_.size(), 0),
      bottleneck_(caps_.size(), 0) {}

void FairShareSolver::add(std::uint64_t id, std::vector<LinkId> links) {
  auto [it, inserted] = flows_.emplace(id, FlowRec{});
  assert(inserted && "FairShareSolver::add: duplicate flow id");
  (void)inserted;
  FlowRec& rec = it->second;
  rec.links = std::move(links);
  if (rec.links.empty()) {
    rec.rate = kInf;  // loopback: no shared resource, no component
    updated_.clear();
    updated_.emplace_back(id, kInf);
    return;
  }
  rec.slot.resize(rec.links.size());
  for (std::size_t k = 0; k < rec.links.size(); ++k) {
    const LinkId l = rec.links[k];
    assert(l.valid() && static_cast<std::size_t>(l.get()) < caps_.size());
    auto& slots = link_flows_[static_cast<std::size_t>(l.get())];
    rec.slot[k] = static_cast<std::uint32_t>(slots.size());
    slots.push_back(LinkSlot{id, static_cast<std::uint32_t>(k)});
  }
  ++epoch_;
  collect_component(rec.links);
  solve_component();
}

void FairShareSolver::unlink(FlowRec& rec) {
  for (std::size_t k = 0; k < rec.links.size(); ++k) {
    auto& slots = link_flows_[static_cast<std::size_t>(rec.links[k].get())];
    const std::uint32_t s = rec.slot[k];
    assert(s < slots.size());
    slots[s] = slots.back();
    slots.pop_back();
    if (s < slots.size()) {
      // Fix the back-pointer of the entry that swap-erase moved into slot s
      // (it may belong to this very flow when the path crosses a link twice).
      const LinkSlot moved = slots[s];
      flows_.find(moved.flow)->second.slot[moved.path_index] = s;
    }
  }
}

void FairShareSolver::remove(std::uint64_t id) {
  const auto it = flows_.find(id);
  assert(it != flows_.end() && "FairShareSolver::remove: unknown flow id");
  unlink(it->second);
  const std::vector<LinkId> seed = std::move(it->second.links);
  flows_.erase(it);
  ++epoch_;
  collect_component(seed);
  solve_component();
}

void FairShareSolver::remove_batch(const std::vector<std::uint64_t>& ids) {
  std::vector<LinkId> seed;
  for (const std::uint64_t id : ids) {
    const auto it = flows_.find(id);
    assert(it != flows_.end() && "FairShareSolver::remove_batch: unknown flow id");
    unlink(it->second);
    seed.insert(seed.end(), it->second.links.begin(), it->second.links.end());
    flows_.erase(it);
  }
  ++epoch_;
  collect_component(seed);
  solve_component();
}

double FairShareSolver::rate(std::uint64_t id) const {
  const auto it = flows_.find(id);
  assert(it != flows_.end() && "FairShareSolver::rate: unknown flow id");
  return it->second.rate;
}

void FairShareSolver::collect_component(const std::vector<LinkId>& seed_links) const {
  comp_links_.clear();
  comp_flows_.clear();
  for (const LinkId l : seed_links) {
    const auto li = static_cast<std::uint32_t>(l.get());
    if (link_mark_[li] != epoch_) {
      link_mark_[li] = epoch_;
      comp_links_.push_back(li);
    }
  }
  // BFS over the flow/link sharing graph; comp_links_ doubles as the frontier.
  for (std::size_t head = 0; head < comp_links_.size(); ++head) {
    for (const LinkSlot& s : link_flows_[comp_links_[head]]) {
      const FlowRec& f = flows_.find(s.flow)->second;
      if (f.mark == epoch_) continue;
      f.mark = epoch_;
      comp_flows_.push_back(s.flow);
      for (const LinkId fl : f.links) {
        const auto li = static_cast<std::uint32_t>(fl.get());
        if (link_mark_[li] != epoch_) {
          link_mark_[li] = epoch_;
          comp_links_.push_back(li);
        }
      }
    }
  }
}

void FairShareSolver::solve_component() {
  // Same round-synchronous progressive filling as max_min_fair_rates, but
  // restricted to the collected component and freezing flows through the
  // per-link flow sets. Disjoint components are independent subproblems, so
  // the rates computed here are the ones a full solve would assign: the
  // per-round shares of a component are computed from per-link state only its
  // own flows mutate, and every flow frozen in a round subtracts the same
  // share value, making the arithmetic identical operation-for-operation.
  // (Sole caveat: a cross-component tie within kShareTolerance can merge two
  // freeze rounds in the full solve; capacities that close are last-ulp
  // noise, and the differential tests exercise exactly this equivalence.)
  updated_.clear();
  for (const std::uint32_t li : comp_links_) {
    remaining_[li] = caps_[li];
    active_[li] = 0;
    bottleneck_[li] = 0;
  }
  for (const std::uint64_t fid : comp_flows_) {
    FlowRec& f = flows_.find(fid)->second;
    f.frozen = false;
    for (const LinkId l : f.links) ++active_[static_cast<std::size_t>(l.get())];
  }

  std::size_t unfrozen = comp_flows_.size();
  while (unfrozen > 0) {
    double share = std::numeric_limits<double>::infinity();
    for (const std::uint32_t li : comp_links_) {
      if (active_[li] > 0) share = std::min(share, remaining_[li] / active_[li]);
    }
    if (!std::isfinite(share)) break;  // defensive: no constrained link left
    share = std::max(share, 0.0);

    for (const std::uint32_t li : comp_links_) {
      bottleneck_[li] =
          active_[li] > 0 && remaining_[li] / active_[li] <= share * (1.0 + kShareTolerance);
    }

    bool froze_any = false;
    for (const std::uint32_t li : comp_links_) {
      if (!bottleneck_[li]) continue;
      for (const LinkSlot& s : link_flows_[li]) {
        FlowRec& f = flows_.find(s.flow)->second;
        if (f.frozen) continue;
        f.frozen = true;
        f.rate = share;
        froze_any = true;
        --unfrozen;
        for (const LinkId fl : f.links) {
          const auto i = static_cast<std::size_t>(fl.get());
          remaining_[i] -= share;
          if (remaining_[i] < 0.0) remaining_[i] = 0.0;
          --active_[i];
        }
      }
    }
    if (!froze_any) break;  // defensive: numerical stalemate
  }

  for (const std::uint64_t fid : comp_flows_) {
    FlowRec& f = flows_.find(fid)->second;
    if (!f.frozen) f.rate = 0.0;  // stalemate fallback, mirrors the reference
    updated_.emplace_back(fid, f.rate);
  }
}

double FairShareSolver::probe_rate(const std::vector<LinkId>& links) const {
  if (links.empty()) return kInf;  // loopback: no shared resource
  ++epoch_;
  collect_component(links);

  // Mirror solve_component()'s initialization, with the probe flow's
  // crossings counted into the active sets but the flow itself kept phantom:
  // it never enters link_flows_, so the freeze scan below only ever touches
  // real flows. Every arithmetic operation up to the probe flow's freeze
  // round is then operation-for-operation identical to what add() would do,
  // which is what makes probe == rate-after-add bit-exact.
  for (const std::uint32_t li : comp_links_) {
    remaining_[li] = caps_[li];
    active_[li] = 0;
    bottleneck_[li] = 0;
  }
  for (const std::uint64_t fid : comp_flows_) {
    const FlowRec& f = flows_.find(fid)->second;
    f.frozen = false;
    for (const LinkId l : f.links) ++active_[static_cast<std::size_t>(l.get())];
  }
  for (const LinkId l : links) {
    assert(l.valid() && static_cast<std::size_t>(l.get()) < caps_.size());
    ++active_[static_cast<std::size_t>(l.get())];
  }

  while (true) {
    double share = std::numeric_limits<double>::infinity();
    for (const std::uint32_t li : comp_links_) {
      if (active_[li] > 0) share = std::min(share, remaining_[li] / active_[li]);
    }
    // The probe flow keeps every link it crosses active until it freezes, so
    // `share` stays finite; guard anyway to mirror the solver's defense.
    if (!std::isfinite(share)) return 0.0;
    share = std::max(share, 0.0);

    for (const std::uint32_t li : comp_links_) {
      bottleneck_[li] =
          active_[li] > 0 && remaining_[li] / active_[li] <= share * (1.0 + kShareTolerance);
    }

    // The probe flow freezes (at exactly this round's share) as soon as any
    // of its links is in the bottleneck mask - the same round-synchronous
    // condition add()'s solve applies to the real flow.
    for (const LinkId l : links) {
      if (bottleneck_[static_cast<std::size_t>(l.get())]) return share;
    }

    bool froze_any = false;
    for (const std::uint32_t li : comp_links_) {
      if (!bottleneck_[li]) continue;
      for (const LinkSlot& s : link_flows_[li]) {
        const FlowRec& f = flows_.find(s.flow)->second;
        if (f.frozen) continue;
        f.frozen = true;
        froze_any = true;
        for (const LinkId fl : f.links) {
          const auto i = static_cast<std::size_t>(fl.get());
          remaining_[i] -= share;
          if (remaining_[i] < 0.0) remaining_[i] = 0.0;
          --active_[i];
        }
      }
    }
    if (!froze_any) return 0.0;  // numerical stalemate: mirrors the 0-rate fallback
  }
}

std::vector<std::pair<std::uint64_t, double>> FairShareSolver::full_solve() const {
  std::vector<std::uint64_t> ids;
  std::vector<FlowPath> paths;
  ids.reserve(flows_.size());
  paths.reserve(flows_.size());
  for (const auto& [id, rec] : flows_) {
    ids.push_back(id);
    paths.push_back(FlowPath{rec.links});
  }
  const auto rates = max_min_fair_rates(paths, caps_);
  std::vector<std::pair<std::uint64_t, double>> out;
  out.reserve(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) out.emplace_back(ids[i], rates[i]);
  return out;
}

}  // namespace dpjit::net
