#include "net/flow_sharing.hpp"

#include <cassert>
#include <cmath>
#include <limits>

namespace dpjit::net {

std::vector<double> max_min_fair_rates(const std::vector<FlowPath>& flows,
                                       const std::vector<double>& link_capacity_mbps) {
  const std::size_t nf = flows.size();
  std::vector<double> rate(nf, 0.0);
  std::vector<char> frozen(nf, 0);

  // Remaining capacity per link and the number of unfrozen flows crossing it.
  std::vector<double> remaining = link_capacity_mbps;
  std::vector<int> active_count(link_capacity_mbps.size(), 0);

  std::size_t unfrozen = 0;
  for (std::size_t f = 0; f < nf; ++f) {
    if (flows[f].links.empty()) {
      rate[f] = kInf;  // loopback: no shared resource
      frozen[f] = 1;
      continue;
    }
    ++unfrozen;
    for (LinkId l : flows[f].links) {
      assert(l.valid() && static_cast<std::size_t>(l.get()) < link_capacity_mbps.size());
      ++active_count[static_cast<std::size_t>(l.get())];
    }
  }

  while (unfrozen > 0) {
    // Find the link with the smallest fair share among links carrying flows.
    double share = std::numeric_limits<double>::infinity();
    for (std::size_t l = 0; l < remaining.size(); ++l) {
      if (active_count[l] > 0) {
        share = std::min(share, remaining[l] / active_count[l]);
      }
    }
    if (!std::isfinite(share)) break;  // defensive: no constrained link left
    share = std::max(share, 0.0);

    // Freeze every unfrozen flow crossing a link that saturates at `share`.
    // (Comparing the fair share with a small tolerance keeps this robust.)
    bool froze_any = false;
    for (std::size_t f = 0; f < nf; ++f) {
      if (frozen[f]) continue;
      bool bottlenecked = false;
      for (LinkId l : flows[f].links) {
        const auto li = static_cast<std::size_t>(l.get());
        if (remaining[li] / active_count[li] <= share * (1.0 + 1e-12)) {
          bottlenecked = true;
          break;
        }
      }
      if (!bottlenecked) continue;
      rate[f] = share;
      frozen[f] = 1;
      froze_any = true;
      --unfrozen;
      for (LinkId l : flows[f].links) {
        const auto li = static_cast<std::size_t>(l.get());
        remaining[li] -= share;
        if (remaining[li] < 0.0) remaining[li] = 0.0;
        --active_count[li];
      }
    }
    if (!froze_any) break;  // defensive: numerical stalemate
  }
  return rate;
}

}  // namespace dpjit::net
