#include "net/flow_sharing.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace dpjit::net {
namespace {

/// Relative slack when testing whether a link saturates at the current round
/// share: keeps ties robust against last-ulp division noise. Links within
/// this band of the minimum freeze together (round-synchronously), which is
/// what makes the result independent of flow order.
constexpr double kShareTolerance = 1e-12;


}  // namespace

std::vector<double> max_min_fair_rates(const std::vector<FlowPath>& flows,
                                       const std::vector<double>& link_capacity_mbps) {
  const std::size_t nf = flows.size();
  std::vector<double> rate(nf, 0.0);
  std::vector<char> frozen(nf, 0);

  // Remaining capacity per link and the number of unfrozen flows crossing it.
  std::vector<double> remaining = link_capacity_mbps;
  std::vector<int> active_count(link_capacity_mbps.size(), 0);
  std::vector<char> bottleneck(link_capacity_mbps.size(), 0);

  std::size_t unfrozen = 0;
  for (std::size_t f = 0; f < nf; ++f) {
    if (flows[f].links.empty()) {
      rate[f] = kInf;  // loopback: no shared resource
      frozen[f] = 1;
      continue;
    }
    ++unfrozen;
    for (LinkId l : flows[f].links) {
      assert(l.valid() && static_cast<std::size_t>(l.get()) < link_capacity_mbps.size());
      ++active_count[static_cast<std::size_t>(l.get())];
    }
  }

  while (unfrozen > 0) {
    // Find the smallest fair share among links carrying unfrozen flows.
    double share = std::numeric_limits<double>::infinity();
    for (std::size_t l = 0; l < remaining.size(); ++l) {
      if (active_count[l] > 0) {
        share = std::min(share, remaining[l] / active_count[l]);
      }
    }
    if (!std::isfinite(share)) break;  // defensive: no constrained link left
    share = std::max(share, 0.0);

    // Round-synchronous freeze: mark every link that saturates at `share`
    // BEFORE subtracting any capacity. A link with ratio > share keeps
    // ratio > share under the subtractions below, so computing the mask from
    // pre-round state is what a sequential freeze gets wrong: mid-round
    // mutation can flip near-tie comparisons depending on flow order.
    for (std::size_t l = 0; l < remaining.size(); ++l) {
      bottleneck[l] = active_count[l] > 0 &&
                      remaining[l] / active_count[l] <= share * (1.0 + kShareTolerance);
    }

    bool froze_any = false;
    for (std::size_t f = 0; f < nf; ++f) {
      if (frozen[f]) continue;
      bool bottlenecked = false;
      for (LinkId l : flows[f].links) {
        if (bottleneck[static_cast<std::size_t>(l.get())]) {
          bottlenecked = true;
          break;
        }
      }
      if (!bottlenecked) continue;
      rate[f] = share;
      frozen[f] = 1;
      froze_any = true;
      --unfrozen;
      for (LinkId l : flows[f].links) {
        const auto li = static_cast<std::size_t>(l.get());
        remaining[li] -= share;
        if (remaining[li] < 0.0) remaining[li] = 0.0;
        --active_count[li];
      }
    }
    if (!froze_any) break;  // defensive: numerical stalemate
  }
  return rate;
}

// ---------------------------------------------------------------------------
// FairShareSolver
// ---------------------------------------------------------------------------

FairShareSolver::FairShareSolver(std::vector<double> link_capacity_mbps)
    : caps_(std::move(link_capacity_mbps)),
      link_flows_(caps_.size()),
      link_mark_(caps_.size(), 0),
      remaining_(caps_.size(), 0.0),
      active_(caps_.size(), 0),
      ratio_(caps_.size(), 0.0),
      bottleneck_(caps_.size(), 0),
      touch_mark_(caps_.size(), 0),
      link_sched_(caps_.size(), {0, 0}) {}

void FairShareSolver::add(std::uint64_t id, std::vector<LinkId> links, void* user) {
  ++mutation_stamp_;
  auto [it, inserted] = flows_.emplace(id, FlowRec{});
  assert(inserted && "FairShareSolver::add: duplicate flow id");
  (void)inserted;
  FlowRec& rec = it->second;
  rec.links = std::move(links);
  rec.user = user;
  if (rec.links.empty()) {
    rec.rate = kInf;  // loopback: no shared resource, no component
    updated_.clear();
    updated_.push_back(UpdatedFlow{id, kInf, user});
    return;
  }
  rec.slot.resize(rec.links.size());
  for (std::size_t k = 0; k < rec.links.size(); ++k) {
    const LinkId l = rec.links[k];
    assert(l.valid() && static_cast<std::size_t>(l.get()) < caps_.size());
    auto& slots = link_flows_[static_cast<std::size_t>(l.get())];
    rec.slot[k] = static_cast<std::uint32_t>(slots.size());
    slots.push_back(LinkSlot{id, static_cast<std::uint32_t>(k), &rec});
  }
  ++epoch_;
  collect_component(rec.links);
  solve_component();
}

void FairShareSolver::unlink(FlowRec& rec) {
  for (std::size_t k = 0; k < rec.links.size(); ++k) {
    auto& slots = link_flows_[static_cast<std::size_t>(rec.links[k].get())];
    const std::uint32_t s = rec.slot[k];
    assert(s < slots.size());
    slots[s] = slots.back();
    slots.pop_back();
    if (s < slots.size()) {
      // Fix the back-pointer of the entry that swap-erase moved into slot s
      // (it may belong to this very flow when the path crosses a link twice).
      const LinkSlot moved = slots[s];
      moved.rec->slot[moved.path_index] = s;
    }
  }
}

void FairShareSolver::remove(std::uint64_t id) {
  ++mutation_stamp_;
  const auto it = flows_.find(id);
  assert(it != flows_.end() && "FairShareSolver::remove: unknown flow id");
  unlink(it->second);
  const std::vector<LinkId> seed = std::move(it->second.links);
  flows_.erase(it);
  ++epoch_;
  collect_component(seed);
  solve_component();
}

void FairShareSolver::remove_batch(const std::vector<std::uint64_t>& ids) {
  ++mutation_stamp_;
  std::vector<LinkId> seed;
  for (const std::uint64_t id : ids) {
    const auto it = flows_.find(id);
    assert(it != flows_.end() && "FairShareSolver::remove_batch: unknown flow id");
    unlink(it->second);
    seed.insert(seed.end(), it->second.links.begin(), it->second.links.end());
    flows_.erase(it);
  }
  ++epoch_;
  collect_component(seed);
  solve_component();
}

double FairShareSolver::rate(std::uint64_t id) const {
  const auto it = flows_.find(id);
  assert(it != flows_.end() && "FairShareSolver::rate: unknown flow id");
  return it->second.rate;
}

void FairShareSolver::collect_component(const std::vector<LinkId>& seed_links) const {
  comp_links_.clear();
  comp_flows_.clear();
  for (const LinkId l : seed_links) {
    const auto li = static_cast<std::uint32_t>(l.get());
    if (link_mark_[li] != epoch_) {
      link_mark_[li] = epoch_;
      remaining_[li] = caps_[li];
      active_[li] = 0;
      comp_links_.push_back(li);
    }
  }
  // BFS over the flow/link sharing graph; comp_links_ doubles as the
  // frontier. The fill state is seeded in the same walk (reset at link
  // discovery, one active increment per crossing at flow discovery), so the
  // solve and schedule-build paths start without another pass over the
  // component's flow paths.
  for (std::size_t head = 0; head < comp_links_.size(); ++head) {
    for (const LinkSlot& s : link_flows_[comp_links_[head]]) {
      const FlowRec& f = *s.rec;
      if (f.mark == epoch_) continue;
      f.mark = epoch_;
      f.frozen = false;
      comp_flows_.emplace_back(s.flow, s.rec);
      for (const LinkId fl : f.links) {
        const auto li = static_cast<std::uint32_t>(fl.get());
        if (link_mark_[li] != epoch_) {
          link_mark_[li] = epoch_;
          remaining_[li] = caps_[li];
          active_[li] = 0;
          comp_links_.push_back(li);
        }
        ++active_[li];
      }
    }
  }
}

void FairShareSolver::solve_component() {
  // Same round-synchronous progressive filling as max_min_fair_rates, but
  // restricted to the collected component and freezing flows through the
  // per-link flow sets. Disjoint components are independent subproblems, so
  // the rates computed here are the ones a full solve would assign: the
  // per-round shares of a component are computed from per-link state only its
  // own flows mutate, and every flow frozen in a round subtracts the same
  // share value, making the arithmetic identical operation-for-operation.
  // (Sole caveat: a cross-component tie within kShareTolerance can merge two
  // freeze rounds in the full solve; capacities that close are last-ulp
  // noise, and the differential tests exercise exactly this equivalence.)
  //
  // Three constant-factor devices, each provably bit-neutral:
  //  - ratio_ memoizes remaining/active per link, refreshed only for links a
  //    freeze touched (same operands -> same quotient as dividing fresh);
  //  - links whose active count hits 0 are compacted out of comp_links_
  //    during the share scan (a drained link can never regain a flow);
  //  - the bottleneck mask is fused into the freeze scan: ratio_ is frozen
  //    for the duration of a round, so testing it mid-scan reads exactly the
  //    pre-round state the two-pass mask was computed from, and the frozen
  //    SET is therefore identical; within a round the subtractions commute
  //    (every freeze subtracts the same share, clamped at 0).
  // collect_component() already reset the member links and counted active
  // crossings; only the ratio cache needs seeding here.
  updated_.clear();
  std::size_t alive = 0;
  for (const std::uint32_t li : comp_links_) {
    if (active_[li] == 0) continue;  // seed of a removed flow: no carriers left
    ratio_[li] = remaining_[li] / active_[li];
    comp_links_[alive++] = li;
  }
  comp_links_.resize(alive);

  // Near/far water-level partition. Per-link ratios are non-decreasing over
  // rounds (an unfrozen link has remaining/active > share, and
  // (R - k*s)/(A - k) > R/A whenever R/A > s), so the round share sweeps
  // upward through the ratio levels. Keeping only the kNearTarget
  // smallest-ratio links in a "near" scan set and remembering far_min, the
  // exact minimum over the rest, lets each round scan O(kNearTarget) links:
  // while share * (1 + tol) stays below far_min's guard, the near minimum IS
  // the global minimum (every far ratio only rose since the partition) and no
  // far link can be in the bottleneck band, so the round is bit-identical to
  // a full scan. The kFarGuard margin (1e-9, versus ~1e-15 of accumulated
  // rounding on a ratio) keeps an ulp-level dip of a far ratio below its
  // recorded floor from ever being mistaken for "still above the near
  // minimum". When the trigger fires, the round falls back to a full scan
  // and the partition is rebuilt from post-round ratios.
  constexpr std::size_t kNearTarget = 64;
  constexpr double kFarGuard = 1.0 - 1e-9;
  std::size_t near_n = 0;  // comp_links_[0..near_n) is the near set
  double far_trip = -std::numeric_limits<double>::infinity();

  std::size_t unfrozen = comp_flows_.size();
  while (unfrozen > 0) {
    double share = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < near_n;) {
      const std::uint32_t li = comp_links_[i];
      if (active_[li] == 0) {  // drained by an earlier round; never refills
        comp_links_[i] = comp_links_[--near_n];
        comp_links_[near_n] = comp_links_.back();
        comp_links_.pop_back();
        continue;
      }
      share = std::min(share, ratio_[li]);
      ++i;
    }
    const bool full_round = !(share * (1.0 + kShareTolerance) < far_trip);
    if (full_round) {
      // Near set exhausted or the water level reached the far band: rescan
      // everything (this also compacts links drained while far).
      share = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < comp_links_.size();) {
        const std::uint32_t li = comp_links_[i];
        if (active_[li] == 0) {
          comp_links_[i] = comp_links_.back();
          comp_links_.pop_back();
          continue;
        }
        share = std::min(share, ratio_[li]);
        ++i;
      }
    }
    if (!std::isfinite(share)) break;  // defensive: no constrained link left
    share = std::max(share, 0.0);
    const double band = share * (1.0 + kShareTolerance);

    bool froze_any = false;
    touched_.clear();
    ++touch_stamp_;
    const std::size_t scan_n = full_round ? comp_links_.size() : near_n;
    for (std::size_t i = 0; i < scan_n; ++i) {
      const std::uint32_t li = comp_links_[i];
      if (ratio_[li] > band) continue;  // not a bottleneck this round
      for (const LinkSlot& s : link_flows_[li]) {
        FlowRec& f = *s.rec;
        if (f.frozen) continue;
        f.frozen = true;
        f.rate = share;
        froze_any = true;
        --unfrozen;
        for (const LinkId fl : f.links) {
          const auto i2 = static_cast<std::size_t>(fl.get());
          remaining_[i2] -= share;
          if (remaining_[i2] < 0.0) remaining_[i2] = 0.0;
          --active_[i2];
          if (touch_mark_[i2] != touch_stamp_) {
            touch_mark_[i2] = touch_stamp_;
            touched_.push_back(static_cast<std::uint32_t>(i2));
          }
        }
      }
    }
    if (!froze_any) break;  // defensive: numerical stalemate
    for (const std::uint32_t li : touched_) {
      if (active_[li] > 0) ratio_[li] = remaining_[li] / active_[li];
    }
    if (full_round) {
      // Rebuild the partition from post-round ratios. Links drained this
      // round may land on either side with a stale ratio; the near scan
      // compacts them and the far minimum skips them.
      if (comp_links_.size() <= kNearTarget * 2) {
        near_n = comp_links_.size();
        far_trip = kInf;  // no far set: every round is a near round
      } else {
        std::nth_element(comp_links_.begin(),
                         comp_links_.begin() + static_cast<std::ptrdiff_t>(kNearTarget),
                         comp_links_.end(), [this](std::uint32_t a, std::uint32_t b) {
                           return ratio_[a] < ratio_[b];
                         });
        near_n = kNearTarget;
        double far_min = std::numeric_limits<double>::infinity();
        for (std::size_t i = kNearTarget; i < comp_links_.size(); ++i) {
          const std::uint32_t li = comp_links_[i];
          if (active_[li] > 0) far_min = std::min(far_min, ratio_[li]);
        }
        far_trip = far_min * kFarGuard;
      }
    }
  }

  for (const auto& cf : comp_flows_) {
    FlowRec* f = cf.second;
    if (!f->frozen) f->rate = 0.0;  // stalemate fallback, mirrors the reference
    updated_.push_back(UpdatedFlow{cf.first, f->rate, f->user});
  }
}

std::uint32_t FairShareSolver::build_probe_schedule(LinkId seed) const {
  const auto idx = static_cast<std::uint32_t>(scheds_.size());
  scheds_.emplace_back();

  ++epoch_;
  const std::vector<LinkId> seed_vec{seed};
  collect_component(seed_vec);
  // Label every member link: any flowed link of this component now resolves
  // to this schedule for as long as the mutation stamp holds. (Seeding from a
  // single flowed link and walking flow adjacencies only means a "component"
  // here is exactly one flow-connected island - flowless probe links never
  // glue two islands into one label.)
  for (const std::uint32_t li : comp_links_) {
    link_sched_[li] = {sched_stamp_, idx};
  }

  // Replay solve_component()'s progressive fill on the scratch arrays -
  // identical arithmetic, identical rounds - but record instead of assign:
  // the share of every round, and a checkpoint for each link a freeze
  // touched. FlowRec::rate is never written (probes are pure); the mutable
  // frozen flags are solve scratch and get reset by the next solve anyway.
  ProbeSchedule& sched = scheds_[idx];
  sched.links.reserve(comp_links_.size());
  for (const std::uint32_t li : comp_links_) {
    sched.links.emplace(li, ProbeSchedule::LinkTrack{active_[li], 0, 0});
    if (active_[li] > 0) ratio_[li] = remaining_[li] / active_[li];
  }

  struct RawEvent {
    std::uint32_t link;
    ProbeSchedule::LinkEvent ev;
  };
  std::vector<RawEvent> raw;
  raw.reserve(comp_links_.size() * 2);

  std::size_t unfrozen = comp_flows_.size();
  std::uint32_t round = 0;
  while (unfrozen > 0) {
    double share = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < comp_links_.size();) {
      const std::uint32_t li = comp_links_[i];
      if (active_[li] == 0) {
        comp_links_[i] = comp_links_.back();
        comp_links_.pop_back();
        continue;
      }
      share = std::min(share, ratio_[li]);
      ++i;
    }
    if (!std::isfinite(share)) break;  // defensive break: schedule unusable
    share = std::max(share, 0.0);
    sched.round_share.push_back(share);
    const double band = share * (1.0 + kShareTolerance);

    bool froze_any = false;
    touched_.clear();
    for (const std::uint32_t li : comp_links_) {
      if (ratio_[li] > band) continue;
      for (const LinkSlot& s : link_flows_[li]) {
        const FlowRec& f = *s.rec;
        if (f.frozen) continue;
        f.frozen = true;
        froze_any = true;
        --unfrozen;
        for (const LinkId fl : f.links) {
          const auto i2 = static_cast<std::size_t>(fl.get());
          remaining_[i2] -= share;
          if (remaining_[i2] < 0.0) remaining_[i2] = 0.0;
          --active_[i2];
          touched_.push_back(static_cast<std::uint32_t>(i2));
        }
      }
    }
    if (!froze_any) break;  // numerical stalemate: schedule unusable
    // Checkpoint every link this round's freezes changed: the recorded state
    // holds from the START of round `round + 1`.
    std::sort(touched_.begin(), touched_.end());
    touched_.erase(std::unique(touched_.begin(), touched_.end()), touched_.end());
    for (const std::uint32_t li : touched_) {
      if (active_[li] > 0) ratio_[li] = remaining_[li] / active_[li];
      raw.push_back(RawEvent{li, {round + 1, active_[li], remaining_[li]}});
    }
    ++round;
  }
  sched.clean = unfrozen == 0;

  if (sched.clean) {
    // Group the checkpoints per link (round order within a link is already
    // ascending; stable sort preserves it).
    std::stable_sort(raw.begin(), raw.end(),
                     [](const RawEvent& a, const RawEvent& b) { return a.link < b.link; });
    sched.events.reserve(raw.size());
    for (const RawEvent& r : raw) {
      ProbeSchedule::LinkTrack& track = sched.links.find(r.link)->second;
      if (track.count == 0) track.first = static_cast<std::uint32_t>(sched.events.size());
      ++track.count;
      sched.events.push_back(r.ev);
    }
  }
  return idx;
}

double FairShareSolver::probe_rate(const std::vector<LinkId>& links) const {
  if (links.empty()) return kInf;  // loopback: no shared resource

  if (sched_stamp_ != mutation_stamp_ + 1) {
    // First probe since a mutation: drop the stale schedules. The per-link
    // labels invalidate themselves (they carry the stamp they were set at).
    scheds_.clear();
    sched_stamp_ = mutation_stamp_ + 1;
  }

  // Group the path to (link, crossings): add() counts one active per
  // crossing, so the phantom overlay must too. Paths are short; quadratic
  // grouping beats sorting here.
  probe_cursors_.clear();
  for (const LinkId l : links) {
    assert(l.valid() && static_cast<std::size_t>(l.get()) < caps_.size());
    const auto li = static_cast<std::uint32_t>(l.get());
    bool grouped = false;
    for (ProbeCursor& c : probe_cursors_) {
      if (c.link == li) {
        ++c.crossings;
        grouped = true;
        break;
      }
    }
    if (!grouped) probe_cursors_.push_back(ProbeCursor{li, 1, 0, 0.0, 0, 0});
  }

  // Resolve the flow component. All flowed links must land in ONE schedule:
  // a probe spanning two islands would merge them, which no recorded
  // single-island schedule can replay - fall back to the from-scratch probe.
  std::int64_t comp = -1;
  for (const ProbeCursor& c : probe_cursors_) {
    if (link_flows_[c.link].empty()) continue;  // flowless: plain capacity
    if (link_sched_[c.link].first != sched_stamp_) {
      build_probe_schedule(LinkId(static_cast<std::int32_t>(c.link)));
    }
    const std::uint32_t cidx = link_sched_[c.link].second;
    if (comp < 0) {
      comp = cidx;
    } else if (static_cast<std::uint32_t>(comp) != cidx) {
      return probe_rate_reference(links);
    }
  }
  if (comp >= 0 && !scheds_[static_cast<std::size_t>(comp)].clean) {
    return probe_rate_reference(links);  // builder hit a defensive break
  }

  double result;
  if (comp < 0) {
    // Every crossed link is flowless: the fill has a single round whose share
    // is the probe's own bottleneck.
    double m = std::numeric_limits<double>::infinity();
    for (const ProbeCursor& c : probe_cursors_) {
      m = std::min(m, caps_[c.link] / c.crossings);
    }
    result = std::max(m, 0.0);
  } else {
    const ProbeSchedule& sched = scheds_[static_cast<std::size_t>(comp)];
    // Attach each cursor: member links replay their recorded trajectory with
    // the phantom crossings overlaid on the active count; flowless links are
    // constant (cap, crossings) states.
    for (ProbeCursor& c : probe_cursors_) {
      const auto it = sched.links.find(c.link);
      if (it == sched.links.end()) {
        c.active = c.crossings;
        c.remaining = caps_[c.link];
        c.next = c.end = 0;
      } else {
        c.active = it->second.active0 + c.crossings;
        c.remaining = caps_[c.link];
        c.next = it->second.first;
        c.end = it->second.first + it->second.count;
      }
    }

    // Walk the recorded rounds. m is the probe flow's own bottleneck ratio
    // (min over its links of remaining/active-with-phantom). The phantom's
    // extra crossings only ever LOWER ratios of links the probe itself
    // crosses, so until the freeze test below fires, the recorded unmodified
    // process and the probe-modified process are bit-identical; the round it
    // fires, the modified round share is min(S[r], m) and the probe is in
    // the bottleneck mask - exactly the reference's early return.
    double m = std::numeric_limits<double>::infinity();
    for (const ProbeCursor& c : probe_cursors_) {
      m = std::min(m, c.remaining / c.active);
    }
    const auto rounds = static_cast<std::uint32_t>(sched.round_share.size());
    bool done = false;
    result = 0.0;
    for (std::uint32_t r = 0; r < rounds && !done; ++r) {
      bool moved = false;
      for (ProbeCursor& c : probe_cursors_) {
        while (c.next != c.end && sched.events[c.next].round == r) {
          c.remaining = sched.events[c.next].remaining;
          c.active = sched.events[c.next].active + c.crossings;
          ++c.next;
          moved = true;
        }
      }
      if (moved) {
        m = std::numeric_limits<double>::infinity();
        for (const ProbeCursor& c : probe_cursors_) {
          m = std::min(m, c.remaining / c.active);
        }
      }
      const double share = sched.round_share[r];
      if (m <= share * (1.0 + kShareTolerance)) {
        result = std::min(share, m);
        done = true;
      }
    }
    if (!done) {
      // Drained: every real flow froze without saturating the probe. The
      // reference's next round has only the phantom active - apply the tail
      // checkpoints and return its final bottleneck.
      for (ProbeCursor& c : probe_cursors_) {
        while (c.next != c.end) {
          c.remaining = sched.events[c.next].remaining;
          c.active = sched.events[c.next].active + c.crossings;
          ++c.next;
        }
      }
      double fin = std::numeric_limits<double>::infinity();
      for (const ProbeCursor& c : probe_cursors_) {
        fin = std::min(fin, c.remaining / c.active);
      }
      result = std::max(fin, 0.0);
    }
  }

#ifndef NDEBUG
  // Sampled differential check: the replay must match the from-scratch probe
  // bit-for-bit. Cheap enough to leave on in every debug run.
  if ((++probe_count_ & 63u) == 0) {
    assert(result == probe_rate_reference(links) &&
           "probe schedule replay diverged from the from-scratch probe");
  }
#endif
  return result;
}

double FairShareSolver::probe_rate_reference(const std::vector<LinkId>& links) const {
  if (links.empty()) return kInf;  // loopback: no shared resource
  ++epoch_;
  collect_component(links);

  // Mirror the progressive fill's initialization, with the probe flow's
  // crossings counted into the active sets but the flow itself kept phantom:
  // it never enters link_flows_, so the freeze scan below only ever touches
  // real flows. Every arithmetic operation up to the probe flow's freeze
  // round is then operation-for-operation identical to what add() would do,
  // which is what makes probe == rate-after-add bit-exact. (This is the
  // pre-schedule implementation, kept verbatim: the slow-path fallback, the
  // differential anchor for probe_rate(), and the perf harness's "before".)
  for (const std::uint32_t li : comp_links_) {
    remaining_[li] = caps_[li];
    active_[li] = 0;
    bottleneck_[li] = 0;
  }
  for (const auto& cf : comp_flows_) {
    const FlowRec* f = cf.second;
    f->frozen = false;
    for (const LinkId l : f->links) ++active_[static_cast<std::size_t>(l.get())];
  }
  for (const LinkId l : links) {
    assert(l.valid() && static_cast<std::size_t>(l.get()) < caps_.size());
    ++active_[static_cast<std::size_t>(l.get())];
  }

  while (true) {
    double share = std::numeric_limits<double>::infinity();
    for (const std::uint32_t li : comp_links_) {
      if (active_[li] > 0) share = std::min(share, remaining_[li] / active_[li]);
    }
    // The probe flow keeps every link it crosses active until it freezes, so
    // `share` stays finite; guard anyway to mirror the solver's defense.
    if (!std::isfinite(share)) return 0.0;
    share = std::max(share, 0.0);

    for (const std::uint32_t li : comp_links_) {
      bottleneck_[li] =
          active_[li] > 0 && remaining_[li] / active_[li] <= share * (1.0 + kShareTolerance);
    }

    // The probe flow freezes (at exactly this round's share) as soon as any
    // of its links is in the bottleneck mask - the same round-synchronous
    // condition add()'s solve applies to the real flow.
    for (const LinkId l : links) {
      if (bottleneck_[static_cast<std::size_t>(l.get())]) return share;
    }

    bool froze_any = false;
    for (const std::uint32_t li : comp_links_) {
      if (!bottleneck_[li]) continue;
      for (const LinkSlot& s : link_flows_[li]) {
        const FlowRec& f = *s.rec;
        if (f.frozen) continue;
        f.frozen = true;
        froze_any = true;
        for (const LinkId fl : f.links) {
          const auto i = static_cast<std::size_t>(fl.get());
          remaining_[i] -= share;
          if (remaining_[i] < 0.0) remaining_[i] = 0.0;
          --active_[i];
        }
      }
    }
    if (!froze_any) return 0.0;  // numerical stalemate: mirrors the 0-rate fallback
  }
}

std::vector<std::pair<std::uint64_t, double>> FairShareSolver::full_solve() const {
  std::vector<std::uint64_t> ids;
  std::vector<FlowPath> paths;
  ids.reserve(flows_.size());
  paths.reserve(flows_.size());
  for (const auto& [id, rec] : flows_) {
    ids.push_back(id);
    paths.push_back(FlowPath{rec.links});
  }
  const auto rates = max_min_fair_rates(paths, caps_);
  std::vector<std::pair<std::uint64_t, double>> out;
  out.reserve(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) out.emplace_back(ids[i], rates[i]);
  return out;
}

}  // namespace dpjit::net
