#include "net/routing.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <queue>
#include <vector>

#include "util/parallel.hpp"

namespace dpjit::net {
namespace {

/// Reusable per-worker Dijkstra scratch, allocated once per worker instead of
/// once per source.
struct DijkstraScratch {
  std::vector<double> dist;
  std::vector<LinkId> via;  // link used to reach node
  std::vector<int> parent;  // previous node on path

  explicit DijkstraScratch(std::size_t n) : dist(n), via(n), parent(n) {}
};

}  // namespace

void Routing::build_rows(const Topology& topo, int src_begin, int src_end) {
  using QEntry = std::pair<double, int>;  // (distance, node)
  DijkstraScratch scratch(static_cast<std::size_t>(n_));
  auto& dist = scratch.dist;
  auto& via = scratch.via;
  auto& parent = scratch.parent;

  for (int src = src_begin; src < src_end; ++src) {
    std::fill(dist.begin(), dist.end(), std::numeric_limits<double>::infinity());
    std::fill(via.begin(), via.end(), LinkId{});
    std::fill(parent.begin(), parent.end(), -1);
    std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>> pq;
    dist[static_cast<std::size_t>(src)] = 0.0;
    pq.emplace(0.0, src);
    while (!pq.empty()) {
      auto [d, u] = pq.top();
      pq.pop();
      if (d > dist[static_cast<std::size_t>(u)]) continue;
      for (LinkId l : topo.incident(NodeId{u})) {
        if (link_up_[static_cast<std::size_t>(l.get())] == 0) continue;  // failed link
        const Link& link = topo.link(l);
        const int v = topo.other_end(l, NodeId{u}).get();
        const double nd = d + link.latency_s;
        // Strict improvement keeps the route deterministic (first-found wins on ties).
        if (nd < dist[static_cast<std::size_t>(v)]) {
          dist[static_cast<std::size_t>(v)] = nd;
          via[static_cast<std::size_t>(v)] = l;
          parent[static_cast<std::size_t>(v)] = u;
          pq.emplace(nd, v);
        }
      }
    }
    // Fill matrices: walk parents back to the source for bottleneck/next-hop.
    const NodeId s{src};
    latency_[idx(s, s)] = 0.0f;
    bandwidth_[idx(s, s)] = std::numeric_limits<float>::infinity();
    for (int v = 0; v < n_; ++v) {
      if (v == src || parent[static_cast<std::size_t>(v)] < 0) continue;
      const NodeId dst{v};
      latency_[idx(s, dst)] = static_cast<float>(dist[static_cast<std::size_t>(v)]);
      // Walk back from v to src accumulating the bottleneck and the first link.
      double bottleneck = std::numeric_limits<double>::infinity();
      int cur = v;
      LinkId first_link{};
      while (cur != src) {
        const LinkId l = via[static_cast<std::size_t>(cur)];
        bottleneck = std::min(bottleneck, topo.link(l).bandwidth_mbps);
        first_link = l;
        cur = parent[static_cast<std::size_t>(cur)];
      }
      bandwidth_[idx(s, dst)] = static_cast<float>(bottleneck);
      next_link_[idx(s, dst)] = first_link.get();
    }
  }
}

Routing::Routing(const Topology& topo, int threads) : n_(topo.node_count()), topo_(&topo) {
  link_up_.assign(static_cast<std::size_t>(topo.link_count()), 1);
  const auto nn = static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_);
  latency_.assign(nn, std::numeric_limits<float>::infinity());
  bandwidth_.assign(nn, 0.0f);
  next_link_.assign(nn, LinkId::kInvalid);

  // Each worker writes a disjoint contiguous block of source rows, so the
  // result is bit-identical to the serial build regardless of thread count.
  // n < 64 is not worth the thread spawns.
  util::parallel_for_blocks(static_cast<std::size_t>(n_), n_ < 64 ? 1 : threads,
                            [this, &topo](std::size_t begin, std::size_t end) {
                              build_rows(topo, static_cast<int>(begin), static_cast<int>(end));
                            });

  // Cache the all-pairs mean once; the scan order matches the original
  // on-demand implementation exactly, so the cached value is bit-identical.
  double sum = 0.0;
  std::size_t count = 0;
  for (int u = 0; u < n_; ++u) {
    for (int v = 0; v < n_; ++v) {
      if (u == v) continue;
      const float bw = bandwidth_[idx(NodeId{u}, NodeId{v})];
      if (bw > 0.0f && std::isfinite(bw)) {
        sum += bw;
        ++count;
      }
    }
  }
  mean_bandwidth_mbps_ = count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double Routing::latency_s(NodeId u, NodeId v) const {
  assert(u.valid() && v.valid() && u.get() < n_ && v.get() < n_);
  return latency_[idx(u, v)];
}

double Routing::bandwidth_mbps(NodeId u, NodeId v) const {
  assert(u.valid() && v.valid() && u.get() < n_ && v.get() < n_);
  return bandwidth_[idx(u, v)];
}

double Routing::transfer_time_s(NodeId u, NodeId v, double mb) const {
  if (u == v) return 0.0;
  const double bw = bandwidth_mbps(u, v);
  if (bw <= 0.0) return kInf;
  return latency_s(u, v) + mb / bw;
}

int Routing::hops(NodeId u, NodeId v) const {
  return static_cast<int>(path_links(u, v).size());
}

void Routing::reset_row(int u) {
  const auto base = static_cast<std::size_t>(u) * static_cast<std::size_t>(n_);
  for (std::size_t k = 0; k < static_cast<std::size_t>(n_); ++k) {
    latency_[base + k] = std::numeric_limits<float>::infinity();
    bandwidth_[base + k] = 0.0f;
    next_link_[base + k] = LinkId::kInvalid;
  }
}

LinkId::underlying_type Routing::last_link(NodeId u, NodeId v) const {
  if (u == v) return LinkId::kInvalid;
  NodeId cur = u;
  auto last = LinkId::kInvalid;
  while (cur != v) {
    const auto raw = next_link_[idx(cur, v)];
    if (raw == LinkId::kInvalid) return LinkId::kInvalid;  // unreachable
    last = raw;
    cur = topo_->other_end(LinkId{raw}, cur);
  }
  return last;
}

void Routing::set_link_state(LinkId l, bool up) {
  auto& state = link_up_[static_cast<std::size_t>(l.get())];
  if ((state != 0) == up) return;
  state = up ? 1 : 0;
  const Link& link = topo_->link(l);
  const NodeId a = link.a;
  const NodeId b = link.b;

  // Which source rows can the change affect?
  //  - Failure: exactly the sources whose shortest-path tree used l. The tree
  //    edge into a node is the last link of the routed path to it, so l is in
  //    SPT(u) iff it is the parent edge of a or of b. (A link never chosen by
  //    Dijkstra's strict-improvement rule cannot influence any final row.)
  //  - Recovery: a path through l has the shape u ~> a -l-> b ~> v (or
  //    mirrored), of length lat(u,a) + L + lat(b,v) >= lat(u,b) + lat(b,v)
  //    >= lat(u,v) whenever lat(u,a) + L >= lat(u,b) (and symmetrically), so
  //    only sources with lat(u,a) + L <= lat(u,b) or the mirror can gain;
  //    <= instead of < absorbs the float rounding of the stored matrix.
  std::vector<int> affected;
  for (int u = 0; u < n_; ++u) {
    const NodeId src{u};
    bool hit = false;
    if (!up) {
      hit = (src != a && last_link(src, a) == l.get()) ||
            (src != b && last_link(src, b) == l.get());
    } else {
      const double da = latency_[idx(src, a)];
      const double db = latency_[idx(src, b)];
      hit = (std::isfinite(da) && da + link.latency_s <= db) ||
            (std::isfinite(db) && db + link.latency_s <= da);
    }
    if (hit) affected.push_back(u);
  }
  for (const int u : affected) {
    reset_row(u);
    build_rows(*topo_, u, u + 1);
  }
  repaired_rows_ += affected.size();
}

std::vector<LinkId> Routing::path_links(NodeId u, NodeId v) const {
  std::vector<LinkId> path;
  if (u == v) return path;
  NodeId cur = u;
  while (cur != v) {
    const auto raw = next_link_[idx(cur, v)];
    if (raw == LinkId::kInvalid) return {};  // unreachable
    const LinkId l{raw};
    path.push_back(l);
    cur = topo_->other_end(l, cur);
  }
  return path;
}

}  // namespace dpjit::net
