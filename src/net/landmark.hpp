// Landmark-based bandwidth estimation (paper Section III.B, citing the
// "bandwidth landmarking" mechanism [17]).
//
// Each node measures the bottleneck bandwidth of its route to each of
// log2(n) landmark nodes and gossips that small vector. Any node that knows
// the vectors of u and v can estimate bandwidth(u, v) without ever probing the
// pair directly: the estimate is max over landmarks L of
// min(bw(u,L), bw(L,v)) - the best u -> L -> v relay bottleneck.
#pragma once

#include <vector>

#include "net/routing.hpp"

namespace dpjit::net {

/// Holds the landmark set and per-node measurement vectors.
class LandmarkEstimator {
 public:
  /// Selects `landmark_count` landmarks (>= 1, clamped to n) deterministically
  /// from `rng` and measures every node's bandwidth to each landmark using
  /// ground-truth routing (in a deployment this is an actual probe).
  LandmarkEstimator(const Routing& routing, int landmark_count, util::Rng& rng);

  [[nodiscard]] const std::vector<NodeId>& landmarks() const { return landmarks_; }

  /// The measurement vector a node would gossip (bandwidth to each landmark).
  [[nodiscard]] const std::vector<double>& vector_of(NodeId n) const;

  /// Estimated bandwidth between two nodes via the best common landmark.
  /// Falls back to `fallback_mbps` when the estimate degenerates to 0.
  [[nodiscard]] double estimate_mbps(NodeId u, NodeId v, double fallback_mbps = 1.0) const;

  /// Mean of a node's landmark bandwidths: its locally observable "network
  /// condition", the value it feeds into aggregation gossip.
  [[nodiscard]] double local_mean_mbps(NodeId n) const;

 private:
  std::vector<NodeId> landmarks_;
  std::vector<std::vector<double>> vectors_;  // [node][landmark]
};

}  // namespace dpjit::net
