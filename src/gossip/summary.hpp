// Fixed-size commutative peer-state summary for the sharded scale model.
//
// The scale model's gossip is a push-pull exchange of these summaries. Unlike
// the full newscast ResourceView (per-entry timestamps, eviction, O(cache)
// state), a summary is a constant-size aggregate whose merge() is commutative
// and associative on integers: merging the same set of incoming summaries
// yields bit-identical state in any order. The sharded engine already
// guarantees a deterministic per-receiver delivery order at any shard count,
// so commutativity is defense in depth — it keeps the model's results
// well-defined even for hypothetical same-timestamp reorderings.
#pragma once

#include <cstdint>

namespace dpjit::gossip {

/// What one peer tells another in a single scale-model gossip message.
struct PeerSummary {
  /// Lamport-style logical clock: max-merged, bumped on local progress.
  std::uint64_t clock = 0;
  /// Tasks the sending peer itself has completed (at send time).
  std::uint64_t tasks_done = 0;
  /// Sum of tasks_done over every summary the sender has merged so far —
  /// the epidemic "how much work has the swarm done" aggregate.
  std::uint64_t heard_tasks = 0;
  /// Number of summaries the sender has merged.
  std::uint64_t merges = 0;
};

/// Folds `incoming` into `local`: max on the logical clock, sums on the
/// aggregates. Commutative and associative; never touches the sender.
inline void merge(PeerSummary& local, const PeerSummary& incoming) {
  local.clock = local.clock > incoming.clock ? local.clock : incoming.clock;
  local.heard_tasks += incoming.tasks_done;
  local.merges += 1;
}

}  // namespace dpjit::gossip
