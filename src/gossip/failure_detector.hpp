// SWIM-style per-observer failure detection (Das et al., DSN 2002 shape):
// every node keeps its own belief about every peer - alive, suspect, or dead
// - driven purely by the messages it actually receives, replacing the
// oracular `alive()` membership of the idealized gossip mode.
//
// Transitions (all per observer, no global knowledge):
//   alive --[probe unanswered]--> suspect (deadline = now + suspect_timeout)
//   suspect --[direct message from peer]--> alive          (refutation)
//   suspect --[deadline expires at next sweep]--> dead     (view forgets peer)
//   dead --[evidence stamped after the declaration]--> alive  (rejoin)
//
// Stale rumors are the classic SWIM hazard: once an observer declares a peer
// dead, gossiped entries about it are accepted only when their snapshot
// timestamp post-dates the declaration, so third-hand state cannot resurrect
// a dead peer (indirect_evidence implements the check).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "util/types.hpp"

namespace dpjit::gossip {

enum class PeerState : std::uint8_t { kAlive = 0, kSuspect = 1, kDead = 2 };

class FailureDetector {
 public:
  explicit FailureDetector(int node_count) : n_(node_count) {
    if (node_count < 1) throw std::invalid_argument("FailureDetector: node_count >= 1");
    const auto nn = static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_);
    state_.assign(nn, static_cast<std::uint8_t>(PeerState::kAlive));
    // stamp_ is state-dependent: alive = last direct contact, suspect = the
    // declared-dead deadline, dead = time of the death declaration.
    stamp_.assign(nn, 0.0);
  }

  [[nodiscard]] PeerState state(NodeId observer, NodeId peer) const {
    return static_cast<PeerState>(state_[idx(observer, peer)]);
  }
  [[nodiscard]] bool believes_dead(NodeId observer, NodeId peer) const {
    return state(observer, peer) == PeerState::kDead;
  }

  /// A message from `peer` itself arrived at `observer`: refutes suspicion,
  /// revives a dead belief (the peer is demonstrably up right now).
  void direct_evidence(NodeId observer, NodeId peer, SimTime now) {
    const auto i = idx(observer, peer);
    if (state_[i] != static_cast<std::uint8_t>(PeerState::kAlive)) ++refutations_;
    state_[i] = static_cast<std::uint8_t>(PeerState::kAlive);
    stamp_[i] = now;
  }

  /// True when `peer` sent `observer` a direct message at or after `since`.
  [[nodiscard]] bool answered_since(NodeId observer, NodeId peer, SimTime since) const {
    const auto i = idx(observer, peer);
    return state_[i] == static_cast<std::uint8_t>(PeerState::kAlive) && stamp_[i] >= since;
  }

  /// A gossiped entry about `peer` stamped at `stamped_at` reached `observer`.
  /// Returns false when it is a stale rumor about a dead-believed peer (the
  /// caller must drop it); revives the belief when the snapshot post-dates
  /// the death declaration. Suspicion is NOT refuted by indirect evidence -
  /// only a direct message proves the path back works.
  [[nodiscard]] bool indirect_evidence(NodeId observer, NodeId peer, SimTime stamped_at) {
    const auto i = idx(observer, peer);
    if (state_[i] != static_cast<std::uint8_t>(PeerState::kDead)) return true;
    if (stamped_at <= stamp_[i]) return false;
    state_[i] = static_cast<std::uint8_t>(PeerState::kAlive);
    stamp_[i] = stamped_at;
    ++refutations_;
    return true;
  }

  /// A probe (SYNC) to `peer` went unanswered past the ack timeout.
  void probe_missed(NodeId observer, NodeId peer, SimTime now, double suspect_timeout_s) {
    const auto i = idx(observer, peer);
    if (state_[i] != static_cast<std::uint8_t>(PeerState::kAlive)) return;  // deadline stands
    state_[i] = static_cast<std::uint8_t>(PeerState::kSuspect);
    stamp_[i] = now + suspect_timeout_s;
    ++suspicions_;
  }

  /// Promotes `observer`'s expired suspects to dead, invoking `on_dead(peer)`
  /// for each in ascending peer id (deterministic order).
  template <typename Fn>
  void sweep(NodeId observer, SimTime now, Fn&& on_dead) {
    const auto base = static_cast<std::size_t>(observer.get()) * static_cast<std::size_t>(n_);
    for (int p = 0; p < n_; ++p) {
      const auto i = base + static_cast<std::size_t>(p);
      if (state_[i] == static_cast<std::uint8_t>(PeerState::kSuspect) && stamp_[i] <= now) {
        state_[i] = static_cast<std::uint8_t>(PeerState::kDead);
        stamp_[i] = now;
        ++declared_dead_;
        on_dead(NodeId{p});
      }
    }
  }

  /// Clears everything `observer` believes (fresh join: no prior grudges).
  void reset_observer(NodeId observer) {
    const auto base = static_cast<std::size_t>(observer.get()) * static_cast<std::size_t>(n_);
    for (std::size_t k = 0; k < static_cast<std::size_t>(n_); ++k) {
      state_[base + k] = static_cast<std::uint8_t>(PeerState::kAlive);
      stamp_[base + k] = 0.0;
    }
  }

  [[nodiscard]] std::uint64_t suspicions() const { return suspicions_; }
  [[nodiscard]] std::uint64_t declared_dead() const { return declared_dead_; }
  [[nodiscard]] std::uint64_t refutations() const { return refutations_; }

 private:
  [[nodiscard]] std::size_t idx(NodeId observer, NodeId peer) const {
    return static_cast<std::size_t>(observer.get()) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(peer.get());
  }

  int n_;
  std::vector<std::uint8_t> state_;
  std::vector<SimTime> stamp_;
  std::uint64_t suspicions_ = 0;
  std::uint64_t declared_dead_ = 0;
  std::uint64_t refutations_ = 0;
};

}  // namespace dpjit::gossip
