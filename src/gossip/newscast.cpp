#include "gossip/view.hpp"

#include <algorithm>

namespace dpjit::gossip {

bool ResourceView::merge(const ResourceEntry& entry) {
  for (auto& e : entries_) {
    if (e.node == entry.node) {
      if (entry.stamped_at > e.stamped_at) {
        e = entry;
        return true;
      }
      // Same snapshot seen again: keep the higher remaining TTL so forwarding
      // budget is not lost to duplicate delivery order.
      if (entry.stamped_at == e.stamped_at && entry.ttl > e.ttl) e.ttl = entry.ttl;
      return false;
    }
  }
  if (entries_.size() < capacity_) {
    entries_.push_back(entry);
    return true;
  }
  // Full: evict the stalest entry if the newcomer is fresher.
  auto stalest = std::min_element(
      entries_.begin(), entries_.end(),
      [](const ResourceEntry& a, const ResourceEntry& b) { return a.stamped_at < b.stamped_at; });
  if (stalest->stamped_at < entry.stamped_at) {
    *stalest = entry;
    return true;
  }
  return false;
}

void ResourceView::expire(SimTime now, double max_age, NodeId self) {
  std::erase_if(entries_, [&](const ResourceEntry& e) {
    return e.node == self || (now - e.stamped_at) > max_age;
  });
}

bool ResourceView::forget(NodeId node) {
  const auto before = entries_.size();
  std::erase_if(entries_, [&](const ResourceEntry& e) { return e.node == node; });
  return entries_.size() != before;
}

bool ResourceView::adjust_load(NodeId node, double delta_mi) {
  for (auto& e : entries_) {
    if (e.node == node) {
      e.load_mi = std::max(0.0, e.load_mi + delta_mi);
      return true;
    }
  }
  return false;
}

bool ResourceView::contains(NodeId node) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const ResourceEntry& e) { return e.node == node; });
}

}  // namespace dpjit::gossip
