#include "gossip/view.hpp"

#include <algorithm>
#include <cassert>

namespace dpjit::gossip {

// NOTE: every mutation below must leave entries_ in exactly the layout the
// original index-free implementation produced (same slots, same order): the
// neighbor-selection shuffle consumes RNG draws over the entries in order,
// so layout changes would silently change simulation results.

bool ResourceView::merge(const ResourceEntry& entry) {
  const std::uint16_t slot = lookup(entry.node);
  if (slot != kNoSlot) {
    ResourceEntry& e = entries_[slot];
    if (entry.stamped_at > e.stamped_at) {
      e = entry;
      return true;
    }
    // Same snapshot seen again: keep the higher remaining TTL so forwarding
    // budget is not lost to duplicate delivery order.
    if (entry.stamped_at == e.stamped_at && entry.ttl > e.ttl) e.ttl = entry.ttl;
    return false;
  }
  if (entries_.size() < capacity_) {
    index(entry.node, entries_.size());
    entries_.push_back(entry);
    return true;
  }
  // Full: evict the stalest entry if the newcomer is fresher.
  auto stalest = std::min_element(
      entries_.begin(), entries_.end(),
      [](const ResourceEntry& a, const ResourceEntry& b) { return a.stamped_at < b.stamped_at; });
  if (stalest->stamped_at < entry.stamped_at) {
    unindex(stalest->node);
    index(entry.node, static_cast<std::size_t>(stalest - entries_.begin()));
    *stalest = entry;
    return true;
  }
  return false;
}

void ResourceView::expire(SimTime now, double max_age, NodeId self) {
  const auto before = entries_.size();
  std::erase_if(entries_, [&](const ResourceEntry& e) {
    const bool drop = e.node == self || (now - e.stamped_at) > max_age;
    if (drop) unindex(e.node);
    return drop;
  });
  // erase_if compacted the survivors; refresh their slots.
  if (entries_.size() != before) {
    for (std::size_t i = 0; i < entries_.size(); ++i) index(entries_[i].node, i);
  }
}

bool ResourceView::forget(NodeId node) {
  const std::uint16_t slot = lookup(node);
  if (slot == kNoSlot) return false;
  unindex(node);
  entries_.erase(entries_.begin() + slot);
  for (std::size_t i = slot; i < entries_.size(); ++i) index(entries_[i].node, i);
  return true;
}

bool ResourceView::adjust_load(NodeId node, double delta_mi) {
  const std::uint16_t slot = lookup(node);
  if (slot == kNoSlot) return false;
  ResourceEntry& e = entries_[slot];
  e.load_mi = std::max(0.0, e.load_mi + delta_mi);
  return true;
}

bool ResourceView::contains(NodeId node) const { return lookup(node) != kNoSlot; }

}  // namespace dpjit::gossip
