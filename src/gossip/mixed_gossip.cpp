#include "gossip/mixed_gossip.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dpjit::gossip {
namespace {

int derive_log2(int n) {
  int k = 0;
  while ((1 << k) < n) ++k;
  return std::max(1, k);
}

}  // namespace

MixedGossipService::MixedGossipService(sim::Engine& engine, GossipParams params, int node_count,
                                       LocalStateFn local_state, AliveFn alive, LatencyFn latency,
                                       LocalBandwidthFn local_bw, util::Rng rng)
    : engine_(engine),
      params_(params),
      n_(node_count),
      local_state_(std::move(local_state)),
      alive_(std::move(alive)),
      latency_(std::move(latency)),
      local_bw_(std::move(local_bw)),
      rng_(rng) {
  if (node_count < 1) throw std::invalid_argument("MixedGossipService: node_count >= 1");
  if (params_.cycle_s <= 0.0) throw std::invalid_argument("MixedGossipService: cycle_s > 0");
  fanout_ = params_.fanout > 0 ? params_.fanout : derive_log2(n_);
  cache_size_ = params_.cache_size > 0
                    ? params_.cache_size
                    : std::min(30, static_cast<int>(std::ceil(2.5 * derive_log2(n_))));
  nodes_.resize(static_cast<std::size_t>(n_));
  for (auto& node : nodes_) node.rss.set_capacity(static_cast<std::size_t>(cache_size_));
}

void MixedGossipService::start() {
  for (int i = 0; i < n_; ++i) {
    if (alive_(NodeId{i})) reseed_aggregation(NodeId{i});
  }
  cycle_process_ = std::make_unique<sim::PeriodicProcess>(
      engine_, engine_.now(), params_.cycle_s, [this](std::uint64_t c) { run_cycle(c); });
  cycle_process_->start();
}

void MixedGossipService::stop() {
  if (cycle_process_) cycle_process_->stop();
}

void MixedGossipService::reseed_aggregation(NodeId n) {
  auto& g = nodes_[static_cast<std::size_t>(n.get())];
  double load = 0.0;
  double cap = 1.0;
  local_state_(n, load, cap);
  g.agg_capacity.current = cap;
  g.agg_bandwidth.current = local_bw_(n);
  // A freshly (re)seeded node publishes its local observation until the first
  // epoch completes - it has nothing better yet.
  if (g.agg_capacity.published == 0.0) g.agg_capacity.published = g.agg_capacity.current;
  if (g.agg_bandwidth.published == 0.0) g.agg_bandwidth.published = g.agg_bandwidth.current;
}

void MixedGossipService::run_cycle(std::uint64_t cycle) {
  const bool epoch_boundary =
      params_.aggregation_epoch_cycles > 0 &&
      cycle % static_cast<std::uint64_t>(params_.aggregation_epoch_cycles) == 0 && cycle > 0;

  for (int i = 0; i < n_; ++i) {
    const NodeId me{i};
    if (!alive_(me)) continue;
    auto& g = nodes_[static_cast<std::size_t>(i)];
    if (epoch_boundary) {
      // Publish the converged value, then restart from the local observation.
      g.agg_capacity.published = g.agg_capacity.current;
      g.agg_bandwidth.published = g.agg_bandwidth.current;
      reseed_aggregation(me);
    }
    g.rss.expire(engine_.now(), params_.staleness_bound_s, me);
    epidemic_push(me);
    aggregation_exchange(me);
  }
}

std::vector<NodeId> MixedGossipService::pick_targets(NodeId from, int count) {
  const auto& g = nodes_[static_cast<std::size_t>(from.get())];
  // Candidate set: peers currently in the view (Newscast neighbors are
  // reselected from the cache every cycle).
  std::vector<NodeId> candidates;
  candidates.reserve(g.rss.size());
  for (const auto& e : g.rss.entries()) candidates.push_back(e.node);
  rng_.shuffle(candidates);
  std::vector<NodeId> targets;
  for (NodeId c : candidates) {
    if (static_cast<int>(targets.size()) >= count) break;
    if (alive_(c)) targets.push_back(c);
  }
  return targets;
}

void MixedGossipService::epidemic_push(NodeId from) {
  auto& g = nodes_[static_cast<std::size_t>(from.get())];

  // Build the message once and share it across all targets: own fresh state
  // plus every cached entry that still has forwarding budget.
  auto message = std::make_shared<std::vector<ResourceEntry>>();
  double load = 0.0;
  double cap = 1.0;
  local_state_(from, load, cap);
  message->push_back(ResourceEntry{from, load, cap, engine_.now(), params_.ttl});
  for (const auto& e : g.rss.entries()) {
    if (e.ttl > 0) {
      ResourceEntry fwd = e;
      fwd.ttl -= 1;
      message->push_back(fwd);
    }
  }

  // Wire-format accounting per Section IV.A: 20-byte header + 20 bytes per
  // carried entry (id, load, capacity, timestamp, ttl).
  const std::uint64_t message_bytes = 20 + 20 * message->size();

  for (NodeId to : pick_targets(from, fanout_)) {
    ++messages_sent_;
    bytes_sent_ += message_bytes;
    const double delay = std::max(0.0, latency_(from, to));
    engine_.schedule_in(delay, [this, to, message] {
      if (!alive_(to)) return;  // died while the message was in flight
      auto& view = nodes_[static_cast<std::size_t>(to.get())].rss;
      for (const auto& entry : *message) {
        if (entry.node == to) continue;  // no self-entries
        if (!alive_(entry.node)) continue;  // drop state about dead peers
        view.merge(entry);
      }
    });
  }
}

void MixedGossipService::aggregation_exchange(NodeId from) {
  // One push-pull averaging step with a random alive partner from the view.
  auto targets = pick_targets(from, 1);
  if (targets.empty()) return;
  const NodeId partner = targets.front();
  auto& a = nodes_[static_cast<std::size_t>(from.get())];
  auto& b = nodes_[static_cast<std::size_t>(partner.get())];
  const double cap_mid = 0.5 * (a.agg_capacity.current + b.agg_capacity.current);
  const double bw_mid = 0.5 * (a.agg_bandwidth.current + b.agg_bandwidth.current);
  a.agg_capacity.current = b.agg_capacity.current = cap_mid;
  a.agg_bandwidth.current = b.agg_bandwidth.current = bw_mid;
  ++messages_sent_;
  bytes_sent_ += 20 + 16;  // header + two doubles
}

void MixedGossipService::node_joined(NodeId n, const std::vector<NodeId>& bootstrap) {
  auto& g = nodes_[static_cast<std::size_t>(n.get())];
  g.rss.clear();
  g.agg_capacity = AggregationState{};
  g.agg_bandwidth = AggregationState{};
  reseed_aggregation(n);
  for (NodeId contact : bootstrap) {
    if (contact == n || !alive_(contact)) continue;
    double load = 0.0;
    double cap = 1.0;
    local_state_(contact, load, cap);
    g.rss.merge(ResourceEntry{contact, load, cap, engine_.now(), params_.ttl});
  }
}

void MixedGossipService::node_left(NodeId n) {
  auto& g = nodes_[static_cast<std::size_t>(n.get())];
  g.rss.clear();
  g.agg_capacity = AggregationState{};
  g.agg_bandwidth = AggregationState{};
}

const ResourceView& MixedGossipService::rss(NodeId n) const {
  return nodes_[static_cast<std::size_t>(n.get())].rss;
}

ResourceView& MixedGossipService::rss(NodeId n) {
  return nodes_[static_cast<std::size_t>(n.get())].rss;
}

GlobalAverages MixedGossipService::averages(NodeId n) const {
  const auto& g = nodes_[static_cast<std::size_t>(n.get())];
  GlobalAverages avg;
  avg.capacity_mips = std::max(g.agg_capacity.published, 1e-9);
  avg.bandwidth_mbps = std::max(g.agg_bandwidth.published, 1e-9);
  return avg;
}

double MixedGossipService::mean_rss_size() const {
  double sum = 0.0;
  int count = 0;
  for (int i = 0; i < n_; ++i) {
    if (!alive_(NodeId{i})) continue;
    sum += static_cast<double>(nodes_[static_cast<std::size_t>(i)].rss.size());
    ++count;
  }
  return count == 0 ? 0.0 : sum / count;
}

double MixedGossipService::mean_idle_known() const {
  double sum = 0.0;
  int count = 0;
  for (int i = 0; i < n_; ++i) {
    if (!alive_(NodeId{i})) continue;
    int idle = 0;
    for (const auto& e : nodes_[static_cast<std::size_t>(i)].rss.entries()) {
      if (e.load_mi <= 0.0) ++idle;
    }
    sum += idle;
    ++count;
  }
  return count == 0 ? 0.0 : sum / count;
}

}  // namespace dpjit::gossip
