#include "gossip/mixed_gossip.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dpjit::gossip {
namespace {

int derive_log2(int n) {
  int k = 0;
  while ((1 << k) < n) ++k;
  return std::max(1, k);
}

}  // namespace

MixedGossipService::MixedGossipService(sim::Engine& engine, GossipParams params, int node_count,
                                       LocalStateFn local_state, AliveFn alive, LatencyFn latency,
                                       LocalBandwidthFn local_bw, util::Rng rng,
                                       sim::FaultPlan* faults)
    : engine_(engine),
      params_(params),
      n_(node_count),
      local_state_(std::move(local_state)),
      alive_(std::move(alive)),
      latency_(std::move(latency)),
      local_bw_(std::move(local_bw)),
      rng_(rng),
      faults_(faults) {
  if (node_count < 1) throw std::invalid_argument("MixedGossipService: node_count >= 1");
  if (params_.cycle_s <= 0.0) throw std::invalid_argument("MixedGossipService: cycle_s > 0");
  fanout_ = params_.fanout > 0 ? params_.fanout : derive_log2(n_);
  cache_size_ = params_.cache_size > 0
                    ? params_.cache_size
                    : std::min(30, static_cast<int>(std::ceil(2.5 * derive_log2(n_))));
  nodes_.resize(static_cast<std::size_t>(n_));
  for (auto& node : nodes_) node.rss.set_capacity(static_cast<std::size_t>(cache_size_));
  if (params_.message_level) {
    detector_ = std::make_unique<FailureDetector>(n_);
    budget_.assign(static_cast<std::size_t>(n_), 0);
    message_budget_ =
        params_.round_message_budget > 0 ? params_.round_message_budget : 3 * fanout_ + 4;
    ack_timeout_ = params_.ack_timeout_s > 0.0 ? params_.ack_timeout_s : 0.5 * params_.cycle_s;
    suspect_timeout_ =
        params_.suspect_timeout_s > 0.0 ? params_.suspect_timeout_s : 2.0 * params_.cycle_s;
  }
}

void MixedGossipService::start() {
  for (int i = 0; i < n_; ++i) {
    if (alive_(NodeId{i})) reseed_aggregation(NodeId{i});
  }
  cycle_process_ = std::make_unique<sim::PeriodicProcess>(
      engine_, engine_.now(), params_.cycle_s, [this](std::uint64_t c) { run_cycle(c); });
  cycle_process_->start();
}

void MixedGossipService::stop() {
  if (cycle_process_) cycle_process_->stop();
}

void MixedGossipService::reseed_aggregation(NodeId n) {
  auto& g = nodes_[static_cast<std::size_t>(n.get())];
  double load = 0.0;
  double cap = 1.0;
  local_state_(n, load, cap);
  g.agg_capacity.current = cap;
  g.agg_bandwidth.current = local_bw_(n);
  // A freshly (re)seeded node publishes its local observation until the first
  // epoch completes - it has nothing better yet.
  if (g.agg_capacity.published == 0.0) g.agg_capacity.published = g.agg_capacity.current;
  if (g.agg_bandwidth.published == 0.0) g.agg_bandwidth.published = g.agg_bandwidth.current;
}

void MixedGossipService::run_cycle(std::uint64_t cycle) {
  if (params_.message_level) {
    run_cycle_message(cycle);
    return;
  }
  const bool epoch_boundary =
      params_.aggregation_epoch_cycles > 0 &&
      cycle % static_cast<std::uint64_t>(params_.aggregation_epoch_cycles) == 0 && cycle > 0;

  for (int i = 0; i < n_; ++i) {
    const NodeId me{i};
    if (!alive_(me)) continue;
    auto& g = nodes_[static_cast<std::size_t>(i)];
    if (epoch_boundary) {
      // Publish the converged value, then restart from the local observation.
      g.agg_capacity.published = g.agg_capacity.current;
      g.agg_bandwidth.published = g.agg_bandwidth.current;
      reseed_aggregation(me);
    }
    g.rss.expire(engine_.now(), params_.staleness_bound_s, me);
    epidemic_push(me);
    aggregation_exchange(me);
  }
}

std::vector<NodeId> MixedGossipService::pick_targets(NodeId from, int count) {
  const auto& g = nodes_[static_cast<std::size_t>(from.get())];
  // Candidate set: peers currently in the view (Newscast neighbors are
  // reselected from the cache every cycle).
  std::vector<NodeId> candidates;
  candidates.reserve(g.rss.size());
  for (const auto& e : g.rss.entries()) candidates.push_back(e.node);
  rng_.shuffle(candidates);
  std::vector<NodeId> targets;
  for (NodeId c : candidates) {
    if (static_cast<int>(targets.size()) >= count) break;
    if (detector_) {
      // Message mode: membership is the node's own belief, not the oracle -
      // suspects are still gossiped to (they get a chance to refute).
      if (!detector_->believes_dead(from, c)) targets.push_back(c);
    } else if (alive_(c)) {
      targets.push_back(c);
    }
  }
  return targets;
}

void MixedGossipService::epidemic_push(NodeId from) {
  auto& g = nodes_[static_cast<std::size_t>(from.get())];

  // Build the message once and share it across all targets: own fresh state
  // plus every cached entry that still has forwarding budget.
  auto message = std::make_shared<std::vector<ResourceEntry>>();
  double load = 0.0;
  double cap = 1.0;
  local_state_(from, load, cap);
  message->push_back(ResourceEntry{from, load, cap, engine_.now(), params_.ttl});
  for (const auto& e : g.rss.entries()) {
    if (e.ttl > 0) {
      ResourceEntry fwd = e;
      fwd.ttl -= 1;
      message->push_back(fwd);
    }
  }

  // Wire-format accounting per Section IV.A: 20-byte header + 20 bytes per
  // carried entry (id, load, capacity, timestamp, ttl).
  const std::uint64_t message_bytes = 20 + 20 * message->size();

  for (NodeId to : pick_targets(from, fanout_)) {
    post_message(from, to, message_bytes, [this, to, message] {
      if (!alive_(to)) return;  // died while the message was in flight
      for (const auto& entry : *message) merge_entry(to, entry);
    });
  }
}

void MixedGossipService::post_message(NodeId from, NodeId to, std::uint64_t bytes,
                                      std::function<void()> deliver) {
  ++messages_sent_;
  bytes_sent_ += bytes;
  // Without a plan (or with all message knobs zero) the draw consumes no
  // randomness and yields the default fate: one copy, no extra delay.
  const sim::MessageFate fate = faults_ != nullptr ? faults_->draw_message_fate()
                                                   : sim::MessageFate{};
  if (fate.lost) return;
  const double delay = std::max(0.0, latency_(from, to)) + fate.extra_delay_s;
  for (int c = 0; c < fate.copies; ++c) {
    engine_.schedule_in(delay, [deliver] { deliver(); });
  }
}

void MixedGossipService::merge_entry(NodeId to, const ResourceEntry& entry) {
  if (entry.node == to) return;  // no self-entries
  if (detector_) {
    // SWIM rumor filter: state about a dead-believed peer is accepted only
    // when the snapshot post-dates the death declaration (rejoin evidence).
    if (!detector_->indirect_evidence(to, entry.node, entry.stamped_at)) return;
  } else if (!alive_(entry.node)) {
    return;  // idealized mode: oracular filter of state about dead peers
  }
  nodes_[static_cast<std::size_t>(to.get())].rss.merge(entry);
}

void MixedGossipService::aggregation_exchange(NodeId from) {
  // One push-pull averaging step with a random alive partner from the view.
  auto targets = pick_targets(from, 1);
  if (targets.empty()) return;
  const NodeId partner = targets.front();
  if (detector_) {
    // Message mode: the request costs budget and a real send, and can be lost
    // or addressed to a dead-believed-alive partner - then nothing averages.
    // The exchange itself stays atomic (documented idealization: the payload
    // is two doubles, and modelling its round trip buys no fidelity).
    if (!try_consume_budget(from)) return;
    ++messages_sent_;
    bytes_sent_ += 20 + 16;
    const sim::MessageFate fate =
        faults_ != nullptr ? faults_->draw_message_fate() : sim::MessageFate{};
    if (fate.lost || !alive_(partner)) return;
    auto& a = nodes_[static_cast<std::size_t>(from.get())];
    auto& b = nodes_[static_cast<std::size_t>(partner.get())];
    const double cap_mid = 0.5 * (a.agg_capacity.current + b.agg_capacity.current);
    const double bw_mid = 0.5 * (a.agg_bandwidth.current + b.agg_bandwidth.current);
    a.agg_capacity.current = b.agg_capacity.current = cap_mid;
    a.agg_bandwidth.current = b.agg_bandwidth.current = bw_mid;
    return;
  }
  auto& a = nodes_[static_cast<std::size_t>(from.get())];
  auto& b = nodes_[static_cast<std::size_t>(partner.get())];
  const double cap_mid = 0.5 * (a.agg_capacity.current + b.agg_capacity.current);
  const double bw_mid = 0.5 * (a.agg_bandwidth.current + b.agg_bandwidth.current);
  a.agg_capacity.current = b.agg_capacity.current = cap_mid;
  a.agg_bandwidth.current = b.agg_bandwidth.current = bw_mid;
  ++messages_sent_;
  bytes_sent_ += 20 + 16;  // header + two doubles
}

void MixedGossipService::run_cycle_message(std::uint64_t cycle) {
  const bool epoch_boundary =
      params_.aggregation_epoch_cycles > 0 &&
      cycle % static_cast<std::uint64_t>(params_.aggregation_epoch_cycles) == 0 && cycle > 0;
  const SimTime now = engine_.now();

  for (int i = 0; i < n_; ++i) {
    const NodeId me{i};
    if (!alive_(me)) continue;  // physically down nodes run nothing
    auto& g = nodes_[static_cast<std::size_t>(i)];
    if (epoch_boundary) {
      g.agg_capacity.published = g.agg_capacity.current;
      g.agg_bandwidth.published = g.agg_bandwidth.current;
      reseed_aggregation(me);
    }
    // SWIM sweep first: expired suspects become dead and leave the view, so
    // this cycle's digest no longer advertises them.
    detector_->sweep(me, now, [&g](NodeId dead) { g.rss.forget(dead); });
    g.rss.expire(now, params_.staleness_bound_s, me);
    // Budget renews every cycle. All sends below schedule their deliveries
    // strictly after this cycle event returns, so resetting inside the same
    // loop is race-free: no reply can be charged before its budget exists.
    budget_[static_cast<std::size_t>(i)] = message_budget_;

    // Shared SYNC digest: own fresh summary + every cached entry's (node,
    // stamp). libgossip's SYNC carries exactly this - keys and versions.
    auto digest = std::make_shared<std::vector<EntrySummary>>();
    digest->reserve(g.rss.size() + 1);
    digest->push_back(EntrySummary{me, now});
    for (const auto& e : g.rss.entries()) digest->push_back(EntrySummary{e.node, e.stamped_at});
    for (NodeId to : pick_targets(me, fanout_)) start_exchange(me, to, digest);
    aggregation_exchange(me);
  }
}

void MixedGossipService::start_exchange(NodeId from, NodeId to,
                                        const std::shared_ptr<std::vector<EntrySummary>>& digest) {
  if (!try_consume_budget(from)) return;
  const SimTime sent_at = engine_.now();
  // Ack timeout: if no direct message from `to` lands at `from` before the
  // timer fires, the initiator starts suspecting `to` (SWIM probe miss).
  engine_.schedule_in(ack_timeout_, [this, from, to, sent_at] {
    if (!alive_(from)) return;
    if (detector_->answered_since(from, to, sent_at)) return;
    detector_->probe_missed(from, to, engine_.now(), suspect_timeout_);
  });
  post_message(from, to, 20 + 12 * digest->size(),
               [this, from, to, digest] { on_sync(from, to, digest); });
}

void MixedGossipService::on_sync(NodeId from, NodeId to,
                                 const std::shared_ptr<std::vector<EntrySummary>>& digest) {
  if (!alive_(to)) return;  // receiver died while the SYNC was in flight
  const SimTime now = engine_.now();
  detector_->direct_evidence(to, from, now);
  // Budget check before building the reply: an exhausted responder stays
  // silent and the initiator's ack timeout does the rest.
  if (!try_consume_budget(to)) return;
  const auto& g = nodes_[static_cast<std::size_t>(to.get())];

  // Diff the digest against the local view. ACK1 = entries we know fresher
  // than the initiator (push) + nodes the initiator knows fresher (want).
  auto push = std::make_shared<std::vector<ResourceEntry>>();
  auto want = std::make_shared<std::vector<NodeId>>();
  std::vector<char> in_digest(static_cast<std::size_t>(n_), 0);
  for (const auto& s : *digest) {
    in_digest[static_cast<std::size_t>(s.node.get())] = 1;
    if (s.node == to) continue;  // own state is always freshest locally
    const ResourceEntry* mine = g.rss.find(s.node);
    const SimTime my_stamp = mine != nullptr ? mine->stamped_at : -1.0;
    if (s.stamped_at > my_stamp) {
      want->push_back(s.node);
    } else if (s.stamped_at < my_stamp) {
      if (auto fwd = forwardable_entry(to, s.node)) push->push_back(*fwd);
    }
  }
  // Entries the initiator does not have at all - own state first.
  if (in_digest[static_cast<std::size_t>(to.get())] == 0) {
    if (auto own = forwardable_entry(to, to)) push->push_back(*own);
  }
  for (const auto& e : g.rss.entries()) {
    if (e.node == from || in_digest[static_cast<std::size_t>(e.node.get())] != 0) continue;
    if (auto fwd = forwardable_entry(to, e.node)) push->push_back(*fwd);
  }
  post_message(to, from, 20 + 20 * push->size() + 4 * want->size(),
               [this, to, from, push, want] { on_ack1(to, from, push, want); });
}

void MixedGossipService::on_ack1(NodeId from, NodeId to,
                                 const std::shared_ptr<std::vector<ResourceEntry>>& push,
                                 const std::shared_ptr<std::vector<NodeId>>& want) {
  // Runs at the initiator (`to`); `from` is the responder that answered.
  if (!alive_(to)) return;
  detector_->direct_evidence(to, from, engine_.now());
  for (const auto& entry : *push) merge_entry(to, entry);
  // ACK2: the entries the responder asked for.
  auto reply = std::make_shared<std::vector<ResourceEntry>>();
  reply->reserve(want->size());
  for (NodeId w : *want) {
    if (auto fwd = forwardable_entry(to, w)) reply->push_back(*fwd);
  }
  if (reply->empty()) return;  // nothing left to say - no third leg
  if (!try_consume_budget(to)) return;
  post_message(to, from, 20 + 20 * reply->size(), [this, to, from, reply] {
    if (!alive_(from)) return;
    detector_->direct_evidence(from, to, engine_.now());
    for (const auto& entry : *reply) merge_entry(from, entry);
  });
}

bool MixedGossipService::try_consume_budget(NodeId n) {
  auto& b = budget_[static_cast<std::size_t>(n.get())];
  if (b <= 0) {
    ++messages_suppressed_;
    return false;
  }
  --b;
  return true;
}

std::optional<ResourceEntry> MixedGossipService::forwardable_entry(NodeId from, NodeId node) {
  if (node == from) {
    double load = 0.0;
    double cap = 1.0;
    local_state_(from, load, cap);
    return ResourceEntry{from, load, cap, engine_.now(), params_.ttl};
  }
  const ResourceEntry* e = nodes_[static_cast<std::size_t>(from.get())].rss.find(node);
  if (e == nullptr || e->ttl <= 0) return std::nullopt;
  ResourceEntry fwd = *e;
  fwd.ttl -= 1;
  return fwd;
}

void MixedGossipService::node_joined(NodeId n, const std::vector<NodeId>& bootstrap) {
  auto& g = nodes_[static_cast<std::size_t>(n.get())];
  g.rss.clear();
  g.agg_capacity = AggregationState{};
  g.agg_bandwidth = AggregationState{};
  if (detector_) detector_->reset_observer(n);  // fresh join: no prior grudges
  reseed_aggregation(n);
  for (NodeId contact : bootstrap) {
    if (contact == n || !alive_(contact)) continue;
    double load = 0.0;
    double cap = 1.0;
    local_state_(contact, load, cap);
    g.rss.merge(ResourceEntry{contact, load, cap, engine_.now(), params_.ttl});
  }
}

void MixedGossipService::node_left(NodeId n) {
  auto& g = nodes_[static_cast<std::size_t>(n.get())];
  g.rss.clear();
  g.agg_capacity = AggregationState{};
  g.agg_bandwidth = AggregationState{};
  if (detector_) detector_->reset_observer(n);
}

const ResourceView& MixedGossipService::rss(NodeId n) const {
  return nodes_[static_cast<std::size_t>(n.get())].rss;
}

ResourceView& MixedGossipService::rss(NodeId n) {
  return nodes_[static_cast<std::size_t>(n.get())].rss;
}

GlobalAverages MixedGossipService::averages(NodeId n) const {
  const auto& g = nodes_[static_cast<std::size_t>(n.get())];
  GlobalAverages avg;
  avg.capacity_mips = std::max(g.agg_capacity.published, 1e-9);
  avg.bandwidth_mbps = std::max(g.agg_bandwidth.published, 1e-9);
  return avg;
}

double MixedGossipService::mean_rss_size() const {
  double sum = 0.0;
  int count = 0;
  for (int i = 0; i < n_; ++i) {
    if (!alive_(NodeId{i})) continue;
    sum += static_cast<double>(nodes_[static_cast<std::size_t>(i)].rss.size());
    ++count;
  }
  return count == 0 ? 0.0 : sum / count;
}

double MixedGossipService::mean_idle_known() const {
  double sum = 0.0;
  int count = 0;
  for (int i = 0; i < n_; ++i) {
    if (!alive_(NodeId{i})) continue;
    int idle = 0;
    for (const auto& e : nodes_[static_cast<std::size_t>(i)].rss.entries()) {
      if (e.load_mi <= 0.0) ++idle;
    }
    sum += idle;
    ++count;
  }
  return count == 0 ? 0.0 : sum / count;
}

}  // namespace dpjit::gossip
