// Per-node gossip state: the bounded resource-state cache RSS(p_i) that the
// epidemic protocol maintains (paper Section III.B), and the running
// aggregation estimates.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace dpjit::gossip {

/// One entry of RSS(p_i): the freshest state this node knows about a peer.
struct ResourceEntry {
  NodeId node;
  /// Total load (MI) queued + running at `node` when the state was sampled.
  double load_mi = 0.0;
  /// Node capacity in MIPS.
  double capacity_mips = 1.0;
  /// Simulated time at which `node` sampled this state.
  SimTime stamped_at = 0.0;
  /// Remaining epidemic forwarding hops (paper: TTL = 4).
  int ttl = 0;
};

/// Bounded freshest-first cache of ResourceEntry, one per known peer.
///
/// Entry *order* is part of the observable behavior (neighbor selection
/// shuffles the entries in order, consuming RNG draws), so all mutations keep
/// the same vector layout the naive implementation produced. A direct-mapped
/// node -> slot side index makes the per-entry lookup O(1): merge() is the
/// single hottest function of an end-to-end run (tens of millions of calls),
/// and the linear scan it replaced dominated the profile.
class ResourceView {
 public:
  explicit ResourceView(std::size_t capacity = 30) : capacity_(capacity) {}

  void set_capacity(std::size_t capacity) { capacity_ = capacity; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Merges an incoming entry: replaces an older entry about the same node,
  /// inserts otherwise. When full, the stalest entry is evicted if the
  /// incoming one is fresher. Returns true if the view changed.
  bool merge(const ResourceEntry& entry);

  /// Drops entries older than `now - max_age` and entries about `self`.
  void expire(SimTime now, double max_age, NodeId self);

  /// Removes the entry about a node (e.g. observed dead). Returns true if found.
  bool forget(NodeId node);

  /// Updates the load recorded for `node` (local correction after dispatching
  /// work to it - Algorithm 1 line 15). Returns false if unknown.
  bool adjust_load(NodeId node, double delta_mi);

  [[nodiscard]] const std::vector<ResourceEntry>& entries() const { return entries_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool contains(NodeId node) const;

  /// The entry about `node`, or nullptr when absent. O(1).
  [[nodiscard]] const ResourceEntry* find(NodeId node) const {
    const std::uint16_t slot = lookup(node);
    return slot == kNoSlot ? nullptr : &entries_[slot];
  }
  void clear() {
    entries_.clear();
    std::fill(slot_of_.begin(), slot_of_.end(), kNoSlot);
  }

 private:
  static constexpr std::uint16_t kNoSlot = 0xffff;

  /// Slot of `node` in entries_, or kNoSlot. Grows the index on demand.
  [[nodiscard]] std::uint16_t lookup(NodeId node) const {
    const auto i = static_cast<std::size_t>(node.get());
    return i < slot_of_.size() ? slot_of_[i] : kNoSlot;
  }
  void index(NodeId node, std::size_t slot) {
    assert(node.valid() && slot < kNoSlot);
    const auto i = static_cast<std::size_t>(node.get());
    if (i >= slot_of_.size()) slot_of_.resize(i + 1, kNoSlot);
    slot_of_[i] = static_cast<std::uint16_t>(slot);
  }
  void unindex(NodeId node) {
    const auto i = static_cast<std::size_t>(node.get());
    if (i < slot_of_.size()) slot_of_[i] = kNoSlot;
  }

  std::size_t capacity_;
  std::vector<ResourceEntry> entries_;
  /// node id -> slot in entries_ (kNoSlot when absent); lazily grown.
  std::vector<std::uint16_t> slot_of_;
};

/// Push-pull averaging state for one metric (Jelasity et al., TOCS 2005).
/// The estimate actually *used* is the one published by the last completed
/// epoch; the current epoch's value keeps converging in the background and is
/// re-seeded from the local observation at every epoch boundary so that the
/// aggregate tracks churn.
struct AggregationState {
  double current = 0.0;    ///< value being averaged this epoch
  double published = 0.0;  ///< converged value from the previous epoch
};

}  // namespace dpjit::gossip
