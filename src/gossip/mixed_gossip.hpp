// The mixed gossip protocol (paper Section III.B): epidemic gossip for state
// dissemination (RSS maintenance) + aggregation gossip for global averages.
//
// The service is deliberately decoupled from the grid layer: it reads node
// state (load/capacity/aliveness) through callbacks and delivers epidemic
// messages through the event engine with real network latency. Aggregation
// exchanges are executed atomically at cycle ticks, exactly as cycle-driven
// Peersim protocols do (the control traffic is tiny - ~100 bytes per message,
// see Section IV.A - so its latency is irrelevant at 5-minute cycles).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "gossip/view.hpp"
#include "sim/engine.hpp"
#include "sim/periodic.hpp"
#include "util/rng.hpp"

namespace dpjit::gossip {

/// Tuning of the mixed protocol. Zeros mean "derive from n" as the paper does.
struct GossipParams {
  /// Gossip cycle length in seconds (paper: 5 minutes).
  double cycle_s = 300.0;
  /// Epidemic TTL in hops (paper: 4).
  int ttl = 4;
  /// Push fan-out per cycle; 0 derives ceil(log2(n)) (paper).
  int fanout = 0;
  /// RSS capacity; 0 derives ceil(2.5 * log2(n)), capped at 30 - reproduces
  /// the bounded acquaintance count of Fig. 11(a).
  int cache_size = 0;
  /// Entries older than this are dropped from RSS (handles churned nodes).
  double staleness_bound_s = 1800.0;
  /// Aggregation gossip restarts every this many cycles (epoch length).
  int aggregation_epoch_cycles = 12;
};

/// System-wide averages produced by the aggregation gossip, as seen by one node.
struct GlobalAverages {
  double capacity_mips = 1.0;
  double bandwidth_mbps = 1.0;
};

/// The per-node protocol stack, driven by MixedGossipService.
struct NodeGossip {
  ResourceView rss;
  AggregationState agg_capacity;
  AggregationState agg_bandwidth;
};

class MixedGossipService {
 public:
  /// Reads a node's current (load, capacity); only called for alive nodes.
  using LocalStateFn = std::function<void(NodeId, double& load_mi, double& capacity_mips)>;
  /// True when the node is currently alive.
  using AliveFn = std::function<bool(NodeId)>;
  /// One-way control-message latency between two alive nodes, seconds.
  using LatencyFn = std::function<double(NodeId, NodeId)>;
  /// A node's locally observable mean bandwidth (landmark links), Mb/s.
  using LocalBandwidthFn = std::function<double(NodeId)>;

  MixedGossipService(sim::Engine& engine, GossipParams params, int node_count,
                     LocalStateFn local_state, AliveFn alive, LatencyFn latency,
                     LocalBandwidthFn local_bw, util::Rng rng);

  /// Seeds every alive node's aggregation state and starts the periodic cycle.
  void start();

  /// Stops the periodic cycle (e.g. at the end of the horizon).
  void stop();

  /// Churn hooks. `bootstrap` is a set of alive contacts for the newcomer
  /// (the role a bootstrap/rendezvous server plays in deployed P2P systems).
  void node_joined(NodeId n, const std::vector<NodeId>& bootstrap);
  void node_left(NodeId n);

  /// RSS snapshot for a scheduler: fresh entries about *alive-believed* peers.
  [[nodiscard]] const ResourceView& rss(NodeId n) const;
  [[nodiscard]] ResourceView& rss(NodeId n);

  /// The averages the node currently believes (last completed epoch).
  [[nodiscard]] GlobalAverages averages(NodeId n) const;

  /// Mean RSS size over alive nodes (Fig. 11(a)).
  [[nodiscard]] double mean_rss_size() const;
  /// Mean number of idle peers (known load == 0) per alive node (Fig. 11(a)).
  [[nodiscard]] double mean_idle_known() const;

  [[nodiscard]] std::uint64_t messages_sent() const { return messages_sent_; }

  /// Estimated control traffic in bytes, using the paper's wire-format
  /// accounting (Section IV.A: ~20-byte header plus ~80 bytes of payload;
  /// we charge 20 bytes header + 20 bytes per carried resource entry).
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }

  [[nodiscard]] int effective_fanout() const { return fanout_; }
  [[nodiscard]] int effective_cache_size() const { return cache_size_; }

  /// Runs one epidemic + aggregation cycle immediately (tests drive this
  /// directly; normal operation uses start()).
  void run_cycle(std::uint64_t cycle);

 private:
  void epidemic_push(NodeId from);
  void aggregation_exchange(NodeId from);
  void reseed_aggregation(NodeId n);
  [[nodiscard]] std::vector<NodeId> pick_targets(NodeId from, int count);

  sim::Engine& engine_;
  GossipParams params_;
  int n_;
  int fanout_;
  int cache_size_;
  LocalStateFn local_state_;
  AliveFn alive_;
  LatencyFn latency_;
  LocalBandwidthFn local_bw_;
  util::Rng rng_;
  std::vector<NodeGossip> nodes_;
  std::unique_ptr<sim::PeriodicProcess> cycle_process_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

}  // namespace dpjit::gossip
