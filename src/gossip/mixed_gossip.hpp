// The mixed gossip protocol (paper Section III.B): epidemic gossip for state
// dissemination (RSS maintenance) + aggregation gossip for global averages.
//
// The service is deliberately decoupled from the grid layer: it reads node
// state (load/capacity/aliveness) through callbacks and delivers epidemic
// messages through the event engine with real network latency. Aggregation
// exchanges are executed atomically at cycle ticks, exactly as cycle-driven
// Peersim protocols do (the control traffic is tiny - ~100 bytes per message,
// see Section IV.A - so its latency is irrelevant at 5-minute cycles).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "gossip/failure_detector.hpp"
#include "gossip/view.hpp"
#include "sim/engine.hpp"
#include "sim/fault_plan.hpp"
#include "sim/periodic.hpp"
#include "util/rng.hpp"

namespace dpjit::gossip {

/// Tuning of the mixed protocol. Zeros mean "derive from n" as the paper does.
struct GossipParams {
  /// Gossip cycle length in seconds (paper: 5 minutes).
  double cycle_s = 300.0;
  /// Epidemic TTL in hops (paper: 4).
  int ttl = 4;
  /// Push fan-out per cycle; 0 derives ceil(log2(n)) (paper).
  int fanout = 0;
  /// RSS capacity; 0 derives ceil(2.5 * log2(n)), capped at 30 - reproduces
  /// the bounded acquaintance count of Fig. 11(a).
  int cache_size = 0;
  /// Entries older than this are dropped from RSS (handles churned nodes).
  double staleness_bound_s = 1800.0;
  /// Aggregation gossip restarts every this many cycles (epoch length).
  int aggregation_epoch_cycles = 12;

  // --- message-level mode (realism; ROADMAP item 5) ------------------------
  /// Replaces the cycle's shared-message epidemic push with a phased
  /// SYNC/ACK1/ACK2 push-pull (libgossip's shape): every leg is a real
  /// message with its own latency and - when a sim::FaultPlan is attached -
  /// loss/duplication/extra-delay draws. Membership becomes SWIM-style
  /// suspicion (FailureDetector) instead of the oracular alive() callback.
  bool message_level = false;
  /// Max protocol messages a node may SEND per cycle in message mode
  /// (initiations and replies both count); 0 derives 3 * fanout + 4.
  int round_message_budget = 0;
  /// A SYNC unanswered for this long makes the initiator suspect the target;
  /// 0 derives cycle_s / 2.
  double ack_timeout_s = 0.0;
  /// A suspect not refuted within this window is declared dead (and dropped
  /// from the view) at the next cycle sweep; 0 derives 2 * cycle_s.
  double suspect_timeout_s = 0.0;
};

/// System-wide averages produced by the aggregation gossip, as seen by one node.
struct GlobalAverages {
  double capacity_mips = 1.0;
  double bandwidth_mbps = 1.0;
};

/// The per-node protocol stack, driven by MixedGossipService.
struct NodeGossip {
  ResourceView rss;
  AggregationState agg_capacity;
  AggregationState agg_bandwidth;
};

class MixedGossipService {
 public:
  /// Reads a node's current (load, capacity); only called for alive nodes.
  using LocalStateFn = std::function<void(NodeId, double& load_mi, double& capacity_mips)>;
  /// True when the node is currently alive.
  using AliveFn = std::function<bool(NodeId)>;
  /// One-way control-message latency between two alive nodes, seconds.
  using LatencyFn = std::function<double(NodeId, NodeId)>;
  /// A node's locally observable mean bandwidth (landmark links), Mb/s.
  using LocalBandwidthFn = std::function<double(NodeId)>;

  /// `faults` (optional, may be null) supplies per-message fault draws; it
  /// must outlive the service. Without a plan every message is delivered
  /// exactly once after its network latency.
  MixedGossipService(sim::Engine& engine, GossipParams params, int node_count,
                     LocalStateFn local_state, AliveFn alive, LatencyFn latency,
                     LocalBandwidthFn local_bw, util::Rng rng, sim::FaultPlan* faults = nullptr);

  /// Seeds every alive node's aggregation state and starts the periodic cycle.
  void start();

  /// Stops the periodic cycle (e.g. at the end of the horizon).
  void stop();

  /// Churn hooks. `bootstrap` is a set of alive contacts for the newcomer
  /// (the role a bootstrap/rendezvous server plays in deployed P2P systems).
  void node_joined(NodeId n, const std::vector<NodeId>& bootstrap);
  void node_left(NodeId n);

  /// RSS snapshot for a scheduler: fresh entries about *alive-believed* peers.
  [[nodiscard]] const ResourceView& rss(NodeId n) const;
  [[nodiscard]] ResourceView& rss(NodeId n);

  /// The averages the node currently believes (last completed epoch).
  [[nodiscard]] GlobalAverages averages(NodeId n) const;

  /// Mean RSS size over alive nodes (Fig. 11(a)).
  [[nodiscard]] double mean_rss_size() const;
  /// Mean number of idle peers (known load == 0) per alive node (Fig. 11(a)).
  [[nodiscard]] double mean_idle_known() const;

  [[nodiscard]] std::uint64_t messages_sent() const { return messages_sent_; }

  /// Estimated control traffic in bytes, using the paper's wire-format
  /// accounting (Section IV.A: ~20-byte header plus ~80 bytes of payload;
  /// we charge 20 bytes header + 20 bytes per carried resource entry).
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }

  [[nodiscard]] int effective_fanout() const { return fanout_; }
  [[nodiscard]] int effective_cache_size() const { return cache_size_; }

  /// Message-mode observability. detector() is null in the idealized mode.
  [[nodiscard]] bool message_level() const { return params_.message_level; }
  [[nodiscard]] const FailureDetector* detector() const { return detector_.get(); }
  /// Sends skipped because the per-cycle message budget was exhausted.
  [[nodiscard]] std::uint64_t messages_suppressed() const { return messages_suppressed_; }

  /// Runs one epidemic + aggregation cycle immediately (tests drive this
  /// directly; normal operation uses start()).
  void run_cycle(std::uint64_t cycle);

 private:
  /// One wire-format resource summary: (node, snapshot time). 12 bytes.
  struct EntrySummary {
    NodeId node;
    SimTime stamped_at = 0.0;
  };

  void epidemic_push(NodeId from);
  void aggregation_exchange(NodeId from);
  void reseed_aggregation(NodeId n);
  [[nodiscard]] std::vector<NodeId> pick_targets(NodeId from, int count);

  // --- message-level mode ---
  void run_cycle_message(std::uint64_t cycle);
  void start_exchange(NodeId from, NodeId to,
                      const std::shared_ptr<std::vector<EntrySummary>>& digest);
  void on_sync(NodeId from, NodeId to, const std::shared_ptr<std::vector<EntrySummary>>& digest);
  void on_ack1(NodeId from, NodeId to, const std::shared_ptr<std::vector<ResourceEntry>>& push,
               const std::shared_ptr<std::vector<NodeId>>& want);
  /// Charges one send against `n`'s cycle budget; false (and counted) when
  /// exhausted - the message is simply never sent, as a real rate limiter
  /// would do, and the peer's ack timeout handles the fallout.
  [[nodiscard]] bool try_consume_budget(NodeId n);
  /// Applies fault fates and schedules delivery copies.
  void post_message(NodeId from, NodeId to, std::uint64_t bytes, std::function<void()> deliver);
  /// Detector-aware merge: drops self-entries and stale rumors about
  /// dead-believed peers; oracular alive() filter only in the idealized mode.
  void merge_entry(NodeId to, const ResourceEntry& entry);
  /// The entry `from` forwards about `node` right now (own fresh state when
  /// node == from, ttl-decremented cache entry otherwise; nullopt when the
  /// entry is gone or out of forwarding budget).
  [[nodiscard]] std::optional<ResourceEntry> forwardable_entry(NodeId from, NodeId node);

  sim::Engine& engine_;
  GossipParams params_;
  int n_;
  int fanout_;
  int cache_size_;
  LocalStateFn local_state_;
  AliveFn alive_;
  LatencyFn latency_;
  LocalBandwidthFn local_bw_;
  util::Rng rng_;
  sim::FaultPlan* faults_;
  std::vector<NodeGossip> nodes_;
  std::unique_ptr<sim::PeriodicProcess> cycle_process_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;

  // --- message-level mode state ---
  std::unique_ptr<FailureDetector> detector_;
  std::vector<int> budget_;  ///< remaining sends this cycle, per node
  double ack_timeout_ = 0.0;
  double suspect_timeout_ = 0.0;
  int message_budget_ = 0;
  std::uint64_t messages_suppressed_ = 0;
};

}  // namespace dpjit::gossip
