// Workflow = directed acyclic graph of tasks (paper Section II.A).
//
// Vertices carry the task's computational load (million instructions, MI) and
// the size of the task image that must be shipped to the executing node;
// edges carry the amount of dependent data (Mb) the successor must aggregate
// from the node that executed its precedent.
#pragma once

#include <string>
#include <vector>

#include "util/types.hpp"

namespace dpjit::dag {

/// One vertex of the workflow DAG.
struct Task {
  /// Computational load in million instructions (0 for virtual entry/exit).
  double load_mi = 0.0;
  /// Task image size in Mb, transferred from the home node to the resource node.
  double image_mb = 0.0;
  /// Optional human-readable label (used by the DOT exporter and examples).
  std::string name;
};

/// One directed dependency edge with its data volume.
struct Dependency {
  TaskIndex from;
  TaskIndex to;
  /// Dependent data (Mb) produced by `from` and consumed by `to`.
  double data_mb = 0.0;
};

/// A workflow DAG. Construction is append-only: add tasks, then wire
/// dependencies; call normalize() to guarantee a unique entry and exit task
/// (the paper's zero-cost virtual tasks), then validate().
class Workflow {
 public:
  Workflow() = default;
  explicit Workflow(WorkflowId id) : id_(id) {}

  [[nodiscard]] WorkflowId id() const { return id_; }
  void set_id(WorkflowId id) { id_ = id; }

  /// Appends a task and returns its index.
  TaskIndex add_task(double load_mi, double image_mb, std::string name = {});

  /// Adds the dependency edge from -> to carrying `data_mb` of data.
  /// Requires both indices valid, from != to, and no duplicate edge.
  void add_dependency(TaskIndex from, TaskIndex to, double data_mb);

  [[nodiscard]] std::size_t task_count() const { return tasks_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edge_count_; }
  [[nodiscard]] const Task& task(TaskIndex t) const;

  /// Pre(t): direct precedents of t.
  [[nodiscard]] const std::vector<TaskIndex>& predecessors(TaskIndex t) const;
  /// Suc(t): direct successors of t.
  [[nodiscard]] const std::vector<TaskIndex>& successors(TaskIndex t) const;

  /// Data volume on edge from -> to; requires the edge to exist.
  [[nodiscard]] double edge_data(TaskIndex from, TaskIndex to) const;

  /// True when the graph has no directed cycle.
  [[nodiscard]] bool is_acyclic() const;

  /// Ensures a unique entry task and a unique exit task by inserting zero-cost
  /// virtual tasks when needed (paper Section II.A). Idempotent.
  void normalize();

  /// The unique entry (no precedents). Requires exactly one to exist.
  [[nodiscard]] TaskIndex entry() const;
  /// The unique exit (no successors). Requires exactly one to exist.
  [[nodiscard]] TaskIndex exit() const;

  /// All tasks with no precedents / no successors (useful before normalize()).
  [[nodiscard]] std::vector<TaskIndex> entry_tasks() const;
  [[nodiscard]] std::vector<TaskIndex> exit_tasks() const;

  /// Kahn topological order. Requires acyclicity.
  [[nodiscard]] std::vector<TaskIndex> topological_order() const;

  /// Total load of all tasks (MI).
  [[nodiscard]] double total_load_mi() const;

  /// Structural problems (cycles, unreachable tasks, multiple entries/exits,
  /// negative weights). Empty result means the workflow is well-formed.
  [[nodiscard]] std::vector<std::string> validate() const;

 private:
  struct Adjacency {
    std::vector<TaskIndex> succ;
    std::vector<TaskIndex> pred;
    std::vector<double> succ_data;  // parallel to succ
  };

  WorkflowId id_{};
  std::vector<Task> tasks_;
  std::vector<Adjacency> adj_;
  std::size_t edge_count_ = 0;
};

}  // namespace dpjit::dag
