// Graphviz DOT export for workflows - used by the examples to visualize DAGs
// and handy when debugging generator output.
#pragma once

#include <ostream>

#include "dag/workflow.hpp"

namespace dpjit::dag {

/// Writes `wf` as a Graphviz digraph. Vertices show the task name (or index)
/// and load; edges show the data volume.
void write_dot(std::ostream& os, const Workflow& wf);

}  // namespace dpjit::dag
