#include "dag/dot.hpp"

#include <cstdio>

namespace dpjit::dag {

void write_dot(std::ostream& os, const Workflow& wf) {
  os << "digraph wf" << wf.id().get() << " {\n";
  os << "  rankdir=TB;\n  node [shape=box, fontsize=10];\n";
  char buf[128];
  for (std::size_t i = 0; i < wf.task_count(); ++i) {
    const TaskIndex t{static_cast<TaskIndex::underlying_type>(i)};
    const auto& task = wf.task(t);
    const char* name = task.name.empty() ? nullptr : task.name.c_str();
    if (name != nullptr) {
      std::snprintf(buf, sizeof(buf), "  t%zu [label=\"%s\\n%.0f MI\"];\n", i, name, task.load_mi);
    } else {
      std::snprintf(buf, sizeof(buf), "  t%zu [label=\"t%zu\\n%.0f MI\"];\n", i, i, task.load_mi);
    }
    os << buf;
  }
  for (std::size_t i = 0; i < wf.task_count(); ++i) {
    const TaskIndex t{static_cast<TaskIndex::underlying_type>(i)};
    for (TaskIndex s : wf.successors(t)) {
      std::snprintf(buf, sizeof(buf), "  t%zu -> t%d [label=\"%.0f Mb\"];\n", i, s.get(),
                    wf.edge_data(t, s));
      os << buf;
    }
  }
  os << "}\n";
}

}  // namespace dpjit::dag
