#include "dag/serialize.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace dpjit::dag {
namespace {

/// Next content line (comments stripped, blanks skipped); false on EOF.
bool next_line(std::istream& is, std::string& line) {
  while (std::getline(is, line)) {
    if (auto hash = line.find('#'); hash != std::string::npos) line.erase(hash);
    auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    auto last = line.find_last_not_of(" \t\r");
    line = line.substr(first, last - first + 1);
    return true;
  }
  return false;
}

/// Round-trip-exact decimal rendering of a double.
std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

void write_workflow(std::ostream& os, const Workflow& wf) {
  os << "workflow " << wf.id().get() << '\n';
  for (std::size_t i = 0; i < wf.task_count(); ++i) {
    const auto& t = wf.task(TaskIndex{static_cast<TaskIndex::underlying_type>(i)});
    os << "task " << num(t.load_mi) << ' ' << num(t.image_mb);
    if (!t.name.empty()) os << ' ' << t.name;
    os << '\n';
  }
  for (std::size_t i = 0; i < wf.task_count(); ++i) {
    const TaskIndex from{static_cast<TaskIndex::underlying_type>(i)};
    for (TaskIndex to : wf.successors(from)) {
      os << "edge " << from.get() << ' ' << to.get() << ' ' << num(wf.edge_data(from, to))
         << '\n';
    }
  }
  os << "end\n";
}

Workflow read_workflow(std::istream& is) {
  std::string line;
  if (!next_line(is, line)) throw std::invalid_argument("read_workflow: empty input");
  std::istringstream head(line);
  std::string keyword;
  long id = -1;
  head >> keyword >> id;
  if (keyword != "workflow" || head.fail()) {
    throw std::invalid_argument("read_workflow: expected 'workflow <id>', got: " + line);
  }
  Workflow wf(WorkflowId{static_cast<WorkflowId::underlying_type>(id)});

  while (next_line(is, line)) {
    std::istringstream ls(line);
    ls >> keyword;
    if (keyword == "task") {
      double load = 0.0;
      double image = 0.0;
      ls >> load >> image;
      if (ls.fail()) throw std::invalid_argument("read_workflow: bad task line: " + line);
      std::string name;
      std::getline(ls, name);
      if (auto first = name.find_first_not_of(' '); first != std::string::npos) {
        name = name.substr(first);
      } else {
        name.clear();
      }
      wf.add_task(load, image, std::move(name));
    } else if (keyword == "edge") {
      int from = -1;
      int to = -1;
      double data = 0.0;
      ls >> from >> to >> data;
      if (ls.fail()) throw std::invalid_argument("read_workflow: bad edge line: " + line);
      wf.add_dependency(TaskIndex{from}, TaskIndex{to}, data);
    } else if (keyword == "end") {
      return wf;
    } else {
      throw std::invalid_argument("read_workflow: unknown keyword: " + line);
    }
  }
  throw std::invalid_argument("read_workflow: missing 'end'");
}

void write_workflows(std::ostream& os, const std::vector<Workflow>& wfs) {
  for (const auto& wf : wfs) write_workflow(os, wf);
}

std::vector<Workflow> read_workflows(std::istream& is) {
  std::vector<Workflow> out;
  // Peek for content before attempting another record.
  std::string line;
  while (true) {
    const auto pos = is.tellg();
    if (!next_line(is, line)) break;
    is.seekg(pos);
    out.push_back(read_workflow(is));
  }
  return out;
}

}  // namespace dpjit::dag
