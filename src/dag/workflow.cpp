#include "dag/workflow.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace dpjit::dag {

TaskIndex Workflow::add_task(double load_mi, double image_mb, std::string name) {
  if (load_mi < 0.0 || image_mb < 0.0) {
    throw std::invalid_argument("task load/image must be non-negative");
  }
  tasks_.push_back(Task{load_mi, image_mb, std::move(name)});
  adj_.emplace_back();
  return TaskIndex{static_cast<TaskIndex::underlying_type>(tasks_.size() - 1)};
}

void Workflow::add_dependency(TaskIndex from, TaskIndex to, double data_mb) {
  if (!from.valid() || !to.valid() || static_cast<std::size_t>(from.get()) >= tasks_.size() ||
      static_cast<std::size_t>(to.get()) >= tasks_.size()) {
    throw std::out_of_range("dependency endpoint out of range");
  }
  if (from == to) throw std::invalid_argument("self-dependency");
  if (data_mb < 0.0) throw std::invalid_argument("negative edge data");
  auto& a = adj_[static_cast<std::size_t>(from.get())];
  if (std::find(a.succ.begin(), a.succ.end(), to) != a.succ.end()) {
    throw std::invalid_argument("duplicate dependency edge");
  }
  a.succ.push_back(to);
  a.succ_data.push_back(data_mb);
  adj_[static_cast<std::size_t>(to.get())].pred.push_back(from);
  ++edge_count_;
}

const Task& Workflow::task(TaskIndex t) const {
  assert(t.valid() && static_cast<std::size_t>(t.get()) < tasks_.size());
  return tasks_[static_cast<std::size_t>(t.get())];
}

const std::vector<TaskIndex>& Workflow::predecessors(TaskIndex t) const {
  assert(t.valid() && static_cast<std::size_t>(t.get()) < adj_.size());
  return adj_[static_cast<std::size_t>(t.get())].pred;
}

const std::vector<TaskIndex>& Workflow::successors(TaskIndex t) const {
  assert(t.valid() && static_cast<std::size_t>(t.get()) < adj_.size());
  return adj_[static_cast<std::size_t>(t.get())].succ;
}

double Workflow::edge_data(TaskIndex from, TaskIndex to) const {
  const auto& a = adj_[static_cast<std::size_t>(from.get())];
  for (std::size_t i = 0; i < a.succ.size(); ++i) {
    if (a.succ[i] == to) return a.succ_data[i];
  }
  throw std::out_of_range("no such dependency edge");
}

bool Workflow::is_acyclic() const {
  return topological_order().size() == tasks_.size();
}

std::vector<TaskIndex> Workflow::entry_tasks() const {
  std::vector<TaskIndex> out;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (adj_[i].pred.empty()) out.push_back(TaskIndex{static_cast<TaskIndex::underlying_type>(i)});
  }
  return out;
}

std::vector<TaskIndex> Workflow::exit_tasks() const {
  std::vector<TaskIndex> out;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (adj_[i].succ.empty()) out.push_back(TaskIndex{static_cast<TaskIndex::underlying_type>(i)});
  }
  return out;
}

void Workflow::normalize() {
  if (tasks_.empty()) return;
  auto entries = entry_tasks();
  if (entries.size() > 1) {
    TaskIndex v = add_task(0.0, 0.0, "virtual-entry");
    for (TaskIndex e : entries) add_dependency(v, e, 0.0);
  }
  auto exits = exit_tasks();
  if (exits.size() > 1) {
    TaskIndex v = add_task(0.0, 0.0, "virtual-exit");
    for (TaskIndex e : exits) add_dependency(e, v, 0.0);
  }
}

TaskIndex Workflow::entry() const {
  auto entries = entry_tasks();
  if (entries.size() != 1) throw std::logic_error("workflow does not have a unique entry; call normalize()");
  return entries.front();
}

TaskIndex Workflow::exit() const {
  auto exits = exit_tasks();
  if (exits.size() != 1) throw std::logic_error("workflow does not have a unique exit; call normalize()");
  return exits.front();
}

std::vector<TaskIndex> Workflow::topological_order() const {
  std::vector<std::size_t> indeg(tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) indeg[i] = adj_[i].pred.size();
  std::vector<TaskIndex> order;
  order.reserve(tasks_.size());
  std::vector<std::size_t> frontier;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (indeg[i] == 0) frontier.push_back(i);
  }
  // Process in ascending index order for determinism.
  std::size_t head = 0;
  while (head < frontier.size()) {
    std::size_t u = frontier[head++];
    order.push_back(TaskIndex{static_cast<TaskIndex::underlying_type>(u)});
    for (TaskIndex s : adj_[u].succ) {
      auto v = static_cast<std::size_t>(s.get());
      if (--indeg[v] == 0) frontier.push_back(v);
    }
  }
  return order;  // shorter than task_count() iff there is a cycle
}

double Workflow::total_load_mi() const {
  double sum = 0.0;
  for (const auto& t : tasks_) sum += t.load_mi;
  return sum;
}

std::vector<std::string> Workflow::validate() const {
  std::vector<std::string> issues;
  if (tasks_.empty()) {
    issues.emplace_back("workflow has no tasks");
    return issues;
  }
  if (!is_acyclic()) issues.emplace_back("workflow contains a cycle");
  if (entry_tasks().size() != 1) issues.emplace_back("workflow does not have a unique entry task");
  if (exit_tasks().size() != 1) issues.emplace_back("workflow does not have a unique exit task");
  // Reachability from the entry set: every task must be on some entry->exit path.
  std::vector<char> seen(tasks_.size(), 0);
  std::vector<std::size_t> stack;
  for (TaskIndex e : entry_tasks()) stack.push_back(static_cast<std::size_t>(e.get()));
  while (!stack.empty()) {
    std::size_t u = stack.back();
    stack.pop_back();
    if (seen[u]) continue;
    seen[u] = 1;
    for (TaskIndex s : adj_[u].succ) stack.push_back(static_cast<std::size_t>(s.get()));
  }
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (!seen[i]) {
      issues.push_back("task " + std::to_string(i) + " unreachable from entry");
    }
  }
  return issues;
}

}  // namespace dpjit::dag
