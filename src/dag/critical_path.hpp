// Expected-time estimation over workflow DAGs (paper Eq. (1) and the
// eet/ett approximations used by RPM).
//
// All "expected" quantities are computed against system-wide averages: the
// average node capacity (MIPS) and average network bandwidth (Mb/s) that the
// aggregation gossip protocol maintains at every node.
#pragma once

#include <vector>

#include "dag/workflow.hpp"

namespace dpjit::dag {

/// System-wide averages used for expected execution / transmission times.
struct AverageEstimates {
  /// Average node capacity in MIPS (> 0).
  double capacity_mips = 1.0;
  /// Average network bandwidth in Mb/s (> 0).
  double bandwidth_mbps = 1.0;
};

/// eet(t): expected execution time of a task on an average node, seconds.
[[nodiscard]] double expected_execution_time(const Task& t, const AverageEstimates& avg);

/// ett for a given data volume: expected transmission time, seconds.
[[nodiscard]] double expected_transmission_time(double data_mb, const AverageEstimates& avg);

/// Upward ranks: rank(t) = eet(t) + max over successors s of
/// (ett(edge t->s) + rank(s)); rank(exit) = eet(exit).
/// This is the paper's expected-time skeleton of RPM (the offspring part of
/// Eq. (7)) and matches HEFT's rank_u. Indexed by task index.
[[nodiscard]] std::vector<double> upward_ranks(const Workflow& wf, const AverageEstimates& avg);

/// Expected finish-time eft(f) (Eq. (1)): length of the critical path from
/// entry to exit under average estimates == upward rank of the entry task.
/// Requires a normalized workflow (unique entry).
[[nodiscard]] double expected_finish_time(const Workflow& wf, const AverageEstimates& avg);

/// The critical workflow tasks t* (Eq. (1)): the entry->exit path realizing
/// eft(f), in execution order.
[[nodiscard]] std::vector<TaskIndex> critical_path(const Workflow& wf, const AverageEstimates& avg);

}  // namespace dpjit::dag
