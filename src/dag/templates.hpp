// Hand-built workflow shapes used by the examples and by directional tests:
// structured scientific-workflow skeletons (Montage-like mosaicking, fork-join
// parameter sweeps, linear pipelines, diamonds).
#pragma once

#include "dag/workflow.hpp"

namespace dpjit::dag {

/// Common scale knobs for the template workflows.
struct TemplateParams {
  double load_mi = 1000.0;   ///< typical task load
  double image_mb = 20.0;    ///< task image size
  double data_mb = 100.0;    ///< typical edge data volume
};

/// Montage-style astronomy mosaicking skeleton:
/// projection fan-out (width) -> pairwise background fitting -> concat model ->
/// background correction fan-out -> co-addition -> shrink/export tail.
/// Width >= 2. The DAG shape follows the well-known Montage workflow.
[[nodiscard]] Workflow make_montage(WorkflowId id, int width, const TemplateParams& p = {});

/// Fork-join: entry forks into `width` parallel tasks per level, joins, and
/// repeats for `levels` levels. width >= 1, levels >= 1.
[[nodiscard]] Workflow make_fork_join(WorkflowId id, int levels, int width,
                                      const TemplateParams& p = {});

/// Linear pipeline of `length` tasks (length >= 1).
[[nodiscard]] Workflow make_pipeline(WorkflowId id, int length, const TemplateParams& p = {});

/// Diamond: entry -> {left, right} -> exit, with asymmetric branch weights.
/// `skew` scales the left branch load relative to the right (>0).
[[nodiscard]] Workflow make_diamond(WorkflowId id, double skew = 2.0, const TemplateParams& p = {});

/// Workflow A of the paper's Fig. 3 worked example:
/// A1 -> {A2, A3}; A2 -> A4 -> A6; A3 -> A5 -> A6. Under unit average
/// capacity/bandwidth: RPM(A2) = 80, RPM(A3) = 115 (the published values).
[[nodiscard]] Workflow make_fig3_workflow_a(WorkflowId id = WorkflowId{0});

/// Workflow B of Fig. 3: B1 -> {B2, B3}; B2 -> B4 -> B5; B3 -> B5.
/// Under unit averages: RPM(B2) = 65, RPM(B3) = 60.
[[nodiscard]] Workflow make_fig3_workflow_b(WorkflowId id = WorkflowId{1});

}  // namespace dpjit::dag
