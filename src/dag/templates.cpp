#include "dag/templates.hpp"

#include <stdexcept>

namespace dpjit::dag {

Workflow make_montage(WorkflowId id, int width, const TemplateParams& p) {
  if (width < 2) throw std::invalid_argument("make_montage: width must be >= 2");
  Workflow wf(id);
  // mProject: one reprojection per input image.
  std::vector<TaskIndex> project;
  for (int i = 0; i < width; ++i) {
    project.push_back(wf.add_task(p.load_mi, p.image_mb, "mProject" + std::to_string(i)));
  }
  // mDiffFit: background difference between adjacent image pairs.
  std::vector<TaskIndex> diff;
  for (int i = 0; i + 1 < width; ++i) {
    TaskIndex d = wf.add_task(p.load_mi * 0.4, p.image_mb, "mDiffFit" + std::to_string(i));
    wf.add_dependency(project[static_cast<std::size_t>(i)], d, p.data_mb);
    wf.add_dependency(project[static_cast<std::size_t>(i) + 1], d, p.data_mb);
    diff.push_back(d);
  }
  // mConcatFit: aggregate all the fit coefficients.
  TaskIndex concat = wf.add_task(p.load_mi * 0.2, p.image_mb, "mConcatFit");
  for (TaskIndex d : diff) wf.add_dependency(d, concat, p.data_mb * 0.1);
  // mBgModel -> per-image mBackground corrections.
  TaskIndex bgmodel = wf.add_task(p.load_mi * 0.5, p.image_mb, "mBgModel");
  wf.add_dependency(concat, bgmodel, p.data_mb * 0.1);
  std::vector<TaskIndex> background;
  for (int i = 0; i < width; ++i) {
    TaskIndex b = wf.add_task(p.load_mi * 0.3, p.image_mb, "mBackground" + std::to_string(i));
    wf.add_dependency(bgmodel, b, p.data_mb * 0.2);
    wf.add_dependency(project[static_cast<std::size_t>(i)], b, p.data_mb);
    background.push_back(b);
  }
  // mImgtbl + mAdd co-addition, then mShrink/mJPEG tail.
  TaskIndex add = wf.add_task(p.load_mi * 2.0, p.image_mb, "mAdd");
  for (TaskIndex b : background) wf.add_dependency(b, add, p.data_mb);
  TaskIndex shrink = wf.add_task(p.load_mi * 0.3, p.image_mb, "mShrink");
  wf.add_dependency(add, shrink, p.data_mb * 2.0);
  TaskIndex jpeg = wf.add_task(p.load_mi * 0.1, p.image_mb, "mJPEG");
  wf.add_dependency(shrink, jpeg, p.data_mb * 0.5);

  wf.normalize();
  return wf;
}

Workflow make_fork_join(WorkflowId id, int levels, int width, const TemplateParams& p) {
  if (levels < 1 || width < 1) throw std::invalid_argument("make_fork_join: levels/width >= 1");
  Workflow wf(id);
  TaskIndex prev_join = wf.add_task(p.load_mi * 0.1, p.image_mb, "source");
  for (int lv = 0; lv < levels; ++lv) {
    std::vector<TaskIndex> stage;
    for (int w = 0; w < width; ++w) {
      TaskIndex t = wf.add_task(p.load_mi, p.image_mb,
                                "work" + std::to_string(lv) + "_" + std::to_string(w));
      wf.add_dependency(prev_join, t, p.data_mb);
      stage.push_back(t);
    }
    TaskIndex join = wf.add_task(p.load_mi * 0.2, p.image_mb, "join" + std::to_string(lv));
    for (TaskIndex t : stage) wf.add_dependency(t, join, p.data_mb);
    prev_join = join;
  }
  wf.normalize();
  return wf;
}

Workflow make_pipeline(WorkflowId id, int length, const TemplateParams& p) {
  if (length < 1) throw std::invalid_argument("make_pipeline: length >= 1");
  Workflow wf(id);
  TaskIndex prev = wf.add_task(p.load_mi, p.image_mb, "stage0");
  for (int i = 1; i < length; ++i) {
    TaskIndex t = wf.add_task(p.load_mi, p.image_mb, "stage" + std::to_string(i));
    wf.add_dependency(prev, t, p.data_mb);
    prev = t;
  }
  wf.normalize();
  return wf;
}

Workflow make_diamond(WorkflowId id, double skew, const TemplateParams& p) {
  if (skew <= 0.0) throw std::invalid_argument("make_diamond: skew must be > 0");
  Workflow wf(id);
  TaskIndex a = wf.add_task(p.load_mi * 0.5, p.image_mb, "split");
  TaskIndex left = wf.add_task(p.load_mi * skew, p.image_mb, "heavy");
  TaskIndex right = wf.add_task(p.load_mi, p.image_mb, "light");
  TaskIndex d = wf.add_task(p.load_mi * 0.5, p.image_mb, "merge");
  wf.add_dependency(a, left, p.data_mb);
  wf.add_dependency(a, right, p.data_mb);
  wf.add_dependency(left, d, p.data_mb);
  wf.add_dependency(right, d, p.data_mb);
  wf.normalize();
  return wf;
}

Workflow make_fig3_workflow_a(WorkflowId id) {
  Workflow wf(id);
  auto a1 = wf.add_task(5, 0, "A1");
  auto a2 = wf.add_task(10, 0, "A2");
  auto a3 = wf.add_task(20, 0, "A3");
  auto a4 = wf.add_task(30, 0, "A4");
  auto a5 = wf.add_task(20, 0, "A5");
  auto a6 = wf.add_task(10, 0, "A6");
  wf.add_dependency(a1, a2, 20);
  wf.add_dependency(a1, a3, 40);
  wf.add_dependency(a2, a4, 10);
  wf.add_dependency(a3, a5, 35);
  wf.add_dependency(a4, a6, 20);
  wf.add_dependency(a5, a6, 30);
  return wf;
}

Workflow make_fig3_workflow_b(WorkflowId id) {
  Workflow wf(id);
  auto b1 = wf.add_task(20, 0, "B1");
  auto b2 = wf.add_task(10, 0, "B2");
  auto b3 = wf.add_task(40, 0, "B3");
  auto b4 = wf.add_task(5, 0, "B4");
  auto b5 = wf.add_task(5, 0, "B5");
  wf.add_dependency(b1, b2, 10);
  wf.add_dependency(b1, b3, 10);
  wf.add_dependency(b2, b4, 40);
  wf.add_dependency(b3, b5, 15);
  wf.add_dependency(b4, b5, 5);
  return wf;
}

}  // namespace dpjit::dag
