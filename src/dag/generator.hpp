// Random workflow generator following the paper's experimental setting
// (Table I): 2-30 tasks per workflow, per-task fan-out 1-5, loads 100-10000 MI,
// image sizes 10-100 Mb, dependent data 10-1000 / 100-10000 Mb.
#pragma once

#include "dag/workflow.hpp"
#include "util/rng.hpp"

namespace dpjit::dag {

/// Parameters of the random DAG family (defaults = Table I, CCR ~ 0.16 case).
struct GeneratorParams {
  int min_tasks = 2;
  int max_tasks = 30;
  /// Out-degree bounds for non-exit tasks.
  int min_fanout = 1;
  int max_fanout = 5;
  double min_load_mi = 100.0;
  double max_load_mi = 10000.0;
  double min_image_mb = 10.0;
  double max_image_mb = 100.0;
  double min_data_mb = 10.0;
  double max_data_mb = 1000.0;

  /// Throws std::invalid_argument when bounds are inverted or non-positive.
  void validate() const;
};

/// Generates a normalized, validated random workflow. Deterministic in `rng`.
///
/// Construction: tasks are laid out in a random topological position order;
/// every non-first task receives at least one precedent (guaranteeing a unique
/// entry), then extra forward edges are added until each task's out-degree
/// reaches a uniform target in [min_fanout, max_fanout] (capped by the number
/// of available later tasks). Multiple exits are merged by a zero-cost
/// virtual exit task, as the paper prescribes.
[[nodiscard]] Workflow generate_workflow(WorkflowId id, const GeneratorParams& params,
                                         util::Rng& rng);

}  // namespace dpjit::dag
