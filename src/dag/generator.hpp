// Random workflow generator following the paper's experimental setting
// (Table I): 2-30 tasks per workflow, per-task fan-out 1-5, loads 100-10000 MI,
// image sizes 10-100 Mb, dependent data 10-1000 / 100-10000 Mb.
#pragma once

#include "dag/workflow.hpp"
#include "util/rng.hpp"

namespace dpjit::dag {

/// How per-task loads and per-edge data volumes are drawn from their
/// [min, max] ranges. kUniform is the paper's Table-I setting; the heavy-tail
/// families model real grid traces, where most tasks are small and a few are
/// enormous. Heavy-tail draws are clamped back into [min, max], so the range
/// bounds stay hard invariants regardless of the distribution.
enum class SizeDistribution {
  kUniform,
  /// exp(N(mu, sigma)) with mu centered on the geometric mean of the range;
  /// the tail shape parameter is sigma (log-space standard deviation).
  kLogNormal,
  /// Pareto Type I with scale = min; the tail shape parameter is the tail
  /// index alpha (smaller alpha = heavier tail).
  kPareto,
};

/// Parameters of the random DAG family (defaults = Table I, CCR ~ 0.16 case).
struct GeneratorParams {
  int min_tasks = 2;
  int max_tasks = 30;
  /// Out-degree bounds for non-exit tasks.
  int min_fanout = 1;
  int max_fanout = 5;
  double min_load_mi = 100.0;
  double max_load_mi = 10000.0;
  double min_image_mb = 10.0;
  double max_image_mb = 100.0;
  double min_data_mb = 10.0;
  double max_data_mb = 1000.0;
  /// Distribution of task loads / dependent-data volumes over their ranges.
  SizeDistribution load_distribution = SizeDistribution::kUniform;
  SizeDistribution data_distribution = SizeDistribution::kUniform;
  /// Heavy-tail shape: lognormal sigma, or Pareto alpha (unused for uniform).
  double load_tail_shape = 1.0;
  double data_tail_shape = 1.5;

  /// Throws std::invalid_argument when bounds are inverted or non-positive
  /// (heavy-tail draws additionally require strictly positive minima).
  void validate() const;
};

/// Generates a normalized, validated random workflow. Deterministic in `rng`.
///
/// Construction: tasks are laid out in a random topological position order;
/// every non-first task receives at least one precedent (guaranteeing a unique
/// entry), then extra forward edges are added until each task's out-degree
/// reaches a uniform target in [min_fanout, max_fanout] (capped by the number
/// of available later tasks). Multiple exits are merged by a zero-cost
/// virtual exit task, as the paper prescribes.
[[nodiscard]] Workflow generate_workflow(WorkflowId id, const GeneratorParams& params,
                                         util::Rng& rng);

}  // namespace dpjit::dag
