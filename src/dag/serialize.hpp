// Plain-text workflow persistence, so workloads can be saved, inspected and
// replayed across runs (and exchanged with external tooling).
//
// Format (line-oriented, '#' comments allowed):
//   workflow <id>
//   task <load_mi> <image_mb> [name]
//   edge <from_index> <to_index> <data_mb>
//   end
// Tasks are numbered in file order starting at 0.
#pragma once

#include <istream>
#include <ostream>
#include <vector>

#include "dag/workflow.hpp"

namespace dpjit::dag {

/// Writes one workflow in the text format above.
void write_workflow(std::ostream& os, const Workflow& wf);

/// Reads one workflow; throws std::invalid_argument on malformed input and
/// std::ios_base::failure-like std::invalid_argument on premature EOF.
[[nodiscard]] Workflow read_workflow(std::istream& is);

/// Writes/reads a whole batch (concatenated single-workflow records).
void write_workflows(std::ostream& os, const std::vector<Workflow>& wfs);
[[nodiscard]] std::vector<Workflow> read_workflows(std::istream& is);

}  // namespace dpjit::dag
