#include "dag/critical_path.hpp"

#include <cassert>
#include <stdexcept>

namespace dpjit::dag {

double expected_execution_time(const Task& t, const AverageEstimates& avg) {
  assert(avg.capacity_mips > 0.0);
  return t.load_mi / avg.capacity_mips;
}

double expected_transmission_time(double data_mb, const AverageEstimates& avg) {
  assert(avg.bandwidth_mbps > 0.0);
  return data_mb / avg.bandwidth_mbps;
}

std::vector<double> upward_ranks(const Workflow& wf, const AverageEstimates& avg) {
  const auto order = wf.topological_order();
  if (order.size() != wf.task_count()) throw std::logic_error("upward_ranks: workflow has a cycle");
  std::vector<double> rank(wf.task_count(), 0.0);
  // Walk the topological order backwards so successors are ranked first.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskIndex t = *it;
    double best_child = 0.0;
    for (TaskIndex s : wf.successors(t)) {
      const double via = expected_transmission_time(wf.edge_data(t, s), avg) +
                         rank[static_cast<std::size_t>(s.get())];
      best_child = std::max(best_child, via);
    }
    rank[static_cast<std::size_t>(t.get())] = expected_execution_time(wf.task(t), avg) + best_child;
  }
  return rank;
}

double expected_finish_time(const Workflow& wf, const AverageEstimates& avg) {
  const auto ranks = upward_ranks(wf, avg);
  return ranks[static_cast<std::size_t>(wf.entry().get())];
}

std::vector<TaskIndex> critical_path(const Workflow& wf, const AverageEstimates& avg) {
  const auto ranks = upward_ranks(wf, avg);
  std::vector<TaskIndex> path;
  TaskIndex cur = wf.entry();
  path.push_back(cur);
  while (!wf.successors(cur).empty()) {
    // The critical successor realizes rank(cur) = eet(cur) + ett(edge) + rank(succ).
    const double want = ranks[static_cast<std::size_t>(cur.get())] -
                        expected_execution_time(wf.task(cur), avg);
    TaskIndex next{};
    double best = -1.0;
    for (TaskIndex s : wf.successors(cur)) {
      const double via = expected_transmission_time(wf.edge_data(cur, s), avg) +
                         ranks[static_cast<std::size_t>(s.get())];
      // Track the max; floating-point equality with `want` is implied at the max.
      if (via > best) {
        best = via;
        next = s;
      }
    }
    (void)want;
    assert(next.valid());
    path.push_back(next);
    cur = next;
  }
  return path;
}

}  // namespace dpjit::dag
