#include "dag/generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dpjit::dag {
namespace {

/// One size draw from [lo, hi] under the requested family. The uniform path
/// consumes exactly one uniform (bit-compatible with the pre-distribution
/// generator); heavy tails are clamped back into the range.
double draw_size(util::Rng& rng, SizeDistribution dist, double lo, double hi, double shape) {
  switch (dist) {
    case SizeDistribution::kUniform: return rng.uniform(lo, hi);
    case SizeDistribution::kLogNormal: {
      const double mu = 0.5 * (std::log(lo) + std::log(hi));
      return std::clamp(rng.lognormal(mu, shape), lo, hi);
    }
    case SizeDistribution::kPareto: return std::min(rng.pareto(lo, shape), hi);
  }
  throw std::logic_error("draw_size: unknown distribution");
}

}  // namespace

void GeneratorParams::validate() const {
  auto check = [](bool ok, const char* what) {
    if (!ok) throw std::invalid_argument(std::string("GeneratorParams: ") + what);
  };
  check(min_tasks >= 1 && min_tasks <= max_tasks, "task count bounds");
  check(min_fanout >= 1 && min_fanout <= max_fanout, "fanout bounds");
  check(min_load_mi >= 0 && min_load_mi <= max_load_mi, "load bounds");
  check(min_image_mb >= 0 && min_image_mb <= max_image_mb, "image bounds");
  check(min_data_mb >= 0 && min_data_mb <= max_data_mb, "data bounds");
  if (load_distribution != SizeDistribution::kUniform) {
    check(min_load_mi > 0, "heavy-tailed load needs min_load_mi > 0");
    check(load_tail_shape > 0, "load tail shape > 0");
  }
  if (data_distribution != SizeDistribution::kUniform) {
    check(min_data_mb > 0, "heavy-tailed data needs min_data_mb > 0");
    check(data_tail_shape > 0, "data tail shape > 0");
  }
}

Workflow generate_workflow(WorkflowId id, const GeneratorParams& params, util::Rng& rng) {
  params.validate();
  Workflow wf(id);

  const int n = static_cast<int>(rng.uniform_int(params.min_tasks, params.max_tasks));
  std::vector<TaskIndex> tasks;
  tasks.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    // Built in two steps: `"t" + std::to_string(i)` trips a -Wrestrict false
    // positive in GCC 12 (PR 105329) under -O2.
    std::string name = "t";
    name += std::to_string(i);
    tasks.push_back(wf.add_task(draw_size(rng, params.load_distribution, params.min_load_mi,
                                          params.max_load_mi, params.load_tail_shape),
                                rng.uniform(params.min_image_mb, params.max_image_mb),
                                std::move(name)));
  }

  std::vector<int> outdeg(static_cast<std::size_t>(n), 0);
  auto data = [&] {
    return draw_size(rng, params.data_distribution, params.min_data_mb, params.max_data_mb,
                     params.data_tail_shape);
  };

  // Phase 1 - connectivity: every task i>0 takes one precedent among the
  // earlier tasks that still have fan-out budget. During this phase at most
  // i-1 edges exist among the first i tasks, so a candidate always exists.
  for (int i = 1; i < n; ++i) {
    std::vector<int> candidates;
    for (int j = 0; j < i; ++j) {
      if (outdeg[static_cast<std::size_t>(j)] < params.max_fanout) candidates.push_back(j);
    }
    const int j = candidates[rng.index(candidates.size())];
    wf.add_dependency(tasks[static_cast<std::size_t>(j)], tasks[static_cast<std::size_t>(i)], data());
    ++outdeg[static_cast<std::size_t>(j)];
  }

  // Phase 2 - densification: raise each task's out-degree toward a uniform
  // target, wiring to distinct later tasks (keeps the topological layout).
  for (int i = 0; i < n - 1; ++i) {
    const int target = static_cast<int>(rng.uniform_int(params.min_fanout, params.max_fanout));
    const int later = n - 1 - i;
    const int want = std::min(target, later);
    if (outdeg[static_cast<std::size_t>(i)] >= want) continue;
    // Later tasks not already successors of i.
    std::vector<int> pool;
    for (int k = i + 1; k < n; ++k) {
      const auto& succ = wf.successors(tasks[static_cast<std::size_t>(i)]);
      if (std::find(succ.begin(), succ.end(), tasks[static_cast<std::size_t>(k)]) == succ.end()) {
        pool.push_back(k);
      }
    }
    rng.shuffle(pool);
    for (int k : pool) {
      if (outdeg[static_cast<std::size_t>(i)] >= want) break;
      wf.add_dependency(tasks[static_cast<std::size_t>(i)], tasks[static_cast<std::size_t>(k)], data());
      ++outdeg[static_cast<std::size_t>(i)];
    }
  }

  wf.normalize();
  return wf;
}

}  // namespace dpjit::dag
