// The discrete-event simulation engine (our Peersim substitute).
//
// Components schedule callbacks at absolute or relative simulated times;
// the engine executes them in (time, insertion) order. Scheduling into the
// past is a programming error and throws.
#pragma once

#include <cstdint>

#include "sim/event_queue.hpp"

namespace dpjit::sim {

class Engine {
 public:
  /// Current simulated time in seconds.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` at absolute simulated time `t` (>= now, or throws).
  EventQueue::Handle schedule_at(SimTime t, EventFn fn);

  /// Schedules `fn` after `delay` seconds (>= 0, or throws).
  EventQueue::Handle schedule_in(double delay, EventFn fn);

  /// Cancels a pending event; false if it already fired or was cancelled.
  bool cancel(EventQueue::Handle h);

  /// Time of the earliest pending event. Requires pending() > 0.
  [[nodiscard]] SimTime next_event_time() const { return queue_.next_time(); }

  /// Pre-sizes the event slab for `n` concurrently pending events (capacity
  /// hint from the experiment configuration; purely an allocation saver).
  void reserve(std::size_t n) { queue_.reserve(n); }

  /// Executes one event if any is pending. Returns false when idle.
  bool step();

  /// Runs until the queue drains or simulated time would exceed `end`.
  /// Events at exactly `end` still run; `now()` is `end` afterwards
  /// (unless the queue drained earlier, in which case it is the last event time).
  void run_until(SimTime end);

  /// Runs until the queue drains completely.
  void run_all();

  /// Makes run_until / run_all return after the current event completes.
  void request_stop() { stop_requested_ = true; }

  /// Number of events executed so far.
  [[nodiscard]] std::uint64_t processed() const { return processed_; }

  /// Number of pending events.
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  /// Read-only view of the underlying queue (slab-capacity inspection).
  [[nodiscard]] const EventQueue& queue() const { return queue_; }

 private:
  EventQueue queue_;
  SimTime now_ = 0.0;
  std::uint64_t processed_ = 0;
  bool stop_requested_ = false;
};

}  // namespace dpjit::sim
