// Small-buffer-optimized move-only callable, used for event callbacks.
//
// std::function heap-allocates once a lambda captures more than ~16 bytes
// (libstdc++/libc++ SBO), which puts an allocation on the engine's
// schedule path for typical call sites ([this, id], [this, to, message], ...).
// InlineFunction stores any nothrow-movable callable of up to `Capacity`
// bytes inline (default 48, enough for a `this` pointer plus five words of
// captures) and only falls back to the heap beyond that. It is move-only:
// event callbacks are scheduled once and invoked once, so copyability buys
// nothing and would force every capture to be copyable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>  // std::bad_function_call
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace dpjit::sim {

/// Default inline capacity in bytes (>= 48 per the event-engine contract).
inline constexpr std::size_t kInlineFnCapacity = 48;

template <typename Signature, std::size_t Capacity = kInlineFnCapacity>
class InlineFunction;  // primary template; only the R(Args...) partial below exists

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
  template <typename F>
  static constexpr bool fits_inline =
      sizeof(F) <= Capacity && alignof(F) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<F>;

  template <typename F>
  static constexpr bool is_compatible =
      !std::is_same_v<std::remove_cvref_t<F>, InlineFunction> &&
      std::is_invocable_r_v<R, std::remove_cvref_t<F>&, Args...>;

 public:
  InlineFunction() noexcept = default;
  InlineFunction(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  /// Wraps any compatible callable (implicit, mirroring std::function).
  template <typename F, typename = std::enable_if_t<is_compatible<F>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    if constexpr (fits_inline<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      invoke_ = [](void* s, Args... args) -> R {
        // Discard the callable's result when R is void (like std::function).
        if constexpr (std::is_void_v<R>) {
          (*std::launder(reinterpret_cast<Fn*>(s)))(std::forward<Args>(args)...);
        } else {
          return (*std::launder(reinterpret_cast<Fn*>(s)))(std::forward<Args>(args)...);
        }
      };
      manage_ = [](Op op, void* dst, void* src) {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        if (op == Op::kRelocate) ::new (dst) Fn(std::move(*from));
        from->~Fn();
      };
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      invoke_ = [](void* s, Args... args) -> R {
        if constexpr (std::is_void_v<R>) {
          (**std::launder(reinterpret_cast<Fn**>(s)))(std::forward<Args>(args)...);
        } else {
          return (**std::launder(reinterpret_cast<Fn**>(s)))(std::forward<Args>(args)...);
        }
      };
      manage_ = [](Op op, void* dst, void* src) {
        // The stored pointer itself is trivially destructible.
        Fn** from = std::launder(reinterpret_cast<Fn**>(src));
        if (op == Op::kRelocate) {
          ::new (dst) Fn*(*from);
        } else {
          delete *from;
        }
      };
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  R operator()(Args... args) {
    if (invoke_ == nullptr) throw std::bad_function_call();
    return invoke_(storage_, std::forward<Args>(args)...);
  }

  [[nodiscard]] explicit operator bool() const noexcept { return invoke_ != nullptr; }

 private:
  enum class Op : std::uint8_t { kDestroy, kRelocate };

  void reset() noexcept {
    if (manage_ != nullptr) manage_(Op::kDestroy, nullptr, storage_);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  /// Adopts `other`'s callable (relocating the inline object) and empties it.
  void move_from(InlineFunction& other) noexcept {
    if (other.invoke_ == nullptr) return;
    other.manage_(Op::kRelocate, storage_, other.storage_);
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  alignas(std::max_align_t) std::byte storage_[Capacity];
  R (*invoke_)(void*, Args...) = nullptr;
  void (*manage_)(Op, void* dst, void* src) = nullptr;
};

/// The event-callback type scheduled on the engine.
using InlineFn = InlineFunction<void()>;

}  // namespace dpjit::sim
