#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace dpjit::sim {

EventQueue::Handle EventQueue::schedule(SimTime t, EventFn fn) {
  const Handle h = next_seq_++;
  heap_.push(Entry{t, h});
  live_.emplace(h, std::move(fn));
  return h;
}

bool EventQueue::cancel(Handle h) { return live_.erase(h) > 0; }

void EventQueue::skip_dead() {
  while (!heap_.empty() && live_.find(heap_.top().seq) == live_.end()) {
    heap_.pop();
  }
}

SimTime EventQueue::next_time() {
  skip_dead();
  assert(!heap_.empty());
  return heap_.top().time;
}

std::pair<SimTime, EventFn> EventQueue::pop() {
  skip_dead();
  assert(!heap_.empty());
  const Entry top = heap_.top();
  heap_.pop();
  auto it = live_.find(top.seq);
  assert(it != live_.end());
  EventFn fn = std::move(it->second);
  live_.erase(it);
  return {top.time, std::move(fn)};
}

}  // namespace dpjit::sim
