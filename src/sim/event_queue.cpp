#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace dpjit::sim {

EventQueue::Handle EventQueue::schedule(SimTime t, EventFn fn) {
  std::uint32_t slot;
  if (free_head_ != kNpos) {
    slot = free_head_;
    free_head_ = slots_[slot].next_free;
  } else {
    if (slots_.size() > kSlotMask) {
      throw std::length_error("EventQueue: more than 2^24 concurrently pending events");
    }
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
    pos_.emplace_back(kNpos);
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.next_free = kNpos;
  heap_.emplace_back();  // grow; sift_up fills the hole bottom-up
  sift_up(heap_.size() - 1, HeapEntry{encode_time(t), next_seq_++, slot});
  return ((s.generation & kGenMask) << kSlotBits) | slot;
}

bool EventQueue::cancel(Handle h) {
  const auto slot = static_cast<std::uint32_t>(h & kSlotMask);
  const std::uint64_t generation = h >> kSlotBits;
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if ((s.generation & kGenMask) != generation || pos_[slot] == kNpos) return false;
  heap_erase(pos_[slot]);
  s.fn = nullptr;
  release_slot(slot);
  return true;
}

std::pair<SimTime, EventFn> EventQueue::pop() {
  assert(!heap_.empty());
  const HeapEntry root = heap_.front();
  Slot& s = slots_[root.slot];
  EventFn fn = std::move(s.fn);
  heap_erase(0);
  release_slot(root.slot);
  return {decode_time(root.tkey), std::move(fn)};
}

void EventQueue::reserve(std::size_t n) {
  slots_.reserve(n);
  pos_.reserve(n);
  heap_.reserve(n);
}

void EventQueue::sift_up(std::size_t pos, HeapEntry e) {
  HeapEntry* h = heap_.data();
  std::uint32_t* pos_of = pos_.data();
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 4;
    if (!before(e, h[parent])) break;
    h[pos] = h[parent];
    pos_of[h[pos].slot] = static_cast<std::uint32_t>(pos);
    pos = parent;
  }
  h[pos] = e;
  pos_of[e.slot] = static_cast<std::uint32_t>(pos);
}

std::size_t EventQueue::min_child(const HeapEntry* h, std::size_t c, std::size_t n) {
  if (c + 4 <= n) {
    // Tournament select: the two semifinal compares are independent, which
    // keeps the (branchless) compares off the critical path.
    const std::size_t b01 = before(h[c + 1], h[c]) ? c + 1 : c;
    const std::size_t b23 = before(h[c + 3], h[c + 2]) ? c + 3 : c + 2;
    return before(h[b23], h[b01]) ? b23 : b01;
  }
  std::size_t best = c;
  for (std::size_t i = c + 1; i < n; ++i) {
    if (before(h[i], h[best])) best = i;
  }
  return best;
}

void EventQueue::sift_down(std::size_t pos, HeapEntry e) {
  HeapEntry* h = heap_.data();
  std::uint32_t* pos_of = pos_.data();
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t c = 4 * pos + 1;
    if (c >= n) break;
    const std::size_t best = min_child(h, c, n);
    if (!before(h[best], e)) break;
    h[pos] = h[best];
    pos_of[h[pos].slot] = static_cast<std::uint32_t>(pos);
    pos = best;
  }
  h[pos] = e;
  pos_of[e.slot] = static_cast<std::uint32_t>(pos);
}

void EventQueue::heap_erase(std::size_t pos) {
  const std::size_t last = heap_.size() - 1;
  if (pos == last) {
    heap_.pop_back();
    return;
  }
  const HeapEntry moved = heap_[last];
  heap_.pop_back();
  if (pos == 0) {
    // Bottom-up deletion (Wegener): the replacement comes from the heap
    // bottom, so walk the min-child path all the way to a leaf without
    // comparing against `moved` (it almost always belongs there), then sift
    // it up - usually zero or one step. Saves a compare per level on the
    // hottest path (pop).
    HeapEntry* h = heap_.data();
    std::uint32_t* pos_of = pos_.data();
    const std::size_t n = heap_.size();
    std::size_t hole = 0;
    for (;;) {
      const std::size_t c = 4 * hole + 1;
      if (c >= n) break;
      const std::size_t best = min_child(h, c, n);
      h[hole] = h[best];
      pos_of[h[hole].slot] = static_cast<std::uint32_t>(hole);
      hole = best;
    }
    sift_up(hole, moved);
    return;
  }
  // The moved-in element may need to go either way relative to `pos`.
  if (before(moved, heap_[(pos - 1) / 4])) {
    sift_up(pos, moved);
  } else {
    sift_down(pos, moved);
  }
}

void EventQueue::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  pos_[slot] = kNpos;
  ++s.generation;  // outstanding handles to this slot are now stale
  // Skip generations whose packed bits are zero: a (gen=0, slot=0) handle
  // would collide with kInvalidHandle.
  if ((s.generation & kGenMask) == 0) ++s.generation;
  s.next_free = free_head_;
  free_head_ = slot;
}

}  // namespace dpjit::sim
