#include "sim/engine.hpp"

#include <stdexcept>

namespace dpjit::sim {

EventQueue::Handle Engine::schedule_at(SimTime t, EventFn fn) {
  if (t < now_) throw std::logic_error("Engine::schedule_at: time is in the past");
  return queue_.schedule(t, std::move(fn));
}

EventQueue::Handle Engine::schedule_in(double delay, EventFn fn) {
  if (delay < 0.0) throw std::logic_error("Engine::schedule_in: negative delay");
  return queue_.schedule(now_ + delay, std::move(fn));
}

bool Engine::cancel(EventQueue::Handle h) { return queue_.cancel(h); }

bool Engine::step() {
  if (queue_.empty()) return false;
  auto [t, fn] = queue_.pop();
  now_ = t;
  ++processed_;
  fn();
  return true;
}

void Engine::run_until(SimTime end) {
  stop_requested_ = false;
  while (!queue_.empty() && !stop_requested_) {
    if (queue_.next_time() > end) break;
    step();
  }
  if (now_ < end && !stop_requested_) now_ = end;
}

void Engine::run_all() {
  stop_requested_ = false;
  while (!stop_requested_ && step()) {
  }
}

}  // namespace dpjit::sim
