#include "sim/periodic.hpp"

#include <stdexcept>

namespace dpjit::sim {

PeriodicProcess::PeriodicProcess(Engine& engine, SimTime start, double interval, CycleFn fn)
    : engine_(engine), start_(start), interval_(interval), fn_(std::move(fn)) {
  if (interval <= 0.0) throw std::invalid_argument("PeriodicProcess: interval must be > 0");
}

PeriodicProcess::~PeriodicProcess() { stop(); }

void PeriodicProcess::start() {
  if (running_) return;
  running_ = true;
  arm(std::max(start_, engine_.now()));
}

void PeriodicProcess::stop() {
  if (!running_) return;
  running_ = false;
  engine_.cancel(pending_);
  pending_ = EventQueue::kInvalidHandle;
}

void PeriodicProcess::arm(SimTime t) {
  pending_ = engine_.schedule_at(t, [this] {
    const std::uint64_t c = cycle_++;
    // Re-arm before invoking so the callback may stop() us.
    arm(engine_.now() + interval_);
    fn_(c);
  });
}

}  // namespace dpjit::sim
