// Periodic process helper: Peersim-style cycle-driven protocols (gossip
// rounds, scheduling intervals, churn steps) on top of the event engine.
#pragma once

#include "sim/engine.hpp"

namespace dpjit::sim {

/// Invokes a callback every `interval` seconds starting at `start`.
/// The callback receives the cycle index (0, 1, 2, ...). Stop via stop() or by
/// destroying the process; destruction cancels the pending event.
class PeriodicProcess {
 public:
  using CycleFn = InlineFunction<void(std::uint64_t cycle)>;

  /// Does not start until start() is called.
  PeriodicProcess(Engine& engine, SimTime start, double interval, CycleFn fn);
  ~PeriodicProcess();

  PeriodicProcess(const PeriodicProcess&) = delete;
  PeriodicProcess& operator=(const PeriodicProcess&) = delete;

  /// Schedules the first cycle. Idempotent.
  void start();

  /// Cancels future cycles. Idempotent.
  void stop();

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] std::uint64_t cycles_run() const { return cycle_; }

 private:
  void arm(SimTime t);

  Engine& engine_;
  SimTime start_;
  double interval_;
  CycleFn fn_;
  std::uint64_t cycle_ = 0;
  EventQueue::Handle pending_ = EventQueue::kInvalidHandle;
  bool running_ = false;
};

}  // namespace dpjit::sim
