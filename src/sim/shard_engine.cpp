#include "sim/shard_engine.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cmath>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/parallel.hpp"

namespace dpjit::sim {

ShardEngine::ShardEngine(int shards, double window_s) : window_(window_s) {
  if (shards < 1) throw std::invalid_argument("ShardEngine: shards must be >= 1");
  if (!(window_s > 0.0) || !std::isfinite(window_s)) {
    throw std::invalid_argument("ShardEngine: window must be positive and finite (got " +
                                std::to_string(window_s) + ")");
  }
  shards_.resize(static_cast<std::size_t>(shards));
}

std::size_t ShardEngine::idx(int shard) const {
  if (shard < 0 || static_cast<std::size_t>(shard) >= shards_.size()) {
    throw std::out_of_range("ShardEngine: shard " + std::to_string(shard) + " out of range [0, " +
                            std::to_string(shards_.size()) + ")");
  }
  return static_cast<std::size_t>(shard);
}

void ShardEngine::seed(int to_shard, SimTime t, std::uint64_t key, EventFn fn) {
  if (running_) throw std::logic_error("ShardEngine::seed: engine already running (use post)");
  if (t < 0.0) throw std::logic_error("ShardEngine::seed: negative time");
  pending_.push_back(Message{t, key, static_cast<std::uint32_t>(idx(to_shard)), std::move(fn)});
}

void ShardEngine::post(int from_shard, int to_shard, SimTime t, std::uint64_t key, EventFn fn) {
  Shard& from = shards_[idx(from_shard)];
  // Conservative-lookahead guarantee: the message may not land inside the
  // window the sender is executing in (floating-point addition is monotonic,
  // so delay >= window implies now + delay >= now + window >= window end).
  if (t < from.now + window_) {
    throw std::logic_error("ShardEngine::post: message at t=" + std::to_string(t) +
                           " violates lookahead (sender now=" + std::to_string(from.now) +
                           ", window=" + std::to_string(window_) + ")");
  }
  from.outbox.push_back(Message{t, key, static_cast<std::uint32_t>(idx(to_shard)), std::move(fn)});
}

void ShardEngine::drive_shard(Shard& shard, SimTime window_end, SimTime end) {
  EventQueue& q = shard.queue;
  while (!q.empty()) {
    const SimTime t = q.next_time();
    if (t >= window_end || t > end) break;
    auto [time, fn] = q.pop();
    shard.now = time;
    ++shard.processed;
    fn();
  }
}

void ShardEngine::drain_messages() {
  for (Shard& shard : shards_) {
    pending_.insert(pending_.end(), std::make_move_iterator(shard.outbox.begin()),
                    std::make_move_iterator(shard.outbox.end()));
    shard.outbox.clear();
  }
  if (pending_.empty()) return;
  // One global (time, key) sort: every receiver sees the same relative
  // delivery order no matter which shard (or thread) produced a message.
  // stable_sort keeps the concatenation order as a last resort for duplicate
  // keys, but the determinism contract requires keys to be unique.
  std::stable_sort(pending_.begin(), pending_.end(), [](const Message& a, const Message& b) {
    return a.t != b.t ? a.t < b.t : a.key < b.key;
  });
  for (Message& m : pending_) {
    shards_[m.to].queue.schedule(m.t, std::move(m.fn));
  }
  pending_.clear();
}

void ShardEngine::run_until(SimTime end) {
  running_ = true;
  drain_messages();  // seeds (and any carry-over from a previous run_until)

  // Persistent window pool. A conservative run executes up to millions of
  // windows, so spawning threads per window (util::parallel_for_blocks costs
  // tens of microseconds per call in thread start-up alone) would dwarf the
  // window payloads — measured 50x slower than serial on the 10^5-peer scale
  // scenario. Instead, workers 1..W-1 live for the whole run and every
  // parallel window is a two-barrier handoff: the coordinator publishes the
  // window bound, `start` releases the workers onto their fixed shard blocks,
  // `finish` hands the shards back before the message drain. Sub-threshold
  // windows never touch the barriers; the workers just stay parked in
  // `start.arrive_and_wait`.
  const std::size_t shard_count = shards_.size();
  const int workers =
      shard_count > 1 ? util::resolve_threads(threads_, shard_count) : 1;

  SimTime window_end = 0.0;        // published by the coordinator before `start`
  std::atomic<bool> quit{false};   // checked by workers right after `start`
  std::barrier<> start(workers);
  std::barrier<> finish(workers);
  std::mutex error_mutex;
  std::exception_ptr error;

  // Worker w's fixed block of shards; the coordinator is worker 0.
  auto drive_block = [&](int w, SimTime bound) {
    const std::size_t begin = shard_count * static_cast<std::size_t>(w) /
                              static_cast<std::size_t>(workers);
    const std::size_t stop = shard_count * static_cast<std::size_t>(w + 1) /
                             static_cast<std::size_t>(workers);
    try {
      for (std::size_t s = begin; s < stop; ++s) drive_shard(shards_[s], bound, end);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!error) error = std::current_exception();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers > 1 ? static_cast<std::size_t>(workers - 1) : 0);
  for (int w = 1; w < workers; ++w) {
    pool.emplace_back([&, w] {
      for (;;) {
        start.arrive_and_wait();
        if (quit.load(std::memory_order_relaxed)) return;
        drive_block(w, window_end);
        finish.arrive_and_wait();
      }
    });
  }
  auto shutdown_pool = [&] {
    if (pool.empty()) return;
    quit.store(true, std::memory_order_relaxed);
    start.arrive_and_wait();
    for (std::thread& t : pool) t.join();
    pool.clear();
  };

  // Events executed in the previous window: the parallel gate. Per-window
  // executed counts are invariant to the shard count and thread count (the
  // window sequence is), so whether a window runs parallel never feeds back
  // into results — it is pure wall-clock policy.
  std::uint64_t executed_last = 0;
  try {
    for (;;) {
      // T = earliest pending event anywhere; the window [T, T + L) depends
      // only on event times, never on the shard layout.
      SimTime t_min = kInf;
      std::size_t total_pending = 0;
      for (const Shard& shard : shards_) {
        if (!shard.queue.empty()) t_min = std::min(t_min, shard.queue.next_time());
        total_pending += shard.queue.size();
      }
      if (t_min > end || total_pending == 0) break;
      window_end = t_min + window_;

      const std::uint64_t executed_before = processed();
      if (!pool.empty() && executed_last >= parallel_threshold_) {
        ++parallel_windows_;
        start.arrive_and_wait();
        drive_block(0, window_end);
        finish.arrive_and_wait();
        if (error) break;
      } else {
        for (Shard& shard : shards_) drive_shard(shard, window_end, end);
      }
      ++windows_;
      executed_last = processed() - executed_before;
      drain_messages();
    }
  } catch (...) {
    // An event or the drain threw on the coordinator (e.g. a lookahead
    // violation in a handler): park the workers before propagating, or the
    // std::thread destructors would terminate().
    shutdown_pool();
    throw;
  }
  shutdown_pool();
  if (error) std::rethrow_exception(error);

  for (Shard& shard : shards_) shard.now = std::max(shard.now, end);
}

bool ShardEngine::idle() const {
  if (!pending_.empty()) return false;
  for (const Shard& shard : shards_) {
    if (!shard.queue.empty() || !shard.outbox.empty()) return false;
  }
  return true;
}

std::uint64_t ShardEngine::processed() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) total += shard.processed;
  return total;
}

std::size_t ShardEngine::pending() const {
  std::size_t total = pending_.size();
  for (const Shard& shard : shards_) total += shard.queue.size() + shard.outbox.size();
  return total;
}

}  // namespace dpjit::sim
