#include "sim/fault_plan.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dpjit::sim {

FaultPlan::FaultPlan(Engine& engine, FaultParams params, int node_count, int link_count,
                     util::Rng rng)
    : engine_(engine), params_(params), nodes_(node_count), links_(link_count), rng_(rng) {
  if (node_count < 0 || link_count < 0) {
    throw std::invalid_argument("FaultPlan: negative node/link count");
  }
  link_down_.assign(static_cast<std::size_t>(links_), 0);
  node_down_.assign(static_cast<std::size_t>(nodes_), 0);
}

void FaultPlan::set_link_handlers(LinkFn on_down, LinkFn on_up) {
  on_link_down_ = std::move(on_down);
  on_link_up_ = std::move(on_up);
}

void FaultPlan::set_node_handlers(NodeFn on_crash, NodeFn on_restart) {
  on_crash_ = std::move(on_crash);
  on_restart_ = std::move(on_restart);
}

void FaultPlan::start() {
  // Wave processes exist only when their category is actually configured: a
  // zero-probability plan must add zero events to the run (the digest covers
  // events_processed, so even a no-op tick would break neutrality).
  if (params_.link_faults() && links_ > 0) {
    link_waves_ = std::make_unique<PeriodicProcess>(
        engine_, params_.link_first_wave_s, params_.link_wave_period_s,
        [this](std::uint64_t) { link_wave(); });
    link_waves_->start();
  }
  if (params_.crash_faults() && nodes_ > 0) {
    crash_waves_ = std::make_unique<PeriodicProcess>(engine_, params_.crash_first_s,
                                                     params_.crash_period_s,
                                                     [this](std::uint64_t) { crash_wave(); });
    crash_waves_->start();
  }
}

void FaultPlan::stop() {
  if (link_waves_) link_waves_->stop();
  if (crash_waves_) crash_waves_->stop();
}

MessageFate FaultPlan::draw_message_fate() {
  MessageFate fate;
  if (!params_.message_faults()) return fate;  // consume nothing when idle
  if (params_.msg_loss_p > 0.0 && rng_.bernoulli(params_.msg_loss_p)) {
    fate.lost = true;
    ++messages_lost_;
    return fate;
  }
  if (params_.msg_dup_p > 0.0 && rng_.bernoulli(params_.msg_dup_p)) {
    fate.copies = 2;
    ++messages_duplicated_;
  }
  if (params_.msg_delay_p > 0.0 && params_.msg_delay_max_s > 0.0 &&
      rng_.bernoulli(params_.msg_delay_p)) {
    fate.extra_delay_s = rng_.uniform(0.0, params_.msg_delay_max_s);
    ++messages_delayed_;
  }
  return fate;
}

void FaultPlan::link_wave() {
  // Candidates: links the plan itself still considers up, in ascending id so
  // the sample (and every handler invocation) is order-deterministic.
  std::vector<int> up;
  up.reserve(static_cast<std::size_t>(links_));
  for (int l = 0; l < links_; ++l) {
    if (link_down_[static_cast<std::size_t>(l)] == 0) up.push_back(l);
  }
  if (up.empty()) return;
  const auto want = static_cast<std::size_t>(
      std::floor(params_.link_fail_fraction * static_cast<double>(up.size())));
  const std::size_t count = std::clamp<std::size_t>(std::max<std::size_t>(want, 1), 1, up.size());
  auto picked = rng_.sample_indices(up.size(), count);
  std::sort(picked.begin(), picked.end());
  for (const std::size_t i : picked) {
    const LinkId link{up[i]};
    link_down_[static_cast<std::size_t>(link.get())] = 1;
    ++link_failures_;
    if (on_link_down_) on_link_down_(link);
    const bool permanent = params_.link_permanent_p > 0.0 && rng_.bernoulli(params_.link_permanent_p);
    if (!permanent && params_.link_downtime_s > 0.0) {
      engine_.schedule_in(params_.link_downtime_s, [this, link] {
        link_down_[static_cast<std::size_t>(link.get())] = 0;
        ++link_recoveries_;
        if (on_link_up_) on_link_up_(link);
      });
    }
  }
}

void FaultPlan::crash_wave() {
  const int exempt = static_cast<int>(
      std::ceil(params_.crash_exempt_fraction * static_cast<double>(nodes_)));
  std::vector<int> eligible;
  eligible.reserve(static_cast<std::size_t>(nodes_));
  for (int n = exempt; n < nodes_; ++n) {
    if (node_down_[static_cast<std::size_t>(n)] == 0) eligible.push_back(n);
  }
  if (eligible.empty()) return;
  const auto want = static_cast<std::size_t>(
      std::floor(params_.crash_fraction * static_cast<double>(eligible.size())));
  const std::size_t count =
      std::clamp<std::size_t>(std::max<std::size_t>(want, 1), 1, eligible.size());
  auto picked = rng_.sample_indices(eligible.size(), count);
  std::sort(picked.begin(), picked.end());
  for (const std::size_t i : picked) {
    const NodeId node{eligible[i]};
    node_down_[static_cast<std::size_t>(node.get())] = 1;
    ++node_crashes_;
    if (on_crash_) on_crash_(node);
    if (params_.crash_restart_s > 0.0) {
      engine_.schedule_in(params_.crash_restart_s, [this, node] {
        node_down_[static_cast<std::size_t>(node.get())] = 0;
        ++node_restarts_;
        if (on_restart_) on_restart_(node);
      });
    }
  }
}

}  // namespace dpjit::sim
