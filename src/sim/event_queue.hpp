// Pending-event set for the discrete-event engine.
//
// Events are (time, sequence) ordered: ties on time are broken by insertion
// order, which makes runs bit-reproducible. Cancellation is O(1) lazy
// removal (the heap entry is skipped on pop).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/types.hpp"

namespace dpjit::sim {

/// Callback executed when an event fires.
using EventFn = std::function<void()>;

class EventQueue {
 public:
  /// Opaque handle for cancellation.
  using Handle = std::uint64_t;

  /// Schedules `fn` at absolute time `t`. Returns a cancellation handle.
  Handle schedule(SimTime t, EventFn fn);

  /// Cancels a pending event. Returns false if it already fired/was cancelled.
  bool cancel(Handle h);

  /// True when no live events remain.
  [[nodiscard]] bool empty() const { return live_.empty(); }

  /// Number of live (not cancelled) events.
  [[nodiscard]] std::size_t size() const { return live_.size(); }

  /// Time of the earliest live event. Requires !empty().
  [[nodiscard]] SimTime next_time();

  /// Pops and returns the earliest live event. Requires !empty().
  std::pair<SimTime, EventFn> pop();

 private:
  struct Entry {
    SimTime time;
    Handle seq;
    bool operator>(const Entry& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  /// Drops cancelled entries from the heap top.
  void skip_dead();

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_map<Handle, EventFn> live_;
  Handle next_seq_ = 0;
};

}  // namespace dpjit::sim
