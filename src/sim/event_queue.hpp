// Pending-event set for the discrete-event engine.
//
// Events are (time, sequence) ordered: ties on time are broken by insertion
// order, which makes runs bit-reproducible. Storage is a slab of event slots
// (free-list reuse, generation-counted handles) indexed by a 4-ary heap, so
// schedule/pop/cancel never hash and cancellation is true O(log n) removal:
// a cancelled event leaves no tombstone behind and its callback is destroyed
// immediately. A handle from a freed slot is rejected by the generation
// check, so double-cancel and cancel-after-fire are safe no-ops.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/inline_fn.hpp"
#include "util/types.hpp"

namespace dpjit::sim {

/// Callback executed when an event fires.
using EventFn = InlineFn;

class EventQueue {
 public:
  /// Opaque handle for cancellation. Packs (generation << 24 | slot index):
  /// 24 bits bound the slab at ~16M *concurrently pending* events, leaving
  /// 40 generation bits per slot. The steady pop-then-schedule pattern
  /// funnels nearly every event through one hot slot, so generation width is
  /// what defends long runs against ABA on stale handles: 2^40 reuses of a
  /// single slot (~2 weeks of continuous events at 1M events/s) before a
  /// wrap, vs ~80 minutes had it been 32-bit. Generations whose packed bits
  /// are zero are skipped, so no valid handle ever equals kInvalidHandle.
  using Handle = std::uint64_t;

  /// Never returned by schedule(); cancel(kInvalidHandle) is a safe no-op.
  static constexpr Handle kInvalidHandle = 0;

  /// Schedules `fn` at absolute time `t`. Returns a cancellation handle.
  Handle schedule(SimTime t, EventFn fn);

  /// Cancels a pending event, destroying its callback and freeing its slot.
  /// Returns false if it already fired/was cancelled (stale generation).
  bool cancel(Handle h);

  /// True when no live events remain.
  [[nodiscard]] bool empty() const { return heap_.empty(); }

  /// Number of live (not cancelled) events.
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Time of the earliest live event. Requires !empty().
  [[nodiscard]] SimTime next_time() const {
    assert(!heap_.empty());
    return decode_time(heap_.front().tkey);
  }

  /// Pops and returns the earliest live event. Requires !empty().
  std::pair<SimTime, EventFn> pop();

  /// Pre-sizes the slab and heap for `n` concurrently pending events.
  void reserve(std::size_t n);

  /// Number of slots ever allocated (bounded by the peak pending count, not
  /// by the number of schedule/cancel operations - there are no tombstones).
  [[nodiscard]] std::size_t slot_capacity() const { return slots_.size(); }

  /// Reserved (pre-allocated) slab capacity; allocation introspection only.
  [[nodiscard]] std::size_t reserved_capacity() const { return slots_.capacity(); }

 private:
  static constexpr std::uint32_t kNpos = 0xffffffffU;

  /// Callback + handle bookkeeping; the (time, seq) sort key lives in the
  /// heap entries so comparisons stay on the contiguous heap array and never
  /// chase into the slab. The slot's heap position lives in the separate
  /// dense pos_ array: sift operations store a position per level, and those
  /// stores should land in a few cache lines, not across the 80-byte slots.
  static constexpr int kSlotBits = 24;
  static constexpr std::uint32_t kSlotMask = (1U << kSlotBits) - 1;
  static constexpr std::uint64_t kGenMask = (std::uint64_t{1} << 40) - 1;

  struct Slot {
    EventFn fn;
    std::uint64_t generation = 1;
    std::uint32_t next_free = kNpos;  ///< free-list link
  };

  struct HeapEntry {
    std::uint64_t tkey;  ///< order-preserving integer encoding of the time
    std::uint64_t seq;   ///< insertion order, breaks ties on equal time
    std::uint32_t slot;
  };

  /// Maps a double to an integer with the same ordering (IEEE total-order
  /// trick: flip all bits of negatives, flip the sign bit of non-negatives).
  /// -0.0 is normalized to +0.0 first so key equality matches `==` on
  /// doubles, which keeps the FIFO tie-break exactly as before.
  [[nodiscard]] static std::uint64_t encode_time(SimTime t) {
    const auto k = std::bit_cast<std::uint64_t>(t + 0.0);
    constexpr std::uint64_t kSign = 0x8000000000000000ULL;
    return k ^ ((k & kSign) != 0 ? ~std::uint64_t{0} : kSign);
  }
  [[nodiscard]] static SimTime decode_time(std::uint64_t k) {
    constexpr std::uint64_t kSign = 0x8000000000000000ULL;
    return std::bit_cast<SimTime>(k ^ ((k & kSign) != 0 ? kSign : ~std::uint64_t{0}));
  }

  /// Branchless (time, seq) lexicographic order: pop sifts the heap with
  /// effectively random keys, and mispredicted compare branches dominate its
  /// cost otherwise.
  [[nodiscard]] static bool before(const HeapEntry& a, const HeapEntry& b) {
    return static_cast<bool>(
        static_cast<unsigned>(a.tkey < b.tkey) |
        (static_cast<unsigned>(a.tkey == b.tkey) & static_cast<unsigned>(a.seq < b.seq)));
  }

  /// Index of the smallest child of the node whose first child is `c`.
  /// Requires c < n.
  [[nodiscard]] static std::size_t min_child(const HeapEntry* h, std::size_t c, std::size_t n);

  /// Places `e` at `pos`, sifting up/down as needed; updates heap_pos links.
  void sift_up(std::size_t pos, HeapEntry e);
  void sift_down(std::size_t pos, HeapEntry e);
  /// Removes the heap entry at `pos` (swap-with-last + re-sift).
  void heap_erase(std::size_t pos);
  /// Returns the slot to the free list and invalidates outstanding handles.
  void release_slot(std::uint32_t slot);

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> pos_;  ///< slot -> heap index; kNpos while free
  std::vector<HeapEntry> heap_;     ///< 4-ary min-heap keyed by (time, seq)
  std::uint32_t free_head_ = kNpos;
  std::uint64_t next_seq_ = 0;
};

}  // namespace dpjit::sim
