// Sharded conservative time-window PDES engine (ROADMAP item 1).
//
// Partitions a simulation into S logical shards, each owning one
// sim::EventQueue and a local clock. Execution proceeds in conservative time
// windows: with every inter-shard interaction delayed by at least the window
// length L (the lookahead), all events in [T, T + L) are causally independent
// across shards and the per-window shard drives can run concurrently on a
// pool of persistent worker threads (spawned once per run_until; windows are
// far too numerous and too small to amortise per-window thread spawns). One
// shard is the serial special case: the same window loop with no threading.
//
// Determinism contract (the PR 2 pattern, extended across threads):
//   - Within a shard, events run in (time, insertion) order exactly like the
//     serial sim::Engine.
//   - ALL messages — cross-shard and shard-local alike — are buffered in the
//     sending shard's private outbox and delivered at the next window barrier
//     in one globally sorted (time, key) pass. Because the window sequence
//     depends only on event times (never on the shard count), the delivery
//     batches, and therefore every receiver's event order, are byte-identical
//     for ANY shard count and ANY worker-thread count, provided keys are
//     globally unique (see post()).
//   - Worker threads touch disjoint per-shard state only (queue, clock,
//     outbox, counters); the barrier drain runs on the calling thread.
//
// A posted message must arrive no earlier than the sender's local time plus
// the window (checked): that is the conservative-lookahead guarantee that no
// shard ever receives a message into its past.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event_queue.hpp"

namespace dpjit::sim {

class ShardEngine {
 public:
  /// Creates `shards` >= 1 shards driven in windows of `window_s` > 0 seconds
  /// of simulated time. `window_s` must not exceed the minimum inter-shard
  /// message latency (the lookahead; see core::compute_shard_map) or post()
  /// will reject the offending message. Throws std::invalid_argument on a
  /// non-positive/non-finite window or shards < 1.
  ShardEngine(int shards, double window_s);

  ShardEngine(const ShardEngine&) = delete;
  ShardEngine& operator=(const ShardEngine&) = delete;

  [[nodiscard]] int shards() const { return static_cast<int>(shards_.size()); }
  [[nodiscard]] double window_s() const { return window_; }

  /// Shard-local clock: the time of the shard's current/last executed event,
  /// or the end of the last completed run_until.
  [[nodiscard]] SimTime now(int shard) const { return shards_[idx(shard)].now; }

  /// Schedules an initial event before the first window (t >= 0, any shard).
  /// Seeds flow through the same sorted delivery path as posted messages, so
  /// initial-condition order is governed by (t, key), not call order.
  void seed(int to_shard, SimTime t, std::uint64_t key, EventFn fn);

  /// Posts a message from within an executing event on `from_shard` to fire
  /// on `to_shard` at absolute time `t`. Requires t >= now(from_shard) +
  /// window (throws std::logic_error otherwise: a conservative-lookahead
  /// violation). `key` orders messages that share an arrival time; it must be
  /// globally unique per message (e.g. sender id << 24 | per-sender counter)
  /// for the cross-shard-count determinism guarantee to hold.
  void post(int from_shard, int to_shard, SimTime t, std::uint64_t key, EventFn fn);

  /// Runs windows until every queue is past `end` or drained. Events at
  /// exactly `end` still run; afterwards every shard clock reads `end`.
  void run_until(SimTime end);

  /// True when no pending events or undelivered messages remain.
  [[nodiscard]] bool idle() const;

  /// Worker threads for the window drive (<= 0 = hardware concurrency).
  /// Purely a wall-clock knob: results are byte-identical at any setting.
  void set_threads(int threads) { threads_ = threads; }

  /// Minimum events executed in the PREVIOUS window before the next window is
  /// driven on the worker pool; sparser windows run inline (the two-barrier
  /// handoff would cost more than the payload). Deterministic gate: per-window
  /// executed counts do not depend on the shard or thread count.
  void set_parallel_threshold(std::size_t events) { parallel_threshold_ = events; }

  /// Total events executed across all shards.
  [[nodiscard]] std::uint64_t processed() const;

  /// Pending (scheduled, not yet executed) events across all shards.
  [[nodiscard]] std::size_t pending() const;

  /// Windows executed so far, and how many of them ran on the thread pool.
  [[nodiscard]] std::uint64_t windows() const { return windows_; }
  [[nodiscard]] std::uint64_t parallel_windows() const { return parallel_windows_; }

 private:
  struct Message {
    SimTime t = 0.0;
    std::uint64_t key = 0;
    std::uint32_t to = 0;
    EventFn fn;
  };

  struct Shard {
    EventQueue queue;
    SimTime now = 0.0;
    std::uint64_t processed = 0;
    /// Messages sent by this shard during the current window; only ever
    /// touched by the worker driving the shard (no locks needed).
    std::vector<Message> outbox;
  };

  [[nodiscard]] std::size_t idx(int shard) const;

  /// Executes every event of one shard with time < window_end and <= end.
  void drive_shard(Shard& shard, SimTime window_end, SimTime end);

  /// Moves all outbox + seed messages into their destination queues in one
  /// globally sorted (time, key) pass.
  void drain_messages();

  std::vector<Shard> shards_;
  std::vector<Message> pending_;  ///< seeds + scratch for the sorted drain
  double window_ = 0.0;
  int threads_ = 0;
  std::size_t parallel_threshold_ = 2048;
  std::uint64_t windows_ = 0;
  std::uint64_t parallel_windows_ = 0;
  bool running_ = false;
};

}  // namespace dpjit::sim
