#include "sim/trace.hpp"

#include <cstdio>

namespace dpjit::sim {

void Trace::record(SimTime time, TraceKind kind, NodeId node, TaskRef task, std::string note) {
  if (!enabled_) return;
  records_.push_back(TraceRecord{time, kind, node, task, std::move(note)});
}

std::size_t Trace::count(TraceKind kind) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.kind == kind) ++n;
  }
  return n;
}

void Trace::print(std::ostream& os) const {
  char buf[64];
  for (const auto& r : records_) {
    std::snprintf(buf, sizeof(buf), "%12.2f", r.time);
    os << buf << "  " << trace_kind_name(r.kind) << "  node=" << r.node;
    if (r.task.workflow.valid()) os << "  " << r.task;
    if (!r.note.empty()) os << "  " << r.note;
    os << '\n';
  }
}

const char* trace_kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kDispatch: return "DISPATCH";
    case TraceKind::kTransferStart: return "XFER_START";
    case TraceKind::kTransferEnd: return "XFER_END";
    case TraceKind::kExecStart: return "EXEC_START";
    case TraceKind::kExecEnd: return "EXEC_END";
    case TraceKind::kWorkflowDone: return "WF_DONE";
    case TraceKind::kNodeJoin: return "JOIN";
    case TraceKind::kNodeLeave: return "LEAVE";
    case TraceKind::kTaskFailed: return "TASK_FAIL";
    case TraceKind::kReschedule: return "RESCHED";
    case TraceKind::kReoffer: return "REOFFER";
    case TraceKind::kGossip: return "GOSSIP";
    case TraceKind::kLinkDown: return "LINK_DOWN";
    case TraceKind::kLinkUp: return "LINK_UP";
  }
  return "?";
}

}  // namespace dpjit::sim
