// Deterministic fault injection (ROADMAP item 5).
//
// A FaultPlan is a seeded schedule of failures layered over an otherwise
// idealized run: per-message loss/duplication/extra-delay draws for the
// message-level gossip mode, periodic link failure/recovery waves, and
// periodic node crash/restart waves. Everything is driven by a private
// util::Rng stream forked from the experiment seed and delivered as ordinary
// timestamped events, so a faulty run is exactly as reproducible as a clean
// one (same seed + config => byte-identical digests).
//
// Neutrality invariant: a plan whose every probability/period is zero
// schedules NO events and consumes NO randomness. The result digest covers
// `events_processed`, so this is what makes an attached-but-idle plan
// provably result-neutral (tests/scenario/fault_differential_test.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/periodic.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace dpjit::sim {

/// Knobs of the fault model. All-zero defaults mean "no faults".
struct FaultParams {
  // --- message-level faults (consumed by the gossip layer) -----------------
  /// Probability an individual protocol message is silently lost.
  double msg_loss_p = 0.0;
  /// Probability a message is delivered twice (UDP-style duplication).
  double msg_dup_p = 0.0;
  /// Probability a message suffers extra queueing delay...
  double msg_delay_p = 0.0;
  /// ...drawn uniformly from [0, msg_delay_max_s].
  double msg_delay_max_s = 0.0;

  // --- link failure/recovery waves -----------------------------------------
  /// Period between link-failure waves; 0 disables them.
  double link_wave_period_s = 0.0;
  /// Time of the first wave.
  double link_first_wave_s = 1800.0;
  /// Fraction of currently-up links failed per wave (floor, at least 1 when
  /// > 0 and any link is up).
  double link_fail_fraction = 0.0;
  /// Downtime before a failed link recovers.
  double link_downtime_s = 600.0;
  /// Probability a failure is permanent (no recovery scheduled).
  double link_permanent_p = 0.0;

  // --- node crash/restart waves --------------------------------------------
  /// Period between crash waves; 0 disables them.
  double crash_period_s = 0.0;
  /// Time of the first crash wave.
  double crash_first_s = 3600.0;
  /// Fraction of eligible up nodes crashed per wave.
  double crash_fraction = 0.0;
  /// Downtime before a crashed node restarts; <= 0 means crashes are
  /// permanent.
  double crash_restart_s = 1800.0;
  /// Nodes [0, ceil(fraction * n)) are exempt from crashes - the stable/home
  /// prefix of the id space (homes strand their workflows if crashed).
  double crash_exempt_fraction = 0.0;

  /// Test-only: attach the plan machinery even when every knob is zero (the
  /// differential neutrality test proves this changes nothing).
  bool force_attach = false;

  [[nodiscard]] bool message_faults() const {
    return msg_loss_p > 0.0 || msg_dup_p > 0.0 || (msg_delay_p > 0.0 && msg_delay_max_s > 0.0);
  }
  [[nodiscard]] bool link_faults() const {
    return link_wave_period_s > 0.0 && link_fail_fraction > 0.0;
  }
  [[nodiscard]] bool crash_faults() const {
    return crash_period_s > 0.0 && crash_fraction > 0.0;
  }
  [[nodiscard]] bool enabled() const {
    return message_faults() || link_faults() || crash_faults() || force_attach;
  }
};

/// Outcome of one per-message fault draw.
struct MessageFate {
  bool lost = false;
  /// Delivery count when not lost (2 = duplicated).
  int copies = 1;
  /// Extra queueing delay added to the network latency.
  double extra_delay_s = 0.0;
};

/// Seeded fault schedule bound to one engine. The owner wires the link/node
/// handlers (routing repair, transfer aborts, crash injection) and calls
/// start(); the gossip layer pulls per-message fates via draw_message_fate().
class FaultPlan {
 public:
  using LinkFn = std::function<void(LinkId)>;
  using NodeFn = std::function<void(NodeId)>;

  /// `rng` should be a stream forked exclusively for the plan (e.g.
  /// fork("faults")) so its draws are invisible to every other subsystem.
  FaultPlan(Engine& engine, FaultParams params, int node_count, int link_count, util::Rng rng);

  /// Called when a wave takes a link down / brings it back up.
  void set_link_handlers(LinkFn on_down, LinkFn on_up);
  /// Called when a wave crashes / restarts a node.
  void set_node_handlers(NodeFn on_crash, NodeFn on_restart);

  /// Schedules the wave processes. A plan with no link/crash faults schedules
  /// nothing (neutrality invariant above).
  void start();
  void stop();

  /// One fault draw for one protocol message. Consumes randomness only when
  /// message faults are configured; otherwise returns the default fate
  /// without touching the stream.
  [[nodiscard]] MessageFate draw_message_fate();

  [[nodiscard]] const FaultParams& params() const { return params_; }

  // --- counters (observability; not part of the result digest) -------------
  [[nodiscard]] std::uint64_t messages_lost() const { return messages_lost_; }
  [[nodiscard]] std::uint64_t messages_duplicated() const { return messages_duplicated_; }
  [[nodiscard]] std::uint64_t messages_delayed() const { return messages_delayed_; }
  [[nodiscard]] std::uint64_t link_failures() const { return link_failures_; }
  [[nodiscard]] std::uint64_t link_recoveries() const { return link_recoveries_; }
  [[nodiscard]] std::uint64_t node_crashes() const { return node_crashes_; }
  [[nodiscard]] std::uint64_t node_restarts() const { return node_restarts_; }
  [[nodiscard]] bool link_down(LinkId l) const {
    return link_down_[static_cast<std::size_t>(l.get())] != 0;
  }
  [[nodiscard]] bool node_down(NodeId n) const {
    return node_down_[static_cast<std::size_t>(n.get())] != 0;
  }

 private:
  void link_wave();
  void crash_wave();

  Engine& engine_;
  FaultParams params_;
  int nodes_;
  int links_;
  util::Rng rng_;
  LinkFn on_link_down_;
  LinkFn on_link_up_;
  NodeFn on_crash_;
  NodeFn on_restart_;
  /// The plan's own view of which links/nodes IT took down (independent of
  /// churn, which has its own machinery).
  std::vector<char> link_down_;
  std::vector<char> node_down_;
  std::unique_ptr<PeriodicProcess> link_waves_;
  std::unique_ptr<PeriodicProcess> crash_waves_;
  std::uint64_t messages_lost_ = 0;
  std::uint64_t messages_duplicated_ = 0;
  std::uint64_t messages_delayed_ = 0;
  std::uint64_t link_failures_ = 0;
  std::uint64_t link_recoveries_ = 0;
  std::uint64_t node_crashes_ = 0;
  std::uint64_t node_restarts_ = 0;
};

}  // namespace dpjit::sim
