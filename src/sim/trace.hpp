// Optional structured trace of simulation activity.
//
// Tests use the trace to assert orderings (e.g. a task never starts before its
// inputs arrive); examples use it to narrate what the grid did. Disabled
// traces cost one branch per record call.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace dpjit::sim {

/// Category of a trace record; kept coarse on purpose.
enum class TraceKind {
  kDispatch,       ///< task sent from home node to resource node
  kTransferStart,  ///< data/image transfer started
  kTransferEnd,    ///< transfer delivered
  kExecStart,      ///< task began executing
  kExecEnd,        ///< task finished executing
  kWorkflowDone,   ///< workflow's exit task completed
  kNodeJoin,       ///< churn: node joined
  kNodeLeave,      ///< churn: node left
  kTaskFailed,     ///< task lost to churn
  kReschedule,     ///< extension: failed task re-entered the schedule-point set
  kReoffer,        ///< dispatched task pulled back (executor suspected dead)
  kGossip,         ///< gossip message delivered
  kLinkDown,       ///< fault injection: link failed
  kLinkUp,         ///< fault injection: link recovered
};

/// One trace record.
struct TraceRecord {
  SimTime time;
  TraceKind kind;
  NodeId node;      ///< primary node involved
  TaskRef task;     ///< task involved (may be invalid for node events)
  std::string note; ///< free-form detail
};

class Trace {
 public:
  /// Enables/disables recording (disabled by default).
  void enable(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void record(SimTime time, TraceKind kind, NodeId node, TaskRef task = {},
              std::string note = {});

  [[nodiscard]] const std::vector<TraceRecord>& records() const { return records_; }
  void clear() { records_.clear(); }

  /// Counts records of one kind.
  [[nodiscard]] std::size_t count(TraceKind kind) const;

  /// Human-readable dump.
  void print(std::ostream& os) const;

 private:
  bool enabled_ = false;
  std::vector<TraceRecord> records_;
};

/// Short name of a trace kind (for printing).
[[nodiscard]] const char* trace_kind_name(TraceKind kind);

}  // namespace dpjit::sim
