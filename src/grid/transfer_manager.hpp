// Data movement between peer nodes, behind the net::NetworkModel seam.
//
// Three network modes (see net/network_model.hpp for the mode matrix):
//  - kBottleneck (default, matches the paper's evaluation): a transfer takes
//    latency(path) + size / bottleneck-bandwidth(path); transfers do not
//    contend with each other.
//  - kFluidFair (ablation): live fluid model where concurrent transfers
//    crossing a link share it max-min fairly (SimGrid-style progressive
//    filling). Rates are re-solved incrementally through net::FairShareSolver
//    whenever a flow starts or ends: only the affected bottleneck component
//    is recomputed, and churn-driven mass teardown (node_left) removes every
//    doomed flow with a single batched re-solve. A flow whose path crosses a
//    saturated/zero-capacity link gets rate 0 and can never complete; such
//    flows are aborted immediately instead of stalling forever. The next
//    completion event is armed from an incremental CompletionIndex (projected
//    absolute finish times, re-keyed only for the flows each component
//    re-solve actually updated) instead of a per-event O(active) scan.
//    Machinery: models/fluid_fair.cpp.
//  - kQuantisedFair: epoch-quantised max-min fair sharing, the
//    lookahead-compatible contended mode (ROADMAP item 1). Rates are
//    re-solved ONLY at epoch barriers and frozen in between; flows finishing
//    their propagation phase queue as pending joins and enter the solver at
//    the next barrier; remaining volume is advanced LAZILY once per epoch
//    (per-shard flow ledgers in core/workflow_shard, not O(flows) per
//    mutation like the fluid mode's eager advance - ROADMAP item 3 residue,
//    fixed here for this mode only); completions are detected by the ledgers
//    and delivered back through quantised_deliver() two barriers after the
//    epoch in which they drained. Aborts (churn, link failure, task failure)
//    fire immediately and leave the solver at once, but the frozen rates of
//    surviving flows do not move until the next barrier. The manager itself
//    schedules NO completion events in this mode - the barrier/ledger driver
//    owns the clock. Machinery: models/quantised_fair.cpp.
//
// The manager also implements net::RateOracle: what-if transfer-rate and
// transfer-time queries against the live network, consumed by the
// contention-aware scheduling policies (see rate_oracle.hpp). Contended-mode
// probes are memoized per (src, dst) pair in an epoch-keyed cache: a cached
// rate is valid exactly while the solver's mutation stamp, the manager's
// link-state stamp AND (quantised mode) the epoch barrier stamp all stand
// still, which holds for an entire scheduling cycle (the engine runs no flow
// events mid-cycle), so every home node's ranking pass shares one component
// solve per pair instead of paying O(component) per candidate. Invalidation
// is by stamp comparison only - cached answers are bit-identical to fresh
// probes by construction, and a sampled debug assert plus the probe_cache
// differential test hold the cache to that.
//
// Transfers abort with success=false when either endpoint leaves the system,
// or - when path tracking is on - when a link on their recorded route fails
// (link_state_changed). The grid layer's retry policy decides what happens
// next; the manager itself never re-routes an in-flight transfer.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "grid/completion_index.hpp"
#include "net/flow_sharing.hpp"
#include "net/network_model.hpp"
#include "net/rate_oracle.hpp"
#include "net/routing.hpp"
#include "sim/engine.hpp"

namespace dpjit::grid {

/// One flow admitted to the frozen-rate pool at a quantised barrier: the
/// ledger-side initial state (remaining volume and the epoch's frozen rate).
struct QuantisedJoin {
  std::uint64_t id = 0;
  NodeId src{};  ///< ledger-owner selector: flows live on shard(src)
  double remaining_mb = 0.0;
  double rate_mbps = 0.0;
};

/// A surviving flow whose frozen rate moved at a barrier re-solve.
struct QuantisedRateChange {
  std::uint64_t id = 0;
  double rate_mbps = 0.0;
};

/// Everything the per-shard flow ledgers must learn at one epoch barrier.
/// Entries are id-sorted; a flow aborted by a barrier-time stall shows up in
/// `cancels` (possibly without ever having been joined - ledgers ignore
/// unknown ids).
struct QuantisedBarrierDelta {
  std::vector<QuantisedJoin> joins;
  std::vector<QuantisedRateChange> rate_changes;
  std::vector<std::uint64_t> cancels;
};

/// One ledger-detected drain: the exact in-epoch finish time plus the flow.
/// Deliveries are globally sorted by (finish_s, id) before callbacks fire, so
/// the order is invariant to how drained flows partition across shards.
struct QuantisedDone {
  SimTime finish_s = 0.0;
  std::uint64_t id = 0;
};

class TransferManager : public net::RateOracle {
 public:
  /// The network-model seam: behaviour is selected per net/network_model.hpp.
  using Mode = net::NetworkMode;

  /// Completion callback: success=false means the transfer was aborted.
  /// Move-only (fired at most once); small captures stay allocation-free.
  using CompletionFn = sim::InlineFunction<void(bool success)>;

  /// `track_paths` records the routed path of bottleneck-mode transfers so
  /// link_state_changed can find them; contended modes always record paths.
  /// Off by default: the path walk is pure overhead without a fault plan.
  TransferManager(sim::Engine& engine, const net::Topology& topo, const net::Routing& routing,
                  Mode mode = Mode::kBottleneck, bool track_paths = false);

  /// Starts a transfer of `size_mb` megabits from src to dst; the callback
  /// fires (asynchronously) on delivery or abort. Loopback (src == dst)
  /// transfers complete after zero delay. Returns a transfer id.
  std::uint64_t start(NodeId src, NodeId dst, double size_mb, CompletionFn on_done);

  /// Aborts every in-flight transfer with an endpoint at `n` (node departure).
  /// In contended modes all doomed flows leave the pool with one batched rate
  /// re-solve (id-ascending callback order); under quantised fairness the
  /// surviving flows' frozen rates still only move at the next barrier.
  void node_left(NodeId n);

  /// Aborts one transfer by id; false if already completed.
  bool abort(std::uint64_t id);

  /// A topology link failed (up=false) or recovered (up=true). On failure,
  /// every in-flight transfer whose recorded route crosses the link aborts
  /// (success=false, id-ascending order). Recovery only invalidates the probe
  /// cache: routes are fixed at start() time, so surviving transfers keep
  /// theirs, but future probes see the rerouted paths. Call AFTER
  /// Routing::set_link_state so retries and probes route around the failure.
  void link_state_changed(LinkId l, bool up);

  /// Transfers aborted by link failures (observability for fault scenarios).
  [[nodiscard]] std::uint64_t link_aborts() const { return link_aborts_; }

  [[nodiscard]] std::size_t active_count() const { return flows_.size(); }
  [[nodiscard]] std::uint64_t completed_count() const { return completed_; }
  [[nodiscard]] double total_delivered_mb() const { return delivered_mb_; }
  [[nodiscard]] Mode mode() const { return mode_; }

  // --- quantised-fair barrier protocol (models/quantised_fair.cpp) ----------
  // Driven by core::run_quantised_transfers; unit tests call it directly.
  // Only valid in Mode::kQuantisedFair.

  /// Executes one epoch barrier at the engine's current time: delivers
  /// zero-size pending joins, admits the rest to the solver, re-freezes every
  /// active flow's rate, aborts barrier-stalled (zero-rate) flows, and
  /// returns the id-sorted delta the flow ledgers must apply for the coming
  /// epoch. Bumps the barrier stamp the probe cache keys on.
  [[nodiscard]] QuantisedBarrierDelta quantised_barrier();

  /// Delivers ledger-detected drains (must be (finish_s, id)-sorted by the
  /// caller): one batched solver removal, stats, then success callbacks.
  /// Entries for flows aborted since detection are skipped.
  void quantised_deliver(const std::vector<QuantisedDone>& done);

  /// Barriers executed so far (the probe-cache epoch key in quantised mode).
  [[nodiscard]] std::uint64_t barrier_stamp() const { return barrier_stamp_; }

  /// Flows admitted to the frozen-rate pool and not yet delivered/aborted.
  [[nodiscard]] std::size_t quantised_active() const;

  /// Flows waiting (propagation done) to be admitted at the next barrier.
  [[nodiscard]] std::size_t quantised_pending_joins() const;

  // --- net::RateOracle -------------------------------------------------------

  /// Rate a new src->dst transfer would get right now. Bottleneck mode: the
  /// routed path's bottleneck bandwidth (flows never contend). Contended
  /// modes: a side-effect-free what-if probe of the incremental max-min
  /// solver against the current in-flight flow set, memoized per pair until
  /// the next solver mutation, link-state change or (quantised) epoch
  /// barrier (see the class comment).
  [[nodiscard]] double predicted_rate_mbps(NodeId src, NodeId dst) const override;

  /// latency(path) + size_mb / predicted_rate_mbps. 0 for loopback; +inf for
  /// unreachable pairs and saturated (zero-rate) paths. In contended modes
  /// this extrapolates the instantaneous allocation over the whole transfer.
  [[nodiscard]] double expected_transfer_time_s(NodeId src, NodeId dst,
                                                double size_mb) const override;

  /// Batched probe; every entry goes through (and warms) the probe cache, so
  /// a cycle's worth of pairs costs one component solve per *distinct* pair.
  [[nodiscard]] std::vector<double> probe_rates(
      const std::vector<std::pair<NodeId, NodeId>>& pairs) const override;

  /// The pre-cache probe path: routes and solves on every call, never reads
  /// or writes the cache. This is the reference the cached answer must match
  /// bit-for-bit; exposed for the differential tests and the perf harness's
  /// cached-vs-uncached speedup stage, not for schedulers.
  [[nodiscard]] double predicted_rate_mbps_uncached(NodeId src, NodeId dst) const;

  /// The legacy probe path: routes and then re-runs the progressive fill from
  /// scratch (FairShareSolver::probe_rate_reference), bypassing both the pair
  /// cache and the solver's recorded probe schedules. This is the "before"
  /// side of the perf harness's oracle stage - what every probe cost prior to
  /// the cache layers - and a differential anchor for tests.
  [[nodiscard]] double predicted_rate_mbps_reference(NodeId src, NodeId dst) const;

  /// Contended-mode probes answered from the cache / answered by a fresh
  /// solve since construction (observability for tests and the perf harness).
  [[nodiscard]] std::uint64_t probe_cache_hits() const { return probe_cache_hits_; }
  [[nodiscard]] std::uint64_t probe_cache_misses() const { return probe_cache_misses_; }

 private:
  struct Flow {
    NodeId src;
    NodeId dst;
    double size_mb = 0.0;
    double remaining_mb = 0.0;
    double rate_mbps = 0.0;      ///< current allocated rate (contended modes)
    std::vector<LinkId> links;   ///< route (contended always; bottleneck when tracked)
    CompletionFn on_done;
    /// Bottleneck-mode completion / contended-mode latency-phase event.
    /// Cleared (kInvalidHandle) the moment the latency phase ends so no later
    /// path can cancel a stale, potentially reused handle.
    sim::EventQueue::Handle event = sim::EventQueue::kInvalidHandle;
    bool latency_pending = false;  ///< contended: still in propagation delay
    bool fluid = false;            ///< contended: joined the (fluid/frozen) pool
    /// Quantised: propagation done, waiting for the next barrier to be
    /// admitted to the solver.
    bool join_pending = false;
    /// CompletionIndex slab slot from the last upsert, passed back as a hint
    /// to skip the id hash lookup on re-key. Stale values are safe: the index
    /// validates the hint against the flow id before trusting it.
    std::uint32_t ci_slot = CompletionIndex::kNoSlot;
  };

  void finish(std::uint64_t id, bool success);

  // --- fluid-fair machinery (models/fluid_fair.cpp) ---
  void fair_flow_started(std::uint64_t id);
  /// Integrates remaining_mb of every fluid flow up to engine time. The
  /// eager O(flows)-per-mutation advance is fluid-mode only; quantised mode
  /// advances lazily at epoch barriers (ROADMAP item 3).
  void fair_advance_to_now();
  /// Pulls solver_.updated() into the flows' rate_mbps and re-keys their
  /// next-completion projections (the only entries a component re-solve can
  /// invalidate; every other flow's projected finish is unchanged while its
  /// rate is).
  void fair_apply_updated_rates();
  /// Zero-rate stall guard: aborts any fluid flow the last re-solve left
  /// with rate <= 0 (saturated/zero-capacity link) - such a flow can never
  /// complete and no completion event could be armed for it.
  void fair_abort_stalled();
  /// Resolves a sorted batch of flows (completion or abort): one batched
  /// solver removal, stats, erase, reschedule, then the callbacks.
  void fair_resolve_batch(const std::vector<std::uint64_t>& ids, bool success);
  void fair_schedule_next_completion();
  /// The armed completion event: delivers every flow that crossed the line.
  void fair_tick();

  // --- quantised-fair machinery (models/quantised_fair.cpp) ---
  /// Propagation phase over: queue the flow for admission at the next barrier.
  void quantised_flow_ready(std::uint64_t id);
  /// Aborts a sorted batch immediately (callbacks now, solver removal now,
  /// ledger cancel queued for the next barrier); frozen rates do not move.
  void quantised_resolve_batch(const std::vector<std::uint64_t>& ids, bool success);

  sim::Engine& engine_;
  const net::Topology& topo_;
  const net::Routing& routing_;
  Mode mode_;
  bool track_paths_;
  // --- contended-mode probe cache (see class comment). Keyed
  // (src << 32 | dst); valid while (solver mutation stamp, manager link
  // stamp, barrier stamp) all match the values captured when the cache was
  // last cleared. `mutable`: the oracle interface is const and the cache is
  // pure memoization - by the solver's probe-purity invariant a hit and a
  // fresh probe are indistinguishable.
  mutable std::unordered_map<std::uint64_t, double> probe_cache_;
  mutable std::uint64_t probe_cache_solver_stamp_ = 0;
  mutable std::uint64_t probe_cache_link_stamp_ = 0;
  mutable std::uint64_t probe_cache_barrier_stamp_ = 0;
  mutable std::uint64_t probe_cache_hits_ = 0;
  mutable std::uint64_t probe_cache_misses_ = 0;
  /// Bumped by link_state_changed for BOTH directions: Routing reroutes on
  /// failure and recovery alike, so cached paths go stale either way.
  std::uint64_t link_stamp_ = 0;
  std::unordered_map<std::uint64_t, Flow> flows_;
  net::FairShareSolver solver_;
  /// Fluid mode: projected absolute finish per fluid flow, min-heap-ordered.
  CompletionIndex next_completion_;
  /// Arming scratch: ids tied at the index minimum (usually exactly one).
  std::vector<std::uint64_t> tie_scratch_;
  std::uint64_t next_id_ = 1;
  std::uint64_t completed_ = 0;
  std::uint64_t link_aborts_ = 0;
  double delivered_mb_ = 0.0;
  sim::EventQueue::Handle fair_event_ = sim::EventQueue::kInvalidHandle;
  bool fair_event_armed_ = false;
  SimTime fair_clock_ = 0.0;
  // --- quantised-fair state ---
  /// Flows whose propagation finished since the last barrier (may hold stale
  /// ids of flows aborted before admission; admission re-checks).
  std::vector<std::uint64_t> pending_joins_;
  /// Ids the ledgers must drop at the next barrier (aborted mid-epoch).
  std::vector<std::uint64_t> pending_cancels_;
  /// Epoch barriers executed; part of the probe-cache key in quantised mode.
  std::uint64_t barrier_stamp_ = 0;
};

}  // namespace dpjit::grid
