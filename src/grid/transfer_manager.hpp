// Data movement between peer nodes.
//
// Two network models:
//  - kBottleneck (default, matches the paper's evaluation): a transfer takes
//    latency(path) + size / bottleneck-bandwidth(path); transfers do not
//    contend with each other.
//  - kFairSharing (ablation): live fluid model where concurrent transfers
//    crossing a link share it max-min fairly (SimGrid-style progressive
//    filling). Rates are re-solved incrementally through net::FairShareSolver
//    whenever a flow starts or ends: only the affected bottleneck component
//    is recomputed, and churn-driven mass teardown (node_left) removes every
//    doomed flow with a single batched re-solve. A flow whose path crosses a
//    saturated/zero-capacity link gets rate 0 and can never complete; such
//    flows are aborted immediately instead of stalling forever. The next
//    completion event is armed from an incremental CompletionIndex (projected
//    absolute finish times, re-keyed only for the flows each component
//    re-solve actually updated) instead of a per-event O(active) scan.
//
// The manager also implements net::RateOracle: what-if transfer-rate and
// transfer-time queries against the live network, consumed by the
// contention-aware scheduling policies (see rate_oracle.hpp). Fair-mode
// probes are memoized per (src, dst) pair in an epoch-keyed cache: a cached
// rate is valid exactly while the solver's mutation stamp and the manager's
// link-state stamp both stand still, which holds for an entire scheduling
// cycle (the engine runs no flow events mid-cycle), so every home node's
// ranking pass shares one component solve per pair instead of paying
// O(component) per candidate. Invalidation is by stamp comparison only -
// cached answers are bit-identical to fresh probes by construction, and a
// sampled debug assert plus the probe_cache differential test hold the cache
// to that.
//
// Transfers abort with success=false when either endpoint leaves the system,
// or - when path tracking is on - when a link on their recorded route fails
// (link_state_changed). The grid layer's retry policy decides what happens
// next; the manager itself never re-routes an in-flight transfer.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "grid/completion_index.hpp"
#include "net/flow_sharing.hpp"
#include "net/rate_oracle.hpp"
#include "net/routing.hpp"
#include "sim/engine.hpp"

namespace dpjit::grid {

class TransferManager : public net::RateOracle {
 public:
  enum class Mode { kBottleneck, kFairSharing };

  /// Completion callback: success=false means the transfer was aborted.
  /// Move-only (fired at most once); small captures stay allocation-free.
  using CompletionFn = sim::InlineFunction<void(bool success)>;

  /// `track_paths` records the routed path of bottleneck-mode transfers so
  /// link_state_changed can find them; fair mode always records paths. Off by
  /// default: the path walk is pure overhead without a fault plan.
  TransferManager(sim::Engine& engine, const net::Topology& topo, const net::Routing& routing,
                  Mode mode = Mode::kBottleneck, bool track_paths = false);

  /// Starts a transfer of `size_mb` megabits from src to dst; the callback
  /// fires (asynchronously) on delivery or abort. Loopback (src == dst)
  /// transfers complete after zero delay. Returns a transfer id.
  std::uint64_t start(NodeId src, NodeId dst, double size_mb, CompletionFn on_done);

  /// Aborts every in-flight transfer with an endpoint at `n` (node departure).
  /// In fair-sharing mode all doomed flows leave the fluid pool with one
  /// batched rate re-solve (id-ascending callback order).
  void node_left(NodeId n);

  /// Aborts one transfer by id; false if already completed.
  bool abort(std::uint64_t id);

  /// A topology link failed (up=false) or recovered (up=true). On failure,
  /// every in-flight transfer whose recorded route crosses the link aborts
  /// (success=false, id-ascending order). Recovery only invalidates the probe
  /// cache: routes are fixed at start() time, so surviving transfers keep
  /// theirs, but future probes see the rerouted paths. Call AFTER
  /// Routing::set_link_state so retries and probes route around the failure.
  void link_state_changed(LinkId l, bool up);

  /// Transfers aborted by link failures (observability for fault scenarios).
  [[nodiscard]] std::uint64_t link_aborts() const { return link_aborts_; }

  [[nodiscard]] std::size_t active_count() const { return flows_.size(); }
  [[nodiscard]] std::uint64_t completed_count() const { return completed_; }
  [[nodiscard]] double total_delivered_mb() const { return delivered_mb_; }
  [[nodiscard]] Mode mode() const { return mode_; }

  // --- net::RateOracle -------------------------------------------------------

  /// Rate a new src->dst transfer would get right now. Bottleneck mode: the
  /// routed path's bottleneck bandwidth (flows never contend). Fair mode: a
  /// side-effect-free what-if probe of the incremental max-min solver against
  /// the current in-flight flow set, memoized per pair until the next solver
  /// mutation or link-state change (see the class comment).
  [[nodiscard]] double predicted_rate_mbps(NodeId src, NodeId dst) const override;

  /// latency(path) + size_mb / predicted_rate_mbps. 0 for loopback; +inf for
  /// unreachable pairs and saturated (zero-rate) paths. In fair mode this
  /// extrapolates the instantaneous allocation over the whole transfer.
  [[nodiscard]] double expected_transfer_time_s(NodeId src, NodeId dst,
                                                double size_mb) const override;

  /// Batched probe; every entry goes through (and warms) the probe cache, so
  /// a cycle's worth of pairs costs one component solve per *distinct* pair.
  [[nodiscard]] std::vector<double> probe_rates(
      const std::vector<std::pair<NodeId, NodeId>>& pairs) const override;

  /// The pre-cache probe path: routes and solves on every call, never reads
  /// or writes the cache. This is the reference the cached answer must match
  /// bit-for-bit; exposed for the differential tests and the perf harness's
  /// cached-vs-uncached speedup stage, not for schedulers.
  [[nodiscard]] double predicted_rate_mbps_uncached(NodeId src, NodeId dst) const;

  /// The legacy probe path: routes and then re-runs the progressive fill from
  /// scratch (FairShareSolver::probe_rate_reference), bypassing both the pair
  /// cache and the solver's recorded probe schedules. This is the "before"
  /// side of the perf harness's oracle stage - what every probe cost prior to
  /// the cache layers - and a differential anchor for tests.
  [[nodiscard]] double predicted_rate_mbps_reference(NodeId src, NodeId dst) const;

  /// Fair-mode probes answered from the cache / answered by a fresh solve
  /// since construction (observability for tests and the perf harness).
  [[nodiscard]] std::uint64_t probe_cache_hits() const { return probe_cache_hits_; }
  [[nodiscard]] std::uint64_t probe_cache_misses() const { return probe_cache_misses_; }

 private:
  struct Flow {
    NodeId src;
    NodeId dst;
    double size_mb = 0.0;
    double remaining_mb = 0.0;
    double rate_mbps = 0.0;      ///< current allocated rate (fair mode)
    std::vector<LinkId> links;   ///< route (fair mode always; bottleneck when tracked)
    CompletionFn on_done;
    /// Bottleneck-mode completion / fair-mode latency-phase event. Cleared
    /// (kInvalidHandle) the moment the latency phase ends so no later path
    /// can cancel a stale, potentially reused handle.
    sim::EventQueue::Handle event = sim::EventQueue::kInvalidHandle;
    bool latency_pending = false;  ///< fair mode: still in propagation delay
    bool fluid = false;            ///< fair mode: joined the fluid pool
    /// CompletionIndex slab slot from the last upsert, passed back as a hint
    /// to skip the id hash lookup on re-key. Stale values are safe: the index
    /// validates the hint against the flow id before trusting it.
    std::uint32_t ci_slot = CompletionIndex::kNoSlot;
  };

  void finish(std::uint64_t id, bool success);

  // --- fair-sharing machinery ---
  void fair_flow_started(std::uint64_t id);
  /// Integrates remaining_mb of every fluid flow up to engine time.
  void fair_advance_to_now();
  /// Pulls solver_.updated() into the flows' rate_mbps and re-keys their
  /// next-completion projections (the only entries a component re-solve can
  /// invalidate; every other flow's projected finish is unchanged while its
  /// rate is).
  void fair_apply_updated_rates();
  /// Zero-rate stall guard: aborts any fluid flow the last re-solve left
  /// with rate <= 0 (saturated/zero-capacity link) - such a flow can never
  /// complete and no completion event could be armed for it.
  void fair_abort_stalled();
  /// Resolves a sorted batch of flows (completion or abort): one batched
  /// solver removal, stats, erase, reschedule, then the callbacks.
  void fair_resolve_batch(const std::vector<std::uint64_t>& ids, bool success);
  void fair_schedule_next_completion();
  /// The armed completion event: delivers every flow that crossed the line.
  void fair_tick();

  sim::Engine& engine_;
  const net::Topology& topo_;
  const net::Routing& routing_;
  Mode mode_;
  bool track_paths_;
  // --- fair-mode probe cache (see class comment). Keyed (src << 32 | dst);
  // valid while (solver mutation stamp, manager link stamp) both match the
  // values captured when the cache was last cleared. `mutable`: the oracle
  // interface is const and the cache is pure memoization - by the solver's
  // probe-purity invariant a hit and a fresh probe are indistinguishable.
  mutable std::unordered_map<std::uint64_t, double> probe_cache_;
  mutable std::uint64_t probe_cache_solver_stamp_ = 0;
  mutable std::uint64_t probe_cache_link_stamp_ = 0;
  mutable std::uint64_t probe_cache_hits_ = 0;
  mutable std::uint64_t probe_cache_misses_ = 0;
  /// Bumped by link_state_changed for BOTH directions: Routing reroutes on
  /// failure and recovery alike, so cached paths go stale either way.
  std::uint64_t link_stamp_ = 0;
  std::unordered_map<std::uint64_t, Flow> flows_;
  net::FairShareSolver solver_;
  /// Fair mode: projected absolute finish per fluid flow, min-heap-ordered.
  CompletionIndex next_completion_;
  /// Arming scratch: ids tied at the index minimum (usually exactly one).
  std::vector<std::uint64_t> tie_scratch_;
  std::uint64_t next_id_ = 1;
  std::uint64_t completed_ = 0;
  std::uint64_t link_aborts_ = 0;
  double delivered_mb_ = 0.0;
  sim::EventQueue::Handle fair_event_ = sim::EventQueue::kInvalidHandle;
  bool fair_event_armed_ = false;
  SimTime fair_clock_ = 0.0;
};

}  // namespace dpjit::grid
