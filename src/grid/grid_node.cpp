#include "grid/grid_node.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace dpjit::grid {

GridNode::GridNode(NodeId id, double capacity_mips) : id_(id), capacity_(capacity_mips) {
  if (capacity_mips <= 0.0) throw std::invalid_argument("GridNode: capacity must be > 0");
}

void GridNode::add_ready(ReadyTask task) {
  assert(find_ready(task.ref) == nullptr && "duplicate ready task");
  ready_.push_back(std::move(task));
}

ReadyTask* GridNode::find_ready(TaskRef ref) {
  for (auto& t : ready_) {
    if (t.ref == ref) return &t;
  }
  return nullptr;
}

const ReadyTask* GridNode::find_ready(TaskRef ref) const {
  for (const auto& t : ready_) {
    if (t.ref == ref) return &t;
  }
  return nullptr;
}

bool GridNode::remove_ready(TaskRef ref) {
  const auto before = ready_.size();
  std::erase_if(ready_, [&](const ReadyTask& t) { return t.ref == ref; });
  return ready_.size() != before;
}

std::vector<const ReadyTask*> GridNode::data_complete() const {
  std::vector<const ReadyTask*> out;
  for (const auto& t : ready_) {
    if (t.pending_inputs == 0) out.push_back(&t);
  }
  return out;
}

std::vector<ReadyTask> GridNode::drain_ready() {
  std::vector<ReadyTask> out = std::move(ready_);
  ready_.clear();
  return out;
}

double GridNode::start_running(TaskRef ref, SimTime now) {
  if (busy()) throw std::logic_error("GridNode::start_running: CPU busy");
  ReadyTask* t = find_ready(ref);
  if (t == nullptr) throw std::logic_error("GridNode::start_running: task not in ready set");
  if (t->pending_inputs != 0) {
    throw std::logic_error("GridNode::start_running: inputs still pending");
  }
  running_ = *t;
  remove_ready(ref);
  const double duration = running_->load_mi / capacity_;
  run_started_ = now;
  run_finishes_ = now + duration;
  return duration;
}

ReadyTask GridNode::finish_running() {
  if (!busy()) throw std::logic_error("GridNode::finish_running: CPU idle");
  ReadyTask t = *running_;
  running_.reset();
  run_started_ = run_finishes_ = kNoTime;
  return t;
}

std::optional<ReadyTask> GridNode::abort_running() {
  std::optional<ReadyTask> t = running_;
  running_.reset();
  run_started_ = run_finishes_ = kNoTime;
  return t;
}

double GridNode::total_load_mi(SimTime now) const {
  double sum = 0.0;
  for (const auto& t : ready_) sum += t.load_mi;
  if (running_) {
    const double span = run_finishes_ - run_started_;
    const double frac = span <= 0.0 ? 0.0 : std::clamp((run_finishes_ - now) / span, 0.0, 1.0);
    sum += running_->load_mi * frac;
  }
  return sum;
}

}  // namespace dpjit::grid
