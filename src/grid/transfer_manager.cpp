#include "grid/transfer_manager.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace dpjit::grid {
namespace {
/// Remaining volume below this is considered delivered (numerical slack).
constexpr double kEpsilonMb = 1e-9;

std::vector<double> link_capacities(const net::Topology& topo) {
  std::vector<double> caps;
  caps.reserve(topo.link_count());
  for (const auto& link : topo.links()) caps.push_back(link.bandwidth_mbps);
  return caps;
}
}  // namespace

TransferManager::TransferManager(sim::Engine& engine, const net::Topology& topo,
                                 const net::Routing& routing, Mode mode, bool track_paths)
    : engine_(engine), topo_(topo), routing_(routing), mode_(mode), track_paths_(track_paths),
      solver_(link_capacities(topo)) {}

std::uint64_t TransferManager::start(NodeId src, NodeId dst, double size_mb,
                                     CompletionFn on_done) {
  assert(size_mb >= 0.0);
  const std::uint64_t id = next_id_++;
  Flow flow;
  flow.src = src;
  flow.dst = dst;
  flow.size_mb = size_mb;
  flow.remaining_mb = size_mb;
  flow.on_done = std::move(on_done);

  if (src == dst) {
    // Loopback: deliver after zero delay (still asynchronously).
    auto [it, ok] = flows_.emplace(id, std::move(flow));
    (void)ok;
    it->second.event = engine_.schedule_in(0.0, [this, id] { finish(id, true); });
    return id;
  }

  const double latency = routing_.latency_s(src, dst);
  if (!std::isfinite(latency)) {
    // Unreachable pair (cannot happen on connected topologies; defensive).
    auto [it, ok] = flows_.emplace(id, std::move(flow));
    (void)ok;
    it->second.event = engine_.schedule_in(0.0, [this, id] { finish(id, false); });
    return id;
  }

  if (mode_ == Mode::kBottleneck) {
    const double bandwidth = routing_.bandwidth_mbps(src, dst);
    if (bandwidth <= 0.0) {
      // Path crosses a zero-capacity link: infinite duration, treat like an
      // unreachable pair instead of scheduling an event at t = +inf.
      auto [it, ok] = flows_.emplace(id, std::move(flow));
      (void)ok;
      it->second.event = engine_.schedule_in(0.0, [this, id] { finish(id, false); });
      return id;
    }
    const double duration = latency + size_mb / bandwidth;
    if (track_paths_) flow.links = routing_.path_links(src, dst);
    auto [it, ok] = flows_.emplace(id, std::move(flow));
    (void)ok;
    it->second.event = engine_.schedule_in(duration, [this, id] { finish(id, true); });
    return id;
  }

  // Fair-sharing mode: propagation first, then join the fluid pool.
  flow.links = routing_.path_links(src, dst);
  flow.latency_pending = true;
  flows_.emplace(id, std::move(flow));
  flows_.at(id).event = engine_.schedule_in(latency, [this, id] { fair_flow_started(id); });
  return id;
}

void TransferManager::finish(std::uint64_t id, bool success) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  if (it->second.fluid) {
    // Single-flow fluid removal is the batch resolve with one element, so
    // the two paths cannot drift apart.
    fair_resolve_batch({id}, success);
    return;
  }
  CompletionFn cb = std::move(it->second.on_done);
  engine_.cancel(it->second.event);
  if (success) {
    ++completed_;
    delivered_mb_ += it->second.size_mb;
  }
  flows_.erase(it);
  if (cb) cb(success);
}

void TransferManager::node_left(NodeId n) {
  std::vector<std::uint64_t> doomed;
  for (const auto& [id, flow] : flows_) {
    if (flow.src == n || flow.dst == n) doomed.push_back(id);
  }
  if (mode_ == Mode::kFairSharing) {
    // Churn teardown: one batched re-solve for every doomed flow instead of a
    // full recompute per flow; sorted so the callback order is deterministic
    // (the collection above iterates in hash-map order).
    std::sort(doomed.begin(), doomed.end());
    fair_resolve_batch(doomed, false);
  } else {
    for (std::uint64_t id : doomed) finish(id, false);
  }
}

bool TransferManager::abort(std::uint64_t id) {
  if (flows_.find(id) == flows_.end()) return false;
  finish(id, false);
  return true;
}

void TransferManager::link_state_changed(LinkId l, bool up) {
  // Probe paths change on failure AND recovery (Routing::set_link_state has
  // already rerouted by contract), so the cache stamp moves either way even
  // though only failures abort transfers below.
  ++link_stamp_;
  if (up) return;  // surviving transfers keep their (still valid) old routes
  std::vector<std::uint64_t> doomed;
  for (const auto& [id, flow] : flows_) {
    if (std::find(flow.links.begin(), flow.links.end(), l) != flow.links.end()) {
      doomed.push_back(id);
    }
  }
  if (doomed.empty()) return;
  std::sort(doomed.begin(), doomed.end());  // hash-map order -> deterministic
  link_aborts_ += doomed.size();
  if (mode_ == Mode::kFairSharing) {
    fair_resolve_batch(doomed, false);
  } else {
    for (const std::uint64_t id : doomed) finish(id, false);
  }
}

// --- net::RateOracle --------------------------------------------------------

double TransferManager::predicted_rate_mbps_uncached(NodeId src, NodeId dst) const {
  if (src == dst) return kInf;  // loopback transfers are free
  if (mode_ == Mode::kBottleneck) {
    // No contention in this model: the live rate IS the static path rate.
    return routing_.bandwidth_mbps(src, dst);
  }
  const std::vector<LinkId> links = routing_.path_links(src, dst);
  if (links.empty()) return 0.0;  // unreachable pair (no route)
  return solver_.probe_rate(links);
}

double TransferManager::predicted_rate_mbps_reference(NodeId src, NodeId dst) const {
  if (src == dst) return kInf;  // loopback transfers are free
  if (mode_ == Mode::kBottleneck) {
    return routing_.bandwidth_mbps(src, dst);
  }
  const std::vector<LinkId> links = routing_.path_links(src, dst);
  if (links.empty()) return 0.0;  // unreachable pair (no route)
  return solver_.probe_rate_reference(links);
}

double TransferManager::predicted_rate_mbps(NodeId src, NodeId dst) const {
  if (src == dst) return kInf;  // loopback transfers are free
  if (mode_ == Mode::kBottleneck) {
    // The matrix read is cheaper than any cache lookup and always live.
    return routing_.bandwidth_mbps(src, dst);
  }
  // Stamp check: the cache holds exactly while no flow joined/left the fluid
  // pool and no link changed state. Probes themselves never move either
  // stamp, so a ranking pass over hundreds of candidates reuses one solve
  // per distinct pair.
  const std::uint64_t solver_stamp = solver_.mutation_stamp();
  if (probe_cache_solver_stamp_ != solver_stamp || probe_cache_link_stamp_ != link_stamp_) {
    probe_cache_.clear();
    probe_cache_solver_stamp_ = solver_stamp;
    probe_cache_link_stamp_ = link_stamp_;
  }
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src.get())) << 32) |
      static_cast<std::uint32_t>(dst.get());
  if (const auto it = probe_cache_.find(key); it != probe_cache_.end()) {
    ++probe_cache_hits_;
#ifndef NDEBUG
    // Sampled differential check (every 64th hit): a full per-hit re-probe
    // would make Debug builds as slow as the uncached path; the dedicated
    // probe_cache test asserts bit-equality at EVERY step instead.
    if ((probe_cache_hits_ & 63u) == 0) {
      assert(it->second == predicted_rate_mbps_uncached(src, dst) &&
             "probe cache diverged from a fresh solve");
    }
#endif
    return it->second;
  }
  ++probe_cache_misses_;
  const double rate = predicted_rate_mbps_uncached(src, dst);
  probe_cache_.emplace(key, rate);
  return rate;
}

std::vector<double> TransferManager::probe_rates(
    const std::vector<std::pair<NodeId, NodeId>>& pairs) const {
  std::vector<double> rates;
  rates.reserve(pairs.size());
  for (const auto& [src, dst] : pairs) rates.push_back(predicted_rate_mbps(src, dst));
  return rates;
}

double TransferManager::expected_transfer_time_s(NodeId src, NodeId dst, double size_mb) const {
  if (src == dst) return 0.0;
  const double latency = routing_.latency_s(src, dst);
  if (!std::isfinite(latency)) return kInf;  // skip the probe entirely
  if (size_mb <= 0.0) return latency;
  return net::transfer_time_from_rate(latency, predicted_rate_mbps(src, dst), size_mb);
}

// --- fair-sharing machinery -------------------------------------------------

void TransferManager::fair_flow_started(std::uint64_t id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  Flow& flow = it->second;
  assert(flow.latency_pending && !flow.fluid);
  flow.latency_pending = false;
  // The latency event is firing right now: invalidate the handle so finish()
  // never cancels a stale one (the slot may be reused by an unrelated event).
  flow.event = sim::EventQueue::kInvalidHandle;
  // Sync the fluid clock BEFORE the flow joins the pool. With an empty pool
  // nothing accrues, so this is what keeps a manager whose first fluid flow
  // starts at t > 0 from integrating a bogus [0, now] window later on.
  fair_advance_to_now();
  if (flow.remaining_mb <= kEpsilonMb) {
    finish(id, true);
    return;
  }
  flow.fluid = true;
  // The Flow's address is stable (node-based unordered_map), so it rides
  // along as the solver's user cookie: every future rate update for this
  // flow comes back with the pointer attached, sparing a hash lookup per
  // re-solved flow on the hottest path in fair mode.
  solver_.add(id, flow.links, &flow);
  fair_apply_updated_rates();
  fair_abort_stalled();
  fair_schedule_next_completion();
}

void TransferManager::fair_abort_stalled() {
  // In practice only a newly added flow crossing a zero-capacity link gets
  // rate <= 0 (removals never lower surviving rates), but the scan over the
  // re-solved component is cheap, and running it after every mutation makes
  // the no-zero-rate-fluid-flow invariant unconditional.
  std::vector<std::uint64_t> stalled;
  for (const auto& u : solver_.updated()) {
    if (u.rate <= 0.0) stalled.push_back(u.id);
  }
  if (stalled.empty()) return;
  std::sort(stalled.begin(), stalled.end());
  fair_resolve_batch(stalled, false);  // recursion bounded: each pass removes flows
}

void TransferManager::fair_advance_to_now() {
  const SimTime now = engine_.now();
  const double dt = now - fair_clock_;
  if (dt > 0.0) {
    for (auto& [id, flow] : flows_) {
      if (!flow.fluid) continue;
      flow.remaining_mb = std::max(0.0, flow.remaining_mb - flow.rate_mbps * dt);
    }
  }
  fair_clock_ = now;
}

void TransferManager::fair_apply_updated_rates() {
  // Callers advance the fluid clock before any re-solve, so `now` is the
  // instant the new rates take effect and remaining_mb is current: the
  // projected finish below is exactly the `now + remaining / rate` the old
  // brute-force arming scan would compute at this moment.
  assert(fair_clock_ == engine_.now());
  const SimTime now = engine_.now();
  for (const auto& u : solver_.updated()) {
    // The cookie is the Flow itself (attached at solver_.add time); removed
    // flows leave the solver before the re-solve, so every entry here names
    // a live flow and the pointer cannot dangle.
    Flow& flow = *static_cast<Flow*>(u.user);
    assert(flows_.find(u.id) != flows_.end() && &flows_.find(u.id)->second == &flow &&
           flow.fluid);
    flow.rate_mbps = u.rate;
    if (u.rate > 0.0) {
      flow.ci_slot = next_completion_.upsert(u.id, now + flow.remaining_mb / u.rate, flow.ci_slot);
    } else {
      // Saturated path: fair_abort_stalled() resolves it right after this.
      next_completion_.erase(u.id);
      flow.ci_slot = CompletionIndex::kNoSlot;
    }
  }
}

void TransferManager::fair_resolve_batch(const std::vector<std::uint64_t>& ids, bool success) {
  assert(mode_ == Mode::kFairSharing);
  if (ids.empty()) return;
  fair_advance_to_now();
  std::vector<std::uint64_t> fluid_ids;
  std::vector<CompletionFn> callbacks;
  fluid_ids.reserve(ids.size());
  callbacks.reserve(ids.size());
  for (const std::uint64_t id : ids) {
    auto it = flows_.find(id);
    assert(it != flows_.end());
    Flow& flow = it->second;
    if (flow.fluid) {
      assert(flow.event == sim::EventQueue::kInvalidHandle);
      fluid_ids.push_back(id);
      next_completion_.erase(id);
    } else {
      // Latency-phase or loopback flow (node teardown): kill its timer.
      engine_.cancel(flow.event);
    }
    if (success) {
      ++completed_;
      delivered_mb_ += flow.size_mb;
    }
    callbacks.push_back(std::move(flow.on_done));
    flows_.erase(it);
  }
  if (!fluid_ids.empty()) {
    solver_.remove_batch(fluid_ids);
    fair_apply_updated_rates();
    fair_abort_stalled();
  }
  fair_schedule_next_completion();
  // Callbacks fire last, against fully consistent state: they may re-enter
  // start()/abort() (the grid restarts lost input transfers from the home
  // node, for example).
  for (auto& cb : callbacks) {
    if (cb) cb(success);
  }
}

void TransferManager::fair_schedule_next_completion() {
  if (fair_event_armed_) {
    engine_.cancel(fair_event_);
    fair_event_armed_ = false;
  }
  if (next_completion_.empty()) return;
  // The index orders flows by their projected *absolute* finish; the armed
  // delay is recomputed from the eagerly advanced remaining volume with the
  // identical `remaining / rate` expression the old O(active) scan evaluated,
  // so the event lands on the bit-identical time (golden digests depend on
  // this; the debug block below cross-checks it on every arming). Two flows
  // whose delays differ by less than one ulp of the absolute clock collapse
  // onto the same index key - rounding is monotone, so a true-order
  // difference can only become a key tie, never an inversion - and the tie
  // is broken here at full relative precision over the tied subtree.
  tie_scratch_.clear();
  next_completion_.collect_min_ties(tie_scratch_);
  double soonest = kInf;
  for (const std::uint64_t fid : tie_scratch_) {
    const auto it = flows_.find(fid);
    assert(it != flows_.end() && it->second.fluid);
    assert(it->second.rate_mbps > 0.0 && "zero-rate fluid flow survived the stall guard");
    soonest = std::min(soonest, it->second.remaining_mb / it->second.rate_mbps);
  }
#ifndef NDEBUG
  double scan = kInf;
  for (const auto& [id, flow] : flows_) {
    if (!flow.fluid) continue;
    assert(flow.rate_mbps > 0.0);
    scan = std::min(scan, flow.remaining_mb / flow.rate_mbps);
  }
  assert(scan == soonest && "CompletionIndex diverged from the brute-force scan");
#endif
  if (!std::isfinite(soonest)) return;  // defensive: mirrors the old scan guard
  fair_event_ = engine_.schedule_in(soonest, [this] {
    fair_event_armed_ = false;
    fair_tick();
  });
  fair_event_armed_ = true;
}

void TransferManager::fair_tick() {
  fair_advance_to_now();
  std::vector<std::uint64_t> done;
  const SimTime now = engine_.now();
  for (const auto& [id, flow] : flows_) {
    if (!flow.fluid) continue;
    // Delivered - or so close that the completion event could not advance
    // simulated time: with a sub-ulp remaining/rate, re-arming would fire at
    // exactly `now` again with dt == 0 and spin forever.
    if (flow.remaining_mb <= kEpsilonMb ||
        now + flow.remaining_mb / flow.rate_mbps <= now) {
      done.push_back(id);
    }
  }
  std::sort(done.begin(), done.end());
  if (done.empty()) {
    // Numerical under-shoot: re-arm and let the frontier catch up. Every
    // surviving flow's completion lies measurably past `now` (the sub-ulp
    // cases were just delivered), so the next tick makes progress.
    fair_schedule_next_completion();
    return;
  }
  fair_resolve_batch(done, true);
}

}  // namespace dpjit::grid
