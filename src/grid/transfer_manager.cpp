#include "grid/transfer_manager.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace dpjit::grid {
namespace {
/// Remaining volume below this is considered delivered (numerical slack).
constexpr double kEpsilonMb = 1e-9;
}  // namespace

TransferManager::TransferManager(sim::Engine& engine, const net::Topology& topo,
                                 const net::Routing& routing, Mode mode)
    : engine_(engine), topo_(topo), routing_(routing), mode_(mode) {}

std::uint64_t TransferManager::start(NodeId src, NodeId dst, double size_mb,
                                     CompletionFn on_done) {
  assert(size_mb >= 0.0);
  const std::uint64_t id = next_id_++;
  Flow flow;
  flow.src = src;
  flow.dst = dst;
  flow.size_mb = size_mb;
  flow.remaining_mb = size_mb;
  flow.on_done = std::move(on_done);

  if (src == dst) {
    // Loopback: deliver after zero delay (still asynchronously).
    auto [it, ok] = flows_.emplace(id, std::move(flow));
    (void)ok;
    it->second.event = engine_.schedule_in(0.0, [this, id] { finish(id, true); });
    return id;
  }

  const double latency = routing_.latency_s(src, dst);
  if (!std::isfinite(latency)) {
    // Unreachable pair (cannot happen on connected topologies; defensive).
    auto [it, ok] = flows_.emplace(id, std::move(flow));
    (void)ok;
    it->second.event = engine_.schedule_in(0.0, [this, id] { finish(id, false); });
    return id;
  }

  if (mode_ == Mode::kBottleneck) {
    const double duration = latency + size_mb / routing_.bandwidth_mbps(src, dst);
    auto [it, ok] = flows_.emplace(id, std::move(flow));
    (void)ok;
    it->second.event = engine_.schedule_in(duration, [this, id] { finish(id, true); });
    return id;
  }

  // Fair-sharing mode: propagation first, then join the fluid pool.
  flow.links = routing_.path_links(src, dst);
  flow.latency_pending = true;
  flows_.emplace(id, std::move(flow));
  flows_.at(id).event = engine_.schedule_in(latency, [this, id] { fair_flow_started(id); });
  return id;
}

void TransferManager::finish(std::uint64_t id, bool success) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  CompletionFn cb = std::move(it->second.on_done);
  const bool was_fluid = mode_ == Mode::kFairSharing && !it->second.latency_pending &&
                         it->second.src != it->second.dst;
  if (success) {
    ++completed_;
    delivered_mb_ += it->second.size_mb;
  }
  engine_.cancel(it->second.event);
  flows_.erase(it);
  if (was_fluid) {
    fair_recompute();
  }
  if (cb) cb(success);
}

void TransferManager::node_left(NodeId n) {
  std::vector<std::uint64_t> doomed;
  for (const auto& [id, flow] : flows_) {
    if (flow.src == n || flow.dst == n) doomed.push_back(id);
  }
  for (std::uint64_t id : doomed) finish(id, false);
}

bool TransferManager::abort(std::uint64_t id) {
  if (flows_.find(id) == flows_.end()) return false;
  finish(id, false);
  return true;
}

// --- fair-sharing machinery -------------------------------------------------

void TransferManager::fair_flow_started(std::uint64_t id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  it->second.latency_pending = false;
  it->second.last_update = engine_.now();
  if (it->second.remaining_mb <= kEpsilonMb) {
    finish(id, true);
    return;
  }
  fair_recompute();
}

void TransferManager::fair_advance_to_now() {
  const SimTime now = engine_.now();
  const double dt = now - fair_clock_;
  if (dt > 0.0) {
    for (auto& [id, flow] : flows_) {
      if (flow.latency_pending || flow.src == flow.dst) continue;
      flow.remaining_mb = std::max(0.0, flow.remaining_mb - flow.rate_mbps * dt);
    }
  }
  fair_clock_ = now;
}

void TransferManager::fair_recompute() {
  fair_advance_to_now();

  // Deliver anything that crossed the finish line while rates were stale.
  std::vector<std::uint64_t> done;
  for (auto& [id, flow] : flows_) {
    if (!flow.latency_pending && flow.src != flow.dst && flow.remaining_mb <= kEpsilonMb) {
      done.push_back(id);
    }
  }
  for (std::uint64_t id : done) finish(id, true);  // finish() re-enters fair_recompute
  if (!done.empty()) return;

  // Solve max-min fairness for the active fluid flows.
  std::vector<std::uint64_t> ids;
  std::vector<net::FlowPath> paths;
  for (auto& [id, flow] : flows_) {
    if (flow.latency_pending || flow.src == flow.dst) continue;
    ids.push_back(id);
    paths.push_back(net::FlowPath{flow.links});
  }
  if (!ids.empty()) {
    std::vector<double> capacity;
    capacity.reserve(topo_.link_count());
    for (const auto& link : topo_.links()) capacity.push_back(link.bandwidth_mbps);
    const auto rates = net::max_min_fair_rates(paths, capacity);
    for (std::size_t i = 0; i < ids.size(); ++i) flows_.at(ids[i]).rate_mbps = rates[i];
  }
  fair_schedule_next_completion();
}

void TransferManager::fair_schedule_next_completion() {
  if (fair_event_armed_) {
    engine_.cancel(fair_event_);
    fair_event_armed_ = false;
  }
  double soonest = kInf;
  for (const auto& [id, flow] : flows_) {
    if (flow.latency_pending || flow.src == flow.dst || flow.rate_mbps <= 0.0) continue;
    soonest = std::min(soonest, flow.remaining_mb / flow.rate_mbps);
  }
  if (!std::isfinite(soonest)) return;
  fair_event_ = engine_.schedule_in(soonest, [this] {
    fair_event_armed_ = false;
    fair_recompute();
  });
  fair_event_armed_ = true;
}

}  // namespace dpjit::grid
