// Mode-agnostic facade of the TransferManager: flow bookkeeping, transfer
// lifecycle entry points and the RateOracle probes. The per-mode machinery
// lives behind the net::NetworkModel seam in models/fluid_fair.cpp and
// models/quantised_fair.cpp.
#include "grid/transfer_manager.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "grid/models/transfer_model_detail.hpp"

namespace dpjit::grid {
namespace {

std::vector<double> link_capacities(const net::Topology& topo) {
  std::vector<double> caps;
  caps.reserve(topo.link_count());
  for (const auto& link : topo.links()) caps.push_back(link.bandwidth_mbps);
  return caps;
}

}  // namespace

TransferManager::TransferManager(sim::Engine& engine, const net::Topology& topo,
                                 const net::Routing& routing, Mode mode, bool track_paths)
    : engine_(engine), topo_(topo), routing_(routing), mode_(mode), track_paths_(track_paths),
      solver_(link_capacities(topo)) {}

std::uint64_t TransferManager::start(NodeId src, NodeId dst, double size_mb,
                                     CompletionFn on_done) {
  assert(size_mb >= 0.0);
  const std::uint64_t id = next_id_++;
  Flow flow;
  flow.src = src;
  flow.dst = dst;
  flow.size_mb = size_mb;
  flow.remaining_mb = size_mb;
  flow.on_done = std::move(on_done);

  if (src == dst) {
    // Loopback: deliver after zero delay (still asynchronously).
    auto [it, ok] = flows_.emplace(id, std::move(flow));
    (void)ok;
    it->second.event = engine_.schedule_in(0.0, [this, id] { finish(id, true); });
    return id;
  }

  const double latency = routing_.latency_s(src, dst);
  if (!std::isfinite(latency)) {
    // Unreachable pair (cannot happen on connected topologies; defensive).
    auto [it, ok] = flows_.emplace(id, std::move(flow));
    (void)ok;
    it->second.event = engine_.schedule_in(0.0, [this, id] { finish(id, false); });
    return id;
  }

  if (mode_ == Mode::kBottleneck) {
    const double bandwidth = routing_.bandwidth_mbps(src, dst);
    if (bandwidth <= 0.0) {
      // Path crosses a zero-capacity link: infinite duration, treat like an
      // unreachable pair instead of scheduling an event at t = +inf.
      auto [it, ok] = flows_.emplace(id, std::move(flow));
      (void)ok;
      it->second.event = engine_.schedule_in(0.0, [this, id] { finish(id, false); });
      return id;
    }
    const double duration = latency + size_mb / bandwidth;
    if (track_paths_) flow.links = routing_.path_links(src, dst);
    auto [it, ok] = flows_.emplace(id, std::move(flow));
    (void)ok;
    it->second.event = engine_.schedule_in(duration, [this, id] { finish(id, true); });
    return id;
  }

  // Contended modes: propagation first, then join the (fluid/frozen) pool -
  // immediately in fluid mode, at the next epoch barrier in quantised mode.
  flow.links = routing_.path_links(src, dst);
  flow.latency_pending = true;
  flows_.emplace(id, std::move(flow));
  if (mode_ == Mode::kQuantisedFair) {
    flows_.at(id).event = engine_.schedule_in(latency, [this, id] { quantised_flow_ready(id); });
  } else {
    flows_.at(id).event = engine_.schedule_in(latency, [this, id] { fair_flow_started(id); });
  }
  return id;
}

void TransferManager::finish(std::uint64_t id, bool success) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  if (it->second.fluid) {
    // Single-flow pool removal is the batch resolve with one element, so the
    // two paths cannot drift apart.
    if (mode_ == Mode::kQuantisedFair) {
      quantised_resolve_batch({id}, success);
    } else {
      fair_resolve_batch({id}, success);
    }
    return;
  }
  CompletionFn cb = std::move(it->second.on_done);
  engine_.cancel(it->second.event);
  if (success) {
    ++completed_;
    delivered_mb_ += it->second.size_mb;
  }
  flows_.erase(it);
  if (cb) cb(success);
}

void TransferManager::node_left(NodeId n) {
  std::vector<std::uint64_t> doomed;
  for (const auto& [id, flow] : flows_) {
    if (flow.src == n || flow.dst == n) doomed.push_back(id);
  }
  if (mode_ == Mode::kFluidFair || mode_ == Mode::kQuantisedFair) {
    // Churn teardown: one batched re-solve for every doomed flow instead of a
    // full recompute per flow; sorted so the callback order is deterministic
    // (the collection above iterates in hash-map order).
    std::sort(doomed.begin(), doomed.end());
    if (mode_ == Mode::kQuantisedFair) {
      quantised_resolve_batch(doomed, false);
    } else {
      fair_resolve_batch(doomed, false);
    }
  } else {
    for (std::uint64_t id : doomed) finish(id, false);
  }
}

bool TransferManager::abort(std::uint64_t id) {
  if (flows_.find(id) == flows_.end()) return false;
  finish(id, false);
  return true;
}

void TransferManager::link_state_changed(LinkId l, bool up) {
  // Probe paths change on failure AND recovery (Routing::set_link_state has
  // already rerouted by contract), so the cache stamp moves either way even
  // though only failures abort transfers below.
  ++link_stamp_;
  if (up) return;  // surviving transfers keep their (still valid) old routes
  std::vector<std::uint64_t> doomed;
  for (const auto& [id, flow] : flows_) {
    if (std::find(flow.links.begin(), flow.links.end(), l) != flow.links.end()) {
      doomed.push_back(id);
    }
  }
  if (doomed.empty()) return;
  std::sort(doomed.begin(), doomed.end());  // hash-map order -> deterministic
  link_aborts_ += doomed.size();
  if (mode_ == Mode::kQuantisedFair) {
    quantised_resolve_batch(doomed, false);
  } else if (mode_ == Mode::kFluidFair) {
    fair_resolve_batch(doomed, false);
  } else {
    for (const std::uint64_t id : doomed) finish(id, false);
  }
}

// --- net::RateOracle --------------------------------------------------------

double TransferManager::predicted_rate_mbps_uncached(NodeId src, NodeId dst) const {
  if (src == dst) return kInf;  // loopback transfers are free
  if (mode_ == Mode::kBottleneck) {
    // No contention in this model: the live rate IS the static path rate.
    return routing_.bandwidth_mbps(src, dst);
  }
  const std::vector<LinkId> links = routing_.path_links(src, dst);
  if (links.empty()) return 0.0;  // unreachable pair (no route)
  return solver_.probe_rate(links);
}

double TransferManager::predicted_rate_mbps_reference(NodeId src, NodeId dst) const {
  if (src == dst) return kInf;  // loopback transfers are free
  if (mode_ == Mode::kBottleneck) {
    return routing_.bandwidth_mbps(src, dst);
  }
  const std::vector<LinkId> links = routing_.path_links(src, dst);
  if (links.empty()) return 0.0;  // unreachable pair (no route)
  return solver_.probe_rate_reference(links);
}

double TransferManager::predicted_rate_mbps(NodeId src, NodeId dst) const {
  if (src == dst) return kInf;  // loopback transfers are free
  if (mode_ == Mode::kBottleneck) {
    // The matrix read is cheaper than any cache lookup and always live.
    return routing_.bandwidth_mbps(src, dst);
  }
  // Stamp check: the cache holds exactly while no flow joined/left the pool,
  // no link changed state, and (quantised mode) no epoch barrier re-froze the
  // rates. Probes themselves never move any stamp, so a ranking pass over
  // hundreds of candidates reuses one solve per distinct pair. The barrier
  // stamp is constant outside quantised mode, so the extra compare costs the
  // fluid path nothing.
  const std::uint64_t solver_stamp = solver_.mutation_stamp();
  if (probe_cache_solver_stamp_ != solver_stamp || probe_cache_link_stamp_ != link_stamp_ ||
      probe_cache_barrier_stamp_ != barrier_stamp_) {
    probe_cache_.clear();
    probe_cache_solver_stamp_ = solver_stamp;
    probe_cache_link_stamp_ = link_stamp_;
    probe_cache_barrier_stamp_ = barrier_stamp_;
  }
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src.get())) << 32) |
      static_cast<std::uint32_t>(dst.get());
  if (const auto it = probe_cache_.find(key); it != probe_cache_.end()) {
    ++probe_cache_hits_;
#ifndef NDEBUG
    // Sampled differential check (every 64th hit): a full per-hit re-probe
    // would make Debug builds as slow as the uncached path; the dedicated
    // probe_cache test asserts bit-equality at EVERY step instead.
    if ((probe_cache_hits_ & 63u) == 0) {
      assert(it->second == predicted_rate_mbps_uncached(src, dst) &&
             "probe cache diverged from a fresh solve");
    }
#endif
    return it->second;
  }
  ++probe_cache_misses_;
  const double rate = predicted_rate_mbps_uncached(src, dst);
  probe_cache_.emplace(key, rate);
  return rate;
}

std::vector<double> TransferManager::probe_rates(
    const std::vector<std::pair<NodeId, NodeId>>& pairs) const {
  std::vector<double> rates;
  rates.reserve(pairs.size());
  for (const auto& [src, dst] : pairs) rates.push_back(predicted_rate_mbps(src, dst));
  return rates;
}

double TransferManager::expected_transfer_time_s(NodeId src, NodeId dst, double size_mb) const {
  if (src == dst) return 0.0;
  const double latency = routing_.latency_s(src, dst);
  if (!std::isfinite(latency)) return kInf;  // skip the probe entirely
  if (size_mb <= 0.0) return latency;
  return net::transfer_time_from_rate(latency, predicted_rate_mbps(src, dst), size_mb);
}

}  // namespace dpjit::grid
