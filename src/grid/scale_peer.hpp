// Node-local state of one simulated peer in the sharded scale model.
//
// The shard-determinism contract of exp::run_scale_model requires that a
// message handler touches ONLY the destination peer's state (plus the
// engine's outbox): two peers never share mutable state, so shards can drive
// their peers concurrently without locks. Everything order-sensitive about a
// peer — its RNG stream, its contact list, its event-order hash — lives
// here, and all of it evolves purely from the peer's own totally-ordered
// event sequence.
#pragma once

#include <cstdint>
#include <vector>

#include "gossip/summary.hpp"
#include "util/rng.hpp"

namespace dpjit::grid {

/// One peer of the scale model. Plain state; behavior lives in
/// exp/scale_model.cpp so the struct stays trivially testable.
struct ScalePeer {
  /// Per-peer fork of the experiment seed: draws happen only inside this
  /// peer's own events, so the stream is independent of the shard layout.
  util::Rng rng{0};

  gossip::PeerSummary summary;
  /// Gossip/transfer partners (peer ids); pruned by churn notices and
  /// re-extended by rejoin announcements.
  std::vector<std::uint32_t> contacts;

  double capacity_mips = 1.0;
  bool alive = true;

  // --- counters folded into the scenario digest (integers: exact sums) ---
  std::uint64_t tasks_completed = 0;
  std::uint64_t transfers_completed = 0;
  std::uint64_t mb_transferred = 0;
  std::uint64_t gossip_sent = 0;
  std::uint64_t gossip_merged = 0;
  std::uint64_t churn_departures = 0;
  std::uint64_t churn_rejoins = 0;
  /// Messages that arrived while this peer was departed.
  std::uint64_t dropped_messages = 0;

  /// FNV-1a fold of (event kind, payload) per handled event, in handling
  /// order: equality across shard counts proves the peer saw the SAME events
  /// in the SAME order, not merely commutatively-equal totals.
  std::uint64_t order_hash = 1469598103934665603ULL;

  /// Per-sender message counter; combined with the peer id it yields the
  /// globally unique (time-tie-breaking) message keys sim::ShardEngine needs.
  std::uint64_t msg_seq = 0;

  /// Mixes one handled event into order_hash.
  void fold(std::uint64_t kind, std::uint64_t payload) {
    constexpr std::uint64_t kPrime = 1099511628211ULL;
    order_hash = (order_hash ^ kind) * kPrime;
    order_hash = (order_hash ^ payload) * kPrime;
  }

  /// True when `peer` is in the contact list (k is tiny; linear scan).
  [[nodiscard]] bool knows(std::uint32_t peer) const {
    for (const std::uint32_t c : contacts) {
      if (c == peer) return true;
    }
    return false;
  }

  /// Removes `peer` from the contacts, preserving order (determinism: the
  /// contact list's order feeds future RNG-indexed picks).
  void forget(std::uint32_t peer) {
    for (std::size_t i = 0; i < contacts.size(); ++i) {
      if (contacts[i] == peer) {
        contacts.erase(contacts.begin() + static_cast<std::ptrdiff_t>(i));
        return;
      }
    }
  }
};

}  // namespace dpjit::grid
