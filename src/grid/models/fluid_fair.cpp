// Fluid max-min fair sharing (Mode::kFluidFair) - the zero-lookahead live
// model. Pure code motion from the pre-seam transfer_manager.cpp: every path
// here is pinned bit-identical by the 29 pre-quantised golden digests and the
// randomized fluid differential suite (tests/grid/fluid_differential_test).
#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "grid/models/transfer_model_detail.hpp"
#include "grid/transfer_manager.hpp"

namespace dpjit::grid {

using detail::kEpsilonMb;

void TransferManager::fair_flow_started(std::uint64_t id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  Flow& flow = it->second;
  assert(flow.latency_pending && !flow.fluid);
  flow.latency_pending = false;
  // The latency event is firing right now: invalidate the handle so finish()
  // never cancels a stale one (the slot may be reused by an unrelated event).
  flow.event = sim::EventQueue::kInvalidHandle;
  // Sync the fluid clock BEFORE the flow joins the pool. With an empty pool
  // nothing accrues, so this is what keeps a manager whose first fluid flow
  // starts at t > 0 from integrating a bogus [0, now] window later on.
  fair_advance_to_now();
  if (flow.remaining_mb <= kEpsilonMb) {
    finish(id, true);
    return;
  }
  flow.fluid = true;
  // The Flow's address is stable (node-based unordered_map), so it rides
  // along as the solver's user cookie: every future rate update for this
  // flow comes back with the pointer attached, sparing a hash lookup per
  // re-solved flow on the hottest path in fair mode.
  solver_.add(id, flow.links, &flow);
  fair_apply_updated_rates();
  fair_abort_stalled();
  fair_schedule_next_completion();
}

void TransferManager::fair_abort_stalled() {
  // In practice only a newly added flow crossing a zero-capacity link gets
  // rate <= 0 (removals never lower surviving rates), but the scan over the
  // re-solved component is cheap, and running it after every mutation makes
  // the no-zero-rate-fluid-flow invariant unconditional.
  std::vector<std::uint64_t> stalled;
  for (const auto& u : solver_.updated()) {
    if (u.rate <= 0.0) stalled.push_back(u.id);
  }
  if (stalled.empty()) return;
  std::sort(stalled.begin(), stalled.end());
  fair_resolve_batch(stalled, false);  // recursion bounded: each pass removes flows
}

void TransferManager::fair_advance_to_now() {
  const SimTime now = engine_.now();
  const double dt = now - fair_clock_;
  if (dt > 0.0) {
    for (auto& [id, flow] : flows_) {
      if (!flow.fluid) continue;
      flow.remaining_mb = std::max(0.0, flow.remaining_mb - flow.rate_mbps * dt);
    }
  }
  fair_clock_ = now;
}

void TransferManager::fair_apply_updated_rates() {
  // Callers advance the fluid clock before any re-solve, so `now` is the
  // instant the new rates take effect and remaining_mb is current: the
  // projected finish below is exactly the `now + remaining / rate` the old
  // brute-force arming scan would compute at this moment.
  assert(fair_clock_ == engine_.now());
  const SimTime now = engine_.now();
  for (const auto& u : solver_.updated()) {
    // The cookie is the Flow itself (attached at solver_.add time); removed
    // flows leave the solver before the re-solve, so every entry here names
    // a live flow and the pointer cannot dangle.
    Flow& flow = *static_cast<Flow*>(u.user);
    assert(flows_.find(u.id) != flows_.end() && &flows_.find(u.id)->second == &flow &&
           flow.fluid);
    flow.rate_mbps = u.rate;
    if (u.rate > 0.0) {
      flow.ci_slot = next_completion_.upsert(u.id, now + flow.remaining_mb / u.rate, flow.ci_slot);
    } else {
      // Saturated path: fair_abort_stalled() resolves it right after this.
      next_completion_.erase(u.id);
      flow.ci_slot = CompletionIndex::kNoSlot;
    }
  }
}

void TransferManager::fair_resolve_batch(const std::vector<std::uint64_t>& ids, bool success) {
  assert(mode_ == Mode::kFluidFair);
  if (ids.empty()) return;
  fair_advance_to_now();
  std::vector<std::uint64_t> fluid_ids;
  std::vector<CompletionFn> callbacks;
  fluid_ids.reserve(ids.size());
  callbacks.reserve(ids.size());
  for (const std::uint64_t id : ids) {
    auto it = flows_.find(id);
    assert(it != flows_.end());
    Flow& flow = it->second;
    if (flow.fluid) {
      assert(flow.event == sim::EventQueue::kInvalidHandle);
      fluid_ids.push_back(id);
      next_completion_.erase(id);
    } else {
      // Latency-phase or loopback flow (node teardown): kill its timer.
      engine_.cancel(flow.event);
    }
    if (success) {
      ++completed_;
      delivered_mb_ += flow.size_mb;
    }
    callbacks.push_back(std::move(flow.on_done));
    flows_.erase(it);
  }
  if (!fluid_ids.empty()) {
    solver_.remove_batch(fluid_ids);
    fair_apply_updated_rates();
    fair_abort_stalled();
  }
  fair_schedule_next_completion();
  // Callbacks fire last, against fully consistent state: they may re-enter
  // start()/abort() (the grid restarts lost input transfers from the home
  // node, for example).
  for (auto& cb : callbacks) {
    if (cb) cb(success);
  }
}

void TransferManager::fair_schedule_next_completion() {
  if (fair_event_armed_) {
    engine_.cancel(fair_event_);
    fair_event_armed_ = false;
  }
  if (next_completion_.empty()) return;
  // The index orders flows by their projected *absolute* finish; the armed
  // delay is recomputed from the eagerly advanced remaining volume with the
  // identical `remaining / rate` expression the old O(active) scan evaluated,
  // so the event lands on the bit-identical time (golden digests depend on
  // this; the debug block below cross-checks it on every arming). Two flows
  // whose delays differ by less than one ulp of the absolute clock collapse
  // onto the same index key - rounding is monotone, so a true-order
  // difference can only become a key tie, never an inversion - and the tie
  // is broken here at full relative precision over the tied subtree.
  tie_scratch_.clear();
  next_completion_.collect_min_ties(tie_scratch_);
  double soonest = kInf;
  for (const std::uint64_t fid : tie_scratch_) {
    const auto it = flows_.find(fid);
    assert(it != flows_.end() && it->second.fluid);
    assert(it->second.rate_mbps > 0.0 && "zero-rate fluid flow survived the stall guard");
    soonest = std::min(soonest, it->second.remaining_mb / it->second.rate_mbps);
  }
#ifndef NDEBUG
  double scan = kInf;
  for (const auto& [id, flow] : flows_) {
    if (!flow.fluid) continue;
    assert(flow.rate_mbps > 0.0);
    scan = std::min(scan, flow.remaining_mb / flow.rate_mbps);
  }
  assert(scan == soonest && "CompletionIndex diverged from the brute-force scan");
#endif
  if (!std::isfinite(soonest)) return;  // defensive: mirrors the old scan guard
  fair_event_ = engine_.schedule_in(soonest, [this] {
    fair_event_armed_ = false;
    fair_tick();
  });
  fair_event_armed_ = true;
}

void TransferManager::fair_tick() {
  fair_advance_to_now();
  std::vector<std::uint64_t> done;
  const SimTime now = engine_.now();
  for (const auto& [id, flow] : flows_) {
    if (!flow.fluid) continue;
    // Delivered - or so close that the completion event could not advance
    // simulated time: with a sub-ulp remaining/rate, re-arming would fire at
    // exactly `now` again with dt == 0 and spin forever.
    if (flow.remaining_mb <= kEpsilonMb ||
        now + flow.remaining_mb / flow.rate_mbps <= now) {
      done.push_back(id);
    }
  }
  std::sort(done.begin(), done.end());
  if (done.empty()) {
    // Numerical under-shoot: re-arm and let the frontier catch up. Every
    // surviving flow's completion lies measurably past `now` (the sub-ulp
    // cases were just delivered), so the next tick makes progress.
    fair_schedule_next_completion();
    return;
  }
  fair_resolve_batch(done, true);
}

}  // namespace dpjit::grid
