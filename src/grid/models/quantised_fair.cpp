// Epoch-quantised max-min fair sharing (Mode::kQuantisedFair) - the
// lookahead-compatible contended model (ROADMAP item 1).
//
// Contract with the barrier driver (core/workflow_shard.cpp):
//  - The manager never schedules completion events. Flow volume is advanced
//    LAZILY, once per epoch, by per-shard ledgers owned by the driver
//    (the ROADMAP item 3 eager-advance residue, fixed for this mode only).
//  - quantised_barrier() runs at every epoch barrier t = kE with the world
//    engine already advanced to kE. It admits the propagation-complete joins
//    queued since the last barrier, re-freezes every active flow's rate from
//    the solver, aborts barrier-stalled flows and hands back the id-sorted
//    delta (joins / rate changes / cancels) the ledgers apply for [kE,(k+1)E).
//  - Aborts between barriers (churn, link failure, task failure) fire their
//    callbacks immediately and leave the solver immediately, but surviving
//    flows' FROZEN rates do not move until the next barrier; the aborted ids
//    are queued as ledger cancels. A drain report racing such an abort is
//    skipped by the flows_ membership check in quantised_deliver().
//  - quantised_deliver() runs at a barrier with ledger-detected drains,
//    globally (finish_s, id)-sorted by the driver so the callback order is
//    invariant to how the drained flows partition across shards.
//
// Everything here is driven by world-engine events and barrier closures on
// shard 0 only; the parallel shards touch nothing but their own ledgers.
#include <algorithm>
#include <cassert>
#include <vector>

#include "grid/models/transfer_model_detail.hpp"
#include "grid/transfer_manager.hpp"

namespace dpjit::grid {

using detail::kEpsilonMb;

namespace {
/// Admission sentinel: marks a flow that joined the pool at the current
/// barrier, before its first frozen rate is read back from the solver.
constexpr double kUnratedSentinel = -1.0;
}  // namespace

void TransferManager::quantised_flow_ready(std::uint64_t id) {
  assert(mode_ == Mode::kQuantisedFair);
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  Flow& flow = it->second;
  assert(flow.latency_pending && !flow.fluid);
  flow.latency_pending = false;
  // The latency event is firing right now: invalidate the handle so finish()
  // never cancels a stale, potentially reused one.
  flow.event = sim::EventQueue::kInvalidHandle;
  flow.join_pending = true;
  pending_joins_.push_back(id);
}

QuantisedBarrierDelta TransferManager::quantised_barrier() {
  assert(mode_ == Mode::kQuantisedFair);
  QuantisedBarrierDelta delta;
  // The stamp moves FIRST: any probe a barrier-time callback issues below
  // must see the post-barrier flow set, never a pre-barrier cached answer.
  ++barrier_stamp_;

  // 1. Admit the propagation-complete joins in id order. The queue may hold
  // stale ids (flows aborted before admission); the join_pending flag is the
  // authority. Zero-size flows are delivered right away instead of occupying
  // solver capacity for an epoch.
  std::sort(pending_joins_.begin(), pending_joins_.end());
  std::vector<std::uint64_t> zero_size;
  for (const std::uint64_t id : pending_joins_) {
    auto it = flows_.find(id);
    if (it == flows_.end() || !it->second.join_pending) continue;
    Flow& flow = it->second;
    flow.join_pending = false;
    if (flow.remaining_mb <= kEpsilonMb) {
      zero_size.push_back(id);
      continue;
    }
    flow.fluid = true;
    flow.rate_mbps = kUnratedSentinel;
    solver_.add(id, flow.links, &flow);
  }
  pending_joins_.clear();
  // Zero-size deliveries may re-enter start() (successor staging) and even
  // abort admitted flows (task-failure cascades); both are safe here - new
  // flows sit in the propagation phase until the next barrier, and aborted
  // ones simply vanish from flows_ before the rate collection below.
  for (const std::uint64_t id : zero_size) finish(id, true);

  // 2. Re-freeze every active flow's rate for the coming epoch. Iteration is
  // hash order, so collect and sort by id before classifying - the delta must
  // be byte-identical run to run for the golden digests to hold.
  std::vector<std::uint64_t> active;
  active.reserve(flows_.size());
  for (const auto& [id, flow] : flows_) {
    if (flow.fluid) active.push_back(id);
  }
  std::sort(active.begin(), active.end());
  std::vector<std::uint64_t> stalled;
  for (const std::uint64_t id : active) {
    Flow& flow = flows_.at(id);
    const double rate = solver_.rate(id);
    if (rate <= 0.0) {
      // Saturated/zero-capacity path: the flow could never drain. Abort at
      // the barrier (the quantised analogue of the fluid stall guard).
      stalled.push_back(id);
      continue;
    }
    if (flow.rate_mbps == kUnratedSentinel) {
      delta.joins.push_back(QuantisedJoin{id, flow.src, flow.remaining_mb, rate});
    } else if (rate != flow.rate_mbps) {
      delta.rate_changes.push_back(QuantisedRateChange{id, rate});
    }
    flow.rate_mbps = rate;
  }
  if (!stalled.empty()) quantised_resolve_batch(stalled, false);

  // 3. Ship the cancels accumulated since the last barrier LAST: stall (and
  // zero-size) callbacks above may have aborted flows already emitted into
  // `joins`/`rate_changes`, and the ledgers apply joins -> rate changes ->
  // cancels, so a same-barrier cancel always wins.
  delta.cancels = std::move(pending_cancels_);
  pending_cancels_.clear();
  std::sort(delta.cancels.begin(), delta.cancels.end());
  return delta;
}

void TransferManager::quantised_resolve_batch(const std::vector<std::uint64_t>& ids,
                                              bool success) {
  assert(mode_ == Mode::kQuantisedFair);
  if (ids.empty()) return;
  std::vector<std::uint64_t> pool_ids;
  std::vector<CompletionFn> callbacks;
  pool_ids.reserve(ids.size());
  callbacks.reserve(ids.size());
  for (const std::uint64_t id : ids) {
    auto it = flows_.find(id);
    assert(it != flows_.end());
    Flow& flow = it->second;
    if (flow.fluid) {
      assert(flow.event == sim::EventQueue::kInvalidHandle);
      pool_ids.push_back(id);
      // The ledger owning this flow learns about the abort at the next
      // barrier; a drain it reports in the meantime is skipped by the
      // membership check in quantised_deliver().
      pending_cancels_.push_back(id);
    } else {
      // Latency-phase, pending-join or loopback flow: kill its timer (a
      // no-op for pending joins, whose handle is already invalidated; the
      // stale queue entry is skipped at admission).
      engine_.cancel(flow.event);
    }
    if (success) {
      ++completed_;
      delivered_mb_ += flow.size_mb;
    }
    callbacks.push_back(std::move(flow.on_done));
    flows_.erase(it);
  }
  // One batched removal; the re-solve result is deliberately NOT applied -
  // surviving flows keep their frozen rates until the next barrier reads the
  // solver back. (Removals never lower surviving rates, so no stall guard is
  // needed here either.)
  if (!pool_ids.empty()) solver_.remove_batch(pool_ids);
  // Callbacks fire last, against fully consistent state: they may re-enter
  // start()/abort() (the grid restarts lost input transfers from the home
  // node, for example).
  for (auto& cb : callbacks) {
    if (cb) cb(success);
  }
}

void TransferManager::quantised_deliver(const std::vector<QuantisedDone>& done) {
  assert(mode_ == Mode::kQuantisedFair);
  std::vector<std::uint64_t> pool_ids;
  std::vector<CompletionFn> callbacks;
  pool_ids.reserve(done.size());
  callbacks.reserve(done.size());
  for (const QuantisedDone& d : done) {
    auto it = flows_.find(d.id);
    // Aborted between drain detection and delivery (the pipeline races churn
    // by design): the abort already fired its callback and left the solver.
    if (it == flows_.end() || !it->second.fluid) continue;
    Flow& flow = it->second;
    pool_ids.push_back(d.id);
    ++completed_;
    delivered_mb_ += flow.size_mb;
    callbacks.push_back(std::move(flow.on_done));
    flows_.erase(it);
  }
  // Frozen-rate semantics again: remove in one batch, apply nothing.
  if (!pool_ids.empty()) solver_.remove_batch(pool_ids);
  for (auto& cb : callbacks) {
    if (cb) cb(true);
  }
}

std::size_t TransferManager::quantised_active() const {
  std::size_t n = 0;
  for (const auto& [id, flow] : flows_) n += flow.fluid ? 1 : 0;
  return n;
}

std::size_t TransferManager::quantised_pending_joins() const {
  std::size_t n = 0;
  for (const auto& [id, flow] : flows_) n += flow.join_pending ? 1 : 0;
  return n;
}

}  // namespace dpjit::grid
