// Shared internals of the TransferManager's per-mode model files
// (transfer_manager.cpp, models/fluid_fair.cpp, models/quantised_fair.cpp).
#pragma once

namespace dpjit::grid::detail {

/// Remaining volume below this is considered delivered (numerical slack).
/// One definition for every mode: the quantised ledgers must agree with the
/// fluid pool on what "drained" means or the epoch->0 convergence breaks.
constexpr double kEpsilonMb = 1e-9;

}  // namespace dpjit::grid::detail
