// Node churn model (paper Section IV.B, dynamic environment).
//
// The dynamic factor df is the ratio of churning nodes to the total node count
// per scheduling interval: with df = 0.1 and n = 1000, every interval 100
// alive dynamic nodes disconnect and 100 departed dynamic nodes rejoin.
// Stable nodes (the home nodes holding workflows) never churn - the paper
// excludes home-node failure because checkpointing is out of scope.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/periodic.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace dpjit::grid {

class ChurnModel {
 public:
  struct Params {
    /// Fraction of the total node count that leaves AND joins per interval.
    double dynamic_factor = 0.0;
    /// Nodes [0, stable_count) never churn.
    int stable_count = 0;
    /// Churn step period in seconds (paper: the task scheduling interval).
    double interval_s = 900.0;
    /// Correlated-churn extension: every `wave_every`-th step is a departure
    /// wave taking out `wave_multiplier` x the base count at once (a campus
    /// power cut, a network partition). Joins always run at the base rate, so
    /// the population drains sharply on a wave and recovers over the
    /// following steps. 0 = the paper's uncorrelated churn.
    int wave_every = 0;
    /// Departure scaling applied on wave steps (>= 1).
    double wave_multiplier = 4.0;
  };

  using AliveFn = std::function<bool(NodeId)>;
  using ChurnFn = std::function<void(NodeId)>;

  /// `on_leave` / `on_join` perform the actual state changes (the system owns
  /// aliveness); the model only decides who churns and when.
  ChurnModel(sim::Engine& engine, Params params, int node_count, util::Rng rng,
             AliveFn alive, ChurnFn on_leave, ChurnFn on_join);

  /// Starts periodic churn steps (no-op when dynamic_factor == 0).
  void start();
  void stop();

  /// Executes one churn step now (tests drive this directly).
  void step();

  [[nodiscard]] bool is_stable(NodeId n) const { return n.get() < params_.stable_count; }
  [[nodiscard]] std::uint64_t total_leaves() const { return leaves_; }
  [[nodiscard]] std::uint64_t total_joins() const { return joins_; }
  [[nodiscard]] std::uint64_t total_steps() const { return steps_; }

 private:
  sim::Engine& engine_;
  Params params_;
  int n_;
  util::Rng rng_;
  AliveFn alive_;
  ChurnFn on_leave_;
  ChurnFn on_join_;
  std::unique_ptr<sim::PeriodicProcess> process_;
  std::uint64_t leaves_ = 0;
  std::uint64_t joins_ = 0;
  std::uint64_t steps_ = 0;
};

}  // namespace dpjit::grid
