#include "grid/completion_index.hpp"

#include <cassert>
#include <cmath>

#include "util/types.hpp"

namespace dpjit::grid {

std::uint32_t CompletionIndex::upsert(std::uint64_t id, double finish_s, std::uint32_t hint) {
  // A hint is only trusted when it still names a live entry for this very
  // flow: erase() parks freed slots with heap_pos == kNpos, and a recycled
  // slot carries the new owner's id, so both staleness modes are caught.
  if (hint != kNoSlot && hint < slots_.size() && slots_[hint].heap_pos != kNpos &&
      slots_[hint].id == id) {
    const double old_key = slots_[hint].key;
    slots_[hint].key = finish_s;
    if (finish_s < old_key) {
      sift_up(slots_[hint].heap_pos);
    } else if (finish_s > old_key) {
      sift_down(slots_[hint].heap_pos);
    }
    return hint;
  }
  const auto it = slot_of_.find(id);
  if (it != slot_of_.end()) {
    const std::uint32_t slot = it->second;
    const double old_key = slots_[slot].key;
    slots_[slot].key = finish_s;
    if (finish_s < old_key) {
      sift_up(slots_[slot].heap_pos);
    } else if (finish_s > old_key) {
      sift_down(slots_[slot].heap_pos);
    }
    return slot;
  }
  std::uint32_t slot;
  if (free_head_ != kNpos) {
    slot = free_head_;
    free_head_ = slots_[slot].next_free;
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[slot].id = id;
  slots_[slot].key = finish_s;
  slots_[slot].next_free = kNpos;
  slot_of_.emplace(id, slot);
  heap_.push_back(slot);
  slots_[slot].heap_pos = static_cast<std::uint32_t>(heap_.size() - 1);
  sift_up(heap_.size() - 1);
  return slot;
}

bool CompletionIndex::erase(std::uint64_t id) {
  const auto it = slot_of_.find(id);
  if (it == slot_of_.end()) return false;
  const std::uint32_t slot = it->second;
  const std::size_t pos = slots_[slot].heap_pos;
  slot_of_.erase(it);

  const std::uint32_t last = heap_.back();
  heap_.pop_back();
  if (last != slot) {
    place(pos, last);
    // The moved entry may need to travel either way relative to its new
    // neighborhood; only one of the two sifts will actually move it.
    sift_up(pos);
    sift_down(slots_[last].heap_pos);
  }
  slots_[slot].heap_pos = kNpos;
  slots_[slot].next_free = free_head_;
  free_head_ = slot;
  return true;
}

CompletionIndex::Entry CompletionIndex::top() const {
  assert(!heap_.empty() && "CompletionIndex::top on empty index");
  const Slot& s = slots_[heap_.front()];
  return Entry{s.id, s.key};
}

void CompletionIndex::collect_min_ties(std::vector<std::uint64_t>& out) const {
  if (heap_.empty()) return;
  const double kmin = slots_[heap_.front()].key;
  // 64 ulps of headroom above the minimum: keys are stamped at different
  // instants, so a stale key can sit a few ulps on the wrong side of a
  // fresher one. Widening the band only ever moves the caller's recomputed
  // minimum closer to the brute-force scan (the band is a superset of the
  // exact-tie set and a subset of all flows).
  double bound = kmin;
  for (int i = 0; i < 64; ++i) bound = std::nextafter(bound, kInf);
  // DFS over the in-band subtree: a node's key can only be in band if its
  // parent's is (min-heap invariant), so the walk prunes hard. The scratch
  // stack is a member so the common single-entry case never allocates.
  dfs_scratch_.clear();
  dfs_scratch_.push_back(0);
  while (!dfs_scratch_.empty()) {
    const std::size_t pos = dfs_scratch_.back();
    dfs_scratch_.pop_back();
    const Slot& s = slots_[heap_[pos]];
    if (s.key > bound) continue;
    out.push_back(s.id);
    const std::size_t left = 2 * pos + 1;
    if (left < heap_.size()) dfs_scratch_.push_back(left);
    if (left + 1 < heap_.size()) dfs_scratch_.push_back(left + 1);
  }
}

void CompletionIndex::clear() {
  for (const std::uint32_t slot : heap_) {
    slots_[slot].heap_pos = kNpos;
    slots_[slot].next_free = free_head_;
    free_head_ = slot;
  }
  heap_.clear();
  slot_of_.clear();
}

void CompletionIndex::sift_up(std::size_t pos) {
  const std::uint32_t moving = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 2;
    if (!before(moving, heap_[parent])) break;
    place(pos, heap_[parent]);
    pos = parent;
  }
  place(pos, moving);
}

void CompletionIndex::sift_down(std::size_t pos) {
  const std::uint32_t moving = heap_[pos];
  const std::size_t n = heap_.size();
  while (true) {
    std::size_t child = 2 * pos + 1;
    if (child >= n) break;
    if (child + 1 < n && before(heap_[child + 1], heap_[child])) ++child;
    if (!before(heap_[child], moving)) break;
    place(pos, heap_[child]);
    pos = child;
  }
  place(pos, moving);
}

}  // namespace dpjit::grid
