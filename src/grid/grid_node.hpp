// Runtime state of one peer node in its *resource* role: the non-preemptive
// single CPU and the ready set RDS(p_r) of dispatched tasks (paper Section II).
//
// Each ready task carries the priority attributes the second scheduling phase
// needs (Algorithm 2): the task's rest-path makespan, its workflow's remaining
// makespan, the DSDF slack and the sufferage value - all stamped by the first
// phase at dispatch time, as the paper prescribes ("the task will be migrated
// to the node together with its rest path makespan and its workflow's
// makespan").
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/types.hpp"

namespace dpjit::grid {

/// A task waiting (or running) in a resource node's ready set.
struct ReadyTask {
  TaskRef ref;
  /// Task load in MI (execution time on this node = load / capacity).
  double load_mi = 0.0;
  /// Rest-path makespan stamped at dispatch (phase-2 tie-break, DHEFT order).
  double rpm = 0.0;
  /// The workflow's remaining makespan ms(f) stamped at dispatch (DSMF order).
  double wf_makespan = 0.0;
  /// DSDF "deadline": ms(f) - RPM(t), smaller = more critical.
  double slack = 0.0;
  /// Sufferage value stamped at dispatch (LSF order).
  double sufferage = 0.0;
  /// When the dispatch message reached this node.
  SimTime arrived_at = kNoTime;
  /// Monotone arrival sequence number (FCFS order).
  std::uint64_t arrival_seq = 0;
  /// Input transfers (image + dependent data) still in flight.
  int pending_inputs = 0;
  /// When the last input arrived; kNoTime while pending_inputs > 0.
  SimTime data_ready_at = kNoTime;
};

/// One peer node's resource-role state. The scheduler role (workflow table,
/// schedule points) lives in core::GridSystem; gossip state lives in the
/// gossip service. Aliveness is owned by the system and mirrored here.
class GridNode {
 public:
  GridNode(NodeId id, double capacity_mips);

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] double capacity_mips() const { return capacity_; }
  [[nodiscard]] bool alive() const { return alive_; }
  void set_alive(bool alive) { alive_ = alive; }

  /// --- ready set (RDS) ---

  /// Adds a dispatched task. Requires no duplicate TaskRef.
  void add_ready(ReadyTask task);

  /// Looks up a ready task; nullptr when absent.
  [[nodiscard]] ReadyTask* find_ready(TaskRef ref);
  [[nodiscard]] const ReadyTask* find_ready(TaskRef ref) const;

  /// Removes a ready task (when it starts running or fails). False if absent.
  bool remove_ready(TaskRef ref);

  [[nodiscard]] const std::vector<ReadyTask>& ready() const { return ready_; }

  /// Tasks whose inputs have all arrived: the phase-2 candidate set.
  [[nodiscard]] std::vector<const ReadyTask*> data_complete() const;

  /// Clears the ready set, returning the dropped tasks (node departure).
  std::vector<ReadyTask> drain_ready();

  /// --- CPU ---

  [[nodiscard]] bool busy() const { return running_.has_value(); }
  [[nodiscard]] const ReadyTask* running() const {
    return running_ ? &*running_ : nullptr;
  }

  /// Moves a data-complete ready task onto the CPU. Requires !busy() and the
  /// task present with no pending inputs. Returns execution duration (s).
  double start_running(TaskRef ref, SimTime now);

  /// Completes the running task; returns it. Requires busy().
  ReadyTask finish_running();

  /// Aborts the running task (node death); returns it if there was one.
  std::optional<ReadyTask> abort_running();

  /// --- load (paper Section II.B: l_r) ---

  /// Total load: queued ready tasks at full load plus the *remaining* load of
  /// the running task at time `now`. This is the l_r that gossip advertises
  /// and that R(tau, p_r) = l_r / c_r is computed from.
  [[nodiscard]] double total_load_mi(SimTime now) const;

 private:
  NodeId id_;
  double capacity_;
  bool alive_ = true;
  std::vector<ReadyTask> ready_;
  std::optional<ReadyTask> running_;
  SimTime run_started_ = kNoTime;
  SimTime run_finishes_ = kNoTime;
};

}  // namespace dpjit::grid
