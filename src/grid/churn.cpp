#include "grid/churn.hpp"

#include <algorithm>
#include <stdexcept>

namespace dpjit::grid {

ChurnModel::ChurnModel(sim::Engine& engine, Params params, int node_count, util::Rng rng,
                       AliveFn alive, ChurnFn on_leave, ChurnFn on_join)
    : engine_(engine),
      params_(params),
      n_(node_count),
      rng_(rng),
      alive_(std::move(alive)),
      on_leave_(std::move(on_leave)),
      on_join_(std::move(on_join)) {
  if (params_.dynamic_factor < 0.0 || params_.dynamic_factor > 1.0) {
    throw std::invalid_argument("ChurnModel: dynamic_factor in [0,1]");
  }
  if (params_.stable_count < 0 || params_.stable_count > node_count) {
    throw std::invalid_argument("ChurnModel: stable_count in [0,n]");
  }
  if (params_.interval_s <= 0.0) throw std::invalid_argument("ChurnModel: interval > 0");
  if (params_.wave_every < 0) throw std::invalid_argument("ChurnModel: wave_every >= 0");
  if (params_.wave_every > 0 && params_.wave_multiplier < 1.0) {
    throw std::invalid_argument("ChurnModel: wave_multiplier >= 1");
  }
}

void ChurnModel::start() {
  if (params_.dynamic_factor <= 0.0) return;
  process_ = std::make_unique<sim::PeriodicProcess>(
      engine_, engine_.now() + params_.interval_s, params_.interval_s,
      [this](std::uint64_t) { step(); });
  process_->start();
}

void ChurnModel::stop() {
  if (process_) process_->stop();
}

void ChurnModel::step() {
  const auto churn_count = static_cast<std::size_t>(params_.dynamic_factor * n_);
  if (churn_count == 0) return;
  ++steps_;

  // On a correlated wave step, departures scale up while joins keep the base
  // rate (mass outage, gradual recovery). The cast keeps leave_target exact
  // for integer multipliers.
  std::size_t leave_target = churn_count;
  if (params_.wave_every > 0 && steps_ % static_cast<std::uint64_t>(params_.wave_every) == 0) {
    leave_target = static_cast<std::size_t>(params_.wave_multiplier *
                                            static_cast<double>(churn_count));
  }

  std::vector<NodeId> alive_dynamic;
  std::vector<NodeId> dead_dynamic;
  for (int i = params_.stable_count; i < n_; ++i) {
    const NodeId id{i};
    (alive_(id) ? alive_dynamic : dead_dynamic).push_back(id);
  }

  // Departures first, then joins: the paper churns both directions per
  // interval, keeping the population roughly constant.
  rng_.shuffle(alive_dynamic);
  const std::size_t leave_n = std::min(leave_target, alive_dynamic.size());
  for (std::size_t i = 0; i < leave_n; ++i) {
    on_leave_(alive_dynamic[i]);
    ++leaves_;
  }
  rng_.shuffle(dead_dynamic);
  const std::size_t join_n = std::min(churn_count, dead_dynamic.size());
  for (std::size_t i = 0; i < join_n; ++i) {
    on_join_(dead_dynamic[i]);
    ++joins_;
  }
}

}  // namespace dpjit::grid
