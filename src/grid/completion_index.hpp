// Incremental next-completion index for the fair-sharing transfer manager.
//
// In fluid mode every flow progresses linearly between rate re-solves, so its
// projected absolute completion time is a constant of the current rate
// assignment: finish = t_solve + remaining(t_solve) / rate. The transfer
// manager used to find the next completion with an O(active) scan over every
// fluid flow after every mutation; this index keeps the projections in a
// slab-backed min-heap instead, invalidated per re-solved bottleneck
// component: only the flows whose rate the FairShareSolver actually updated
// get their entries re-keyed, everything else stays put, and the next
// completion is a top() peek.
//
// Ordering is (finish estimate, flow id) lexicographic, so ties on the key
// are deterministic regardless of insertion history.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace dpjit::grid {

class CompletionIndex {
 public:
  struct Entry {
    std::uint64_t id = 0;
    double finish_s = 0.0;
  };

  /// Sentinel slot handle: always an invalid hint for upsert().
  static constexpr std::uint32_t kNoSlot = 0xffffffffU;

  /// Inserts the flow or re-keys an existing entry to `finish_s`. Returns the
  /// slab slot holding the entry; callers that re-key the same flow after
  /// every rate re-solve can pass it back as `hint` to skip the id hash
  /// lookup. A stale hint (freed slot, or slab slot recycled by another flow)
  /// is detected and falls back to the lookup, so any remembered value is
  /// safe to pass.
  std::uint32_t upsert(std::uint64_t id, double finish_s, std::uint32_t hint = kNoSlot);

  /// Removes the flow's entry; false when absent (safe no-op).
  bool erase(std::uint64_t id);

  [[nodiscard]] bool contains(std::uint64_t id) const { return slot_of_.count(id) > 0; }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// The flow with the smallest (finish_s, id). Requires !empty().
  [[nodiscard]] Entry top() const;

  /// Appends every id whose key lies within a few ulps of the minimum key to
  /// `out`. Projected finishes are absolute times stamped at each flow's last
  /// rate change, so (a) two flows whose completion delays differ by less
  /// than one ulp of the clock collapse onto the same key, and (b) a flow's
  /// stored key can drift from its freshly recomputed delay by the rounding
  /// the eager remaining-volume advance accumulates between re-keys - up to
  /// ~1 clock-ulp per few hundred advance steps. The caller resolves the
  /// true minimum with a fresh relative-precision delay comparison over the
  /// returned band (see TransferManager::fair_schedule_next_completion); the
  /// 64-ulp band makes that exact for any drift the advance can plausibly
  /// accumulate, and a debug assert in the caller guards the rest. In-band
  /// entries form a connected subtree at the heap root, so this is O(band).
  /// No-op when empty.
  void collect_min_ties(std::vector<std::uint64_t>& out) const;

  /// Drops every entry (keeps the slab allocation).
  void clear();

 private:
  static constexpr std::uint32_t kNpos = 0xffffffffU;

  struct Slot {
    std::uint64_t id = 0;
    double key = 0.0;
    std::uint32_t heap_pos = kNpos;
    std::uint32_t next_free = kNpos;
  };

  /// (key, id) lexicographic min-order.
  [[nodiscard]] bool before(std::uint32_t a, std::uint32_t b) const {
    const Slot& sa = slots_[a];
    const Slot& sb = slots_[b];
    if (sa.key != sb.key) return sa.key < sb.key;
    return sa.id < sb.id;
  }

  void sift_up(std::size_t pos);
  void sift_down(std::size_t pos);
  void place(std::size_t pos, std::uint32_t slot) {
    heap_[pos] = slot;
    slots_[slot].heap_pos = static_cast<std::uint32_t>(pos);
  }

  std::vector<Slot> slots_;          ///< slab; freed slots chain via next_free
  std::vector<std::uint32_t> heap_;  ///< binary min-heap of slab indices
  std::unordered_map<std::uint64_t, std::uint32_t> slot_of_;
  std::uint32_t free_head_ = kNpos;
  mutable std::vector<std::size_t> dfs_scratch_;  ///< collect_min_ties stack
};

}  // namespace dpjit::grid
