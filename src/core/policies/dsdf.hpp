// Dynamic shortest deadline first (DSDF), paper Section IV.A: "schedules tasks
// with the shortest deadlines (defined as the difference between its rest path
// makespan and its workflow's makespan) to run first at both phases". The
// difference ms(f) - RPM(t) is the task's slack toward the workflow's critical
// path: tasks on the critical path have slack 0 (tightest deadline).
#pragma once

#include "core/dispatch.hpp"

namespace dpjit::core {

class DsdfPolicy final : public FirstPhasePolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "dsdf"; }
  void run(DispatchContext& ctx) override;
};

}  // namespace dpjit::core
