#include "core/policies/dsmf.hpp"

#include <algorithm>

namespace dpjit::core {

void DsmfPolicy::run(DispatchContext& ctx) {
  // Line 8: ascending remaining makespan; stable so equal makespans keep
  // submission order.
  std::vector<const PendingWorkflow*> order;
  order.reserve(ctx.pending().size());
  for (const auto& p : ctx.pending()) order.push_back(&p);
  std::stable_sort(order.begin(), order.end(),
                   [](const PendingWorkflow* a, const PendingWorkflow* b) {
                     return a->makespan < b->makespan;
                   });

  for (const PendingWorkflow* wf : order) {
    // Line 11: schedule points in descending RPM.
    std::vector<const CandidateTask*> tasks;
    tasks.reserve(wf->tasks.size());
    for (const auto& t : wf->tasks) tasks.push_back(&t);
    std::stable_sort(tasks.begin(), tasks.end(),
                     [](const CandidateTask* a, const CandidateTask* b) {
                       return a->rpm > b->rpm;
                     });
    for (const CandidateTask* t : tasks) {
      const int r = select_node(ctx, *t);  // Line 13, Formula (9)
      if (r < 0) continue;                 // Line 9: empty RSS - skip
      ctx.dispatch(*t, ctx.resources()[static_cast<std::size_t>(r)].node);  // Lines 14-15
    }
  }
}

}  // namespace dpjit::core
