// Decentralized min-min, max-min and sufferage first-phase policies,
// adapted from Maheswaran et al. (HCW'99) [18] as the paper describes:
// the classic batch-mode heuristics applied to the home node's current
// schedule-point set against its gossiped resource view.
//
// All three share the same loop: compute each unscheduled candidate's best
// (minimum-FT) resource, pick one candidate by the heuristic's criterion,
// dispatch it, update the resource working copy, repeat.
#pragma once

#include "core/dispatch.hpp"

namespace dpjit::core {

/// min-min: dispatch first the task whose best finish time is smallest.
class MinMinPolicy final : public FirstPhasePolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "minmin"; }
  void run(DispatchContext& ctx) override;
};

/// max-min: dispatch first the task whose best finish time is largest.
class MaxMinPolicy final : public FirstPhasePolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "maxmin"; }
  void run(DispatchContext& ctx) override;
};

/// sufferage: dispatch first the task that would suffer most from not getting
/// its best node (largest second-best minus best finish time). The sufferage
/// value is stamped on the task so the second phase (LSF) can reuse it.
class SufferagePolicy final : public FirstPhasePolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "sufferage"; }
  void run(DispatchContext& ctx) override;
};

}  // namespace dpjit::core
