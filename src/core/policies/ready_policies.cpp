#include "core/policies/ready_policies.hpp"

#include <stdexcept>
#include <string>

namespace dpjit::core {
namespace {

/// True when `a` beats `b`. All comparators end on arrival_seq for determinism.
using Better = bool (*)(const grid::ReadyTask& a, const grid::ReadyTask& b);

bool fcfs_better(const grid::ReadyTask& a, const grid::ReadyTask& b) {
  return a.arrival_seq < b.arrival_seq;
}

bool dsmf_better(const grid::ReadyTask& a, const grid::ReadyTask& b) {
  // Formula (10): smallest workflow remaining makespan; Algorithm 2 lines 3-5:
  // ties broken by the longest RPM.
  if (a.wf_makespan != b.wf_makespan) return a.wf_makespan < b.wf_makespan;
  if (a.rpm != b.rpm) return a.rpm > b.rpm;
  return fcfs_better(a, b);
}

bool lrpm_better(const grid::ReadyTask& a, const grid::ReadyTask& b) {
  if (a.rpm != b.rpm) return a.rpm > b.rpm;
  return fcfs_better(a, b);
}

bool slack_better(const grid::ReadyTask& a, const grid::ReadyTask& b) {
  if (a.slack != b.slack) return a.slack < b.slack;
  return fcfs_better(a, b);
}

bool stf_better(const grid::ReadyTask& a, const grid::ReadyTask& b) {
  if (a.load_mi != b.load_mi) return a.load_mi < b.load_mi;
  return fcfs_better(a, b);
}

bool ltf_better(const grid::ReadyTask& a, const grid::ReadyTask& b) {
  if (a.load_mi != b.load_mi) return a.load_mi > b.load_mi;
  return fcfs_better(a, b);
}

bool lsf_better(const grid::ReadyTask& a, const grid::ReadyTask& b) {
  if (a.sufferage != b.sufferage) return a.sufferage > b.sufferage;
  return fcfs_better(a, b);
}

bool tcms_better(const grid::ReadyTask& a, const grid::ReadyTask& b) {
  // Transfer-time-corrected DSMF order: the makespan stamped at dispatch
  // priced the input transfers at believed averages; by the time a task is
  // runnable the *realized* input-staging time (data_ready_at - arrived_at)
  // is known, so that much of the stamped remaining makespan has already
  // been paid down. Ranking by the corrected value favors the workflow that
  // is genuinely closest to done - a workflow whose inputs crawled through a
  // contended path no longer shadows one that staged instantly.
  const double ca = a.wf_makespan - (a.data_ready_at - a.arrived_at);
  const double cb = b.wf_makespan - (b.data_ready_at - b.arrived_at);
  if (ca != cb) return ca < cb;
  if (a.rpm != b.rpm) return a.rpm > b.rpm;
  return fcfs_better(a, b);
}

class ComparatorPolicy final : public ReadyQueuePolicy {
 public:
  ComparatorPolicy(std::string_view name, Better better) : name_(name), better_(better) {}

  [[nodiscard]] std::string_view name() const override { return name_; }

  [[nodiscard]] std::size_t select(
      const std::vector<const grid::ReadyTask*>& candidates) const override {
    if (candidates.empty()) throw std::logic_error("ReadyQueuePolicy::select: empty candidates");
    std::size_t best = 0;
    for (std::size_t i = 1; i < candidates.size(); ++i) {
      if (better_(*candidates[i], *candidates[best])) best = i;
    }
    return best;
  }

 private:
  std::string_view name_;
  Better better_;
};

struct Entry {
  std::string_view name;
  Better better;
};

constexpr Entry kPolicies[] = {
    {"dsmf", dsmf_better}, {"lrpm", lrpm_better}, {"slack", slack_better},
    {"stf", stf_better},   {"ltf", ltf_better},   {"lsf", lsf_better},
    {"fcfs", fcfs_better}, {"tcms", tcms_better},
};

}  // namespace

std::unique_ptr<ReadyQueuePolicy> make_ready_policy(std::string_view name) {
  for (const Entry& e : kPolicies) {
    if (e.name == name) return std::make_unique<ComparatorPolicy>(e.name, e.better);
  }
  throw std::invalid_argument("unknown ready policy: " + std::string(name));
}

std::vector<std::string_view> ready_policy_names() {
  std::vector<std::string_view> names;
  for (const Entry& e : kPolicies) names.push_back(e.name);
  return names;
}

}  // namespace dpjit::core
