// Decentralized HEFT (DHEFT) first-phase policy, paper Section IV.A:
// "applies a longest RPM first policy at both scheduling phases".
// All schedule points across workflows are ordered by descending RPM - the
// HEFT upward-rank order - ignoring the workflows' remaining makespans, which
// is exactly the behaviour DSMF improves upon.
#pragma once

#include "core/dispatch.hpp"

namespace dpjit::core {

class DheftPolicy : public FirstPhasePolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "dheft"; }
  void run(DispatchContext& ctx) override;

 protected:
  /// Placement rule for one schedule point (Formula 9 minimization). The
  /// contention-aware variant overrides this to rank by live oracle probes;
  /// the ordering above it is shared (same hook shape as DsmfPolicy's).
  [[nodiscard]] virtual int select_node(DispatchContext& ctx, const CandidateTask& task) const {
    return select_min_ft(ctx, task);
  }
};

}  // namespace dpjit::core
