// Decentralized HEFT (DHEFT) first-phase policy, paper Section IV.A:
// "applies a longest RPM first policy at both scheduling phases".
// All schedule points across workflows are ordered by descending RPM - the
// HEFT upward-rank order - ignoring the workflows' remaining makespans, which
// is exactly the behaviour DSMF improves upon.
#pragma once

#include "core/dispatch.hpp"

namespace dpjit::core {

class DheftPolicy final : public FirstPhasePolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "dheft"; }
  void run(DispatchContext& ctx) override;
};

}  // namespace dpjit::core
