// Second-phase (ready-set) scheduling policies, paper Algorithm 2 and the
// pairings of Section IV.A.
//
// When a resource node's CPU frees, the policy picks the next task among the
// ready tasks whose inputs have all arrived. Every policy is a total order on
// the stamped task attributes; ties always fall back to arrival order so the
// choice is deterministic.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "grid/grid_node.hpp"

namespace dpjit::core {

class ReadyQueuePolicy {
 public:
  virtual ~ReadyQueuePolicy() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  /// Picks from a non-empty set of data-complete ready tasks; returns an index
  /// into `candidates`.
  [[nodiscard]] virtual std::size_t select(
      const std::vector<const grid::ReadyTask*>& candidates) const = 0;
};

/// Factory by name. Known policies:
///  - "dsmf"  : smallest workflow makespan first; tie -> longest RPM
///              (Algorithm 2 / Formula 10);
///  - "lrpm"  : longest RPM first (DHEFT's second phase);
///  - "slack" : shortest slack (= deadline) first (DSDF's second phase);
///  - "stf"   : shortest task first (paired with min-min);
///  - "ltf"   : longest task first (paired with max-min);
///  - "lsf"   : largest sufferage first (paired with sufferage);
///  - "fcfs"  : arrival order (full-ahead HEFT/SMF; also the paper's
///              second-phase-less baselines);
///  - "tcms"  : transfer-time-corrected DSMF order (extension): smallest
///              (wf_makespan - realized input-staging time) first, i.e. the
///              stamped makespan minus the data_ready_at - arrived_at window
///              each candidate actually spent waiting for inputs; tie ->
///              longest RPM. Credits workflows for transfer time already
///              paid, which matters when contention makes staging times
///              diverge wildly from the averages the stamp assumed.
/// Throws std::invalid_argument for unknown names.
[[nodiscard]] std::unique_ptr<ReadyQueuePolicy> make_ready_policy(std::string_view name);

/// All known ready-policy names (for tests and CLIs).
[[nodiscard]] std::vector<std::string_view> ready_policy_names();

}  // namespace dpjit::core
