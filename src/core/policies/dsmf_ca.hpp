// Contention-aware DSMF (extension; not in the paper).
//
// Identical to DsmfPolicy's Algorithm-1 ordering - workflows by ascending
// remaining makespan, schedule points by descending RPM - but Formula (9) is
// evaluated through DispatchContext::finish_time_contended(): the
// transmission-delay term of each candidate placement comes from the live
// network oracle (net::RateOracle; in fair-sharing mode a what-if probe of
// the max-min solver against the current in-flight transfer set) instead of
// the gossip/landmark bandwidth averages. At transfer-bound CCR this steers
// tasks away from resource nodes whose input paths are currently saturated -
// the placement signal static-bandwidth DSMF cannot see. In a context with
// no live network (unit tests, bottleneck-model worlds where routing already
// tells the truth) the contended estimate degrades to the static one.
#pragma once

#include "core/policies/dsmf.hpp"

namespace dpjit::core {

class DsmfCaPolicy final : public DsmfPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "dsmf-ca"; }

 protected:
  [[nodiscard]] int select_node(DispatchContext& ctx, const CandidateTask& task) const override {
    return select_min_ft_contended(ctx, task);
  }
};

}  // namespace dpjit::core
