#include "core/policies/dheft.hpp"

#include <algorithm>

namespace dpjit::core {

void DheftPolicy::run(DispatchContext& ctx) {
  std::vector<const CandidateTask*> tasks;
  for (const auto& wf : ctx.pending()) {
    for (const auto& t : wf.tasks) tasks.push_back(&t);
  }
  std::stable_sort(tasks.begin(), tasks.end(),
                   [](const CandidateTask* a, const CandidateTask* b) {
                     return a->rpm > b->rpm;
                   });
  for (const CandidateTask* t : tasks) {
    const int r = select_node(ctx, *t);
    if (r < 0) continue;
    ctx.dispatch(*t, ctx.resources()[static_cast<std::size_t>(r)].node);
  }
}

}  // namespace dpjit::core
