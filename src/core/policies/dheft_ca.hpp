// Contention-aware DHEFT (extension; not in the paper).
//
// Identical to DheftPolicy's longest-RPM-first ordering across all pending
// workflows, but each schedule point's Formula (9) placement is evaluated
// through DispatchContext::finish_time_contended(): the transmission-delay
// term comes from the live network oracle (net::RateOracle; in fair-sharing
// mode a what-if probe of the max-min solver against the current in-flight
// transfer set) instead of the gossiped bandwidth averages. The DHEFT analog
// of DsmfCaPolicy - the pair isolates how much of the contention-aware gain
// is the live signal itself versus DSMF's makespan-aware ordering. In a
// context with no live network the contended estimate degrades to the static
// one.
#pragma once

#include "core/policies/dheft.hpp"

namespace dpjit::core {

class DheftCaPolicy final : public DheftPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "dheft-ca"; }

 protected:
  [[nodiscard]] int select_node(DispatchContext& ctx, const CandidateTask& task) const override {
    return select_min_ft_contended(ctx, task);
  }
};

}  // namespace dpjit::core
