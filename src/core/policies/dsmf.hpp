// DSMF first-phase policy - the paper's Algorithm 1.
//
// Workflows are handled in ascending order of remaining makespan ms(f)
// (dynamic *shortest makespan* first); within a workflow, schedule points in
// descending RPM order; each task goes to the resource node with the earliest
// estimated finish time (Formula 9).
#pragma once

#include "core/dispatch.hpp"

namespace dpjit::core {

class DsmfPolicy : public FirstPhasePolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "dsmf"; }
  void run(DispatchContext& ctx) override;

 protected:
  /// Formula (9) hook: which resource index gets the task (-1 = skip).
  /// DsmfCaPolicy overrides this with the oracle-predicted completion time;
  /// the workflow/task ordering of Algorithm 1 is shared.
  [[nodiscard]] virtual int select_node(DispatchContext& ctx, const CandidateTask& task) const {
    return select_min_ft(ctx, task);
  }
};

}  // namespace dpjit::core
