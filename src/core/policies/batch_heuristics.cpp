#include "core/policies/batch_heuristics.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace dpjit::core {
namespace {

/// Per-candidate evaluation against the current resource working copy.
struct Evaluated {
  const CandidateTask* task = nullptr;
  int best_resource = -1;
  double best_ft = kInf;
  double second_ft = kInf;  // second-best finish time (for sufferage)
};

Evaluated evaluate(DispatchContext& ctx, const CandidateTask& task) {
  Evaluated e;
  e.task = &task;
  const auto& resources = ctx.resources();
  for (std::size_t i = 0; i < resources.size(); ++i) {
    const double ft = ctx.finish_time(task, resources[i]);
    if (ft < e.best_ft) {
      e.second_ft = e.best_ft;
      e.best_ft = ft;
      e.best_resource = static_cast<int>(i);
    } else if (ft < e.second_ft) {
      e.second_ft = ft;
    }
  }
  return e;
}

/// The shared batch loop. `pick` selects the next candidate to dispatch from
/// the freshly evaluated set. `stamp_sufferage` records the sufferage value on
/// the dispatched copy (used only by SufferagePolicy).
template <typename Pick>
void batch_dispatch(DispatchContext& ctx, Pick pick, bool stamp_sufferage) {
  std::vector<const CandidateTask*> remaining;
  for (const auto& wf : ctx.pending()) {
    for (const auto& t : wf.tasks) remaining.push_back(&t);
  }
  while (!remaining.empty()) {
    std::vector<Evaluated> evals;
    evals.reserve(remaining.size());
    for (const CandidateTask* t : remaining) evals.push_back(evaluate(ctx, *t));
    const std::size_t chosen = pick(evals);
    const Evaluated& e = evals[chosen];
    if (e.best_resource < 0) return;  // no resources known: nothing dispatchable
    CandidateTask copy = *e.task;
    if (stamp_sufferage) {
      copy.sufferage = std::isfinite(e.second_ft) ? e.second_ft - e.best_ft : 0.0;
    }
    ctx.dispatch(copy, ctx.resources()[static_cast<std::size_t>(e.best_resource)].node);
    remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(chosen));
  }
}

}  // namespace

void MinMinPolicy::run(DispatchContext& ctx) {
  batch_dispatch(
      ctx,
      [](const std::vector<Evaluated>& evals) {
        std::size_t best = 0;
        for (std::size_t i = 1; i < evals.size(); ++i) {
          if (evals[i].best_ft < evals[best].best_ft) best = i;
        }
        return best;
      },
      /*stamp_sufferage=*/false);
}

void MaxMinPolicy::run(DispatchContext& ctx) {
  batch_dispatch(
      ctx,
      [](const std::vector<Evaluated>& evals) {
        std::size_t best = 0;
        for (std::size_t i = 1; i < evals.size(); ++i) {
          if (evals[i].best_ft > evals[best].best_ft) best = i;
        }
        return best;
      },
      /*stamp_sufferage=*/false);
}

void SufferagePolicy::run(DispatchContext& ctx) {
  batch_dispatch(
      ctx,
      [](const std::vector<Evaluated>& evals) {
        auto sufferage_of = [](const Evaluated& e) {
          return std::isfinite(e.second_ft) ? e.second_ft - e.best_ft : 0.0;
        };
        std::size_t best = 0;
        for (std::size_t i = 1; i < evals.size(); ++i) {
          if (sufferage_of(evals[i]) > sufferage_of(evals[best])) best = i;
        }
        return best;
      },
      /*stamp_sufferage=*/true);
}

}  // namespace dpjit::core
