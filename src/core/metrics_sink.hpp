// Observer interface the grid system reports through. The exp library
// implements it; keeping the interface here avoids a core -> exp dependency.
#pragma once

#include "util/types.hpp"

namespace dpjit::core {

/// Summary of one finished workflow, delivered when the home node learns of
/// the exit task's completion.
struct WorkflowReport {
  WorkflowId id;
  NodeId home;
  SimTime submit_time = 0.0;
  /// When the entry task started executing (paper: ct is counted from the
  /// start of the entry task).
  SimTime entry_start_time = 0.0;
  /// When the exit task finished executing.
  SimTime finish_time = 0.0;
  /// Expected finish-time eft(f) under true system averages (Eq. 1).
  double eft = 0.0;

  /// ct(f): completion/response time per the paper's definition.
  [[nodiscard]] double completion_time() const { return finish_time - entry_start_time; }
  /// Response time including the initial scheduling wait.
  [[nodiscard]] double response_time() const { return finish_time - submit_time; }
  /// e(f) = eft / ct (Eq. 1).
  [[nodiscard]] double efficiency() const {
    const double ct = completion_time();
    return ct > 0.0 ? eft / ct : 0.0;
  }
};

/// Periodic sample taken at every scheduling cycle.
struct CycleSample {
  SimTime time = 0.0;
  std::size_t workflows_finished = 0;
  std::size_t tasks_failed = 0;
  double mean_rss_size = 0.0;
  double mean_idle_known = 0.0;
  std::size_t alive_nodes = 0;
};

class MetricsSink {
 public:
  virtual ~MetricsSink() = default;
  virtual void on_workflow_finished(const WorkflowReport& report) = 0;
  virtual void on_cycle(const CycleSample& sample) = 0;
};

}  // namespace dpjit::core
