// Algorithm registry: the eight algorithms of the paper's evaluation
// (Section IV.A), plus the "-fcfs" variants used for the second-phase
// ablation reported in the text of Section IV.B.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/dispatch.hpp"
#include "core/fullahead/planner.hpp"
#include "core/policies/ready_policies.hpp"

namespace dpjit::core {

/// A complete scheduling algorithm: either a just-in-time first-phase policy
/// or a full-ahead planner, plus a second-phase ready policy.
struct Algorithm {
  std::string name;
  /// Non-null for just-in-time algorithms (DSMF, DHEFT, DSDF, min-min,
  /// max-min, sufferage).
  std::function<std::unique_ptr<FirstPhasePolicy>()> make_first;
  /// Non-null for full-ahead algorithms (HEFT, SMF). One planner is created
  /// per home node (it carries that home's booking timelines).
  std::function<std::unique_ptr<FullAheadPlanner>()> make_planner;
  /// Always non-null.
  std::function<std::unique_ptr<ReadyQueuePolicy>()> make_second;
  /// Full-ahead algorithms only: plan transfer costs through the live
  /// net::RateOracle (PlannerOracle::transfer_time gets wired to the
  /// TransferManager) instead of the static bandwidth matrix. Meaningless
  /// for just-in-time algorithms, whose -ca variants probe per dispatch.
  bool contended_planner = false;

  [[nodiscard]] bool full_ahead() const { return static_cast<bool>(make_planner); }
};

/// Builds an algorithm by name. The eight paper algorithms:
///   "dsmf", "dheft", "dsdf", "minmin", "maxmin", "sufferage", "heft", "smf".
/// Second-phase ablation variants (original HCW'99-style, FCFS ready set):
///   "minmin-fcfs", "maxmin-fcfs", "sufferage-fcfs", "dheft-fcfs", "dsmf-fcfs".
/// Extension (paper related-work [24]): "heft-la" - lookahead HEFT.
/// Contention-aware extensions (consume the live net::RateOracle):
///   "dsmf-ca" - DSMF with Formula (9) ranked by oracle-predicted completion
///               time (live what-if probes of the fair-sharing solver);
///   "dsmf-tc" - DSMF with the transfer-time-corrected "tcms" second phase
///               (realized input-staging time credited against the stamped
///               remaining makespan);
///   "dheft-ca" - DHEFT with Formula (9) ranked by oracle-predicted
///               completion time (the DHEFT analog of dsmf-ca);
///   "lookahead-ca" - lookahead HEFT planning its transfer costs through the
///               live oracle at plan time (contended_planner set).
/// Throws std::invalid_argument on unknown names.
[[nodiscard]] Algorithm make_algorithm(std::string_view name);

/// The eight algorithms of the paper's figures, in the paper's legend order.
[[nodiscard]] std::vector<std::string> paper_algorithms();

/// All registered names (including ablation variants).
[[nodiscard]] std::vector<std::string> all_algorithms();

}  // namespace dpjit::core
