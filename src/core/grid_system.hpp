// GridSystem: the fully decentralized P2P grid with dual-phase just-in-time
// workflow scheduling (paper Sections II-III).
//
// Wires together the substrates:
//   - sim::Engine            discrete-event clock,
//   - net::Topology/Routing  the Brite/Waxman WAN,
//   - net::LandmarkEstimator bandwidth estimation,
//   - gossip::MixedGossipService   RSS maintenance + global averages,
//   - grid::GridNode/TransferManager/ChurnModel  node runtime,
//   - core policies (registry)     the scheduling algorithms.
//
// Task lifecycle: Waiting -> Schedulable (all precedents finished)
//   -> Dispatched (phase 1 chose a resource node; image+data transfers run)
//   -> Running (phase 2 picked it when the CPU freed and inputs arrived)
//   -> Finished (home node notified; successors may become Schedulable)
//   or -> Failed (resource node churned away / input source lost).
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/metrics_sink.hpp"
#include "core/policy_registry.hpp"
#include "dag/workflow.hpp"
#include "grid/churn.hpp"
#include "grid/grid_node.hpp"
#include "grid/transfer_manager.hpp"
#include "gossip/mixed_gossip.hpp"
#include "net/landmark.hpp"
#include "sim/trace.hpp"

namespace dpjit::core {

/// Partition of a routed network's nodes into contiguous shard blocks, plus
/// the conservative-lookahead bounds the sharded PDES loop (sim::ShardEngine)
/// needs. Produced by compute_shard_map / GridSystem::shard_map.
///
/// `lookahead_s` is the minimum routed latency between any two nodes living
/// in DIFFERENT shards: a conservative time window of at most this length
/// guarantees no cross-shard message can land inside the window it was sent
/// from. `min_latency_s` is the minimum over ALL distinct pairs — the
/// lookahead of the finest possible partition (every node its own shard) and
/// therefore a window bound that is valid for EVERY shard count at once,
/// which is what the byte-identical-digests-at-any-shard-count guarantee of
/// the scale scenarios is built on. A zero lookahead (zero-latency link
/// between shards) means the partition is not conservatively shardable;
/// callers must fall back to fewer shards or clamp delays (see
/// exp::run_scale_model).
struct ShardMap {
  int shards = 1;
  int nodes = 0;
  /// shard -> [begin, end) contiguous node-id block.
  std::vector<std::pair<int, int>> ranges;
  /// node -> owning shard.
  std::vector<int> shard_of;
  /// Min latency between nodes in different shards (+inf when shards == 1).
  double lookahead_s = 0.0;
  /// Min latency over all distinct node pairs (+inf when nodes < 2).
  double min_latency_s = 0.0;

  [[nodiscard]] int shard(NodeId n) const { return shard_of[static_cast<std::size_t>(n.get())]; }
};

/// Partitions the routing's nodes into `shards` near-equal contiguous blocks
/// and derives the lookahead bounds from the routed latencies. `shards` is
/// clamped to [1, node_count]. O(n^2) latency scan.
[[nodiscard]] ShardMap compute_shard_map(const net::Routing& routing, int shards);

/// Runtime state of one task instance.
enum class TaskState {
  kWaiting,      ///< some precedent unfinished
  kSchedulable,  ///< schedule point: all precedents finished, not yet dispatched
  kDispatched,   ///< sent to a resource node (in its ready set or in transit)
  kRunning,      ///< executing
  kFinished,     ///< completed
  kFailed,       ///< lost to churn (terminal unless rescheduling is enabled)
};

struct TaskRuntime {
  TaskState state = TaskState::kWaiting;
  /// Resource node the task was dispatched to / executed on.
  NodeId exec_node{};
  SimTime dispatched_at = kNoTime;
  SimTime started_at = kNoTime;
  SimTime finished_at = kNoTime;
  /// Precedents not yet known-finished at the home node.
  int unfinished_preds = 0;
  /// The home node processed this task's completion notification (successor
  /// counts were decremented). Distinguishes finished-and-notified from
  /// finished-with-notification-in-flight when churn recovery demotes a
  /// finished precedent whose output data died with its execution node.
  bool finish_notified = false;
};

/// A submitted workflow and its execution progress (home-node view).
struct WorkflowInstance {
  WorkflowId id{};
  NodeId home{};
  dag::Workflow dag;
  SimTime submit_time = kNoTime;
  SimTime entry_started_at = kNoTime;
  SimTime finished_at = kNoTime;
  /// eft(f) under true system averages, fixed at submission (Eq. 1).
  double eft = 0.0;
  std::vector<TaskRuntime> tasks;
  std::size_t finished_tasks = 0;
  std::size_t failed_tasks = 0;

  [[nodiscard]] bool done() const { return finished_at != kNoTime; }
};

/// Retry policy for input transfers that abort with both endpoints alive
/// (typically a link failure mid-transfer). max_attempts == 0 disables
/// retries entirely - the seed behavior, and deliberately the default:
/// fair-sharing's zero-rate stall guard also aborts transfers with live
/// endpoints, and retrying those would alter the contention scenarios.
struct TransferRetryPolicy {
  /// Max retry attempts per input transfer; 0 = fail immediately (seed).
  int max_attempts = 0;
  /// Exponential backoff: attempt k waits min(cap, base * 2^k) seconds.
  double backoff_base_s = 30.0;
  double backoff_cap_s = 1800.0;
};

/// System-level knobs (workload knobs live in exp::WorkloadFactory).
struct SystemConfig {
  /// Scheduler activation period (paper: 15 minutes).
  double scheduling_interval_s = 900.0;
  /// First scheduler activation; gives gossip a short warm-up (3 cycles).
  double first_schedule_at_s = 900.0;
  /// Simulation horizon (paper: 36 hours).
  double horizon_s = 129600.0;
  gossip::GossipParams gossip;
  /// Churn (dynamic_factor 0 = static environment).
  grid::ChurnModel::Params churn;
  /// Contended network ablation (default: paper's bottleneck model).
  /// Legacy switch for the fluid model; see `network_mode` for the seam.
  bool fair_sharing = false;
  /// Network-model seam (net/network_model.hpp). kBottleneck defers to the
  /// legacy `fair_sharing` flag above; any other value wins over it. Use
  /// effective_network_mode() to resolve the pair.
  net::NetworkMode network_mode = net::NetworkMode::kBottleneck;
  /// Quantised-fair epoch length in seconds; <= 0 derives
  /// max(min routed latency, 60 s) from the shard map (shard-count-invariant,
  /// so the derived barrier schedule is too). Ignored by the other modes.
  double quantised_epoch_s = 0.0;
  /// Quantised-fair barrier loop only: ledger shard count and worker threads
  /// for the sim::ShardEngine run (core/workflow_shard). Results are
  /// byte-identical at any setting; these are wall-clock knobs. Ignored - with
  /// a stderr note from the scenario runner - by the zero-lookahead modes.
  int shards = 1;
  int threads = 1;
  /// Extension (paper future work): reschedule tasks lost to churn.
  bool reschedule_failed = false;
  /// Result collection: completed task outputs are also retained at the
  /// (stable) home node, so dependent data survives the executing node's
  /// departure - the standard master-keeps-results model of desktop-grid
  /// middleware (Condor/DAGMan, BOINC). When a precedent's execution node is
  /// gone, successors fetch the data from the home node instead (still paying
  /// the full transfer cost from there). Off = strict data-dies-with-the-node
  /// semantics (ablation).
  bool home_keeps_outputs = true;
  /// Contacts handed to a (re)joining node, emulating a bootstrap server.
  int bootstrap_contacts = 4;
  /// Retry/backoff hardening for link-failure transfer aborts.
  TransferRetryPolicy transfer_retry;
  std::uint64_t seed = 1;

  /// The mode the TransferManager actually runs in: `network_mode` unless it
  /// is kBottleneck, in which case the legacy `fair_sharing` flag picks
  /// between bottleneck and fluid-fair (back-compat: every pre-seam config
  /// keeps its exact meaning).
  [[nodiscard]] net::NetworkMode effective_network_mode() const {
    if (network_mode != net::NetworkMode::kBottleneck) return network_mode;
    return fair_sharing ? net::NetworkMode::kFluidFair : net::NetworkMode::kBottleneck;
  }
};

class GridSystem {
 public:
  /// `capacities[i]` is node i's MIPS rating (paper: {1,2,4,8,16}).
  /// `sink` may be null. `faults` (may be null) is the fault plan whose
  /// message fates the gossip layer draws from; attaching one also turns on
  /// transfer path tracking so link failures can abort in-flight transfers.
  /// All references must outlive the system.
  GridSystem(sim::Engine& engine, const net::Topology& topo, const net::Routing& routing,
             const net::LandmarkEstimator& landmarks, std::vector<double> capacities,
             Algorithm algorithm, SystemConfig config, MetricsSink* sink = nullptr,
             sim::FaultPlan* faults = nullptr);
  ~GridSystem();

  GridSystem(const GridSystem&) = delete;
  GridSystem& operator=(const GridSystem&) = delete;

  /// Registers a workflow at `home` (normalized + validated; throws on bad
  /// DAGs). Submission time is the engine's current time. When churn is
  /// enabled the home must be a stable node (paper: homes never churn).
  WorkflowId submit(NodeId home, dag::Workflow wf);

  /// Starts gossip/churn/scheduling and runs the engine to the horizon.
  void run();

  /// Starts the services without running the engine (callers that interleave
  /// other event sources drive engine.run_until themselves).
  void start();

  // --- inspection ---
  [[nodiscard]] const WorkflowInstance& workflow(WorkflowId id) const;
  [[nodiscard]] std::size_t workflow_count() const { return workflows_.size(); }
  [[nodiscard]] std::size_t finished_workflows() const { return finished_workflows_; }
  [[nodiscard]] const grid::GridNode& node(NodeId id) const;
  [[nodiscard]] std::size_t alive_count() const;
  [[nodiscard]] const gossip::MixedGossipService& gossip_service() const { return *gossip_; }
  [[nodiscard]] const grid::TransferManager& transfers() const { return *transfers_; }
  [[nodiscard]] const grid::ChurnModel& churn_model() const { return *churn_; }
  [[nodiscard]] const dag::AverageEstimates& true_averages() const { return true_averages_; }
  [[nodiscard]] sim::Trace& trace() { return trace_; }
  [[nodiscard]] std::uint64_t tasks_dispatched() const { return tasks_dispatched_; }
  [[nodiscard]] std::uint64_t tasks_failed() const { return tasks_failed_; }
  [[nodiscard]] std::uint64_t tasks_rescheduled() const { return tasks_rescheduled_; }
  [[nodiscard]] const SystemConfig& config() const { return config_; }

  /// Runs one scheduling cycle immediately (tests drive this directly).
  void run_scheduling_cycle();

  /// Partitions this system's nodes into `shards` contiguous blocks with
  /// lookahead bounds from the live routing (see compute_shard_map).
  [[nodiscard]] ShardMap shard_map(int shards) const;

  /// Fault injection: forcibly disconnects a node right now, exactly as churn
  /// would (running/ready tasks fail, transfers abort, gossip state clears).
  /// Disconnecting a node that hosts submitted workflows strands them.
  void inject_node_failure(NodeId n);

  /// Fault injection: re-joins a previously disconnected node (fresh state).
  void inject_node_rejoin(NodeId n);

  /// A topology link changed state. The caller (exp::World's fault wiring)
  /// updates net::Routing FIRST, then calls this so aborted transfers retry
  /// on the repaired routes. Forwards to TransferManager::link_state_changed.
  void on_link_state(LinkId l, bool up);

  /// Tasks pulled back from suspected-dead executors (message-level gossip).
  [[nodiscard]] std::uint64_t tasks_reoffered() const { return tasks_reoffered_; }

  // --- quantised-mode observability (all 0 unless run() executed under
  // NetworkMode::kQuantisedFair; see core/workflow_shard) ---
  [[nodiscard]] std::uint64_t quantised_barriers() const { return quantised_barriers_; }
  [[nodiscard]] std::uint64_t quantised_drains() const { return quantised_drains_; }
  [[nodiscard]] std::uint64_t quantised_parallel_windows() const {
    return quantised_parallel_windows_;
  }

 private:
  friend class SystemDispatchContext;

  // --- scheduling phases ---
  void schedule_home(NodeId home);
  /// Centralized full-ahead planning: plans every not-yet-planned workflow
  /// (all homes) onto the single shared planner.
  void ensure_full_ahead_plan();
  /// Dispatches one schedulable task of a full-ahead workflow to its planned
  /// node (with a fallback when the planned node departed).
  void dispatch_planned_task(WorkflowInstance& wf, TaskIndex task);
  /// Dispatches every currently schedulable task of a full-ahead workflow.
  void dispatch_planned_ready(WorkflowInstance& wf);
  void dispatch_task(WorkflowInstance& wf, TaskIndex task, NodeId target, double rpm,
                     double makespan, double slack, double sufferage);
  void deliver_dispatch(TaskRef ref, NodeId target, grid::ReadyTask ready);
  /// Starts (or, after a source failure, restarts from home) one input
  /// transfer for a dispatched task. `attempt` counts link-failure retries of
  /// this particular (source, mb) input; see SystemConfig::transfer_retry.
  void start_input_transfer(TaskRef ref, NodeId target, NodeId source, double mb,
                            int attempt = 0);
  /// Message-level gossip only: pulls dispatched/running tasks back to the
  /// schedule-point set when the home's failure detector declared their
  /// executor dead (dispatch re-offer; runs each scheduling cycle).
  void reoffer_suspect_tasks();
  void try_start_task(NodeId node);
  void on_task_complete(NodeId node);
  void on_task_finished_at_home(TaskRef ref, SimTime finished_at);
  void fail_task(TaskRef ref, const char* reason);

  // --- churn handling ---
  void handle_leave(NodeId n);
  void handle_join(NodeId n);
  std::vector<NodeId> random_alive_contacts(int count, NodeId exclude);

  // --- rescheduling extension (reschedule.cpp) ---
  void recover_failed_tasks();
  void recover_task(WorkflowInstance& wf, TaskIndex task, int depth);
  /// Precedents of `task` the home node does not (yet) know finished.
  [[nodiscard]] int unfinished_pred_count(const WorkflowInstance& wf, TaskIndex task) const;

  // --- helpers ---
  [[nodiscard]] std::vector<TaskIndex> schedule_points(const WorkflowInstance& wf) const;
  [[nodiscard]] double control_latency(NodeId a, NodeId b) const;
  [[nodiscard]] double estimate_bandwidth(NodeId a, NodeId b, NodeId believer) const;
  [[nodiscard]] TaskEstimateInputs estimate_inputs(const WorkflowInstance& wf,
                                                   TaskIndex task) const;
  void sample_cycle();

  sim::Engine& engine_;
  const net::Topology& topo_;
  const net::Routing& routing_;
  const net::LandmarkEstimator& landmarks_;
  Algorithm algorithm_;
  SystemConfig config_;
  MetricsSink* sink_;
  sim::FaultPlan* faults_;
  util::Rng rng_;

  std::vector<grid::GridNode> nodes_;
  std::vector<WorkflowInstance> workflows_;
  std::vector<std::vector<WorkflowId>> home_workflows_;

  std::unique_ptr<gossip::MixedGossipService> gossip_;
  std::unique_ptr<grid::TransferManager> transfers_;
  std::unique_ptr<grid::ChurnModel> churn_;
  std::unique_ptr<sim::PeriodicProcess> scheduler_;

  std::unique_ptr<FirstPhasePolicy> first_phase_;
  std::unique_ptr<ReadyQueuePolicy> second_phase_;
  std::unique_ptr<FullAheadPlanner> planner_;
  Assignment plan_;
  std::size_t planned_count_ = 0;  ///< workflows_[0..planned_count_) are planned

  /// Completion event of each node's running task (for churn aborts).
  std::vector<sim::EventQueue::Handle> running_event_;
  /// In-flight input transfer ids per dispatched task (for failure cleanup).
  std::unordered_map<TaskRef, std::vector<std::uint64_t>> task_transfers_;

  dag::AverageEstimates true_averages_;
  sim::Trace trace_;
  std::uint64_t arrival_seq_ = 0;
  std::size_t finished_workflows_ = 0;
  std::uint64_t tasks_dispatched_ = 0;
  std::uint64_t tasks_failed_ = 0;
  std::uint64_t tasks_rescheduled_ = 0;
  std::uint64_t tasks_reoffered_ = 0;
  std::uint64_t quantised_barriers_ = 0;
  std::uint64_t quantised_drains_ = 0;
  std::uint64_t quantised_parallel_windows_ = 0;
  bool started_ = false;
};

}  // namespace dpjit::core
