// Per-resource booking timeline for full-ahead planning (HEFT's
// insertion-based scheduling policy). Bookings are half-open [start, end)
// intervals kept sorted; the planner looks for the earliest gap that fits a
// task after its data arrives.
#pragma once

#include <vector>

#include "util/types.hpp"

namespace dpjit::core {

class Timeline {
 public:
  /// Earliest start >= ready_time such that [start, start+duration) does not
  /// overlap any booking (the HEFT insertion policy: gaps between existing
  /// bookings are usable).
  [[nodiscard]] double earliest_start(double ready_time, double duration) const;

  /// Books [start, start+duration). The interval must not overlap existing
  /// bookings (throws std::logic_error otherwise).
  void book(double start, double duration);

  [[nodiscard]] const std::vector<std::pair<double, double>>& bookings() const {
    return slots_;
  }

  /// End of the last booking, 0 when empty.
  [[nodiscard]] double makespan() const;

 private:
  std::vector<std::pair<double, double>> slots_;  // sorted [start, end)
};

}  // namespace dpjit::core
