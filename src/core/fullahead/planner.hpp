// Full-ahead (static) planners: HEFT [7] and the paper's self-implemented SMF.
//
// Both plan *before execution starts*, with global resource information (the
// paper grants the full-ahead baselines an oracle view: all nodes, their
// capacities and true pairwise bandwidths). The plan fixes each task's
// execution node; at run time tasks are dispatched to their planned node as
// they become ready, and resource nodes execute them FCFS (Section IV.A).
//
// A planner instance is *centralized*: one instance plans the workflows of
// every home node onto a single set of booking timelines ("the scheduling
// work of the two algorithms is centrally performed before the execution
// starts", Section IV.A). Its weakness - the one the paper's evaluation
// exposes - is rigidity: the plan never adapts to how execution actually
// unfolds, and HEFT's global rank order lets long workflows delay short ones.
#pragma once

#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/estimates.hpp"
#include "core/fullahead/timeline.hpp"
#include "dag/critical_path.hpp"
#include "dag/workflow.hpp"

namespace dpjit::core {

/// The oracle view granted to full-ahead planners.
struct PlannerOracle {
  /// Every alive node with its true capacity and current total load.
  std::vector<gossip::ResourceEntry> nodes;
  /// True system-wide averages (for ranking).
  dag::AverageEstimates averages;
  /// True pairwise bottleneck bandwidth.
  BandwidthEstimateFn bandwidth;
  /// Optional live transfer-time estimator (latency + size over the rate the
  /// network would allocate right now - net::RateOracle semantics). When set,
  /// the planners charge edge and image movement through it instead of the
  /// static `size / bandwidth` division; when empty, planning is byte-for-byte
  /// the classic static-bandwidth HEFT/SMF (the goldens of heft/smf/heft-la
  /// depend on that). The contention-aware registry entries (dheft-ca,
  /// lookahead-ca) are what set it.
  TransferTimeFn transfer_time;
};

/// One workflow to plan.
struct PlanRequest {
  WorkflowId id;
  const dag::Workflow* wf = nullptr;
  /// Home node the workflow was submitted to (image transfers originate here).
  NodeId home{};
  /// Expected makespan under true averages (SMF sorts by this).
  double expected_makespan = 0.0;
};

/// Task -> node assignment produced by a planner.
using Assignment = std::unordered_map<TaskRef, NodeId>;

class FullAheadPlanner {
 public:
  virtual ~FullAheadPlanner() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  /// Plans all tasks of the given workflows; merges into `out`.
  virtual void plan(const std::vector<PlanRequest>& workflows, const PlannerOracle& oracle,
                    Assignment& out) = 0;
};

/// HEFT: all tasks of all submitted workflows are ordered by descending upward
/// rank (computed per workflow under average estimates) and mapped with the
/// insertion-based earliest-finish-time rule.
class HeftPlanner final : public FullAheadPlanner {
 public:
  [[nodiscard]] std::string_view name() const override { return "heft"; }
  void plan(const std::vector<PlanRequest>& workflows, const PlannerOracle& oracle,
            Assignment& out) override;

 private:
  friend class SmfPlanner;
  /// Plans one batch of (workflow, task) pairs given per-task ranks. Shared by
  /// HEFT (one global batch) and SMF (one batch per workflow).
  void plan_batch(const std::vector<PlanRequest>& workflows,
                  const std::vector<std::vector<double>>& ranks, const PlannerOracle& oracle,
                  bool per_workflow_batches, Assignment& out);

  std::unordered_map<NodeId, Timeline> timelines_;
  /// Planned finish time of every already-planned task.
  std::unordered_map<TaskRef, double> planned_ft_;
  /// Queuing backlog (load/capacity) charged before the first booking.
  std::unordered_map<NodeId, double> initial_backlog_;
  bool backlog_seeded_ = false;

  void seed_backlog(const PlannerOracle& oracle);
};

/// SMF (shortest makespan first): workflows sorted by expected makespan
/// ascending; each is planned completely (rank-descending within the
/// workflow) before the next - the paper's best-performing baseline.
class SmfPlanner final : public FullAheadPlanner {
 public:
  [[nodiscard]] std::string_view name() const override { return "smf"; }
  void plan(const std::vector<PlanRequest>& workflows, const PlannerOracle& oracle,
            Assignment& out) override;

 private:
  HeftPlanner inner_;
};

/// Lookahead HEFT (Bittencourt, Sakellariou & Madeira, PDP'10 - the paper's
/// reference [24]): like HEFT, but a node is scored not by the task's own
/// earliest finish time but by the worst earliest finish time its *children*
/// could then achieve, evaluated one level deep against the current
/// timelines. The paper's related-work section quotes up to 20% improvement
/// over plain HEFT; this is the repository's optional-extension
/// implementation (O(V * N^2 * fanout) planning cost - use at bench scale).
class LookaheadHeftPlanner final : public FullAheadPlanner {
 public:
  [[nodiscard]] std::string_view name() const override { return "heft-la"; }
  void plan(const std::vector<PlanRequest>& workflows, const PlannerOracle& oracle,
            Assignment& out) override;

 private:
  std::unordered_map<NodeId, Timeline> timelines_;
  std::unordered_map<TaskRef, double> planned_ft_;
  bool backlog_seeded_ = false;
};

}  // namespace dpjit::core
