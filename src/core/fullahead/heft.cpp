#include <algorithm>
#include <cassert>

#include "core/fullahead/planner.hpp"

namespace dpjit::core {
namespace {

/// Topological depth (longest hop count from the entry) per task; used only to
/// break rank ties so that zero-cost virtual tasks never plan before their
/// precedents.
std::vector<int> topo_depths(const dag::Workflow& wf) {
  std::vector<int> depth(wf.task_count(), 0);
  for (TaskIndex t : wf.topological_order()) {
    for (TaskIndex s : wf.successors(t)) {
      depth[static_cast<std::size_t>(s.get())] =
          std::max(depth[static_cast<std::size_t>(s.get())],
                   depth[static_cast<std::size_t>(t.get())] + 1);
    }
  }
  return depth;
}

struct OrderedTask {
  std::size_t wf_pos;  // index into the request batch
  TaskIndex task;
  double rank;
  int depth;
};

}  // namespace

void HeftPlanner::seed_backlog(const PlannerOracle& oracle) {
  if (backlog_seeded_) return;
  backlog_seeded_ = true;
  for (const auto& r : oracle.nodes) {
    const double backlog = std::max(0.0, r.load_mi) / r.capacity_mips;
    initial_backlog_[r.node] = backlog;
    if (backlog > 0.0) timelines_[r.node].book(0.0, backlog);
  }
}

void HeftPlanner::plan_batch(const std::vector<PlanRequest>& workflows,
                             const std::vector<std::vector<double>>& ranks,
                             const PlannerOracle& oracle, bool per_workflow_batches,
                             Assignment& out) {
  seed_backlog(oracle);

  // Movement cost of `size` megabits: the live transfer-time oracle when the
  // caller wired one (contention-aware planning), else the classic static
  // division - unreachable or zero-bandwidth pairs cost +inf either way.
  auto move_cost = [&](NodeId from, NodeId to, double size) {
    if (oracle.transfer_time) return oracle.transfer_time(from, to, size);
    const double bw = oracle.bandwidth(from, to);
    return bw > 0.0 ? size / bw : kInf;
  };

  auto plan_tasks = [&](const std::vector<OrderedTask>& order) {
    for (const OrderedTask& ot : order) {
      const PlanRequest& req = workflows[ot.wf_pos];
      const dag::Workflow& wf = *req.wf;
      const TaskRef ref{req.id, ot.task};
      const dag::Task& task = wf.task(ot.task);

      NodeId best_node{};
      double best_eft = kInf;
      double best_est = 0.0;
      for (const auto& resource : oracle.nodes) {
        // Data-arrival time at this node: precedents' planned finish plus
        // transfer, and the task image from the home node (available at 0).
        double arrival = 0.0;
        for (TaskIndex p : wf.predecessors(ot.task)) {
          const TaskRef pref{req.id, p};
          const auto ft_it = planned_ft_.find(pref);
          assert(ft_it != planned_ft_.end() && "precedent not planned yet");
          const auto node_it = out.find(pref);
          assert(node_it != out.end());
          double xfer = 0.0;
          if (node_it->second != resource.node) {
            xfer = move_cost(node_it->second, resource.node, wf.edge_data(p, ot.task));
          }
          arrival = std::max(arrival, ft_it->second + xfer);
        }
        if (task.image_mb > 0.0 && req.home != resource.node) {
          arrival = std::max(arrival, move_cost(req.home, resource.node, task.image_mb));
        }
        const double duration = task.load_mi / resource.capacity_mips;
        const double est = timelines_[resource.node].earliest_start(arrival, duration);
        const double eft = est + duration;
        if (eft < best_eft) {
          best_eft = eft;
          best_est = est;
          best_node = resource.node;
        }
      }
      assert(best_node.valid() && "planner given an empty oracle");
      timelines_[best_node].book(best_est, best_eft - best_est);
      planned_ft_[ref] = best_eft;
      out[ref] = best_node;
    }
  };

  auto ordered_for = [&](std::size_t wf_pos) {
    std::vector<OrderedTask> order;
    const dag::Workflow& wf = *workflows[wf_pos].wf;
    const auto depths = topo_depths(wf);
    for (std::size_t t = 0; t < wf.task_count(); ++t) {
      order.push_back(OrderedTask{wf_pos, TaskIndex{static_cast<TaskIndex::underlying_type>(t)},
                                  ranks[wf_pos][t], depths[t]});
    }
    return order;
  };

  auto rank_order = [](const OrderedTask& a, const OrderedTask& b) {
    if (a.rank != b.rank) return a.rank > b.rank;
    if (a.depth != b.depth) return a.depth < b.depth;
    if (a.wf_pos != b.wf_pos) return a.wf_pos < b.wf_pos;
    return a.task < b.task;
  };

  if (per_workflow_batches) {
    for (std::size_t w = 0; w < workflows.size(); ++w) {
      auto order = ordered_for(w);
      std::sort(order.begin(), order.end(), rank_order);
      plan_tasks(order);
    }
  } else {
    std::vector<OrderedTask> order;
    for (std::size_t w = 0; w < workflows.size(); ++w) {
      auto per_wf = ordered_for(w);
      order.insert(order.end(), per_wf.begin(), per_wf.end());
    }
    std::sort(order.begin(), order.end(), rank_order);
    plan_tasks(order);
  }
}

void HeftPlanner::plan(const std::vector<PlanRequest>& workflows, const PlannerOracle& oracle,
                       Assignment& out) {
  std::vector<std::vector<double>> ranks;
  ranks.reserve(workflows.size());
  for (const auto& req : workflows) ranks.push_back(dag::upward_ranks(*req.wf, oracle.averages));
  plan_batch(workflows, ranks, oracle, /*per_workflow_batches=*/false, out);
}

void SmfPlanner::plan(const std::vector<PlanRequest>& workflows, const PlannerOracle& oracle,
                      Assignment& out) {
  // Shortest expected makespan first; stable to keep submission order on ties.
  std::vector<PlanRequest> sorted = workflows;
  std::stable_sort(sorted.begin(), sorted.end(), [](const PlanRequest& a, const PlanRequest& b) {
    return a.expected_makespan < b.expected_makespan;
  });
  std::vector<std::vector<double>> ranks;
  ranks.reserve(sorted.size());
  for (const auto& req : sorted) ranks.push_back(dag::upward_ranks(*req.wf, oracle.averages));
  inner_.plan_batch(sorted, ranks, oracle, /*per_workflow_batches=*/true, out);
}

}  // namespace dpjit::core
