#include "core/fullahead/timeline.hpp"

#include <algorithm>
#include <stdexcept>

namespace dpjit::core {
namespace {
/// Two intervals closer than this are considered touching, not overlapping.
constexpr double kEps = 1e-9;
}  // namespace

double Timeline::earliest_start(double ready_time, double duration) const {
  double candidate = ready_time;
  for (const auto& [start, end] : slots_) {
    if (end - start <= 0.0) continue;  // zero-width bookings occupy no time
    if (candidate + duration <= start + kEps) return candidate;  // fits in the gap
    candidate = std::max(candidate, end);
  }
  return candidate;
}

void Timeline::book(double start, double duration) {
  if (duration < 0.0) throw std::logic_error("Timeline::book: negative duration");
  const double end = start + duration;
  auto it = std::lower_bound(slots_.begin(), slots_.end(), std::make_pair(start, end));
  // Check the neighbours for overlap.
  if (it != slots_.begin()) {
    const auto& prev = *std::prev(it);
    if (prev.second > start + kEps) throw std::logic_error("Timeline::book: overlap (prev)");
  }
  if (it != slots_.end() && it->first < end - kEps) {
    throw std::logic_error("Timeline::book: overlap (next)");
  }
  slots_.insert(it, {start, end});
}

double Timeline::makespan() const { return slots_.empty() ? 0.0 : slots_.back().second; }

}  // namespace dpjit::core
