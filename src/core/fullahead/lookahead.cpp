// Lookahead HEFT (paper reference [24]): when mapping a task, score each
// candidate node by the worst earliest finish time the task's children could
// achieve afterwards, probing the children one level deep against the current
// timelines (without booking them). See planner.hpp for the contract.
#include <algorithm>
#include <cassert>

#include "core/fullahead/planner.hpp"

namespace dpjit::core {
namespace {

struct Ordered {
  std::size_t wf_pos;
  TaskIndex task;
  double rank;
  int depth;
};

std::vector<int> depths_of(const dag::Workflow& wf) {
  std::vector<int> depth(wf.task_count(), 0);
  for (TaskIndex t : wf.topological_order()) {
    for (TaskIndex s : wf.successors(t)) {
      depth[static_cast<std::size_t>(s.get())] = std::max(
          depth[static_cast<std::size_t>(s.get())], depth[static_cast<std::size_t>(t.get())] + 1);
    }
  }
  return depth;
}

}  // namespace

void LookaheadHeftPlanner::plan(const std::vector<PlanRequest>& workflows,
                                const PlannerOracle& oracle, Assignment& out) {
  if (!backlog_seeded_) {
    backlog_seeded_ = true;
    for (const auto& r : oracle.nodes) {
      const double backlog = std::max(0.0, r.load_mi) / r.capacity_mips;
      if (backlog > 0.0) timelines_[r.node].book(0.0, backlog);
    }
  }

  // Global rank-descending order across all workflows (HEFT's order).
  std::vector<Ordered> order;
  std::vector<std::vector<double>> ranks;
  ranks.reserve(workflows.size());
  for (std::size_t w = 0; w < workflows.size(); ++w) {
    ranks.push_back(dag::upward_ranks(*workflows[w].wf, oracle.averages));
    const auto depth = depths_of(*workflows[w].wf);
    for (std::size_t t = 0; t < workflows[w].wf->task_count(); ++t) {
      order.push_back(Ordered{w, TaskIndex{static_cast<TaskIndex::underlying_type>(t)},
                              ranks[w][t], depth[t]});
    }
  }
  std::sort(order.begin(), order.end(), [](const Ordered& a, const Ordered& b) {
    if (a.rank != b.rank) return a.rank > b.rank;
    if (a.depth != b.depth) return a.depth < b.depth;
    if (a.wf_pos != b.wf_pos) return a.wf_pos < b.wf_pos;
    return a.task < b.task;
  });

  // Movement cost of `size` megabits: live transfer-time oracle when wired
  // (lookahead-ca), else the classic static division (heft-la).
  auto move_cost = [&](NodeId from, NodeId to, double size) {
    if (oracle.transfer_time) return oracle.transfer_time(from, to, size);
    const double bw = oracle.bandwidth(from, to);
    return bw > 0.0 ? size / bw : kInf;
  };

  // Earliest finish of `task` on `node` given the data will be ready at
  // `arrival`, against current timelines (no booking).
  auto eft_on = [&](const dag::Task& task, const gossip::ResourceEntry& node, double arrival) {
    const double duration = task.load_mi / node.capacity_mips;
    return timelines_[node.node].earliest_start(arrival, duration) + duration;
  };

  // Data-arrival time at `node` for `task`, from its already-planned preds
  // plus (optionally) a hypothetical placement of one pred.
  auto arrival_at = [&](const PlanRequest& req, TaskIndex t, NodeId node,
                        TaskIndex hypo_pred = TaskIndex{}, NodeId hypo_node = NodeId{},
                        double hypo_ft = 0.0) {
    const dag::Workflow& wf = *req.wf;
    double arrival = 0.0;
    for (TaskIndex p : wf.predecessors(t)) {
      const TaskRef pref{req.id, p};
      double ft = 0.0;
      NodeId loc{};
      if (p == hypo_pred) {
        ft = hypo_ft;
        loc = hypo_node;
      } else {
        const auto ft_it = planned_ft_.find(pref);
        if (ft_it == planned_ft_.end()) continue;  // unplanned other-pred: ignore
        ft = ft_it->second;
        loc = out.at(pref);
      }
      double xfer = 0.0;
      if (loc != node) {
        xfer = move_cost(loc, node, wf.edge_data(p, t));
      }
      arrival = std::max(arrival, ft + xfer);
    }
    const dag::Task& task = wf.task(t);
    if (task.image_mb > 0.0 && req.home != node) {
      arrival = std::max(arrival, move_cost(req.home, node, task.image_mb));
    }
    return arrival;
  };

  for (const Ordered& ot : order) {
    const PlanRequest& req = workflows[ot.wf_pos];
    const dag::Workflow& wf = *req.wf;
    const TaskRef ref{req.id, ot.task};
    const dag::Task& task = wf.task(ot.task);
    const auto& children = wf.successors(ot.task);

    NodeId best_node{};
    double best_score = kInf;
    double best_est = 0.0;
    double best_eft = 0.0;
    for (const auto& node : oracle.nodes) {
      const double arrival = arrival_at(req, ot.task, node.node);
      const double duration = task.load_mi / node.capacity_mips;
      const double est = timelines_[node.node].earliest_start(arrival, duration);
      const double eft = est + duration;

      // Lookahead: the worst of the children's best achievable EFTs, assuming
      // this task finishes at `eft` on `node`.
      double score = eft;
      for (TaskIndex child : children) {
        double child_best = kInf;
        for (const auto& cnode : oracle.nodes) {
          const double carrival =
              arrival_at(req, child, cnode.node, ot.task, node.node, eft);
          child_best = std::min(child_best, eft_on(wf.task(child), cnode, carrival));
        }
        score = std::max(score, child_best);
      }
      if (score < best_score) {
        best_score = score;
        best_node = node.node;
        best_est = est;
        best_eft = eft;
      }
    }
    assert(best_node.valid());
    timelines_[best_node].book(best_est, best_eft - best_est);
    planned_ft_[ref] = best_eft;
    out[ref] = best_node;
  }
}

}  // namespace dpjit::core
