// Finish-time estimation, Eqs. (4)-(6) of the paper.
//
// A schedule-point task tau considered for resource node p_h finishes at
//   FT(tau, p_h) = max( R(tau, p_h), LTD(tau) ) + et(tau, p_h)
// where R = l_h / c_h is the queuing delay conservatively estimated from the
// node's gossiped total load, LTD is the longest transmission delay over the
// task's inputs (dependent data from the precedents' execution sites plus the
// task image from the home node), and et = load / c_h. The queueing delay and
// the input transfers overlap in time, hence the max.
//
// All times here are offsets from "now" (the scheduling instant): every
// precedent of a schedule point has already finished, so its data transfer
// can start immediately.
#pragma once

#include <functional>
#include <vector>

#include "gossip/view.hpp"

namespace dpjit::core {

/// One input the task must aggregate at the execution site.
struct InputSource {
  /// Node currently holding the data (precedent's execution node, or the home
  /// node for the task image).
  NodeId location;
  /// Data volume in Mb.
  double size_mb = 0.0;
};

/// Everything needed to estimate a schedule point's finish time on a node.
struct TaskEstimateInputs {
  double load_mi = 0.0;
  std::vector<InputSource> inputs;
};

/// Estimated bandwidth (Mb/s) between two nodes - in production the
/// landmark-based estimator fed by gossip, in tests any stub.
using BandwidthEstimateFn = std::function<double(NodeId from, NodeId to)>;

/// Full transfer-time estimate (seconds, including path latency) for moving
/// `size_mb` megabits. Contention-aware policies plug a live
/// net::RateOracle::expected_transfer_time_s in here; the static variant
/// above only divides size by an average bandwidth.
using TransferTimeFn = std::function<double(NodeId from, NodeId to, double size_mb)>;

/// R(tau, p_h): queuing delay = gossiped total load / capacity, seconds.
[[nodiscard]] double queuing_delay_s(const gossip::ResourceEntry& resource);

/// et(tau, p_h): execution time of the task on the node, seconds.
[[nodiscard]] double execution_time_s(double load_mi, const gossip::ResourceEntry& resource);

/// LTD(tau) (Eq. 4): slowest input transfer to `target`, seconds from now.
/// Inputs already located at `target` cost nothing.
[[nodiscard]] double longest_transmission_delay_s(const TaskEstimateInputs& task, NodeId target,
                                                  const BandwidthEstimateFn& bandwidth);

/// LTD(tau) with each input charged a full transfer-time estimate (latency
/// included) instead of size / average-bandwidth.
[[nodiscard]] double longest_transmission_delay_s(const TaskEstimateInputs& task, NodeId target,
                                                  const TransferTimeFn& transfer_time);

/// ST and FT (Eqs. 5-6) as offsets from now.
struct FinishTimeEstimate {
  double start_s = 0.0;
  double finish_s = 0.0;
};

[[nodiscard]] FinishTimeEstimate estimate_finish_time(const TaskEstimateInputs& task,
                                                      const gossip::ResourceEntry& resource,
                                                      const BandwidthEstimateFn& bandwidth);

/// Eqs. (5)-(6) with the LTD term computed from a full transfer-time
/// estimator (e.g. the live network oracle) instead of a static bandwidth.
[[nodiscard]] FinishTimeEstimate estimate_finish_time(const TaskEstimateInputs& task,
                                                      const gossip::ResourceEntry& resource,
                                                      const TransferTimeFn& transfer_time);

}  // namespace dpjit::core
