// Rest-path makespan (RPM, Eq. 7) and workflow remaining makespan (Eq. 8).
//
// RPM(t) estimates the longest execution time along the paths from task t to
// the workflow's exit task. The scheduler cannot know where t's offspring will
// run, so their execution and transmission times are approximated with the
// system-wide average capacity and bandwidth maintained by the aggregation
// gossip protocol - which makes RPM exactly the HEFT-style upward rank over
// average estimates (see the Fig. 3 worked example, reproduced in the tests).
#pragma once

#include <vector>

#include "dag/critical_path.hpp"
#include "dag/workflow.hpp"

namespace dpjit::core {

/// RPM of every task of the workflow under average estimates; indexed by task.
[[nodiscard]] std::vector<double> rest_path_makespans(const dag::Workflow& wf,
                                                      const dag::AverageEstimates& avg);

/// ms(f) (Eq. 8): the workflow's remaining makespan = max RPM over its
/// current schedule points. Returns 0 for an empty schedule-point set.
[[nodiscard]] double remaining_makespan(const std::vector<double>& rpm,
                                        const std::vector<TaskIndex>& schedule_points);

}  // namespace dpjit::core
