#include "core/policy_registry.hpp"

#include <stdexcept>

#include "core/policies/batch_heuristics.hpp"
#include "core/policies/dheft.hpp"
#include "core/policies/dheft_ca.hpp"
#include "core/policies/dsdf.hpp"
#include "core/policies/dsmf.hpp"
#include "core/policies/dsmf_ca.hpp"

namespace dpjit::core {
namespace {

template <typename P>
std::function<std::unique_ptr<FirstPhasePolicy>()> first() {
  return [] { return std::make_unique<P>(); };
}

std::function<std::unique_ptr<ReadyQueuePolicy>()> second(std::string_view name) {
  return [name] { return make_ready_policy(name); };
}

}  // namespace

Algorithm make_algorithm(std::string_view name) {
  Algorithm a;
  a.name = std::string(name);
  if (name == "dsmf") {
    a.make_first = first<DsmfPolicy>();
    a.make_second = second("dsmf");
  } else if (name == "dheft") {
    a.make_first = first<DheftPolicy>();
    a.make_second = second("lrpm");
  } else if (name == "dsdf") {
    a.make_first = first<DsdfPolicy>();
    a.make_second = second("slack");
  } else if (name == "minmin") {
    a.make_first = first<MinMinPolicy>();
    a.make_second = second("stf");
  } else if (name == "maxmin") {
    a.make_first = first<MaxMinPolicy>();
    a.make_second = second("ltf");
  } else if (name == "sufferage") {
    a.make_first = first<SufferagePolicy>();
    a.make_second = second("lsf");
  } else if (name == "heft") {
    a.make_planner = [] { return std::make_unique<HeftPlanner>(); };
    a.make_second = second("fcfs");
  } else if (name == "smf") {
    a.make_planner = [] { return std::make_unique<SmfPlanner>(); };
    a.make_second = second("fcfs");
  } else if (name == "heft-la") {
    a.make_planner = [] { return std::make_unique<LookaheadHeftPlanner>(); };
    a.make_second = second("fcfs");
  } else if (name == "dsmf-ca") {
    a.make_first = first<DsmfCaPolicy>();
    a.make_second = second("dsmf");
  } else if (name == "dsmf-tc") {
    a.make_first = first<DsmfPolicy>();
    a.make_second = second("tcms");
  } else if (name == "dheft-ca") {
    a.make_first = first<DheftCaPolicy>();
    a.make_second = second("lrpm");
  } else if (name == "lookahead-ca") {
    a.make_planner = [] { return std::make_unique<LookaheadHeftPlanner>(); };
    a.make_second = second("fcfs");
    a.contended_planner = true;
  } else if (name == "dsmf-fcfs") {
    a.make_first = first<DsmfPolicy>();
    a.make_second = second("fcfs");
  } else if (name == "dheft-fcfs") {
    a.make_first = first<DheftPolicy>();
    a.make_second = second("fcfs");
  } else if (name == "minmin-fcfs") {
    a.make_first = first<MinMinPolicy>();
    a.make_second = second("fcfs");
  } else if (name == "maxmin-fcfs") {
    a.make_first = first<MaxMinPolicy>();
    a.make_second = second("fcfs");
  } else if (name == "sufferage-fcfs") {
    a.make_first = first<SufferagePolicy>();
    a.make_second = second("fcfs");
  } else {
    throw std::invalid_argument("unknown algorithm: " + std::string(name));
  }
  return a;
}

std::vector<std::string> paper_algorithms() {
  return {"dheft", "heft", "maxmin", "minmin", "dsdf", "sufferage", "dsmf", "smf"};
}

std::vector<std::string> all_algorithms() {
  auto names = paper_algorithms();
  for (const char* v : {"dsmf-fcfs", "dheft-fcfs", "minmin-fcfs", "maxmin-fcfs",
                        "sufferage-fcfs", "heft-la", "dsmf-ca", "dsmf-tc", "dheft-ca",
                        "lookahead-ca"}) {
    names.emplace_back(v);
  }
  return names;
}

}  // namespace dpjit::core
