#include "core/dispatch.hpp"

namespace dpjit::core {

int select_min_ft(DispatchContext& ctx, const CandidateTask& task) {
  const auto& resources = ctx.resources();
  int best = -1;
  double best_ft = kInf;
  for (std::size_t i = 0; i < resources.size(); ++i) {
    const double ft = ctx.finish_time(task, resources[i]);
    if (ft < best_ft) {
      best_ft = ft;
      best = static_cast<int>(i);
    }
  }
  return best;
}

int select_min_ft_contended(DispatchContext& ctx, const CandidateTask& task) {
  const auto& resources = ctx.resources();
  int best = -1;
  double best_ft = kInf;
  for (std::size_t i = 0; i < resources.size(); ++i) {
    const double ft = ctx.finish_time_contended(task, resources[i]);
    if (ft < best_ft) {
      best_ft = ft;
      best = static_cast<int>(i);
    }
  }
  return best;
}

}  // namespace dpjit::core
