// Failed-task rescheduling - the paper's stated future work (Section VI:
// "This issue can be solved by automatically rescheduling the failed tasks at
// the scheduler nodes"). Implemented as an opt-in extension
// (SystemConfig::reschedule_failed).
//
// At every scheduling cycle the home node scans its workflows for tasks lost
// to churn and returns them to the schedule-point set. Because there is no
// checkpointing, a failed task whose input data vanished with a departed node
// can only be recovered by *re-executing* the precedent that produced the
// data - so recovery walks upward demoting finished precedents whose
// execution nodes are gone, until it reaches tasks whose inputs still exist.
#include <cassert>

#include "core/grid_system.hpp"

namespace dpjit::core {

void GridSystem::recover_failed_tasks() {
  for (auto& wf : workflows_) {
    if (wf.done() || wf.failed_tasks == 0) continue;
    for (std::size_t t = 0; t < wf.tasks.size(); ++t) {
      if (wf.tasks[t].state == TaskState::kFailed) {
        recover_task(wf, TaskIndex{static_cast<TaskIndex::underlying_type>(t)}, 0);
      }
    }
  }
}

int GridSystem::unfinished_pred_count(const WorkflowInstance& wf, TaskIndex task) const {
  // `unfinished_preds` counts precedents whose completion the home node has
  // not (yet) processed - the decrement happens when the finish notification
  // arrives (on_task_finished_at_home), not when the task finishes at its
  // execution node. Recomputing must therefore treat a finished-but-not-yet-
  // notified precedent as unfinished, matching the decrement bookkeeping.
  int unfinished = 0;
  for (TaskIndex p : wf.dag.predecessors(task)) {
    const auto& prt = wf.tasks[static_cast<std::size_t>(p.get())];
    if (prt.state != TaskState::kFinished || !prt.finish_notified) ++unfinished;
  }
  return unfinished;
}

void GridSystem::recover_task(WorkflowInstance& wf, TaskIndex task, int depth) {
  assert(depth <= static_cast<int>(wf.tasks.size()) && "recovery recursion exceeds DAG depth");
  auto& rt = wf.tasks[static_cast<std::size_t>(task.get())];
  if (rt.state != TaskState::kFailed) return;

  // Re-execute precedents whose outputs are no longer reachable. With result
  // collection (home_keeps_outputs) a finished precedent's data is always
  // available at the home node, so no re-execution is ever needed.
  for (TaskIndex p : wf.dag.predecessors(task)) {
    auto& prt = wf.tasks[static_cast<std::size_t>(p.get())];
    if (!config_.home_keeps_outputs && prt.state == TaskState::kFinished &&
        !nodes_[static_cast<std::size_t>(prt.exec_node.get())].alive()) {
      // Demote: the data died with the node. Successors other than `task`
      // that were still waiting on schedule must wait for the re-execution.
      // Every waiting/schedulable/failed successor has its precedent count
      // recomputed from the precedent states rather than incremented: a blind
      // increment double-counts p for a successor whose completion
      // notification was still in flight (the stale-notification guard in
      // on_task_finished_at_home drops that notification), and failed
      // successors previously kept a stale count until their own recovery.
      prt.state = TaskState::kFailed;
      prt.finish_notified = false;
      --wf.finished_tasks;
      ++wf.failed_tasks;
      for (TaskIndex s : wf.dag.successors(p)) {
        auto& srt = wf.tasks[static_cast<std::size_t>(s.get())];
        if (srt.state == TaskState::kSchedulable) srt.state = TaskState::kWaiting;
        if (srt.state == TaskState::kWaiting || srt.state == TaskState::kFailed) {
          srt.unfinished_preds = unfinished_pred_count(wf, s);
        }
      }
    }
    if (prt.state == TaskState::kFailed) recover_task(wf, p, depth + 1);
  }

  // Return this task to the just-in-time pipeline.
  const int unfinished = unfinished_pred_count(wf, task);
  rt.unfinished_preds = unfinished;
  rt.state = unfinished == 0 ? TaskState::kSchedulable : TaskState::kWaiting;
  rt.exec_node = NodeId{};
  rt.finish_notified = false;
  rt.dispatched_at = rt.started_at = rt.finished_at = kNoTime;
  --wf.failed_tasks;
  ++tasks_rescheduled_;
  trace_.record(engine_.now(), sim::TraceKind::kReschedule, wf.home, TaskRef{wf.id, task});
}

}  // namespace dpjit::core
