// Failed-task rescheduling - the paper's stated future work (Section VI:
// "This issue can be solved by automatically rescheduling the failed tasks at
// the scheduler nodes"). Implemented as an opt-in extension
// (SystemConfig::reschedule_failed).
//
// At every scheduling cycle the home node scans its workflows for tasks lost
// to churn and returns them to the schedule-point set. Because there is no
// checkpointing, a failed task whose input data vanished with a departed node
// can only be recovered by *re-executing* the precedent that produced the
// data - so recovery walks upward demoting finished precedents whose
// execution nodes are gone, until it reaches tasks whose inputs still exist.
#include <cassert>

#include "core/grid_system.hpp"

namespace dpjit::core {

void GridSystem::recover_failed_tasks() {
  for (auto& wf : workflows_) {
    if (wf.done() || wf.failed_tasks == 0) continue;
    for (std::size_t t = 0; t < wf.tasks.size(); ++t) {
      if (wf.tasks[t].state == TaskState::kFailed) {
        recover_task(wf, TaskIndex{static_cast<TaskIndex::underlying_type>(t)}, 0);
      }
    }
  }
}

void GridSystem::recover_task(WorkflowInstance& wf, TaskIndex task, int depth) {
  assert(depth <= static_cast<int>(wf.tasks.size()) && "recovery recursion exceeds DAG depth");
  auto& rt = wf.tasks[static_cast<std::size_t>(task.get())];
  if (rt.state != TaskState::kFailed) return;

  // Re-execute precedents whose outputs are no longer reachable. With result
  // collection (home_keeps_outputs) a finished precedent's data is always
  // available at the home node, so no re-execution is ever needed.
  for (TaskIndex p : wf.dag.predecessors(task)) {
    auto& prt = wf.tasks[static_cast<std::size_t>(p.get())];
    if (!config_.home_keeps_outputs && prt.state == TaskState::kFinished &&
        !nodes_[static_cast<std::size_t>(prt.exec_node.get())].alive()) {
      // Demote: the data died with the node. Successors other than `task`
      // that were still waiting on schedule must wait for the re-execution.
      prt.state = TaskState::kFailed;
      --wf.finished_tasks;
      ++wf.failed_tasks;
      for (TaskIndex s : wf.dag.successors(p)) {
        auto& srt = wf.tasks[static_cast<std::size_t>(s.get())];
        if (srt.state == TaskState::kSchedulable) {
          srt.state = TaskState::kWaiting;
          ++srt.unfinished_preds;
        } else if (srt.state == TaskState::kWaiting) {
          ++srt.unfinished_preds;
        }
      }
    }
    if (prt.state == TaskState::kFailed) recover_task(wf, p, depth + 1);
  }

  // Return this task to the just-in-time pipeline.
  int unfinished = 0;
  for (TaskIndex p : wf.dag.predecessors(task)) {
    const auto& prt = wf.tasks[static_cast<std::size_t>(p.get())];
    if (prt.state != TaskState::kFinished) ++unfinished;
  }
  rt.unfinished_preds = unfinished;
  rt.state = unfinished == 0 ? TaskState::kSchedulable : TaskState::kWaiting;
  rt.exec_node = NodeId{};
  rt.dispatched_at = rt.started_at = rt.finished_at = kNoTime;
  --wf.failed_tasks;
  ++tasks_rescheduled_;
  trace_.record(engine_.now(), sim::TraceKind::kReschedule, wf.home, TaskRef{wf.id, task});
}

}  // namespace dpjit::core
