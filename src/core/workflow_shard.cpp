#include "core/workflow_shard.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <unordered_map>
#include <utility>
#include <vector>

#include "grid/models/transfer_model_detail.hpp"
#include "sim/shard_engine.hpp"

namespace dpjit::core {
namespace {

// Message-key scheme: (kind << 62) | (barrier index << 16) | shard. Keys must
// be globally unique (ShardEngine contract) and the kind field doubles as the
// same-timestamp tiebreak at a barrier instant t = kE on shard 0:
//   DONE (0)   - drain reports from the drives two epochs back fill the inbox,
//   BARRIER(1) - then the barrier consumes the inbox and re-solves,
//   DRIVE (2)  - then shard 0's own ledger drive applies the PREVIOUS
//                barrier's delta (disjoint state, so the order with BARRIER
//                is immaterial - but it must be deterministic).
// 46 index bits cover ~2e13 barriers; 16 shard bits cover the ShardMap clamp.
constexpr std::uint64_t kKindDone = 0;
constexpr std::uint64_t kKindBarrier = 1;
constexpr std::uint64_t kKindDrive = 2;

std::uint64_t msg_key(std::uint64_t kind, std::uint64_t barrier_index, std::uint64_t shard) {
  return (kind << 62) | (barrier_index << 16) | shard;
}

/// Ledger-side state of one in-flight flow: what is left and the epoch's
/// frozen rate. The TransferManager deliberately does NOT advance its own
/// remaining_mb in quantised mode - volume lives here and only here.
struct LedgerFlow {
  double remaining_mb = 0.0;
  double rate_mbps = 0.0;
};

/// One shard's slice of a barrier delta (plain data; shipped by index through
/// the double buffer, never through an event capture - InlineFn is 48 bytes).
struct ShardDelta {
  std::vector<grid::QuantisedJoin> joins;
  std::vector<grid::QuantisedRateChange> rate_changes;
  std::vector<std::uint64_t> cancels;

  void clear() {
    joins.clear();
    rate_changes.clear();
    cancels.clear();
  }
};

/// Per-shard ledger plus its private counters. Only ever touched by events
/// running on the owning shard's lane, so worker threads need no locks.
struct Ledger {
  std::unordered_map<std::uint64_t, LedgerFlow> flows;
  std::uint64_t joins = 0;
  std::uint64_t drains = 0;
  std::uint64_t cancels = 0;
};

class QuantisedDriver {
 public:
  QuantisedDriver(sim::Engine& world, grid::TransferManager& tm, const ShardMap& map,
                  double epoch_s, int threads, SimTime horizon)
      : world_(world), tm_(tm), map_(map), epoch_(epoch_s), horizon_(horizon),
        se_(map.shards, epoch_s), ledgers_(static_cast<std::size_t>(map.shards)) {
    se_.set_threads(threads);
    // Our windows hold ~2 events per shard, far under the generic threshold
    // that targets dense scale-model windows; without this the drive/barrier
    // overlap (the entire point of sharding this path) would never engage.
    se_.set_parallel_threshold(2);
    deltas_[0].resize(static_cast<std::size_t>(map.shards));
    deltas_[1].resize(static_cast<std::size_t>(map.shards));
  }

  QuantisedRunStats run() {
    se_.seed(0, 0.0, msg_key(kKindBarrier, 0, 0), [this] { barrier(0, 0.0); });
    se_.run_until(horizon_);
    // Tail flush: world events in (last barrier, horizon] when the horizon is
    // not a barrier multiple. Flows still in flight simply do not complete -
    // the same horizon cut-off the fluid mode applies.
    world_.run_until(horizon_);
    stats_.windows = se_.windows();
    stats_.parallel_windows = se_.parallel_windows();
    for (const Ledger& led : ledgers_) {
      stats_.flows_joined += led.joins;
      stats_.flows_drained += led.drains;
      stats_.flows_cancelled += led.cancels;
    }
    return stats_;
  }

 private:
  /// Epoch barrier B_k at t = kE (accumulated, not k * E: repeated addition
  /// keeps every post() landing at EXACTLY now + window for any epoch).
  void barrier(std::uint64_t k, double t) {
    // 1. The world catches up to the barrier instant. All grid behaviour
    // (scheduling cycles, gossip, churn, transfer starts/aborts) happens in
    // here, on shard 0's lane - identical for every shard count.
    world_.run_until(t);

    // 2. Deliver the drains the drives reported for this instant. The global
    // (finish_s, id) sort makes the callback order - and therefore every
    // downstream world event - independent of how flows partition over
    // ledgers. Owner entries die here: a later cancel for a delivered flow
    // must not be routed (its ledger already dropped it).
    std::sort(inbox_.begin(), inbox_.end(), [](const auto& a, const auto& b) {
      return a.finish_s != b.finish_s ? a.finish_s < b.finish_s : a.id < b.id;
    });
    for (const auto& d : inbox_) owner_.erase(d.id);
    tm_.quantised_deliver(inbox_);
    inbox_.clear();

    // 3. Admissions + the epoch's one frozen re-solve.
    grid::QuantisedBarrierDelta delta = tm_.quantised_barrier();
    ++stats_.barriers;

    // 4. Partition the delta into per-shard slices (double-buffered on
    // barrier parity: the drives reading slot k&1 at (k+1)E run concurrently
    // with barrier k+1 writing slot (k+1)&1).
    const int slot = static_cast<int>(k & 1);
    std::vector<ShardDelta>& per = deltas_[static_cast<std::size_t>(slot)];
    for (ShardDelta& sd : per) sd.clear();
    for (const grid::QuantisedJoin& j : delta.joins) {
      const int s = map_.shard(j.src);
      owner_.emplace(j.id, s);
      per[static_cast<std::size_t>(s)].joins.push_back(j);
    }
    for (const grid::QuantisedRateChange& rc : delta.rate_changes) {
      // Unowned ids are flows already drained (removal pending delivery);
      // their ledger entry is gone, so the change has nowhere to go.
      if (const auto it = owner_.find(rc.id); it != owner_.end()) {
        per[static_cast<std::size_t>(it->second)].rate_changes.push_back(rc);
      }
    }
    for (const std::uint64_t id : delta.cancels) {
      if (const auto it = owner_.find(id); it != owner_.end()) {
        per[static_cast<std::size_t>(it->second)].cancels.push_back(id);
        owner_.erase(it);
      }
    }

    // 5. Ship the epoch. Drives always go out (an empty slice still advances
    // that shard's in-flight flows); the chain stops once the next barrier
    // would overshoot the horizon.
    const double next_t = t + epoch_;
    if (next_t > horizon_) return;
    for (int s = 0; s < se_.shards(); ++s) {
      se_.post(0, s, next_t, msg_key(kKindDrive, k, static_cast<std::uint64_t>(s)),
               [this, s, slot, t, k] { drive(s, slot, t, k); });
    }
    se_.post(0, 0, next_t, msg_key(kKindBarrier, k + 1, 0),
             [this, k, next_t] { barrier(k + 1, next_t); });
  }

  /// Ledger drive for barrier k's epoch [t, t + E), executing at t + E on
  /// shard `s`'s lane (possibly a worker thread): apply the delta slice, then
  /// one lazy integration pass over the shard's flows.
  void drive(int s, int slot, double t, std::uint64_t k) {
    Ledger& led = ledgers_[static_cast<std::size_t>(s)];
    ShardDelta& delta = deltas_[static_cast<std::size_t>(slot)][static_cast<std::size_t>(s)];
    for (const grid::QuantisedJoin& j : delta.joins) {
      led.flows[j.id] = LedgerFlow{j.remaining_mb, j.rate_mbps};
      ++led.joins;
    }
    for (const grid::QuantisedRateChange& rc : delta.rate_changes) {
      if (const auto it = led.flows.find(rc.id); it != led.flows.end()) {
        it->second.rate_mbps = rc.rate_mbps;
      }
    }
    // Cancels last: a flow admitted and aborted at the same barrier arrives
    // as join + cancel in one slice, and the cancel must win.
    for (const std::uint64_t id : delta.cancels) led.cancels += led.flows.erase(id);

    std::vector<grid::QuantisedDone> drained;
    for (auto& [id, f] : led.flows) {
      // The barrier's stall guard aborts zero-rate flows at admission and
      // removals never lower surviving solver rates, so every ledger rate is
      // strictly positive and the division below is safe.
      if (f.remaining_mb - f.rate_mbps * epoch_ <= grid::detail::kEpsilonMb) {
        const double finish = t + std::min(epoch_, f.remaining_mb / f.rate_mbps);
        drained.push_back(grid::QuantisedDone{finish, id});
      } else {
        f.remaining_mb -= f.rate_mbps * epoch_;
      }
    }
    if (drained.empty()) return;
    // Pre-sort per shard (hash-order collection) so the report itself is
    // deterministic; the barrier still re-sorts globally across shards.
    std::sort(drained.begin(), drained.end(), [](const auto& a, const auto& b) {
      return a.finish_s != b.finish_s ? a.finish_s < b.finish_s : a.id < b.id;
    });
    for (const auto& d : drained) led.flows.erase(d.id);
    led.drains += drained.size();
    // One report per (shard, epoch), delivered at (k+2)E - before barrier
    // k+2's world advance by the DONE < BARRIER key ordering.
    se_.post(s, 0, se_.now(s) + epoch_, msg_key(kKindDone, k, static_cast<std::uint64_t>(s)),
             [this, drained = std::move(drained)] {
               inbox_.insert(inbox_.end(), drained.begin(), drained.end());
             });
  }

  sim::Engine& world_;
  grid::TransferManager& tm_;
  const ShardMap& map_;
  double epoch_;
  SimTime horizon_;
  sim::ShardEngine se_;
  std::vector<Ledger> ledgers_;
  /// Barrier-parity double buffer of per-shard delta slices (see barrier()).
  std::array<std::vector<ShardDelta>, 2> deltas_;
  /// Shard-0 state: flow id -> owning ledger shard. Present exactly while the
  /// ledger may hold the flow; the ROUTING decisions derived from it are
  /// shard-count-invariant even though the mapped values are not.
  std::unordered_map<std::uint64_t, int> owner_;
  /// Shard-0 state: drains awaiting delivery at the next barrier.
  std::vector<grid::QuantisedDone> inbox_;
  QuantisedRunStats stats_;
};

}  // namespace

double derive_quantised_epoch(const ShardMap& map, double requested_s) {
  if (requested_s > 0.0) return requested_s;
  constexpr double kFloorS = 60.0;
  if (!std::isfinite(map.min_latency_s)) return kFloorS;  // < 2 nodes
  return std::max(map.min_latency_s, kFloorS);
}

QuantisedRunStats run_quantised_transfers(sim::Engine& world, grid::TransferManager& tm,
                                          const ShardMap& map, double epoch_s, int threads,
                                          SimTime horizon) {
  QuantisedDriver driver(world, tm, map, epoch_s, threads, horizon);
  return driver.run();
}

}  // namespace dpjit::core
