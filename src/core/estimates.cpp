#include "core/estimates.hpp"

#include <algorithm>
#include <cassert>

namespace dpjit::core {

double queuing_delay_s(const gossip::ResourceEntry& resource) {
  assert(resource.capacity_mips > 0.0);
  return std::max(0.0, resource.load_mi) / resource.capacity_mips;
}

double execution_time_s(double load_mi, const gossip::ResourceEntry& resource) {
  assert(resource.capacity_mips > 0.0);
  return load_mi / resource.capacity_mips;
}

double longest_transmission_delay_s(const TaskEstimateInputs& task, NodeId target,
                                    const BandwidthEstimateFn& bandwidth) {
  double ltd = 0.0;
  for (const InputSource& in : task.inputs) {
    if (in.location == target || in.size_mb <= 0.0) continue;
    const double bw = bandwidth(in.location, target);
    const double t = bw > 0.0 ? in.size_mb / bw : kInf;
    ltd = std::max(ltd, t);
  }
  return ltd;
}

FinishTimeEstimate estimate_finish_time(const TaskEstimateInputs& task,
                                        const gossip::ResourceEntry& resource,
                                        const BandwidthEstimateFn& bandwidth) {
  FinishTimeEstimate est;
  est.start_s = std::max(queuing_delay_s(resource),
                         longest_transmission_delay_s(task, resource.node, bandwidth));
  est.finish_s = est.start_s + execution_time_s(task.load_mi, resource);
  return est;
}

double longest_transmission_delay_s(const TaskEstimateInputs& task, NodeId target,
                                    const TransferTimeFn& transfer_time) {
  double ltd = 0.0;
  for (const InputSource& in : task.inputs) {
    if (in.location == target || in.size_mb <= 0.0) continue;
    ltd = std::max(ltd, transfer_time(in.location, target, in.size_mb));
  }
  return ltd;
}

FinishTimeEstimate estimate_finish_time(const TaskEstimateInputs& task,
                                        const gossip::ResourceEntry& resource,
                                        const TransferTimeFn& transfer_time) {
  FinishTimeEstimate est;
  est.start_s = std::max(queuing_delay_s(resource),
                         longest_transmission_delay_s(task, resource.node, transfer_time));
  est.finish_s = est.start_s + execution_time_s(task.load_mi, resource);
  return est;
}

}  // namespace dpjit::core
