// Sharded barrier driver for the epoch-quantised network mode: runs the
// classic workflow path (core::GridSystem) on sim::ShardEngine.
//
// Topology of the run (S shards, epoch E == the engine window):
//   - Shard 0 owns the WHOLE world: the serial sim::Engine with every grid
//     event (gossip, churn, scheduling, task execution, transfer latency
//     phases) plus the TransferManager/FairShareSolver. A barrier event B_k
//     fires at t = kE: it advances the world engine to kE, delivers the
//     globally (finish_s, id)-sorted drains reported two epochs earlier,
//     executes TransferManager::quantised_barrier() (admissions + one frozen
//     re-solve) and posts the resulting per-shard delta slices.
//   - Shards 0..S-1 each own a flow LEDGER: {remaining volume, frozen rate}
//     per in-flight flow whose source node lives in the shard's block of the
//     core::ShardMap. A drive event at (k+1)E applies barrier k's delta
//     (joins -> rate changes -> cancels, so a same-barrier cancel beats its
//     own join) and integrates the epoch [kE, (k+1)E) in one O(shard flows)
//     pass - the lazy advance that replaces fluid mode's O(flows) per
//     mutation (ROADMAP item 3). Detected drains are posted back to shard 0
//     as one message per (shard, epoch), arriving at (k+2)E.
//
// Every cross-shard interaction is a window-barrier message posted exactly
// one epoch ahead, so the conservative-lookahead precondition of
// ShardEngine::post holds by construction for ANY epoch length - the driver
// never depends on the routed-latency lookahead. Ledger drives run on the
// worker pool concurrently with the next barrier's world epoch; results are
// byte-identical for any shard and thread count (the ShardEngine delivery
// contract plus the global drain sort).
//
// The serial quantised simulation is NOT a separate code path: it is this
// driver at shards = 1 (ShardEngine's serial special case).
#pragma once

#include <cstdint>

#include "core/grid_system.hpp"

namespace dpjit::core {

/// Observability of one quantised barrier-loop run.
struct QuantisedRunStats {
  std::uint64_t barriers = 0;          ///< epoch barriers executed on shard 0
  std::uint64_t windows = 0;           ///< ShardEngine windows driven
  std::uint64_t parallel_windows = 0;  ///< windows that ran on the worker pool
  std::uint64_t flows_joined = 0;      ///< ledger joins shipped by barriers
  std::uint64_t flows_drained = 0;     ///< ledger-detected drains
  std::uint64_t flows_cancelled = 0;   ///< mid-epoch aborts applied by ledgers
};

/// The epoch actually used for a run: `requested_s` when positive, otherwise
/// max(map.min_latency_s, 60 s). The derived default keys off min_latency_s -
/// NOT lookahead_s - because the former is shard-count-invariant, and the
/// byte-identical-at-any-shard-count guarantee starts with an identical
/// barrier schedule. The 60 s floor keeps WAN topologies (sub-millisecond
/// routed latencies) from degenerating into millions of near-empty barriers.
[[nodiscard]] double derive_quantised_epoch(const ShardMap& map, double requested_s);

/// Drives `world` (a started GridSystem's engine) to `horizon` under the
/// epoch-quantised network mode: `tm` must be the system's TransferManager in
/// Mode::kQuantisedFair, `map` the system's shard_map(shards). Runs the
/// barrier/ledger loop described above on a ShardEngine with window
/// `epoch_s`, then flushes the world's tail events in (last barrier,
/// horizon]. `threads` <= 0 means hardware concurrency.
QuantisedRunStats run_quantised_transfers(sim::Engine& world, grid::TransferManager& tm,
                                          const ShardMap& map, double epoch_s, int threads,
                                          SimTime horizon);

}  // namespace dpjit::core
