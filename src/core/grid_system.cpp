#include "core/grid_system.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "core/rpm.hpp"
#include "core/workflow_shard.hpp"
#include "dag/critical_path.hpp"
#include "net/routing.hpp"

namespace dpjit::core {


// ---------------------------------------------------------------------------
// Shard mapping for the conservative time-window PDES loop.
// ---------------------------------------------------------------------------

ShardMap compute_shard_map(const net::Routing& routing, int shards) {
  const int n = routing.node_count();
  ShardMap map;
  map.nodes = n;
  map.shards = std::clamp(shards, 1, std::max(1, n));
  map.shard_of.assign(static_cast<std::size_t>(std::max(0, n)), 0);

  // Near-equal contiguous blocks: the first (n % shards) blocks get one extra
  // node. Contiguity matters because callers lay out co-located entities
  // (e.g. the scale model's regions) on consecutive ids.
  const int base = map.shards > 0 ? n / map.shards : 0;
  const int extra = map.shards > 0 ? n % map.shards : 0;
  int begin = 0;
  for (int s = 0; s < map.shards; ++s) {
    const int size = base + (s < extra ? 1 : 0);
    map.ranges.emplace_back(begin, begin + size);
    for (int u = begin; u < begin + size; ++u) {
      map.shard_of[static_cast<std::size_t>(u)] = s;
    }
    begin += size;
  }

  // Lookahead bounds from the routed latencies. The matrix is symmetric in
  // practice (undirected links), but scan ordered pairs anyway: correctness
  // must not depend on that.
  map.lookahead_s = kInf;
  map.min_latency_s = kInf;
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      if (u == v) continue;
      const double lat = routing.latency_s(NodeId{u}, NodeId{v});
      map.min_latency_s = std::min(map.min_latency_s, lat);
      if (map.shard_of[static_cast<std::size_t>(u)] != map.shard_of[static_cast<std::size_t>(v)]) {
        map.lookahead_s = std::min(map.lookahead_s, lat);
      }
    }
  }
  return map;
}

ShardMap GridSystem::shard_map(int shards) const { return compute_shard_map(routing_, shards); }

// ---------------------------------------------------------------------------
// DispatchContext implementation backed by the live system.
// ---------------------------------------------------------------------------

class SystemDispatchContext final : public DispatchContext {
 public:
  SystemDispatchContext(GridSystem& sys, NodeId home, dag::AverageEstimates averages)
      : sys_(sys), home_(home), averages_(averages) {
    // Working copy of RSS(p_s): the gossiped entries plus the home node itself
    // with its true local state (a node always knows itself).
    const auto& view = sys_.gossip_->rss(home);
    resources_.reserve(view.size() + 1);
    const auto& self = sys_.nodes_[static_cast<std::size_t>(home.get())];
    resources_.push_back(gossip::ResourceEntry{home, self.total_load_mi(sys_.engine_.now()),
                                               self.capacity_mips(), sys_.engine_.now(),
                                               0});
    // Message-level gossip: never offer work to a peer this home believes
    // dead. (The view forgets declared-dead peers at the cycle sweep, so this
    // only filters beliefs formed since; the suspect state is NOT filtered -
    // suspects may well be alive, and the re-offer pass handles the fallout.)
    const auto* detector = sys_.gossip_->detector();
    for (const auto& e : view.entries()) {
      if (detector != nullptr && detector->believes_dead(home, e.node)) continue;
      resources_.push_back(e);
    }

    // Pending workflows with schedule points, RPM and ms under the home's
    // believed averages (Algorithm 1 lines 2-7).
    for (WorkflowId id : sys_.home_workflows_[static_cast<std::size_t>(home.get())]) {
      auto& wf = sys_.workflows_[static_cast<std::size_t>(id.get())];
      if (wf.done()) continue;
      const auto sps = sys_.schedule_points(wf);
      if (sps.empty()) continue;
      const auto rpm = rest_path_makespans(wf.dag, averages_);
      PendingWorkflow pending;
      pending.wf = id;
      pending.makespan = remaining_makespan(rpm, sps);
      for (TaskIndex t : sps) {
        CandidateTask c;
        c.ref = TaskRef{id, t};
        c.load_mi = wf.dag.task(t).load_mi;
        c.rpm = rpm[static_cast<std::size_t>(t.get())];
        c.wf_makespan = pending.makespan;
        c.slack = pending.makespan - c.rpm;
        c.inputs = sys_.estimate_inputs(wf, t);
        pending.tasks.push_back(std::move(c));
      }
      pending_.push_back(std::move(pending));
    }
  }

  [[nodiscard]] SimTime now() const override { return sys_.engine_.now(); }
  [[nodiscard]] NodeId home() const override { return home_; }
  [[nodiscard]] std::vector<gossip::ResourceEntry>& resources() override { return resources_; }
  [[nodiscard]] const std::vector<PendingWorkflow>& pending() const override { return pending_; }

  [[nodiscard]] double finish_time(const CandidateTask& task,
                                   const gossip::ResourceEntry& resource) const override {
    return estimate_finish_time(task.inputs, resource, bandwidth_fn()).finish_s;
  }

  [[nodiscard]] double exec_time(const CandidateTask& task,
                                 const gossip::ResourceEntry& resource) const override {
    return execution_time_s(task.load_mi, resource);
  }

  [[nodiscard]] double finish_time_contended(const CandidateTask& task,
                                             const gossip::ResourceEntry& resource) const override {
    // Live-oracle LTD: the TransferManager answers what each input transfer
    // would cost if it started now (in fair-sharing mode a what-if probe of
    // the max-min solver; in bottleneck mode the true routed path rate).
    prefill_oracle_cache();
    TransferTimeFn oracle_fn = [this](NodeId from, NodeId to, double mb) {
      return oracle_transfer_time(from, to, mb);
    };
    return estimate_finish_time(task.inputs, resource, oracle_fn).finish_s;
  }

  void dispatch(const CandidateTask& task, NodeId target) override {
    auto& wf = sys_.workflows_[static_cast<std::size_t>(task.ref.workflow.get())];
    auto& rt = wf.tasks[static_cast<std::size_t>(task.ref.task.get())];
    if (rt.state != TaskState::kSchedulable) {
      throw std::logic_error("dispatch: task is not a schedule point (dispatched twice?)");
    }
    sys_.dispatch_task(wf, task.ref.task, target, task.rpm, task.wf_makespan, task.slack,
                       task.sufferage);
    // Algorithm 1 line 15: charge the dispatched load to the local RSS copy.
    for (auto& r : resources_) {
      if (r.node == target) {
        r.load_mi += task.load_mi;
        break;
      }
    }
  }

 private:
  static std::uint64_t pair_key(NodeId from, NodeId to) {
    const auto src_bits = static_cast<std::uint64_t>(static_cast<std::uint32_t>(from.get()));
    return (src_bits << 32) | static_cast<std::uint32_t>(to.get());
  }

  /// Fills the per-cycle cache with every (input location, resource) pair a
  /// contention-aware policy can ask about this cycle, through one batched
  /// RateOracle::probe_rates call. Lazy on the first contended estimate so
  /// static algorithms pay nothing; probes are side-effect-free, so prefilling
  /// pairs the policy never ends up ranking cannot change any answer.
  void prefill_oracle_cache() const {
    if (oracle_prefilled_) return;
    oracle_prefilled_ = true;
    std::vector<std::pair<NodeId, NodeId>> pairs;
    std::unordered_set<std::uint64_t> seen;
    for (const auto& wf : pending_) {
      for (const auto& t : wf.tasks) {
        for (const auto& in : t.inputs.inputs) {
          for (const auto& r : resources_) {
            if (in.location == r.node) continue;  // loopback: no probe needed
            if (seen.insert(pair_key(in.location, r.node)).second) {
              pairs.emplace_back(in.location, r.node);
            }
          }
        }
      }
    }
    const std::vector<double> rates = sys_.transfers_->probe_rates(pairs);
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      const auto [from, to] = pairs[i];
      oracle_cache_.emplace(pair_key(from, to),
                            std::pair<double, double>{sys_.routing_.latency_s(from, to), rates[i]});
    }
  }

  /// Oracle-backed transfer time with a per-cycle (src, dst) cache. The
  /// context lives for exactly one scheduling cycle and the engine processes
  /// no events while it runs, so the in-flight flow set - and therefore every
  /// oracle answer - is frozen: caching the (latency, rate) pair and redoing
  /// the `latency + mb / rate` arithmetic is bit-identical to re-probing,
  /// while collapsing the probe count from tasks x resources x inputs to the
  /// number of distinct node pairs.
  [[nodiscard]] double oracle_transfer_time(NodeId from, NodeId to, double mb) const {
    if (from == to) return 0.0;
    const std::uint64_t key = pair_key(from, to);
    auto it = oracle_cache_.find(key);
    if (it == oracle_cache_.end()) {
      const double latency = sys_.routing_.latency_s(from, to);
      const double rate = sys_.transfers_->predicted_rate_mbps(from, to);
      it = oracle_cache_.emplace(key, std::pair<double, double>{latency, rate}).first;
    }
    const auto [latency, rate] = it->second;
    return net::transfer_time_from_rate(latency, rate, mb);
  }

  [[nodiscard]] BandwidthEstimateFn bandwidth_fn() const {
    const double fallback = averages_.bandwidth_mbps;
    const auto* landmarks = &sys_.landmarks_;
    return [landmarks, fallback](NodeId a, NodeId b) {
      return landmarks->estimate_mbps(a, b, fallback);
    };
  }

  GridSystem& sys_;
  NodeId home_;
  dag::AverageEstimates averages_;
  std::vector<gossip::ResourceEntry> resources_;
  std::vector<PendingWorkflow> pending_;
  /// (src << 32 | dst) -> (latency_s, predicted rate) for this cycle.
  mutable std::unordered_map<std::uint64_t, std::pair<double, double>> oracle_cache_;
  mutable bool oracle_prefilled_ = false;
};

// ---------------------------------------------------------------------------
// Construction / submission
// ---------------------------------------------------------------------------

GridSystem::GridSystem(sim::Engine& engine, const net::Topology& topo,
                       const net::Routing& routing, const net::LandmarkEstimator& landmarks,
                       std::vector<double> capacities, Algorithm algorithm, SystemConfig config,
                       MetricsSink* sink, sim::FaultPlan* faults)
    : engine_(engine),
      topo_(topo),
      routing_(routing),
      landmarks_(landmarks),
      algorithm_(std::move(algorithm)),
      config_(config),
      sink_(sink),
      faults_(faults),
      rng_(config.seed) {
  const int n = topo.node_count();
  if (static_cast<int>(capacities.size()) != n) {
    throw std::invalid_argument("GridSystem: capacities size != node count");
  }
  nodes_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    nodes_.emplace_back(NodeId{i}, capacities[static_cast<std::size_t>(i)]);
  }
  home_workflows_.resize(static_cast<std::size_t>(n));
  running_event_.resize(static_cast<std::size_t>(n), sim::EventQueue::kInvalidHandle);

  double cap_sum = 0.0;
  for (double c : capacities) cap_sum += c;
  true_averages_.capacity_mips = cap_sum / static_cast<double>(n);
  // Deliberately the t=0 healthy-network mean: ranking weights stay stable
  // across link failures/repairs (see "Stale mean bandwidth" in
  // ARCHITECTURE.md for why this is the right average to rank against).
  true_averages_.bandwidth_mbps = std::max(routing.initial_mean_pair_bandwidth_mbps(), 1e-9);

  if (config_.churn.interval_s <= 0.0) config_.churn.interval_s = config_.scheduling_interval_s;

  auto rng_gossip = rng_.fork("gossip");
  gossip_ = std::make_unique<gossip::MixedGossipService>(
      engine_, config_.gossip, n,
      [this](NodeId id, double& load, double& cap) {
        const auto& node = nodes_[static_cast<std::size_t>(id.get())];
        load = node.total_load_mi(engine_.now());
        cap = node.capacity_mips();
      },
      [this](NodeId id) { return nodes_[static_cast<std::size_t>(id.get())].alive(); },
      [this](NodeId a, NodeId b) { return routing_.latency_s(a, b); },
      [this](NodeId id) { return landmarks_.local_mean_mbps(id); }, rng_gossip, faults_);

  // Path tracking only matters when link faults can happen; without a plan it
  // is pure overhead (and the seed behavior must stay untouched).
  transfers_ = std::make_unique<grid::TransferManager>(engine_, topo_, routing_,
                                                       config_.effective_network_mode(),
                                                       /*track_paths=*/faults_ != nullptr);

  churn_ = std::make_unique<grid::ChurnModel>(
      engine_, config_.churn, n, rng_.fork("churn"),
      [this](NodeId id) { return nodes_[static_cast<std::size_t>(id.get())].alive(); },
      [this](NodeId id) { handle_leave(id); }, [this](NodeId id) { handle_join(id); });

  if (algorithm_.make_first) first_phase_ = algorithm_.make_first();
  second_phase_ = algorithm_.make_second();
}

GridSystem::~GridSystem() = default;

WorkflowId GridSystem::submit(NodeId home, dag::Workflow wf) {
  if (!home.valid() || home.get() >= topo_.node_count()) {
    throw std::out_of_range("submit: invalid home node");
  }
  if (config_.churn.dynamic_factor > 0.0 && !churn_->is_stable(home)) {
    throw std::invalid_argument("submit: home nodes must be stable under churn (paper IV.B)");
  }
  wf.normalize();
  if (auto issues = wf.validate(); !issues.empty()) {
    throw std::invalid_argument("submit: invalid workflow: " + issues.front());
  }
  const WorkflowId id{static_cast<WorkflowId::underlying_type>(workflows_.size())};
  wf.set_id(id);

  WorkflowInstance inst;
  inst.id = id;
  inst.home = home;
  inst.dag = std::move(wf);
  inst.submit_time = engine_.now();
  inst.eft = dag::expected_finish_time(inst.dag, true_averages_);
  inst.tasks.resize(inst.dag.task_count());
  for (std::size_t t = 0; t < inst.dag.task_count(); ++t) {
    const TaskIndex ti{static_cast<TaskIndex::underlying_type>(t)};
    inst.tasks[t].unfinished_preds = static_cast<int>(inst.dag.predecessors(ti).size());
    if (inst.tasks[t].unfinished_preds == 0) inst.tasks[t].state = TaskState::kSchedulable;
  }
  workflows_.push_back(std::move(inst));
  home_workflows_[static_cast<std::size_t>(home.get())].push_back(id);
  return id;
}

void GridSystem::start() {
  if (started_) return;
  started_ = true;
  // Bootstrap membership (the role a rendezvous server plays in deployment).
  for (int i = 0; i < topo_.node_count(); ++i) {
    const NodeId id{i};
    if (nodes_[static_cast<std::size_t>(i)].alive()) {
      gossip_->node_joined(id, random_alive_contacts(config_.bootstrap_contacts, id));
    }
  }
  gossip_->start();
  churn_->start();
  scheduler_ = std::make_unique<sim::PeriodicProcess>(
      engine_, config_.first_schedule_at_s, config_.scheduling_interval_s,
      [this](std::uint64_t) { run_scheduling_cycle(); });
  scheduler_->start();

  // Full-ahead algorithms schedule *before execution starts* (Section IV.A):
  // plan everything now and stage the entry tasks immediately.
  if (algorithm_.full_ahead()) {
    ensure_full_ahead_plan();
    for (auto& wf : workflows_) dispatch_planned_ready(wf);
  }
}

void GridSystem::run() {
  start();
  if (config_.effective_network_mode() == net::NetworkMode::kQuantisedFair) {
    // The quantised barrier/ledger loop (core/workflow_shard) owns the clock:
    // it interleaves world epochs with frozen-rate ledger integration on a
    // ShardEngine. shards = 1 is the serial case of the SAME loop - there is
    // deliberately no second quantised code path to drift from it.
    const ShardMap map = shard_map(config_.shards);
    const double epoch = derive_quantised_epoch(map, config_.quantised_epoch_s);
    const QuantisedRunStats stats = run_quantised_transfers(
        engine_, *transfers_, map, epoch, config_.threads, config_.horizon_s);
    quantised_barriers_ = stats.barriers;
    quantised_drains_ = stats.flows_drained;
    quantised_parallel_windows_ = stats.parallel_windows;
    return;
  }
  engine_.run_until(config_.horizon_s);
}

// ---------------------------------------------------------------------------
// Scheduling cycle (phase 1)
// ---------------------------------------------------------------------------

void GridSystem::run_scheduling_cycle() {
  // Re-offer before anything else: pulled-back tasks become schedule points
  // and are re-dispatched by the very same cycle.
  reoffer_suspect_tasks();
  if (config_.reschedule_failed) recover_failed_tasks();
  if (algorithm_.full_ahead()) {
    // Late submissions (and churn-rescheduled tasks) still go through the
    // cycle; the plan itself was made before execution started.
    ensure_full_ahead_plan();
    for (auto& wf : workflows_) dispatch_planned_ready(wf);
  } else {
    for (int i = 0; i < topo_.node_count(); ++i) {
      const NodeId home{i};
      if (!nodes_[static_cast<std::size_t>(i)].alive()) continue;
      if (home_workflows_[static_cast<std::size_t>(i)].empty()) continue;
      schedule_home(home);
    }
  }
  sample_cycle();
}

void GridSystem::reoffer_suspect_tasks() {
  const auto* detector = gossip_->detector();
  if (detector == nullptr) return;  // idealized gossip: membership is exact
  for (auto& wf : workflows_) {
    if (wf.done()) continue;
    if (!nodes_[static_cast<std::size_t>(wf.home.get())].alive()) continue;
    for (std::size_t t = 0; t < wf.tasks.size(); ++t) {
      auto& rt = wf.tasks[t];
      if (rt.state != TaskState::kDispatched && rt.state != TaskState::kRunning) continue;
      if (!rt.exec_node.valid() || rt.exec_node == wf.home) continue;
      if (!detector->believes_dead(wf.home, rt.exec_node)) continue;

      const TaskRef ref{wf.id, TaskIndex{static_cast<TaskIndex::underlying_type>(t)}};
      const TaskState old_state = rt.state;
      const NodeId exec = rt.exec_node;
      // Reset FIRST: the transfer aborts below fire their callbacks
      // synchronously, and those must see the task as already reclaimed
      // (the same ordering fail_task relies on).
      rt.state = TaskState::kSchedulable;
      rt.exec_node = NodeId{};
      rt.dispatched_at = kNoTime;
      rt.started_at = kNoTime;
      ++tasks_reoffered_;
      trace_.record(engine_.now(), sim::TraceKind::kReoffer, exec, ref, "executor suspected dead");

      // Cancel the work at the old executor. The suspicion may be FALSE - the
      // node can be alive and even running the task; the home's decision wins
      // (the duplicate-completion hazard is closed by the stale guards on
      // completion notifications and dispatch deliveries).
      auto& node = nodes_[static_cast<std::size_t>(exec.get())];
      if (node.alive()) {
        if (old_state == TaskState::kRunning) {
          if (node.running() != nullptr && node.running()->ref == ref) {
            node.abort_running();
            engine_.cancel(running_event_[static_cast<std::size_t>(exec.get())]);
            try_start_task(exec);  // the freed CPU can take other ready work
          }
        } else {
          node.remove_ready(ref);
        }
      }
      if (auto it = task_transfers_.find(ref); it != task_transfers_.end()) {
        const auto ids = it->second;
        task_transfers_.erase(it);
        for (auto tid : ids) transfers_->abort(tid);
      }
    }
  }
}

void GridSystem::schedule_home(NodeId home) {
  const auto believed = gossip_->averages(home);
  SystemDispatchContext ctx(
      *this, home, dag::AverageEstimates{believed.capacity_mips, believed.bandwidth_mbps});
  if (ctx.resources().empty()) return;  // Algorithm 1 line 9
  first_phase_->run(ctx);
}

void GridSystem::ensure_full_ahead_plan() {
  if (planned_count_ >= workflows_.size()) return;
  if (!planner_) planner_ = algorithm_.make_planner();
  // The oracle view the paper grants full-ahead baselines: every alive node
  // with its true state, true averages, true pairwise bandwidth.
  PlannerOracle oracle;
  for (int i = 0; i < topo_.node_count(); ++i) {
    const auto& node = nodes_[static_cast<std::size_t>(i)];
    if (!node.alive()) continue;
    oracle.nodes.push_back(gossip::ResourceEntry{NodeId{i}, node.total_load_mi(engine_.now()),
                                                 node.capacity_mips(), engine_.now(), 0});
  }
  oracle.averages = true_averages_;
  oracle.bandwidth = [this](NodeId a, NodeId b) { return routing_.bandwidth_mbps(a, b); };
  if (algorithm_.contended_planner) {
    // Contention-aware planning: charge transfers at the rate the live
    // network would allocate right now. Repeated pairs dedupe through the
    // TransferManager's epoch-keyed probe cache, so a whole planning batch
    // costs one component solve per distinct pair.
    oracle.transfer_time = [this](NodeId a, NodeId b, double mb) {
      return transfers_->expected_transfer_time_s(a, b, mb);
    };
  }
  std::vector<PlanRequest> requests;
  for (std::size_t k = planned_count_; k < workflows_.size(); ++k) {
    auto& wf = workflows_[k];
    requests.push_back(PlanRequest{wf.id, &wf.dag, wf.home, wf.eft});
  }
  planner_->plan(requests, oracle, plan_);
  planned_count_ = workflows_.size();
}

void GridSystem::dispatch_planned_ready(WorkflowInstance& wf) {
  if (wf.done()) return;
  for (TaskIndex t : schedule_points(wf)) dispatch_planned_task(wf, t);
}

void GridSystem::dispatch_planned_task(WorkflowInstance& wf, TaskIndex t) {
  const TaskRef ref{wf.id, t};
  const auto it = plan_.find(ref);
  assert(it != plan_.end() && "full-ahead task missing from plan");
  NodeId target = it->second;
  if (!nodes_[static_cast<std::size_t>(target.get())].alive()) {
    if (config_.reschedule_failed) {
      // Re-map to the alive node with the highest capacity-per-load (the
      // planner's timelines are stale by now anyway).
      NodeId best{};
      double best_score = -1.0;
      for (int i = 0; i < topo_.node_count(); ++i) {
        const auto& node = nodes_[static_cast<std::size_t>(i)];
        if (!node.alive()) continue;
        const double score = node.capacity_mips() / (1.0 + node.total_load_mi(engine_.now()));
        if (score > best_score) {
          best_score = score;
          best = NodeId{i};
        }
      }
      if (!best.valid()) return;
      target = best;
      plan_[ref] = best;
    } else {
      fail_task(ref, "planned node departed");
      return;
    }
  }
  const auto rpm = rest_path_makespans(wf.dag, true_averages_);
  const double ms = remaining_makespan(rpm, schedule_points(wf));
  const double r = rpm[static_cast<std::size_t>(t.get())];
  dispatch_task(wf, t, target, r, ms, ms - r, 0.0);
}

// ---------------------------------------------------------------------------
// Dispatch and data movement
// ---------------------------------------------------------------------------

void GridSystem::dispatch_task(WorkflowInstance& wf, TaskIndex task, NodeId target, double rpm,
                               double makespan, double slack, double sufferage) {
  auto& rt = wf.tasks[static_cast<std::size_t>(task.get())];
  assert(rt.state == TaskState::kSchedulable);
  rt.state = TaskState::kDispatched;
  rt.exec_node = target;
  rt.dispatched_at = engine_.now();
  ++tasks_dispatched_;

  const TaskRef ref{wf.id, task};
  trace_.record(engine_.now(), sim::TraceKind::kDispatch, target, ref);

  grid::ReadyTask ready;
  ready.ref = ref;
  ready.load_mi = wf.dag.task(task).load_mi;
  ready.rpm = rpm;
  ready.wf_makespan = makespan;
  ready.slack = slack;
  ready.sufferage = sufferage;

  const SimTime stamp = rt.dispatched_at;
  engine_.schedule_in(control_latency(wf.home, target), [this, ref, target, ready, stamp] {
    // Ignore stale deliveries (the task may have failed or been rescheduled).
    const auto& rt2 = workflows_[static_cast<std::size_t>(ref.workflow.get())]
                          .tasks[static_cast<std::size_t>(ref.task.get())];
    if (rt2.state != TaskState::kDispatched || rt2.exec_node != target ||
        rt2.dispatched_at != stamp) {
      return;
    }
    deliver_dispatch(ref, target, ready);
  });
}

void GridSystem::deliver_dispatch(TaskRef ref, NodeId target, grid::ReadyTask ready) {
  auto& wf = workflows_[static_cast<std::size_t>(ref.workflow.get())];
  auto& node = nodes_[static_cast<std::size_t>(target.get())];
  if (!node.alive()) {
    fail_task(ref, "target departed before task arrived");
    return;
  }

  // Collect the input transfers: dependent data from each precedent's
  // execution site plus the task image from the home node (step 8 in Fig. 1).
  // When a precedent's node departed and the home retains outputs (result
  // collection), the data is fetched from the home node instead.
  struct Src {
    NodeId from;
    double mb;
  };
  std::vector<Src> sources;
  for (TaskIndex p : wf.dag.predecessors(ref.task)) {
    const auto& prt = wf.tasks[static_cast<std::size_t>(p.get())];
    assert(prt.state == TaskState::kFinished);
    NodeId source = prt.exec_node;
    if (!nodes_[static_cast<std::size_t>(source.get())].alive()) {
      if (!config_.home_keeps_outputs) {
        fail_task(ref, "input data lost with departed node");
        return;
      }
      source = wf.home;
    }
    sources.push_back(Src{source, wf.dag.edge_data(p, ref.task)});
  }
  sources.push_back(Src{wf.home, wf.dag.task(ref.task).image_mb});

  ready.arrived_at = engine_.now();
  ready.arrival_seq = arrival_seq_++;
  ready.pending_inputs = static_cast<int>(sources.size());
  node.add_ready(ready);

  auto& ids = task_transfers_[ref];
  ids.clear();
  for (const Src& src : sources) {
    start_input_transfer(ref, target, src.from, src.mb);
  }
  (void)ids;
}

void GridSystem::start_input_transfer(TaskRef ref, NodeId target, NodeId source, double mb,
                                      int attempt) {
  const NodeId home = workflows_[static_cast<std::size_t>(ref.workflow.get())].home;
  trace_.record(engine_.now(), sim::TraceKind::kTransferStart, source, ref);
  const auto tid = transfers_->start(
      source, target, mb, [this, ref, target, source, mb, home, attempt](bool success) {
        auto& wf2 = workflows_[static_cast<std::size_t>(ref.workflow.get())];
        auto& rt2 = wf2.tasks[static_cast<std::size_t>(ref.task.get())];
        if (rt2.state != TaskState::kDispatched || rt2.exec_node != target) return;
        if (!success) {
          // Both endpoints alive means the path failed under the transfer (a
          // link went down): back off exponentially and retry - routing has
          // already been repaired around the failed link by the fault wiring.
          const auto& retry = config_.transfer_retry;
          if (retry.max_attempts > 0 && attempt < retry.max_attempts &&
              nodes_[static_cast<std::size_t>(source.get())].alive() &&
              nodes_[static_cast<std::size_t>(target.get())].alive()) {
            const double delay = std::min(retry.backoff_cap_s,
                                          retry.backoff_base_s * std::pow(2.0, attempt));
            const SimTime stamp = rt2.dispatched_at;
            engine_.schedule_in(delay, [this, ref, target, source, mb, home, attempt, stamp] {
              const auto& rt3 = workflows_[static_cast<std::size_t>(ref.workflow.get())]
                                    .tasks[static_cast<std::size_t>(ref.task.get())];
              // The task may have failed / been re-offered during the backoff.
              if (rt3.state != TaskState::kDispatched || rt3.exec_node != target ||
                  rt3.dispatched_at != stamp) {
                return;
              }
              if (!nodes_[static_cast<std::size_t>(source.get())].alive()) {
                // The source died while we were backing off: fall back to the
                // home copy (result collection) or give up.
                if (config_.home_keeps_outputs && source != home) {
                  start_input_transfer(ref, target, home, mb);
                } else {
                  fail_task(ref, "input transfer aborted");
                }
                return;
              }
              start_input_transfer(ref, target, source, mb, attempt + 1);
            });
            return;
          }
          // The source died mid-transfer. With result collection the data is
          // still available at the (stable) home node: restart from there.
          if (config_.home_keeps_outputs && source != home &&
              nodes_[static_cast<std::size_t>(target.get())].alive()) {
            start_input_transfer(ref, target, home, mb);
            return;
          }
          fail_task(ref, "input transfer aborted");
          return;
        }
        trace_.record(engine_.now(), sim::TraceKind::kTransferEnd, target, ref);
        auto* rd = nodes_[static_cast<std::size_t>(target.get())].find_ready(ref);
        if (rd == nullptr) return;  // defensive: vanished via churn cleanup
        if (--rd->pending_inputs == 0) {
          rd->data_ready_at = engine_.now();
          task_transfers_.erase(ref);
          try_start_task(target);
        }
      });
  task_transfers_[ref].push_back(tid);
}

// ---------------------------------------------------------------------------
// Phase 2: ready-set scheduling and execution
// ---------------------------------------------------------------------------

void GridSystem::try_start_task(NodeId id) {
  auto& node = nodes_[static_cast<std::size_t>(id.get())];
  if (!node.alive() || node.busy()) return;
  const auto candidates = node.data_complete();
  if (candidates.empty()) return;

  const std::size_t pick = second_phase_->select(candidates);  // Algorithm 2
  const TaskRef ref = candidates[pick]->ref;
  const double duration = node.start_running(ref, engine_.now());

  auto& wf = workflows_[static_cast<std::size_t>(ref.workflow.get())];
  auto& rt = wf.tasks[static_cast<std::size_t>(ref.task.get())];
  rt.state = TaskState::kRunning;
  rt.started_at = engine_.now();
  if (ref.task == wf.dag.entry() && wf.entry_started_at == kNoTime) {
    wf.entry_started_at = engine_.now();
  }
  trace_.record(engine_.now(), sim::TraceKind::kExecStart, id, ref);

  running_event_[static_cast<std::size_t>(id.get())] =
      engine_.schedule_in(duration, [this, id] { on_task_complete(id); });
}

void GridSystem::on_task_complete(NodeId id) {
  auto& node = nodes_[static_cast<std::size_t>(id.get())];
  const grid::ReadyTask done = node.finish_running();
  const TaskRef ref = done.ref;

  auto& wf = workflows_[static_cast<std::size_t>(ref.workflow.get())];
  auto& rt = wf.tasks[static_cast<std::size_t>(ref.task.get())];
  // Orphaned completion: the task was reclaimed (re-offer) or failed while
  // this event was in flight. Every reclaim path cancels the running event,
  // so this cannot fire in practice - but if it ever did, crediting the
  // completion would corrupt workflow progress. Just free the CPU.
  if (rt.state != TaskState::kRunning || rt.exec_node != id) {
    try_start_task(id);
    return;
  }
  rt.state = TaskState::kFinished;
  rt.finished_at = engine_.now();
  ++wf.finished_tasks;
  trace_.record(engine_.now(), sim::TraceKind::kExecEnd, id, ref);

  // Completion notification back to the home node (control message).
  const SimTime finished_at = engine_.now();
  engine_.schedule_in(control_latency(id, wf.home), [this, ref, finished_at] {
    on_task_finished_at_home(ref, finished_at);
  });

  try_start_task(id);
}

void GridSystem::on_task_finished_at_home(TaskRef ref, SimTime finished_at) {
  auto& wf = workflows_[static_cast<std::size_t>(ref.workflow.get())];
  if (wf.done()) return;
  auto& rt = wf.tasks[static_cast<std::size_t>(ref.task.get())];
  // Drop stale notifications: churn recovery may have demoted this task (its
  // output died with the execution node) between completion and this message
  // arriving at the home node; decrementing successor counts for a no-longer-
  // finished precedent would double-count once the re-execution completes.
  if (rt.state != TaskState::kFinished || rt.finished_at != finished_at) return;
  rt.finish_notified = true;

  // Successors whose precedents are now all finished become schedule points.
  // Just-in-time algorithms dispatch them at the next scheduling cycle;
  // full-ahead algorithms already decided the mapping before execution
  // started, so their tasks flow to the planned node immediately.
  for (TaskIndex s : wf.dag.successors(ref.task)) {
    auto& srt = wf.tasks[static_cast<std::size_t>(s.get())];
    if (srt.state != TaskState::kWaiting) continue;
    if (--srt.unfinished_preds == 0) {
      srt.state = TaskState::kSchedulable;
      if (algorithm_.full_ahead()) dispatch_planned_task(wf, s);
    }
  }

  if (ref.task == wf.dag.exit()) {
    wf.finished_at = finished_at;
    ++finished_workflows_;
    trace_.record(engine_.now(), sim::TraceKind::kWorkflowDone, wf.home, ref);
    if (sink_ != nullptr) {
      WorkflowReport report;
      report.id = wf.id;
      report.home = wf.home;
      report.submit_time = wf.submit_time;
      report.entry_start_time = wf.entry_started_at;
      report.finish_time = finished_at;
      report.eft = wf.eft;
      sink_->on_workflow_finished(report);
    }
  }
}

// ---------------------------------------------------------------------------
// Failure handling and churn
// ---------------------------------------------------------------------------

void GridSystem::fail_task(TaskRef ref, const char* reason) {
  auto& wf = workflows_[static_cast<std::size_t>(ref.workflow.get())];
  auto& rt = wf.tasks[static_cast<std::size_t>(ref.task.get())];
  if (rt.state == TaskState::kFinished || rt.state == TaskState::kFailed) return;
  const TaskState old_state = rt.state;
  rt.state = TaskState::kFailed;  // set first: cleanup below may re-enter
  ++wf.failed_tasks;
  ++tasks_failed_;
  trace_.record(engine_.now(), sim::TraceKind::kTaskFailed, rt.exec_node, ref, reason);

  if (old_state == TaskState::kRunning) {
    auto& node = nodes_[static_cast<std::size_t>(rt.exec_node.get())];
    if (node.running() != nullptr && node.running()->ref == ref) {
      node.abort_running();
      engine_.cancel(running_event_[static_cast<std::size_t>(rt.exec_node.get())]);
    }
  } else if (old_state == TaskState::kDispatched && rt.exec_node.valid()) {
    nodes_[static_cast<std::size_t>(rt.exec_node.get())].remove_ready(ref);
  }
  if (auto it = task_transfers_.find(ref); it != task_transfers_.end()) {
    const auto ids = it->second;
    task_transfers_.erase(it);
    for (auto tid : ids) transfers_->abort(tid);
  }
}

void GridSystem::handle_leave(NodeId id) {
  auto& node = nodes_[static_cast<std::size_t>(id.get())];
  if (!node.alive()) return;
  node.set_alive(false);
  trace_.record(engine_.now(), sim::TraceKind::kNodeLeave, id);

  // Kill the running task first so fail_task sees a detached CPU. The
  // exec_node guards skip tasks already reclaimed by the re-offer pass (their
  // failure now belongs to whichever node they were re-dispatched to).
  engine_.cancel(running_event_[static_cast<std::size_t>(id.get())]);
  if (auto running = node.abort_running()) {
    const auto& rt = workflows_[static_cast<std::size_t>(running->ref.workflow.get())]
                         .tasks[static_cast<std::size_t>(running->ref.task.get())];
    if (rt.state == TaskState::kRunning && rt.exec_node == id) {
      fail_task(running->ref, "node departed (running)");
    }
  }

  for (const auto& ready : node.drain_ready()) {
    const auto& rt = workflows_[static_cast<std::size_t>(ready.ref.workflow.get())]
                         .tasks[static_cast<std::size_t>(ready.ref.task.get())];
    if (rt.state == TaskState::kDispatched && rt.exec_node == id) {
      fail_task(ready.ref, "node departed (ready set)");
    }
  }

  // Abort remaining transfers that used this node as a data *source*; their
  // callbacks fail the dependent tasks on other nodes.
  transfers_->node_left(id);
  gossip_->node_left(id);
}

void GridSystem::inject_node_failure(NodeId id) {
  if (!id.valid() || id.get() >= topo_.node_count()) {
    throw std::out_of_range("inject_node_failure: invalid node");
  }
  handle_leave(id);
}

void GridSystem::inject_node_rejoin(NodeId id) {
  if (!id.valid() || id.get() >= topo_.node_count()) {
    throw std::out_of_range("inject_node_rejoin: invalid node");
  }
  handle_join(id);
}

void GridSystem::on_link_state(LinkId l, bool up) {
  trace_.record(engine_.now(), up ? sim::TraceKind::kLinkUp : sim::TraceKind::kLinkDown,
                NodeId{});
  transfers_->link_state_changed(l, up);
}

void GridSystem::handle_join(NodeId id) {
  auto& node = nodes_[static_cast<std::size_t>(id.get())];
  if (node.alive()) return;
  node.set_alive(true);
  trace_.record(engine_.now(), sim::TraceKind::kNodeJoin, id);
  gossip_->node_joined(id, random_alive_contacts(config_.bootstrap_contacts, id));
}

std::vector<NodeId> GridSystem::random_alive_contacts(int count, NodeId exclude) {
  std::vector<NodeId> alive;
  alive.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    if (node.alive() && node.id() != exclude) alive.push_back(node.id());
  }
  rng_.shuffle(alive);
  if (static_cast<int>(alive.size()) > count) alive.resize(static_cast<std::size_t>(count));
  return alive;
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

std::vector<TaskIndex> GridSystem::schedule_points(const WorkflowInstance& wf) const {
  std::vector<TaskIndex> sps;
  for (std::size_t t = 0; t < wf.tasks.size(); ++t) {
    if (wf.tasks[t].state == TaskState::kSchedulable) {
      sps.push_back(TaskIndex{static_cast<TaskIndex::underlying_type>(t)});
    }
  }
  return sps;
}

double GridSystem::control_latency(NodeId a, NodeId b) const {
  if (a == b) return 0.0;
  const double lat = routing_.latency_s(a, b);
  return std::isfinite(lat) ? lat : 0.0;
}

TaskEstimateInputs GridSystem::estimate_inputs(const WorkflowInstance& wf, TaskIndex task) const {
  TaskEstimateInputs inputs;
  inputs.load_mi = wf.dag.task(task).load_mi;
  for (TaskIndex p : wf.dag.predecessors(task)) {
    const auto& prt = wf.tasks[static_cast<std::size_t>(p.get())];
    const double data = wf.dag.edge_data(p, task);
    if (data <= 0.0 || !prt.exec_node.valid()) continue;
    NodeId source = prt.exec_node;
    if (config_.home_keeps_outputs &&
        !nodes_[static_cast<std::size_t>(source.get())].alive()) {
      source = wf.home;  // result collection: data survives at the home node
    }
    inputs.inputs.push_back(InputSource{source, data});
  }
  const double image = wf.dag.task(task).image_mb;
  if (image > 0.0) inputs.inputs.push_back(InputSource{wf.home, image});
  return inputs;
}

void GridSystem::sample_cycle() {
  if (sink_ == nullptr) return;
  CycleSample sample;
  sample.time = engine_.now();
  sample.workflows_finished = finished_workflows_;
  sample.tasks_failed = tasks_failed_;
  sample.mean_rss_size = gossip_->mean_rss_size();
  sample.mean_idle_known = gossip_->mean_idle_known();
  sample.alive_nodes = alive_count();
  sink_->on_cycle(sample);
}

const WorkflowInstance& GridSystem::workflow(WorkflowId id) const {
  return workflows_.at(static_cast<std::size_t>(id.get()));
}

const grid::GridNode& GridSystem::node(NodeId id) const {
  return nodes_.at(static_cast<std::size_t>(id.get()));
}

std::size_t GridSystem::alive_count() const {
  std::size_t n = 0;
  for (const auto& node : nodes_) n += node.alive() ? 1 : 0;
  return n;
}

}  // namespace dpjit::core
