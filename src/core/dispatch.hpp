// First-phase scheduling interfaces (paper Algorithm 1).
//
// Every scheduling cycle, each home node builds a DispatchContext exposing
// its pending workflows (with schedule points, RPMs and remaining makespans),
// a mutable working copy of its resource-state set RSS, and the finish-time
// estimator of Eqs. (4)-(6). A FirstPhasePolicy orders the candidates and
// dispatches each to a chosen resource node; dispatching updates the working
// RSS copy so later selections in the same cycle see the added load
// (Algorithm 1 line 15).
#pragma once

#include <string_view>
#include <vector>

#include "core/estimates.hpp"

namespace dpjit::core {

/// One schedule-point task offered to the first scheduling phase.
struct CandidateTask {
  TaskRef ref;
  double load_mi = 0.0;
  /// Rest-path makespan RPM(t) under the node's believed averages.
  double rpm = 0.0;
  /// The owning workflow's remaining makespan ms(f).
  double wf_makespan = 0.0;
  /// DSDF "deadline": ms(f) - RPM(t) (paper Section IV.A); smaller = tighter.
  double slack = 0.0;
  /// Filled by the sufferage policy before dispatch; carried to phase 2 (LSF).
  double sufferage = 0.0;
  /// Inputs (precedent data + task image) for finish-time estimation.
  TaskEstimateInputs inputs;
};

/// A workflow with at least one schedule point, as seen by the policy.
struct PendingWorkflow {
  WorkflowId wf;
  /// ms(f), Eq. (8).
  double makespan = 0.0;
  std::vector<CandidateTask> tasks;
};

/// The home node's view and actions during one first-phase cycle.
class DispatchContext {
 public:
  virtual ~DispatchContext() = default;

  [[nodiscard]] virtual SimTime now() const = 0;
  [[nodiscard]] virtual NodeId home() const = 0;

  /// Mutable working copy of RSS(p_s) (the home node itself included, with its
  /// true local state). Policies may reorder entries but not erase them.
  [[nodiscard]] virtual std::vector<gossip::ResourceEntry>& resources() = 0;

  /// Workflows with schedule points this cycle. Stable order (by workflow id).
  [[nodiscard]] virtual const std::vector<PendingWorkflow>& pending() const = 0;

  /// FT(tau, r) per Eqs. (4)-(6), offset from now().
  [[nodiscard]] virtual double finish_time(const CandidateTask& task,
                                           const gossip::ResourceEntry& resource) const = 0;

  /// FT(tau, r) with the transmission-delay term (Eq. 4) answered by the live
  /// network oracle - what the input transfers would actually cost *right
  /// now*, contention included - instead of static bandwidth estimates.
  /// Contexts without a live network (tests, planners) inherit this default,
  /// which falls back to the static estimate, so contention-aware policies
  /// degrade gracefully to their baseline behaviour.
  [[nodiscard]] virtual double finish_time_contended(const CandidateTask& task,
                                                     const gossip::ResourceEntry& resource) const {
    return finish_time(task, resource);
  }

  /// et(tau, r): execution-time estimate on the resource.
  [[nodiscard]] virtual double exec_time(const CandidateTask& task,
                                         const gossip::ResourceEntry& resource) const = 0;

  /// Dispatches the task to `target` and charges the task load to the target's
  /// entry in the RSS working copy. The task is identified by `task.ref`; the
  /// priority attributes (rpm, makespan, slack, sufferage) are stamped from
  /// the struct passed here, so policies may dispatch an annotated copy.
  /// Each candidate may be dispatched at most once per cycle.
  virtual void dispatch(const CandidateTask& task, NodeId target) = 0;
};

/// Formula (9): index into ctx.resources() minimizing FT(tau, r), or -1 when
/// the resource set is empty. Ties break toward the earlier entry.
[[nodiscard]] int select_min_ft(DispatchContext& ctx, const CandidateTask& task);

/// Formula (9) evaluated through finish_time_contended(): the index into
/// ctx.resources() minimizing the oracle-predicted completion time.
[[nodiscard]] int select_min_ft_contended(DispatchContext& ctx, const CandidateTask& task);

/// Base class for the first scheduling phase.
class FirstPhasePolicy {
 public:
  virtual ~FirstPhasePolicy() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  /// Dispatches (some or all) pending schedule points.
  virtual void run(DispatchContext& ctx) = 0;
};

}  // namespace dpjit::core
