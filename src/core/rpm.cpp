#include "core/rpm.hpp"

#include <algorithm>

namespace dpjit::core {

std::vector<double> rest_path_makespans(const dag::Workflow& wf,
                                        const dag::AverageEstimates& avg) {
  // RPM == upward rank under system-wide averages (see header).
  return dag::upward_ranks(wf, avg);
}

double remaining_makespan(const std::vector<double>& rpm,
                          const std::vector<TaskIndex>& schedule_points) {
  double ms = 0.0;
  for (TaskIndex t : schedule_points) {
    ms = std::max(ms, rpm[static_cast<std::size_t>(t.get())]);
  }
  return ms;
}

}  // namespace dpjit::core
