#include "exp/trace_analysis.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "util/table_printer.hpp"

namespace dpjit::exp {

std::vector<NodeUsage> node_usage(const sim::Trace& trace, double horizon_s) {
  if (horizon_s <= 0.0) throw std::invalid_argument("node_usage: horizon must be > 0");
  std::map<int, NodeUsage> usage;
  std::map<int, SimTime> running_since;
  for (const auto& r : trace.records()) {
    if (r.kind == sim::TraceKind::kExecStart) {
      running_since[r.node.get()] = r.time;
    } else if (r.kind == sim::TraceKind::kExecEnd) {
      auto it = running_since.find(r.node.get());
      if (it == running_since.end()) continue;  // trace was enabled mid-run
      auto& u = usage[r.node.get()];
      u.node = r.node;
      u.tasks_executed += 1;
      u.busy_s += r.time - it->second;
      running_since.erase(it);
    }
  }
  std::vector<NodeUsage> out;
  out.reserve(usage.size());
  for (auto& [id, u] : usage) {
    u.utilization = std::min(1.0, u.busy_s / horizon_s);
    out.push_back(u);
  }
  return out;
}

TraceSummary summarize_trace(const sim::Trace& trace, double horizon_s) {
  TraceSummary s;
  s.horizon_s = horizon_s;
  s.tasks_dispatched = trace.count(sim::TraceKind::kDispatch);
  s.tasks_failed = trace.count(sim::TraceKind::kTaskFailed);
  s.transfers_completed = trace.count(sim::TraceKind::kTransferEnd);
  s.workflows_finished = trace.count(sim::TraceKind::kWorkflowDone);

  const auto usage = node_usage(trace, horizon_s);
  s.active_nodes = usage.size();
  double busy_sum = 0.0;
  double busy_sq_sum = 0.0;
  for (const auto& u : usage) {
    s.tasks_executed += u.tasks_executed;
    s.mean_utilization += u.utilization;
    s.max_utilization = std::max(s.max_utilization, u.utilization);
    busy_sum += u.busy_s;
    busy_sq_sum += u.busy_s * u.busy_s;
  }
  if (!usage.empty()) {
    s.mean_utilization /= static_cast<double>(usage.size());
    if (busy_sq_sum > 0.0) {
      // Jain's fairness index: (sum x)^2 / (n * sum x^2).
      s.busy_fairness = busy_sum * busy_sum / (static_cast<double>(usage.size()) * busy_sq_sum);
    }
  }

  // Queue wait: per task, dispatch time -> exec start time.
  std::map<TaskRef, SimTime> dispatched_at;
  double wait_sum = 0.0;
  std::size_t wait_n = 0;
  for (const auto& r : trace.records()) {
    if (r.kind == sim::TraceKind::kDispatch) {
      dispatched_at[r.task] = r.time;
    } else if (r.kind == sim::TraceKind::kExecStart) {
      const auto it = dispatched_at.find(r.task);
      if (it != dispatched_at.end()) {
        wait_sum += r.time - it->second;
        ++wait_n;
      }
    }
  }
  if (wait_n > 0) s.mean_queue_wait_s = wait_sum / static_cast<double>(wait_n);
  return s;
}

void print_trace_report(std::ostream& os, const sim::Trace& trace, double horizon_s,
                        std::size_t max_rows) {
  const auto summary = summarize_trace(trace, horizon_s);
  os << "trace summary over " << horizon_s / 3600.0 << " h:\n"
     << "  dispatched " << summary.tasks_dispatched << ", executed " << summary.tasks_executed
     << ", failed " << summary.tasks_failed << ", transfers " << summary.transfers_completed
     << ", workflows finished " << summary.workflows_finished << '\n'
     << "  active nodes " << summary.active_nodes << ", mean utilization "
     << util::TablePrinter::fmt(summary.mean_utilization * 100.0, 3) << "%, hotspot "
     << util::TablePrinter::fmt(summary.max_utilization * 100.0, 3) << "%, busy fairness "
     << util::TablePrinter::fmt(summary.busy_fairness, 3) << '\n'
     << "  mean dispatch->start wait " << util::TablePrinter::fmt(summary.mean_queue_wait_s, 4)
     << " s\n\n";

  auto usage = node_usage(trace, horizon_s);
  std::sort(usage.begin(), usage.end(),
            [](const NodeUsage& a, const NodeUsage& b) { return a.busy_s > b.busy_s; });
  util::TablePrinter t({"node", "tasks", "busy(s)", "utilization%"});
  for (std::size_t i = 0; i < usage.size() && i < max_rows; ++i) {
    t.add_row({std::to_string(usage[i].node.get()), std::to_string(usage[i].tasks_executed),
               util::TablePrinter::fmt(usage[i].busy_s, 6),
               util::TablePrinter::fmt(usage[i].utilization * 100.0, 3)});
  }
  os << "busiest nodes:\n";
  t.print(os);
}

}  // namespace dpjit::exp
