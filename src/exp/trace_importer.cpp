#include "exp/trace_importer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace dpjit::exp {
namespace {

/// The floor zero-runtime jobs are clamped to (a 0 s job would collapse to a
/// zero-load workflow and divide-by-zero the efficiency metric).
constexpr double kMinRuntimeS = 1.0;

std::vector<std::string_view> split_fields(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r')) ++i;
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t' && line[i] != '\r') ++i;
    if (i > start) fields.push_back(line.substr(start, i - start));
  }
  return fields;
}

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("trace parse error at line " + std::to_string(line_no) + ": " + what);
}

double parse_number(std::string_view field, std::size_t line_no, const char* name) {
  // strtod on a NUL-terminated copy: trace fields are short, and strtod's
  // end-pointer check is the only portable full-consumption test.
  char buf[64];
  if (field.empty() || field.size() >= sizeof(buf)) fail(line_no, std::string(name) + " field malformed");
  std::copy(field.begin(), field.end(), buf);
  buf[field.size()] = '\0';
  char* end = nullptr;
  const double v = std::strtod(buf, &end);
  if (end != buf + field.size() || !std::isfinite(v)) {
    fail(line_no, "non-numeric " + std::string(name) + " field '" + std::string(field) + "'");
  }
  return v;
}

/// Column layout shared by SWF and GWA's leading fields (0-based).
constexpr std::size_t kColJob = 0;
constexpr std::size_t kColSubmit = 1;
constexpr std::size_t kColRuntime = 3;
constexpr std::size_t kColProcs = 4;
constexpr std::size_t kColUser = 11;
/// A data row must carry at least through the processor count.
constexpr std::size_t kMinFields = kColProcs + 1;
/// GWA rows have 29 columns, SWF 18; anything past this is called GWA.
constexpr std::size_t kGwaDetectFields = 20;

char comment_char(TraceFormat format) { return format == TraceFormat::kGwa ? '#' : ';'; }

}  // namespace

std::string_view to_string(TraceFormat format) {
  switch (format) {
    case TraceFormat::kAuto: return "auto";
    case TraceFormat::kSwf: return "swf";
    case TraceFormat::kGwa: return "gwa";
  }
  return "unknown";
}

TraceWorkload parse_trace(std::istream& in, TraceFormat format) {
  TraceWorkload out;
  out.format = format == TraceFormat::kAuto ? TraceFormat::kSwf : format;

  std::string line;
  std::size_t line_no = 0;
  bool detected = format != TraceFormat::kAuto;
  double prev_submit = -std::numeric_limits<double>::infinity();

  while (std::getline(in, line)) {
    ++line_no;
    std::string_view sv = line;
    // Strip a trailing CR so CRLF traces parse identically to LF ones.
    if (!sv.empty() && sv.back() == '\r') sv.remove_suffix(1);
    const std::size_t first = sv.find_first_not_of(" \t");
    if (first == std::string_view::npos) continue;  // blank

    if (!detected) {
      // First non-blank line decides: the comment character is format-unique,
      // and a bare data row is told apart by its column count.
      if (sv[first] == ';') {
        out.format = TraceFormat::kSwf;
        detected = true;
      } else if (sv[first] == '#') {
        out.format = TraceFormat::kGwa;
        detected = true;
      } else {
        out.format = split_fields(sv).size() >= kGwaDetectFields ? TraceFormat::kGwa
                                                                 : TraceFormat::kSwf;
        detected = true;
      }
    }
    if (sv[first] == comment_char(out.format)) {
      ++out.stats.comment_lines;
      continue;
    }

    const auto fields = split_fields(sv);
    if (fields.size() < kMinFields) {
      fail(line_no, "truncated row: need >= " + std::to_string(kMinFields) + " fields, got " +
                        std::to_string(fields.size()));
    }

    TraceJob job;
    job.id = static_cast<std::int64_t>(parse_number(fields[kColJob], line_no, "job id"));
    job.submit_s = parse_number(fields[kColSubmit], line_no, "submit time");
    job.runtime_s = parse_number(fields[kColRuntime], line_no, "runtime");
    const double procs = parse_number(fields[kColProcs], line_no, "processor count");
    const double user = fields.size() > kColUser
                            ? parse_number(fields[kColUser], line_no, "user id")
                            : -1.0;

    // Semantic normalization: skip what cannot be placed on the timeline,
    // clamp what merely needs a floor. Every decision increments a counter.
    if (job.submit_s < 0.0) {
      ++out.stats.skipped_missing_submit;
      continue;
    }
    if (job.runtime_s < 0.0) {
      ++out.stats.skipped_missing_runtime;
      continue;
    }
    if (job.runtime_s < kMinRuntimeS) {
      job.runtime_s = kMinRuntimeS;
      ++out.stats.normalized_zero_runtime;
    }
    if (procs < 1.0) {
      job.procs = 1;
      ++out.stats.normalized_procs;
    } else {
      job.procs = static_cast<int>(procs);
    }
    if (user < 0.0) {
      job.owner = 0;
      if (fields.size() > kColUser) ++out.stats.normalized_owner;
    } else {
      job.owner = static_cast<int>(user);
    }

    if (job.submit_s < prev_submit) ++out.stats.out_of_order;
    prev_submit = std::max(prev_submit, job.submit_s);
    ++out.stats.accepted;
    out.jobs.push_back(job);
  }

  // Deterministic ordering + origin shift: equal (submit, id) pairs keep
  // their file order, and the first arrival defines t = 0.
  std::stable_sort(out.jobs.begin(), out.jobs.end(), [](const TraceJob& a, const TraceJob& b) {
    if (a.submit_s != b.submit_s) return a.submit_s < b.submit_s;
    return a.id < b.id;
  });
  if (!out.jobs.empty()) {
    const double t0 = out.jobs.front().submit_s;
    for (auto& j : out.jobs) j.submit_s -= t0;
    out.span_s = out.jobs.back().submit_s;
  }
  return out;
}

TraceWorkload parse_trace_text(std::string_view text, TraceFormat format) {
  std::istringstream in{std::string(text)};
  return parse_trace(in, format);
}

TraceWorkload load_trace(const std::string& path, TraceFormat format) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  return parse_trace(in, format);
}

void write_swf(std::ostream& os, const TraceWorkload& workload) {
  os << "; Generated by dpjit trace exporter (normalized workload)\n";
  os << "; Jobs: " << workload.jobs.size() << "\n";
  for (const auto& j : workload.jobs) {
    // 18 SWF columns; the ones a TraceJob does not model are -1 (missing).
    os << j.id << ' ' << j.submit_s << " -1 " << j.runtime_s << ' ' << j.procs
       << " -1 -1 -1 -1 -1 1 " << j.owner << " -1 -1 -1 -1 -1 -1\n";
  }
}

namespace {

/// CV^2 of Weibull(k, .): Gamma(1+2/k)/Gamma(1+1/k)^2 - 1, strictly
/// decreasing in k (k = 1 is exponential, CV^2 = 1). Via lgamma for range.
double weibull_cv2(double k) {
  return std::exp(std::lgamma(1.0 + 2.0 / k) - 2.0 * std::lgamma(1.0 + 1.0 / k)) - 1.0;
}

/// Inverts CV^2(k) by bisection on k in [0.08, 20] (CV^2 from ~1e-2 to ~1e5
/// over that range — wider than any sane trace). Clamps at the ends.
double weibull_shape_for_cv2(double cv2) {
  double lo = 0.08, hi = 20.0;
  if (cv2 >= weibull_cv2(lo)) return lo;
  if (cv2 <= weibull_cv2(hi)) return hi;
  for (int it = 0; it < 80; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (weibull_cv2(mid) > cv2) {
      lo = mid;  // CV^2 too high -> need larger k; function decreases in k
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

TraceFit fit_trace(const TraceWorkload& workload) {
  const auto& jobs = workload.jobs;
  if (jobs.size() < 2) {
    throw std::invalid_argument("fit_trace: need >= 2 jobs (one interarrival)");
  }
  TraceFit fit;
  fit.job_count = jobs.size();

  // Interarrivals: first and second moments of the (sorted) arrival gaps.
  double ia_sum = 0.0, ia_sq = 0.0;
  const std::size_t n_ia = jobs.size() - 1;
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    const double d = jobs[i].submit_s - jobs[i - 1].submit_s;
    ia_sum += d;
    ia_sq += d * d;
  }
  fit.ia_mean_s = ia_sum / static_cast<double>(n_ia);
  if (fit.ia_mean_s > 0.0) {
    const double var =
        std::max(0.0, ia_sq / static_cast<double>(n_ia) - fit.ia_mean_s * fit.ia_mean_s);
    fit.ia_cv2 = var / (fit.ia_mean_s * fit.ia_mean_s);
    fit.ia_shape = weibull_shape_for_cv2(fit.ia_cv2);
    // E[Weibull(k, lambda)] = lambda * Gamma(1 + 1/k).
    fit.ia_scale = fit.ia_mean_s / std::exp(std::lgamma(1.0 + 1.0 / fit.ia_shape));
  } else {
    // All jobs at the same instant (fully batched trace): degenerate to a
    // nominal Poisson hour so synthesis still spreads arrivals.
    fit.ia_mean_s = 3600.0;
    fit.ia_cv2 = 1.0;
    fit.ia_shape = 1.0;
    fit.ia_scale = 3600.0;
  }

  // Runtimes: lognormal via log-moments (runtimes are > 0 post-normalization).
  double log_sum = 0.0, log_sq = 0.0, rt_sum = 0.0;
  for (const auto& j : jobs) {
    const double l = std::log(j.runtime_s);
    log_sum += l;
    log_sq += l * l;
    rt_sum += j.runtime_s;
  }
  const double n = static_cast<double>(jobs.size());
  fit.rt_mu = log_sum / n;
  fit.rt_sigma = std::sqrt(std::max(0.0, log_sq / n - fit.rt_mu * fit.rt_mu));
  fit.rt_mean_s = rt_sum / n;

  // Processor counts: empirical histogram (normalized).
  int max_procs = 1;
  for (const auto& j : jobs) max_procs = std::max(max_procs, j.procs);
  fit.procs_weights.assign(static_cast<std::size_t>(max_procs), 0.0);
  for (const auto& j : jobs) fit.procs_weights[static_cast<std::size_t>(j.procs - 1)] += 1.0;
  for (auto& w : fit.procs_weights) w /= n;

  // Owners: job share per distinct owner, descending. Identity is dropped —
  // rank order is all the burstiness/locality model needs.
  std::vector<std::pair<int, std::size_t>> per_owner;
  for (const auto& j : jobs) {
    auto it = std::find_if(per_owner.begin(), per_owner.end(),
                           [&](const auto& p) { return p.first == j.owner; });
    if (it == per_owner.end()) {
      per_owner.emplace_back(j.owner, 1);
    } else {
      ++it->second;
    }
  }
  std::stable_sort(per_owner.begin(), per_owner.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });
  fit.owner_weights.reserve(per_owner.size());
  for (const auto& [owner, count] : per_owner) {
    fit.owner_weights.push_back(static_cast<double>(count) / n);
  }
  return fit;
}

TraceWorkload synthesize_trace(const TraceFit& fit, std::size_t count, double span_s,
                               util::Rng& rng) {
  if (span_s <= 0.0) throw std::invalid_argument("synthesize_trace: span_s must be > 0");
  TraceWorkload out;
  out.format = TraceFormat::kSwf;
  out.jobs.reserve(count);
  if (count == 0) return out;

  // Cumulative weights for the categorical draws.
  auto draw_categorical = [&rng](const std::vector<double>& weights) -> std::size_t {
    double total = 0.0;
    for (double w : weights) total += w;
    if (total <= 0.0 || weights.empty()) return 0;
    double ticket = rng.uniform(0.0, total);
    for (std::size_t i = 0; i < weights.size(); ++i) {
      if (ticket < weights[i]) return i;
      ticket -= weights[i];
    }
    return weights.size() - 1;
  };

  double t = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    TraceJob job;
    job.id = static_cast<std::int64_t>(i + 1);
    job.submit_s = t;
    t += rng.weibull(fit.ia_shape, fit.ia_scale);
    job.runtime_s = std::max(kMinRuntimeS, rng.lognormal(fit.rt_mu, fit.rt_sigma));
    job.procs = fit.procs_weights.empty()
                    ? 1
                    : static_cast<int>(draw_categorical(fit.procs_weights)) + 1;
    job.owner = fit.owner_weights.empty()
                    ? 0
                    : static_cast<int>(draw_categorical(fit.owner_weights));
    out.jobs.push_back(job);
  }

  // Rescale arrivals onto the requested span. Weibull is closed under
  // scaling, so this only retunes the scale parameter, not the burst shape.
  const double raw_span = out.jobs.back().submit_s;
  if (raw_span > 0.0) {
    const double factor = span_s / raw_span;
    for (auto& j : out.jobs) j.submit_s *= factor;
    out.jobs.back().submit_s = span_s;  // pin exactly (kills FP drift at the end)
  }
  out.span_s = out.jobs.back().submit_s;
  out.stats.accepted = count;
  return out;
}

}  // namespace dpjit::exp
