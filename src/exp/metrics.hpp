// Metrics collection: the quantities the paper's evaluation plots.
//
//  - ACT, Eq. (2): average completion time over finished workflows;
//  - AE,  Eq. (3): average execution efficiency e(f) = eft(f)/ct(f);
//  - throughput: cumulative workflows finished over time (Figs. 4, 12);
//  - running ACT / AE curves over time (Figs. 5, 6, 13, 14);
//  - gossip view sizes per cycle (Fig. 11a).
//
// Two implementations share the WorkflowMetrics interface:
//
//  - MetricsCollector retains every WorkflowReport/CycleSample (the default;
//    examples and post-hoc analyses read the raw records), so memory grows
//    with the workload.
//  - StreamingMetricsCollector keeps O(1) state per metric — running sums in
//    arrival order, per-bucket curve accumulators, a t-digest for
//    completion-time quantiles and a seeded reservoir of sample reports — so
//    a 1M-task heavy-traffic run holds a bounded number of live reports.
//
// The streaming collector accumulates in exactly the floating-point order the
// retaining collector's end-of-run loops use, so act/ae/mean_response and
// every digested field are BITWISE identical between the two; selecting it
// never moves a golden digest. (converged_rss/idle use a time-based tail
// instead of the retained index-based one — close, not digested.)
#pragma once

#include <cstddef>
#include <vector>

#include "core/metrics_sink.hpp"
#include "util/reservoir.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/tdigest.hpp"

namespace dpjit::exp {

/// One point of a "metric vs time" series.
struct CurvePoint {
  SimTime time = 0.0;
  double value = 0.0;
};

/// Number of curve buckets for a horizon/bucket pair; curves carry an extra
/// overflow point, buckets + 1 in total.
[[nodiscard]] std::size_t curve_bucket_count(double horizon_s, double bucket_s);

/// Bucket index for a finish time. Interior times map to floor(t / bucket);
/// anything at or past the horizon lands in the overflow bucket `buckets` —
/// including t == horizon exactly, even when the horizon is not a multiple of
/// the bucket width (historically such a finish fell into an interior bucket
/// in one collector and the overflow bucket in the other; both collectors now
/// share this helper, and the regression test pins the boundary).
[[nodiscard]] std::size_t curve_bucket_index(double finish_s, double horizon_s, double bucket_s,
                                             std::size_t buckets);

/// The metrics surface a World exposes, whichever collector is configured.
class WorkflowMetrics : public core::MetricsSink {
 public:
  /// Workflows finished so far.
  [[nodiscard]] virtual std::size_t finished() const = 0;
  /// ACT over finished workflows (paper Eq. 2); 0 when none finished.
  [[nodiscard]] virtual double act() const = 0;
  /// AE over finished workflows (paper Eq. 3); 0 when none finished.
  [[nodiscard]] virtual double ae() const = 0;
  /// Mean response time (submission -> exit completion).
  [[nodiscard]] virtual double mean_response() const = 0;

  // --- curves (one point per bucket, cumulative like the paper's plots) ---
  [[nodiscard]] virtual std::vector<CurvePoint> throughput_curve() const = 0;
  [[nodiscard]] virtual std::vector<CurvePoint> act_curve() const = 0;
  [[nodiscard]] virtual std::vector<CurvePoint> ae_curve() const = 0;

  /// Mean RSS size / idle-known over the last quarter of the run (converged
  /// view sizes, Fig. 11a).
  [[nodiscard]] virtual double converged_rss_size() const = 0;
  [[nodiscard]] virtual double converged_idle_known() const = 0;

  /// Completion-time quantile, q in [0, 1]: exact (sorted copy) in the
  /// retaining collector, t-digest estimate in the streaming one. NaN when
  /// none finished.
  [[nodiscard]] virtual double ct_quantile(double q) const = 0;

  /// Per-workflow report records currently held in memory. Retaining: one
  /// per finished workflow. Streaming: bounded by the reservoir capacity
  /// regardless of workload size — the O(1)-memory guarantee the heavy-
  /// traffic harness stage asserts.
  [[nodiscard]] virtual std::size_t live_reports() const = 0;

  [[nodiscard]] virtual double horizon() const = 0;
  [[nodiscard]] virtual double bucket() const = 0;
};

class MetricsCollector final : public WorkflowMetrics {
 public:
  /// `horizon_s` bounds the time axis; `bucket_s` is the plotting resolution
  /// (the paper's figures use hours).
  explicit MetricsCollector(double horizon_s, double bucket_s = 3600.0);

  void on_workflow_finished(const core::WorkflowReport& report) override;
  void on_cycle(const core::CycleSample& sample) override;

  [[nodiscard]] std::size_t finished() const override { return reports_.size(); }
  [[nodiscard]] double act() const override;
  [[nodiscard]] double ae() const override;
  [[nodiscard]] double mean_response() const override;

  [[nodiscard]] std::vector<CurvePoint> throughput_curve() const override;
  [[nodiscard]] std::vector<CurvePoint> act_curve() const override;
  [[nodiscard]] std::vector<CurvePoint> ae_curve() const override;

  [[nodiscard]] const std::vector<core::WorkflowReport>& reports() const { return reports_; }
  [[nodiscard]] const std::vector<core::CycleSample>& samples() const { return samples_; }

  [[nodiscard]] double converged_rss_size() const override;
  [[nodiscard]] double converged_idle_known() const override;

  /// Exact: linear-interpolated percentile over a sorted copy of the
  /// completion times.
  [[nodiscard]] double ct_quantile(double q) const override;
  [[nodiscard]] std::size_t live_reports() const override { return reports_.size(); }

  [[nodiscard]] double horizon() const override { return horizon_; }
  [[nodiscard]] double bucket() const override { return bucket_; }

 private:
  double horizon_;
  double bucket_;
  std::vector<core::WorkflowReport> reports_;
  std::vector<core::CycleSample> samples_;
};

/// O(1)-memory sink for open-stream heavy-traffic runs: every per-metric
/// state is a fixed-size accumulator, a bounded sketch, or a bounded sample.
class StreamingMetricsCollector final : public WorkflowMetrics {
 public:
  /// Default t-digest compression for completion-time quantiles.
  static constexpr double kDefaultCompression = 100.0;
  /// Default reservoir capacity: the live_reports() bound.
  static constexpr std::size_t kDefaultReservoir = 64;

  /// `reservoir_rng` seeds the sample reservoir (fork a dedicated stream so
  /// sampling never perturbs the simulation's draws).
  StreamingMetricsCollector(double horizon_s, util::Rng reservoir_rng, double bucket_s = 3600.0,
                            double compression = kDefaultCompression,
                            std::size_t reservoir_capacity = kDefaultReservoir);

  void on_workflow_finished(const core::WorkflowReport& report) override;
  void on_cycle(const core::CycleSample& sample) override;

  [[nodiscard]] std::size_t finished() const override { return finished_; }
  [[nodiscard]] double act() const override;
  [[nodiscard]] double ae() const override;
  [[nodiscard]] double mean_response() const override;

  [[nodiscard]] std::vector<CurvePoint> throughput_curve() const override;
  [[nodiscard]] std::vector<CurvePoint> act_curve() const override;
  [[nodiscard]] std::vector<CurvePoint> ae_curve() const override;

  [[nodiscard]] double converged_rss_size() const override;
  [[nodiscard]] double converged_idle_known() const override;

  /// t-digest estimate (exact at q = 0 / 1 via the digest's min/max).
  [[nodiscard]] double ct_quantile(double q) const override;
  /// == reservoir size <= reservoir capacity, whatever the workload size.
  [[nodiscard]] std::size_t live_reports() const override { return reservoir_.size(); }

  [[nodiscard]] double horizon() const override { return horizon_; }
  [[nodiscard]] double bucket() const override { return bucket_; }

  [[nodiscard]] const util::TDigest& ct_digest() const { return ct_digest_; }
  [[nodiscard]] const util::ReservoirSampler<core::WorkflowReport>& reservoir() const {
    return reservoir_;
  }
  /// Cycle samples observed (none are retained).
  [[nodiscard]] std::size_t cycles_seen() const { return cycles_seen_; }

 private:
  double horizon_;
  double bucket_;
  std::size_t buckets_;

  // Running sums in arrival order — the same FP sequence the retaining
  // collector's end-of-run loops produce, hence bitwise-equal summaries.
  std::size_t finished_ = 0;
  double ct_sum_ = 0.0;
  double eff_sum_ = 0.0;
  double resp_sum_ = 0.0;

  // Per-bucket curve accumulators (buckets_ + 1 slots, fixed at ctor time).
  std::vector<std::size_t> finished_in_;
  std::vector<double> ct_sum_in_;
  std::vector<double> eff_sum_in_;

  // Converged view sizes: time-based tail (samples at t >= 3/4 horizon)
  // instead of the retaining collector's index-based last quarter.
  double tail_start_;
  double tail_rss_sum_ = 0.0;
  double tail_idle_sum_ = 0.0;
  std::size_t tail_n_ = 0;
  std::size_t cycles_seen_ = 0;

  util::TDigest ct_digest_;
  util::ReservoirSampler<core::WorkflowReport> reservoir_;
};

}  // namespace dpjit::exp
