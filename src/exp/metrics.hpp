// Metrics collection: the quantities the paper's evaluation plots.
//
//  - ACT, Eq. (2): average completion time over finished workflows;
//  - AE,  Eq. (3): average execution efficiency e(f) = eft(f)/ct(f);
//  - throughput: cumulative workflows finished over time (Figs. 4, 12);
//  - running ACT / AE curves over time (Figs. 5, 6, 13, 14);
//  - gossip view sizes per cycle (Fig. 11a).
#pragma once

#include <vector>

#include "core/metrics_sink.hpp"
#include "util/stats.hpp"

namespace dpjit::exp {

/// One point of a "metric vs time" series.
struct CurvePoint {
  SimTime time = 0.0;
  double value = 0.0;
};

class MetricsCollector final : public core::MetricsSink {
 public:
  /// `horizon_s` bounds the time axis; `bucket_s` is the plotting resolution
  /// (the paper's figures use hours).
  explicit MetricsCollector(double horizon_s, double bucket_s = 3600.0);

  void on_workflow_finished(const core::WorkflowReport& report) override;
  void on_cycle(const core::CycleSample& sample) override;

  // --- end-of-run summaries ---
  [[nodiscard]] std::size_t finished() const { return reports_.size(); }
  /// ACT over finished workflows (paper Eq. 2); 0 when none finished.
  [[nodiscard]] double act() const;
  /// AE over finished workflows (paper Eq. 3); 0 when none finished.
  [[nodiscard]] double ae() const;
  /// Mean response time (submission -> exit completion).
  [[nodiscard]] double mean_response() const;

  // --- curves (one point per bucket, cumulative like the paper's plots) ---
  [[nodiscard]] std::vector<CurvePoint> throughput_curve() const;
  [[nodiscard]] std::vector<CurvePoint> act_curve() const;
  [[nodiscard]] std::vector<CurvePoint> ae_curve() const;

  [[nodiscard]] const std::vector<core::WorkflowReport>& reports() const { return reports_; }
  [[nodiscard]] const std::vector<core::CycleSample>& samples() const { return samples_; }

  /// Mean RSS size / idle-known over the last quarter of the run (converged
  /// view sizes, Fig. 11a).
  [[nodiscard]] double converged_rss_size() const;
  [[nodiscard]] double converged_idle_known() const;

  [[nodiscard]] double horizon() const { return horizon_; }
  [[nodiscard]] double bucket() const { return bucket_; }

 private:
  double horizon_;
  double bucket_;
  std::vector<core::WorkflowReport> reports_;
  std::vector<core::CycleSample> samples_;
};

}  // namespace dpjit::exp
