#include "exp/scenario.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "exp/sample_trace.hpp"
#include "exp/scale_model.hpp"

namespace dpjit::exp {
namespace {

/// Convenience: wraps a void(ExperimentConfig&) mutator as a pure transform.
template <typename Fn>
std::function<ExperimentConfig(ExperimentConfig)> mutate(Fn fn) {
  return [fn](ExperimentConfig cfg) {
    fn(cfg);
    return cfg;
  };
}

ScenarioRegistry build_registry() {
  ScenarioRegistry reg;

  // --- the paper's environments (Section IV) -------------------------------
  reg.add({"paper/static-n200",
           "Table-I static environment at the bench default scale n=200 (Figs. 4-6 shape)",
           "IV.A", RuntimeTier::kFast, mutate([](ExperimentConfig& c) { c.nodes = 200; })});
  reg.add({"paper/static-n500",
           "Table-I static environment at n=500, the recorded perf-anchor scale (BENCH_2.json)",
           "IV.A", RuntimeTier::kMedium, mutate([](ExperimentConfig& c) { c.nodes = 500; })});
  reg.add({"paper/static-n1000",
           "Table-I static environment at the publication scale n=1000",
           "IV.A", RuntimeTier::kSlow, mutate([](ExperimentConfig& c) { c.nodes = 1000; })});
  for (const auto& [name, df, tier] : {
           std::tuple{"paper/dynamic-df10", 0.1, RuntimeTier::kSlow},
           std::tuple{"paper/dynamic-df20", 0.2, RuntimeTier::kSlow},
           std::tuple{"paper/dynamic-df30", 0.3, RuntimeTier::kSlow},
           std::tuple{"paper/dynamic-df40", 0.4, RuntimeTier::kSlow},
       }) {
    std::ostringstream desc;
    desc << "dynamic environment, dynamic factor " << df
         << " (stable half are homes; Figs. 12-14 shape)";
    const double factor = df;
    reg.add({name, desc.str(), "IV.B", tier,
             mutate([factor](ExperimentConfig& c) { c.dynamic_factor = factor; })});
  }

  // --- the four CCR regimes of Figs. 9-10 ----------------------------------
  reg.add({"ccr/balanced-light",
           "CCR ~ 1.6: light loads 10-1000 MI, light data 10-1000 Mb",
           "IV.B Figs. 9-10", RuntimeTier::kSlow, mutate([](ExperimentConfig& c) {
             c.set_load_range(10, 1000);
             c.set_data_range(10, 1000);
           })});
  reg.add({"ccr/data-heavy",
           "CCR ~ 16: light loads 10-1000 MI, heavy data 100-10000 Mb (transfer-bound)",
           "IV.B Figs. 9-10", RuntimeTier::kSlow, mutate([](ExperimentConfig& c) {
             c.set_load_range(10, 1000);
             c.set_data_range(100, 10000);
           })});
  reg.add({"ccr/compute-heavy",
           "CCR ~ 0.16: heavy loads 100-10000 MI, light data 10-1000 Mb (the Table-I default)",
           "IV.B Figs. 9-10", RuntimeTier::kSlow, mutate([](ExperimentConfig& c) {
             c.set_load_range(100, 10000);
             c.set_data_range(10, 1000);
           })});
  reg.add({"ccr/balanced-heavy",
           "CCR ~ 1.6: heavy loads 100-10000 MI, heavy data 100-10000 Mb",
           "IV.B Figs. 9-10", RuntimeTier::kSlow, mutate([](ExperimentConfig& c) {
             c.set_load_range(100, 10000);
             c.set_data_range(100, 10000);
           })});

  // --- contended network: the fair-sharing ablation ------------------------
  // Permanent end-to-end cover for the fluid max-min transfer stack (the
  // incremental solver, zero-rate guard and batched churn teardown), at the
  // transfer-bound CCR so link contention actually shapes the outcome.
  reg.add({"contention/fair-static",
           "static environment under max-min fair link sharing: data-heavy CCR ~ 16 "
           "(100-10000 Mb) so concurrent transfers genuinely contend",
           "", RuntimeTier::kMedium, mutate([](ExperimentConfig& c) {
             c.nodes = 200;
             c.fair_sharing = true;
             c.set_load_range(10, 1000);
             c.set_data_range(100, 10000);
           })});
  reg.add({"contention/fair-churn",
           "fair link sharing under churn (dynamic factor 0.2): node departures mass-abort "
           "contending flows, exercising the batched fluid teardown path",
           "", RuntimeTier::kMedium, mutate([](ExperimentConfig& c) {
             c.nodes = 200;
             c.fair_sharing = true;
             c.dynamic_factor = 0.2;
             c.set_load_range(10, 1000);
             c.set_data_range(100, 10000);
           })});

  // --- contention-aware scheduling on the fluid model ----------------------
  // The policies that *consume* the fair-sharing model's live rates (via the
  // net::RateOracle what-if probes), pinned end-to-end at the same
  // transfer-bound CCR as the fair-* scenarios so the placement signal the
  // oracle adds is actually load-bearing. Makespan comparisons against
  // static-bandwidth DSMF are recorded in docs/EXPERIMENTS.md.
  reg.add({"contention/aware-static",
           "contention-aware DSMF (dsmf-ca) under max-min fair sharing: placement ranked by "
           "live what-if rate probes of the fluid solver, data-heavy CCR ~ 16",
           "", RuntimeTier::kSlow, mutate([](ExperimentConfig& c) {
             c.nodes = 200;
             c.algorithm = "dsmf-ca";
             c.fair_sharing = true;
             c.set_load_range(10, 1000);
             c.set_data_range(100, 10000);
           })});
  reg.add({"contention/aware-churn",
           "contention-aware DSMF (dsmf-ca) under fair sharing plus churn (dynamic factor "
           "0.2): oracle probes run against a flow set that mass-teardown keeps shifting",
           "", RuntimeTier::kSlow, mutate([](ExperimentConfig& c) {
             c.nodes = 200;
             c.algorithm = "dsmf-ca";
             c.fair_sharing = true;
             c.dynamic_factor = 0.2;
             c.set_load_range(10, 1000);
             c.set_data_range(100, 10000);
           })});
  reg.add({"contention/fullahead-ca",
           "contention-aware full-ahead planning (lookahead-ca) under max-min fair sharing: "
           "plan-time transfer costs come from live oracle probes instead of the static "
           "bandwidth matrix, data-heavy CCR ~ 16",
           "", RuntimeTier::kSlow, mutate([](ExperimentConfig& c) {
             c.nodes = 200;
             c.algorithm = "lookahead-ca";
             c.fair_sharing = true;
             c.set_load_range(10, 1000);
             c.set_data_range(100, 10000);
           })});
  reg.add({"contention/aware-corrected",
           "transfer-time-corrected second phase (dsmf-tc) under fair sharing at load factor "
           "8: ready sets deep enough that re-ranking by realized input-staging time bites, "
           "data-heavy CCR ~ 16",
           "", RuntimeTier::kSlow, mutate([](ExperimentConfig& c) {
             c.nodes = 200;
             c.workflows_per_node = 8;
             c.algorithm = "dsmf-tc";
             c.fair_sharing = true;
             c.set_load_range(10, 1000);
             c.set_data_range(100, 10000);
           })});

  // --- epoch-quantised fair sharing: the sharded contended mode ------------
  // The net::NetworkModel seam's third mode (ROADMAP item 1): max-min rates
  // frozen per epoch, re-solved only at barriers, volume advanced lazily by
  // per-shard flow ledgers on sim::ShardEngine (core/workflow_shard). Same
  // transfer-bound CCR as the contention/* family so the frozen-rate
  // approximation is actually load-bearing; epochs are set explicitly here
  // (60 s = one gossip-cycle fifth, 300 s = one full cycle) so the barrier
  // schedule does not depend on the topology draw. Digests are byte-identical
  // at ANY --shards/--threads setting - the shard-determinism CI job diffs
  // several counts against the same golden entries.
  reg.add({"quantised/fair-epoch60",
           "epoch-quantised fair sharing, 60 s epochs: data-heavy CCR ~ 16 so concurrent "
           "transfers contend, rates frozen between barriers, ledger-advanced volumes",
           "", RuntimeTier::kMedium, mutate([](ExperimentConfig& c) {
             c.nodes = 200;
             c.system.network_mode = net::NetworkMode::kQuantisedFair;
             c.system.quantised_epoch_s = 60.0;
             c.set_load_range(10, 1000);
             c.set_data_range(100, 10000);
           })});
  reg.add({"quantised/aware-epoch300",
           "contention-aware DSMF (dsmf-ca) on the quantised model, 300 s epochs: oracle "
           "probes hit the barrier-frozen solver, cached per epoch via the barrier stamp",
           "", RuntimeTier::kSlow, mutate([](ExperimentConfig& c) {
             c.nodes = 200;
             c.algorithm = "dsmf-ca";
             c.system.network_mode = net::NetworkMode::kQuantisedFair;
             c.system.quantised_epoch_s = 300.0;
             c.set_load_range(10, 1000);
             c.set_data_range(100, 10000);
           })});
  reg.add({"quantised/churn-epoch60",
           "quantised fair sharing under churn (dynamic factor 0.2): mid-epoch mass aborts "
           "race ledger drains - cancels beat joins, late drains are skipped",
           "", RuntimeTier::kMedium, mutate([](ExperimentConfig& c) {
             c.nodes = 200;
             c.system.network_mode = net::NetworkMode::kQuantisedFair;
             c.system.quantised_epoch_s = 60.0;
             c.dynamic_factor = 0.2;
             c.set_load_range(10, 1000);
             c.set_data_range(100, 10000);
           })});

  // --- extension workloads beyond the paper --------------------------------
  reg.add({"open/poisson-arrivals",
           "open model: each home submits 4 workflows with exponential inter-arrivals "
           "(mean 1 h) instead of everything at t=0",
           "", RuntimeTier::kMedium, mutate([](ExperimentConfig& c) {
             c.nodes = 200;
             c.workflows_per_node = 4;
             c.mean_interarrival_s = 3600.0;
           })});
  reg.add({"burst/flash-crowd",
           "flash crowd: 3 submission waves 4 h apart, each dumping one workflow per home "
           "inside a 15-minute window",
           "", RuntimeTier::kMedium, mutate([](ExperimentConfig& c) {
             c.nodes = 200;
             c.workflows_per_node = 6;
             c.bursts.wave_count = 3;
             c.bursts.first_wave_s = 1800.0;
             c.bursts.period_s = 4.0 * 3600.0;
             c.bursts.width_s = 900.0;
           })});
  reg.add({"tail/heavy-tailed-loads",
           "heavy-tailed task sizes over the Table-I ranges: lognormal loads (sigma 1.2), "
           "Pareto dependent data (alpha 1.5) - most tasks small, a few enormous",
           "", RuntimeTier::kMedium, mutate([](ExperimentConfig& c) {
             c.nodes = 200;
             c.workflow.load_distribution = dag::SizeDistribution::kLogNormal;
             c.workflow.load_tail_shape = 1.2;
             c.workflow.data_distribution = dag::SizeDistribution::kPareto;
             c.workflow.data_tail_shape = 1.5;
           })});
  reg.add({"churn/correlated-waves",
           "correlated churn: base dynamic factor 0.1, every 4th interval a departure wave "
           "takes out 3x the usual count at once; rejoins recover at the base rate",
           "", RuntimeTier::kMedium, mutate([](ExperimentConfig& c) {
             c.nodes = 200;
             c.dynamic_factor = 0.1;
             c.system.churn.wave_every = 4;
             c.system.churn.wave_multiplier = 3.0;
           })});
  // --- sharded scale family (ROADMAP item 1) -------------------------------
  // These run exp::run_scale_model on the conservative time-window engine
  // (sim::ShardEngine) instead of the full GridSystem world: O(1)-state peers
  // over a routed region backbone, so 10^5-10^6 peers are reachable and the
  // run accepts a shard count with byte-identical digests at every count.
  reg.add({"scale/peers-100k",
           "10^5-peer sharded scale model: push-pull gossip, task execution and bulk "
           "transfers over a 64-region backbone, 1 h horizon",
           "", RuntimeTier::kMedium, mutate([](ExperimentConfig& c) {
             c.nodes = 100000;
             c.system.horizon_s = 3600.0;
           }),
           /*sharded=*/true});
  reg.add({"scale/peers-churn-100k",
           "10^5-peer scale model under churn (dynamic factor 0.2): departures notify "
           "contacts cross-shard, in-flight work at departed peers is dropped",
           "", RuntimeTier::kMedium, mutate([](ExperimentConfig& c) {
             c.nodes = 100000;
             c.system.horizon_s = 3600.0;
             c.dynamic_factor = 0.2;
           }),
           /*sharded=*/true});
  reg.add({"scale/million-node",
           "10^6-peer scale model, 30 min horizon with a 10-minute scheduling period: the "
           "nightly-CI scale point (expect minutes of wall clock and ~1 GB of memory)",
           "", RuntimeTier::kSlow, mutate([](ExperimentConfig& c) {
             c.nodes = 1000000;
             c.system.horizon_s = 1800.0;
             c.system.scheduling_interval_s = 600.0;
           }),
           /*sharded=*/true});

  // --- realism: deterministic fault injection (ROADMAP item 5) -------------
  // The idealized counterparts of these runs deliver every gossip exchange
  // atomically and give every node oracular membership. Here the gossip runs
  // message-by-message (SYNC/ACK1/ACK2) against a seeded sim::FaultPlan, and
  // membership is SWIM-style suspicion. Idealized-vs-realistic deltas are
  // recorded in docs/EXPERIMENTS.md.
  reg.add({"realism/lossy-gossip",
           "message-level gossip under a lossy network: 10% loss, 5% duplication, 20% of "
           "messages delayed up to 60 s; SWIM suspicion replaces oracular membership",
           "", RuntimeTier::kMedium, mutate([](ExperimentConfig& c) {
             c.nodes = 200;
             c.system.gossip.message_level = true;
             c.faults.msg_loss_p = 0.10;
             c.faults.msg_dup_p = 0.05;
             c.faults.msg_delay_p = 0.20;
             c.faults.msg_delay_max_s = 60.0;
           })});
  reg.add({"realism/link-waves",
           "link failure/recovery waves on the idealized gossip: every hour 5% of up links "
           "fail (10% permanently, rest recover after 15 min); routing repairs "
           "incrementally, severed transfers retry with exponential backoff",
           "", RuntimeTier::kMedium, mutate([](ExperimentConfig& c) {
             c.nodes = 200;
             c.faults.link_wave_period_s = 3600.0;
             c.faults.link_first_wave_s = 1800.0;
             c.faults.link_fail_fraction = 0.05;
             c.faults.link_downtime_s = 900.0;
             c.faults.link_permanent_p = 0.10;
             c.system.transfer_retry.max_attempts = 5;
             c.system.transfer_retry.backoff_base_s = 30.0;
           })});
  reg.add({"realism/suspicion-churn",
           "SWIM suspicion under churn (dynamic factor 0.2) on a 10%-lossy network: false "
           "suspicions pull dispatched tasks back (re-offer), true deaths are detected "
           "without the oracle",
           "", RuntimeTier::kMedium, mutate([](ExperimentConfig& c) {
             c.nodes = 200;
             c.dynamic_factor = 0.2;
             c.system.gossip.message_level = true;
             c.faults.msg_loss_p = 0.10;
           })});
  reg.add({"realism/crash-recovery",
           "node crash/restart waves on message-level gossip: every hour 10% of eligible "
           "nodes crash and restart after 20 min; the stable half (homes) is exempt, "
           "severed transfers retry with backoff",
           "", RuntimeTier::kMedium, mutate([](ExperimentConfig& c) {
             c.nodes = 200;
             c.dynamic_factor = 0.1;
             c.system.gossip.message_level = true;
             c.faults.crash_period_s = 3600.0;
             c.faults.crash_first_s = 1800.0;
             c.faults.crash_fraction = 0.10;
             c.faults.crash_restart_s = 1200.0;
             c.faults.crash_exempt_fraction = 0.5;
             c.system.transfer_retry.max_attempts = 4;
           })});

  // --- trace-driven workloads (ROADMAP item 2) -----------------------------
  // Jobs come from imported SWF/GWA logs instead of the synthetic arrival
  // models: either replayed one-for-one (arrival times, per-owner homes,
  // processor counts and runtimes straight from the trace) or refitted
  // (Weibull interarrivals, lognormal runtimes, empirical owner/size
  // weights) and synthesized at any scale. The samples are embedded string
  // constants (transforms must be pure — no file reads); scenario_runner
  // --trace=<file> swaps in a real archive log. The conformance preset caps
  // trace.max_jobs so these digest-check at sub-second scale like everything
  // else; the heavy-traffic full scale runs in the perf harness
  // (BENCH_10.json), which asserts the streaming collector's O(1)-memory
  // bound while the open stream passes a million tasks.
  reg.add({"trace/gwa-replay",
           "direct replay of the bundled GWA sample log: per-owner home placement, task "
           "counts from allocated processors, task loads from recorded runtimes",
           "", RuntimeTier::kFast, mutate([](ExperimentConfig& c) {
             c.nodes = 200;
             c.trace.text = std::string(sample_gwa_trace());
             c.trace.format = TraceFormat::kGwa;
           })});
  reg.add({"trace/fitted-burst",
           "fitted replay of the bundled SWF sample compressed into a 4 h burst: Weibull "
           "interarrivals and lognormal runtimes refitted, 600 synthetic jobs, streaming "
           "O(1)-memory metrics",
           "", RuntimeTier::kMedium, mutate([](ExperimentConfig& c) {
             c.nodes = 200;
             c.trace.text = std::string(sample_swf_trace());
             c.trace.fitted = true;
             c.trace.synth_jobs = 600;
             c.trace.synth_span_s = 4.0 * 3600.0;
             c.streaming_metrics = true;
           })});
  reg.add({"trace/open-stream-1m",
           "heavy-traffic open stream fitted from the SWF sample: 125k synthetic jobs of "
           ">= 8 tasks (a million-task arrival stream) scattered over all homes, streaming "
           "metrics holding a bounded report set - the BENCH_10 nightly scale point",
           "", RuntimeTier::kSlow, mutate([](ExperimentConfig& c) {
             c.nodes = 200;
             c.trace.text = std::string(sample_swf_trace());
             c.trace.fitted = true;
             c.trace.synth_jobs = 125000;
             c.trace.synth_span_s = 0.8 * c.system.horizon_s;
             c.trace.min_tasks_per_job = 8;
             c.trace.scatter_owners = true;
             c.streaming_metrics = true;
           })});

  reg.add({"mixed/multi-template",
           "mixed structured workload: random DAGs plus Montage, fork-join, pipeline and "
           "diamond templates drawn from a weighted mix",
           "", RuntimeTier::kMedium, mutate([](ExperimentConfig& c) {
             c.nodes = 200;
             c.workload_mix = {
                 {"random", 2.0, 0},
                 {"montage", 1.0, 6},
                 {"fork-join", 1.0, 4},
                 {"pipeline", 1.0, 6},
                 {"diamond", 0.5, 0},
             };
           })});

  return reg;
}

}  // namespace

std::string_view to_string(RuntimeTier tier) {
  switch (tier) {
    case RuntimeTier::kFast: return "fast";
    case RuntimeTier::kMedium: return "medium";
    case RuntimeTier::kSlow: return "slow";
  }
  return "unknown";
}

void ScenarioRegistry::add(Scenario scenario) {
  if (scenario.name.empty()) throw std::invalid_argument("ScenarioRegistry: empty name");
  if (!scenario.transform) {
    throw std::invalid_argument("ScenarioRegistry: scenario '" + scenario.name +
                                "' has no transform");
  }
  const auto pos = std::lower_bound(
      scenarios_.begin(), scenarios_.end(), scenario.name,
      [](const Scenario& s, const std::string& name) { return s.name < name; });
  if (pos != scenarios_.end() && pos->name == scenario.name) {
    throw std::invalid_argument("ScenarioRegistry: duplicate scenario '" + scenario.name + "'");
  }
  scenarios_.insert(pos, std::move(scenario));
}

const Scenario* ScenarioRegistry::find(std::string_view name) const {
  const auto pos = std::lower_bound(
      scenarios_.begin(), scenarios_.end(), name,
      [](const Scenario& s, std::string_view n) { return s.name < n; });
  return pos != scenarios_.end() && pos->name == name ? &*pos : nullptr;
}

const Scenario& ScenarioRegistry::at(std::string_view name) const {
  if (const Scenario* s = find(name)) return *s;
  std::string msg = "unknown scenario '" + std::string(name) + "'; known:";
  for (const auto& s : scenarios_) msg += " " + s.name;
  throw std::out_of_range(msg);
}

std::vector<const Scenario*> ScenarioRegistry::family(std::string_view prefix) const {
  std::vector<const Scenario*> out;
  for (const auto& s : scenarios_) {
    if (std::string_view(s.name).substr(0, prefix.size()) == prefix) out.push_back(&s);
  }
  return out;
}

const ScenarioRegistry& scenario_registry() {
  static const ScenarioRegistry registry = build_registry();
  return registry;
}

int conformance_nodes(int full_nodes) {
  return std::clamp(full_nodes / 10, kConformanceMinNodes, kConformanceMaxNodes);
}

ExperimentConfig conformance_preset(ExperimentConfig cfg) {
  cfg.nodes = conformance_nodes(cfg.nodes);
  // One routing thread: determinism holds at any count (tested), but the
  // conformance tier runs many scenarios under `ctest -j` and must not nest
  // full-width pools.
  cfg.routing_threads = 1;
  if (cfg.trace.enabled()) {
    // Trace scenarios scale with their job count, not just the node count:
    // cap the stream at the classic tier's workload (3 jobs per conformance
    // node) so a 125k-job open stream digest-checks in sub-seconds too.
    const auto cap = static_cast<std::size_t>(cfg.nodes) * 3;
    cfg.trace.max_jobs = cfg.trace.max_jobs == 0 ? cap : std::min(cfg.trace.max_jobs, cap);
    if (cfg.trace.synth_jobs > cap) cfg.trace.synth_jobs = cap;
  }
  return cfg;
}

std::uint64_t conformance_digest(const Scenario& scenario) { return conformance_digest(scenario, 1); }

std::uint64_t conformance_digest(const Scenario& scenario, int shards) {
  return conformance_digest(scenario, shards, 1);
}

std::uint64_t conformance_digest(const Scenario& scenario, int shards, int threads) {
  ExperimentConfig cfg = conformance_preset(scenario.config());
  if (scenario.sharded) {
    ScaleParams params = scale_params_from_config(cfg);
    params.shards = shards;
    params.threads = threads;
    return scale_digest(run_scale_model(params));
  }
  if (cfg.effective_network_mode() == net::NetworkMode::kQuantisedFair) {
    // Quantised classic scenarios shard through the epoch-barrier driver
    // (core/workflow_shard): the digest is byte-identical at every shard and
    // thread count, checked against the SAME golden entry by tests/scenario
    // and the shard-determinism CI job.
    cfg.system.shards = shards;
    cfg.system.threads = threads;
    return result_digest(run_experiment(cfg));
  }
  // Zero-lookahead classic scenarios run the serial engine whatever `shards`
  // says — see Scenario::sharded for why they cannot be partitioned
  // conservatively.
  return result_digest(run_experiment(cfg));
}

void write_digest_document(std::ostream& os,
                           const std::vector<std::pair<std::string, std::uint64_t>>& digests) {
  auto sorted = digests;
  std::sort(sorted.begin(), sorted.end());
  os << "{\n";
  os << "  \"schema\": \"dpjit-scenario-digests-v1\",\n";
  os << "  \"preset\": \"nodes=clamp(full/10," << kConformanceMinNodes << ","
     << kConformanceMaxNodes << ") routing_threads=1 trace_jobs<=3*nodes\",\n";
  os << "  \"digests\": {\n";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    os << "    \"" << sorted[i].first << "\": \"" << sorted[i].second << "\""
       << (i + 1 < sorted.size() ? "," : "") << "\n";
  }
  os << "  }\n";
  os << "}\n";
}

std::map<std::string, std::uint64_t> parse_digest_document(std::istream& is) {
  // Line-based parser for the canonical document write_digest_document emits.
  // Deliberately strict: anything hand-mangled should fail, not half-parse.
  std::map<std::string, std::uint64_t> out;
  std::string line;
  bool saw_schema = false;
  bool in_digests = false;
  while (std::getline(is, line)) {
    if (line.find("\"dpjit-scenario-digests-v1\"") != std::string::npos) saw_schema = true;
    if (line.find("\"digests\"") != std::string::npos) {
      in_digests = true;
      continue;
    }
    if (!in_digests) continue;
    if (line.find('}') != std::string::npos && line.find(':') == std::string::npos) break;
    // Expected shape:   "name": "digest"[,]
    const auto q1 = line.find('"');
    const auto q2 = line.find('"', q1 + 1);
    const auto q3 = line.find('"', q2 + 1);
    const auto q4 = line.find('"', q3 + 1);
    if (q1 == std::string::npos || q2 == std::string::npos || q3 == std::string::npos ||
        q4 == std::string::npos) {
      throw std::runtime_error("golden digest document: malformed line: " + line);
    }
    const std::string name = line.substr(q1 + 1, q2 - q1 - 1);
    const std::string value = line.substr(q3 + 1, q4 - q3 - 1);
    std::uint64_t digest = 0;
    try {
      std::size_t consumed = 0;
      digest = std::stoull(value, &consumed);
      if (consumed != value.size()) throw std::invalid_argument(value);
    } catch (const std::exception&) {
      throw std::runtime_error("golden digest document: bad digest for " + name);
    }
    if (!out.emplace(name, digest).second) {
      throw std::runtime_error("golden digest document: duplicate scenario " + name);
    }
  }
  if (!saw_schema) throw std::runtime_error("golden digest document: missing/unknown schema");
  return out;
}

}  // namespace dpjit::exp
