// Named, self-describing end-to-end scenarios.
//
// The ROADMAP's "as many scenarios as you can imagine" lives here: instead of
// each bench binary wiring its own ad-hoc Table-I sweep, a scenario is a
// registered, documented transform over ExperimentConfig — the paper's static
// and dynamic environments, the four CCR regimes, and extension workloads
// (Poisson open arrivals, flash-crowd bursts, heavy-tailed task sizes,
// correlated churn waves, mixed structured workflows). Every registered
// scenario is digest-checked end-to-end at a small-n conformance preset
// against tests/scenario/golden_digests.json, so a silent change of results
// anywhere in the stack fails the `scenario` ctest tier loudly.
#pragma once

#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "exp/experiment.hpp"

namespace dpjit::exp {

/// Coarse wall-clock expectation of a run at the scenario's full default
/// scale on one core (fast < ~5 s, medium < ~1 min, slow = minutes).
enum class RuntimeTier { kFast, kMedium, kSlow };

[[nodiscard]] std::string_view to_string(RuntimeTier tier);

/// A named end-to-end scenario: metadata plus a pure configuration transform.
struct Scenario {
  /// "family/variant", e.g. "paper/static-n500" or "burst/flash-crowd".
  std::string name;
  std::string description;
  /// Paper section the scenario reproduces; empty for extensions.
  std::string paper_section;
  RuntimeTier tier = RuntimeTier::kMedium;
  /// Shapes a base configuration. Must be pure: same input, same output.
  std::function<ExperimentConfig(ExperimentConfig)> transform;
  /// True for scale/* scenarios: the run executes the sharded scale model
  /// (exp::run_scale_model on sim::ShardEngine) instead of the full
  /// GridSystem world, and a shard count may be applied — with byte-identical
  /// digests at every count. Classic scenarios fall into two camps (see the
  /// mode matrix in net/network_model.hpp): quantised/* runs shard too — the
  /// epoch-barrier driver (core/workflow_shard) accepts any shard/thread
  /// count with byte-identical digests, so this flag stays false and the
  /// count flows through SystemConfig::shards instead — while zero-lookahead
  /// modes (bottleneck, fluid fair sharing: instant rate coupling, shared RNG
  /// streams) cannot partition conservatively and always run the serial
  /// engine, ignoring any requested count.
  bool sharded = false;

  /// Applies the transform to `base` (CLI/bench overrides survive unless the
  /// scenario explicitly owns the knob, e.g. "-n500" scenarios set nodes).
  [[nodiscard]] ExperimentConfig apply(ExperimentConfig base) const {
    return transform(std::move(base));
  }

  /// The scenario at its full default scale.
  [[nodiscard]] ExperimentConfig config() const { return apply(ExperimentConfig{}); }
};

/// Name-keyed scenario collection, iterable in sorted-name order.
class ScenarioRegistry {
 public:
  /// Registers a scenario. Throws std::invalid_argument on an empty/duplicate
  /// name or a missing transform.
  void add(Scenario scenario);

  /// Null when the name is unknown.
  [[nodiscard]] const Scenario* find(std::string_view name) const;

  /// Throws std::out_of_range (listing known names) when unknown.
  [[nodiscard]] const Scenario& at(std::string_view name) const;

  /// All scenarios in ascending name order.
  [[nodiscard]] const std::vector<Scenario>& all() const { return scenarios_; }

  /// Scenarios whose name starts with `prefix` (e.g. "ccr/"), sorted.
  [[nodiscard]] std::vector<const Scenario*> family(std::string_view prefix) const;

  [[nodiscard]] std::size_t size() const { return scenarios_.size(); }

 private:
  std::vector<Scenario> scenarios_;  // kept sorted by name
};

/// The built-in scenario library (built once, immutable afterwards).
[[nodiscard]] const ScenarioRegistry& scenario_registry();

/// The small-n conformance preset: shrinks any scenario configuration to a
/// deterministic sub-second run so every scenario can be golden-digest
/// checked in the test tier. Applied AFTER the scenario transform. The node
/// count scales with the scenario's full-size scale (see conformance_nodes),
/// so scale-distinguished scenarios (paper/static-n200/-n500/-n1000) keep
/// distinct conformance runs instead of collapsing onto one digest.
[[nodiscard]] ExperimentConfig conformance_preset(ExperimentConfig cfg);

/// The preset's node count for a scenario whose full scale is `full_nodes`:
/// full_nodes / 10, clamped into [kConformanceMinNodes, kConformanceMaxNodes].
[[nodiscard]] int conformance_nodes(int full_nodes);

inline constexpr int kConformanceMinNodes = 40;
inline constexpr int kConformanceMaxNodes = 64;

/// Runs one scenario under the conformance preset and digests the result.
[[nodiscard]] std::uint64_t conformance_digest(const Scenario& scenario);

/// Same, executing a sharded scenario at the given shard count (>= 1). The
/// digest is shard-invariant — tests/scenario and the shard-determinism CI
/// job check every count against the SAME golden entry. `shards` is applied
/// to scale/* scenarios (exp::run_scale_model) AND to classic scenarios on
/// the quantised network mode (the core/workflow_shard barrier driver); the
/// zero-lookahead classic scenarios ignore it (see Scenario::sharded).
[[nodiscard]] std::uint64_t conformance_digest(const Scenario& scenario, int shards);

/// Same, additionally pinning the worker-thread count of the sharded run
/// (also digest-neutral; the determinism tests sweep both axes).
[[nodiscard]] std::uint64_t conformance_digest(const Scenario& scenario, int shards, int threads);

/// Writes the canonical golden-digest document (valid JSON, one scenario per
/// line, sorted by name) — the exact bytes committed as
/// tests/scenario/golden_digests.json and emitted by `scenario_runner
/// --digest`, so `diff` works directly.
void write_digest_document(std::ostream& os,
                           const std::vector<std::pair<std::string, std::uint64_t>>& digests);

/// Parses a golden-digest document back into name -> digest. Throws
/// std::runtime_error on malformed input or a schema mismatch.
[[nodiscard]] std::map<std::string, std::uint64_t> parse_digest_document(std::istream& is);

}  // namespace dpjit::exp
