// One-shot experiment execution and its condensed result record.
#pragma once

#include <string>
#include <vector>

#include "exp/workload_factory.hpp"

namespace dpjit::exp {

/// Summary of one simulation run (one algorithm, one configuration).
struct ExperimentResult {
  std::string algorithm;
  int nodes = 0;
  int workflows_per_node = 0;
  std::uint64_t seed = 0;

  std::size_t workflows_submitted = 0;
  std::size_t workflows_finished = 0;
  /// ACT (Eq. 2) over finished workflows, seconds.
  double act = 0.0;
  /// AE (Eq. 3) over finished workflows.
  double ae = 0.0;
  /// Mean submission->completion response time, seconds.
  double mean_response = 0.0;

  std::vector<CurvePoint> throughput;
  std::vector<CurvePoint> act_over_time;
  std::vector<CurvePoint> ae_over_time;

  double converged_rss_size = 0.0;
  double converged_idle_known = 0.0;
  /// Completion-time quantiles: exact under the retaining collector,
  /// t-digest estimates under streaming_metrics. NaN when nothing finished.
  /// NOT part of result_digest (the estimates are collector-dependent).
  double ct_p50 = 0.0;
  double ct_p95 = 0.0;
  double ct_p99 = 0.0;
  /// Per-workflow report records held live at the end of the run: finished()
  /// for the retaining collector, <= the reservoir bound for streaming.
  std::size_t live_reports = 0;
  std::uint64_t tasks_dispatched = 0;
  std::uint64_t tasks_failed = 0;
  std::uint64_t tasks_rescheduled = 0;
  std::uint64_t gossip_messages = 0;
  std::uint64_t gossip_bytes = 0;
  std::uint64_t events_processed = 0;
  double wall_seconds = 0.0;
};

/// Builds a World from the config, runs it to the horizon and summarizes.
[[nodiscard]] ExperimentResult run_experiment(const ExperimentConfig& config);

/// Extracts the summary from an already-run World.
[[nodiscard]] ExperimentResult summarize(const World& world, double wall_seconds);

/// FNV-1a over the bit patterns of the result's headline metrics: a cheap
/// fingerprint for "this change did not alter simulation output". Excludes
/// wall-clock time, so the digest is machine-independent; used by the perf
/// harness, the scenario conformance tier and CI golden-digest checks.
[[nodiscard]] std::uint64_t result_digest(const ExperimentResult& r);

/// Order-sensitive combination of per-result digests for whole sweeps.
[[nodiscard]] std::uint64_t results_digest(const std::vector<ExperimentResult>& results);

}  // namespace dpjit::exp
