// Parameter sweeps: run many independent experiment configurations, in
// parallel when OpenMP is available (each run owns its engine and RNG streams,
// so parallel execution cannot perturb determinism).
#pragma once

#include <vector>

#include "exp/experiment.hpp"

namespace dpjit::exp {

/// Runs every configuration and returns results in the same order.
[[nodiscard]] std::vector<ExperimentResult> run_sweep(const std::vector<ExperimentConfig>& configs);

/// Convenience: the same base config across the paper's eight algorithms.
[[nodiscard]] std::vector<ExperimentConfig> across_algorithms(const ExperimentConfig& base);

}  // namespace dpjit::exp
