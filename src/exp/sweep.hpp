// Parameter sweeps: run many independent experiment configurations across a
// portable std::thread pool (no OpenMP dependency). Each run owns its engine
// and RNG streams, so results are bit-identical to serial execution at any
// thread count.
#pragma once

#include <vector>

#include "exp/experiment.hpp"

namespace dpjit::exp {

/// Runs every configuration and returns results in the same order.
/// `threads` <= 0 means hardware concurrency; 1 forces serial execution.
[[nodiscard]] std::vector<ExperimentResult> run_sweep(const std::vector<ExperimentConfig>& configs,
                                                      int threads = 0);

/// Convenience: the same base config across the paper's eight algorithms.
[[nodiscard]] std::vector<ExperimentConfig> across_algorithms(const ExperimentConfig& base);

}  // namespace dpjit::exp
