// Post-hoc analysis of a simulation trace: per-node utilization, queueing,
// and data-movement statistics. The paper reports only workflow-level
// metrics; operators of a real deployment need the node-level view (where
// are the hotspots? how imbalanced is the load? how much data moved?), so
// the library provides it for any traced run.
#pragma once

#include <vector>

#include "sim/trace.hpp"

namespace dpjit::exp {

/// Aggregated execution statistics of one node.
struct NodeUsage {
  NodeId node;
  /// Number of tasks executed to completion.
  std::size_t tasks_executed = 0;
  /// Total busy time (sum of execution intervals), seconds.
  double busy_s = 0.0;
  /// busy / horizon, in [0, 1].
  double utilization = 0.0;
};

/// Whole-run summary derived from a trace.
struct TraceSummary {
  double horizon_s = 0.0;
  std::size_t tasks_dispatched = 0;
  std::size_t tasks_executed = 0;
  std::size_t tasks_failed = 0;
  std::size_t transfers_completed = 0;
  std::size_t workflows_finished = 0;
  /// Nodes that executed at least one task.
  std::size_t active_nodes = 0;
  /// Mean utilization over active nodes.
  double mean_utilization = 0.0;
  /// Max single-node utilization (the hotspot).
  double max_utilization = 0.0;
  /// Jain's fairness index over active nodes' busy time, in (0, 1];
  /// 1 = perfectly balanced.
  double busy_fairness = 1.0;
  /// Mean dispatch -> execution-start waiting time, seconds.
  double mean_queue_wait_s = 0.0;
};

/// Computes per-node usage from a trace (requires the trace to have been
/// enabled for the whole run). `horizon_s` caps utilization; it must be > 0.
[[nodiscard]] std::vector<NodeUsage> node_usage(const sim::Trace& trace, double horizon_s);

/// Computes the whole-run summary.
[[nodiscard]] TraceSummary summarize_trace(const sim::Trace& trace, double horizon_s);

/// Prints a usage table (top `max_rows` nodes by busy time) and the summary.
void print_trace_report(std::ostream& os, const sim::Trace& trace, double horizon_s,
                        std::size_t max_rows = 10);

}  // namespace dpjit::exp
