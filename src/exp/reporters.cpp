#include "exp/reporters.hpp"

#include <stdexcept>

#include "util/csv.hpp"
#include "util/json.hpp"
#include "util/table_printer.hpp"

namespace dpjit::exp {
namespace {

const std::vector<CurvePoint>& select_curve(const ExperimentResult& r, const std::string& which) {
  if (which == "throughput") return r.throughput;
  if (which == "act") return r.act_over_time;
  if (which == "ae") return r.ae_over_time;
  throw std::invalid_argument("unknown series: " + which);
}

std::vector<std::string> effective_labels(const std::vector<ExperimentResult>& results,
                                          const std::vector<std::string>& labels) {
  if (!labels.empty()) return labels;
  std::vector<std::string> out;
  out.reserve(results.size());
  for (const auto& r : results) out.push_back(r.algorithm);
  return out;
}

}  // namespace

void print_summary_table(std::ostream& os, const std::vector<ExperimentResult>& results) {
  util::TablePrinter table({"algorithm", "finished", "submitted", "ACT(s)", "AE", "response(s)",
                            "tasks_failed", "rescheduled", "wall(s)"});
  for (const auto& r : results) {
    table.add_row({r.algorithm, std::to_string(r.workflows_finished),
                   std::to_string(r.workflows_submitted), util::TablePrinter::fmt(r.act, 6),
                   util::TablePrinter::fmt(r.ae, 4), util::TablePrinter::fmt(r.mean_response, 6),
                   std::to_string(r.tasks_failed), std::to_string(r.tasks_rescheduled),
                   util::TablePrinter::fmt(r.wall_seconds, 3)});
  }
  table.print(os);
}

void print_time_series(std::ostream& os, const std::vector<ExperimentResult>& results,
                       const std::string& which, const std::vector<std::string>& labels) {
  if (results.empty()) return;
  const auto names = effective_labels(results, labels);
  std::vector<std::string> headers{"hour"};
  headers.insert(headers.end(), names.begin(), names.end());
  util::TablePrinter table(headers);
  const std::size_t points = select_curve(results.front(), which).size();
  for (std::size_t i = 0; i < points; ++i) {
    std::vector<std::string> row;
    row.push_back(
        util::TablePrinter::fmt(select_curve(results.front(), which)[i].time / 3600.0, 3));
    for (const auto& r : results) {
      const auto& curve = select_curve(r, which);
      row.push_back(i < curve.size() ? util::TablePrinter::fmt(curve[i].value, 5) : "");
    }
    table.add_row(std::move(row));
  }
  table.print(os);
}

void write_time_series_csv(std::ostream& os, const std::vector<ExperimentResult>& results,
                           const std::string& which, const std::vector<std::string>& labels) {
  if (results.empty()) return;
  const auto names = effective_labels(results, labels);
  util::CsvWriter csv(os);
  std::vector<std::string> header{"hour"};
  header.insert(header.end(), names.begin(), names.end());
  csv.row(header);
  const std::size_t points = select_curve(results.front(), which).size();
  for (std::size_t i = 0; i < points; ++i) {
    std::vector<std::string> row;
    row.push_back(util::CsvWriter::num(select_curve(results.front(), which)[i].time / 3600.0));
    for (const auto& r : results) {
      const auto& curve = select_curve(r, which);
      row.push_back(i < curve.size() ? util::CsvWriter::num(curve[i].value) : "");
    }
    csv.row(row);
  }
}

void print_sweep_table(std::ostream& os, const std::string& x_name,
                       const std::vector<std::string>& x_values,
                       const std::vector<std::string>& series_names,
                       const std::vector<std::vector<double>>& values) {
  std::vector<std::string> headers{x_name};
  headers.insert(headers.end(), series_names.begin(), series_names.end());
  util::TablePrinter table(headers);
  for (std::size_t i = 0; i < x_values.size(); ++i) {
    std::vector<std::string> row{x_values[i]};
    for (std::size_t s = 0; s < series_names.size(); ++s) {
      row.push_back(i < values[s].size() ? util::TablePrinter::fmt(values[s][i], 5) : "");
    }
    table.add_row(std::move(row));
  }
  table.print(os);
}

void write_results_json(std::ostream& os, const std::vector<ExperimentResult>& results) {
  util::JsonWriter json(os);
  json.begin_array();
  for (const auto& r : results) {
    json.begin_object();
    json.kv("algorithm", std::string_view(r.algorithm));
    json.kv("nodes", static_cast<std::int64_t>(r.nodes));
    json.kv("workflows_per_node", static_cast<std::int64_t>(r.workflows_per_node));
    json.kv("seed", static_cast<std::uint64_t>(r.seed));
    json.kv("workflows_submitted", static_cast<std::uint64_t>(r.workflows_submitted));
    json.kv("workflows_finished", static_cast<std::uint64_t>(r.workflows_finished));
    json.kv("act_s", r.act);
    json.kv("ae", r.ae);
    json.kv("mean_response_s", r.mean_response);
    json.kv("converged_rss_size", r.converged_rss_size);
    json.kv("tasks_dispatched", r.tasks_dispatched);
    json.kv("tasks_failed", r.tasks_failed);
    json.kv("tasks_rescheduled", r.tasks_rescheduled);
    json.kv("gossip_messages", r.gossip_messages);
    json.kv("wall_seconds", r.wall_seconds);
    const std::pair<const char*, const std::vector<CurvePoint>*> curves[] = {
        {"throughput", &r.throughput},
        {"act_over_time", &r.act_over_time},
        {"ae_over_time", &r.ae_over_time},
    };
    for (const auto& [name, curve] : curves) {
      json.key(name);
      json.begin_array();
      for (const auto& p : *curve) {
        json.begin_array().value(p.time).value(p.value).end_array();
      }
      json.end_array();
    }
    json.end_object();
  }
  json.end_array();
  os << '\n';
}

}  // namespace dpjit::exp
