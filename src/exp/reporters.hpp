// Presentation of experiment results: the bench binaries print the same rows
// and series the paper's tables and figures report, in aligned text tables
// and optionally CSV.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "exp/experiment.hpp"

namespace dpjit::exp {

/// Prints one summary row per result: algorithm, finished/submitted, ACT, AE,
/// response, failures. The paper's "converged" numbers.
void print_summary_table(std::ostream& os, const std::vector<ExperimentResult>& results);

/// Prints a "metric vs time" table: one row per bucket (hours), one column per
/// result (labelled by algorithm) - the textual form of Figs. 4-6 and 12-14.
/// `which` selects the series: "throughput", "act" or "ae".
void print_time_series(std::ostream& os, const std::vector<ExperimentResult>& results,
                       const std::string& which,
                       const std::vector<std::string>& labels = {});

/// Emits the same series as CSV (for external plotting).
void write_time_series_csv(std::ostream& os, const std::vector<ExperimentResult>& results,
                           const std::string& which,
                           const std::vector<std::string>& labels = {});

/// Prints a sweep table: one row per result with a caller-provided x column
/// (e.g. load factor or system scale) and the chosen metric per algorithm.
void print_sweep_table(std::ostream& os, const std::string& x_name,
                       const std::vector<std::string>& x_values,
                       const std::vector<std::string>& series_names,
                       const std::vector<std::vector<double>>& values);

/// Writes the full result set (summary scalars + all three curves per result)
/// as one JSON document, for downstream plotting/analysis tooling.
void write_results_json(std::ostream& os, const std::vector<ExperimentResult>& results);

}  // namespace dpjit::exp
