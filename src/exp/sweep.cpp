#include "exp/sweep.hpp"

#include "core/policy_registry.hpp"
#include "util/parallel.hpp"

namespace dpjit::exp {

std::vector<ExperimentResult> run_sweep(const std::vector<ExperimentConfig>& configs,
                                        int threads) {
  std::vector<ExperimentResult> results(configs.size());
  // Work stealing balances runs of unequal cost (different scales/horizons);
  // results[i] is written by exactly one worker, and every run owns its
  // World (engine, RNG streams, metrics), so any schedule of runs onto
  // threads produces identical results.
  const bool pool_is_parallel = util::resolve_threads(threads, configs.size()) > 1;
  util::parallel_for_each(configs.size(), threads, [&](std::size_t i) {
    ExperimentConfig cfg = configs[i];
    // The sweep pool already saturates the cores; a full-width Routing build
    // inside every concurrent run would only oversubscribe them.
    if (pool_is_parallel && cfg.routing_threads == 0) cfg.routing_threads = 1;
    results[i] = run_experiment(cfg);
  });
  return results;
}

std::vector<ExperimentConfig> across_algorithms(const ExperimentConfig& base) {
  std::vector<ExperimentConfig> configs;
  for (const auto& name : core::paper_algorithms()) {
    ExperimentConfig cfg = base;
    cfg.algorithm = name;
    configs.push_back(std::move(cfg));
  }
  return configs;
}

}  // namespace dpjit::exp
