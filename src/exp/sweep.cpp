#include "exp/sweep.hpp"

#include "core/policy_registry.hpp"

namespace dpjit::exp {

std::vector<ExperimentResult> run_sweep(const std::vector<ExperimentConfig>& configs) {
  std::vector<ExperimentResult> results(configs.size());
#if defined(DPJIT_HAVE_OPENMP)
#pragma omp parallel for schedule(dynamic)
#endif
  for (std::size_t i = 0; i < configs.size(); ++i) {  // NOLINT(modernize-loop-convert)
    results[i] = run_experiment(configs[i]);
  }
  return results;
}

std::vector<ExperimentConfig> across_algorithms(const ExperimentConfig& base) {
  std::vector<ExperimentConfig> configs;
  for (const auto& name : core::paper_algorithms()) {
    ExperimentConfig cfg = base;
    cfg.algorithm = name;
    configs.push_back(std::move(cfg));
  }
  return configs;
}

}  // namespace dpjit::exp
