#include "exp/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace dpjit::exp {

std::size_t curve_bucket_count(double horizon_s, double bucket_s) {
  return static_cast<std::size_t>(std::ceil(horizon_s / bucket_s));
}

std::size_t curve_bucket_index(double finish_s, double horizon_s, double bucket_s,
                               std::size_t buckets) {
  // A workflow finishing at (or somehow past) the horizon belongs to the
  // final bucket regardless of whether the horizon divides evenly into
  // buckets — floor(horizon / bucket) alone puts an exact-horizon finish into
  // an interior bucket whenever horizon is not a bucket multiple.
  if (finish_s >= horizon_s) return buckets;
  const auto b = static_cast<std::size_t>(std::max(finish_s, 0.0) / bucket_s);
  return std::min(b, buckets);
}

MetricsCollector::MetricsCollector(double horizon_s, double bucket_s)
    : horizon_(horizon_s), bucket_(bucket_s) {
  if (horizon_s <= 0.0 || bucket_s <= 0.0) {
    throw std::invalid_argument("MetricsCollector: horizon/bucket must be > 0");
  }
}

void MetricsCollector::on_workflow_finished(const core::WorkflowReport& report) {
  reports_.push_back(report);
}

void MetricsCollector::on_cycle(const core::CycleSample& sample) {
  samples_.push_back(sample);
}

double MetricsCollector::act() const {
  if (reports_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& r : reports_) sum += r.completion_time();
  return sum / static_cast<double>(reports_.size());
}

double MetricsCollector::ae() const {
  if (reports_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& r : reports_) sum += r.efficiency();
  return sum / static_cast<double>(reports_.size());
}

double MetricsCollector::mean_response() const {
  if (reports_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& r : reports_) sum += r.response_time();
  return sum / static_cast<double>(reports_.size());
}

namespace {

/// Cumulative-curve assembly shared by both collectors: per-bucket counts
/// (and optional sums) -> one CurvePoint per bucket.
std::vector<CurvePoint> count_curve(const std::vector<std::size_t>& finished_in, double bucket) {
  std::vector<CurvePoint> curve(finished_in.size());
  std::size_t cum = 0;
  for (std::size_t b = 0; b < finished_in.size(); ++b) {
    cum += finished_in[b];
    curve[b] = CurvePoint{static_cast<SimTime>(b + 1) * bucket, static_cast<double>(cum)};
  }
  return curve;
}

std::vector<CurvePoint> mean_curve(const std::vector<double>& sum_in,
                                   const std::vector<std::size_t>& n_in, double bucket) {
  std::vector<CurvePoint> curve(sum_in.size());
  double cum_sum = 0.0;
  std::size_t cum_n = 0;
  for (std::size_t b = 0; b < sum_in.size(); ++b) {
    cum_sum += sum_in[b];
    cum_n += n_in[b];
    curve[b] = CurvePoint{static_cast<SimTime>(b + 1) * bucket,
                          cum_n == 0 ? 0.0 : cum_sum / static_cast<double>(cum_n)};
  }
  return curve;
}

}  // namespace

std::vector<CurvePoint> MetricsCollector::throughput_curve() const {
  const std::size_t buckets = curve_bucket_count(horizon_, bucket_);
  std::vector<std::size_t> finished_in(buckets + 1, 0);
  for (const auto& r : reports_) {
    ++finished_in[curve_bucket_index(r.finish_time, horizon_, bucket_, buckets)];
  }
  return count_curve(finished_in, bucket_);
}

namespace {

std::vector<CurvePoint> cumulative_mean_curve(const std::vector<core::WorkflowReport>& reports,
                                              double horizon, double bucket,
                                              double (core::WorkflowReport::*metric)() const) {
  const std::size_t buckets = curve_bucket_count(horizon, bucket);
  std::vector<double> sum_in(buckets + 1, 0.0);
  std::vector<std::size_t> n_in(buckets + 1, 0);
  for (const auto& r : reports) {
    const std::size_t b = curve_bucket_index(r.finish_time, horizon, bucket, buckets);
    sum_in[b] += (r.*metric)();
    ++n_in[b];
  }
  return mean_curve(sum_in, n_in, bucket);
}

}  // namespace

std::vector<CurvePoint> MetricsCollector::act_curve() const {
  return cumulative_mean_curve(reports_, horizon_, bucket_,
                               &core::WorkflowReport::completion_time);
}

std::vector<CurvePoint> MetricsCollector::ae_curve() const {
  return cumulative_mean_curve(reports_, horizon_, bucket_, &core::WorkflowReport::efficiency);
}

namespace {

double tail_mean(const std::vector<core::CycleSample>& samples,
                 double (core::CycleSample::*field)) {
  if (samples.empty()) return 0.0;
  const std::size_t start = samples.size() - std::max<std::size_t>(samples.size() / 4, 1);
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = start; i < samples.size(); ++i) {
    sum += samples[i].*field;
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

}  // namespace

double MetricsCollector::converged_rss_size() const {
  return tail_mean(samples_, &core::CycleSample::mean_rss_size);
}

double MetricsCollector::converged_idle_known() const {
  return tail_mean(samples_, &core::CycleSample::mean_idle_known);
}

double MetricsCollector::ct_quantile(double q) const {
  std::vector<double> cts;
  cts.reserve(reports_.size());
  for (const auto& r : reports_) cts.push_back(r.completion_time());
  return util::percentile(std::move(cts), q);
}

// --- streaming ---------------------------------------------------------------

StreamingMetricsCollector::StreamingMetricsCollector(double horizon_s, util::Rng reservoir_rng,
                                                     double bucket_s, double compression,
                                                     std::size_t reservoir_capacity)
    : horizon_(horizon_s),
      bucket_(bucket_s),
      buckets_(0),
      tail_start_(0.75 * horizon_s),
      ct_digest_(compression),
      reservoir_(reservoir_capacity, std::move(reservoir_rng)) {
  if (horizon_s <= 0.0 || bucket_s <= 0.0) {
    throw std::invalid_argument("StreamingMetricsCollector: horizon/bucket must be > 0");
  }
  buckets_ = curve_bucket_count(horizon_, bucket_);
  finished_in_.assign(buckets_ + 1, 0);
  ct_sum_in_.assign(buckets_ + 1, 0.0);
  eff_sum_in_.assign(buckets_ + 1, 0.0);
}

void StreamingMetricsCollector::on_workflow_finished(const core::WorkflowReport& report) {
  ++finished_;
  const double ct = report.completion_time();
  const double eff = report.efficiency();
  ct_sum_ += ct;
  eff_sum_ += eff;
  resp_sum_ += report.response_time();

  const std::size_t b = curve_bucket_index(report.finish_time, horizon_, bucket_, buckets_);
  ++finished_in_[b];
  ct_sum_in_[b] += ct;
  eff_sum_in_[b] += eff;

  ct_digest_.add(ct);
  reservoir_.add(report);
}

void StreamingMetricsCollector::on_cycle(const core::CycleSample& sample) {
  ++cycles_seen_;
  if (sample.time >= tail_start_) {
    tail_rss_sum_ += sample.mean_rss_size;
    tail_idle_sum_ += sample.mean_idle_known;
    ++tail_n_;
  }
}

double StreamingMetricsCollector::act() const {
  return finished_ == 0 ? 0.0 : ct_sum_ / static_cast<double>(finished_);
}

double StreamingMetricsCollector::ae() const {
  return finished_ == 0 ? 0.0 : eff_sum_ / static_cast<double>(finished_);
}

double StreamingMetricsCollector::mean_response() const {
  return finished_ == 0 ? 0.0 : resp_sum_ / static_cast<double>(finished_);
}

std::vector<CurvePoint> StreamingMetricsCollector::throughput_curve() const {
  return count_curve(finished_in_, bucket_);
}

std::vector<CurvePoint> StreamingMetricsCollector::act_curve() const {
  return mean_curve(ct_sum_in_, finished_in_, bucket_);
}

std::vector<CurvePoint> StreamingMetricsCollector::ae_curve() const {
  return mean_curve(eff_sum_in_, finished_in_, bucket_);
}

double StreamingMetricsCollector::converged_rss_size() const {
  return tail_n_ == 0 ? 0.0 : tail_rss_sum_ / static_cast<double>(tail_n_);
}

double StreamingMetricsCollector::converged_idle_known() const {
  return tail_n_ == 0 ? 0.0 : tail_idle_sum_ / static_cast<double>(tail_n_);
}

double StreamingMetricsCollector::ct_quantile(double q) const { return ct_digest_.quantile(q); }

}  // namespace dpjit::exp
