#include "exp/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dpjit::exp {

MetricsCollector::MetricsCollector(double horizon_s, double bucket_s)
    : horizon_(horizon_s), bucket_(bucket_s) {
  if (horizon_s <= 0.0 || bucket_s <= 0.0) {
    throw std::invalid_argument("MetricsCollector: horizon/bucket must be > 0");
  }
}

void MetricsCollector::on_workflow_finished(const core::WorkflowReport& report) {
  reports_.push_back(report);
}

void MetricsCollector::on_cycle(const core::CycleSample& sample) {
  samples_.push_back(sample);
}

double MetricsCollector::act() const {
  if (reports_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& r : reports_) sum += r.completion_time();
  return sum / static_cast<double>(reports_.size());
}

double MetricsCollector::ae() const {
  if (reports_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& r : reports_) sum += r.efficiency();
  return sum / static_cast<double>(reports_.size());
}

double MetricsCollector::mean_response() const {
  if (reports_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& r : reports_) sum += r.response_time();
  return sum / static_cast<double>(reports_.size());
}

std::vector<CurvePoint> MetricsCollector::throughput_curve() const {
  const auto buckets = static_cast<std::size_t>(std::ceil(horizon_ / bucket_));
  std::vector<CurvePoint> curve(buckets + 1);
  std::vector<std::size_t> finished_in(buckets + 1, 0);
  for (const auto& r : reports_) {
    auto b = static_cast<std::size_t>(std::max(r.finish_time, 0.0) / bucket_);
    b = std::min(b, buckets);
    ++finished_in[b];
  }
  std::size_t cum = 0;
  for (std::size_t b = 0; b <= buckets; ++b) {
    cum += finished_in[b];
    curve[b] = CurvePoint{static_cast<SimTime>(b + 1) * bucket_, static_cast<double>(cum)};
  }
  return curve;
}

namespace {

std::vector<CurvePoint> cumulative_mean_curve(const std::vector<core::WorkflowReport>& reports,
                                              double horizon, double bucket,
                                              double (core::WorkflowReport::*metric)() const) {
  const auto buckets = static_cast<std::size_t>(std::ceil(horizon / bucket));
  std::vector<double> sum_in(buckets + 1, 0.0);
  std::vector<std::size_t> n_in(buckets + 1, 0);
  for (const auto& r : reports) {
    auto b = static_cast<std::size_t>(std::max(r.finish_time, 0.0) / bucket);
    b = std::min(b, buckets);
    sum_in[b] += (r.*metric)();
    ++n_in[b];
  }
  std::vector<CurvePoint> curve(buckets + 1);
  double cum_sum = 0.0;
  std::size_t cum_n = 0;
  for (std::size_t b = 0; b <= buckets; ++b) {
    cum_sum += sum_in[b];
    cum_n += n_in[b];
    curve[b] = CurvePoint{static_cast<SimTime>(b + 1) * bucket,
                          cum_n == 0 ? 0.0 : cum_sum / static_cast<double>(cum_n)};
  }
  return curve;
}

}  // namespace

std::vector<CurvePoint> MetricsCollector::act_curve() const {
  return cumulative_mean_curve(reports_, horizon_, bucket_,
                               &core::WorkflowReport::completion_time);
}

std::vector<CurvePoint> MetricsCollector::ae_curve() const {
  return cumulative_mean_curve(reports_, horizon_, bucket_, &core::WorkflowReport::efficiency);
}

namespace {

double tail_mean(const std::vector<core::CycleSample>& samples,
                 double (core::CycleSample::*field)) {
  if (samples.empty()) return 0.0;
  const std::size_t start = samples.size() - std::max<std::size_t>(samples.size() / 4, 1);
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = start; i < samples.size(); ++i) {
    sum += samples[i].*field;
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

}  // namespace

double MetricsCollector::converged_rss_size() const {
  return tail_mean(samples_, &core::CycleSample::mean_rss_size);
}

double MetricsCollector::converged_idle_known() const {
  return tail_mean(samples_, &core::CycleSample::mean_idle_known);
}

}  // namespace dpjit::exp
