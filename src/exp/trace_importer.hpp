// Trace-driven workloads: importers for the two de-facto standard grid/cluster
// job-log formats and a fitted-generator path for replaying a trace's
// statistics synthetically at any scale.
//
//  - SWF (Standard Workload Format, Feitelson's Parallel Workloads Archive):
//    ';' comments carry header directives, data rows are 18 whitespace-
//    separated fields (job, submit, wait, runtime, allocated procs, ...,
//    status, user, ...), -1 marking a missing value.
//  - GWA (Grid Workloads Archive): '#' comments, 29 columns whose leading 12
//    share the SWF semantics.
//
// Parsing is tolerant of comments, blank lines and missing trailing columns,
// and *deterministically* normalizing for the rest: semantically bad rows
// (missing submit/runtime) are skipped with per-reason counts, zero runtimes
// and non-positive processor counts are clamped, out-of-order arrivals are
// stably re-sorted, and the whole trace is shifted so the first arrival is at
// t = 0. Structurally broken input (truncated data row, non-numeric field)
// throws std::runtime_error naming the line — never crashes, never guesses.
//
// The fitted path estimates Guazzone-style distributions from a parsed trace
// (Weibull interarrivals matched by mean/CV, lognormal runtimes from
// log-moments, empirical owner weights, processor-count histogram) and
// synthesizes an arbitrarily large workload from them with util::Rng — the
// open-stream heavy-traffic scenarios replay a small bundled sample at
// 1M-task scale this way.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.hpp"

namespace dpjit::exp {

enum class TraceFormat {
  kAuto,  ///< Detect from the comment character / column count.
  kSwf,
  kGwa,
};

[[nodiscard]] std::string_view to_string(TraceFormat format);

/// One job of a parsed trace, after normalization.
struct TraceJob {
  std::int64_t id = 0;
  /// Arrival time in seconds, shifted so the trace's first arrival is 0.
  double submit_s = 0.0;
  /// Runtime in seconds; always > 0 after normalization.
  double runtime_s = 0.0;
  /// Allocated processors; always >= 1 after normalization. Drives the
  /// task count of the workflow a job is expanded into.
  int procs = 1;
  /// User id; always >= 0 after normalization (missing maps to 0).
  int owner = 0;
};

/// Per-reason counts of what normalization did — the parser never silently
/// drops a row without incrementing one of these.
struct TraceStats {
  std::size_t accepted = 0;
  std::size_t comment_lines = 0;
  std::size_t skipped_missing_submit = 0;
  std::size_t skipped_missing_runtime = 0;
  std::size_t normalized_zero_runtime = 0;
  std::size_t normalized_procs = 0;
  std::size_t normalized_owner = 0;
  /// Rows whose submit time preceded an earlier row's (re-sorted stably).
  std::size_t out_of_order = 0;

  [[nodiscard]] std::size_t skipped() const {
    return skipped_missing_submit + skipped_missing_runtime;
  }
};

/// A parsed, normalized trace: jobs sorted by (submit_s, id), first at t = 0.
struct TraceWorkload {
  TraceFormat format = TraceFormat::kSwf;  ///< The detected/declared format.
  std::vector<TraceJob> jobs;
  /// Arrival span: submit time of the last job (0 for <= 1 job).
  double span_s = 0.0;
  TraceStats stats;
};

/// Parses a trace from a stream. Throws std::runtime_error with a line number
/// on structurally broken input; semantically bad rows are skipped/normalized
/// per TraceStats.
[[nodiscard]] TraceWorkload parse_trace(std::istream& in, TraceFormat format = TraceFormat::kAuto);

/// Parses in-memory trace text (scenario transforms embed the bundled sample
/// this way to stay pure).
[[nodiscard]] TraceWorkload parse_trace_text(std::string_view text,
                                             TraceFormat format = TraceFormat::kAuto);

/// Loads a trace file. Throws std::runtime_error when unreadable.
[[nodiscard]] TraceWorkload load_trace(const std::string& path,
                                       TraceFormat format = TraceFormat::kAuto);

/// Writes a normalized workload back out as canonical SWF (18 columns, -1 for
/// the fields TraceJob does not carry). parse(write(parse(x))) == parse(x) —
/// the round-trip property the parser tests pin.
void write_swf(std::ostream& os, const TraceWorkload& workload);

/// Distribution estimates fitted from a trace (Guazzone-style workload model).
struct TraceFit {
  /// Interarrival Weibull(shape k, scale lambda), matched to the empirical
  /// mean and CV by bisection on CV^2(k) = G(1+2/k)/G(1+1/k)^2 - 1.
  double ia_shape = 1.0;
  double ia_scale = 3600.0;
  double ia_mean_s = 3600.0;
  /// Squared coefficient of variation of interarrivals: > 1 = burstier than
  /// Poisson (the per-owner clustering of real grid submissions shows up
  /// here, since owners submit in batches).
  double ia_cv2 = 1.0;

  /// Runtime lognormal: log-space moments plus the raw mean for scaling.
  double rt_mu = 0.0;
  double rt_sigma = 1.0;
  double rt_mean_s = 1.0;

  /// Empirical processor-count histogram (index 0 = 1 processor, ...).
  std::vector<double> procs_weights;
  /// Empirical owner weights, descending (owner identity is anonymized away;
  /// synthesis assigns dense ids 0..k-1 by rank).
  std::vector<double> owner_weights;

  std::size_t job_count = 0;
};

/// Fits distributions to a parsed trace. Requires at least 2 jobs (throws
/// std::invalid_argument otherwise — one interarrival is the minimum).
[[nodiscard]] TraceFit fit_trace(const TraceWorkload& workload);

/// Draws `count` synthetic jobs from a fit, deterministic in `rng`. Arrival
/// times are rescaled so the synthetic span equals `span_s` (> 0), preserving
/// the fitted interarrival *shape* while replaying at any traffic intensity.
[[nodiscard]] TraceWorkload synthesize_trace(const TraceFit& fit, std::size_t count,
                                             double span_s, util::Rng& rng);

}  // namespace dpjit::exp
