// Experiment construction: turns an ExperimentConfig (Table I settings plus
// sweep knobs) into a ready-to-run world - topology, routing, landmarks,
// capacities, grid system, submitted workflows and a metrics collector.
#pragma once

#include <memory>
#include <string>

#include "core/grid_system.hpp"
#include "dag/generator.hpp"
#include "exp/metrics.hpp"
#include "exp/trace_importer.hpp"
#include "net/landmark.hpp"
#include "sim/fault_plan.hpp"

namespace dpjit::exp {

/// Flash-crowd arrival process (extension; see ExperimentConfig::bursts).
struct BurstArrivals {
  /// Number of submission waves; 0 disables the burst model.
  int wave_count = 0;
  /// Start of the first wave (seconds of simulated time).
  double first_wave_s = 1800.0;
  /// Spacing between wave openings.
  double period_s = 4.0 * 3600.0;
  /// Each home's submissions land uniformly inside [open, open + width].
  double width_s = 900.0;
};

/// Trace-driven workload (see ExperimentConfig::trace): jobs come from a
/// parsed SWF/GWA trace — replayed directly, or refitted and synthesized at
/// any scale — instead of the closed/open/burst synthetic models. Each trace
/// job expands into one workflow submitted at its (scaled) arrival time from
/// the home node `owner % home_count`, with the job's processor count
/// steering the workflow's task count and its runtime steering task loads.
struct TraceConfig {
  /// Inline trace text (takes precedence over `path`). Scenario transforms
  /// must use this: transforms are pure, so no filesystem reads.
  std::string text;
  /// Trace file to load (scenario_runner --trace=<file> sets this).
  std::string path;
  TraceFormat format = TraceFormat::kAuto;

  /// false = replay the trace's jobs one-for-one. true = fit Guazzone-style
  /// distributions (fit_trace) and synthesize `synth_jobs` jobs over
  /// `synth_span_s` — the path to 1M-task open streams from a small sample.
  bool fitted = false;
  /// Synthetic job count (fitted mode); 0 = same count as the trace.
  std::size_t synth_jobs = 0;
  /// Synthetic arrival span in seconds (fitted mode); 0 = the trace's span.
  double synth_span_s = 0.0;

  /// Multiplies replayed arrival times (< 1 compresses the trace into a
  /// heavier-traffic burst; applied after fitting/synthesis too).
  double time_scale = 1.0;
  /// Converts a job's runtime into per-task load: the load range is centered
  /// on runtime_s * this many MI per second, spread +/- 50%.
  double load_mi_per_s = 50.0;
  /// Task-count bounds a job's processor count is clamped into. 0 for the
  /// max = the workflow generator's max_tasks.
  int min_tasks_per_job = 2;
  int max_tasks_per_job = 0;
  /// Hard cap on jobs submitted (0 = all). The conformance preset sets this
  /// so trace scenarios digest-check at sub-second scale.
  std::size_t max_jobs = 0;
  /// false = a job's home node is owner % home_count, preserving per-owner
  /// submission locality (replay). true = hash (owner, id) over all homes —
  /// for fitted open streams whose synthetic owner pool is far smaller than
  /// the node set, where locality would pile every job onto a handful of
  /// homes.
  bool scatter_owners = false;

  [[nodiscard]] bool enabled() const { return !text.empty() || !path.empty(); }
};

/// One entry of a mixed structured workload (see ExperimentConfig::
/// workload_mix): a workflow family plus its sampling weight.
struct WorkloadMixEntry {
  /// "random" (the GeneratorParams family) or a dag template:
  /// "montage", "fork-join", "pipeline", "diamond".
  std::string family = "random";
  double weight = 1.0;
  /// Template scale: montage width / fork-join width / pipeline length
  /// (ignored by "random" and "diamond").
  int size = 6;
};

/// Everything a single simulation run needs (defaults = paper Section IV.A).
struct ExperimentConfig {
  /// One of core::all_algorithms().
  std::string algorithm = "dsmf";
  /// System scale n (paper: 200 - 2000; headline experiments use 1000).
  int nodes = 1000;
  /// Load factor: workflows submitted per home node (paper: 1 - 8, default 3).
  int workflows_per_node = 3;
  /// Workflow shape/weights (paper Table I; data defaults to the CCR~0.16 case).
  dag::GeneratorParams workflow;
  /// Heterogeneous capacities drawn uniformly from this set (Table I).
  std::vector<double> capacity_choices = {1.0, 2.0, 4.0, 8.0, 16.0};
  /// WAN parameters (node_count is overwritten with `nodes`).
  net::TopologyParams topology;
  /// Scheduling/gossip/churn knobs.
  core::SystemConfig system;
  /// Churn convenience: > 0 switches to the dynamic environment with
  /// stable_count = nodes/2 homes (paper Section IV.B).
  double dynamic_factor = 0.0;
  /// Extension: reschedule tasks lost to churn.
  bool reschedule = false;
  /// Ablation: max-min fair network sharing instead of the bottleneck model.
  bool fair_sharing = false;
  /// The network mode the built world will actually run: folds the
  /// experiment-level `fair_sharing` convenience flag (copied into the
  /// SystemConfig only at build time, see build_system_config) into
  /// SystemConfig::effective_network_mode(). Callers inspecting an unbuilt
  /// config (scenario_runner --describe, the ignored---shards warning) must
  /// use THIS, not cfg.system.effective_network_mode(), or fluid scenarios
  /// misreport as bottleneck.
  [[nodiscard]] net::NetworkMode effective_network_mode() const {
    if (system.network_mode != net::NetworkMode::kBottleneck) return system.network_mode;
    return (fair_sharing || system.fair_sharing) ? net::NetworkMode::kFluidFair
                                                 : net::NetworkMode::kBottleneck;
  }
  /// Workflow arrival process. 0 (default) = the paper's closed model: every
  /// workflow is submitted at t = 0. > 0 = open model: each home node submits
  /// its workflows one by one with exponential inter-arrival times of this
  /// mean (seconds), e.g. 3600 = on average one new workflow per hour per home.
  double mean_interarrival_s = 0.0;
  /// Flash-crowd extension: when bursts.wave_count > 0, workflow j of every
  /// home is submitted in wave j % wave_count instead of the closed/open
  /// models above (takes precedence over mean_interarrival_s).
  BurstArrivals bursts;
  /// Mixed-workload extension: when non-empty, each submitted workflow draws
  /// its family from this weighted mix instead of always using the random-DAG
  /// generator. Template task sizes derive from the `workflow` ranges.
  std::vector<WorkloadMixEntry> workload_mix;
  /// Trace-driven workload: when trace.enabled(), jobs come from an imported
  /// SWF/GWA trace (replayed or refitted+synthesized) and take precedence
  /// over the closed/open/burst/mix models above.
  TraceConfig trace;
  /// Collect metrics with the O(1)-memory StreamingMetricsCollector instead
  /// of the retaining MetricsCollector. Digested summaries are bitwise
  /// identical either way (see exp/metrics.hpp); the streaming collector
  /// additionally bounds live per-workflow state, which open-stream runs
  /// with millions of tasks need. World::metrics() (the raw-report
  /// accessor) is unavailable in this mode — use World::collector().
  bool streaming_metrics = false;
  /// Pre-sized capacity of the engine's event slab (concurrently pending
  /// events). 0 = derive from `nodes` (gossip keeps O(fanout) messages in
  /// flight per node). Purely an allocation hint; never affects results.
  std::size_t event_capacity_hint = 0;
  /// Threads for the all-pairs Routing build (0 = hardware concurrency).
  /// run_sweep forces 1 for its workers so concurrent experiments do not
  /// nest full-width pools. Never affects results (bit-identical build).
  int routing_threads = 0;
  /// Deterministic fault injection (realism scenarios): message loss and
  /// delay for the message-level gossip mode, link failure/recovery waves
  /// (with routing repair + transfer aborts), node crash/restart waves.
  /// All-zero defaults attach nothing; see sim::FaultParams.
  sim::FaultParams faults;
  std::uint64_t seed = 1;

  /// Applies the CCR presets of Figs. 9-10: load and data ranges.
  void set_load_range(double lo, double hi) {
    workflow.min_load_mi = lo;
    workflow.max_load_mi = hi;
  }
  void set_data_range(double lo, double hi) {
    workflow.min_data_mb = lo;
    workflow.max_data_mb = hi;
  }
};

/// A fully wired single run. Construction generates the world; run() submits
/// the workload and executes to the horizon.
class World {
 public:
  explicit World(const ExperimentConfig& config);

  /// Submits the configured workload (idempotent) and runs to the horizon.
  void run();

  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] core::GridSystem& system() { return *system_; }
  [[nodiscard]] const core::GridSystem& system() const { return *system_; }
  /// The retaining collector with its raw report/sample records. Only valid
  /// when config.streaming_metrics is false (throws std::logic_error
  /// otherwise) — summaries should go through collector(), which works with
  /// either implementation.
  [[nodiscard]] MetricsCollector& metrics();
  [[nodiscard]] const MetricsCollector& metrics() const;
  /// The configured metrics implementation behind the common interface.
  [[nodiscard]] WorkflowMetrics& collector() { return *metrics_; }
  [[nodiscard]] const WorkflowMetrics& collector() const { return *metrics_; }
  [[nodiscard]] const ExperimentConfig& config() const { return config_; }
  [[nodiscard]] const net::Topology& topology() const { return topo_; }
  [[nodiscard]] const net::Routing& routing() const { return routing_; }
  /// The attached fault plan; null when config.faults is all-zero.
  [[nodiscard]] const sim::FaultPlan* fault_plan() const { return faults_.get(); }
  /// Number of home nodes receiving workflows (all nodes, or the stable half
  /// under churn).
  [[nodiscard]] int home_count() const;

 private:
  void submit_workload();
  void submit_trace_workload();

  ExperimentConfig config_;
  util::Rng rng_;
  sim::Engine engine_;
  net::Topology topo_;
  net::Routing routing_;
  net::LandmarkEstimator landmarks_;
  std::unique_ptr<WorkflowMetrics> metrics_;
  /// Destroyed after system_ (declared before it): the system's gossip layer
  /// keeps a raw pointer to the plan for per-message fate draws.
  std::unique_ptr<sim::FaultPlan> faults_;
  std::unique_ptr<core::GridSystem> system_;
  bool submitted_ = false;
};

}  // namespace dpjit::exp
