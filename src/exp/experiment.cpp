#include "exp/experiment.hpp"

#include <bit>
#include <chrono>

namespace dpjit::exp {

ExperimentResult summarize(const World& world, double wall_seconds) {
  const auto& metrics = world.collector();
  const auto& system = world.system();
  ExperimentResult r;
  r.algorithm = world.config().algorithm;
  r.nodes = world.config().nodes;
  r.workflows_per_node = world.config().workflows_per_node;
  r.seed = world.config().seed;
  r.workflows_submitted = system.workflow_count();
  r.workflows_finished = metrics.finished();
  r.act = metrics.act();
  r.ae = metrics.ae();
  r.mean_response = metrics.mean_response();
  r.throughput = metrics.throughput_curve();
  r.act_over_time = metrics.act_curve();
  r.ae_over_time = metrics.ae_curve();
  r.converged_rss_size = metrics.converged_rss_size();
  r.converged_idle_known = metrics.converged_idle_known();
  r.ct_p50 = metrics.ct_quantile(0.50);
  r.ct_p95 = metrics.ct_quantile(0.95);
  r.ct_p99 = metrics.ct_quantile(0.99);
  r.live_reports = metrics.live_reports();
  r.tasks_dispatched = system.tasks_dispatched();
  r.tasks_failed = system.tasks_failed();
  r.tasks_rescheduled = system.tasks_rescheduled();
  r.gossip_messages = system.gossip_service().messages_sent();
  r.gossip_bytes = system.gossip_service().bytes_sent();
  r.wall_seconds = wall_seconds;
  return r;
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  const auto t0 = std::chrono::steady_clock::now();
  World world(config);
  world.run();
  const auto t1 = std::chrono::steady_clock::now();
  auto result = summarize(world, std::chrono::duration<double>(t1 - t0).count());
  result.events_processed = world.engine().processed();
  return result;
}

std::uint64_t result_digest(const ExperimentResult& r) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  // Exactly these fields, in this order: the fig11 anchor digest recorded in
  // BENCH_2.json / ROADMAP.md depends on it.
  mix(std::bit_cast<std::uint64_t>(r.act));
  mix(std::bit_cast<std::uint64_t>(r.ae));
  mix(std::bit_cast<std::uint64_t>(r.mean_response));
  mix(r.workflows_finished);
  mix(r.tasks_dispatched);
  mix(r.tasks_failed);
  mix(r.gossip_messages);
  mix(r.events_processed);
  return h;
}

std::uint64_t results_digest(const std::vector<ExperimentResult>& results) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto& r : results) {
    h ^= result_digest(r);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace dpjit::exp
