// Sharded scale model: a peer-level P2P grid abstraction built for the
// conservative time-window engine (sim::ShardEngine).
//
// The classic GridSystem path cannot be sharded conservatively: fluid fair
// sharing couples every active transfer globally (zero lookahead) and the
// system draws from shared RNG streams, so any event reordering would change
// results and violate the golden-digest policy. The scale model is the
// complementary design point: peers interact ONLY through time-stamped
// messages delayed by at least the engine window, every peer owns a forked
// RNG stream, and a handler touches nothing but the destination peer's state.
// Under those rules the ShardEngine determinism contract applies end to end:
// run_scale_model produces byte-identical results for ANY shard count and ANY
// thread count, which the scale/* scenarios and the shard-determinism CI job
// check continuously.
//
// The model keeps the paper's ingredients at the behavioural level — periodic
// push-pull gossip of resource summaries, task execution on heterogeneous
// capacities, bulk data transfers over a routed backbone, exponential churn
// with contact notification — but deliberately drops workflow structure so a
// single peer is O(1) state and 10^6 peers fit comfortably in memory.
#pragma once

#include <cstddef>
#include <cstdint>

#include "net/topology.hpp"

namespace dpjit::exp {

struct ExperimentConfig;

/// Knobs of one scale-model run. Defaults give the scale/peers-100k scenario.
struct ScaleParams {
  /// Peer count n (10^5 for goldens, 10^6 for the nightly job).
  int peers = 100000;
  /// Backbone regions; peers live in contiguous region blocks and the shard
  /// map partitions REGIONS, not peers. 0 = min(peers, 64).
  int regions = 0;
  /// Shard count for the PDES loop (clamped to [1, regions]). Never affects
  /// results — only wall-clock.
  int shards = 1;
  /// Worker threads for parallel windows (<= 0 = hardware concurrency).
  /// Never affects results.
  int threads = 0;
  /// Events-executed-per-window gate before windows are driven on the worker
  /// pool (sim::ShardEngine::set_parallel_threshold). Never affects results;
  /// tests set 0 to force every window onto the pool even at tiny scale.
  std::size_t parallel_threshold = 128;
  double horizon_s = 3600.0;
  /// Mean of the per-peer exponential gossip interval.
  double gossip_period_s = 300.0;
  /// Fixed per-peer task-generation period (phase-jittered per peer).
  double task_period_s = 900.0;
  /// Fixed per-peer transfer-initiation period (phase-jittered per peer).
  double transfer_period_s = 600.0;
  /// Task work drawn uniformly from [min, max] MI (paper Table I scale).
  double min_load_mi = 1000.0;
  double max_load_mi = 100000.0;
  /// Transfer sizes drawn uniformly from [min, max] MB.
  double min_data_mb = 1.0;
  double max_data_mb = 100.0;
  /// Mean peer lifetime; 0 disables churn.
  double mean_lifetime_s = 0.0;
  /// Mean downtime before a departed peer rejoins.
  double mean_downtime_s = 600.0;
  /// Gossip/transfer partners per peer.
  int contacts = 4;
  /// Message latency between peers of the same region (the LAN floor); also
  /// bounds the engine window from above.
  double intra_region_latency_s = 0.01;
  /// Waxman backbone connecting the regions (node_count is overwritten with
  /// `regions`); inter-region latency/bandwidth come from its routed paths.
  net::TopologyParams backbone;
  std::uint64_t seed = 1;
};

/// Aggregate outcome of a scale-model run. Everything above the wall-clock
/// block is invariant to `shards`/`threads` — that invariance IS the product;
/// see scale_digest().
struct ScaleResult {
  int peers = 0;
  int regions = 0;
  std::uint64_t tasks_completed = 0;
  std::uint64_t transfers_completed = 0;
  std::uint64_t mb_transferred = 0;
  std::uint64_t gossip_sent = 0;
  std::uint64_t gossip_merged = 0;
  std::uint64_t churn_departures = 0;
  std::uint64_t churn_rejoins = 0;
  /// Messages that arrived at a departed peer (or over a severed route).
  std::uint64_t dropped_messages = 0;
  /// Events executed by the engine (timers + messages).
  std::uint64_t events_processed = 0;
  /// FNV-1a fold over every peer's full final state, INCLUDING its
  /// order_hash: equality across shard counts proves each peer handled the
  /// same events in the same order.
  std::uint64_t state_digest = 0;
  /// Time windows the engine executed. S-invariant by construction (the
  /// window sequence depends only on event times); asserted by tests but
  /// excluded from scale_digest so a digest mismatch always means state.
  std::uint64_t windows = 0;

  // --- wall-clock / configuration block: varies with shards and threads ---
  int shards = 1;
  int threads = 0;
  std::uint64_t parallel_windows = 0;
  /// Engine window length (min latency over ALL region pairs, S-invariant).
  double window_s = 0.0;
  /// Min latency between regions in different shards at THIS shard count.
  double lookahead_s = 0.0;
  double wall_s = 0.0;
};

/// Runs the model. Deterministic in (params minus shards/threads): see the
/// file comment. Throws std::invalid_argument on non-positive peers/horizon.
[[nodiscard]] ScaleResult run_scale_model(const ScaleParams& params);

/// FNV-1a digest of the shard/thread-invariant result fields. Two runs that
/// differ only in `shards`/`threads` must produce equal digests.
[[nodiscard]] std::uint64_t scale_digest(const ScaleResult& result);

/// Maps an ExperimentConfig onto ScaleParams so the scale/* scenarios reuse
/// the scenario registry's config plumbing (nodes -> peers, horizon, gossip
/// cycle, workload ranges, dynamic_factor -> mean lifetime, routing_threads
/// -> threads, seed). Fields without an analog keep their defaults.
[[nodiscard]] ScaleParams scale_params_from_config(const ExperimentConfig& config);

}  // namespace dpjit::exp
