// The bundled anonymized sample trace, embedded as a string constant so the
// trace/* scenario transforms stay pure (a Scenario transform must be a pure
// function of its config — no filesystem reads). The same bytes are written
// to tests/data/sample.swf for the parser fixtures; the round-trip test pins
// the two copies against each other through the parser.
#pragma once

#include <string_view>

namespace dpjit::exp {

/// A small SWF job log: 48 jobs from 6 (anonymized) owners over ~8 hours,
/// with the bursty per-owner submission clusters of real grid traces.
[[nodiscard]] std::string_view sample_swf_trace();

/// A small GWA job log (29 columns, '#' comments): 24 jobs from 4 owners
/// over ~6 hours. The trace/gwa-replay scenario replays it directly.
[[nodiscard]] std::string_view sample_gwa_trace();

}  // namespace dpjit::exp
