#include "exp/workload_factory.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "dag/templates.hpp"

namespace dpjit::exp {
namespace {

int log2_ceil(int n) {
  int k = 0;
  while ((1 << k) < n) ++k;
  return std::max(1, k);
}

net::Topology build_topology(const ExperimentConfig& cfg, util::Rng& rng) {
  net::TopologyParams params = cfg.topology;
  params.node_count = cfg.nodes;
  auto topo_rng = rng.fork("topology");
  return net::Topology::generate_waxman(params, topo_rng);
}

core::SystemConfig build_system_config(const ExperimentConfig& cfg) {
  core::SystemConfig sys = cfg.system;
  sys.seed = cfg.seed;
  sys.fair_sharing = cfg.fair_sharing;
  sys.reschedule_failed = cfg.reschedule;
  if (cfg.dynamic_factor > 0.0) {
    sys.churn.dynamic_factor = cfg.dynamic_factor;
    if (sys.churn.stable_count == 0) sys.churn.stable_count = cfg.nodes / 2;
    if (sys.churn.interval_s <= 0.0) sys.churn.interval_s = sys.scheduling_interval_s;
  }
  return sys;
}

std::unique_ptr<WorkflowMetrics> build_metrics(const ExperimentConfig& cfg, util::Rng& rng) {
  if (cfg.streaming_metrics) {
    // Dedicated RNG fork: reservoir draws must not perturb (or be perturbed
    // by) any simulation stream, or streaming-vs-retaining digests diverge.
    return std::make_unique<StreamingMetricsCollector>(cfg.system.horizon_s,
                                                       rng.fork("metrics-reservoir"));
  }
  return std::make_unique<MetricsCollector>(cfg.system.horizon_s);
}

void validate_mix(const std::vector<WorkloadMixEntry>& mix) {
  for (const auto& e : mix) {
    if (e.weight <= 0.0) throw std::invalid_argument("workload_mix: weight > 0");
    if (e.family != "random" && e.family != "montage" && e.family != "fork-join" &&
        e.family != "pipeline" && e.family != "diamond") {
      throw std::invalid_argument("workload_mix: unknown family '" + e.family + "'");
    }
    if (e.family != "random" && e.family != "diamond" && e.size < 2) {
      throw std::invalid_argument("workload_mix: template size >= 2");
    }
  }
}

/// Draws one workflow from the mix. Template task sizes come from the
/// midpoints of the random-family ranges, so a mix stays comparable with the
/// random workload it replaces.
dag::Workflow draw_from_mix(const ExperimentConfig& cfg, util::Rng& rng) {
  double total = 0.0;
  for (const auto& e : cfg.workload_mix) total += e.weight;
  double ticket = rng.uniform(0.0, total);
  const WorkloadMixEntry* pick = &cfg.workload_mix.back();
  for (const auto& e : cfg.workload_mix) {
    if (ticket < e.weight) {
      pick = &e;
      break;
    }
    ticket -= e.weight;
  }

  dag::TemplateParams tpl;
  tpl.load_mi = 0.5 * (cfg.workflow.min_load_mi + cfg.workflow.max_load_mi);
  tpl.image_mb = 0.5 * (cfg.workflow.min_image_mb + cfg.workflow.max_image_mb);
  tpl.data_mb = 0.5 * (cfg.workflow.min_data_mb + cfg.workflow.max_data_mb);
  if (pick->family == "montage") return dag::make_montage(WorkflowId{}, pick->size, tpl);
  if (pick->family == "fork-join") return dag::make_fork_join(WorkflowId{}, 2, pick->size, tpl);
  if (pick->family == "pipeline") return dag::make_pipeline(WorkflowId{}, pick->size, tpl);
  if (pick->family == "diamond") return dag::make_diamond(WorkflowId{}, 2.0, tpl);
  return dag::generate_workflow(WorkflowId{}, cfg.workflow, rng);
}

}  // namespace

World::World(const ExperimentConfig& config)
    : config_(config),
      rng_(config.seed),
      topo_(build_topology(config, rng_)),
      routing_(topo_, config.routing_threads),
      landmarks_([&]() -> net::LandmarkEstimator {
        auto lm_rng = rng_.fork("landmarks");
        return net::LandmarkEstimator(routing_, log2_ceil(config.nodes), lm_rng);
      }()),
      metrics_(build_metrics(config, rng_)) {
  if (config.nodes < 1) throw std::invalid_argument("World: nodes >= 1");
  if (config.workflows_per_node < 0) throw std::invalid_argument("World: workflows_per_node >= 0");
  if (config.bursts.wave_count < 0) throw std::invalid_argument("World: bursts.wave_count >= 0");
  if (config.bursts.wave_count > 0 &&
      (config.bursts.first_wave_s < 0.0 || config.bursts.period_s <= 0.0 ||
       config.bursts.width_s <= 0.0)) {
    throw std::invalid_argument("World: burst wave timing must be positive");
  }
  validate_mix(config.workload_mix);

  engine_.reserve(config.event_capacity_hint != 0
                      ? config.event_capacity_hint
                      : static_cast<std::size_t>(config.nodes) * 16 + 1024);

  std::vector<double> capacities;
  capacities.reserve(static_cast<std::size_t>(config.nodes));
  auto cap_rng = rng_.fork("capacity");
  for (int i = 0; i < config.nodes; ++i) {
    capacities.push_back(cap_rng.pick(config_.capacity_choices));
  }

  // The fault plan is created before the system (the gossip layer keeps a
  // pointer for per-message fate draws) and wired to it afterwards. Its RNG
  // is a private fork: attaching an all-zero plan (force_attach) perturbs no
  // other stream and schedules no events, so results are byte-identical to
  // running without one - the neutrality the differential test checks.
  if (config.faults.enabled()) {
    faults_ = std::make_unique<sim::FaultPlan>(engine_, config.faults, config.nodes,
                                               static_cast<int>(topo_.link_count()),
                                               rng_.fork("faults"));
  }

  system_ = std::make_unique<core::GridSystem>(engine_, topo_, routing_, landmarks_,
                                               std::move(capacities),
                                               core::make_algorithm(config.algorithm),
                                               build_system_config(config), metrics_.get(),
                                               faults_.get());

  if (faults_) {
    // Routing repairs FIRST, then the system's transfer aborts, so retried
    // transfers immediately route around the failed link.
    faults_->set_link_handlers(
        [this](LinkId l) {
          routing_.set_link_state(l, false);
          system_->on_link_state(l, false);
        },
        [this](LinkId l) {
          routing_.set_link_state(l, true);
          system_->on_link_state(l, true);
        });
    faults_->set_node_handlers([this](NodeId n) { system_->inject_node_failure(n); },
                               [this](NodeId n) { system_->inject_node_rejoin(n); });
  }
}

int World::home_count() const {
  return config_.dynamic_factor > 0.0 ? system_->config().churn.stable_count : config_.nodes;
}

MetricsCollector& World::metrics() {
  auto* retaining = dynamic_cast<MetricsCollector*>(metrics_.get());
  if (!retaining) {
    throw std::logic_error(
        "World::metrics(): raw reports are unavailable under streaming_metrics; "
        "use World::collector()");
  }
  return *retaining;
}

const MetricsCollector& World::metrics() const {
  return const_cast<World*>(this)->metrics();
}

void World::submit_trace_workload() {
  const TraceConfig& tc = config_.trace;
  TraceWorkload trace = tc.text.empty() ? load_trace(tc.path, tc.format)
                                        : parse_trace_text(tc.text, tc.format);
  if (tc.fitted) {
    const TraceFit fit = fit_trace(trace);
    auto synth_rng = rng_.fork("trace-synth");
    const std::size_t jobs = tc.synth_jobs != 0 ? tc.synth_jobs : trace.jobs.size();
    const double span = tc.synth_span_s > 0.0 ? tc.synth_span_s
                                              : std::max(trace.span_s, 1.0);
    trace = synthesize_trace(fit, jobs, span, synth_rng);
  }
  if (tc.max_jobs != 0 && trace.jobs.size() > tc.max_jobs) trace.jobs.resize(tc.max_jobs);
  if (tc.time_scale <= 0.0) throw std::invalid_argument("World: trace.time_scale must be > 0");
  if (tc.load_mi_per_s <= 0.0) throw std::invalid_argument("World: trace.load_mi_per_s > 0");

  const int homes = home_count();
  const int max_tasks =
      tc.max_tasks_per_job != 0 ? tc.max_tasks_per_job : config_.workflow.max_tasks;
  const int min_tasks = std::clamp(tc.min_tasks_per_job, 1, max_tasks);
  auto wf_rng = rng_.fork("trace-workload");
  for (std::size_t k = 0; k < trace.jobs.size(); ++k) {
    const TraceJob& job = trace.jobs[k];
    int h = job.owner % homes;
    if (tc.scatter_owners) {
      // SplitMix64-style avalanche over (owner, id): spreads a small owner
      // pool uniformly over all homes, deterministically.
      std::uint64_t x = static_cast<std::uint64_t>(job.owner) * 0x9e3779b97f4a7c15ULL +
                        static_cast<std::uint64_t>(job.id);
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      h = static_cast<int>((x ^ (x >> 31)) % static_cast<std::uint64_t>(homes));
    }
    // The job's shape steers the generated workflow: processor count -> task
    // count, runtime -> per-task load centered on runtime * MI/s with the
    // generator's usual +/- 50% spread. Data volumes keep the configured
    // ranges, so the CCR regime stays a scenario knob.
    dag::GeneratorParams params = config_.workflow;
    const int tasks = std::clamp(job.procs, min_tasks, max_tasks);
    params.min_tasks = params.max_tasks = tasks;
    const double center_mi = job.runtime_s * tc.load_mi_per_s;
    params.min_load_mi = std::max(1.0, 0.5 * center_mi);
    params.max_load_mi = std::max(params.min_load_mi, 1.5 * center_mi);
    auto one_rng = wf_rng.fork("job", static_cast<std::uint64_t>(k));
    auto wf = dag::generate_workflow(WorkflowId{}, params, one_rng);

    const double at = job.submit_s * tc.time_scale;
    if (at <= 0.0) {
      system_->submit(NodeId{h}, std::move(wf));
    } else {
      engine_.schedule_at(at, [this, h, pending = std::move(wf)]() mutable {
        system_->submit(NodeId{h}, std::move(pending));
      });
    }
  }
}

void World::submit_workload() {
  if (submitted_) return;
  submitted_ = true;
  if (config_.trace.enabled()) {
    submit_trace_workload();
    return;
  }
  auto wf_rng = rng_.fork("workload");
  auto arrival_rng = rng_.fork("arrivals");
  const int homes = home_count();
  for (int h = 0; h < homes; ++h) {
    double next_arrival = 0.0;
    for (int j = 0; j < config_.workflows_per_node; ++j) {
      auto one_rng = wf_rng.fork("wf", static_cast<std::uint64_t>(h) * 1000003ULL +
                                           static_cast<std::uint64_t>(j));
      auto wf = config_.workload_mix.empty()
                    ? dag::generate_workflow(WorkflowId{}, config_.workflow, one_rng)
                    : draw_from_mix(config_, one_rng);
      if (config_.bursts.wave_count > 0) {
        // Flash-crowd model: workflow j joins wave j % wave_count; every wave
        // dumps one workflow per home inside a short window.
        const int wave = j % config_.bursts.wave_count;
        const double open = config_.bursts.first_wave_s + wave * config_.bursts.period_s;
        const double at = open + arrival_rng.uniform(0.0, config_.bursts.width_s);
        engine_.schedule_at(at, [this, h, pending = std::move(wf)]() mutable {
          system_->submit(NodeId{h}, std::move(pending));
        });
      } else if (config_.mean_interarrival_s <= 0.0) {
        // Closed model (the paper's setting): everything arrives at t = 0.
        system_->submit(NodeId{h}, std::move(wf));
      } else {
        // Open model: Poisson arrivals per home node. Event callbacks are
        // move-only, so the workflow moves straight into the capture.
        next_arrival += arrival_rng.exponential(config_.mean_interarrival_s);
        engine_.schedule_at(next_arrival, [this, h, pending = std::move(wf)]() mutable {
          system_->submit(NodeId{h}, std::move(pending));
        });
      }
    }
  }
}

void World::run() {
  submit_workload();
  if (faults_) faults_->start();
  system_->run();
}

}  // namespace dpjit::exp
