#include "exp/workload_factory.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "dag/templates.hpp"

namespace dpjit::exp {
namespace {

int log2_ceil(int n) {
  int k = 0;
  while ((1 << k) < n) ++k;
  return std::max(1, k);
}

net::Topology build_topology(const ExperimentConfig& cfg, util::Rng& rng) {
  net::TopologyParams params = cfg.topology;
  params.node_count = cfg.nodes;
  auto topo_rng = rng.fork("topology");
  return net::Topology::generate_waxman(params, topo_rng);
}

core::SystemConfig build_system_config(const ExperimentConfig& cfg) {
  core::SystemConfig sys = cfg.system;
  sys.seed = cfg.seed;
  sys.fair_sharing = cfg.fair_sharing;
  sys.reschedule_failed = cfg.reschedule;
  if (cfg.dynamic_factor > 0.0) {
    sys.churn.dynamic_factor = cfg.dynamic_factor;
    if (sys.churn.stable_count == 0) sys.churn.stable_count = cfg.nodes / 2;
    if (sys.churn.interval_s <= 0.0) sys.churn.interval_s = sys.scheduling_interval_s;
  }
  return sys;
}

void validate_mix(const std::vector<WorkloadMixEntry>& mix) {
  for (const auto& e : mix) {
    if (e.weight <= 0.0) throw std::invalid_argument("workload_mix: weight > 0");
    if (e.family != "random" && e.family != "montage" && e.family != "fork-join" &&
        e.family != "pipeline" && e.family != "diamond") {
      throw std::invalid_argument("workload_mix: unknown family '" + e.family + "'");
    }
    if (e.family != "random" && e.family != "diamond" && e.size < 2) {
      throw std::invalid_argument("workload_mix: template size >= 2");
    }
  }
}

/// Draws one workflow from the mix. Template task sizes come from the
/// midpoints of the random-family ranges, so a mix stays comparable with the
/// random workload it replaces.
dag::Workflow draw_from_mix(const ExperimentConfig& cfg, util::Rng& rng) {
  double total = 0.0;
  for (const auto& e : cfg.workload_mix) total += e.weight;
  double ticket = rng.uniform(0.0, total);
  const WorkloadMixEntry* pick = &cfg.workload_mix.back();
  for (const auto& e : cfg.workload_mix) {
    if (ticket < e.weight) {
      pick = &e;
      break;
    }
    ticket -= e.weight;
  }

  dag::TemplateParams tpl;
  tpl.load_mi = 0.5 * (cfg.workflow.min_load_mi + cfg.workflow.max_load_mi);
  tpl.image_mb = 0.5 * (cfg.workflow.min_image_mb + cfg.workflow.max_image_mb);
  tpl.data_mb = 0.5 * (cfg.workflow.min_data_mb + cfg.workflow.max_data_mb);
  if (pick->family == "montage") return dag::make_montage(WorkflowId{}, pick->size, tpl);
  if (pick->family == "fork-join") return dag::make_fork_join(WorkflowId{}, 2, pick->size, tpl);
  if (pick->family == "pipeline") return dag::make_pipeline(WorkflowId{}, pick->size, tpl);
  if (pick->family == "diamond") return dag::make_diamond(WorkflowId{}, 2.0, tpl);
  return dag::generate_workflow(WorkflowId{}, cfg.workflow, rng);
}

}  // namespace

World::World(const ExperimentConfig& config)
    : config_(config),
      rng_(config.seed),
      topo_(build_topology(config, rng_)),
      routing_(topo_, config.routing_threads),
      landmarks_([&]() -> net::LandmarkEstimator {
        auto lm_rng = rng_.fork("landmarks");
        return net::LandmarkEstimator(routing_, log2_ceil(config.nodes), lm_rng);
      }()),
      metrics_(config.system.horizon_s) {
  if (config.nodes < 1) throw std::invalid_argument("World: nodes >= 1");
  if (config.workflows_per_node < 0) throw std::invalid_argument("World: workflows_per_node >= 0");
  if (config.bursts.wave_count < 0) throw std::invalid_argument("World: bursts.wave_count >= 0");
  if (config.bursts.wave_count > 0 &&
      (config.bursts.first_wave_s < 0.0 || config.bursts.period_s <= 0.0 ||
       config.bursts.width_s <= 0.0)) {
    throw std::invalid_argument("World: burst wave timing must be positive");
  }
  validate_mix(config.workload_mix);

  engine_.reserve(config.event_capacity_hint != 0
                      ? config.event_capacity_hint
                      : static_cast<std::size_t>(config.nodes) * 16 + 1024);

  std::vector<double> capacities;
  capacities.reserve(static_cast<std::size_t>(config.nodes));
  auto cap_rng = rng_.fork("capacity");
  for (int i = 0; i < config.nodes; ++i) {
    capacities.push_back(cap_rng.pick(config_.capacity_choices));
  }

  // The fault plan is created before the system (the gossip layer keeps a
  // pointer for per-message fate draws) and wired to it afterwards. Its RNG
  // is a private fork: attaching an all-zero plan (force_attach) perturbs no
  // other stream and schedules no events, so results are byte-identical to
  // running without one - the neutrality the differential test checks.
  if (config.faults.enabled()) {
    faults_ = std::make_unique<sim::FaultPlan>(engine_, config.faults, config.nodes,
                                               static_cast<int>(topo_.link_count()),
                                               rng_.fork("faults"));
  }

  system_ = std::make_unique<core::GridSystem>(engine_, topo_, routing_, landmarks_,
                                               std::move(capacities),
                                               core::make_algorithm(config.algorithm),
                                               build_system_config(config), &metrics_,
                                               faults_.get());

  if (faults_) {
    // Routing repairs FIRST, then the system's transfer aborts, so retried
    // transfers immediately route around the failed link.
    faults_->set_link_handlers(
        [this](LinkId l) {
          routing_.set_link_state(l, false);
          system_->on_link_state(l, false);
        },
        [this](LinkId l) {
          routing_.set_link_state(l, true);
          system_->on_link_state(l, true);
        });
    faults_->set_node_handlers([this](NodeId n) { system_->inject_node_failure(n); },
                               [this](NodeId n) { system_->inject_node_rejoin(n); });
  }
}

int World::home_count() const {
  return config_.dynamic_factor > 0.0 ? system_->config().churn.stable_count : config_.nodes;
}

void World::submit_workload() {
  if (submitted_) return;
  submitted_ = true;
  auto wf_rng = rng_.fork("workload");
  auto arrival_rng = rng_.fork("arrivals");
  const int homes = home_count();
  for (int h = 0; h < homes; ++h) {
    double next_arrival = 0.0;
    for (int j = 0; j < config_.workflows_per_node; ++j) {
      auto one_rng = wf_rng.fork("wf", static_cast<std::uint64_t>(h) * 1000003ULL +
                                           static_cast<std::uint64_t>(j));
      auto wf = config_.workload_mix.empty()
                    ? dag::generate_workflow(WorkflowId{}, config_.workflow, one_rng)
                    : draw_from_mix(config_, one_rng);
      if (config_.bursts.wave_count > 0) {
        // Flash-crowd model: workflow j joins wave j % wave_count; every wave
        // dumps one workflow per home inside a short window.
        const int wave = j % config_.bursts.wave_count;
        const double open = config_.bursts.first_wave_s + wave * config_.bursts.period_s;
        const double at = open + arrival_rng.uniform(0.0, config_.bursts.width_s);
        engine_.schedule_at(at, [this, h, pending = std::move(wf)]() mutable {
          system_->submit(NodeId{h}, std::move(pending));
        });
      } else if (config_.mean_interarrival_s <= 0.0) {
        // Closed model (the paper's setting): everything arrives at t = 0.
        system_->submit(NodeId{h}, std::move(wf));
      } else {
        // Open model: Poisson arrivals per home node. Event callbacks are
        // move-only, so the workflow moves straight into the capture.
        next_arrival += arrival_rng.exponential(config_.mean_interarrival_s);
        engine_.schedule_at(next_arrival, [this, h, pending = std::move(wf)]() mutable {
          system_->submit(NodeId{h}, std::move(pending));
        });
      }
    }
  }
}

void World::run() {
  submit_workload();
  if (faults_) faults_->start();
  system_->run();
}

}  // namespace dpjit::exp
