#include "exp/workload_factory.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

namespace dpjit::exp {
namespace {

int log2_ceil(int n) {
  int k = 0;
  while ((1 << k) < n) ++k;
  return std::max(1, k);
}

net::Topology build_topology(const ExperimentConfig& cfg, util::Rng& rng) {
  net::TopologyParams params = cfg.topology;
  params.node_count = cfg.nodes;
  auto topo_rng = rng.fork("topology");
  return net::Topology::generate_waxman(params, topo_rng);
}

core::SystemConfig build_system_config(const ExperimentConfig& cfg) {
  core::SystemConfig sys = cfg.system;
  sys.seed = cfg.seed;
  sys.fair_sharing = cfg.fair_sharing;
  sys.reschedule_failed = cfg.reschedule;
  if (cfg.dynamic_factor > 0.0) {
    sys.churn.dynamic_factor = cfg.dynamic_factor;
    if (sys.churn.stable_count == 0) sys.churn.stable_count = cfg.nodes / 2;
    if (sys.churn.interval_s <= 0.0) sys.churn.interval_s = sys.scheduling_interval_s;
  }
  return sys;
}

}  // namespace

World::World(const ExperimentConfig& config)
    : config_(config),
      rng_(config.seed),
      topo_(build_topology(config, rng_)),
      routing_(topo_, config.routing_threads),
      landmarks_([&]() -> net::LandmarkEstimator {
        auto lm_rng = rng_.fork("landmarks");
        return net::LandmarkEstimator(routing_, log2_ceil(config.nodes), lm_rng);
      }()),
      metrics_(config.system.horizon_s) {
  if (config.nodes < 1) throw std::invalid_argument("World: nodes >= 1");
  if (config.workflows_per_node < 0) throw std::invalid_argument("World: workflows_per_node >= 0");

  engine_.reserve(config.event_capacity_hint != 0
                      ? config.event_capacity_hint
                      : static_cast<std::size_t>(config.nodes) * 16 + 1024);

  std::vector<double> capacities;
  capacities.reserve(static_cast<std::size_t>(config.nodes));
  auto cap_rng = rng_.fork("capacity");
  for (int i = 0; i < config.nodes; ++i) {
    capacities.push_back(cap_rng.pick(config_.capacity_choices));
  }

  system_ = std::make_unique<core::GridSystem>(engine_, topo_, routing_, landmarks_,
                                               std::move(capacities),
                                               core::make_algorithm(config.algorithm),
                                               build_system_config(config), &metrics_);
}

int World::home_count() const {
  return config_.dynamic_factor > 0.0 ? system_->config().churn.stable_count : config_.nodes;
}

void World::submit_workload() {
  if (submitted_) return;
  submitted_ = true;
  auto wf_rng = rng_.fork("workload");
  auto arrival_rng = rng_.fork("arrivals");
  const int homes = home_count();
  for (int h = 0; h < homes; ++h) {
    double next_arrival = 0.0;
    for (int j = 0; j < config_.workflows_per_node; ++j) {
      auto one_rng = wf_rng.fork("wf", static_cast<std::uint64_t>(h) * 1000003ULL +
                                           static_cast<std::uint64_t>(j));
      auto wf = dag::generate_workflow(WorkflowId{}, config_.workflow, one_rng);
      if (config_.mean_interarrival_s <= 0.0) {
        // Closed model (the paper's setting): everything arrives at t = 0.
        system_->submit(NodeId{h}, std::move(wf));
      } else {
        // Open model: Poisson arrivals per home node. Event callbacks are
        // move-only, so the workflow moves straight into the capture.
        next_arrival += arrival_rng.exponential(config_.mean_interarrival_s);
        engine_.schedule_at(next_arrival, [this, h, pending = std::move(wf)]() mutable {
          system_->submit(NodeId{h}, std::move(pending));
        });
      }
    }
  }
}

void World::run() {
  submit_workload();
  system_->run();
}

}  // namespace dpjit::exp
