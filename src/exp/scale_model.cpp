#include "exp/scale_model.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iterator>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/grid_system.hpp"
#include "exp/workload_factory.hpp"
#include "grid/scale_peer.hpp"
#include "net/routing.hpp"
#include "sim/shard_engine.hpp"
#include "util/rng.hpp"

namespace dpjit::exp {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// Event codes mixed into each peer's order_hash (see grid::ScalePeer::fold).
enum Kind : std::uint64_t {
  kGossipTick = 1,
  kGossipRequest,
  kGossipReply,
  kTaskTick,
  kTaskDone,
  kTransferTick,
  kTransferRequest,
  kTransferDone,
  kTransferAck,
  kChurnFail,
  kChurnRejoin,
  kChurnNotice,
};

/// The gossip payload actually put on the wire. gossip::merge only reads the
/// sender's clock and own-task count, and InlineFn's 48-byte capture budget
/// must also hold the model pointer, peer id and arrival time.
struct Wire {
  std::uint64_t clock = 0;
  std::uint64_t tasks_done = 0;
};

/// Paper Table I heterogeneous capacity classes.
constexpr double kCapacities[] = {1.0, 2.0, 4.0, 8.0, 16.0};

/// Region layout + conservative bounds, computed before the engine exists.
struct Layout {
  int regions = 1;
  int shards = 1;
  /// Engine window: min latency over ALL region pairs plus the intra-region
  /// floor — invariant to the requested shard count by construction.
  double window = 0.0;
  /// Min inter-shard latency at THIS shard count (reporting only).
  double lookahead = 0.0;
  std::vector<int> region_shard;
  std::vector<double> latency;    ///< regions x regions, seconds
  std::vector<double> bandwidth;  ///< regions x regions, Mb/s
};

void validate(const ScaleParams& p) {
  auto fail = [](const std::string& what) {
    throw std::invalid_argument("run_scale_model: " + what);
  };
  if (p.peers < 1) fail("peers must be >= 1");
  if (!(p.horizon_s > 0.0) || !std::isfinite(p.horizon_s)) fail("horizon must be positive");
  if (!(p.gossip_period_s > 0.0)) fail("gossip period must be positive");
  if (!(p.task_period_s > 0.0)) fail("task period must be positive");
  if (!(p.transfer_period_s > 0.0)) fail("transfer period must be positive");
  if (p.min_load_mi < 0.0 || p.max_load_mi < p.min_load_mi) fail("bad load range");
  if (p.min_data_mb < 0.0 || p.max_data_mb < p.min_data_mb) fail("bad data range");
  if (p.mean_lifetime_s < 0.0) fail("mean lifetime must be >= 0");
  if (p.mean_lifetime_s > 0.0 && !(p.mean_downtime_s > 0.0)) {
    fail("mean downtime must be positive under churn");
  }
  if (p.contacts < 0) fail("contacts must be >= 0");
  if (p.intra_region_latency_s < 0.0) fail("intra-region latency must be >= 0");
  if (p.regions < 0) fail("regions must be >= 0");
}

Layout build_layout(const ScaleParams& p) {
  Layout l;
  l.regions = p.regions > 0 ? std::min(p.regions, p.peers) : std::min(p.peers, 64);

  net::TopologyParams tp = p.backbone;
  tp.node_count = l.regions;
  util::Rng rng = util::Rng(p.seed).fork("scale-backbone");
  const net::Topology topo = l.regions > 1 ? net::Topology::generate_waxman(tp, rng)
                                           : net::Topology::from_links(1, {});
  const net::Routing routing(topo, 1);

  const int shards = std::clamp(p.shards, 1, l.regions);
  const core::ShardMap map = core::compute_shard_map(routing, shards);
  l.shards = map.shards;
  l.region_shard = map.shard_of;
  l.lookahead = map.lookahead_s;

  // The engine window is the intra-region (LAN) latency floor: the true
  // minimum message delay in the model, because every delay — including
  // routed inter-region latencies that happen to be shorter, and zero-latency
  // links — is clamped up to the window (see ScaleModel::delay; a WAN hop
  // faster than a LAN hop would be unphysical anyway). Two properties hang on
  // this choice: the window never depends on the shard count (or digests
  // would diverge across counts — map.lookahead_s must NOT be used), and it
  // is orders of magnitude wider than the closest backbone pair, so windows
  // are dense enough for the parallel drive to pay off. A zero floor is
  // clamped to a 1 us scheduling quantum.
  l.window = std::max(p.intra_region_latency_s, 1e-6);

  const std::size_t r = static_cast<std::size_t>(l.regions);
  l.latency.assign(r * r, 0.0);
  l.bandwidth.assign(r * r, 0.0);
  for (int a = 0; a < l.regions; ++a) {
    for (int b = 0; b < l.regions; ++b) {
      const bool same = a == b;
      l.latency[static_cast<std::size_t>(a) * r + static_cast<std::size_t>(b)] =
          same ? p.intra_region_latency_s : routing.latency_s(NodeId(a), NodeId(b));
      l.bandwidth[static_cast<std::size_t>(a) * r + static_cast<std::size_t>(b)] =
          same ? tp.max_bandwidth_mbps : routing.bandwidth_mbps(NodeId(a), NodeId(b));
    }
  }
  return l;
}

/// The running model: owns the engine and every peer. Handlers follow the
/// shard-determinism rules from the header — they touch only the executing
/// peer's state and communicate exclusively through ShardEngine::post with
/// delays >= the window.
class ScaleModel {
 public:
  ScaleModel(const ScaleParams& params, Layout layout)
      : p_(params),
        l_(std::move(layout)),
        engine_(l_.shards, l_.window),
        peers_(static_cast<std::size_t>(params.peers)) {
    engine_.set_threads(p_.threads);
    // The default gate (128 events/window) sits near the break-even of the
    // barrier handoff (~10-20 us) against the ~0.3 us handler cost at 4
    // workers: the 10^6-peer nightly runs a few hundred events per 10 ms
    // window and parallelises, the 10^5-peer run (~20 per window) stays
    // inline, where threading could only lose.
    engine_.set_parallel_threshold(p_.parallel_threshold);
  }

  void run() {
    seed_peers();
    engine_.run_until(p_.horizon_s);
  }

  [[nodiscard]] ScaleResult result() const {
    ScaleResult r;
    r.peers = p_.peers;
    r.regions = l_.regions;
    std::uint64_t digest = kFnvOffset;
    auto mix = [&digest](std::uint64_t x) {
      digest ^= x;
      digest *= kFnvPrime;
    };
    for (const grid::ScalePeer& u : peers_) {
      r.tasks_completed += u.tasks_completed;
      r.transfers_completed += u.transfers_completed;
      r.mb_transferred += u.mb_transferred;
      r.gossip_sent += u.gossip_sent;
      r.gossip_merged += u.gossip_merged;
      r.churn_departures += u.churn_departures;
      r.churn_rejoins += u.churn_rejoins;
      r.dropped_messages += u.dropped_messages;
      mix(u.order_hash);
      mix(u.msg_seq);
      mix(u.tasks_completed);
      mix(u.transfers_completed);
      mix(u.mb_transferred);
      mix(u.gossip_sent ^ (u.gossip_merged << 32));
      mix(u.churn_departures ^ (u.churn_rejoins << 32));
      mix(u.dropped_messages);
      mix(u.summary.clock);
      mix(u.summary.heard_tasks);
      mix(u.summary.merges);
      mix(static_cast<std::uint64_t>(u.capacity_mips));
      mix((static_cast<std::uint64_t>(u.contacts.size()) << 1) | (u.alive ? 1u : 0u));
    }
    r.state_digest = digest;
    r.events_processed = engine_.processed();
    r.windows = engine_.windows();
    r.shards = l_.shards;
    r.threads = p_.threads;
    r.parallel_windows = engine_.parallel_windows();
    r.window_s = l_.window;
    r.lookahead_s = l_.lookahead;
    return r;
  }

 private:
  [[nodiscard]] int region_of(int peer) const {
    return static_cast<int>(static_cast<std::int64_t>(peer) * l_.regions / p_.peers);
  }
  [[nodiscard]] int shard_of(int peer) const {
    return l_.region_shard[static_cast<std::size_t>(region_of(peer))];
  }
  [[nodiscard]] double latency(int u, int v) const {
    return l_.latency[static_cast<std::size_t>(region_of(u)) * static_cast<std::size_t>(l_.regions) +
                      static_cast<std::size_t>(region_of(v))];
  }
  [[nodiscard]] double bandwidth(int u, int v) const {
    return l_.bandwidth[static_cast<std::size_t>(region_of(u)) *
                            static_cast<std::size_t>(l_.regions) +
                        static_cast<std::size_t>(region_of(v))];
  }
  /// Message delay: routed latency, never below the conservative window.
  [[nodiscard]] double delay(int u, int v) const { return std::max(l_.window, latency(u, v)); }
  /// Clamps a timer interval so the self-post clears the lookahead check.
  [[nodiscard]] double interval(double dt) const { return std::max(l_.window, dt); }

  /// Globally unique message key: sender id in the high bits, the sender's
  /// own message counter below. Ties on arrival time resolve by key, so the
  /// tie order is sender-id order — fixed, whatever the shard layout.
  std::uint64_t next_key(int sender) {
    grid::ScalePeer& u = peers_[static_cast<std::size_t>(sender)];
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(sender)) << 32) | (u.msg_seq++);
  }

  template <typename Fn>
  void send(int from, int to, double at, Fn fn) {
    engine_.post(shard_of(from), shard_of(to), at, next_key(from), sim::EventFn(std::move(fn)));
  }

  // --- handlers -----------------------------------------------------------

  void gossip_tick(int i, SimTime t) {
    grid::ScalePeer& u = peers_[static_cast<std::size_t>(i)];
    u.fold(kGossipTick, u.summary.clock);
    const double next = t + interval(u.rng.exponential(p_.gossip_period_s));
    send(i, i, next, [this, i, next] { gossip_tick(i, next); });
    if (!u.alive || u.contacts.empty()) return;
    const int v = static_cast<int>(u.contacts[u.rng.index(u.contacts.size())]);
    u.summary.clock += 1;
    ++u.gossip_sent;
    const Wire snap{u.summary.clock, u.tasks_completed};
    const double at = t + delay(i, v);
    send(i, v, at, [this, v, at, i, snap] { on_gossip_request(v, at, i, snap); });
  }

  void on_gossip_request(int i, SimTime t, int from, Wire snap) {
    grid::ScalePeer& v = peers_[static_cast<std::size_t>(i)];
    v.fold(kGossipRequest, (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)) << 32) ^
                               snap.clock);
    if (!v.alive) {
      ++v.dropped_messages;
      return;
    }
    merge_wire(v, snap);
    // Pull half of the push-pull exchange: answer with our own summary.
    v.summary.clock += 1;
    ++v.gossip_sent;
    const Wire reply{v.summary.clock, v.tasks_completed};
    const double at = t + delay(i, from);
    send(i, from, at, [this, from, at, reply] { on_gossip_reply(from, at, reply); });
  }

  void on_gossip_reply(int i, SimTime t, Wire snap) {
    (void)t;
    grid::ScalePeer& u = peers_[static_cast<std::size_t>(i)];
    u.fold(kGossipReply, snap.clock);
    if (!u.alive) {
      ++u.dropped_messages;
      return;
    }
    merge_wire(u, snap);
  }

  static void merge_wire(grid::ScalePeer& local, Wire snap) {
    gossip::merge(local.summary, gossip::PeerSummary{snap.clock, snap.tasks_done, 0, 0});
    ++local.gossip_merged;
  }

  void task_tick(int i, SimTime t) {
    grid::ScalePeer& u = peers_[static_cast<std::size_t>(i)];
    u.fold(kTaskTick, u.tasks_completed);
    const double next = t + interval(p_.task_period_s);
    send(i, i, next, [this, i, next] { task_tick(i, next); });
    if (!u.alive) return;
    const double work = u.rng.uniform(p_.min_load_mi, p_.max_load_mi);
    // Nominal 100 MIPS per capacity unit; clamped so completion clears the
    // lookahead check even for tiny tasks.
    const double at = t + interval(work / (u.capacity_mips * 100.0));
    send(i, i, at, [this, i, at] { on_task_done(i, at); });
  }

  void on_task_done(int i, SimTime t) {
    (void)t;
    grid::ScalePeer& u = peers_[static_cast<std::size_t>(i)];
    u.fold(kTaskDone, u.tasks_completed);
    if (!u.alive) {
      // Departed mid-execution: the task is lost, like a churn-failed task in
      // the full model.
      ++u.dropped_messages;
      return;
    }
    ++u.tasks_completed;
    u.summary.clock += 1;
    u.summary.tasks_done = u.tasks_completed;
  }

  void transfer_tick(int i, SimTime t) {
    grid::ScalePeer& u = peers_[static_cast<std::size_t>(i)];
    u.fold(kTransferTick, u.transfers_completed);
    const double next = t + interval(p_.transfer_period_s);
    send(i, i, next, [this, i, next] { transfer_tick(i, next); });
    if (!u.alive || u.contacts.empty()) return;
    const int v = static_cast<int>(u.contacts[u.rng.index(u.contacts.size())]);
    const double size = u.rng.uniform(p_.min_data_mb, p_.max_data_mb);
    const double at = t + delay(i, v);
    send(i, v, at, [this, v, at, i, size] { on_transfer_request(v, at, i, size); });
  }

  void on_transfer_request(int i, SimTime t, int from, double size_mb) {
    grid::ScalePeer& v = peers_[static_cast<std::size_t>(i)];
    v.fold(kTransferRequest, static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)));
    if (!v.alive) {
      ++v.dropped_messages;
      return;
    }
    const double bw = bandwidth(from, i);
    if (!(bw > 0.0)) {  // unreachable region pair
      ++v.dropped_messages;
      return;
    }
    const double at = t + interval(size_mb * 8.0 / bw);
    send(i, i, at, [this, i, at, from, size_mb] { on_transfer_done(i, at, from, size_mb); });
  }

  void on_transfer_done(int i, SimTime t, int from, double size_mb) {
    grid::ScalePeer& v = peers_[static_cast<std::size_t>(i)];
    v.fold(kTransferDone, static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)));
    if (!v.alive) {
      ++v.dropped_messages;
      return;
    }
    ++v.transfers_completed;
    v.mb_transferred += static_cast<std::uint64_t>(size_mb);
    v.summary.clock += 1;
    // Completion notice back to the requester: the choreographed cross-shard
    // round trip (request -> completion -> ack) the ordering tests pin down.
    const double at = t + delay(i, from);
    send(i, from, at, [this, from, at, i] { on_transfer_ack(from, at, i); });
  }

  void on_transfer_ack(int i, SimTime t, int peer) {
    (void)t;
    grid::ScalePeer& u = peers_[static_cast<std::size_t>(i)];
    u.fold(kTransferAck, static_cast<std::uint64_t>(static_cast<std::uint32_t>(peer)));
    if (!u.alive) ++u.dropped_messages;
  }

  void churn_fail(int i, SimTime t) {
    grid::ScalePeer& u = peers_[static_cast<std::size_t>(i)];
    u.fold(kChurnFail, u.churn_departures);
    if (u.alive) {
      u.alive = false;
      ++u.churn_departures;
      notify_contacts(i, t, /*up=*/false);
    }
    const double back = t + interval(u.rng.exponential(p_.mean_downtime_s));
    send(i, i, back, [this, i, back] { churn_rejoin(i, back); });
  }

  void churn_rejoin(int i, SimTime t) {
    grid::ScalePeer& u = peers_[static_cast<std::size_t>(i)];
    u.fold(kChurnRejoin, u.churn_rejoins);
    if (!u.alive) {
      u.alive = true;
      ++u.churn_rejoins;
      u.summary.clock += 1;
      notify_contacts(i, t, /*up=*/true);
    }
    const double next = t + interval(u.rng.exponential(p_.mean_lifetime_s));
    send(i, i, next, [this, i, next] { churn_fail(i, next); });
  }

  void notify_contacts(int i, SimTime t, bool up) {
    grid::ScalePeer& u = peers_[static_cast<std::size_t>(i)];
    for (const std::uint32_t c : u.contacts) {
      const int target = static_cast<int>(c);
      const double at = t + delay(i, target);
      send(i, target, at, [this, target, at, i, up] { on_churn_notice(target, at, i, up); });
    }
  }

  void on_churn_notice(int i, SimTime t, int peer, bool up) {
    (void)t;
    grid::ScalePeer& v = peers_[static_cast<std::size_t>(i)];
    v.fold(kChurnNotice,
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(peer)) << 1) | (up ? 1u : 0u));
    if (!v.alive) {
      ++v.dropped_messages;
      return;
    }
    if (up) {
      if (!v.knows(static_cast<std::uint32_t>(peer)) &&
          v.contacts.size() < 2 * static_cast<std::size_t>(p_.contacts)) {
        v.contacts.push_back(static_cast<std::uint32_t>(peer));
      }
    } else {
      v.forget(static_cast<std::uint32_t>(peer));
    }
  }

  // --- initialisation -----------------------------------------------------

  void seed_peers() {
    const util::Rng root(p_.seed);
    const int n = p_.peers;
    for (int i = 0; i < n; ++i) {
      grid::ScalePeer& u = peers_[static_cast<std::size_t>(i)];
      u.rng = root.fork("scale-peer", static_cast<std::uint64_t>(i));
      u.capacity_mips = kCapacities[u.rng.index(std::size(kCapacities))];
      pick_contacts(u, i, n);

      const double g0 = u.rng.uniform(0.0, p_.gossip_period_s);
      engine_.seed(shard_of(i), g0, next_key(i), sim::EventFn([this, i, g0] { gossip_tick(i, g0); }));
      const double t0 = u.rng.uniform(0.0, p_.task_period_s);
      engine_.seed(shard_of(i), t0, next_key(i), sim::EventFn([this, i, t0] { task_tick(i, t0); }));
      const double x0 = u.rng.uniform(0.0, p_.transfer_period_s);
      engine_.seed(shard_of(i), x0, next_key(i),
                   sim::EventFn([this, i, x0] { transfer_tick(i, x0); }));
      if (p_.mean_lifetime_s > 0.0) {
        const double c0 = u.rng.exponential(p_.mean_lifetime_s);
        engine_.seed(shard_of(i), c0, next_key(i),
                     sim::EventFn([this, i, c0] { churn_fail(i, c0); }));
      }
    }
  }

  /// Draws `contacts` distinct peers != i by rejection (k is tiny relative to
  /// n, so retries are rare; util::Rng::sample_indices is O(n) per call and
  /// would make initialisation quadratic at 10^6 peers).
  void pick_contacts(grid::ScalePeer& u, int i, int n) {
    const int k = std::min(p_.contacts, n - 1);
    u.contacts.reserve(static_cast<std::size_t>(std::max(k, 0)));
    while (static_cast<int>(u.contacts.size()) < k) {
      // Uniform over [0, n-1) then skip our own slot: uniform over peers != i.
      std::size_t c = u.rng.index(static_cast<std::size_t>(n - 1));
      if (c >= static_cast<std::size_t>(i)) ++c;
      const auto id = static_cast<std::uint32_t>(c);
      if (!u.knows(id)) u.contacts.push_back(id);
    }
  }

  const ScaleParams& p_;
  const Layout l_;
  sim::ShardEngine engine_;
  std::vector<grid::ScalePeer> peers_;
};

}  // namespace

ScaleResult run_scale_model(const ScaleParams& params) {
  validate(params);
  ScaleModel model(params, build_layout(params));
  const auto start = std::chrono::steady_clock::now();
  model.run();
  const auto stop = std::chrono::steady_clock::now();
  ScaleResult result = model.result();
  result.wall_s = std::chrono::duration<double>(stop - start).count();
  return result;
}

std::uint64_t scale_digest(const ScaleResult& result) {
  std::uint64_t digest = kFnvOffset;
  auto mix = [&digest](std::uint64_t x) {
    digest ^= x;
    digest *= kFnvPrime;
  };
  // Only shard/thread-invariant fields: never shards, threads, windows,
  // parallel_windows, window_s, lookahead_s or wall_s.
  mix(static_cast<std::uint64_t>(result.peers));
  mix(static_cast<std::uint64_t>(result.regions));
  mix(result.tasks_completed);
  mix(result.transfers_completed);
  mix(result.mb_transferred);
  mix(result.gossip_sent);
  mix(result.gossip_merged);
  mix(result.churn_departures);
  mix(result.churn_rejoins);
  mix(result.dropped_messages);
  mix(result.events_processed);
  mix(result.state_digest);
  return digest;
}

ScaleParams scale_params_from_config(const ExperimentConfig& config) {
  ScaleParams p;
  p.peers = config.nodes;
  p.horizon_s = config.system.horizon_s;
  p.gossip_period_s = config.system.gossip.cycle_s;
  p.task_period_s = config.system.scheduling_interval_s;
  p.transfer_period_s = config.system.scheduling_interval_s * 2.0 / 3.0;
  p.min_load_mi = config.workflow.min_load_mi;
  p.max_load_mi = config.workflow.max_load_mi;
  p.min_data_mb = config.workflow.min_data_mb;
  p.max_data_mb = config.workflow.max_data_mb;
  if (config.dynamic_factor > 0.0) {
    // Same convention as the full model: dynamic factor 1.0 ~ one-hour mean
    // lifetime; downtime keeps the ChurnModel default scale.
    p.mean_lifetime_s = 3600.0 / config.dynamic_factor;
    p.mean_downtime_s = 600.0;
  }
  p.contacts = config.system.bootstrap_contacts;
  p.backbone = config.topology;
  p.threads = config.routing_threads;
  p.seed = config.seed;
  return p;
}

}  // namespace dpjit::exp
