#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace dpjit::util {
namespace {

/// Spawns `threads` copies of `worker`, joins them all, then rethrows the
/// first exception any of them stored.
template <typename Worker>
void run_pool(int threads, Worker&& worker) {
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::atomic<bool> failed{false};
  auto guarded = [&] {
    try {
      worker(failed);
    } catch (...) {
      const std::scoped_lock lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
      failed.store(true, std::memory_order_relaxed);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(guarded);
  for (auto& th : pool) th.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace

int resolve_threads(int requested, std::size_t max_useful) {
  if (requested <= 0) requested = static_cast<int>(std::thread::hardware_concurrency());
  const auto cap = static_cast<int>(std::min<std::size_t>(max_useful, 1024));
  return std::max(1, std::min(requested, cap));
}

void parallel_for_blocks(std::size_t total, int threads,
                         const std::function<void(std::size_t, std::size_t)>& fn) {
  if (total == 0) return;
  threads = resolve_threads(threads, total);
  if (threads == 1) {
    fn(0, total);
    return;
  }
  const std::size_t chunk = (total + static_cast<std::size_t>(threads) - 1) /
                            static_cast<std::size_t>(threads);
  std::atomic<std::size_t> next_block{0};
  run_pool(threads, [&](std::atomic<bool>& failed) {
    // One block per worker in spawn order; claiming via counter keeps the
    // block <-> range mapping independent of which thread runs it.
    for (;;) {
      const std::size_t b = next_block.fetch_add(1, std::memory_order_relaxed);
      const std::size_t begin = b * chunk;
      if (begin >= total || failed.load(std::memory_order_relaxed)) return;
      fn(begin, std::min(total, begin + chunk));
    }
  });
}

void parallel_for_each(std::size_t total, int threads,
                       const std::function<void(std::size_t)>& fn) {
  if (total == 0) return;
  threads = resolve_threads(threads, total);
  if (threads == 1) {
    for (std::size_t i = 0; i < total; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  run_pool(threads, [&](std::atomic<bool>& failed) {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total || failed.load(std::memory_order_relaxed)) return;
      fn(i);
    }
  });
}

}  // namespace dpjit::util
