#include "util/config.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace dpjit::util {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' || s.front() == '\r')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) s.remove_suffix(1);
  return s;
}

}  // namespace

Config Config::from_args(int argc, const char* const* argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      arg.remove_prefix(2);
      if (arg.empty()) throw std::invalid_argument("bare '--' argument");
      auto eq = arg.find('=');
      if (eq == std::string_view::npos) {
        cfg.set(std::string(arg), "true");
      } else {
        auto key = arg.substr(0, eq);
        if (key.empty()) throw std::invalid_argument("empty key in argument: --" + std::string(arg));
        cfg.set(std::string(key), std::string(arg.substr(eq + 1)));
      }
    } else {
      cfg.positional_.emplace_back(arg);
    }
  }
  return cfg;
}

Config Config::from_string(std::string_view text) {
  Config cfg;
  std::size_t pos = 0;
  while (pos < text.size()) {
    auto nl = text.find('\n', pos);
    std::string_view line = text.substr(pos, nl == std::string_view::npos ? std::string_view::npos : nl - pos);
    pos = (nl == std::string_view::npos) ? text.size() : nl + 1;
    if (auto hash = line.find('#'); hash != std::string_view::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    auto eq = line.find('=');
    if (eq == std::string_view::npos) throw std::invalid_argument("config line missing '=': " + std::string(line));
    auto key = trim(line.substr(0, eq));
    auto value = trim(line.substr(eq + 1));
    if (key.empty()) throw std::invalid_argument("config line with empty key: " + std::string(line));
    cfg.set(std::string(key), std::string(value));
  }
  return cfg;
}

void Config::set(std::string key, std::string value) {
  values_[std::move(key)] = std::move(value);
}

bool Config::has(std::string_view key) const { return values_.find(key) != values_.end(); }

std::optional<std::string> Config::raw(std::string_view key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  read_keys_.insert(it->first);
  return it->second;
}

std::string Config::get_string(std::string_view key, std::string_view fallback) const {
  auto v = raw(key);
  return v ? *v : std::string(fallback);
}

double Config::get_double(std::string_view key, double fallback) const {
  auto v = raw(key);
  if (!v) return fallback;
  char* end = nullptr;
  double d = std::strtod(v->c_str(), &end);
  if (end == v->c_str() || *end != '\0') {
    throw std::invalid_argument("config key '" + std::string(key) + "' is not a double: " + *v);
  }
  return d;
}

std::int64_t Config::get_int(std::string_view key, std::int64_t fallback) const {
  auto v = raw(key);
  if (!v) return fallback;
  char* end = nullptr;
  long long i = std::strtoll(v->c_str(), &end, 10);
  if (end == v->c_str() || *end != '\0') {
    throw std::invalid_argument("config key '" + std::string(key) + "' is not an integer: " + *v);
  }
  return static_cast<std::int64_t>(i);
}

bool Config::get_bool(std::string_view key, bool fallback) const {
  auto v = raw(key);
  if (!v) return fallback;
  if (*v == "true" || *v == "1" || *v == "yes" || *v == "on") return true;
  if (*v == "false" || *v == "0" || *v == "no" || *v == "off") return false;
  throw std::invalid_argument("config key '" + std::string(key) + "' is not a bool: " + *v);
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, _] : values_) out.push_back(k);
  return out;
}

std::vector<std::string> Config::unused_keys() const {
  std::vector<std::string> out;
  for (const auto& [k, _] : values_) {
    if (read_keys_.find(k) == read_keys_.end()) out.push_back(k);
  }
  return out;
}

}  // namespace dpjit::util
