#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace dpjit::util {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return n_ == 0 ? 0.0 : min_; }
double RunningStats::max() const { return n_ == 0 ? 0.0 : max_; }

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double mean_of(const std::vector<double>& values) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

TimeSeries::TimeSeries(SimTime interval, SimTime horizon) : interval_(interval) {
  assert(interval > 0.0);
  assert(horizon >= 0.0);
  const auto n = static_cast<std::size_t>(std::ceil(horizon / interval));
  buckets_.resize(std::max<std::size_t>(n, 1));
}

void TimeSeries::record(SimTime t, double value) {
  auto i = static_cast<std::size_t>(std::max(t, 0.0) / interval_);
  i = std::min(i, buckets_.size() - 1);
  buckets_[i].n += 1;
  buckets_[i].sum += value;
}

SimTime TimeSeries::bucket_time(std::size_t i) const {
  assert(i < buckets_.size());
  return static_cast<SimTime>(i) * interval_;
}

std::size_t TimeSeries::bucket_n(std::size_t i) const {
  assert(i < buckets_.size());
  return buckets_[i].n;
}

double TimeSeries::bucket_sum(std::size_t i) const {
  assert(i < buckets_.size());
  return buckets_[i].sum;
}

double TimeSeries::bucket_mean(std::size_t i) const {
  assert(i < buckets_.size());
  if (buckets_[i].n == 0) return std::numeric_limits<double>::quiet_NaN();
  return buckets_[i].sum / static_cast<double>(buckets_[i].n);
}

std::size_t TimeSeries::cumulative_n(std::size_t i) const {
  assert(i < buckets_.size());
  std::size_t n = 0;
  for (std::size_t k = 0; k <= i; ++k) n += buckets_[k].n;
  return n;
}

double TimeSeries::cumulative_mean(std::size_t i) const {
  assert(i < buckets_.size());
  std::size_t n = 0;
  double sum = 0.0;
  for (std::size_t k = 0; k <= i; ++k) {
    n += buckets_[k].n;
    sum += buckets_[k].sum;
  }
  if (n == 0) return std::numeric_limits<double>::quiet_NaN();
  return sum / static_cast<double>(n);
}

}  // namespace dpjit::util
