// RFC-4180-style CSV emission for experiment results.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace dpjit::util {

/// Quotes a CSV field if it contains separators, quotes or newlines.
[[nodiscard]] std::string csv_escape(std::string_view field);

/// Streams rows of comma-separated values to an std::ostream.
/// The writer does not own the stream; keep it alive while writing.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  /// Writes one row; fields are escaped as needed.
  void row(const std::vector<std::string>& fields);
  void row(std::initializer_list<std::string_view> fields);

  /// Convenience: formats doubles with enough digits to round-trip.
  static std::string num(double v);
  static std::string num(std::int64_t v);

 private:
  std::ostream& os_;
};

}  // namespace dpjit::util
