// Small statistics helpers used by the metrics layer and the benches:
// running summaries, percentiles, and fixed-interval time series.
#pragma once

#include <cstddef>
#include <vector>

#include "util/types.hpp"

namespace dpjit::util {

/// Numerically stable (Welford) running mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return mean() * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = kInf;
  double max_ = -kInf;
};

/// Percentile with linear interpolation over a *copy* of the data.
/// q in [0,1]; returns NaN for empty input.
[[nodiscard]] double percentile(std::vector<double> values, double q);

/// Arithmetic mean; NaN for empty input.
[[nodiscard]] double mean_of(const std::vector<double>& values);

/// A time series sampled at a fixed interval, used for the paper's
/// "metric vs. time (hours)" figures. Values accumulate into the bucket
/// covering their timestamp; buckets expose both last-write and counts.
class TimeSeries {
 public:
  /// `interval` is the bucket width in simulated seconds (> 0),
  /// `horizon` the total covered time; times beyond it clamp to the last bucket.
  TimeSeries(SimTime interval, SimTime horizon);

  /// Records an observation at simulated time t.
  void record(SimTime t, double value);

  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }
  [[nodiscard]] SimTime interval() const { return interval_; }
  /// Left edge time of bucket i.
  [[nodiscard]] SimTime bucket_time(std::size_t i) const;
  /// Number of observations in bucket i.
  [[nodiscard]] std::size_t bucket_n(std::size_t i) const;
  /// Sum of observations in bucket i.
  [[nodiscard]] double bucket_sum(std::size_t i) const;
  /// Mean of observations in bucket i (NaN when empty).
  [[nodiscard]] double bucket_mean(std::size_t i) const;

  /// Cumulative count of observations in buckets [0, i].
  [[nodiscard]] std::size_t cumulative_n(std::size_t i) const;
  /// Mean of all observations in buckets [0, i] (NaN when none).
  [[nodiscard]] double cumulative_mean(std::size_t i) const;

 private:
  struct Bucket {
    std::size_t n = 0;
    double sum = 0.0;
  };
  SimTime interval_;
  std::vector<Bucket> buckets_;
};

}  // namespace dpjit::util
