#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace dpjit::util {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  if (stack_.empty()) {
    if (wrote_root_) throw std::logic_error("JsonWriter: multiple root values");
    wrote_root_ = true;
    return;
  }
  if (stack_.back() == Frame::kObject && !pending_key_) {
    throw std::logic_error("JsonWriter: value in object without key");
  }
  if (stack_.back() == Frame::kArray) {
    if (!first_in_frame_.back()) os_ << ',';
    first_in_frame_.back() = false;
  }
  pending_key_ = false;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back(Frame::kObject);
  first_in_frame_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Frame::kObject || pending_key_) {
    throw std::logic_error("JsonWriter: mismatched end_object");
  }
  stack_.pop_back();
  first_in_frame_.pop_back();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back(Frame::kArray);
  first_in_frame_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Frame::kArray) {
    throw std::logic_error("JsonWriter: mismatched end_array");
  }
  stack_.pop_back();
  first_in_frame_.pop_back();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (stack_.empty() || stack_.back() != Frame::kObject || pending_key_) {
    throw std::logic_error("JsonWriter: key outside object");
  }
  if (!first_in_frame_.back()) os_ << ',';
  first_in_frame_.back() = false;
  os_ << '"' << json_escape(k) << "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  os_ << '"' << json_escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    os_ << "null";  // JSON has no Infinity/NaN
    return *this;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  os_ << "null";
  return *this;
}

}  // namespace dpjit::util
