// t-digest quantile sketch (Dunning & Ertl, "Computing extremely accurate
// quantiles using t-digests"), merging variant.
//
// The streaming metrics layer (exp::StreamingMetricsCollector) needs
// completion-time quantiles over millions of observations without retaining
// them. A t-digest keeps a bounded set of centroids whose sizes follow the
// k1 scale function: centroids near the median are large, centroids near the
// tails shrink toward single points, so p95/p99 stay accurate where a plain
// histogram would smear them. Memory is O(compression), independent of the
// number of observations.
//
// Determinism: the insert/query interleaving + compression fully determine
// the centroid set (a query flushes buffered points into the clustering;
// ties in the internal sort are broken by insertion sequence), so two runs
// feeding identical streams with identical query points produce bit-identical
// quantiles — the property the golden-digest and differential tests rely on.
// Queries on an unchanged digest are idempotent: compress() only runs when
// fresh mass arrived, so re-querying never shifts an answer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dpjit::util {

class TDigest {
 public:
  /// `compression` (delta) bounds the centroid count: after a merge the
  /// digest holds at most ~ceil(compression) centroids. Larger compression =
  /// more memory, tighter quantiles. Must be >= 10 (throws otherwise).
  explicit TDigest(double compression = 100.0);

  /// Adds one observation with weight 1. Amortized O(1); triggers an
  /// O(b log b) buffer merge every `buffer_capacity()` additions.
  void add(double x);

  /// Total observations added.
  [[nodiscard]] std::uint64_t count() const { return total_weight_ + buffer_.size(); }

  /// Quantile estimate for q in [0, 1] (clamped). NaN when empty. q=0 / q=1
  /// return the exact min / max. Interpolates linearly between centroid
  /// means. Non-const-looking but logically const: flushes the insert buffer
  /// first (mutable internals).
  [[nodiscard]] double quantile(double q) const;

  /// Fraction of observations <= x (empirical CDF estimate); NaN when empty.
  [[nodiscard]] double cdf(double x) const;

  /// Exact running min/max (independent of the sketch). NaN when empty.
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Centroids currently held (post-flush); bounded by max_centroids().
  [[nodiscard]] std::size_t centroid_count() const;

  /// Hard bound on stored centroids for this compression setting.
  [[nodiscard]] std::size_t max_centroids() const { return max_centroids_; }

  /// Insert-buffer capacity (additions between merges).
  [[nodiscard]] std::size_t buffer_capacity() const { return buffer_capacity_; }

  [[nodiscard]] double compression() const { return compression_; }

  /// Folds another digest into this one (deterministic: other's centroids
  /// are appended in order, then one merge pass runs).
  void merge(const TDigest& other);

 private:
  struct Centroid {
    double mean = 0.0;
    double weight = 0.0;
  };

  /// Sorts the buffer + centroids and re-clusters against the k1 scale
  /// function. Leaves buffer_ empty.
  void compress() const;

  double compression_;
  std::size_t max_centroids_;
  std::size_t buffer_capacity_;
  // Mutable: quantile()/cdf() flush pending inserts; the observable state
  // (the distribution sketched) is unchanged by compress().
  mutable std::vector<Centroid> centroids_;  // sorted by mean after compress()
  mutable std::vector<double> buffer_;
  mutable std::uint64_t total_weight_ = 0;  // merged observations (excl. buffer)
  mutable bool needs_cluster_ = false;      // merge() appended raw centroids
  double min_ = 0.0;
  double max_ = 0.0;
  bool any_ = false;
};

}  // namespace dpjit::util
