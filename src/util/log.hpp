// Leveled logging. The simulator is silent by default (level = Warn);
// examples and debugging sessions raise the level.
#pragma once

#include <sstream>
#include <string>

namespace dpjit::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the process-wide minimum level that will be emitted.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Emits one line to stderr if `level` passes the threshold.
void log_line(LogLevel level, const std::string& message);

namespace detail {
/// RAII line builder: streams into a buffer, emits on destruction.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, ss_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream ss_;
};
}  // namespace detail

}  // namespace dpjit::util

#define DPJIT_LOG(level)                                  \
  if (static_cast<int>(level) < static_cast<int>(::dpjit::util::log_level())) \
    ;                                                     \
  else                                                    \
    ::dpjit::util::detail::LogStream(level)

#define DPJIT_DEBUG() DPJIT_LOG(::dpjit::util::LogLevel::kDebug)
#define DPJIT_INFO() DPJIT_LOG(::dpjit::util::LogLevel::kInfo)
#define DPJIT_WARN() DPJIT_LOG(::dpjit::util::LogLevel::kWarn)
#define DPJIT_ERROR() DPJIT_LOG(::dpjit::util::LogLevel::kError)
