// Minimal std::thread fan-out helpers shared by the parallel Routing build
// and the experiment sweep pool. Both capture worker exceptions and rethrow
// the first one on the calling thread after every worker has joined (a bare
// throw on a std::thread would call std::terminate).
#pragma once

#include <cstddef>
#include <functional>

namespace dpjit::util {

/// Resolves a thread-count request: <= 0 means hardware concurrency, and the
/// result is clamped to [1, max_useful].
[[nodiscard]] int resolve_threads(int requested, std::size_t max_useful);

/// Splits [0, total) into one contiguous block per worker and runs
/// `fn(begin, end)` on each across `threads` threads (<= 0 = hardware
/// concurrency). Runs inline when one thread suffices. Use when items write
/// disjoint index-keyed output and per-item cost is uniform.
void parallel_for_blocks(std::size_t total, int threads,
                         const std::function<void(std::size_t begin, std::size_t end)>& fn);

/// Runs `fn(i)` for every i in [0, total) across `threads` threads with
/// atomic-counter work stealing (<= 0 = hardware concurrency). Use when
/// per-item cost varies (e.g. experiment runs at different scales). After a
/// worker throws, remaining unclaimed items are skipped.
void parallel_for_each(std::size_t total, int threads,
                       const std::function<void(std::size_t i)>& fn);

}  // namespace dpjit::util
