#include "util/tdigest.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

namespace dpjit::util {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

}  // namespace

TDigest::TDigest(double compression) : compression_(compression) {
  if (!(compression >= 10.0)) {
    throw std::invalid_argument("TDigest: compression must be >= 10");
  }
  // The k1 merge rule keeps at most ~ceil(compression) centroids; the bound
  // below is deliberately slack (asserted, never reached in practice) so a
  // future scale-function tweak cannot silently overflow a tight vector.
  max_centroids_ = 2 * static_cast<std::size_t>(std::ceil(compression)) + 16;
  buffer_capacity_ = std::max<std::size_t>(64, 5 * static_cast<std::size_t>(compression));
  centroids_.reserve(max_centroids_);
  buffer_.reserve(buffer_capacity_);
}

void TDigest::add(double x) {
  if (!any_) {
    min_ = max_ = x;
    any_ = true;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  buffer_.push_back(x);
  if (buffer_.size() >= buffer_capacity_) compress();
}

void TDigest::compress() const {
  // Clustering an already-clustered set is NOT a no-op (adjacent clusters can
  // merge further after re-normalization), so compress() must run only when
  // new mass arrived — otherwise results would depend on the query pattern.
  if (buffer_.empty() && !needs_cluster_) return;
  needs_cluster_ = false;
  std::vector<Centroid> all;
  all.reserve(centroids_.size() + buffer_.size());
  all.insert(all.end(), centroids_.begin(), centroids_.end());
  for (double x : buffer_) all.push_back(Centroid{x, 1.0});
  total_weight_ += buffer_.size();
  buffer_.clear();
  if (all.empty()) return;
  // Stable: equal means keep their (existing-centroids-first, then insertion)
  // order, so the merge result is a pure function of the value stream.
  std::stable_sort(all.begin(), all.end(),
                   [](const Centroid& a, const Centroid& b) { return a.mean < b.mean; });

  const double total = static_cast<double>(total_weight_);
  // k1 scale function: k(q) = (delta / 2pi) * asin(2q - 1). A centroid may
  // absorb its successor only while the merged cluster spans < 1 k-unit.
  const double norm = compression_ / (2.0 * std::numbers::pi);
  auto k_of = [norm](double q) { return norm * std::asin(2.0 * std::clamp(q, 0.0, 1.0) - 1.0); };

  centroids_.clear();
  Centroid cur = all.front();
  double w_before = 0.0;  // weight strictly before `cur`
  double k_lo = k_of(0.0);
  for (std::size_t i = 1; i < all.size(); ++i) {
    const Centroid& next = all[i];
    const double q_hi = (w_before + cur.weight + next.weight) / total;
    if (k_of(q_hi) - k_lo <= 1.0) {
      // Absorb: weighted running mean, numerically stable form.
      cur.mean += (next.weight / (cur.weight + next.weight)) * (next.mean - cur.mean);
      cur.weight += next.weight;
    } else {
      centroids_.push_back(cur);
      w_before += cur.weight;
      k_lo = k_of(w_before / total);
      cur = next;
    }
  }
  centroids_.push_back(cur);
  // Merging can leave means out of order only through floating-point noise in
  // the running-mean update; re-sorting keeps quantile()'s walk monotone.
  std::stable_sort(centroids_.begin(), centroids_.end(),
                   [](const Centroid& a, const Centroid& b) { return a.mean < b.mean; });
  if (centroids_.size() > max_centroids_) {
    throw std::logic_error("TDigest: centroid bound exceeded (scale function bug)");
  }
}

std::size_t TDigest::centroid_count() const {
  compress();
  return centroids_.size();
}

double TDigest::min() const { return any_ ? min_ : kNaN; }
double TDigest::max() const { return any_ ? max_ : kNaN; }

double TDigest::quantile(double q) const {
  compress();
  if (centroids_.empty()) return kNaN;
  q = std::clamp(q, 0.0, 1.0);
  const double total = static_cast<double>(total_weight_);
  const double index = q * total;
  // Each centroid is anchored at the midpoint of the weight it covers;
  // between anchors the distribution is treated as linear.
  double cum = 0.0;
  double prev_anchor = 0.0;
  double prev_mean = min_;
  for (const Centroid& c : centroids_) {
    const double anchor = cum + 0.5 * c.weight;
    if (index < anchor) {
      const double span = anchor - prev_anchor;
      const double t = span > 0.0 ? (index - prev_anchor) / span : 0.0;
      return prev_mean + t * (c.mean - prev_mean);
    }
    cum += c.weight;
    prev_anchor = anchor;
    prev_mean = c.mean;
  }
  // Above the last anchor: interpolate toward the exact max.
  const double span = total - prev_anchor;
  const double t = span > 0.0 ? (index - prev_anchor) / span : 1.0;
  return prev_mean + std::min(t, 1.0) * (max_ - prev_mean);
}

double TDigest::cdf(double x) const {
  compress();
  if (centroids_.empty()) return kNaN;
  if (x < min_) return 0.0;
  if (x >= max_) return 1.0;
  const double total = static_cast<double>(total_weight_);
  double cum = 0.0;
  double prev_anchor = 0.0;
  double prev_mean = min_;
  for (const Centroid& c : centroids_) {
    const double anchor = cum + 0.5 * c.weight;
    if (x < c.mean) {
      const double span = c.mean - prev_mean;
      const double t = span > 0.0 ? (x - prev_mean) / span : 0.0;
      return (prev_anchor + t * (anchor - prev_anchor)) / total;
    }
    cum += c.weight;
    prev_anchor = anchor;
    prev_mean = c.mean;
  }
  const double span = max_ - prev_mean;
  const double t = span > 0.0 ? (x - prev_mean) / span : 1.0;
  return (prev_anchor + t * (total - prev_anchor)) / total;
}

void TDigest::merge(const TDigest& other) {
  other.compress();
  if (!other.any_) return;
  // Weighted centroids enter through the centroid list directly: append in
  // order, then one clustering pass restores the bound. Deterministic — the
  // result is a pure function of (this stream, other stream).
  centroids_.insert(centroids_.end(), other.centroids_.begin(), other.centroids_.end());
  total_weight_ += other.total_weight_;
  if (!any_) {
    min_ = other.min_;
    max_ = other.max_;
    any_ = true;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  needs_cluster_ = true;
  compress();
}

}  // namespace dpjit::util
