#include "util/csv.hpp"

#include <charconv>
#include <cstdio>

namespace dpjit::util {

std::string csv_escape(std::string_view field) {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  bool first = true;
  for (const auto& f : fields) {
    if (!first) os_ << ',';
    os_ << csv_escape(f);
    first = false;
  }
  os_ << '\n';
}

void CsvWriter::row(std::initializer_list<std::string_view> fields) {
  bool first = true;
  for (auto f : fields) {
    if (!first) os_ << ',';
    os_ << csv_escape(f);
    first = false;
  }
  os_ << '\n';
}

std::string CsvWriter::num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string CsvWriter::num(std::int64_t v) { return std::to_string(v); }

}  // namespace dpjit::util
