// Minimal streaming JSON writer for machine-readable experiment output.
// Emits canonical, valid JSON (escaped strings, no trailing commas); the
// writer tracks nesting so misuse (e.g. closing an object inside an array)
// throws instead of producing garbage.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace dpjit::util {

/// Escapes a string for inclusion in a JSON document (without quotes).
[[nodiscard]] std::string json_escape(std::string_view s);

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  /// --- containers ---
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Writes an object key (must be inside an object, before a value).
  JsonWriter& key(std::string_view k);

  /// --- values ---
  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Convenience: key + value in one call.
  template <typename T>
  JsonWriter& kv(std::string_view k, const T& v) {
    key(k);
    return value(v);
  }

  /// True when all containers are closed (document complete).
  [[nodiscard]] bool complete() const { return stack_.empty() && wrote_root_; }

 private:
  enum class Frame { kObject, kArray };
  void before_value();

  std::ostream& os_;
  std::vector<Frame> stack_;
  std::vector<bool> first_in_frame_;
  bool pending_key_ = false;
  bool wrote_root_ = false;
};

}  // namespace dpjit::util
