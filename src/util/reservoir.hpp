// Seeded reservoir sampling (Vitter's Algorithm R): a uniform sample of
// fixed capacity k over a stream of unknown length, in O(k) memory.
//
// The streaming metrics layer keeps a reservoir of WorkflowReports so a
// 10M-task run still yields a representative set of per-workflow records for
// inspection, without retaining them all. Sampling is driven by a util::Rng,
// so a fixed seed gives a bit-identical reservoir for a fixed stream — the
// property the determinism tests pin — and the per-item inclusion
// probability is exactly k/n, which the chi-squared uniformity test checks
// across seeds.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace dpjit::util {

template <typename T>
class ReservoirSampler {
 public:
  /// `capacity` k must be >= 1. The rng is owned (copied in) so the sampler's
  /// draw sequence cannot be perturbed by other consumers of a shared stream.
  ReservoirSampler(std::size_t capacity, Rng rng) : capacity_(capacity), rng_(std::move(rng)) {
    items_.reserve(capacity_);
  }

  /// Offers one stream element. The first k fill the reservoir; element n
  /// (1-based) then replaces a uniform slot with probability k/n.
  void add(T item) {
    ++seen_;
    if (items_.size() < capacity_) {
      items_.push_back(std::move(item));
      return;
    }
    // Draw over [0, n): indices < k keep the item, in slot j.
    const std::size_t j = rng_.index(seen_);
    if (j < capacity_) items_[j] = std::move(item);
  }

  /// Elements currently held (== min(seen, capacity)).
  [[nodiscard]] const std::vector<T>& items() const { return items_; }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Stream length offered so far.
  [[nodiscard]] std::uint64_t seen() const { return seen_; }

 private:
  std::size_t capacity_;
  Rng rng_;
  std::vector<T> items_;
  std::uint64_t seen_ = 0;
};

}  // namespace dpjit::util
