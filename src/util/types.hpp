// Strong identifier types and common aliases shared across all dpjit libraries.
//
// Every entity in the simulator (peer node, workflow, task, ...) is referred to
// by a small integer id. To prevent accidental cross-assignment (e.g. passing a
// task id where a node id is expected) each id is a distinct tagged type.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace dpjit {

/// Simulated time in seconds since the start of the experiment.
using SimTime = double;

/// Sentinel meaning "no time" / "not yet happened".
inline constexpr SimTime kNoTime = -1.0;

/// Positive infinity, used as "never" / "unreachable".
inline constexpr double kInf = std::numeric_limits<double>::infinity();

/// A strongly typed integer id. `Tag` only disambiguates the type.
template <typename Tag>
struct Id {
  using underlying_type = std::int32_t;
  static constexpr underlying_type kInvalid = -1;

  underlying_type value = kInvalid;

  constexpr Id() = default;
  constexpr explicit Id(underlying_type v) : value(v) {}

  [[nodiscard]] constexpr bool valid() const { return value >= 0; }
  [[nodiscard]] constexpr underlying_type get() const { return value; }

  constexpr auto operator<=>(const Id&) const = default;
};

template <typename Tag>
std::ostream& operator<<(std::ostream& os, Id<Tag> id) {
  return os << id.value;
}

struct NodeTag {};
struct WorkflowTag {};
struct TaskTag {};
struct LinkTag {};

/// Identifies a peer node in the P2P grid (both scheduler and resource role).
using NodeId = Id<NodeTag>;
/// Identifies a workflow instance submitted to some home node.
using WorkflowId = Id<WorkflowTag>;
/// Identifies a task *within* its workflow (index into the workflow's task list).
using TaskIndex = Id<TaskTag>;
/// Identifies a physical link in the network topology.
using LinkId = Id<LinkTag>;

/// Globally unique reference to a task: (workflow, task index).
struct TaskRef {
  WorkflowId workflow;
  TaskIndex task;

  constexpr auto operator<=>(const TaskRef&) const = default;
};

inline std::ostream& operator<<(std::ostream& os, const TaskRef& r) {
  return os << "wf" << r.workflow << ":t" << r.task;
}

}  // namespace dpjit

namespace std {
template <typename Tag>
struct hash<dpjit::Id<Tag>> {
  size_t operator()(dpjit::Id<Tag> id) const noexcept {
    return std::hash<std::int32_t>{}(id.value);
  }
};

template <>
struct hash<dpjit::TaskRef> {
  size_t operator()(const dpjit::TaskRef& r) const noexcept {
    return (static_cast<size_t>(static_cast<std::uint32_t>(r.workflow.value)) << 20) ^
           static_cast<size_t>(static_cast<std::uint32_t>(r.task.value));
  }
};
}  // namespace std
