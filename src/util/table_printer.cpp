#include "util/table_printer.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace dpjit::util {
namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end != s.c_str() && *end == '\0';
}

}  // namespace

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::fmt(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, v);
  return buf;
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  auto print_cell = [&](const std::string& s, std::size_t c, bool right) {
    if (right) {
      os << std::string(width[c] - s.size(), ' ') << s;
    } else {
      os << s << std::string(width[c] - s.size(), ' ');
    }
  };
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << "  ";
    print_cell(headers_[c], c, false);
  }
  os << '\n';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << "  ";
    os << std::string(width[c], '-');
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << "  ";
      print_cell(row[c], c, looks_numeric(row[c]));
    }
    os << '\n';
  }
}

void TablePrinter::print_markdown(std::ostream& os) const {
  os << '|';
  for (const auto& h : headers_) os << ' ' << h << " |";
  os << "\n|";
  for (std::size_t c = 0; c < headers_.size(); ++c) os << "---|";
  os << '\n';
  for (const auto& row : rows_) {
    os << '|';
    for (const auto& cell : row) os << ' ' << cell << " |";
    os << '\n';
  }
}

}  // namespace dpjit::util
