#include "util/rng.hpp"

#include <cassert>
#include <cmath>

namespace dpjit::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

/// FNV-1a over a string, used to turn fork labels into seed material.
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::fork(std::string_view label) const {
  // Mix the parent's seed with the label hash; SplitMix64 in the constructor
  // decorrelates nearby values.
  std::uint64_t mixed = seed_ ^ (fnv1a(label) * 0x9e3779b97f4a7c15ULL);
  return Rng(mixed);
}

Rng Rng::fork(std::string_view label, std::uint64_t index) const {
  std::uint64_t mixed = seed_ ^ (fnv1a(label) * 0x9e3779b97f4a7c15ULL);
  mixed ^= (index + 1) * 0xff51afd7ed558ccdULL;
  return Rng(mixed);
}

double Rng::uniform01() {
  // 53-bit mantissa construction: uniform in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~0ULL) - (~0ULL) % span;
  std::uint64_t v;
  do {
    v = (*this)();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % span);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  double u;
  do {
    u = uniform01();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  assert(stddev >= 0.0);
  // Box-Muller: u1 in (0, 1] keeps the log finite; always consumes exactly
  // two uniforms so interleaved streams stay aligned.
  const double u1 = 1.0 - uniform01();
  const double u2 = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  return mean + stddev * r * std::cos(kTwoPi * u2);
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::weibull(double shape, double scale) {
  assert(shape > 0.0 && scale > 0.0);
  // Inverse CDF on u in (0, 1]: scale * (-ln u)^(1/shape). shape == 1 is the
  // exponential; shape < 1 gives the bursty heavy-tailed interarrivals of
  // real grid traces (Guazzone et al.).
  double u;
  do {
    u = uniform01();
  } while (u <= 0.0);
  return scale * std::pow(-std::log(u), 1.0 / shape);
}

double Rng::pareto(double scale, double alpha) {
  assert(scale > 0.0 && alpha > 0.0);
  // Inverse CDF on u in (0, 1].
  const double u = 1.0 - uniform01();
  return scale * std::pow(u, -1.0 / alpha);
}

std::size_t Rng::index(std::size_t n) {
  assert(n >= 1);
  return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  if (k >= n) return all;
  // Partial Fisher-Yates: the first k slots become the sample.
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + index(n - i);
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

}  // namespace dpjit::util
