// Deterministic pseudo-random number generation for reproducible simulation.
//
// The simulator must be bit-reproducible across runs given the same seed, and
// sub-streams (topology, workload, per-node gossip, churn...) must be
// independent so that, e.g., changing the number of workflows does not perturb
// the topology. We therefore use a SplitMix64-seeded xoshiro256** generator
// with an explicit `fork(label)` operation deriving decorrelated child streams.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace dpjit::util {

/// xoshiro256** PRNG (Blackman & Vigna), seeded via SplitMix64.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Creates a generator from a 64-bit seed (any value, including 0, is fine).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit output.
  result_type operator()();

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Derives an independent child stream. The same (parent seed, label) pair
  /// always yields the same child, so component streams are stable even when
  /// other components consume a different amount of randomness.
  [[nodiscard]] Rng fork(std::string_view label) const;

  /// Same as fork(label) but with an integer discriminator (e.g. a node id).
  [[nodiscard]] Rng fork(std::string_view label, std::uint64_t index) const;

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in the inclusive range [lo, hi]. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Normally distributed value (Box-Muller; consumes two uniforms per call).
  double normal(double mean, double stddev);

  /// Log-normally distributed value: exp(N(mu, sigma)) with mu/sigma in
  /// log-space. sigma > 1 gives the heavy right tail of real grid workloads.
  double lognormal(double mu, double sigma);

  /// Weibull value with shape k > 0 and scale lambda > 0 (inverse CDF).
  /// shape == 1 reduces to exponential(scale); shape < 1 models the bursty
  /// interarrival times mined from real grid traces.
  double weibull(double shape, double scale);

  /// Pareto (Type I) value with scale xm > 0 and tail index alpha > 0:
  /// support [xm, inf), P(X > x) = (xm/x)^alpha. Small alpha = heavier tail.
  double pareto(double scale, double alpha);

  /// Picks one element uniformly from {0, ..., n-1}. Requires n >= 1.
  std::size_t index(std::size_t n);

  /// Picks a uniform element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[index(v.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    if (v.size() < 2) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      std::size_t j = index(i + 1);
      using std::swap;
      swap(v[i], v[j]);
    }
  }

  /// Samples k distinct indices from {0,...,n-1} (k > n yields all n).
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

 private:
  std::uint64_t s_[4];

  /// 64-bit seed of this stream (kept so fork() can derive children).
  std::uint64_t seed_;
};

}  // namespace dpjit::util
