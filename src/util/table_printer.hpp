// Column-aligned plain-text tables: the bench binaries print the same
// rows/series the paper's figures plot, and this keeps them readable.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace dpjit::util {

/// Accumulates rows of string cells and prints them with aligned columns.
/// Numeric cells (parsing as double) are right-aligned, text left-aligned.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row. Rows shorter than the header are padded with "".
  void add_row(std::vector<std::string> cells);

  /// Formats a double with `digits` significant digits.
  static std::string fmt(double v, int digits = 6);

  /// Prints the table (headers, separator, rows) to `os`.
  void print(std::ostream& os) const;

  /// Prints as a GitHub-markdown table.
  void print_markdown(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dpjit::util
