// Minimal key=value configuration store with command-line override support.
//
// Experiment binaries accept `--key=value` arguments; this class parses them,
// exposes typed getters with defaults, and records which keys were read so the
// binaries can print their effective configuration.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace dpjit::util {

/// A flat string->string configuration with typed accessors.
class Config {
 public:
  Config() = default;

  /// Parses `--key=value` or `--flag` (stored as "true") arguments.
  /// Non `--` arguments are collected as positional. Throws std::invalid_argument
  /// on malformed input (e.g. "--" alone).
  static Config from_args(int argc, const char* const* argv);

  /// Parses a whitespace/newline separated "key=value" text block (supports
  /// '#' comments). Used by tests and for reading config files.
  static Config from_string(std::string_view text);

  /// Sets (or overwrites) a key.
  void set(std::string key, std::string value);

  /// True if the key is present.
  [[nodiscard]] bool has(std::string_view key) const;

  /// Typed getters; return `fallback` when the key is absent.
  /// Throw std::invalid_argument when present but unparsable.
  [[nodiscard]] std::string get_string(std::string_view key, std::string_view fallback) const;
  [[nodiscard]] double get_double(std::string_view key, double fallback) const;
  [[nodiscard]] std::int64_t get_int(std::string_view key, std::int64_t fallback) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool fallback) const;

  /// Positional (non --key=value) command-line arguments, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

  /// All keys, sorted (for printing the effective configuration).
  [[nodiscard]] std::vector<std::string> keys() const;

  /// Keys that were set but never read by any getter: typo detection.
  [[nodiscard]] std::vector<std::string> unused_keys() const;

 private:
  [[nodiscard]] std::optional<std::string> raw(std::string_view key) const;

  std::map<std::string, std::string, std::less<>> values_;
  std::vector<std::string> positional_;
  mutable std::set<std::string, std::less<>> read_keys_;
};

}  // namespace dpjit::util
