#include <gtest/gtest.h>

int dpjit_odr_probe_a();
int dpjit_odr_probe_b();

// The real assertion is that this binary linked at all: odr_tu_a.cpp and
// odr_tu_b.cpp both include every public header, so any non-inline
// definition leaking from a header is a duplicate-symbol link error.
TEST(OdrTest, BothTranslationUnitsLink) {
  EXPECT_EQ(dpjit_odr_probe_a(), 1);
  EXPECT_EQ(dpjit_odr_probe_b(), 2);
}
