#include "all_headers.hpp"

// Distinct symbol per TU so the linker must merge everything the headers
// define. A duplicate non-inline definition in any header fails this link.
int dpjit_odr_probe_a() { return 1; }
