// bench_common.hpp must be includable as the first and only dpjit include.
#include "bench_common.hpp"

int main() { return 0; }
