#include "sim/engine.hpp"

#include <gtest/gtest.h>

namespace dpjit::sim {
namespace {

TEST(Engine, NowAdvancesWithEvents) {
  Engine e;
  std::vector<double> times;
  e.schedule_at(10.0, [&] { times.push_back(e.now()); });
  e.schedule_at(5.0, [&] { times.push_back(e.now()); });
  e.run_all();
  EXPECT_EQ(times, (std::vector<double>{5.0, 10.0}));
}

TEST(Engine, ScheduleInIsRelative) {
  Engine e;
  double fired_at = -1;
  e.schedule_at(10.0, [&] {
    e.schedule_in(5.0, [&] { fired_at = e.now(); });
  });
  e.run_all();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(Engine, RejectsPastScheduling) {
  Engine e;
  e.schedule_at(10.0, [] {});
  e.run_all();
  EXPECT_THROW(e.schedule_at(5.0, [] {}), std::logic_error);
  EXPECT_THROW(e.schedule_in(-1.0, [] {}), std::logic_error);
}

TEST(Engine, RunUntilStopsAtBoundaryInclusive) {
  Engine e;
  std::vector<double> fired;
  e.schedule_at(1.0, [&] { fired.push_back(1.0); });
  e.schedule_at(2.0, [&] { fired.push_back(2.0); });
  e.schedule_at(3.0, [&] { fired.push_back(3.0); });
  e.run_until(2.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(e.now(), 2.0);
  e.run_until(10.0);
  EXPECT_EQ(fired.size(), 3u);
  EXPECT_DOUBLE_EQ(e.now(), 10.0);  // clock advances to the horizon
}

TEST(Engine, EventsScheduledDuringRunExecute) {
  Engine e;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) e.schedule_in(1.0, chain);
  };
  e.schedule_at(0.0, chain);
  e.run_all();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(e.now(), 4.0);
}

TEST(Engine, StepExecutesOne) {
  Engine e;
  int count = 0;
  e.schedule_at(1.0, [&] { ++count; });
  e.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(e.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(e.step());
  EXPECT_FALSE(e.step());
  EXPECT_EQ(count, 2);
}

TEST(Engine, RequestStopBreaksRun) {
  Engine e;
  int count = 0;
  e.schedule_at(1.0, [&] {
    ++count;
    e.request_stop();
  });
  e.schedule_at(2.0, [&] { ++count; });
  e.run_all();
  EXPECT_EQ(count, 1);
  e.run_all();
  EXPECT_EQ(count, 2);
}

TEST(Engine, CancelViaEngine) {
  Engine e;
  bool ran = false;
  auto h = e.schedule_at(1.0, [&] { ran = true; });
  EXPECT_TRUE(e.cancel(h));
  e.run_all();
  EXPECT_FALSE(ran);
}

TEST(Engine, ProcessedCount) {
  Engine e;
  for (int i = 0; i < 7; ++i) e.schedule_at(i, [] {});
  e.run_all();
  EXPECT_EQ(e.processed(), 7u);
}

TEST(Engine, NextEventTimePeeksWithoutMutating) {
  Engine e;
  e.schedule_at(5.0, [] {});
  auto h = e.schedule_at(2.0, [] {});
  // The peek path is const: repeated peeks see the same earliest event.
  const Engine& ce = e;
  EXPECT_DOUBLE_EQ(ce.next_event_time(), 2.0);
  EXPECT_DOUBLE_EQ(ce.next_event_time(), 2.0);
  EXPECT_EQ(e.pending(), 2u);
  // Cancelling the earliest event re-exposes the next one (true removal, so
  // the peek needs no dead-entry skipping).
  EXPECT_TRUE(e.cancel(h));
  EXPECT_DOUBLE_EQ(ce.next_event_time(), 5.0);
  e.run_all();
  EXPECT_DOUBLE_EQ(e.now(), 5.0);
}

TEST(Engine, DeterministicInterleaving) {
  auto run = [] {
    Engine e;
    std::vector<int> order;
    for (int i = 0; i < 20; ++i) {
      e.schedule_at(static_cast<double>(i % 3), [&order, i] { order.push_back(i); });
    }
    e.run_all();
    return order;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace dpjit::sim
