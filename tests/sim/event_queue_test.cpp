#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

namespace dpjit::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(3.0, [&] { fired.push_back(3); });
  q.schedule(1.0, [&] { fired.push_back(1); });
  q.schedule(2.0, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5.0, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  auto h = q.schedule(1.0, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(h));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue q;
  auto h = q.schedule(1.0, [] {});
  EXPECT_TRUE(q.cancel(h));
  EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueue, CancelledEventsSkippedOnPop) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(1.0, [&] { fired.push_back(1); });
  auto h = q.schedule(2.0, [&] { fired.push_back(2); });
  q.schedule(3.0, [&] { fired.push_back(3); });
  q.cancel(h);
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  auto h = q.schedule(1.0, [] {});
  q.schedule(5.0, [] {});
  q.cancel(h);
  EXPECT_DOUBLE_EQ(q.next_time(), 5.0);
}

TEST(EventQueue, SizeCountsLiveOnly) {
  EventQueue q;
  auto h = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(h);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, PopReturnsTime) {
  EventQueue q;
  q.schedule(7.5, [] {});
  auto [t, fn] = q.pop();
  EXPECT_DOUBLE_EQ(t, 7.5);
}

}  // namespace
}  // namespace dpjit::sim
