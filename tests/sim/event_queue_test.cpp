#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

namespace dpjit::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(3.0, [&] { fired.push_back(3); });
  q.schedule(1.0, [&] { fired.push_back(1); });
  q.schedule(2.0, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5.0, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  auto h = q.schedule(1.0, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(h));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue q;
  auto h = q.schedule(1.0, [] {});
  EXPECT_TRUE(q.cancel(h));
  EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueue, CancelledEventsSkippedOnPop) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(1.0, [&] { fired.push_back(1); });
  auto h = q.schedule(2.0, [&] { fired.push_back(2); });
  q.schedule(3.0, [&] { fired.push_back(3); });
  q.cancel(h);
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  auto h = q.schedule(1.0, [] {});
  q.schedule(5.0, [] {});
  q.cancel(h);
  EXPECT_DOUBLE_EQ(q.next_time(), 5.0);
}

TEST(EventQueue, SizeCountsLiveOnly) {
  EventQueue q;
  auto h = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(h);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, PopReturnsTime) {
  EventQueue q;
  q.schedule(7.5, [] {});
  auto [t, fn] = q.pop();
  EXPECT_DOUBLE_EQ(t, 7.5);
}

TEST(EventQueue, InvalidHandleIsNeverIssuedAndCancelsToFalse) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventQueue::kInvalidHandle));
  for (int i = 0; i < 100; ++i) {
    EXPECT_NE(q.schedule(1.0 * i, [] {}), EventQueue::kInvalidHandle);
  }
}

TEST(EventQueue, StaleHandleFromFiredEventIsRejected) {
  EventQueue q;
  auto h = q.schedule(1.0, [] {});
  q.pop().second();
  // The slot is free now; cancelling the fired event's handle must fail ...
  EXPECT_FALSE(q.cancel(h));
  // ... and must keep failing after the slot has been reused.
  bool ran = false;
  auto h2 = q.schedule(2.0, [&] { ran = true; });
  EXPECT_FALSE(q.cancel(h));
  EXPECT_NE(h, h2);
  q.pop().second();
  EXPECT_TRUE(ran);
}

TEST(EventQueue, StaleHandleFromCancelledEventIsRejectedAfterSlotReuse) {
  EventQueue q;
  auto h = q.schedule(1.0, [] {});
  EXPECT_TRUE(q.cancel(h));
  auto h2 = q.schedule(1.0, [] {});  // reuses the freed slot
  EXPECT_FALSE(q.cancel(h));         // generation check rejects the old handle
  EXPECT_TRUE(q.cancel(h2));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, FifoTieBreakSurvivesInterleavedCancels) {
  EventQueue q;
  std::vector<int> fired;
  std::vector<EventQueue::Handle> handles;
  for (int i = 0; i < 64; ++i) {
    handles.push_back(q.schedule(5.0, [&fired, i] { fired.push_back(i); }));
  }
  for (int i = 0; i < 64; i += 2) q.cancel(handles[static_cast<std::size_t>(i)]);
  while (!q.empty()) q.pop().second();
  std::vector<int> expected;
  for (int i = 1; i < 64; i += 2) expected.push_back(i);
  EXPECT_EQ(fired, expected);
}

TEST(EventQueue, CancelDestroysCallbackImmediately) {
  EventQueue q;
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> watch = token;
  auto h = q.schedule(1.0, [t = std::move(token)] { (void)*t; });
  EXPECT_FALSE(watch.expired());
  EXPECT_TRUE(q.cancel(h));
  // True removal: no tombstone keeps the capture alive until pop time.
  EXPECT_TRUE(watch.expired());
}

/// Differential test: the queue must agree with a trivially correct reference
/// model (ordered multimap) through a long random schedule/cancel/pop mix.
TEST(EventQueue, MatchesReferenceModelThroughRandomMix) {
  EventQueue q;
  // Reference: key = (time, seq) -> id; std::map iterates in pop order.
  std::map<std::pair<SimTime, std::uint64_t>, int> model;
  std::unordered_map<int, EventQueue::Handle> live_handles;
  std::uint64_t rng = 0x243f6a8885a308d3ULL;
  auto rand = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  std::vector<int> fired;
  std::uint64_t seq = 0;
  int next_id = 0;
  double now = 0.0;
  for (int step = 0; step < 20000; ++step) {
    const auto roll = rand() % 100;
    if (roll < 50 || model.empty()) {
      // Schedule (times collide often to stress the FIFO tie-break).
      const double t = now + static_cast<double>(rand() % 16);
      const int id = next_id++;
      live_handles[id] = q.schedule(t, [&fired, id] { fired.push_back(id); });
      model.emplace(std::make_pair(t, seq++), id);
    } else if (roll < 75) {
      // Cancel a random live event.
      auto it = model.begin();
      std::advance(it, static_cast<long>(rand() % model.size()));
      const int id = it->second;
      EXPECT_TRUE(q.cancel(live_handles.at(id)));
      live_handles.erase(id);
      model.erase(it);
    } else {
      // Pop; both must agree on which event fires.
      ASSERT_FALSE(q.empty());
      const auto expected = model.begin();
      fired.clear();
      auto [t, fn] = q.pop();
      fn();
      ASSERT_EQ(fired.size(), 1u);
      EXPECT_EQ(fired.front(), expected->second);
      EXPECT_DOUBLE_EQ(t, expected->first.first);
      now = t;
      live_handles.erase(expected->second);
      model.erase(expected);
    }
    ASSERT_EQ(q.size(), model.size());
  }
}

/// Cancel-heavy stress: a million schedule/cancel pairs must not grow the
/// slab (no tombstones by construction) and every freed handle must be
/// rejected. Run under ASan (ctest -L sim on the asan preset) this also
/// proves the cancelled callbacks' captures are destroyed exactly once.
TEST(EventQueueStress, MillionScheduleCancelKeepsMemoryBounded) {
  EventQueue q;
  constexpr int kLive = 512;
  std::vector<EventQueue::Handle> live;
  std::uint64_t rng = 0x9e3779b97f4a7c15ULL;
  auto rand = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int i = 0; i < kLive; ++i) {
    live.push_back(q.schedule(static_cast<double>(rand() % 1000000), [] {}));
  }
  std::vector<EventQueue::Handle> stale;
  for (int i = 0; i < 1000000; ++i) {
    const std::size_t victim = rand() % live.size();
    ASSERT_TRUE(q.cancel(live[victim]));
    stale.push_back(live[victim]);
    live[victim] = q.schedule(static_cast<double>(rand() % 1000000), [] {});
    if (stale.size() >= 64) {
      // Freed-slot handles must all be dead, however the slots were reused.
      for (auto h : stale) ASSERT_FALSE(q.cancel(h));
      stale.clear();
    }
  }
  EXPECT_EQ(q.size(), static_cast<std::size_t>(kLive));
  // Bounded by construction: slots are reused, never accumulated. (The old
  // lazy-cancel design kept one tombstone per cancel - a million of them.)
  EXPECT_LE(q.slot_capacity(), static_cast<std::size_t>(kLive) + 1);
  while (!q.empty()) q.pop();
}

}  // namespace
}  // namespace dpjit::sim
