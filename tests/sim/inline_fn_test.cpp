#include "sim/inline_fn.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <functional>
#include <memory>
#include <string>

namespace dpjit::sim {
namespace {

/// Counts allocations made through global new while alive.
struct AllocCounter {
  static inline std::size_t allocs = 0;
};

struct CountingProbe {
  // 40 bytes of payload: fits the 48-byte SBO.
  std::uint64_t payload[5] = {1, 2, 3, 4, 5};
  void* operator new(std::size_t n) {
    ++AllocCounter::allocs;
    return ::operator new(n);
  }
  void operator delete(void* p) { ::operator delete(p); }
  std::uint64_t operator()() const { return payload[0] + payload[4]; }
};

TEST(InlineFn, EmptyByDefaultAndThrowsOnCall) {
  InlineFn f;
  EXPECT_FALSE(static_cast<bool>(f));
  EXPECT_THROW(f(), std::bad_function_call);
}

TEST(InlineFn, InvokesSmallLambdaAndReturnsValues) {
  int hits = 0;
  InlineFn f = [&hits] { ++hits; };
  ASSERT_TRUE(static_cast<bool>(f));
  f();
  f();
  EXPECT_EQ(hits, 2);

  InlineFunction<int(int, int)> add = [](int a, int b) { return a + b; };
  EXPECT_EQ(add(2, 3), 5);
}

TEST(InlineFn, CapacityIsAtLeast48Bytes) {
  static_assert(kInlineFnCapacity >= 48);
  // A this-pointer plus five words of captures must stay inline.
  struct Big {
    void* self;
    double a, b, c, d;
  };
  static_assert(sizeof(Big) <= kInlineFnCapacity);
}

TEST(InlineFn, TypicalCapturesDoNotAllocate) {
  // CountingProbe's class-specific operator new counts heap fallbacks; the
  // 40-byte callable must be stored inline, so the count stays zero.
  AllocCounter::allocs = 0;
  InlineFunction<std::uint64_t()> f = CountingProbe{};
  EXPECT_EQ(f(), 6u);
  InlineFunction<std::uint64_t()> g = std::move(f);
  EXPECT_EQ(g(), 6u);
  EXPECT_EQ(AllocCounter::allocs, 0u);
}

TEST(InlineFn, OversizedCapturesFallBackToHeapAndStillWork) {
  struct Huge {
    std::uint64_t words[16] = {};  // 128 bytes: exceeds the SBO
    std::uint64_t operator()() const { return words[0] + words[15]; }
  };
  static_assert(sizeof(Huge) > kInlineFnCapacity);
  Huge h;
  h.words[0] = 40;
  h.words[15] = 2;
  InlineFunction<std::uint64_t()> f = h;
  EXPECT_EQ(f(), 42u);
  InlineFunction<std::uint64_t()> g = std::move(f);
  EXPECT_FALSE(static_cast<bool>(f));  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(g(), 42u);
}

TEST(InlineFn, MoveTransfersStateAndDestroysCaptures) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  {
    InlineFn f = [t = std::move(token)] { (void)*t; };
    InlineFn g = std::move(f);
    EXPECT_FALSE(static_cast<bool>(f));  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(static_cast<bool>(g));
    EXPECT_FALSE(watch.expired());
    g();
  }
  // Destruction of the wrapper destroys the capture exactly once.
  EXPECT_TRUE(watch.expired());
}

TEST(InlineFn, MoveAssignmentReleasesPreviousCallable) {
  auto first = std::make_shared<int>(1);
  std::weak_ptr<int> watch_first = first;
  InlineFn f = [t = std::move(first)] { (void)*t; };
  f = [] {};
  EXPECT_TRUE(watch_first.expired());
  f = nullptr;
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(InlineFn, WrapsMutableCallablesAndArguments) {
  InlineFunction<int()> counter = [n = 0]() mutable { return ++n; };
  EXPECT_EQ(counter(), 1);
  EXPECT_EQ(counter(), 2);

  InlineFunction<void(std::uint64_t)> cycle_fn;
  std::uint64_t seen = 0;
  cycle_fn = [&seen](std::uint64_t c) { seen = c; };
  cycle_fn(41);
  EXPECT_EQ(seen, 41u);
}

TEST(InlineFn, VoidSignatureDiscardsReturnValuesLikeStdFunction) {
  int count = 0;
  InlineFn f = [&count] { return ++count; };  // int-returning callable in a void slot
  f();
  f();
  EXPECT_EQ(count, 2);
  struct Huge {
    std::uint64_t pad[16] = {};
    int n = 0;
    int operator()() { return ++n; }
  };
  InlineFn g = Huge{};  // heap-fallback path discards too
  g();
}

TEST(InlineFn, WrapsACopyOfAStdFunctionLvalue) {
  // Call sites occasionally pass a named std::function (e.g. a self-
  // rescheduling chain); the wrapper must copy it, not dangle.
  int hits = 0;
  std::function<void()> chain = [&hits] { ++hits; };
  InlineFn f = chain;
  chain = nullptr;
  f();
  EXPECT_EQ(hits, 1);
}

}  // namespace
}  // namespace dpjit::sim
