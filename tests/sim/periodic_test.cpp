#include "sim/periodic.hpp"

#include <gtest/gtest.h>

#include "sim/trace.hpp"

namespace dpjit::sim {
namespace {

TEST(Periodic, FiresAtFixedInterval) {
  Engine e;
  std::vector<double> times;
  PeriodicProcess p(e, 10.0, 5.0, [&](std::uint64_t) { times.push_back(e.now()); });
  p.start();
  e.run_until(27.0);
  EXPECT_EQ(times, (std::vector<double>{10.0, 15.0, 20.0, 25.0}));
}

TEST(Periodic, CycleIndicesIncrease) {
  Engine e;
  std::vector<std::uint64_t> cycles;
  PeriodicProcess p(e, 0.0, 1.0, [&](std::uint64_t c) { cycles.push_back(c); });
  p.start();
  e.run_until(3.5);
  EXPECT_EQ(cycles, (std::vector<std::uint64_t>{0, 1, 2, 3}));
  EXPECT_EQ(p.cycles_run(), 4u);
}

TEST(Periodic, StopHaltsFutureCycles) {
  Engine e;
  int count = 0;
  PeriodicProcess p(e, 0.0, 1.0, [&](std::uint64_t) {
    if (++count == 3) p.stop();
  });
  p.start();
  e.run_until(100.0);
  EXPECT_EQ(count, 3);
  EXPECT_FALSE(p.running());
}

TEST(Periodic, StartIsIdempotent) {
  Engine e;
  int count = 0;
  PeriodicProcess p(e, 0.0, 1.0, [&](std::uint64_t) { ++count; });
  p.start();
  p.start();
  e.run_until(2.5);
  EXPECT_EQ(count, 3);  // t = 0, 1, 2 - not doubled
}

TEST(Periodic, DestructionCancels) {
  Engine e;
  int count = 0;
  {
    PeriodicProcess p(e, 0.0, 1.0, [&](std::uint64_t) { ++count; });
    p.start();
    e.run_until(1.5);
  }
  e.run_until(10.0);
  EXPECT_EQ(count, 2);
}

TEST(Periodic, RejectsNonPositiveInterval) {
  Engine e;
  EXPECT_THROW(PeriodicProcess(e, 0.0, 0.0, [](std::uint64_t) {}), std::invalid_argument);
}

TEST(Periodic, StartInThePastBeginsNow) {
  Engine e;
  e.schedule_at(50.0, [] {});
  e.run_all();
  std::vector<double> times;
  PeriodicProcess p(e, 10.0, 5.0, [&](std::uint64_t) { times.push_back(e.now()); });
  p.start();  // start time 10 < now 50: first cycle at now
  e.run_until(60.0);
  ASSERT_FALSE(times.empty());
  EXPECT_DOUBLE_EQ(times.front(), 50.0);
}

TEST(Trace, RecordsOnlyWhenEnabled) {
  Trace t;
  t.record(1.0, TraceKind::kDispatch, NodeId{1});
  EXPECT_TRUE(t.records().empty());
  t.enable(true);
  t.record(2.0, TraceKind::kDispatch, NodeId{1}, TaskRef{WorkflowId{0}, TaskIndex{1}}, "x");
  EXPECT_EQ(t.records().size(), 1u);
  EXPECT_EQ(t.count(TraceKind::kDispatch), 1u);
  EXPECT_EQ(t.count(TraceKind::kExecEnd), 0u);
}

TEST(Trace, PrintProducesLines) {
  Trace t;
  t.enable(true);
  t.record(1.0, TraceKind::kExecStart, NodeId{3}, TaskRef{WorkflowId{2}, TaskIndex{4}});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("EXEC_START"), std::string::npos);
  EXPECT_NE(os.str().find("node=3"), std::string::npos);
}

}  // namespace
}  // namespace dpjit::sim
