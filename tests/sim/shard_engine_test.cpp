// The conservative time-window contract of ShardEngine: windows respect the
// lookahead, ALL messages (cross-shard and self alike) deliver in one global
// (time, key) order per barrier, and results are byte-identical at any shard
// count and any worker-thread count. These are the properties the scale/*
// scenarios and the shard-determinism CI job build on.
#include "sim/shard_engine.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <limits>
#include <stdexcept>
#include <vector>

namespace dpjit::sim {
namespace {

TEST(ShardEngine, CtorRejectsBadArguments) {
  EXPECT_THROW(ShardEngine(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ShardEngine(-3, 1.0), std::invalid_argument);
  EXPECT_THROW(ShardEngine(1, 0.0), std::invalid_argument);
  EXPECT_THROW(ShardEngine(1, -0.5), std::invalid_argument);
  EXPECT_THROW(ShardEngine(1, std::numeric_limits<double>::infinity()), std::invalid_argument);
  EXPECT_THROW(ShardEngine(1, std::numeric_limits<double>::quiet_NaN()), std::invalid_argument);
  EXPECT_NO_THROW(ShardEngine(1, 1e-9));
}

TEST(ShardEngine, SeedsRunInTimeThenKeyOrderNotCallOrder) {
  ShardEngine e(1, 1.0);
  std::vector<int> order;
  // Deliberately seeded out of time order, and with same-time keys reversed
  // relative to call order.
  e.seed(0, 5.0, /*key=*/7, [&] { order.push_back(3); });
  e.seed(0, 2.0, /*key=*/9, [&] { order.push_back(2); });
  e.seed(0, 2.0, /*key=*/4, [&] { order.push_back(1); });
  e.run_until(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.processed(), 3u);
  EXPECT_TRUE(e.idle());
}

TEST(ShardEngine, EventsAtHorizonRunAndClocksAdvance) {
  ShardEngine e(2, 1.0);
  std::vector<double> fired;
  e.seed(0, 1.0, 1, [&] { fired.push_back(1.0); });
  e.seed(1, 2.0, 2, [&] { fired.push_back(2.0); });
  e.seed(0, 3.0, 3, [&] { fired.push_back(3.0); });
  e.run_until(2.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(e.now(0), 2.0);
  EXPECT_DOUBLE_EQ(e.now(1), 2.0);
  EXPECT_FALSE(e.idle());
  e.run_until(10.0);
  EXPECT_EQ(fired.size(), 3u);
  EXPECT_DOUBLE_EQ(e.now(0), 10.0);
  EXPECT_TRUE(e.idle());
}

TEST(ShardEngine, SeedRejectsNegativeTimeAndOutOfRangeShard) {
  ShardEngine e(2, 1.0);
  EXPECT_THROW(e.seed(0, -1.0, 1, [] {}), std::logic_error);
  EXPECT_THROW(e.seed(2, 1.0, 1, [] {}), std::out_of_range);
  EXPECT_THROW(e.seed(-1, 1.0, 1, [] {}), std::out_of_range);
}

TEST(ShardEngine, SeedAfterRunStartsThrows) {
  ShardEngine e(1, 1.0);
  e.seed(0, 1.0, 1, [] {});
  e.run_until(2.0);
  EXPECT_THROW(e.seed(0, 5.0, 2, [] {}), std::logic_error);
}

TEST(ShardEngine, PostBelowLookaheadThrows) {
  ShardEngine e(1, 1.0);
  bool exact_ok = false;
  e.seed(0, 5.0, 1, [&] {
    // Arrival inside the sender's current window: conservative violation.
    EXPECT_THROW(e.post(0, 0, 5.5, 2, [] {}), std::logic_error);
    EXPECT_THROW(e.post(0, 0, 4.0, 3, [] {}), std::logic_error);
    // Exactly now + window is the tight legal bound.
    e.post(0, 0, 6.0, 4, [&] { exact_ok = true; });
  });
  e.run_until(10.0);
  EXPECT_TRUE(exact_ok);
}

/// Runs the same 3-peer choreography at a given shard count: peers 1 and 2
/// (mapped to different shards when possible) each send peer 0 a message
/// arriving at the SAME time, with keys ordered OPPOSITE to the senders'
/// execution order. The delivery order must follow the keys — and therefore
/// be identical at every shard count.
std::vector<int> run_tie_choreography(int shards) {
  ShardEngine e(shards, 1.0);
  auto shard_of = [&](int peer) { return peer % shards; };
  std::vector<int> delivered;
  // Sender 1 executes first (earlier seed time) but uses the LARGER key.
  e.seed(shard_of(1), 1.0, 10, [&] {
    e.post(shard_of(1), shard_of(0), 3.0, /*key=*/200, [&] { delivered.push_back(1); });
  });
  e.seed(shard_of(2), 1.5, 11, [&] {
    e.post(shard_of(2), shard_of(0), 3.0, /*key=*/100, [&] { delivered.push_back(2); });
  });
  e.run_until(5.0);
  return delivered;
}

TEST(ShardEngine, SameTimeCrossShardMessagesDeliverInKeyOrder) {
  const std::vector<int> expect{2, 1};  // key 100 before key 200
  EXPECT_EQ(run_tie_choreography(1), expect);
  EXPECT_EQ(run_tie_choreography(2), expect);
  EXPECT_EQ(run_tie_choreography(3), expect);
}

TEST(ShardEngine, SelfMessagesTakeTheSameSortedPath) {
  // Intra-shard sends must not bypass the barrier sort, or 1-shard and
  // n-shard runs would disagree on tie order.
  ShardEngine e(1, 1.0);
  std::vector<int> delivered;
  e.seed(0, 1.0, 1, [&] {
    e.post(0, 0, 4.0, /*key=*/300, [&] { delivered.push_back(300); });
    e.post(0, 0, 4.0, /*key=*/100, [&] { delivered.push_back(100); });
    e.post(0, 0, 4.0, /*key=*/200, [&] { delivered.push_back(200); });
  });
  e.run_until(5.0);
  EXPECT_EQ(delivered, (std::vector<int>{100, 200, 300}));
}

/// Deterministic mini-model for invariance checks: P peers on a ring, each
/// event folds into the OWNING peer's hash only (the scale-model state rule)
/// and forwards to two neighbours after a delay >= the window. Returns the
/// per-peer order hashes plus the engine's window count.
struct MiniRun {
  std::vector<std::uint64_t> hashes;
  std::uint64_t windows = 0;
  std::uint64_t parallel_windows = 0;
  std::uint64_t processed = 0;
};

MiniRun run_mini_model(int shards, int threads, std::size_t threshold) {
  constexpr int kPeers = 24;
  constexpr double kWindow = 0.5;
  ShardEngine e(shards, kWindow);
  e.set_threads(threads);
  e.set_parallel_threshold(threshold);

  struct Peer {
    std::uint64_t hash = 1469598103934665603ULL;
    std::uint64_t seq = 0;
    int hops_left = 0;
  };
  std::vector<Peer> peers(kPeers);
  auto shard_of = [&](int peer) { return peer % shards; };
  auto key = [&](int peer) {
    return (static_cast<std::uint64_t>(peer) << 32) | peers[static_cast<std::size_t>(peer)].seq++;
  };

  // fold + forward; the closure only ever touches peers[i].
  std::function<void(int, double, int)> arrive = [&](int i, double t, int hops) {
    Peer& p = peers[static_cast<std::size_t>(i)];
    p.hash = (p.hash ^ static_cast<std::uint64_t>(t * 1e6)) * 1099511628211ULL;
    p.hash = (p.hash ^ static_cast<std::uint64_t>(hops)) * 1099511628211ULL;
    if (hops <= 0) return;
    for (const int step : {1, 3}) {
      const int to = (i + step) % kPeers;
      const double at = t + kWindow + 0.25 * step;
      e.post(shard_of(i), shard_of(to), at, key(i),
             [&arrive, to, at, hops] { arrive(to, at, hops - 1); });
    }
  };

  for (int i = 0; i < kPeers; ++i) {
    const double t0 = 0.125 * i;
    e.seed(shard_of(i), t0, key(i), [&arrive, i, t0] { arrive(i, t0, 6); });
  }
  e.run_until(60.0);

  MiniRun out;
  for (const Peer& p : peers) out.hashes.push_back(p.hash);
  out.windows = e.windows();
  out.parallel_windows = e.parallel_windows();
  out.processed = e.processed();
  return out;
}

TEST(ShardEngine, ResultsInvariantAcrossShardAndThreadCounts) {
  const MiniRun base = run_mini_model(1, 1, 2048);
  ASSERT_GT(base.processed, 24u * 50u);  // the cascade actually ran
  for (const int shards : {2, 3, 4, 8, 24}) {
    for (const int threads : {1, 2, 4}) {
      // Threshold 0 forces EVERY window through the worker-pool path.
      const MiniRun run = run_mini_model(shards, threads, 0);
      EXPECT_EQ(run.hashes, base.hashes) << "shards=" << shards << " threads=" << threads;
      EXPECT_EQ(run.processed, base.processed) << "shards=" << shards << " threads=" << threads;
      // The window sequence itself is shard-invariant (it depends only on
      // event times), which is what makes the above possible.
      EXPECT_EQ(run.windows, base.windows) << "shards=" << shards << " threads=" << threads;
      if (threads > 1) {
        EXPECT_GT(run.parallel_windows, 0u)
            << "forced threshold should exercise the pool (shards=" << shards
            << " threads=" << threads << ")";
      }
    }
  }
}

TEST(ShardEngine, SingleNodeShardsAndAllInOneShardAgree) {
  // The two partition extremes of the lookahead edge cases: every peer its
  // own shard vs everything in one shard.
  const MiniRun one = run_mini_model(1, 2, 0);
  const MiniRun finest = run_mini_model(24, 2, 0);
  EXPECT_EQ(one.hashes, finest.hashes);
  EXPECT_EQ(one.windows, finest.windows);
}

TEST(ShardEngine, ExceptionInParallelWindowPropagates) {
  ShardEngine e(2, 1.0);
  e.set_threads(2);
  e.set_parallel_threshold(0);
  // Enough payload that both shards participate, one event throwing.
  for (int i = 0; i < 8; ++i) {
    e.seed(i % 2, 1.0 + i, static_cast<std::uint64_t>(i), [] {});
  }
  e.seed(0, 3.0, 100, [] { throw std::runtime_error("boom"); });
  EXPECT_THROW(e.run_until(20.0), std::runtime_error);
  // The pool must have been shut down cleanly: destruction cannot hang.
}

TEST(ShardEngine, AccountingCoversQueuesOutboxesAndSeeds) {
  ShardEngine e(2, 1.0);
  EXPECT_TRUE(e.idle());
  e.seed(0, 1.0, 1, [] {});
  e.seed(1, 2.0, 2, [] {});
  EXPECT_FALSE(e.idle());
  EXPECT_EQ(e.pending(), 2u);
  e.run_until(0.5);  // a window boundary before any event
  EXPECT_EQ(e.pending(), 2u);
  EXPECT_EQ(e.processed(), 0u);
  e.run_until(10.0);
  EXPECT_EQ(e.processed(), 2u);
  EXPECT_EQ(e.pending(), 0u);
  EXPECT_TRUE(e.idle());
}

}  // namespace
}  // namespace dpjit::sim
