// Shard-determinism of the scale model end to end: the same parameters must
// produce byte-identical results (including every peer's event-ORDER hash) at
// any shard count and any thread count, with churn, transfers and gossip all
// crossing shard boundaries. Plus the lookahead edge cases: zero-latency
// backbones, a zero LAN floor, single-peer regions and the one-shard limit.
#include "exp/scale_model.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "exp/workload_factory.hpp"

namespace dpjit::exp {
namespace {

/// Small but busy configuration: every interaction type active, a few hundred
/// peers over 8 regions, churn on.
ScaleParams busy_params() {
  ScaleParams p;
  p.peers = 400;
  p.regions = 8;
  p.horizon_s = 900.0;
  p.gossip_period_s = 60.0;
  p.task_period_s = 120.0;
  p.transfer_period_s = 90.0;
  p.mean_lifetime_s = 300.0;
  p.mean_downtime_s = 60.0;
  p.seed = 7;
  return p;
}

TEST(ScaleModel, DigestInvariantAcrossShardsAndThreads) {
  ScaleParams base = busy_params();
  const ScaleResult serial = run_scale_model(base);
  ASSERT_GT(serial.events_processed, 10000u);
  ASSERT_GT(serial.tasks_completed, 0u);
  ASSERT_GT(serial.transfers_completed, 0u);
  ASSERT_GT(serial.gossip_merged, 0u);
  ASSERT_GT(serial.churn_departures, 0u);
  const std::uint64_t want = scale_digest(serial);

  for (const int shards : {2, 4, 5, 8}) {
    for (const int threads : {1, 2}) {
      ScaleParams p = base;
      p.shards = shards;
      p.threads = threads;
      p.parallel_threshold = 0;  // force every window onto the worker pool
      const ScaleResult r = run_scale_model(p);
      EXPECT_EQ(scale_digest(r), want) << "shards=" << shards << " threads=" << threads;
      EXPECT_EQ(r.state_digest, serial.state_digest)
          << "per-peer event order diverged at shards=" << shards << " threads=" << threads;
      EXPECT_EQ(r.events_processed, serial.events_processed);
      EXPECT_EQ(r.windows, serial.windows) << "window sequence must be shard-invariant";
      if (threads > 1 && shards > 1) {
        EXPECT_GT(r.parallel_windows, 0u) << "pool path not exercised";
      }
    }
  }
}

TEST(ScaleModel, ShardCountClampsToRegions) {
  ScaleParams p = busy_params();
  p.shards = 64;  // more shards than regions
  const ScaleResult r = run_scale_model(p);
  EXPECT_EQ(r.shards, 8);
  EXPECT_EQ(scale_digest(r), scale_digest(run_scale_model(busy_params())));
}

TEST(ScaleModel, SinglePeerRegionsAgreeWithOneShard) {
  // Finest partition: every peer its own region AND its own shard.
  ScaleParams p;
  p.peers = 24;
  p.regions = 24;
  p.horizon_s = 600.0;
  p.gossip_period_s = 60.0;
  p.task_period_s = 90.0;
  p.transfer_period_s = 75.0;
  p.seed = 11;

  ScaleParams finest = p;
  finest.shards = 24;
  finest.threads = 2;
  finest.parallel_threshold = 0;
  ScaleParams one = p;
  one.shards = 1;

  const ScaleResult a = run_scale_model(one);
  const ScaleResult b = run_scale_model(finest);
  ASSERT_GT(a.events_processed, 500u);
  EXPECT_EQ(scale_digest(a), scale_digest(b));
  EXPECT_EQ(b.shards, 24);
}

TEST(ScaleModel, ZeroLatencyBackboneStillDeterministic) {
  // A backbone whose every link has zero propagation latency: the routed
  // inter-region latencies collapse to 0 and every delay rides the LAN-floor
  // clamp. Digests must still match across shard counts.
  ScaleParams p = busy_params();
  p.backbone.latency_per_unit = 0.0;
  const std::uint64_t want = scale_digest(run_scale_model(p));
  for (const int shards : {2, 8}) {
    ScaleParams q = p;
    q.shards = shards;
    q.threads = 2;
    q.parallel_threshold = 0;
    EXPECT_EQ(scale_digest(run_scale_model(q)), want) << "shards=" << shards;
  }
}

TEST(ScaleModel, ZeroLanFloorFallsBackToQuantumWindow) {
  ScaleParams p = busy_params();
  p.horizon_s = 120.0;  // the 1 us window makes windows plentiful; keep short
  p.intra_region_latency_s = 0.0;
  const ScaleResult a = run_scale_model(p);
  EXPECT_DOUBLE_EQ(a.window_s, 1e-6);
  ScaleParams q = p;
  q.shards = 4;
  const ScaleResult b = run_scale_model(q);
  EXPECT_EQ(scale_digest(a), scale_digest(b));
}

TEST(ScaleModel, ChurnActuallyCrossesShards) {
  // Sanity on the churn path itself: departures notify contacts (who may sit
  // in other shards), rejoins re-announce, work at departed peers drops.
  const ScaleResult r = run_scale_model(busy_params());
  EXPECT_GT(r.churn_departures, 10u);
  EXPECT_GT(r.churn_rejoins, 0u);
  EXPECT_GT(r.dropped_messages, 0u);
}

TEST(ScaleModel, ValidatesParameters) {
  auto reject = [](void (*mutate)(ScaleParams&)) {
    ScaleParams p;
    mutate(p);
    EXPECT_THROW((void)run_scale_model(p), std::invalid_argument);
  };
  reject([](ScaleParams& p) { p.peers = 0; });
  reject([](ScaleParams& p) { p.horizon_s = 0.0; });
  reject([](ScaleParams& p) { p.gossip_period_s = -1.0; });
  reject([](ScaleParams& p) {
    p.min_data_mb = 10.0;
    p.max_data_mb = 1.0;
  });
  reject([](ScaleParams& p) {
    p.mean_lifetime_s = 100.0;
    p.mean_downtime_s = 0.0;
  });
}

TEST(ScaleModel, ParamsFromConfigMapsTheAnalogueKnobs) {
  ExperimentConfig c;
  c.nodes = 5000;
  c.system.horizon_s = 7200.0;
  c.system.gossip.cycle_s = 240.0;
  c.system.scheduling_interval_s = 600.0;
  c.system.bootstrap_contacts = 6;
  c.set_load_range(50.0, 500.0);
  c.set_data_range(2.0, 20.0);
  c.dynamic_factor = 0.5;
  c.routing_threads = 3;
  c.seed = 99;

  const ScaleParams p = scale_params_from_config(c);
  EXPECT_EQ(p.peers, 5000);
  EXPECT_DOUBLE_EQ(p.horizon_s, 7200.0);
  EXPECT_DOUBLE_EQ(p.gossip_period_s, 240.0);
  EXPECT_DOUBLE_EQ(p.task_period_s, 600.0);
  EXPECT_DOUBLE_EQ(p.transfer_period_s, 400.0);
  EXPECT_DOUBLE_EQ(p.min_load_mi, 50.0);
  EXPECT_DOUBLE_EQ(p.max_load_mi, 500.0);
  EXPECT_DOUBLE_EQ(p.min_data_mb, 2.0);
  EXPECT_DOUBLE_EQ(p.max_data_mb, 20.0);
  EXPECT_DOUBLE_EQ(p.mean_lifetime_s, 7200.0);  // 3600 / 0.5
  EXPECT_EQ(p.contacts, 6);
  EXPECT_EQ(p.threads, 3);
  EXPECT_EQ(p.seed, 99u);
}

TEST(ScaleModel, SeedChangesResults) {
  ScaleParams a = busy_params();
  ScaleParams b = busy_params();
  b.seed = a.seed + 1;
  EXPECT_NE(scale_digest(run_scale_model(a)), scale_digest(run_scale_model(b)));
}

}  // namespace
}  // namespace dpjit::exp
