#include "exp/trace_analysis.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "exp/workload_factory.hpp"

namespace dpjit::exp {
namespace {

TaskRef task(int wf, int t) { return TaskRef{WorkflowId{wf}, TaskIndex{t}}; }

sim::Trace synthetic_trace() {
  sim::Trace trace;
  trace.enable(true);
  // Node 1 runs two tasks (10 s and 30 s busy), node 2 runs one 60 s task.
  trace.record(0.0, sim::TraceKind::kDispatch, NodeId{1}, task(0, 0));
  trace.record(5.0, sim::TraceKind::kExecStart, NodeId{1}, task(0, 0));
  trace.record(15.0, sim::TraceKind::kExecEnd, NodeId{1}, task(0, 0));
  trace.record(10.0, sim::TraceKind::kDispatch, NodeId{1}, task(0, 1));
  trace.record(20.0, sim::TraceKind::kExecStart, NodeId{1}, task(0, 1));
  trace.record(50.0, sim::TraceKind::kExecEnd, NodeId{1}, task(0, 1));
  trace.record(0.0, sim::TraceKind::kDispatch, NodeId{2}, task(1, 0));
  trace.record(0.0, sim::TraceKind::kExecStart, NodeId{2}, task(1, 0));
  trace.record(60.0, sim::TraceKind::kExecEnd, NodeId{2}, task(1, 0));
  trace.record(60.0, sim::TraceKind::kWorkflowDone, NodeId{0}, task(1, 0));
  return trace;
}

TEST(TraceAnalysis, NodeUsageAggregatesBusyTime) {
  const auto trace = synthetic_trace();
  const auto usage = node_usage(trace, 100.0);
  ASSERT_EQ(usage.size(), 2u);
  EXPECT_EQ(usage[0].node, NodeId{1});
  EXPECT_EQ(usage[0].tasks_executed, 2u);
  EXPECT_DOUBLE_EQ(usage[0].busy_s, 40.0);
  EXPECT_DOUBLE_EQ(usage[0].utilization, 0.4);
  EXPECT_EQ(usage[1].node, NodeId{2});
  EXPECT_DOUBLE_EQ(usage[1].busy_s, 60.0);
}

TEST(TraceAnalysis, SummaryCountsAndWaits) {
  const auto trace = synthetic_trace();
  const auto s = summarize_trace(trace, 100.0);
  EXPECT_EQ(s.tasks_dispatched, 3u);
  EXPECT_EQ(s.tasks_executed, 3u);
  EXPECT_EQ(s.workflows_finished, 1u);
  EXPECT_EQ(s.active_nodes, 2u);
  EXPECT_DOUBLE_EQ(s.max_utilization, 0.6);
  EXPECT_DOUBLE_EQ(s.mean_utilization, 0.5);
  // Waits: 5, 10, 0 -> mean 5.
  EXPECT_DOUBLE_EQ(s.mean_queue_wait_s, 5.0);
  // Fairness: (40+60)^2 / (2*(1600+3600)) = 10000/10400.
  EXPECT_NEAR(s.busy_fairness, 10000.0 / 10400.0, 1e-12);
}

TEST(TraceAnalysis, EmptyTraceIsSafe) {
  sim::Trace trace;
  const auto s = summarize_trace(trace, 10.0);
  EXPECT_EQ(s.active_nodes, 0u);
  EXPECT_DOUBLE_EQ(s.mean_utilization, 0.0);
  EXPECT_DOUBLE_EQ(s.busy_fairness, 1.0);
}

TEST(TraceAnalysis, HorizonMustBePositive) {
  sim::Trace trace;
  EXPECT_THROW(node_usage(trace, 0.0), std::invalid_argument);
}

TEST(TraceAnalysis, ReportPrintsTables) {
  const auto trace = synthetic_trace();
  std::ostringstream os;
  print_trace_report(os, trace, 100.0, 5);
  const auto out = os.str();
  EXPECT_NE(out.find("busiest nodes"), std::string::npos);
  EXPECT_NE(out.find("utilization"), std::string::npos);
}

TEST(TraceAnalysis, RealRunProducesConsistentNumbers) {
  ExperimentConfig cfg;
  cfg.algorithm = "dsmf";
  cfg.nodes = 16;
  cfg.workflows_per_node = 2;
  cfg.workflow.max_tasks = 10;
  cfg.workflow.min_data_mb = 10;
  cfg.workflow.max_data_mb = 100;
  cfg.seed = 19;
  World world(cfg);
  world.system().trace().enable(true);
  world.run();
  const auto s = summarize_trace(world.system().trace(), cfg.system.horizon_s);
  EXPECT_EQ(s.tasks_dispatched, world.system().tasks_dispatched());
  EXPECT_EQ(s.workflows_finished, world.system().finished_workflows());
  EXPECT_GT(s.mean_utilization, 0.0);
  EXPECT_LE(s.max_utilization, 1.0);
  EXPECT_GT(s.busy_fairness, 0.0);
  EXPECT_LE(s.busy_fairness, 1.0 + 1e-12);
}

}  // namespace
}  // namespace dpjit::exp
