#include "exp/reporters.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "exp/sweep.hpp"

namespace dpjit::exp {
namespace {

ExperimentResult fake(const std::string& algo, double act, double ae) {
  ExperimentResult r;
  r.algorithm = algo;
  r.workflows_submitted = 10;
  r.workflows_finished = 9;
  r.act = act;
  r.ae = ae;
  r.mean_response = act + 100;
  r.throughput = {{3600, 4}, {7200, 9}};
  r.act_over_time = {{3600, act * 0.9}, {7200, act}};
  r.ae_over_time = {{3600, ae * 1.1}, {7200, ae}};
  return r;
}

TEST(Reporters, SummaryTableContainsAllAlgorithms) {
  std::ostringstream os;
  print_summary_table(os, {fake("dsmf", 1000, 0.5), fake("smf", 900, 0.6)});
  const auto out = os.str();
  EXPECT_NE(out.find("dsmf"), std::string::npos);
  EXPECT_NE(out.find("smf"), std::string::npos);
  EXPECT_NE(out.find("ACT(s)"), std::string::npos);
  EXPECT_NE(out.find("1000"), std::string::npos);
}

TEST(Reporters, TimeSeriesSelectsRequestedCurve) {
  std::ostringstream thr, act, ae;
  const std::vector<ExperimentResult> results{fake("dsmf", 1000, 0.5)};
  print_time_series(thr, results, "throughput");
  print_time_series(act, results, "act");
  print_time_series(ae, results, "ae");
  EXPECT_NE(thr.str().find("4"), std::string::npos);
  EXPECT_NE(act.str().find("900"), std::string::npos);
  EXPECT_NE(ae.str().find("0.55"), std::string::npos);
}

TEST(Reporters, TimeSeriesUnknownCurveThrows) {
  std::ostringstream os;
  EXPECT_THROW(print_time_series(os, {fake("a", 1, 1)}, "nope"), std::invalid_argument);
}

TEST(Reporters, TimeSeriesCustomLabels) {
  std::ostringstream os;
  print_time_series(os, {fake("dsmf", 1, 1), fake("dsmf", 2, 2)}, "act", {"df=0.1", "df=0.2"});
  EXPECT_NE(os.str().find("df=0.1"), std::string::npos);
  EXPECT_NE(os.str().find("df=0.2"), std::string::npos);
}

TEST(Reporters, TimeSeriesEmptyResultsNoOutput) {
  std::ostringstream os;
  print_time_series(os, {}, "act");
  EXPECT_TRUE(os.str().empty());
}

TEST(Reporters, CsvEmitsHeaderAndRows) {
  std::ostringstream os;
  write_time_series_csv(os, {fake("dsmf", 1000, 0.5)}, "throughput");
  const auto out = os.str();
  EXPECT_EQ(out.substr(0, 10), "hour,dsmf\n");
  EXPECT_NE(out.find("1,4"), std::string::npos);
  EXPECT_NE(out.find("2,9"), std::string::npos);
}

TEST(Reporters, SweepTableAlignsSeries) {
  std::ostringstream os;
  print_sweep_table(os, "load_factor", {"1", "2"}, {"dsmf", "smf"},
                    {{100.0, 200.0}, {90.0, 210.0}});
  const auto out = os.str();
  EXPECT_NE(out.find("load_factor"), std::string::npos);
  EXPECT_NE(out.find("210"), std::string::npos);
}

TEST(Sweep, AcrossAlgorithmsCoversPaperSet) {
  ExperimentConfig base;
  base.nodes = 10;
  const auto configs = across_algorithms(base);
  EXPECT_EQ(configs.size(), 8u);
  for (const auto& c : configs) EXPECT_EQ(c.nodes, 10);
  EXPECT_EQ(configs.front().algorithm, "dheft");
  EXPECT_EQ(configs.back().algorithm, "smf");
}

TEST(Sweep, RunSweepPreservesOrderAndDeterminism) {
  ExperimentConfig a;
  a.algorithm = "dsmf";
  a.nodes = 12;
  a.workflows_per_node = 1;
  a.workflow.max_tasks = 6;
  a.seed = 5;
  ExperimentConfig b = a;
  b.algorithm = "minmin";
  const auto results = run_sweep({a, b, a});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].algorithm, "dsmf");
  EXPECT_EQ(results[1].algorithm, "minmin");
  EXPECT_DOUBLE_EQ(results[0].act, results[2].act);  // same config, same result
}

}  // namespace
}  // namespace dpjit::exp
