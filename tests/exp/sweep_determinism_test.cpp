// Determinism of the threaded sweep: a sweep executed serially and the same
// sweep executed across the thread pool must produce byte-identical results
// (every run owns its engine and RNG streams), and the parallel Routing build
// must be bit-identical at any thread count.
#include <gtest/gtest.h>

#include <cstring>

#include "exp/sweep.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "util/rng.hpp"

namespace dpjit::exp {
namespace {

void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.algorithm, b.algorithm);
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.workflows_submitted, b.workflows_submitted);
  EXPECT_EQ(a.workflows_finished, b.workflows_finished);
  // Bitwise equality, not EXPECT_DOUBLE_EQ: determinism means the threaded
  // sweep reproduces the serial numbers exactly.
  EXPECT_EQ(std::memcmp(&a.act, &b.act, sizeof a.act), 0);
  EXPECT_EQ(std::memcmp(&a.ae, &b.ae, sizeof a.ae), 0);
  EXPECT_EQ(std::memcmp(&a.mean_response, &b.mean_response, sizeof a.mean_response), 0);
  EXPECT_EQ(a.tasks_dispatched, b.tasks_dispatched);
  EXPECT_EQ(a.tasks_failed, b.tasks_failed);
  EXPECT_EQ(a.gossip_messages, b.gossip_messages);
  EXPECT_EQ(a.gossip_bytes, b.gossip_bytes);
  EXPECT_EQ(a.events_processed, b.events_processed);
  ASSERT_EQ(a.throughput.size(), b.throughput.size());
  for (std::size_t i = 0; i < a.throughput.size(); ++i) {
    EXPECT_EQ(std::memcmp(&a.throughput[i].value, &b.throughput[i].value,
                          sizeof a.throughput[i].value),
              0);
  }
}

std::vector<ExperimentConfig> small_sweep() {
  std::vector<ExperimentConfig> configs;
  for (const char* algo : {"dsmf", "dsdf", "minmin"}) {
    for (std::uint64_t seed : {1ULL, 2ULL}) {
      ExperimentConfig cfg;
      cfg.algorithm = algo;
      cfg.nodes = 24;
      cfg.workflows_per_node = 1;
      cfg.system.horizon_s = 4.0 * 3600.0;
      cfg.seed = seed;
      configs.push_back(cfg);
    }
  }
  return configs;
}

TEST(SweepDeterminism, SerialAndThreadedSweepsAgreeByteForByte) {
  const auto configs = small_sweep();
  const auto serial = run_sweep(configs, /*threads=*/1);
  const auto threaded = run_sweep(configs, /*threads=*/4);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(configs[i].algorithm + " seed " + std::to_string(configs[i].seed));
    expect_identical(serial[i], threaded[i]);
  }
}

TEST(SweepDeterminism, RepeatedThreadedSweepsAgree) {
  const auto configs = small_sweep();
  const auto first = run_sweep(configs, /*threads=*/3);
  const auto second = run_sweep(configs, /*threads=*/3);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) expect_identical(first[i], second[i]);
}

TEST(SweepDeterminism, ForcedRoutingThreadsNeverAffectSweepResults) {
  // ROADMAP flags >1-core behaviour as under-tested: an experiment must be
  // bit-identical whether its Routing table was built on 1, 2 or 4 threads,
  // through the full run_sweep path (not just the Routing class).
  std::vector<ExperimentResult> reference;
  for (int routing_threads : {1, 2, 4}) {
    auto configs = small_sweep();
    for (auto& cfg : configs) cfg.routing_threads = routing_threads;
    const auto results = run_sweep(configs, /*threads=*/2);
    if (reference.empty()) {
      reference = results;
      continue;
    }
    ASSERT_EQ(results.size(), reference.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      SCOPED_TRACE("routing_threads " + std::to_string(routing_threads) + " config " +
                   std::to_string(i));
      expect_identical(reference[i], results[i]);
    }
  }
}

TEST(SweepDeterminism, RoutingBuildIsIdenticalAtAnyThreadCount) {
  net::TopologyParams params;
  params.node_count = 120;
  util::Rng rng(7);
  const auto topo = net::Topology::generate_waxman(params, rng);
  const net::Routing serial(topo, /*threads=*/1);
  const net::Routing threaded(topo, /*threads=*/5);
  const double serial_mean = serial.initial_mean_pair_bandwidth_mbps();
  const double threaded_mean = threaded.initial_mean_pair_bandwidth_mbps();
  EXPECT_EQ(std::memcmp(&serial_mean, &threaded_mean, sizeof serial_mean), 0);
  for (int u = 0; u < params.node_count; ++u) {
    for (int v = 0; v < params.node_count; ++v) {
      const double l1 = serial.latency_s(NodeId{u}, NodeId{v});
      const double l2 = threaded.latency_s(NodeId{u}, NodeId{v});
      const double b1 = serial.bandwidth_mbps(NodeId{u}, NodeId{v});
      const double b2 = threaded.bandwidth_mbps(NodeId{u}, NodeId{v});
      ASSERT_EQ(std::memcmp(&l1, &l2, sizeof l1), 0) << u << "->" << v;
      ASSERT_EQ(std::memcmp(&b1, &b2, sizeof b1), 0) << u << "->" << v;
      ASSERT_EQ(serial.path_links(NodeId{u}, NodeId{v}), threaded.path_links(NodeId{u}, NodeId{v}));
    }
  }
}

}  // namespace
}  // namespace dpjit::exp
