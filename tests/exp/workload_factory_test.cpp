#include "exp/workload_factory.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "exp/experiment.hpp"

namespace dpjit::exp {
namespace {

ExperimentConfig tiny() {
  ExperimentConfig cfg;
  cfg.algorithm = "dsmf";
  cfg.nodes = 16;
  cfg.workflows_per_node = 2;
  cfg.workflow.max_tasks = 8;
  cfg.workflow.min_data_mb = 10;
  cfg.workflow.max_data_mb = 100;
  cfg.seed = 3;
  return cfg;
}

TEST(WorkloadFactory, AllNodesAreHomesWithoutChurn) {
  World world(tiny());
  EXPECT_EQ(world.home_count(), 16);
}

TEST(WorkloadFactory, OnlyStableHalfAreHomesUnderChurn) {
  auto cfg = tiny();
  cfg.dynamic_factor = 0.2;
  World world(cfg);
  EXPECT_EQ(world.home_count(), 8);
}

TEST(WorkloadFactory, CapacitiesDrawnFromChoices) {
  auto cfg = tiny();
  cfg.capacity_choices = {3.0, 5.0};
  World world(cfg);
  std::set<double> seen;
  for (int i = 0; i < cfg.nodes; ++i) {
    seen.insert(world.system().node(NodeId{i}).capacity_mips());
  }
  for (double c : seen) EXPECT_TRUE(c == 3.0 || c == 5.0);
}

TEST(WorkloadFactory, CcrPresetsChangeTheWorkload) {
  auto cfg = tiny();
  cfg.set_load_range(10, 1000);
  cfg.set_data_range(100, 10000);
  EXPECT_DOUBLE_EQ(cfg.workflow.min_load_mi, 10);
  EXPECT_DOUBLE_EQ(cfg.workflow.max_load_mi, 1000);
  EXPECT_DOUBLE_EQ(cfg.workflow.min_data_mb, 100);
  EXPECT_DOUBLE_EQ(cfg.workflow.max_data_mb, 10000);
}

TEST(WorkloadFactory, SubmitsWorkflowsPerNode) {
  World world(tiny());
  world.run();
  EXPECT_EQ(world.system().workflow_count(), 32u);
}

TEST(WorkloadFactory, ValidatesInputs) {
  auto cfg = tiny();
  cfg.nodes = 0;
  EXPECT_THROW(World{cfg}, std::invalid_argument);
  cfg = tiny();
  cfg.workflows_per_node = -1;
  EXPECT_THROW(World{cfg}, std::invalid_argument);
}

TEST(WorkloadFactory, OpenModelStaggersSubmissions) {
  auto cfg = tiny();
  cfg.mean_interarrival_s = 3600.0;
  World world(cfg);
  world.run();
  // All workflows eventually submitted...
  EXPECT_EQ(world.system().workflow_count(), 32u);
  // ...at strictly positive, distinct times (exponential arrivals).
  std::set<double> submit_times;
  std::size_t at_zero = 0;
  for (std::size_t w = 0; w < world.system().workflow_count(); ++w) {
    const auto& inst =
        world.system().workflow(WorkflowId{static_cast<WorkflowId::underlying_type>(w)});
    submit_times.insert(inst.submit_time);
    at_zero += inst.submit_time == 0.0 ? 1 : 0;
  }
  EXPECT_EQ(at_zero, 0u);
  EXPECT_GT(submit_times.size(), 16u);  // essentially all distinct
}

TEST(WorkloadFactory, OpenModelStillCompletes) {
  auto cfg = tiny();
  cfg.mean_interarrival_s = 1800.0;
  const auto result = run_experiment(cfg);
  EXPECT_EQ(result.workflows_finished, result.workflows_submitted);
}

TEST(WorkloadFactory, OpenModelWorksWithFullAhead) {
  auto cfg = tiny();
  cfg.algorithm = "smf";
  cfg.mean_interarrival_s = 1800.0;
  const auto result = run_experiment(cfg);
  EXPECT_EQ(result.workflows_finished, result.workflows_submitted);
}

TEST(WorkloadFactory, EventCapacityHintNeverAffectsResults) {
  // The hint is purely an allocation knob; any value must leave the
  // simulation bit-identical (the slab grows on demand past it).
  auto cfg = tiny();
  cfg.event_capacity_hint = 0;  // default derivation from `nodes`
  const auto reference = run_experiment(cfg);
  for (std::size_t hint : {std::size_t{1}, std::size_t{64}, std::size_t{1} << 16}) {
    cfg.event_capacity_hint = hint;
    const auto result = run_experiment(cfg);
    EXPECT_EQ(result_digest(result), result_digest(reference)) << "hint " << hint;
    EXPECT_EQ(result.events_processed, reference.events_processed) << "hint " << hint;
  }
}

TEST(WorkloadFactory, EventCapacityHintPreSizesTheEngineSlab) {
  auto cfg = tiny();
  cfg.event_capacity_hint = 4096;
  World world(cfg);
  EXPECT_GE(world.engine().queue().reserved_capacity(), 4096u);
  // Default derivation: nodes * 16 + 1024 slots.
  cfg.event_capacity_hint = 0;
  World derived(cfg);
  EXPECT_GE(derived.engine().queue().reserved_capacity(), 16u * 16u + 1024u);
}

TEST(WorkloadFactory, OpenModelArrivalsAreMonotonePerHome) {
  auto cfg = tiny();
  cfg.mean_interarrival_s = 1200.0;
  World world(cfg);
  world.run();
  // Workflows are submitted home by home in j order; each home's arrival
  // times must be strictly increasing (accumulated exponentials).
  std::map<int, double> last_per_home;
  for (std::size_t w = 0; w < world.system().workflow_count(); ++w) {
    const auto& inst =
        world.system().workflow(WorkflowId{static_cast<WorkflowId::underlying_type>(w)});
    const int home = inst.home.get();
    const auto it = last_per_home.find(home);
    if (it != last_per_home.end()) {
      EXPECT_GT(inst.submit_time, it->second) << "home " << home;
    }
    last_per_home[home] = inst.submit_time;
  }
  EXPECT_EQ(last_per_home.size(), 16u);  // every home submitted
}

TEST(WorkloadFactory, OpenModelIsDeterministic) {
  auto cfg = tiny();
  cfg.mean_interarrival_s = 900.0;
  const auto a = run_experiment(cfg);
  const auto b = run_experiment(cfg);
  EXPECT_EQ(result_digest(a), result_digest(b));
}

TEST(WorkloadFactory, ClosedModelSubmitsAtZero) {
  World world(tiny());
  world.run();
  for (std::size_t w = 0; w < world.system().workflow_count(); ++w) {
    EXPECT_DOUBLE_EQ(
        world.system()
            .workflow(WorkflowId{static_cast<WorkflowId::underlying_type>(w)})
            .submit_time,
        0.0);
  }
}

}  // namespace
}  // namespace dpjit::exp
