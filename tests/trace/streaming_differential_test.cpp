// The collector-equivalence contract, end-to-end: replaying the exact report
// and cycle streams of a real conformance-preset run into a
// StreamingMetricsCollector reproduces every digested summary bitwise, for
// EVERY classic scenario in the registry — and full A/B World runs with
// streaming_metrics toggled produce the same result_digest, so selecting the
// O(1)-memory collector can never move a golden.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "exp/metrics.hpp"
#include "exp/scenario.hpp"
#include "util/rng.hpp"

namespace dpjit::exp {
namespace {

std::vector<std::string> classic_scenario_names() {
  // scale/* scenarios run the sharded scale model, not a World with a
  // metrics collector; everything else goes through the MetricsSink seam.
  std::vector<std::string> names;
  for (const auto& s : scenario_registry().all()) {
    if (!s.sharded) names.push_back(s.name);
  }
  return names;
}

void expect_curves_equal(const std::vector<CurvePoint>& a, const std::vector<CurvePoint>& b,
                         const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time) << what << " bucket " << i;
    EXPECT_EQ(a[i].value, b[i].value) << what << " bucket " << i;
  }
}

class StreamingReplayDifferential : public ::testing::TestWithParam<std::string> {};

// Run the scenario once with the retaining collector, then replay its
// retained records through a streaming collector: every digested field and
// every curve must match bitwise (same FP accumulation order by design).
TEST_P(StreamingReplayDifferential, ReplayMatchesBitwise) {
  auto cfg = conformance_preset(scenario_registry().at(GetParam()).config());
  cfg.streaming_metrics = false;  // we need the raw records to replay
  World world(cfg);
  world.run();
  const MetricsCollector& retaining = world.metrics();

  StreamingMetricsCollector streaming(retaining.horizon(), util::Rng(12345),
                                      retaining.bucket());
  for (const auto& r : retaining.reports()) streaming.on_workflow_finished(r);
  for (const auto& s : retaining.samples()) streaming.on_cycle(s);

  EXPECT_EQ(streaming.finished(), retaining.finished());
  EXPECT_EQ(streaming.act(), retaining.act());
  EXPECT_EQ(streaming.ae(), retaining.ae());
  EXPECT_EQ(streaming.mean_response(), retaining.mean_response());
  expect_curves_equal(streaming.throughput_curve(), retaining.throughput_curve(), "throughput");
  expect_curves_equal(streaming.act_curve(), retaining.act_curve(), "act");
  expect_curves_equal(streaming.ae_curve(), retaining.ae_curve(), "ae");
  EXPECT_EQ(streaming.cycles_seen(), retaining.samples().size());
  // Bounded live state even after replaying the whole run.
  EXPECT_LE(streaming.live_reports(), StreamingMetricsCollector::kDefaultReservoir);
  // Converged view sizes use a time-based tail instead of the retained
  // index-based quarter: close but not digested, so only sanity-check them.
  if (!retaining.samples().empty() && retaining.converged_rss_size() > 0.0) {
    EXPECT_GT(streaming.converged_rss_size(), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllClassic, StreamingReplayDifferential,
                         ::testing::ValuesIn(classic_scenario_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '/' || c == '-') c = '_';
                           }
                           return name;
                         });

// Full A/B: two complete World runs differing ONLY in streaming_metrics must
// produce the same result_digest (the golden-digest guarantee), while the
// streaming run's live report count stays bounded. A handful of scenarios
// spanning the workload models: closed (paper), open arrivals, trace replay,
// fitted trace synthesis, and the quantised network mode.
class StreamingWorldAB : public ::testing::TestWithParam<std::string> {};

TEST_P(StreamingWorldAB, SameDigestEitherCollector) {
  auto cfg = conformance_preset(scenario_registry().at(GetParam()).config());

  auto retaining_cfg = cfg;
  retaining_cfg.streaming_metrics = false;
  const auto retaining = run_experiment(retaining_cfg);

  auto streaming_cfg = cfg;
  streaming_cfg.streaming_metrics = true;
  const auto streaming = run_experiment(streaming_cfg);

  EXPECT_EQ(result_digest(streaming), result_digest(retaining))
      << GetParam() << ": the collector choice moved the digest";
  EXPECT_EQ(streaming.workflows_finished, retaining.workflows_finished);
  EXPECT_EQ(streaming.act, retaining.act);
  EXPECT_EQ(streaming.ae, retaining.ae);
  EXPECT_EQ(streaming.mean_response, retaining.mean_response);
  EXPECT_EQ(streaming.events_processed, retaining.events_processed);
  EXPECT_EQ(retaining.live_reports, retaining.workflows_finished);
  EXPECT_LE(streaming.live_reports, StreamingMetricsCollector::kDefaultReservoir);
  // Quantile estimates are collector-dependent (exact vs t-digest) but must
  // land in the same ballpark when anything finished.
  if (retaining.workflows_finished > 0) {
    EXPECT_NEAR(streaming.ct_p50, retaining.ct_p50, 0.1 * retaining.ct_p50 + 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(WorkloadModels, StreamingWorldAB,
                         ::testing::Values("paper/static-n200", "open/poisson-arrivals",
                                           "trace/gwa-replay", "trace/fitted-burst",
                                           "quantised/fair-epoch60"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '/' || c == '-') c = '_';
                           }
                           return name;
                         });

// World::metrics() (the raw-record accessor) is a retaining-only API and
// must refuse loudly under streaming rather than returning a sliced view.
TEST(StreamingWorld, RawMetricsAccessorThrowsUnderStreaming) {
  auto cfg = conformance_preset(scenario_registry().at("trace/gwa-replay").config());
  cfg.streaming_metrics = true;
  World world(cfg);
  EXPECT_THROW((void)world.metrics(), std::logic_error);
  (void)world.collector();  // the interface accessor works in either mode
}

}  // namespace
}  // namespace dpjit::exp
