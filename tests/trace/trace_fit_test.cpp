// exp trace fitting + synthesis: moment-matched Weibull interarrivals,
// lognormal runtimes from log-moments, empirical owner/processor weights,
// and the deterministic span-rescaled generator built on them.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "exp/sample_trace.hpp"
#include "exp/trace_importer.hpp"
#include "util/rng.hpp"

namespace dpjit::exp {
namespace {

/// Builds a workload whose interarrivals are drawn by `gap` and runtimes by
/// `runtime`, already sorted and origin-shifted the way parse_trace emits.
template <typename GapFn, typename RuntimeFn>
TraceWorkload make_workload(std::size_t n, GapFn gap, RuntimeFn runtime) {
  TraceWorkload wl;
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    TraceJob j;
    j.id = static_cast<std::int64_t>(i + 1);
    j.submit_s = t;
    j.runtime_s = runtime(i);
    t += gap(i);
    wl.jobs.push_back(j);
  }
  wl.span_s = wl.jobs.back().submit_s;
  wl.stats.accepted = n;
  return wl;
}

TEST(TraceFit, RequiresTwoJobs) {
  TraceWorkload empty;
  EXPECT_THROW((void)fit_trace(empty), std::invalid_argument);
  TraceWorkload one;
  one.jobs.push_back({1, 0.0, 60.0, 1, 0});
  EXPECT_THROW((void)fit_trace(one), std::invalid_argument);
}

// k = 1 is the exponential: fitting Poisson arrivals must come back with a
// shape near 1 (CV^2 near 1), pinning the CV^2 <-> shape inversion.
TEST(TraceFit, ExponentialArrivalsGiveShapeOne) {
  util::Rng rng(101);
  const auto wl = make_workload(
      20000, [&](std::size_t) { return rng.exponential(600.0); },
      [](std::size_t) { return 300.0; });
  const auto fit = fit_trace(wl);
  EXPECT_NEAR(fit.ia_cv2, 1.0, 0.1);
  EXPECT_NEAR(fit.ia_shape, 1.0, 0.1);
  EXPECT_NEAR(fit.ia_mean_s, 600.0, 20.0);
  // The fit matches the empirical mean exactly through the Weibull identity
  // E[Weibull(k, lambda)] = lambda * Gamma(1 + 1/k) at the fitted shape.
  const double implied_mean = fit.ia_scale * std::exp(std::lgamma(1.0 + 1.0 / fit.ia_shape));
  EXPECT_NEAR(implied_mean, fit.ia_mean_s, 1e-9 * fit.ia_mean_s);
}

// Bursty (shape < 1) Weibull interarrivals are recovered approximately from
// 20k draws — moment matching, so the tolerance reflects CV^2 sampling noise
// on a heavy-tailed gap distribution, but 0.6 is cleanly told from 1.0.
TEST(TraceFit, RecoversBurstyWeibullShape) {
  util::Rng rng(202);
  const auto wl = make_workload(
      20000, [&](std::size_t) { return rng.weibull(0.6, 1000.0); },
      [](std::size_t) { return 300.0; });
  const auto fit = fit_trace(wl);
  EXPECT_GT(fit.ia_cv2, 1.5);  // burstier than Poisson, unambiguously
  EXPECT_NEAR(fit.ia_shape, 0.6, 0.15);
}

TEST(TraceFit, RecoversLognormalRuntimes) {
  util::Rng rng(303);
  const auto wl = make_workload(
      20000, [](std::size_t) { return 60.0; },
      [&](std::size_t) { return std::max(1.0, rng.lognormal(5.0, 1.2)); });
  const auto fit = fit_trace(wl);
  EXPECT_NEAR(fit.rt_mu, 5.0, 0.05);
  EXPECT_NEAR(fit.rt_sigma, 1.2, 0.05);
  // Raw mean of LogNormal(5, 1.2): exp(mu + sigma^2/2) ~ 305 s.
  EXPECT_NEAR(fit.rt_mean_s, std::exp(5.0 + 0.72), 0.15 * std::exp(5.0 + 0.72));
}

TEST(TraceFit, OwnerAndProcsWeightsNormalized) {
  const auto wl = parse_trace_text(sample_swf_trace());
  const auto fit = fit_trace(wl);
  ASSERT_FALSE(fit.owner_weights.empty());
  ASSERT_FALSE(fit.procs_weights.empty());
  const double owner_sum =
      std::accumulate(fit.owner_weights.begin(), fit.owner_weights.end(), 0.0);
  const double procs_sum =
      std::accumulate(fit.procs_weights.begin(), fit.procs_weights.end(), 0.0);
  EXPECT_NEAR(owner_sum, 1.0, 1e-9);
  EXPECT_NEAR(procs_sum, 1.0, 1e-9);
  // Descending by job share — synthesis assigns dense ids by rank.
  for (std::size_t i = 1; i < fit.owner_weights.size(); ++i) {
    EXPECT_GE(fit.owner_weights[i - 1], fit.owner_weights[i]);
  }
  EXPECT_EQ(fit.job_count, wl.jobs.size());
}

// A fully batched trace (every job at t = 0) has no interarrival signal;
// the fit degenerates to a nominal Poisson hour instead of NaN-ing out.
TEST(TraceFit, DegenerateBatchTraceFallsBackToPoissonHour) {
  const auto wl = make_workload(
      50, [](std::size_t) { return 0.0; }, [](std::size_t) { return 120.0; });
  const auto fit = fit_trace(wl);
  EXPECT_DOUBLE_EQ(fit.ia_shape, 1.0);
  EXPECT_DOUBLE_EQ(fit.ia_scale, 3600.0);
  EXPECT_DOUBLE_EQ(fit.ia_mean_s, 3600.0);
  EXPECT_DOUBLE_EQ(fit.ia_cv2, 1.0);
}

TEST(TraceSynthesize, DeterministicForFixedSeed) {
  const auto fit = fit_trace(parse_trace_text(sample_swf_trace()));
  util::Rng a(7), b(7);
  const auto wa = synthesize_trace(fit, 500, 86400.0, a);
  const auto wb = synthesize_trace(fit, 500, 86400.0, b);
  ASSERT_EQ(wa.jobs.size(), wb.jobs.size());
  for (std::size_t i = 0; i < wa.jobs.size(); ++i) {
    EXPECT_EQ(wa.jobs[i].id, wb.jobs[i].id);
    EXPECT_EQ(wa.jobs[i].submit_s, wb.jobs[i].submit_s);  // bitwise
    EXPECT_EQ(wa.jobs[i].runtime_s, wb.jobs[i].runtime_s);
    EXPECT_EQ(wa.jobs[i].procs, wb.jobs[i].procs);
    EXPECT_EQ(wa.jobs[i].owner, wb.jobs[i].owner);
  }
}

TEST(TraceSynthesize, SpanRescaledExactly) {
  const auto fit = fit_trace(parse_trace_text(sample_swf_trace()));
  util::Rng rng(9);
  const auto wl = synthesize_trace(fit, 1000, 43200.0, rng);
  ASSERT_EQ(wl.jobs.size(), 1000u);
  EXPECT_DOUBLE_EQ(wl.jobs.front().submit_s, 0.0);
  EXPECT_DOUBLE_EQ(wl.jobs.back().submit_s, 43200.0);  // pinned, no FP drift
  EXPECT_DOUBLE_EQ(wl.span_s, 43200.0);
  for (std::size_t i = 1; i < wl.jobs.size(); ++i) {
    EXPECT_LE(wl.jobs[i - 1].submit_s, wl.jobs[i].submit_s);
  }
}

TEST(TraceSynthesize, JobsAreNormalizedAndIdsDense) {
  const auto fit = fit_trace(parse_trace_text(sample_gwa_trace(), TraceFormat::kGwa));
  util::Rng rng(11);
  const auto wl = synthesize_trace(fit, 2000, 86400.0, rng);
  const auto owners = static_cast<int>(fit.owner_weights.size());
  const auto max_procs = static_cast<int>(fit.procs_weights.size());
  for (const auto& j : wl.jobs) {
    EXPECT_GE(j.runtime_s, 1.0);
    EXPECT_GE(j.procs, 1);
    EXPECT_LE(j.procs, max_procs);
    EXPECT_GE(j.owner, 0);
    EXPECT_LT(j.owner, owners);
  }
}

TEST(TraceSynthesize, SingleJobAndEmptyEdgeCases) {
  const auto fit = fit_trace(parse_trace_text(sample_swf_trace()));
  util::Rng rng(13);
  const auto none = synthesize_trace(fit, 0, 3600.0, rng);
  EXPECT_TRUE(none.jobs.empty());
  EXPECT_DOUBLE_EQ(none.span_s, 0.0);
  // One job: raw span is 0, so there is nothing to rescale — the job stays
  // at t = 0 rather than being teleported to span_s.
  const auto one = synthesize_trace(fit, 1, 3600.0, rng);
  ASSERT_EQ(one.jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(one.jobs.front().submit_s, 0.0);
  EXPECT_DOUBLE_EQ(one.span_s, 0.0);
  EXPECT_THROW((void)synthesize_trace(fit, 10, 0.0, rng), std::invalid_argument);
}

// fit -> synthesize -> refit round-trip: the span rescale must preserve the
// interarrival *shape* (Weibull is closed under scaling) and the runtime
// log-moments, so a refit of a large synthetic workload lands near the
// original fit. This is the property the open-stream scenarios lean on when
// replaying the small bundled sample at 1M-task scale.
TEST(TraceSynthesize, RefitRecoversFittedParameters) {
  const auto fit = fit_trace(parse_trace_text(sample_swf_trace()));
  util::Rng rng(17);
  const auto synth = synthesize_trace(fit, 30000, 2.0e6, rng);
  const auto refit = fit_trace(synth);
  EXPECT_NEAR(refit.ia_shape, fit.ia_shape, 0.15 * fit.ia_shape + 0.05);
  EXPECT_NEAR(refit.rt_mu, fit.rt_mu, 0.1);
  EXPECT_NEAR(refit.rt_sigma, fit.rt_sigma, 0.1);
  ASSERT_EQ(refit.owner_weights.size(), fit.owner_weights.size());
  for (std::size_t i = 0; i < fit.owner_weights.size(); ++i) {
    EXPECT_NEAR(refit.owner_weights[i], fit.owner_weights[i], 0.05) << "owner rank " << i;
  }
}

}  // namespace
}  // namespace dpjit::exp
