// exp trace importer: fixture-driven SWF/GWA parsing, deterministic
// normalization of malformed rows, SWF round-trip, and a fuzz-style mutation
// loop asserting the parser either parses or throws — never crashes, never
// loops — on arbitrarily damaged input.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "exp/sample_trace.hpp"
#include "exp/trace_importer.hpp"
#include "util/rng.hpp"

namespace dpjit::exp {
namespace {

std::string fixture(const std::string& name) {
  return std::string(DPJIT_TRACE_DATA_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(TraceParser, ParsesBundledSwfSample) {
  const auto wl = parse_trace_text(sample_swf_trace());
  EXPECT_EQ(wl.format, TraceFormat::kSwf);
  ASSERT_EQ(wl.jobs.size(), 48u);
  EXPECT_EQ(wl.stats.accepted, 48u);
  EXPECT_EQ(wl.stats.skipped(), 0u);
  EXPECT_GT(wl.stats.comment_lines, 0u);
  EXPECT_DOUBLE_EQ(wl.jobs.front().submit_s, 0.0);
  EXPECT_DOUBLE_EQ(wl.span_s, 28900.0);
  EXPECT_EQ(wl.jobs.front().owner, 101);
  EXPECT_EQ(wl.jobs[6].procs, 8);  // job 7: the 15300 s 8-proc run
  EXPECT_DOUBLE_EQ(wl.jobs[6].runtime_s, 15300.0);
}

TEST(TraceParser, BundledFileMatchesEmbeddedSample) {
  // tests/data/sample.swf must stay byte-for-byte the embedded constant.
  EXPECT_EQ(read_file(fixture("sample.swf")), std::string(sample_swf_trace()));
}

TEST(TraceParser, ParsesBundledGwaSample) {
  const auto wl = parse_trace_text(sample_gwa_trace());
  EXPECT_EQ(wl.format, TraceFormat::kGwa);
  ASSERT_EQ(wl.jobs.size(), 24u);
  EXPECT_EQ(wl.jobs.front().owner, 11);
  EXPECT_DOUBLE_EQ(wl.span_s, 21700.0);
}

TEST(TraceParser, AutoDetectsGwaFromFile) {
  const auto wl = load_trace(fixture("valid.gwf"));
  EXPECT_EQ(wl.format, TraceFormat::kGwa);
  ASSERT_EQ(wl.jobs.size(), 6u);
  EXPECT_EQ(wl.jobs[0].owner, 7);
  EXPECT_DOUBLE_EQ(wl.jobs[0].submit_s, 0.0);  // shifted: raw submit was 100
  EXPECT_DOUBLE_EQ(wl.span_s, 2400.0);         // 2500 - 100
}

TEST(TraceParser, CommentHeavyAndShortRows) {
  const auto wl = load_trace(fixture("comments.swf"));
  EXPECT_EQ(wl.format, TraceFormat::kSwf);
  ASSERT_EQ(wl.jobs.size(), 3u);
  EXPECT_EQ(wl.stats.comment_lines, 7u);
  // Row 3 stops after the processor count: the user column is missing, so
  // the owner defaults to 0 without counting as a normalization.
  EXPECT_EQ(wl.jobs[2].owner, 0);
  EXPECT_EQ(wl.stats.normalized_owner, 0u);
}

TEST(TraceParser, TruncatedRowThrowsWithLineNumber) {
  try {
    (void)load_trace(fixture("truncated.swf"));
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos) << e.what();
  }
}

TEST(TraceParser, NonNumericFieldThrowsWithLineNumber) {
  try {
    (void)load_trace(fixture("nonnumeric.swf"));
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("non-numeric"), std::string::npos) << e.what();
  }
}

TEST(TraceParser, OutOfOrderArrivalsSortedStably) {
  const auto wl = load_trace(fixture("out_of_order.swf"));
  ASSERT_EQ(wl.jobs.size(), 5u);
  EXPECT_EQ(wl.stats.out_of_order, 2u);  // rows 3 and 5 jump backwards
  for (std::size_t i = 1; i < wl.jobs.size(); ++i) {
    EXPECT_LE(wl.jobs[i - 1].submit_s, wl.jobs[i].submit_s);
  }
  // Sorted by (submit, id): 200, 500, 700, 900, 1200 -> ids 3 1 5 2 4.
  EXPECT_EQ(wl.jobs[0].id, 3);
  EXPECT_EQ(wl.jobs[4].id, 4);
  EXPECT_DOUBLE_EQ(wl.jobs[0].submit_s, 0.0);  // shifted by 200
  EXPECT_DOUBLE_EQ(wl.span_s, 1000.0);
}

TEST(TraceParser, NormalizationRules) {
  const auto wl = load_trace(fixture("zero_runtime.swf"));
  // 5 rows: zero runtime kept+clamped, runtime -1 skipped, submit -1
  // skipped, procs 0 kept+clamped, user -1 kept as owner 0.
  ASSERT_EQ(wl.jobs.size(), 3u);
  EXPECT_EQ(wl.stats.accepted, 3u);
  EXPECT_EQ(wl.stats.skipped_missing_runtime, 1u);
  EXPECT_EQ(wl.stats.skipped_missing_submit, 1u);
  EXPECT_EQ(wl.stats.normalized_zero_runtime, 1u);
  EXPECT_EQ(wl.stats.normalized_procs, 1u);
  EXPECT_EQ(wl.stats.normalized_owner, 1u);
  EXPECT_DOUBLE_EQ(wl.jobs[0].runtime_s, 1.0);  // clamp floor
  EXPECT_EQ(wl.jobs[1].procs, 1);
  EXPECT_EQ(wl.jobs[2].owner, 0);
}

TEST(TraceParser, EmptyInputYieldsEmptyWorkload) {
  const auto wl = parse_trace_text("");
  EXPECT_TRUE(wl.jobs.empty());
  EXPECT_DOUBLE_EQ(wl.span_s, 0.0);
  const auto comments = parse_trace_text("; nothing but commentary\n;\n");
  EXPECT_TRUE(comments.jobs.empty());
  EXPECT_EQ(comments.stats.comment_lines, 2u);
}

TEST(TraceParser, SwfRoundTrip) {
  const auto first = parse_trace_text(sample_swf_trace());
  std::ostringstream out;
  write_swf(out, first);
  const auto second = parse_trace_text(out.str());
  ASSERT_EQ(second.jobs.size(), first.jobs.size());
  for (std::size_t i = 0; i < first.jobs.size(); ++i) {
    EXPECT_EQ(second.jobs[i].id, first.jobs[i].id) << i;
    EXPECT_DOUBLE_EQ(second.jobs[i].submit_s, first.jobs[i].submit_s) << i;
    EXPECT_DOUBLE_EQ(second.jobs[i].runtime_s, first.jobs[i].runtime_s) << i;
    EXPECT_EQ(second.jobs[i].procs, first.jobs[i].procs) << i;
    EXPECT_EQ(second.jobs[i].owner, first.jobs[i].owner) << i;
  }
  // GWA parses to the same normalized model, so GWA -> SWF round-trips too.
  const auto gwa = parse_trace_text(sample_gwa_trace());
  std::ostringstream out2;
  write_swf(out2, gwa);
  const auto again = parse_trace_text(out2.str());
  ASSERT_EQ(again.jobs.size(), gwa.jobs.size());
  EXPECT_EQ(again.jobs[5].procs, gwa.jobs[5].procs);
}

TEST(TraceParser, DeterministicAcrossCalls) {
  const auto a = parse_trace_text(sample_swf_trace());
  const auto b = parse_trace_text(sample_swf_trace());
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].id, b.jobs[i].id);
    EXPECT_DOUBLE_EQ(a.jobs[i].submit_s, b.jobs[i].submit_s);
  }
}

// Fuzz-style mutation loop: take the valid sample, apply seeded random
// mutations (byte flips, truncations, line deletions/duplications, token
// swaps) and require the parser to either return a workload or throw
// std::runtime_error. Anything else — a crash, another exception type — is a
// bug. Deterministic: fixed seed, so a failure reproduces.
TEST(TraceParser, FuzzMutationLoopNeverCrashes) {
  const std::string base(sample_swf_trace());
  util::Rng rng(0xFEEDFACE);
  int parsed = 0, rejected = 0;
  for (int iter = 0; iter < 500; ++iter) {
    std::string mutated = base;
    const int edits = 1 + static_cast<int>(rng.index(4));
    for (int e = 0; e < edits; ++e) {
      switch (rng.index(5)) {
        case 0: {  // flip a byte to random printable
          const std::size_t pos = rng.index(mutated.size());
          mutated[pos] = static_cast<char>(' ' + rng.index(95));
          break;
        }
        case 1:  // truncate
          mutated.resize(rng.index(mutated.size()));
          break;
        case 2: {  // delete a line
          const std::size_t start = rng.index(mutated.size());
          const std::size_t nl = mutated.find('\n', start);
          const std::size_t prev = mutated.rfind('\n', start);
          const std::size_t from = prev == std::string::npos ? 0 : prev;
          mutated.erase(from, (nl == std::string::npos ? mutated.size() : nl) - from);
          break;
        }
        case 3: {  // duplicate a chunk
          const std::size_t pos = rng.index(mutated.size());
          const std::size_t len = std::min<std::size_t>(rng.index(40) + 1, mutated.size() - pos);
          mutated.insert(pos, mutated.substr(pos, len));
          break;
        }
        default: {  // inject a hostile token
          static constexpr const char* kTokens[] = {"-1", "NaN", "inf", "1e309", "--", "\t\t"};
          const std::size_t pos = rng.index(mutated.size());
          mutated.insert(pos, kTokens[rng.index(6)]);
          break;
        }
      }
      if (mutated.empty()) mutated = " ";
    }
    try {
      const auto wl = parse_trace_text(mutated);
      // Whatever survived must satisfy the normalization invariants.
      for (std::size_t i = 0; i < wl.jobs.size(); ++i) {
        ASSERT_GE(wl.jobs[i].submit_s, 0.0);
        ASSERT_GT(wl.jobs[i].runtime_s, 0.0);
        ASSERT_GE(wl.jobs[i].procs, 1);
        ASSERT_GE(wl.jobs[i].owner, 0);
        if (i > 0) {
          ASSERT_LE(wl.jobs[i - 1].submit_s, wl.jobs[i].submit_s);
        }
      }
      ++parsed;
    } catch (const std::runtime_error&) {
      ++rejected;  // the documented failure mode
    }
  }
  // The loop must exercise both outcomes, or the mutations are too tame /
  // too savage to mean anything.
  EXPECT_GT(parsed, 50);
  EXPECT_GT(rejected, 50);
}

}  // namespace
}  // namespace dpjit::exp
