// util::ReservoirSampler: chi-squared uniformity of inclusion over seeds,
// exact k/n inclusion probability, and bit-identical reservoirs for a fixed
// seed (the determinism the streaming collector's sample reports rely on).
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "util/reservoir.hpp"
#include "util/rng.hpp"

namespace dpjit::util {
namespace {

TEST(Reservoir, FillPhaseKeepsEverything) {
  ReservoirSampler<int> r(8, Rng(1));
  for (int i = 0; i < 5; ++i) r.add(i);
  EXPECT_EQ(r.size(), 5u);
  EXPECT_EQ(r.seen(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(r.items()[static_cast<std::size_t>(i)], i);
}

TEST(Reservoir, CapacityBoundHolds) {
  ReservoirSampler<int> r(16, Rng(2));
  for (int i = 0; i < 100000; ++i) r.add(i);
  EXPECT_EQ(r.size(), 16u);
  EXPECT_EQ(r.capacity(), 16u);
  EXPECT_EQ(r.seen(), 100000u);
}

TEST(Reservoir, FixedSeedBitIdentical) {
  ReservoirSampler<int> a(32, Rng(77)), b(32, Rng(77));
  for (int i = 0; i < 50000; ++i) {
    a.add(i);
    b.add(i);
  }
  EXPECT_EQ(a.items(), b.items());
}

// Every stream element must land in the reservoir with probability exactly
// k/n. Run many independently seeded samplers over the same stream and
// chi-squared-test the per-element inclusion counts against uniform.
TEST(Reservoir, ChiSquaredUniformityOverSeeds) {
  constexpr std::size_t kN = 200;      // stream length
  constexpr std::size_t kK = 20;       // reservoir capacity
  constexpr int kTrials = 4000;        // independent seeds
  std::vector<int> hits(kN, 0);
  for (int t = 0; t < kTrials; ++t) {
    ReservoirSampler<std::size_t> r(kK, Rng(static_cast<std::uint64_t>(t) * 2654435761ULL + 1));
    for (std::size_t i = 0; i < kN; ++i) r.add(i);
    for (std::size_t kept : r.items()) ++hits[kept];
  }
  // Expected inclusions per element: trials * k/n.
  const double expected = static_cast<double>(kTrials) * kK / kN;
  double chi2 = 0.0;
  for (std::size_t i = 0; i < kN; ++i) {
    const double d = static_cast<double>(hits[i]) - expected;
    chi2 += d * d / expected;
  }
  // 199 dof: mean 199, stddev ~ sqrt(2*199) ~ 20. 300 is ~ +5 sigma — a
  // deterministic test (fixed seeds) with a generous-but-meaningful margin:
  // an off-by-one in the acceptance draw shifts chi2 by thousands.
  EXPECT_LT(chi2, 300.0);
  // And no element may be systematically starved or favoured.
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_GT(hits[i], expected * 0.5) << "element " << i << " starved";
    EXPECT_LT(static_cast<double>(hits[i]), expected * 1.5) << "element " << i << " favoured";
  }
}

TEST(Reservoir, OwnedRngIsolation) {
  // The sampler copies its Rng: draws on the original must not perturb it.
  Rng shared(5);
  ReservoirSampler<int> a(8, shared);
  for (int i = 0; i < 1000; ++i) (void)shared();  // consume the original
  ReservoirSampler<int> b(8, Rng(5));
  for (int i = 0; i < 10000; ++i) {
    a.add(i);
    b.add(i);
  }
  EXPECT_EQ(a.items(), b.items());
}

}  // namespace
}  // namespace dpjit::util
