// StreamingMetricsCollector vs MetricsCollector on hand-fed report streams:
// bitwise-equal summaries and curves, the bounded live_reports guarantee,
// t-digest quantile accuracy, and the horizon-boundary bucket regression
// (a finish at exactly the horizon must land in the last bucket in BOTH
// collectors, including when the horizon is not a bucket multiple).
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "core/metrics_sink.hpp"
#include "exp/metrics.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace dpjit::exp {
namespace {

core::WorkflowReport make_report(int id, double submit, double entry_start, double finish,
                                 double eft) {
  core::WorkflowReport r;
  r.id = WorkflowId{id};
  r.home = NodeId{0};
  r.submit_time = submit;
  r.entry_start_time = entry_start;
  r.finish_time = finish;
  r.eft = eft;
  return r;
}

/// A deterministic pseudo-random report stream resembling a real run:
/// arrival-ordered finishes with jittered completion times and efficiencies.
std::vector<core::WorkflowReport> synthetic_reports(std::size_t n, double horizon,
                                                    std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<core::WorkflowReport> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double submit = rng.uniform(0.0, horizon * 0.9);
    const double entry_start = submit + rng.exponential(120.0);
    const double ct = 60.0 + rng.lognormal(6.0, 1.0);
    const double finish = entry_start + ct;
    out.push_back(make_report(static_cast<int>(i), submit, entry_start, finish,
                              ct * rng.uniform(0.3, 1.0)));
  }
  return out;
}

void feed(WorkflowMetrics& m, const std::vector<core::WorkflowReport>& reports) {
  for (const auto& r : reports) m.on_workflow_finished(r);
}

void expect_curves_bitwise_equal(const std::vector<CurvePoint>& a,
                                 const std::vector<CurvePoint>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time) << what << " bucket " << i;
    EXPECT_EQ(a[i].value, b[i].value) << what << " bucket " << i;
  }
}

TEST(StreamingMetrics, EmptyCollectorsAgree) {
  const double h = 129600.0;
  MetricsCollector retaining(h);
  StreamingMetricsCollector streaming(h, util::Rng(1));
  EXPECT_EQ(streaming.finished(), retaining.finished());
  EXPECT_EQ(streaming.act(), retaining.act());
  EXPECT_EQ(streaming.ae(), retaining.ae());
  EXPECT_EQ(streaming.mean_response(), retaining.mean_response());
  EXPECT_TRUE(std::isnan(streaming.ct_quantile(0.5)));
  EXPECT_TRUE(std::isnan(retaining.ct_quantile(0.5)));
  EXPECT_EQ(streaming.live_reports(), 0u);
  expect_curves_bitwise_equal(streaming.throughput_curve(), retaining.throughput_curve(),
                              "throughput");
}

// The load-bearing property: identical report streams give BITWISE identical
// summaries and curves, because the streaming collector accumulates in the
// same floating-point order as the retaining collector's end-of-run loops.
// This is what lets streaming_metrics=true leave every golden digest alone.
TEST(StreamingMetrics, BitwiseEqualSummariesAndCurves) {
  const double h = 129600.0;  // the default experiment horizon (36 buckets)
  const auto reports = synthetic_reports(20000, h, 42);
  MetricsCollector retaining(h);
  StreamingMetricsCollector streaming(h, util::Rng(99));
  feed(retaining, reports);
  feed(streaming, reports);

  EXPECT_EQ(streaming.finished(), retaining.finished());
  EXPECT_EQ(streaming.act(), retaining.act());  // EXPECT_EQ, not NEAR: bitwise
  EXPECT_EQ(streaming.ae(), retaining.ae());
  EXPECT_EQ(streaming.mean_response(), retaining.mean_response());
  expect_curves_bitwise_equal(streaming.throughput_curve(), retaining.throughput_curve(),
                              "throughput");
  expect_curves_bitwise_equal(streaming.act_curve(), retaining.act_curve(), "act");
  expect_curves_bitwise_equal(streaming.ae_curve(), retaining.ae_curve(), "ae");
}

TEST(StreamingMetrics, LiveReportsBoundedByReservoir) {
  const double h = 129600.0;
  const auto reports = synthetic_reports(50000, h, 7);
  MetricsCollector retaining(h);
  StreamingMetricsCollector streaming(h, util::Rng(3));
  feed(retaining, reports);
  feed(streaming, reports);
  EXPECT_EQ(retaining.live_reports(), 50000u);  // grows with the workload
  EXPECT_EQ(streaming.live_reports(), StreamingMetricsCollector::kDefaultReservoir);
  EXPECT_EQ(streaming.finished(), 50000u);  // ...while the counters see it all
  EXPECT_EQ(streaming.reservoir().seen(), 50000u);
  // And a custom, tighter bound holds too.
  StreamingMetricsCollector tight(h, util::Rng(4), 3600.0,
                                  StreamingMetricsCollector::kDefaultCompression, 8);
  feed(tight, reports);
  EXPECT_EQ(tight.live_reports(), 8u);
}

TEST(StreamingMetrics, QuantilesTrackExact) {
  const double h = 129600.0;
  const auto reports = synthetic_reports(30000, h, 21);
  MetricsCollector retaining(h);
  StreamingMetricsCollector streaming(h, util::Rng(5));
  feed(retaining, reports);
  feed(streaming, reports);
  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    const double exact = retaining.ct_quantile(q);
    const double est = streaming.ct_quantile(q);
    // Rank-accurate, so compare in value space with a few percent of the
    // local scale (completion times are lognormal, spanning decades).
    EXPECT_NEAR(est, exact, 0.05 * exact) << "q=" << q;
  }
  // Extremes are exact: the digest pins min/max.
  EXPECT_EQ(streaming.ct_quantile(0.0), retaining.ct_quantile(0.0));
  EXPECT_EQ(streaming.ct_quantile(1.0), retaining.ct_quantile(1.0));
}

// Regression for the horizon-bucket edge case: with a horizon that is NOT a
// multiple of the bucket width, a workflow finishing at exactly the horizon
// used to fall into an interior bucket (floor(h / bucket)) instead of the
// final one. Both collectors now route through curve_bucket_index.
TEST(StreamingMetrics, FinishAtHorizonLandsInLastBucket) {
  const double h = 5000.0, bucket = 3600.0;  // buckets = ceil(5000/3600) = 2
  const std::size_t buckets = curve_bucket_count(h, bucket);
  ASSERT_EQ(buckets, 2u);
  EXPECT_EQ(curve_bucket_index(0.0, h, bucket, buckets), 0u);
  EXPECT_EQ(curve_bucket_index(4999.0, h, bucket, buckets), 1u);  // interior
  EXPECT_EQ(curve_bucket_index(5000.0, h, bucket, buckets), 2u);  // == horizon
  EXPECT_EQ(curve_bucket_index(9999.0, h, bucket, buckets), 2u);  // past it

  const auto at_horizon = make_report(1, 0.0, 100.0, h, 500.0);
  MetricsCollector retaining(h, bucket);
  StreamingMetricsCollector streaming(h, util::Rng(6), bucket);
  retaining.on_workflow_finished(at_horizon);
  streaming.on_workflow_finished(at_horizon);
  const auto rc = retaining.throughput_curve();
  const auto sc = streaming.throughput_curve();
  ASSERT_EQ(rc.size(), buckets + 1);
  // The finish shows up only in the cumulative count of the LAST point, in
  // both collectors identically.
  EXPECT_EQ(rc[0].value, 0.0);
  EXPECT_EQ(rc[1].value, 0.0);
  EXPECT_EQ(rc[2].value, 1.0);
  expect_curves_bitwise_equal(sc, rc, "throughput at horizon");
}

TEST(StreamingMetrics, ConvergedTailMatchesOnUniformCycles) {
  // With uniformly spaced cycle samples the streaming time-based tail
  // (t >= 3/4 horizon) selects exactly the retaining index-based last
  // quarter, so the converged view sizes agree exactly.
  const double h = 8000.0;
  MetricsCollector retaining(h);
  StreamingMetricsCollector streaming(h, util::Rng(8));
  for (int i = 0; i < 8; ++i) {
    core::CycleSample s;
    s.time = h * static_cast<double>(i) / 8.0;  // i = 6, 7 are >= 0.75 h
    s.mean_rss_size = 10.0 + i;
    s.mean_idle_known = 5.0 + 2.0 * i;
    retaining.on_cycle(s);
    streaming.on_cycle(s);
  }
  EXPECT_EQ(streaming.cycles_seen(), 8u);
  EXPECT_DOUBLE_EQ(streaming.converged_rss_size(), retaining.converged_rss_size());
  EXPECT_DOUBLE_EQ(streaming.converged_idle_known(), retaining.converged_idle_known());
  EXPECT_DOUBLE_EQ(streaming.converged_rss_size(), 16.5);  // mean of 16, 17
}

TEST(StreamingMetrics, ReservoirSampleIsDeterministic) {
  const double h = 129600.0;
  const auto reports = synthetic_reports(5000, h, 13);
  StreamingMetricsCollector a(h, util::Rng(55)), b(h, util::Rng(55));
  feed(a, reports);
  feed(b, reports);
  ASSERT_EQ(a.reservoir().size(), b.reservoir().size());
  for (std::size_t i = 0; i < a.reservoir().size(); ++i) {
    EXPECT_EQ(a.reservoir().items()[i].id, b.reservoir().items()[i].id) << i;
    EXPECT_EQ(a.reservoir().items()[i].finish_time, b.reservoir().items()[i].finish_time) << i;
  }
}

}  // namespace
}  // namespace dpjit::exp
