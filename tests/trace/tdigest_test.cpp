// Property and differential tests for util::TDigest: quantile estimates are
// compared against exact sort-based quantiles on 10k+ draws from several
// distributions, with an error bound per compression setting; determinism
// and merge() behavior are pinned exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/tdigest.hpp"

namespace dpjit::util {
namespace {

std::vector<double> draw(std::size_t n, int dist, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (dist) {
      case 0: xs.push_back(rng.uniform(0.0, 1000.0)); break;
      case 1: xs.push_back(rng.exponential(250.0)); break;
      case 2: xs.push_back(rng.lognormal(3.0, 1.5)); break;   // heavy tail
      default: xs.push_back(rng.pareto(10.0, 1.2)); break;    // heavier tail
    }
  }
  return xs;
}

/// Rank error of an estimate: |cdf_exact(estimate) - q|, the metric the
/// t-digest paper bounds (value-space error is unbounded on heavy tails).
double rank_error(const std::vector<double>& sorted, double estimate, double q) {
  const auto lo =
      std::lower_bound(sorted.begin(), sorted.end(), estimate) - sorted.begin();
  const auto hi =
      std::upper_bound(sorted.begin(), sorted.end(), estimate) - sorted.begin();
  const double n = static_cast<double>(sorted.size());
  const double r_lo = static_cast<double>(lo) / n;
  const double r_hi = static_cast<double>(hi) / n;
  if (q < r_lo) return r_lo - q;
  if (q > r_hi) return q - r_hi;
  return 0.0;
}

TEST(TDigest, EmptyAndSmall) {
  TDigest d;
  EXPECT_TRUE(std::isnan(d.quantile(0.5)));
  EXPECT_TRUE(std::isnan(d.min()));
  EXPECT_EQ(d.count(), 0u);

  d.add(42.0);
  EXPECT_EQ(d.count(), 1u);
  EXPECT_DOUBLE_EQ(d.quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(d.quantile(1.0), 42.0);
}

TEST(TDigest, RejectsTinyCompression) {
  EXPECT_THROW(TDigest(5.0), std::invalid_argument);
  EXPECT_NO_THROW(TDigest(10.0));
}

TEST(TDigest, ExactMinMax) {
  TDigest d(50.0);
  auto xs = draw(20000, 2, 7);
  for (double x : xs) d.add(x);
  std::sort(xs.begin(), xs.end());
  EXPECT_DOUBLE_EQ(d.min(), xs.front());
  EXPECT_DOUBLE_EQ(d.max(), xs.back());
  EXPECT_DOUBLE_EQ(d.quantile(0.0), xs.front());
  EXPECT_DOUBLE_EQ(d.quantile(1.0), xs.back());
}

// Differential vs exact sort-based quantiles on 10k+ draws, across
// distributions and compressions. The k1 scale function concentrates
// accuracy at the tails; rank error <= ~1.5/compression mid-range is a
// conservative envelope (the paper's bound is tighter at the extremes).
TEST(TDigest, RankErrorBoundPerCompression) {
  const double quantiles[] = {0.01, 0.05, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99};
  for (double compression : {20.0, 50.0, 100.0, 200.0}) {
    const double bound = 1.5 / compression;
    for (int dist = 0; dist < 4; ++dist) {
      TDigest d(compression);
      auto xs = draw(10000, dist, 1234 + static_cast<std::uint64_t>(dist));
      for (double x : xs) d.add(x);
      std::sort(xs.begin(), xs.end());
      for (double q : quantiles) {
        const double est = d.quantile(q);
        EXPECT_LE(rank_error(xs, est, q), bound)
            << "dist=" << dist << " q=" << q << " compression=" << compression;
      }
      EXPECT_LE(d.centroid_count(), d.max_centroids());
    }
  }
}

// Tail quantiles must also be close in *value* space for well-behaved
// distributions — p99 of a uniform must not smear the way a histogram would.
TEST(TDigest, TailValueAccuracyUniform) {
  TDigest d(100.0);
  auto xs = draw(50000, 0, 99);
  for (double x : xs) d.add(x);
  for (double q : {0.95, 0.99, 0.999}) {
    const double exact = percentile(xs, q);
    EXPECT_NEAR(d.quantile(q), exact, 10.0) << "q=" << q;  // 1% of the range
  }
}

TEST(TDigest, MonotoneQuantiles) {
  TDigest d(50.0);
  for (double x : draw(15000, 3, 5)) d.add(x);
  double prev = d.quantile(0.0);
  for (int i = 1; i <= 100; ++i) {
    const double cur = d.quantile(i / 100.0);
    EXPECT_GE(cur, prev) << "q=" << i / 100.0;
    prev = cur;
  }
}

TEST(TDigest, CdfQuantileRoughInverse) {
  TDigest d(100.0);
  auto xs = draw(20000, 1, 11);
  for (double x : xs) d.add(x);
  for (double q : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(d.cdf(d.quantile(q)), q, 0.02) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(d.cdf(d.min() - 1.0), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(d.max() + 1.0), 1.0);
}

// Identical insert/query interleavings give bit-identical digests, and
// querying without new mass is idempotent: compress() runs only when the
// buffer holds fresh points, so repeated/extra queries never perturb state.
// (A query mid-stream DOES flush the buffer early, which may legitimately
// shift cluster boundaries vs. an unqueried digest — both stay within the
// rank-error bound; only the interleaving-for-interleaving determinism and
// query idempotence are exact guarantees.)
TEST(TDigest, DeterministicAndQueriesIdempotent) {
  const auto xs = draw(30000, 2, 42);
  TDigest a(100.0), b(100.0);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    a.add(xs[i]);
    b.add(xs[i]);
    if (i % 997 == 0) {  // same interleaved queries on both
      (void)a.quantile(0.5);
      (void)b.quantile(0.5);
    }
  }
  for (double q : {0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(a.quantile(q), b.quantile(q)) << "q=" << q;
  }
  EXPECT_EQ(a.centroid_count(), b.centroid_count());
  // No new mass: any number of further queries leaves every answer fixed.
  const double p50 = a.quantile(0.5);
  const double p99 = a.quantile(0.99);
  for (int r = 0; r < 5; ++r) {
    (void)a.cdf(p50);
    (void)a.quantile(0.01);
    EXPECT_EQ(a.quantile(0.5), p50);
    EXPECT_EQ(a.quantile(0.99), p99);
  }
}

TEST(TDigest, MergePreservesCountAndAccuracy) {
  auto xs = draw(12000, 1, 21);
  TDigest whole(100.0), left(100.0), right(100.0);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    whole.add(xs[i]);
    (i < xs.size() / 2 ? left : right).add(xs[i]);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
  std::sort(xs.begin(), xs.end());
  for (double q : {0.05, 0.5, 0.95, 0.99}) {
    EXPECT_LE(rank_error(xs, left.quantile(q), q), 2.0 / 100.0) << "q=" << q;
  }
  EXPECT_LE(left.centroid_count(), left.max_centroids());
}

TEST(TDigest, MergeEmptyIsNoOp) {
  TDigest d(50.0), empty(50.0);
  for (double x : draw(1000, 0, 3)) d.add(x);
  const double before = d.quantile(0.5);
  d.merge(empty);
  EXPECT_EQ(d.quantile(0.5), before);
  empty.merge(d);
  EXPECT_EQ(empty.quantile(0.5), d.quantile(0.5));
  EXPECT_EQ(empty.count(), d.count());
}

// Memory is O(compression): the centroid bound holds even for 10^6 inserts
// of an adversarially sorted stream.
TEST(TDigest, BoundedCentroidsOnSortedStream) {
  TDigest d(50.0);
  for (int i = 0; i < 1000000; ++i) d.add(static_cast<double>(i));
  EXPECT_LE(d.centroid_count(), d.max_centroids());
  EXPECT_EQ(d.count(), 1000000u);
  // Sorted input is the histogram worst case; rank accuracy must survive.
  EXPECT_NEAR(d.quantile(0.5) / 1000000.0, 0.5, 0.02);
  EXPECT_NEAR(d.quantile(0.99) / 1000000.0, 0.99, 0.01);
}

}  // namespace
}  // namespace dpjit::util
