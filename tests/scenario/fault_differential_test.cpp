// Fault-plan neutrality differential (ROADMAP item 5, PR 7).
//
// A FaultPlan whose every probability/period is zero must be provably
// result-neutral: attaching it (force_attach) schedules no events and
// consumes no randomness, so the result digest — which covers
// events_processed — is byte-identical to the no-plan path. This test proves
// that across EVERY registered classic scenario at the conformance preset,
// plus a handful of extra seeds on representative scenarios.
//
// Sharded scale/* scenarios run exp::run_scale_model, which has no fault
// hooks (the plan attaches inside exp::World only), so the differential is
// vacuous there and they are skipped.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "exp/scenario.hpp"
#include "sim/fault_plan.hpp"

namespace dpjit::exp {
namespace {

std::uint64_t conformance_digest_with_faults(const Scenario& scenario, bool force_attach,
                                             std::uint64_t seed = 0) {
  ExperimentConfig cfg = conformance_preset(scenario.config());
  // Zero every fault knob (realism scenarios configure real faults); the
  // differential is about the all-zero plan, attached vs absent.
  cfg.faults = sim::FaultParams{};
  cfg.faults.force_attach = force_attach;
  if (seed != 0) cfg.seed = seed;
  return result_digest(run_experiment(cfg));
}

class FaultNeutrality : public ::testing::TestWithParam<std::string> {};

TEST_P(FaultNeutrality, ZeroProbabilityPlanIsByteIdentical) {
  const auto& scenario = scenario_registry().at(GetParam());
  EXPECT_EQ(conformance_digest_with_faults(scenario, /*force_attach=*/false),
            conformance_digest_with_faults(scenario, /*force_attach=*/true))
      << scenario.name
      << ": an attached all-zero FaultPlan changed results — some fault-path "
         "code runs (or draws randomness) when no faults are configured.";
}

std::vector<std::string> classic_scenario_names() {
  std::vector<std::string> names;
  for (const auto& s : scenario_registry().all()) {
    if (!s.sharded) names.push_back(s.name);
  }
  return names;
}

INSTANTIATE_TEST_SUITE_P(All, FaultNeutrality, ::testing::ValuesIn(classic_scenario_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '/' || c == '-') c = '_';
                           }
                           return name;
                         });

TEST(FaultNeutrality, HoldsAcrossSeeds) {
  // Same differential on representative scenarios under seeds the goldens
  // never exercise — the neutrality must not be an artifact of seed 1.
  const std::vector<std::string> reps = {"paper/static-n200", "churn/correlated-waves",
                                         "realism/lossy-gossip"};
  for (const auto& name : reps) {
    const auto& scenario = scenario_registry().at(name);
    for (const std::uint64_t seed : {2ULL, 97ULL, 20260808ULL}) {
      EXPECT_EQ(conformance_digest_with_faults(scenario, false, seed),
                conformance_digest_with_faults(scenario, true, seed))
          << name << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace dpjit::exp
