// PR 9 acceptance at the scenario level: the quantised/* family reproduces
// its committed golden digest at every (shards, threads) combination — the
// classic workflow path now shards byte-identically through the epoch-barrier
// driver — and the quantised network model converges to the fluid fair-share
// reference as the epoch shrinks (epoch -> 0 differential).
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "exp/scenario.hpp"
#include "net/network_model.hpp"

namespace dpjit::exp {
namespace {

const std::map<std::string, std::uint64_t>& golden_digests() {
  static const std::map<std::string, std::uint64_t> golden = [] {
    std::ifstream in(DPJIT_SCENARIO_GOLDEN_FILE);
    if (!in) throw std::runtime_error("cannot open " DPJIT_SCENARIO_GOLDEN_FILE);
    return parse_digest_document(in);
  }();
  return golden;
}

TEST(QuantisedDeterminism, RegistryHasTheQuantisedFamily) {
  const auto family = scenario_registry().family("quantised/");
  EXPECT_GE(family.size(), 3u);
  for (const Scenario* s : family) {
    // The quantised scenarios shard through SystemConfig::shards, not the
    // scale-model path, so the flag must stay false (see Scenario::sharded).
    EXPECT_FALSE(s->sharded) << s->name;
    const auto cfg = s->config();
    EXPECT_EQ(cfg.system.effective_network_mode(), net::NetworkMode::kQuantisedFair) << s->name;
  }
}

class QuantisedScenario : public ::testing::TestWithParam<std::string> {};

TEST_P(QuantisedScenario, GoldenDigestAtEveryShardAndThreadCount) {
  const auto& scenario = scenario_registry().at(GetParam());
  const auto it = golden_digests().find(scenario.name);
  ASSERT_NE(it, golden_digests().end()) << "no golden digest for " << scenario.name;
  for (const int shards : {1, 2, 4}) {
    for (const int threads : {1, 2}) {
      EXPECT_EQ(conformance_digest(scenario, shards, threads), it->second)
          << scenario.name << " diverged from its golden at shards=" << shards
          << " threads=" << threads
          << ": the epoch-barrier driver is no longer byte-identical to serial.";
    }
  }
}

std::vector<std::string> quantised_scenario_names() {
  std::vector<std::string> names;
  for (const Scenario* s : scenario_registry().family("quantised/")) names.push_back(s->name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(All, QuantisedScenario, ::testing::ValuesIn(quantised_scenario_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '/' || c == '-') c = '_';
                           }
                           return name;
                         });

TEST(QuantisedDeterminism, QuantisedStaysInTheFluidEnvelopeAtEveryEpoch) {
  // The experiment-level half of the epoch -> 0 differential. The CLOSED
  // loop (schedulers react to transfer finish times, near-tied placement
  // choices flip on epsilon perturbations) makes end-to-end metrics chaotic
  // in the epoch — an epoch sweep at conformance scale lands anywhere in
  // roughly +-30% of the fluid mean response, non-monotonically. The strict
  // monotone-convergence statement therefore lives where it is provable, on
  // open-loop flow sets against the barrier driver
  // (FluidDifferential.QuantisedContendedErrorIsLinearInTheEpochAndMonotone);
  // HERE we pin the whole reactive system to the fluid reference's envelope:
  // every epoch must produce a healthy run in a bounded band around fluid,
  // so a quantised-path bug that starves or double-counts transfers (the
  // failure modes that motivated the differential) still fails loudly.
  ExperimentConfig base = conformance_preset(scenario_registry().at("contention/fair-static").config());

  base.system.network_mode = net::NetworkMode::kFluidFair;
  const ExperimentResult fluid = run_experiment(base);
  ASSERT_GT(fluid.workflows_finished, 0u);
  ASSERT_GT(fluid.mean_response, 0.0);

  for (const double epoch : {480.0, 120.0, 30.0}) {
    ExperimentConfig cfg = base;
    cfg.system.network_mode = net::NetworkMode::kQuantisedFair;
    cfg.system.quantised_epoch_s = epoch;
    const ExperimentResult quantised = run_experiment(cfg);
    const double finished_ratio = static_cast<double>(quantised.workflows_finished) /
                                  static_cast<double>(fluid.workflows_finished);
    EXPECT_GE(finished_ratio, 0.65) << "epoch=" << epoch;
    EXPECT_LE(finished_ratio, 1.35) << "epoch=" << epoch;
    const double rel_err =
        std::abs(quantised.mean_response - fluid.mean_response) / fluid.mean_response;
    EXPECT_LT(rel_err, 0.5) << "epoch=" << epoch;
    EXPECT_EQ(quantised.tasks_failed, fluid.tasks_failed) << "epoch=" << epoch;
    EXPECT_GT(quantised.tasks_dispatched, 0u) << "epoch=" << epoch;
  }
}

}  // namespace
}  // namespace dpjit::exp
