// Bench-port parity: the fig binaries were moved from hand-rolled configs
// onto the scenario registry; these digests were recorded from the PRE-PORT
// binaries, so the registry path must reproduce the old outputs
// bit-identically. They double as a standing regression net for the whole
// stack at bench scales (bigger n than the conformance preset).
#include <gtest/gtest.h>

#include <string_view>

#include "bench_common.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep.hpp"

namespace dpjit::exp {
namespace {

util::Config cli_from(std::string_view text) { return util::Config::from_string(text); }

// Recorded from the pre-port fig04 path (bench::base_config(cli, 200) with
// --nodes=64): one digest per algorithm in across_algorithms order.
struct AlgoDigest {
  const char* algorithm;
  std::uint64_t digest;
};
constexpr AlgoDigest kFig04N64[] = {
    {"dheft", 7349063439217761596ULL},
    {"heft", 13560073497829356213ULL},
    {"maxmin", 9910605002200691914ULL},
    {"minmin", 8704180494732171477ULL},
    {"dsdf", 649670137986840733ULL},
    {"sufferage", 11512441263546402226ULL},
    {"dsmf", 13356348578863560070ULL},
    {"smf", 16565475073514119892ULL},
};

TEST(BenchParity, Fig04ScenarioPathReproducesPrePortDigests) {
  const auto base = bench::scenario_config(cli_from("nodes=64"), "paper/static-n200");
  EXPECT_EQ(base.nodes, 64);
  const auto results = run_sweep(across_algorithms(base));
  ASSERT_EQ(results.size(), std::size(kFig04N64));
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].algorithm, kFig04N64[i].algorithm);
    EXPECT_EQ(result_digest(results[i]), kFig04N64[i].digest) << results[i].algorithm;
  }
}

// Recorded from the pre-port fig11 path (bench::base_config(cli, 100),
// algorithm=dsmf) at its first two scales.
constexpr std::pair<int, std::uint64_t> kFig11Scales[] = {
    {100, 4652137975387078828ULL},
    {200, 13379726274966425877ULL},
};

TEST(BenchParity, Fig11ScenarioPathReproducesPrePortDigests) {
  auto base = bench::scenario_config(cli_from(""), "paper/static-n1000", /*bench_scale_nodes=*/100);
  base.algorithm = "dsmf";
  std::vector<ExperimentConfig> configs;
  for (const auto& [n, digest] : kFig11Scales) {
    ExperimentConfig cfg = base;
    cfg.nodes = n;
    configs.push_back(cfg);
  }
  const auto results = run_sweep(configs);
  ASSERT_EQ(results.size(), std::size(kFig11Scales));
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(result_digest(results[i]), kFig11Scales[i].second)
        << "n=" << kFig11Scales[i].first;
  }
}

// The n=500 DSMF end-to-end anchor recorded by PR 2 in BENCH_2.json /
// ROADMAP.md; ties exp::result_digest to the published fingerprint.
TEST(BenchParity, Fig11PerfAnchorN500MatchesRecordedDigest) {
  ExperimentConfig cfg = scenario_registry().at("paper/static-n500").config();
  EXPECT_EQ(cfg.nodes, 500);
  EXPECT_EQ(cfg.algorithm, "dsmf");
  const auto result = run_experiment(cfg);
  EXPECT_EQ(result_digest(result), 9659472094034910224ULL);
}

// scenario_config must honour the same CLI overrides base_config did.
TEST(BenchParity, ScenarioConfigAppliesCliOverridesLikeBaseConfig) {
  const auto cli = cli_from("nodes=80\nworkflows=5\nseed=9\nhours=12");
  const auto from_scenario = bench::scenario_config(cli, "paper/static-n200");
  const auto legacy = bench::base_config(cli, 200);
  EXPECT_EQ(from_scenario.nodes, legacy.nodes);
  EXPECT_EQ(from_scenario.workflows_per_node, legacy.workflows_per_node);
  EXPECT_EQ(from_scenario.seed, legacy.seed);
  EXPECT_DOUBLE_EQ(from_scenario.system.horizon_s, legacy.system.horizon_s);

  const auto paper = bench::scenario_config(cli_from("paper=true"), "paper/static-n200");
  EXPECT_EQ(paper.nodes, 1000);
}

}  // namespace
}  // namespace dpjit::exp
