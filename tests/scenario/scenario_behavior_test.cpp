// The extension scenarios must actually exercise the machinery they claim to
// (waves of arrivals, heavy tails, correlated churn, mixed templates) - a
// digest alone cannot show that the shape is right, only that it is stable.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "dag/generator.hpp"
#include "exp/scenario.hpp"
#include "exp/workload_factory.hpp"
#include "util/rng.hpp"

namespace dpjit::exp {
namespace {

ExperimentConfig small(const char* scenario_name) {
  return conformance_preset(scenario_registry().at(scenario_name).config());
}

TEST(ScenarioBehavior, FlashCrowdSubmitsInsideItsWaves) {
  const auto cfg = small("burst/flash-crowd");
  ASSERT_EQ(cfg.bursts.wave_count, 3);
  World world(cfg);
  world.run();
  ASSERT_EQ(world.system().workflow_count(),
            static_cast<std::size_t>(cfg.nodes) * cfg.workflows_per_node);
  std::vector<std::size_t> per_wave(static_cast<std::size_t>(cfg.bursts.wave_count), 0);
  for (std::size_t w = 0; w < world.system().workflow_count(); ++w) {
    const double t =
        world.system().workflow(WorkflowId{static_cast<WorkflowId::underlying_type>(w)})
            .submit_time;
    bool inside = false;
    for (int k = 0; k < cfg.bursts.wave_count; ++k) {
      const double open = cfg.bursts.first_wave_s + k * cfg.bursts.period_s;
      if (t >= open && t <= open + cfg.bursts.width_s) {
        ++per_wave[static_cast<std::size_t>(k)];
        inside = true;
        break;
      }
    }
    EXPECT_TRUE(inside) << "submission at t=" << t << " outside every wave window";
  }
  // 6 workflows per home over 3 waves = 2 per wave per home.
  for (std::size_t k = 0; k < per_wave.size(); ++k) {
    EXPECT_EQ(per_wave[k], static_cast<std::size_t>(cfg.nodes) * 2) << "wave " << k;
  }
}

TEST(ScenarioBehavior, HeavyTailedLoadsAreBoundedAndSkewed) {
  const auto cfg = small("tail/heavy-tailed-loads");
  ASSERT_EQ(cfg.workflow.load_distribution, dag::SizeDistribution::kLogNormal);
  ASSERT_EQ(cfg.workflow.data_distribution, dag::SizeDistribution::kPareto);
  util::Rng rng(17);
  std::vector<double> loads;
  for (int i = 0; i < 200; ++i) {
    const auto wf = dag::generate_workflow(WorkflowId{}, cfg.workflow, rng);
    for (std::size_t t = 0; t < wf.task_count(); ++t) {
      const auto& task = wf.task(TaskIndex{static_cast<TaskIndex::underlying_type>(t)});
      // The virtual exit task merged in by normalize() is zero-cost.
      if (task.load_mi == 0.0) continue;
      EXPECT_GE(task.load_mi, cfg.workflow.min_load_mi);
      EXPECT_LE(task.load_mi, cfg.workflow.max_load_mi);
      loads.push_back(task.load_mi);
    }
  }
  ASSERT_GT(loads.size(), 1000u);
  // Heavy tail: the median sits far below the arithmetic midpoint (for the
  // uniform draw the two coincide).
  std::nth_element(loads.begin(), loads.begin() + loads.size() / 2, loads.end());
  const double median = loads[loads.size() / 2];
  const double midpoint = 0.5 * (cfg.workflow.min_load_mi + cfg.workflow.max_load_mi);
  EXPECT_LT(median, 0.5 * midpoint);
}

TEST(ScenarioBehavior, CorrelatedWavesLoseMoreNodesThanPlainChurn) {
  const auto waves_cfg = small("churn/correlated-waves");
  ASSERT_GT(waves_cfg.system.churn.wave_every, 0);
  ExperimentConfig plain_cfg = waves_cfg;
  plain_cfg.system.churn.wave_every = 0;

  World waves(waves_cfg);
  waves.run();
  World plain(plain_cfg);
  plain.run();
  const auto& wm = waves.system().churn_model();
  const auto& pm = plain.system().churn_model();
  EXPECT_GT(wm.total_leaves(), pm.total_leaves());
  // Rejoins run at the base rate in both worlds, so the wave world can never
  // out-join the departures it piled up.
  EXPECT_LE(wm.total_joins(), wm.total_leaves());
}

TEST(ScenarioBehavior, MixedWorkloadDrawsEveryTemplateFamily) {
  const auto cfg = small("mixed/multi-template");
  ASSERT_FALSE(cfg.workload_mix.empty());
  World world(cfg);
  world.run();
  bool saw_montage = false, saw_forkjoin = false, saw_pipeline = false, saw_diamond = false,
       saw_random = false;
  for (std::size_t w = 0; w < world.system().workflow_count(); ++w) {
    const auto& dag =
        world.system().workflow(WorkflowId{static_cast<WorkflowId::underlying_type>(w)}).dag;
    const std::string& first = dag.task(TaskIndex{0}).name;
    if (first.rfind("mProject", 0) == 0) saw_montage = true;
    else if (first == "source") saw_forkjoin = true;
    else if (first == "stage0") saw_pipeline = true;
    else if (first == "split") saw_diamond = true;
    else if (first.rfind("t", 0) == 0) saw_random = true;
  }
  EXPECT_TRUE(saw_montage);
  EXPECT_TRUE(saw_forkjoin);
  EXPECT_TRUE(saw_pipeline);
  EXPECT_TRUE(saw_diamond);
  EXPECT_TRUE(saw_random);
}

TEST(ScenarioBehavior, OpenArrivalsScenarioStaggersSubmissions) {
  const auto cfg = small("open/poisson-arrivals");
  ASSERT_GT(cfg.mean_interarrival_s, 0.0);
  World world(cfg);
  world.run();
  std::set<double> times;
  for (std::size_t w = 0; w < world.system().workflow_count(); ++w) {
    times.insert(
        world.system().workflow(WorkflowId{static_cast<WorkflowId::underlying_type>(w)})
            .submit_time);
  }
  EXPECT_GT(times.size(), static_cast<std::size_t>(cfg.nodes));
  EXPECT_EQ(times.count(0.0), 0u);
}

}  // namespace
}  // namespace dpjit::exp
