// Shard determinism at the scenario level: a sharded scenario must reproduce
// its committed golden digest at EVERY shard count, and asking a classic
// (non-shardable) scenario to shard must be results-neutral. This is the
// in-tree twin of the shard-determinism CI job, which diffs
// `scenario_runner --digest --shards=N` output against golden_digests.json.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "exp/scenario.hpp"

namespace dpjit::exp {
namespace {

const std::map<std::string, std::uint64_t>& golden_digests() {
  static const std::map<std::string, std::uint64_t> golden = [] {
    std::ifstream in(DPJIT_SCENARIO_GOLDEN_FILE);
    if (!in) throw std::runtime_error("cannot open " DPJIT_SCENARIO_GOLDEN_FILE);
    return parse_digest_document(in);
  }();
  return golden;
}

TEST(ShardDeterminism, RegistryHasShardedScenarios) {
  int sharded = 0;
  for (const auto& s : scenario_registry().all()) {
    if (s.sharded) ++sharded;
  }
  EXPECT_GE(sharded, 3) << "the scale/* family should be registered";
}

class ShardedScenario : public ::testing::TestWithParam<std::string> {};

TEST_P(ShardedScenario, GoldenDigestAtEveryShardCount) {
  const auto& scenario = scenario_registry().at(GetParam());
  ASSERT_TRUE(scenario.sharded);
  const auto it = golden_digests().find(scenario.name);
  ASSERT_NE(it, golden_digests().end()) << "no golden digest for " << scenario.name;
  for (const int shards : {1, 2, 4}) {
    EXPECT_EQ(conformance_digest(scenario, shards), it->second)
        << scenario.name << " diverged from its golden at shards=" << shards
        << ": the sharded engine is no longer byte-identical to serial.";
  }
}

std::vector<std::string> sharded_scenario_names() {
  std::vector<std::string> names;
  for (const auto& s : scenario_registry().all()) {
    if (s.sharded) names.push_back(s.name);
  }
  return names;
}

INSTANTIATE_TEST_SUITE_P(All, ShardedScenario, ::testing::ValuesIn(sharded_scenario_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '/' || c == '-') c = '_';
                           }
                           return name;
                         });

TEST(ShardDeterminism, ShardCountIsNeutralForClassicScenarios) {
  // The classic GridSystem path cannot shard conservatively (zero lookahead
  // under fluid fair sharing), so a shard request must be ignored, not
  // half-applied. One representative per family keeps this fast.
  for (const std::string name :
       {"paper/static-n200", "contention/fair-static", "churn/correlated-waves"}) {
    const Scenario* scenario = scenario_registry().find(name);
    ASSERT_NE(scenario, nullptr) << name;
    ASSERT_FALSE(scenario->sharded) << name;
    const auto it = golden_digests().find(name);
    ASSERT_NE(it, golden_digests().end()) << name;
    EXPECT_EQ(conformance_digest(*scenario, 4), it->second)
        << name << ": --shards must not change classic-scenario results";
  }
}

}  // namespace
}  // namespace dpjit::exp
