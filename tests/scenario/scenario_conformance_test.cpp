// Golden-digest conformance: every registered scenario runs end-to-end at the
// small-n preset and must reproduce the digest committed in
// golden_digests.json. Any engine/policy/network/workload change that
// silently alters simulation results fails here loudly.
//
// When a digest change is LEGITIMATE (an intentional semantic change, a new
// scenario, a preset change), regenerate the goldens and commit the diff:
//
//   ./build/tools/scenario_runner --digest > tests/scenario/golden_digests.json
//
// and explain the change in the commit message (see README "Scenario
// library"). A digest change you cannot explain is a bug, not a golden
// update.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <string>

#include "exp/scenario.hpp"

namespace dpjit::exp {
namespace {

const std::map<std::string, std::uint64_t>& golden_digests() {
  static const std::map<std::string, std::uint64_t> golden = [] {
    std::ifstream in(DPJIT_SCENARIO_GOLDEN_FILE);
    if (!in) throw std::runtime_error("cannot open " DPJIT_SCENARIO_GOLDEN_FILE);
    return parse_digest_document(in);
  }();
  return golden;
}

TEST(ScenarioGoldens, FileCoversExactlyTheRegistry) {
  const auto& golden = golden_digests();
  EXPECT_EQ(golden.size(), scenario_registry().size())
      << "golden_digests.json and the registry disagree; regenerate with "
         "scenario_runner --digest";
  for (const auto& s : scenario_registry().all()) {
    EXPECT_TRUE(golden.count(s.name)) << "no golden digest for " << s.name;
  }
  for (const auto& [name, digest] : golden) {
    EXPECT_NE(scenario_registry().find(name), nullptr)
        << "golden digest for unregistered scenario " << name;
  }
}

class ScenarioConformance : public ::testing::TestWithParam<std::string> {};

TEST_P(ScenarioConformance, MatchesGoldenDigest) {
  const auto& scenario = scenario_registry().at(GetParam());
  const auto it = golden_digests().find(scenario.name);
  ASSERT_NE(it, golden_digests().end()) << "no golden digest for " << scenario.name;
  EXPECT_EQ(conformance_digest(scenario), it->second)
      << scenario.name
      << ": end-to-end results changed. If intentional, regenerate goldens with "
         "scenario_runner --digest and justify the change in the commit.";
}

std::vector<std::string> all_scenario_names() {
  std::vector<std::string> names;
  for (const auto& s : scenario_registry().all()) names.push_back(s.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(All, ScenarioConformance, ::testing::ValuesIn(all_scenario_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           // gtest names must be alphanumeric: "ccr/data-heavy"
                           // -> "ccr_data_heavy".
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '/' || c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace dpjit::exp
