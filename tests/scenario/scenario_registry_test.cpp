// Registry semantics: lookup, ordering, metadata hygiene, transform purity.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "exp/scenario.hpp"

namespace dpjit::exp {
namespace {

TEST(ScenarioRegistry, HasAtLeastTenScenarios) {
  EXPECT_GE(scenario_registry().size(), 10u);
}

TEST(ScenarioRegistry, NamesAreSortedUniqueAndWellFormed) {
  std::set<std::string> seen;
  std::string prev;
  for (const auto& s : scenario_registry().all()) {
    EXPECT_LT(prev, s.name);  // strictly ascending = sorted + unique
    prev = s.name;
    EXPECT_TRUE(seen.insert(s.name).second);
    // family/variant shape keeps --list groupable and CI logs readable.
    EXPECT_NE(s.name.find('/'), std::string::npos) << s.name;
    EXPECT_FALSE(s.description.empty()) << s.name;
    EXPECT_TRUE(s.transform) << s.name;
  }
}

TEST(ScenarioRegistry, FindAndAtAgree) {
  const auto& reg = scenario_registry();
  for (const auto& s : reg.all()) {
    ASSERT_NE(reg.find(s.name), nullptr);
    EXPECT_EQ(&reg.at(s.name), reg.find(s.name));
  }
  EXPECT_EQ(reg.find("no/such-scenario"), nullptr);
  EXPECT_THROW(static_cast<void>(reg.at("no/such-scenario")), std::out_of_range);
}

TEST(ScenarioRegistry, FamilySelectsByPrefix) {
  const auto dynamics = scenario_registry().family("paper/dynamic-");
  ASSERT_EQ(dynamics.size(), 4u);
  // Ascending name order doubles as ascending dynamic factor for the sweep
  // binaries (fig12-14 rely on this).
  double prev = 0.0;
  for (const auto* s : dynamics) {
    const auto cfg = s->apply(ExperimentConfig{});
    EXPECT_GT(cfg.dynamic_factor, prev);
    prev = cfg.dynamic_factor;
  }
  EXPECT_TRUE(scenario_registry().family("zzz/").empty());
}

TEST(ScenarioRegistry, TransformsArePure) {
  for (const auto& s : scenario_registry().all()) {
    ExperimentConfig base;
    base.nodes = 77;
    base.seed = 9;
    const auto once = s.apply(base);
    const auto twice = s.apply(base);
    EXPECT_EQ(once.nodes, twice.nodes) << s.name;
    EXPECT_EQ(once.seed, twice.seed) << s.name;
    EXPECT_EQ(once.algorithm, twice.algorithm) << s.name;
    EXPECT_EQ(once.dynamic_factor, twice.dynamic_factor) << s.name;
  }
}

TEST(ScenarioRegistry, AddRejectsDuplicatesAndEmpties) {
  ScenarioRegistry reg;
  auto identity = [](ExperimentConfig c) { return c; };
  reg.add({"a/b", "d", "", RuntimeTier::kFast, identity});
  EXPECT_THROW(reg.add({"a/b", "dup", "", RuntimeTier::kFast, identity}),
               std::invalid_argument);
  EXPECT_THROW(reg.add({"", "empty", "", RuntimeTier::kFast, identity}), std::invalid_argument);
  EXPECT_THROW(reg.add({"a/c", "no transform", "", RuntimeTier::kFast, nullptr}),
               std::invalid_argument);
}

TEST(ScenarioDigestDocument, RoundTrips) {
  std::vector<std::pair<std::string, std::uint64_t>> digests = {
      {"b/two", 2ULL}, {"a/one", 18446744073709551615ULL}};
  std::ostringstream os;
  write_digest_document(os, digests);
  std::istringstream is(os.str());
  const auto parsed = parse_digest_document(is);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed.at("a/one"), 18446744073709551615ULL);
  EXPECT_EQ(parsed.at("b/two"), 2ULL);
}

TEST(ScenarioDigestDocument, RejectsGarbage) {
  std::istringstream empty("");
  EXPECT_THROW(parse_digest_document(empty), std::runtime_error);
  std::istringstream wrong_schema("{\n  \"schema\": \"other\",\n  \"digests\": {\n  }\n}\n");
  EXPECT_THROW(parse_digest_document(wrong_schema), std::runtime_error);
  std::istringstream bad_value(
      "{\n  \"schema\": \"dpjit-scenario-digests-v1\",\n  \"digests\": {\n"
      "    \"a/b\": \"not-a-number\"\n  }\n}\n");
  EXPECT_THROW(parse_digest_document(bad_value), std::runtime_error);
}

}  // namespace
}  // namespace dpjit::exp
