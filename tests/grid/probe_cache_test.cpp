// The TransferManager's epoch-keyed probe cache must be invisible: every
// cached predicted_rate_mbps answer must be bit-identical to a fresh uncached
// probe of the live solver, at EVERY step of arbitrary flow churn and
// link-state histories. (A sampled NDEBUG assert inside the manager mirrors
// this in Debug runs; these tests check every pair after every mutation, in
// Release too.)
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "grid/transfer_manager.hpp"
#include "util/rng.hpp"

namespace dpjit::grid {
namespace {

/// Asserts cached == uncached, bit-for-bit, over every ordered pair - and
/// that asking again (now guaranteed to be served from the cache) still
/// agrees. EXPECT_EQ on doubles is exact equality, which for the non-NaN
/// values rates take (finite, 0, +inf) is bit equality.
void expect_cache_transparent(const TransferManager& tm, int n) {
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      const double fresh = tm.predicted_rate_mbps_uncached(NodeId{u}, NodeId{v});
      EXPECT_EQ(tm.predicted_rate_mbps(NodeId{u}, NodeId{v}), fresh) << u << "->" << v;
      EXPECT_EQ(tm.predicted_rate_mbps(NodeId{u}, NodeId{v}), fresh) << u << "->" << v;
    }
  }
}

class ProbeCache : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProbeCache, BitIdenticalUnderRandomizedFlowChurn) {
  util::Rng rng(GetParam());
  net::TopologyParams params;
  params.node_count = 14;
  auto topo_rng = rng.fork("topo");
  const auto topo = net::Topology::generate_waxman(params, topo_rng);
  const net::Routing routing(topo);
  sim::Engine engine;
  TransferManager tm(engine, topo, routing, TransferManager::Mode::kFluidFair);

  std::vector<std::uint64_t> live;
  double t = 0.0;
  for (int step = 0; step < 60; ++step) {
    // Advance past an arbitrary slice of completions/latency expiries, then
    // mutate the flow set, then require full transparency.
    t += rng.uniform(0.0, 40.0);
    engine.run_until(t);
    const int action = static_cast<int>(rng.index(3));
    if (action == 0 || live.size() < 4) {
      const auto src = NodeId{static_cast<int>(rng.index(params.node_count))};
      const auto dst = NodeId{static_cast<int>(rng.index(params.node_count))};
      live.push_back(tm.start(src, dst, rng.uniform(1.0, 800.0), [](bool) {}));
    } else if (action == 1) {
      tm.abort(live[rng.index(live.size())]);  // false if already resolved: fine
    } else {
      tm.node_left(NodeId{static_cast<int>(rng.index(params.node_count))});
    }
    expect_cache_transparent(tm, params.node_count);
  }
  engine.run_all();
  expect_cache_transparent(tm, params.node_count);
  // The history above must actually have exercised the cache on both sides.
  EXPECT_GT(tm.probe_cache_hits(), 0u);
  EXPECT_GT(tm.probe_cache_misses(), 0u);
}

TEST_P(ProbeCache, BitIdenticalUnderLinkStateWaves) {
  util::Rng rng(GetParam() * 6364136223846793005ull + 1442695040888963407ull);
  net::TopologyParams params;
  params.node_count = 12;
  auto topo_rng = rng.fork("topo");
  const auto topo = net::Topology::generate_waxman(params, topo_rng);
  net::Routing routing(topo, /*threads=*/1);
  sim::Engine engine;
  TransferManager tm(engine, topo, routing, TransferManager::Mode::kFluidFair);

  std::vector<LinkId> downed;
  double t = 0.0;
  for (int step = 0; step < 50; ++step) {
    t += rng.uniform(0.0, 30.0);
    engine.run_until(t);
    if (rng.index(2) == 0) {
      const auto src = NodeId{static_cast<int>(rng.index(params.node_count))};
      const auto dst = NodeId{static_cast<int>(rng.index(params.node_count))};
      tm.start(src, dst, rng.uniform(1.0, 500.0), [](bool) {});
    }
    // Wave: fail or repair one random link, production call order (Routing
    // reroutes first, then the manager reacts). Repairs MUST invalidate the
    // cache too - the route set changes even though no transfer aborts.
    if (!downed.empty() && rng.index(3) == 0) {
      const std::size_t k = rng.index(downed.size());
      const LinkId l = downed[k];
      downed.erase(downed.begin() + static_cast<std::ptrdiff_t>(k));
      routing.set_link_state(l, true);
      tm.link_state_changed(l, true);
    } else {
      const auto l = LinkId{static_cast<int>(rng.index(topo.link_count()))};
      if (routing.link_state(l)) {
        routing.set_link_state(l, false);
        tm.link_state_changed(l, false);
        downed.push_back(l);
      }
    }
    expect_cache_transparent(tm, params.node_count);
  }
  // Repair everything: probes must immediately see the healed routes.
  for (const LinkId l : downed) {
    routing.set_link_state(l, true);
    tm.link_state_changed(l, true);
  }
  expect_cache_transparent(tm, params.node_count);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProbeCache, ::testing::Values(1u, 7u, 42u, 1337u));

TEST(ProbeCacheCounters, HitsRequireUnchangedStamps) {
  const auto topo = net::Topology::from_links(3, {{NodeId{0}, NodeId{1}, 10.0, 0.1},
                                                  {NodeId{1}, NodeId{2}, 10.0, 0.1}});
  net::Routing routing(topo, /*threads=*/1);
  sim::Engine engine;
  TransferManager tm(engine, topo, routing, TransferManager::Mode::kFluidFair);

  // First ask solves, second is served from the cache.
  EXPECT_DOUBLE_EQ(tm.predicted_rate_mbps(NodeId{0}, NodeId{2}), 10.0);
  EXPECT_EQ(tm.probe_cache_misses(), 1u);
  EXPECT_DOUBLE_EQ(tm.predicted_rate_mbps(NodeId{0}, NodeId{2}), 10.0);
  EXPECT_EQ(tm.probe_cache_hits(), 1u);

  // A flow joining the fluid pool moves the solver's mutation stamp: the next
  // probe must re-solve and see the halved share.
  tm.start(NodeId{0}, NodeId{2}, 1000.0, [](bool) {});
  engine.run_until(1.0);  // past the 0.2 s latency phase
  EXPECT_DOUBLE_EQ(tm.predicted_rate_mbps(NodeId{0}, NodeId{2}), 5.0);
  EXPECT_EQ(tm.probe_cache_misses(), 2u);

  // A link REPAIR must also invalidate: fail+repair of an off-path link is a
  // route no-op but the stamp discipline stays conservative and correct.
  routing.set_link_state(LinkId{0}, false);
  tm.link_state_changed(LinkId{0}, false);
  const double after_fail = tm.predicted_rate_mbps(NodeId{1}, NodeId{2});
  EXPECT_EQ(after_fail, tm.predicted_rate_mbps_uncached(NodeId{1}, NodeId{2}));
  routing.set_link_state(LinkId{0}, true);
  tm.link_state_changed(LinkId{0}, true);
  const std::uint64_t misses = tm.probe_cache_misses();
  EXPECT_DOUBLE_EQ(tm.predicted_rate_mbps(NodeId{0}, NodeId{1}),
                   tm.predicted_rate_mbps_uncached(NodeId{0}, NodeId{1}));
  EXPECT_EQ(tm.probe_cache_misses(), misses + 1);  // repair emptied the cache

  // Bottleneck mode never touches the cache: the matrix read is already live.
  TransferManager bn(engine, topo, routing, TransferManager::Mode::kBottleneck);
  EXPECT_DOUBLE_EQ(bn.predicted_rate_mbps(NodeId{0}, NodeId{2}), 10.0);
  EXPECT_EQ(bn.probe_cache_hits() + bn.probe_cache_misses(), 0u);
}

TEST(ProbeCacheBatch, ProbeRatesMatchesScalarAnswers) {
  const auto topo = net::Topology::from_links(3, {{NodeId{0}, NodeId{1}, 10.0, 0.1},
                                                  {NodeId{1}, NodeId{2}, 4.0, 0.1}});
  const net::Routing routing(topo);
  sim::Engine engine;
  TransferManager tm(engine, topo, routing, TransferManager::Mode::kFluidFair);
  tm.start(NodeId{0}, NodeId{2}, 1000.0, [](bool) {});
  engine.run_until(1.0);

  const std::vector<std::pair<NodeId, NodeId>> pairs = {
      {NodeId{0}, NodeId{1}}, {NodeId{0}, NodeId{2}}, {NodeId{1}, NodeId{1}},
      {NodeId{2}, NodeId{0}}, {NodeId{0}, NodeId{2}},  // duplicate on purpose
  };
  const auto batch = tm.probe_rates(pairs);
  ASSERT_EQ(batch.size(), pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(batch[i], tm.predicted_rate_mbps_uncached(pairs[i].first, pairs[i].second)) << i;
  }
  EXPECT_EQ(batch[1], batch[4]);  // duplicates get the same (cached) answer
}

}  // namespace
}  // namespace dpjit::grid
