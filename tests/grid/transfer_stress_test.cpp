// Randomized stress of the fair-sharing fluid model: starts/aborts flows at
// random instants and checks conservation-style invariants that must hold for
// any schedule of operations.
#include <gtest/gtest.h>

#include "grid/transfer_manager.hpp"
#include "util/rng.hpp"

namespace dpjit::grid {
namespace {

class TransferStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransferStress, EveryTransferResolvesExactlyOnce) {
  util::Rng rng(GetParam());
  net::TopologyParams params;
  params.node_count = 12;
  auto topo_rng = rng.fork("topo");
  const auto topo = net::Topology::generate_waxman(params, topo_rng);
  const net::Routing routing(topo);
  sim::Engine engine;
  TransferManager tm(engine, topo, routing, TransferManager::Mode::kFluidFair);

  int resolved = 0;
  int succeeded = 0;
  std::vector<std::uint64_t> ids;
  const int kFlows = 40;
  for (int i = 0; i < kFlows; ++i) {
    const double start_at = rng.uniform(0.0, 500.0);
    engine.schedule_at(start_at, [&, i] {
      const auto src = NodeId{static_cast<int>(rng.index(12))};
      const auto dst = NodeId{static_cast<int>(rng.index(12))};
      ids.push_back(tm.start(src, dst, rng.uniform(0.0, 500.0), [&](bool ok) {
        ++resolved;
        succeeded += ok ? 1 : 0;
      }));
    });
  }
  // Random aborts midway.
  engine.schedule_at(600.0, [&] {
    for (std::size_t k = 0; k < ids.size(); k += 3) tm.abort(ids[k]);
  });
  engine.run_all();

  EXPECT_EQ(resolved, kFlows);  // every callback fired exactly once
  EXPECT_EQ(tm.active_count(), 0u);
  EXPECT_EQ(tm.completed_count(), static_cast<std::uint64_t>(succeeded));
}

TEST_P(TransferStress, FairNeverBeatsDedicatedBottleneckTime) {
  // A flow sharing links with others can never finish earlier than it would
  // alone on the bottleneck model (same route, full bandwidth).
  util::Rng rng(GetParam() * 7919);
  net::TopologyParams params;
  params.node_count = 10;
  auto topo_rng = rng.fork("topo");
  const auto topo = net::Topology::generate_waxman(params, topo_rng);
  const net::Routing routing(topo);
  sim::Engine engine;
  TransferManager fair(engine, topo, routing, TransferManager::Mode::kFluidFair);

  struct Probe {
    NodeId src, dst;
    double mb;
    double finished_at = -1;
  };
  std::vector<Probe> probes;
  for (int i = 0; i < 12; ++i) {
    Probe p;
    p.src = NodeId{static_cast<int>(rng.index(10))};
    p.dst = NodeId{static_cast<int>(rng.index(10))};
    p.mb = rng.uniform(1.0, 300.0);
    probes.push_back(p);
  }
  for (auto& p : probes) {
    fair.start(p.src, p.dst, p.mb, [&engine, &p](bool ok) {
      if (ok) p.finished_at = engine.now();
    });
  }
  engine.run_all();
  for (const auto& p : probes) {
    ASSERT_GE(p.finished_at, 0.0);
    const double solo = routing.transfer_time_s(p.src, p.dst, p.mb);
    // Routing stores bandwidths as float while the fluid model computes in
    // double, so allow the float-rounding slack (~1e-7 relative).
    EXPECT_GE(p.finished_at, solo - std::max(1e-6, solo * 1e-5))
        << "fair flow finished faster than dedicated path";
  }
}

TEST_P(TransferStress, ChurnTeardownResolvesEverythingExactlyOnce) {
  // Random starts interleaved with node departures (batched fair-mode
  // teardown): every callback fires exactly once, accounting stays exact,
  // and the pool is empty at the end.
  util::Rng rng(GetParam() * 104729);
  net::TopologyParams params;
  params.node_count = 14;
  auto topo_rng = rng.fork("topo");
  const auto topo = net::Topology::generate_waxman(params, topo_rng);
  const net::Routing routing(topo);
  sim::Engine engine;
  TransferManager tm(engine, topo, routing, TransferManager::Mode::kFluidFair);

  int resolved = 0;
  int succeeded = 0;
  double succeeded_mb = 0.0;
  const int kFlows = 60;
  for (int i = 0; i < kFlows; ++i) {
    const double start_at = rng.uniform(0.0, 400.0);
    const double mb = rng.uniform(0.0, 400.0);
    engine.schedule_at(start_at, [&, mb] {
      const auto src = NodeId{static_cast<int>(rng.index(14))};
      const auto dst = NodeId{static_cast<int>(rng.index(14))};
      tm.start(src, dst, mb, [&, mb](bool ok) {
        ++resolved;
        if (ok) {
          ++succeeded;
          succeeded_mb += mb;
        }
      });
    });
  }
  // Three departure waves while transfers are in flight.
  for (int wave = 0; wave < 3; ++wave) {
    engine.schedule_at(150.0 + 120.0 * wave, [&] {
      tm.node_left(NodeId{static_cast<int>(rng.index(14))});
    });
  }
  engine.run_all();

  EXPECT_EQ(resolved, kFlows);
  EXPECT_EQ(tm.active_count(), 0u);
  EXPECT_EQ(tm.completed_count(), static_cast<std::uint64_t>(succeeded));
  EXPECT_DOUBLE_EQ(tm.total_delivered_mb(), succeeded_mb);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransferStress, ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace dpjit::grid
