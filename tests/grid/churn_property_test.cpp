// Property tests for ChurnModel: invariants that must hold for ANY seed and
// parameter draw, checked across many randomized configurations and long
// runs - per-step leave/join balance in steady state, stable-node immunity,
// counter monotonicity, and the correlated-wave extension's balance sheet.
#include "grid/churn.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace dpjit::grid {
namespace {

struct Harness {
  Harness(int n, ChurnModel::Params params, std::uint64_t seed) : alive(n, true) {
    model = std::make_unique<ChurnModel>(
        engine, params, n, util::Rng(seed),
        [this](NodeId id) { return alive[static_cast<std::size_t>(id.get())]; },
        [this](NodeId id) {
          alive[static_cast<std::size_t>(id.get())] = false;
          step_leaves.back().push_back(id);
        },
        [this](NodeId id) {
          alive[static_cast<std::size_t>(id.get())] = true;
          step_joins.back().push_back(id);
        });
  }

  void step() {
    step_leaves.emplace_back();
    step_joins.emplace_back();
    model->step();
  }

  [[nodiscard]] int alive_count() const {
    int c = 0;
    for (bool a : alive) c += a ? 1 : 0;
    return c;
  }

  sim::Engine engine;
  std::vector<bool> alive;
  std::vector<std::vector<NodeId>> step_leaves, step_joins;
  std::unique_ptr<ChurnModel> model;
};

TEST(ChurnProperty, SteadyStateLeavesEqualJoinsPerStep) {
  for (std::uint64_t seed : {1ULL, 7ULL, 23ULL, 99ULL}) {
    // Precondition for exact steady state: the dynamic pool (140 nodes) must
    // hold at least 2x the per-step churn count, so neither the alive nor the
    // dead side ever caps a step (df 0.3 -> 60 churners, 120 <= 140).
    for (double df : {0.05, 0.1, 0.25, 0.3}) {
      ChurnModel::Params params;
      params.dynamic_factor = df;
      params.stable_count = 60;
      Harness h(200, params, seed);
      const auto expected = static_cast<std::size_t>(df * 200);
      for (int s = 0; s < 50; ++s) {
        h.step();
        SCOPED_TRACE("seed " + std::to_string(seed) + " df " + std::to_string(df) + " step " +
                     std::to_string(s));
        EXPECT_EQ(h.step_leaves.back().size(), expected);
        // The join pool is the dead set at step start, so the very first step
        // has nobody to rejoin; from the second step on the model is in
        // steady state and joins balance leaves exactly.
        EXPECT_EQ(h.step_joins.back().size(), s == 0 ? 0u : expected);
      }
    }
  }
}

TEST(ChurnProperty, StableNodesNeverChurnUnderAnySeed) {
  for (std::uint64_t seed : {3ULL, 11ULL, 31ULL}) {
    ChurnModel::Params params;
    params.dynamic_factor = 0.4;
    params.stable_count = 77;
    params.wave_every = 3;  // waves must respect stability too
    params.wave_multiplier = 2.0;
    Harness h(150, params, seed);
    for (int s = 0; s < 60; ++s) h.step();
    for (const auto& stepv : h.step_leaves) {
      for (NodeId n : stepv) EXPECT_GE(n.get(), 77);
    }
    for (const auto& stepv : h.step_joins) {
      for (NodeId n : stepv) EXPECT_GE(n.get(), 77);
    }
    for (int i = 0; i < 77; ++i) EXPECT_TRUE(h.alive[static_cast<std::size_t>(i)]);
  }
}

TEST(ChurnProperty, CountersAreMonotoneAndConsistentUnderLongRuns) {
  ChurnModel::Params params;
  params.dynamic_factor = 0.2;
  params.stable_count = 100;
  Harness h(300, params, 5);
  std::uint64_t prev_leaves = 0;
  std::uint64_t prev_joins = 0;
  std::uint64_t sum_leaves = 0;
  std::uint64_t sum_joins = 0;
  for (int s = 0; s < 500; ++s) {
    h.step();
    // Monotone non-decreasing, and growing by exactly what the callbacks saw.
    EXPECT_GE(h.model->total_leaves(), prev_leaves);
    EXPECT_GE(h.model->total_joins(), prev_joins);
    sum_leaves += h.step_leaves.back().size();
    sum_joins += h.step_joins.back().size();
    EXPECT_EQ(h.model->total_leaves(), sum_leaves);
    EXPECT_EQ(h.model->total_joins(), sum_joins);
    prev_leaves = h.model->total_leaves();
    prev_joins = h.model->total_joins();
    // A node can never be double-left or double-joined within a step.
    EXPECT_LE(h.model->total_joins(), h.model->total_leaves());
  }
  EXPECT_EQ(h.model->total_steps(), 500u);
}

TEST(ChurnProperty, WaveStepsChurnTheMultiplierAndRecover) {
  ChurnModel::Params params;
  params.dynamic_factor = 0.1;
  params.stable_count = 100;
  params.wave_every = 4;
  params.wave_multiplier = 3.0;
  Harness h(400, params, 13);
  const std::size_t base = 40;  // 0.1 * 400
  // While the dynamic pool (300 nodes) is still deep, wave steps depart the
  // full 3x multiple and ordinary steps the base count.
  for (int s = 1; s <= 8; ++s) {
    h.step();
    if (s % 4 == 0) {
      EXPECT_EQ(h.step_leaves.back().size(), 3 * base) << "step " << s;
    } else if (s > 1) {
      EXPECT_EQ(h.step_leaves.back().size(), base) << "step " << s;
    }
  }
  // Long run: waves drain the pool toward a base-rate-sustained equilibrium,
  // where departures are capped by whoever is still alive. Joins never exceed
  // the base rate - waves drain, recovery is gradual.
  for (int s = 9; s <= 40; ++s) {
    h.step();
    EXPECT_LE(h.step_leaves.back().size(), 3 * base);
    EXPECT_LE(h.step_joins.back().size(), base);
  }
  // Waves drain the dynamic pool toward a base-rate-sustained equilibrium,
  // not to zero: stable nodes plus a recovering dynamic remnant stay alive.
  EXPECT_GE(h.alive_count(), 100 + static_cast<int>(base) / 2);
  EXPECT_LT(h.alive_count(), 400);
}

TEST(ChurnProperty, ValidatesWaveParameters) {
  sim::Engine engine;
  auto noop = [](NodeId) {};
  auto alive = [](NodeId) { return true; };
  ChurnModel::Params bad;
  bad.dynamic_factor = 0.1;
  bad.wave_every = -1;
  EXPECT_THROW(ChurnModel(engine, bad, 10, util::Rng(1), alive, noop, noop),
               std::invalid_argument);
  bad.wave_every = 2;
  bad.wave_multiplier = 0.5;
  EXPECT_THROW(ChurnModel(engine, bad, 10, util::Rng(1), alive, noop, noop),
               std::invalid_argument);
}

}  // namespace
}  // namespace dpjit::grid
