// Randomized differential suite for the NetworkModel seam (PR 9): the fluid
// fair-sharing mode is the REFERENCE the refactor must not move, so (a) a
// random fluid workload replayed from the same seed produces a bit-identical
// completion transcript, (b) cached probes match the uncached and the legacy
// from-scratch probe bit-for-bit at random instants, and (c) the quantised
// mode's single-flow completion time decreases monotonically towards the
// fluid answer as the epoch shrinks (the property behind the scenario-tier
// convergence test).
#include <gtest/gtest.h>

#include <limits>
#include <utility>
#include <vector>

#include "core/workflow_shard.hpp"
#include "grid/transfer_manager.hpp"
#include "util/rng.hpp"

namespace dpjit::grid {
namespace {

class FluidDifferential : public ::testing::TestWithParam<std::uint64_t> {};

struct FlowSpec {
  NodeId src, dst;
  double mb;
  double start_at;
};

std::vector<FlowSpec> random_flows(util::Rng& rng, int nodes, int count) {
  std::vector<FlowSpec> specs;
  specs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    FlowSpec s;
    s.src = NodeId{static_cast<int>(rng.index(static_cast<std::size_t>(nodes)))};
    s.dst = NodeId{static_cast<int>(rng.index(static_cast<std::size_t>(nodes)))};
    s.mb = rng.uniform(0.0, 400.0);
    s.start_at = rng.uniform(0.0, 300.0);
    specs.push_back(s);
  }
  return specs;
}

TEST_P(FluidDifferential, ReplayedFluidRunIsBitIdentical) {
  util::Rng seed_rng(GetParam());
  net::TopologyParams params;
  params.node_count = 12;
  auto topo_rng = seed_rng.fork("topo");
  const auto topo = net::Topology::generate_waxman(params, topo_rng);
  const net::Routing routing(topo);
  auto flow_rng = seed_rng.fork("flows");
  const auto specs = random_flows(flow_rng, 12, 40);

  const auto run = [&] {
    sim::Engine engine;
    TransferManager tm(engine, topo, routing, TransferManager::Mode::kFluidFair);
    std::vector<std::pair<double, bool>> transcript;
    for (const FlowSpec& s : specs) {
      engine.schedule_at(s.start_at, [&tm, &engine, &transcript, s] {
        tm.start(s.src, s.dst, s.mb,
                 [&engine, &transcript](bool ok) { transcript.emplace_back(engine.now(), ok); });
      });
    }
    engine.run_all();
    return transcript;
  };

  const auto first = run();
  const auto second = run();
  ASSERT_EQ(first.size(), specs.size());
  // operator== on double is deliberate: "bit-identical", not "close".
  EXPECT_EQ(first, second);
}

TEST_P(FluidDifferential, CachedProbeMatchesUncachedAndLegacyReferenceBitForBit) {
  util::Rng rng(GetParam() * 6151);
  net::TopologyParams params;
  params.node_count = 10;
  auto topo_rng = rng.fork("topo");
  const auto topo = net::Topology::generate_waxman(params, topo_rng);
  const net::Routing routing(topo);
  sim::Engine engine;
  TransferManager tm(engine, topo, routing, TransferManager::Mode::kFluidFair);

  for (const FlowSpec& s : random_flows(rng, 10, 25)) {
    engine.schedule_at(s.start_at, [&tm, s] { tm.start(s.src, s.dst, s.mb, [](bool) {}); });
  }
  // Probe random pairs at random instants while the flow set churns. Each
  // pair is probed twice so the second answer exercises an actual cache hit.
  for (int i = 0; i < 60; ++i) {
    const double at = rng.uniform(0.0, 400.0);
    const auto src = NodeId{static_cast<int>(rng.index(10))};
    const auto dst = NodeId{static_cast<int>(rng.index(10))};
    engine.schedule_at(at, [&tm, src, dst] {
      const double cached_cold = tm.predicted_rate_mbps(src, dst);
      const double cached_warm = tm.predicted_rate_mbps(src, dst);
      const double uncached = tm.predicted_rate_mbps_uncached(src, dst);
      const double legacy = tm.predicted_rate_mbps_reference(src, dst);
      EXPECT_EQ(cached_cold, cached_warm);
      EXPECT_EQ(cached_cold, uncached);
      EXPECT_EQ(cached_cold, legacy);
    });
  }
  engine.run_all();
  EXPECT_GT(tm.probe_cache_hits(), 0u);
}

TEST_P(FluidDifferential, QuantisedSingleFlowConvergesMonotonicallyToFluid) {
  // One uncontended flow: quantising can only ADD delay (admission waits for
  // a barrier, the drain is detected at a window edge, the DONE message rides
  // one more epoch), so completion time is non-increasing as the epoch
  // shrinks and bounded below by the fluid completion time.
  util::Rng rng(GetParam() * 9973);
  net::TopologyParams params;
  params.node_count = 8;
  auto topo_rng = rng.fork("topo");
  const auto topo = net::Topology::generate_waxman(params, topo_rng);
  const net::Routing routing(topo);

  NodeId src{0}, dst{0};
  while (src == dst) {
    src = NodeId{static_cast<int>(rng.index(8))};
    dst = NodeId{static_cast<int>(rng.index(8))};
  }
  const double mb = rng.uniform(50.0, 400.0);

  double fluid_done = -1.0;
  {
    sim::Engine engine;
    TransferManager tm(engine, topo, routing, TransferManager::Mode::kFluidFair);
    tm.start(src, dst, mb, [&](bool ok) {
      if (ok) fluid_done = engine.now();
    });
    engine.run_all();
  }
  ASSERT_GT(fluid_done, 0.0);

  double prev = std::numeric_limits<double>::infinity();
  for (const double epoch : {16.0, 8.0, 4.0, 2.0, 1.0, 0.5}) {
    sim::Engine world;
    TransferManager tm(world, topo, routing, TransferManager::Mode::kQuantisedFair);
    const core::ShardMap map = core::compute_shard_map(routing, 2);
    double done = -1.0;
    tm.start(src, dst, mb, [&](bool ok) {
      if (ok) done = world.now();
    });
    (void)core::run_quantised_transfers(world, tm, map, epoch, 1, fluid_done + 20.0 * epoch + 10.0);
    ASSERT_GT(done, 0.0) << "epoch=" << epoch;
    EXPECT_LE(done, prev) << "epoch=" << epoch;
    // Quantisation never beats the fluid answer, and at epoch E the overhead
    // is bounded by one admission wait + one drain window + one DONE hop.
    EXPECT_GE(done, fluid_done - 1e-9) << "epoch=" << epoch;
    EXPECT_LE(done, fluid_done + 3.0 * epoch + 1e-9) << "epoch=" << epoch;
    prev = done;
  }
}

TEST_P(FluidDifferential, QuantisedContendedErrorIsLinearInTheEpochAndMonotone) {
  // The full epoch -> 0 differential: a CONTENDED open-loop flow set, fluid
  // completion times as the reference, the quantised barrier driver at
  // halving epochs. Per-flow absolute error halves with the epoch (barrier
  // grids nest under halving) and stays within a small linear envelope
  // (admission wait + drain-window rounding + the one-epoch DONE hop are each
  // O(E); measured slope is ~2.2 E across seeds, asserted at 3.5 E).
  util::Rng rng(GetParam() * 12289);
  net::TopologyParams params;
  params.node_count = 10;
  auto topo_rng = rng.fork("topo");
  const auto topo = net::Topology::generate_waxman(params, topo_rng);
  const net::Routing routing(topo);
  const auto specs = [&] {
    auto flow_rng = rng.fork("flows");
    auto s = random_flows(flow_rng, 10, 20);
    for (auto& f : s) {
      f.mb = 10.0 + f.mb;       // no zero-size flows: every id must finish
      f.start_at = f.start_at / 3.0;  // tighter arrivals -> real contention
    }
    return s;
  }();

  std::vector<double> fluid_done(specs.size(), -1.0);
  {
    sim::Engine engine;
    TransferManager tm(engine, topo, routing, TransferManager::Mode::kFluidFair);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const FlowSpec& s = specs[i];
      engine.schedule_at(s.start_at, [&tm, &engine, &fluid_done, s, i] {
        tm.start(s.src, s.dst, s.mb, [&engine, &fluid_done, i](bool ok) {
          if (ok) fluid_done[i] = engine.now();
        });
      });
    }
    engine.run_all();
  }

  double prev_err = std::numeric_limits<double>::infinity();
  for (const double epoch : {16.0, 8.0, 4.0, 2.0, 1.0, 0.5}) {
    sim::Engine world;
    TransferManager tm(world, topo, routing, TransferManager::Mode::kQuantisedFair);
    const core::ShardMap map = core::compute_shard_map(routing, 2);
    std::vector<double> done(specs.size(), -1.0);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const FlowSpec& s = specs[i];
      world.schedule_at(s.start_at, [&tm, &world, &done, s, i] {
        tm.start(s.src, s.dst, s.mb, [&world, &done, i](bool ok) {
          if (ok) done[i] = world.now();
        });
      });
    }
    (void)core::run_quantised_transfers(world, tm, map, epoch, 1, 100000.0);

    double err = 0.0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      ASSERT_GT(fluid_done[i], 0.0) << i;
      ASSERT_GT(done[i], 0.0) << "epoch=" << epoch << " flow " << i;
      err += std::abs(done[i] - fluid_done[i]);
    }
    err /= static_cast<double>(specs.size());
    EXPECT_LT(err, prev_err) << "epoch=" << epoch;
    EXPECT_LE(err, 3.5 * epoch) << "epoch=" << epoch;
    prev_err = err;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FluidDifferential, ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace dpjit::grid
