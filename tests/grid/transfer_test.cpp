#include "grid/transfer_manager.hpp"

#include <gtest/gtest.h>

namespace dpjit::grid {
namespace {

// 0 --(bw 10, lat 1)-- 1 --(bw 10, lat 1)-- 2 ; both flows via the middle.
struct Fixture {
  Fixture() : topo(net::Topology::from_links(3, {{NodeId{0}, NodeId{1}, 10.0, 1.0},
                                                 {NodeId{1}, NodeId{2}, 10.0, 1.0}})),
              routing(topo) {}
  sim::Engine engine;
  net::Topology topo;
  net::Routing routing;
};

TEST(TransferBottleneck, DeliversAtLatencyPlusSizeOverBw) {
  Fixture f;
  TransferManager tm(f.engine, f.topo, f.routing, TransferManager::Mode::kBottleneck);
  double done_at = -1;
  tm.start(NodeId{0}, NodeId{2}, 100.0, [&](bool ok) {
    EXPECT_TRUE(ok);
    done_at = f.engine.now();
  });
  f.engine.run_all();
  // latency 2 s + 100 Mb / 10 Mb/s = 12 s.
  EXPECT_DOUBLE_EQ(done_at, 12.0);
  EXPECT_EQ(tm.completed_count(), 1u);
  EXPECT_DOUBLE_EQ(tm.total_delivered_mb(), 100.0);
}

TEST(TransferBottleneck, LoopbackIsImmediate) {
  Fixture f;
  TransferManager tm(f.engine, f.topo, f.routing);
  double done_at = -1;
  tm.start(NodeId{1}, NodeId{1}, 5000.0, [&](bool ok) {
    EXPECT_TRUE(ok);
    done_at = f.engine.now();
  });
  f.engine.run_all();
  EXPECT_DOUBLE_EQ(done_at, 0.0);
}

TEST(TransferBottleneck, NoContentionBetweenTransfers) {
  Fixture f;
  TransferManager tm(f.engine, f.topo, f.routing);
  std::vector<double> done;
  for (int i = 0; i < 3; ++i) {
    tm.start(NodeId{0}, NodeId{2}, 100.0, [&](bool) { done.push_back(f.engine.now()); });
  }
  f.engine.run_all();
  ASSERT_EQ(done.size(), 3u);
  for (double t : done) EXPECT_DOUBLE_EQ(t, 12.0);  // all at full bandwidth
}

TEST(TransferBottleneck, AbortFiresFailureCallback) {
  Fixture f;
  TransferManager tm(f.engine, f.topo, f.routing);
  bool ok = true;
  const auto id = tm.start(NodeId{0}, NodeId{2}, 100.0, [&](bool success) { ok = success; });
  EXPECT_TRUE(tm.abort(id));
  EXPECT_FALSE(ok);
  EXPECT_FALSE(tm.abort(id));
  f.engine.run_all();
  EXPECT_EQ(tm.completed_count(), 0u);
}

TEST(TransferBottleneck, NodeLeftAbortsTouchingTransfers) {
  Fixture f;
  TransferManager tm(f.engine, f.topo, f.routing);
  int failures = 0;
  tm.start(NodeId{0}, NodeId{2}, 100.0, [&](bool ok2) { failures += ok2 ? 0 : 1; });
  tm.start(NodeId{2}, NodeId{0}, 100.0, [&](bool ok2) { failures += ok2 ? 0 : 1; });
  tm.start(NodeId{0}, NodeId{1}, 100.0, [&](bool ok2) { failures += ok2 ? 0 : 1; });
  tm.node_left(NodeId{2});
  EXPECT_EQ(failures, 2);
  f.engine.run_all();
  EXPECT_EQ(tm.completed_count(), 1u);  // the 0->1 transfer survives
}

TEST(TransferBottleneck, ZeroSizeCostsLatencyOnly) {
  Fixture f;
  TransferManager tm(f.engine, f.topo, f.routing);
  double done_at = -1;
  tm.start(NodeId{0}, NodeId{1}, 0.0, [&](bool) { done_at = f.engine.now(); });
  f.engine.run_all();
  EXPECT_DOUBLE_EQ(done_at, 1.0);
}

TEST(TransferFair, SingleFlowMatchesBottleneckModel) {
  Fixture f;
  TransferManager tm(f.engine, f.topo, f.routing, TransferManager::Mode::kFairSharing);
  double done_at = -1;
  tm.start(NodeId{0}, NodeId{2}, 100.0, [&](bool ok) {
    EXPECT_TRUE(ok);
    done_at = f.engine.now();
  });
  f.engine.run_all();
  EXPECT_NEAR(done_at, 12.0, 1e-6);
}

TEST(TransferFair, TwoFlowsShareTheLink) {
  Fixture f;
  TransferManager tm(f.engine, f.topo, f.routing, TransferManager::Mode::kFairSharing);
  std::vector<double> done;
  tm.start(NodeId{0}, NodeId{2}, 100.0, [&](bool) { done.push_back(f.engine.now()); });
  tm.start(NodeId{0}, NodeId{2}, 100.0, [&](bool) { done.push_back(f.engine.now()); });
  f.engine.run_all();
  ASSERT_EQ(done.size(), 2u);
  // Each flow gets 5 Mb/s while both are active -> both finish ~ lat + 20 s.
  EXPECT_NEAR(done[0], 22.0, 0.5);
  EXPECT_NEAR(done[1], 22.0, 0.5);
}

TEST(TransferFair, ShortFlowReleasesBandwidth) {
  Fixture f;
  TransferManager tm(f.engine, f.topo, f.routing, TransferManager::Mode::kFairSharing);
  std::vector<std::pair<int, double>> done;
  tm.start(NodeId{0}, NodeId{2}, 20.0, [&](bool) { done.emplace_back(0, f.engine.now()); });
  tm.start(NodeId{0}, NodeId{2}, 100.0, [&](bool) { done.emplace_back(1, f.engine.now()); });
  f.engine.run_all();
  ASSERT_EQ(done.size(), 2u);
  // Short flow: shares 5 Mb/s for 20/5 = 4 s -> done at lat 2 + 4 = 6 s.
  EXPECT_EQ(done[0].first, 0);
  EXPECT_NEAR(done[0].second, 6.0, 0.5);
  // Long flow: 20 Mb at 5 Mb/s (4s) + remaining 80 Mb at 10 Mb/s (8s) -> ~14 s.
  EXPECT_EQ(done[1].first, 1);
  EXPECT_NEAR(done[1].second, 14.0, 0.5);
}

TEST(TransferFair, AbortRestoresBandwidth) {
  Fixture f;
  TransferManager tm(f.engine, f.topo, f.routing, TransferManager::Mode::kFairSharing);
  double done_at = -1;
  const auto doomed =
      tm.start(NodeId{0}, NodeId{2}, 1000.0, [&](bool ok) { EXPECT_FALSE(ok); });
  tm.start(NodeId{0}, NodeId{2}, 100.0, [&](bool) { done_at = f.engine.now(); });
  // Let both flows run shared for 4 s (after 2 s latency), then kill one.
  f.engine.schedule_at(6.0, [&] { tm.abort(doomed); });
  f.engine.run_all();
  // Survivor: 4 s at 5 Mb/s (20 Mb) + 80 Mb at 10 Mb/s (8 s) -> ~14 s.
  EXPECT_NEAR(done_at, 14.0, 0.5);
}

}  // namespace
}  // namespace dpjit::grid
