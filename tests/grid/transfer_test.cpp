#include "grid/transfer_manager.hpp"

#include <gtest/gtest.h>

namespace dpjit::grid {
namespace {

// 0 --(bw 10, lat 1)-- 1 --(bw 10, lat 1)-- 2 ; both flows via the middle.
struct Fixture {
  Fixture() : topo(net::Topology::from_links(3, {{NodeId{0}, NodeId{1}, 10.0, 1.0},
                                                 {NodeId{1}, NodeId{2}, 10.0, 1.0}})),
              routing(topo) {}
  sim::Engine engine;
  net::Topology topo;
  net::Routing routing;
};

TEST(TransferBottleneck, DeliversAtLatencyPlusSizeOverBw) {
  Fixture f;
  TransferManager tm(f.engine, f.topo, f.routing, TransferManager::Mode::kBottleneck);
  double done_at = -1;
  tm.start(NodeId{0}, NodeId{2}, 100.0, [&](bool ok) {
    EXPECT_TRUE(ok);
    done_at = f.engine.now();
  });
  f.engine.run_all();
  // latency 2 s + 100 Mb / 10 Mb/s = 12 s.
  EXPECT_DOUBLE_EQ(done_at, 12.0);
  EXPECT_EQ(tm.completed_count(), 1u);
  EXPECT_DOUBLE_EQ(tm.total_delivered_mb(), 100.0);
}

TEST(TransferBottleneck, LoopbackIsImmediate) {
  Fixture f;
  TransferManager tm(f.engine, f.topo, f.routing);
  double done_at = -1;
  tm.start(NodeId{1}, NodeId{1}, 5000.0, [&](bool ok) {
    EXPECT_TRUE(ok);
    done_at = f.engine.now();
  });
  f.engine.run_all();
  EXPECT_DOUBLE_EQ(done_at, 0.0);
}

TEST(TransferBottleneck, NoContentionBetweenTransfers) {
  Fixture f;
  TransferManager tm(f.engine, f.topo, f.routing);
  std::vector<double> done;
  for (int i = 0; i < 3; ++i) {
    tm.start(NodeId{0}, NodeId{2}, 100.0, [&](bool) { done.push_back(f.engine.now()); });
  }
  f.engine.run_all();
  ASSERT_EQ(done.size(), 3u);
  for (double t : done) EXPECT_DOUBLE_EQ(t, 12.0);  // all at full bandwidth
}

TEST(TransferBottleneck, AbortFiresFailureCallback) {
  Fixture f;
  TransferManager tm(f.engine, f.topo, f.routing);
  bool ok = true;
  const auto id = tm.start(NodeId{0}, NodeId{2}, 100.0, [&](bool success) { ok = success; });
  EXPECT_TRUE(tm.abort(id));
  EXPECT_FALSE(ok);
  EXPECT_FALSE(tm.abort(id));
  f.engine.run_all();
  EXPECT_EQ(tm.completed_count(), 0u);
}

TEST(TransferBottleneck, NodeLeftAbortsTouchingTransfers) {
  Fixture f;
  TransferManager tm(f.engine, f.topo, f.routing);
  int failures = 0;
  tm.start(NodeId{0}, NodeId{2}, 100.0, [&](bool ok2) { failures += ok2 ? 0 : 1; });
  tm.start(NodeId{2}, NodeId{0}, 100.0, [&](bool ok2) { failures += ok2 ? 0 : 1; });
  tm.start(NodeId{0}, NodeId{1}, 100.0, [&](bool ok2) { failures += ok2 ? 0 : 1; });
  tm.node_left(NodeId{2});
  EXPECT_EQ(failures, 2);
  f.engine.run_all();
  EXPECT_EQ(tm.completed_count(), 1u);  // the 0->1 transfer survives
}

TEST(TransferBottleneck, ZeroSizeCostsLatencyOnly) {
  Fixture f;
  TransferManager tm(f.engine, f.topo, f.routing);
  double done_at = -1;
  tm.start(NodeId{0}, NodeId{1}, 0.0, [&](bool) { done_at = f.engine.now(); });
  f.engine.run_all();
  EXPECT_DOUBLE_EQ(done_at, 1.0);
}

TEST(TransferFair, SingleFlowMatchesBottleneckModel) {
  Fixture f;
  TransferManager tm(f.engine, f.topo, f.routing, TransferManager::Mode::kFluidFair);
  double done_at = -1;
  tm.start(NodeId{0}, NodeId{2}, 100.0, [&](bool ok) {
    EXPECT_TRUE(ok);
    done_at = f.engine.now();
  });
  f.engine.run_all();
  EXPECT_NEAR(done_at, 12.0, 1e-6);
}

TEST(TransferFair, TwoFlowsShareTheLink) {
  Fixture f;
  TransferManager tm(f.engine, f.topo, f.routing, TransferManager::Mode::kFluidFair);
  std::vector<double> done;
  tm.start(NodeId{0}, NodeId{2}, 100.0, [&](bool) { done.push_back(f.engine.now()); });
  tm.start(NodeId{0}, NodeId{2}, 100.0, [&](bool) { done.push_back(f.engine.now()); });
  f.engine.run_all();
  ASSERT_EQ(done.size(), 2u);
  // Each flow gets 5 Mb/s while both are active -> both finish ~ lat + 20 s.
  EXPECT_NEAR(done[0], 22.0, 0.5);
  EXPECT_NEAR(done[1], 22.0, 0.5);
}

TEST(TransferFair, ShortFlowReleasesBandwidth) {
  Fixture f;
  TransferManager tm(f.engine, f.topo, f.routing, TransferManager::Mode::kFluidFair);
  std::vector<std::pair<int, double>> done;
  tm.start(NodeId{0}, NodeId{2}, 20.0, [&](bool) { done.emplace_back(0, f.engine.now()); });
  tm.start(NodeId{0}, NodeId{2}, 100.0, [&](bool) { done.emplace_back(1, f.engine.now()); });
  f.engine.run_all();
  ASSERT_EQ(done.size(), 2u);
  // Short flow: shares 5 Mb/s for 20/5 = 4 s -> done at lat 2 + 4 = 6 s.
  EXPECT_EQ(done[0].first, 0);
  EXPECT_NEAR(done[0].second, 6.0, 0.5);
  // Long flow: 20 Mb at 5 Mb/s (4s) + remaining 80 Mb at 10 Mb/s (8s) -> ~14 s.
  EXPECT_EQ(done[1].first, 1);
  EXPECT_NEAR(done[1].second, 14.0, 0.5);
}

TEST(TransferFair, FirstFlowStartedLateIntegratesNoBogusWindow) {
  // Regression: fair_clock_ starts at 0; a manager whose first fluid flow
  // joins at t >> 0 must sync the clock before integrating, otherwise the
  // first recompute charges a bogus [0, now] window against the flow.
  Fixture f;
  TransferManager tm(f.engine, f.topo, f.routing, TransferManager::Mode::kFluidFair);
  double done_at = -1;
  f.engine.schedule_at(500.0, [&] {
    tm.start(NodeId{0}, NodeId{2}, 100.0, [&](bool ok) {
      EXPECT_TRUE(ok);
      done_at = f.engine.now();
    });
  });
  f.engine.run_all();
  // Same as the cold-start case, shifted: 500 + latency 2 + 100/10 = 512 s.
  EXPECT_NEAR(done_at, 512.0, 1e-6);
}

TEST(TransferFair, SecondFluidEpochAfterIdleGapStaysExact) {
  // Clock-sync regression at the other seam: the pool drains, sim time moves
  // on with no fluid flows, then a new flow joins. The idle gap must not be
  // integrated against the newcomer.
  Fixture f;
  TransferManager tm(f.engine, f.topo, f.routing, TransferManager::Mode::kFluidFair);
  std::vector<double> done;
  tm.start(NodeId{0}, NodeId{2}, 100.0, [&](bool) { done.push_back(f.engine.now()); });
  f.engine.schedule_at(300.0, [&] {
    tm.start(NodeId{0}, NodeId{2}, 50.0, [&](bool) { done.push_back(f.engine.now()); });
  });
  f.engine.run_all();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 12.0, 1e-6);
  EXPECT_NEAR(done[1], 307.0, 1e-6);  // 300 + lat 2 + 50/10
}

TEST(TransferFair, ZeroCapacityLinkAbortsInsteadOfStalling) {
  // Regression for the zero-rate stall: a flow routed across a dead link
  // gets rate 0 and could never complete; it must abort (success=false)
  // rather than sit in the pool forever with no completion event armed.
  sim::Engine engine;
  auto topo = net::Topology::from_links(3, {{NodeId{0}, NodeId{1}, 0.0, 1.0},
                                            {NodeId{1}, NodeId{2}, 10.0, 1.0}});
  net::Routing routing(topo);
  TransferManager tm(engine, topo, routing, TransferManager::Mode::kFluidFair);
  int resolved = 0;
  bool dead_ok = true;
  tm.start(NodeId{0}, NodeId{2}, 100.0, [&](bool ok) {
    dead_ok = ok;
    ++resolved;
  });
  double live_done_at = -1;
  tm.start(NodeId{1}, NodeId{2}, 100.0, [&](bool ok) {
    EXPECT_TRUE(ok);
    live_done_at = engine.now();
    ++resolved;
  });
  engine.run_all();
  EXPECT_EQ(resolved, 2);
  EXPECT_FALSE(dead_ok);
  EXPECT_EQ(tm.active_count(), 0u);  // nothing stuck in the pool
  // The live flow keeps the healthy link to itself.
  EXPECT_NEAR(live_done_at, 11.0, 1e-6);
}

TEST(TransferBottleneck, ZeroCapacityPathAbortsLikeUnreachable) {
  sim::Engine engine;
  auto topo = net::Topology::from_links(2, {{NodeId{0}, NodeId{1}, 0.0, 1.0}});
  net::Routing routing(topo);
  TransferManager tm(engine, topo, routing);
  bool ok = true;
  tm.start(NodeId{0}, NodeId{1}, 100.0, [&](bool success) { ok = success; });
  engine.run_all();
  EXPECT_FALSE(ok);
  EXPECT_EQ(tm.active_count(), 0u);
}

TEST(TransferFair, SubUlpRemainingDeliversInsteadOfLivelocking) {
  // Regression: after a re-solve, a flow can be left with a remaining volume
  // whose completion delay is below the ulp of the current (large) sim time.
  // Re-arming then fires at exactly `now` with dt == 0 forever - the tick
  // must deliver such flows instead of spinning. Here: two flows share a
  // 1000 Mb/s link from t = 131072 (ulp ~ 2.9e-11 s); when the 500 Mb flow
  // finishes, the other is left with 5e-9 Mb at 1000 Mb/s -> 5e-12 s to go,
  // which cannot advance the clock.
  sim::Engine engine;
  auto topo = net::Topology::from_links(2, {{NodeId{0}, NodeId{1}, 1000.0, 1.0}});
  net::Routing routing(topo);
  TransferManager tm(engine, topo, routing, TransferManager::Mode::kFluidFair);
  int done = 0;
  engine.schedule_at(131072.0, [&] {
    tm.start(NodeId{0}, NodeId{1}, 500.0 + 5e-9, [&](bool ok) {
      EXPECT_TRUE(ok);
      ++done;
    });
    tm.start(NodeId{0}, NodeId{1}, 500.0, [&](bool ok) {
      EXPECT_TRUE(ok);
      ++done;
    });
  });
  engine.run_all();  // pre-fix this never returned (same-time tick livelock)
  EXPECT_EQ(done, 2);
  EXPECT_EQ(tm.active_count(), 0u);
}

TEST(TransferFair, AbortAfterLatencyPhaseUsesNoStaleHandle) {
  // Regression: the latency-phase event handle must be invalidated when the
  // flow turns fluid; finish() then has nothing to cancel (a stale cancel
  // could hit a reused slot). Schedule unrelated events to churn the slab.
  Fixture f;
  TransferManager tm(f.engine, f.topo, f.routing, TransferManager::Mode::kFluidFair);
  bool ok = true;
  const auto id = tm.start(NodeId{0}, NodeId{2}, 1000.0, [&](bool success) { ok = success; });
  int unrelated_fired = 0;
  f.engine.schedule_at(3.0, [&] {
    // Flow is past its 2 s latency phase and fluid now; recycle event slots.
    for (int i = 0; i < 64; ++i) f.engine.schedule_in(0.5, [&] { ++unrelated_fired; });
    EXPECT_TRUE(tm.abort(id));
  });
  f.engine.run_all();
  EXPECT_FALSE(ok);
  EXPECT_EQ(unrelated_fired, 64);  // no unrelated event was cancelled
  EXPECT_EQ(tm.completed_count(), 0u);
}

TEST(TransferFair, NodeLeftTearsDownAllPhasesInOneBatch) {
  // node_left must abort fluid, latency-phase and loopback flows touching
  // the node, in one batched teardown, without disturbing other flows.
  Fixture f;
  TransferManager tm(f.engine, f.topo, f.routing, TransferManager::Mode::kFluidFair);
  int failures = 0;
  double survivor_done_at = -1;
  // Fluid by t=5 (latency 2 s).
  tm.start(NodeId{2}, NodeId{0}, 500.0, [&](bool ok) { failures += ok ? 0 : 1; });
  f.engine.schedule_at(4.5, [&] {
    // Still in its 1 s latency phase at t=5.
    tm.start(NodeId{1}, NodeId{2}, 100.0, [&](bool ok) { failures += ok ? 0 : 1; });
    // Loopback at the doomed node (zero-delay event pending at t=4.5).
    tm.start(NodeId{2}, NodeId{2}, 10.0, [&](bool ok) { failures += ok ? 0 : 1; });
    tm.node_left(NodeId{2});
    EXPECT_EQ(failures, 3);  // all three resolved synchronously
  });
  // Unrelated 0->1 flow must finish normally with full bandwidth once the
  // shared path is clear.
  tm.start(NodeId{0}, NodeId{1}, 100.0, [&](bool ok) {
    EXPECT_TRUE(ok);
    survivor_done_at = f.engine.now();
  });
  f.engine.run_all();
  EXPECT_EQ(failures, 3);
  EXPECT_EQ(tm.active_count(), 0u);
  EXPECT_EQ(tm.completed_count(), 1u);
  EXPECT_GT(survivor_done_at, 0.0);
}

TEST(TransferFair, AbortRestoresBandwidth) {
  Fixture f;
  TransferManager tm(f.engine, f.topo, f.routing, TransferManager::Mode::kFluidFair);
  double done_at = -1;
  const auto doomed =
      tm.start(NodeId{0}, NodeId{2}, 1000.0, [&](bool ok) { EXPECT_FALSE(ok); });
  tm.start(NodeId{0}, NodeId{2}, 100.0, [&](bool) { done_at = f.engine.now(); });
  // Let both flows run shared for 4 s (after 2 s latency), then kill one.
  f.engine.schedule_at(6.0, [&] { tm.abort(doomed); });
  f.engine.run_all();
  // Survivor: 4 s at 5 Mb/s (20 Mb) + 80 Mb at 10 Mb/s (8 s) -> ~14 s.
  EXPECT_NEAR(done_at, 14.0, 0.5);
}

}  // namespace
}  // namespace dpjit::grid
