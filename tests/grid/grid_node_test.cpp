#include "grid/grid_node.hpp"

#include <gtest/gtest.h>

namespace dpjit::grid {
namespace {

ReadyTask task(int wf, int t, double load, int pending = 0) {
  ReadyTask r;
  r.ref = TaskRef{WorkflowId{wf}, TaskIndex{t}};
  r.load_mi = load;
  r.pending_inputs = pending;
  return r;
}

TEST(GridNode, RejectsNonPositiveCapacity) {
  EXPECT_THROW(GridNode(NodeId{0}, 0.0), std::invalid_argument);
}

TEST(GridNode, ReadySetAddFindRemove) {
  GridNode n(NodeId{0}, 4.0);
  n.add_ready(task(1, 1, 100));
  n.add_ready(task(1, 2, 200));
  EXPECT_EQ(n.ready().size(), 2u);
  ASSERT_NE(n.find_ready(TaskRef{WorkflowId{1}, TaskIndex{2}}), nullptr);
  EXPECT_TRUE(n.remove_ready(TaskRef{WorkflowId{1}, TaskIndex{1}}));
  EXPECT_FALSE(n.remove_ready(TaskRef{WorkflowId{1}, TaskIndex{1}}));
  EXPECT_EQ(n.ready().size(), 1u);
}

TEST(GridNode, DataCompleteFiltersPendingInputs) {
  GridNode n(NodeId{0}, 4.0);
  n.add_ready(task(1, 1, 100, 2));
  n.add_ready(task(1, 2, 200, 0));
  const auto ready = n.data_complete();
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0]->ref.task.get(), 2);
}

TEST(GridNode, StartRunRemovesFromReadySet) {
  GridNode n(NodeId{0}, 4.0);
  n.add_ready(task(1, 1, 100));
  const double duration = n.start_running(TaskRef{WorkflowId{1}, TaskIndex{1}}, 0.0);
  EXPECT_DOUBLE_EQ(duration, 25.0);  // 100 MI / 4 MIPS
  EXPECT_TRUE(n.busy());
  EXPECT_TRUE(n.ready().empty());
  ASSERT_NE(n.running(), nullptr);
  EXPECT_EQ(n.running()->ref.task.get(), 1);
}

TEST(GridNode, NonPreemptive) {
  GridNode n(NodeId{0}, 1.0);
  n.add_ready(task(1, 1, 10));
  n.add_ready(task(1, 2, 10));
  n.start_running(TaskRef{WorkflowId{1}, TaskIndex{1}}, 0.0);
  EXPECT_THROW(n.start_running(TaskRef{WorkflowId{1}, TaskIndex{2}}, 0.0), std::logic_error);
}

TEST(GridNode, CannotStartWithPendingInputs) {
  GridNode n(NodeId{0}, 1.0);
  n.add_ready(task(1, 1, 10, 1));
  EXPECT_THROW(n.start_running(TaskRef{WorkflowId{1}, TaskIndex{1}}, 0.0), std::logic_error);
}

TEST(GridNode, CannotStartUnknownTask) {
  GridNode n(NodeId{0}, 1.0);
  EXPECT_THROW(n.start_running(TaskRef{WorkflowId{1}, TaskIndex{1}}, 0.0), std::logic_error);
}

TEST(GridNode, FinishRunningReturnsTask) {
  GridNode n(NodeId{0}, 2.0);
  n.add_ready(task(3, 4, 100));
  n.start_running(TaskRef{WorkflowId{3}, TaskIndex{4}}, 0.0);
  const auto done = n.finish_running();
  EXPECT_EQ(done.ref.workflow.get(), 3);
  EXPECT_FALSE(n.busy());
  EXPECT_THROW(n.finish_running(), std::logic_error);
}

TEST(GridNode, AbortRunning) {
  GridNode n(NodeId{0}, 2.0);
  EXPECT_FALSE(n.abort_running().has_value());
  n.add_ready(task(3, 4, 100));
  n.start_running(TaskRef{WorkflowId{3}, TaskIndex{4}}, 0.0);
  const auto aborted = n.abort_running();
  ASSERT_TRUE(aborted.has_value());
  EXPECT_EQ(aborted->ref.task.get(), 4);
  EXPECT_FALSE(n.busy());
}

TEST(GridNode, TotalLoadCountsQueuedPlusRemainingRunning) {
  GridNode n(NodeId{0}, 10.0);  // 100 MI -> 10 s
  n.add_ready(task(1, 1, 100));
  n.add_ready(task(1, 2, 50));
  EXPECT_DOUBLE_EQ(n.total_load_mi(0.0), 150.0);
  n.start_running(TaskRef{WorkflowId{1}, TaskIndex{1}}, 0.0);
  // Halfway through the running task: 50 remaining + 50 queued.
  EXPECT_DOUBLE_EQ(n.total_load_mi(5.0), 100.0);
  // At the nominal finish time, only the queued load remains.
  EXPECT_DOUBLE_EQ(n.total_load_mi(10.0), 50.0);
}

TEST(GridNode, DrainReadyEmptiesAndReturns) {
  GridNode n(NodeId{0}, 1.0);
  n.add_ready(task(1, 1, 10));
  n.add_ready(task(1, 2, 10));
  const auto drained = n.drain_ready();
  EXPECT_EQ(drained.size(), 2u);
  EXPECT_TRUE(n.ready().empty());
}

}  // namespace
}  // namespace dpjit::grid
