#include "grid/churn.hpp"

#include <gtest/gtest.h>

#include <set>

namespace dpjit::grid {
namespace {

struct Harness {
  explicit Harness(int n, double df, int stable) : alive(n, true) {
    ChurnModel::Params params;
    params.dynamic_factor = df;
    params.stable_count = stable;
    params.interval_s = 900.0;
    model = std::make_unique<ChurnModel>(
        engine, params, n, util::Rng(7),
        [this](NodeId id) { return alive[static_cast<std::size_t>(id.get())]; },
        [this](NodeId id) {
          alive[static_cast<std::size_t>(id.get())] = false;
          leaves.push_back(id);
        },
        [this](NodeId id) {
          alive[static_cast<std::size_t>(id.get())] = true;
          joins.push_back(id);
        });
  }
  sim::Engine engine;
  std::vector<bool> alive;
  std::vector<NodeId> leaves, joins;
  std::unique_ptr<ChurnModel> model;
};

TEST(Churn, StepChurnsExactlyDfTimesN) {
  Harness h(100, 0.1, 50);
  h.model->step();
  EXPECT_EQ(h.leaves.size(), 10u);
  // First step: every dynamic node alive, so nothing dead can join yet...
  EXPECT_EQ(h.joins.size(), 0u);
  h.model->step();
  // ...second step: 10 dead nodes available, 10 join.
  EXPECT_EQ(h.joins.size(), 10u);
}

TEST(Churn, StableNodesNeverChurn) {
  Harness h(100, 0.4, 50);
  for (int i = 0; i < 20; ++i) h.model->step();
  for (NodeId n : h.leaves) EXPECT_GE(n.get(), 50);
  for (NodeId n : h.joins) EXPECT_GE(n.get(), 50);
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(h.alive[static_cast<std::size_t>(i)]);
}

TEST(Churn, PopulationStaysRoughlyConstant) {
  Harness h(200, 0.2, 100);
  for (int i = 0; i < 30; ++i) h.model->step();
  int alive_count = 0;
  for (bool a : h.alive) alive_count += a ? 1 : 0;
  // 100 stable + dynamic pool oscillating; at least the stable half remains
  // and the dynamic half keeps a sizeable alive population.
  EXPECT_GE(alive_count, 100);
  EXPECT_LE(alive_count, 200);
  EXPECT_EQ(h.model->total_leaves(), h.model->total_joins() + (h.model->total_leaves() -
                                                               h.model->total_joins()));
}

TEST(Churn, ZeroFactorIsNoOp) {
  Harness h(50, 0.0, 25);
  h.model->start();
  h.engine.run_until(10000.0);
  EXPECT_TRUE(h.leaves.empty());
  EXPECT_TRUE(h.joins.empty());
}

TEST(Churn, PeriodicStepsViaEngine) {
  Harness h(100, 0.1, 50);
  h.model->start();
  h.engine.run_until(3 * 900.0 + 1.0);
  EXPECT_EQ(h.model->total_leaves(), 30u);
}

TEST(Churn, LeaveCountCappedByAliveDynamic) {
  Harness h(100, 0.5, 50);  // wants 50 churns but only 50 dynamic nodes
  h.model->step();
  EXPECT_EQ(h.leaves.size(), 50u);
  h.model->step();  // all dynamic dead: 0 leaves, 50 joins
  EXPECT_EQ(h.leaves.size(), 50u);
  EXPECT_EQ(h.joins.size(), 50u);
}

TEST(Churn, ValidatesParams) {
  sim::Engine engine;
  ChurnModel::Params bad;
  bad.dynamic_factor = 1.5;
  auto noop = [](NodeId) {};
  auto alive = [](NodeId) { return true; };
  EXPECT_THROW(ChurnModel(engine, bad, 10, util::Rng(1), alive, noop, noop),
               std::invalid_argument);
  ChurnModel::Params bad2;
  bad2.stable_count = 20;
  EXPECT_THROW(ChurnModel(engine, bad2, 10, util::Rng(1), alive, noop, noop),
               std::invalid_argument);
}

TEST(Churn, IsStable) {
  Harness h(10, 0.1, 4);
  EXPECT_TRUE(h.model->is_stable(NodeId{3}));
  EXPECT_FALSE(h.model->is_stable(NodeId{4}));
}

}  // namespace
}  // namespace dpjit::grid
