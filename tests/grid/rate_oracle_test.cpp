// TransferManager as net::RateOracle: what-if rate/transfer-time queries
// against both network models, and their side-effect-freedom on a live
// fluid simulation.
#include <gtest/gtest.h>

#include <cmath>

#include "grid/transfer_manager.hpp"
#include "net/rate_oracle.hpp"

namespace dpjit::grid {
namespace {

/// Line topology 0 - 1 - 2 with 10 Mb/s / 0.1 s links.
net::Topology line_topology() {
  return net::Topology::from_links(3, {{NodeId{0}, NodeId{1}, 10.0, 0.1},
                                       {NodeId{1}, NodeId{2}, 10.0, 0.1}});
}

TEST(RateOracle, BottleneckModeReportsRoutedPathRate) {
  const auto topo = line_topology();
  const net::Routing routing(topo);
  sim::Engine engine;
  TransferManager tm(engine, topo, routing, TransferManager::Mode::kBottleneck);
  const net::RateOracle& oracle = tm;

  EXPECT_DOUBLE_EQ(oracle.predicted_rate_mbps(NodeId{0}, NodeId{2}), 10.0);
  EXPECT_TRUE(std::isinf(oracle.predicted_rate_mbps(NodeId{1}, NodeId{1})));
  // Latency comes through the Routing float matrices; compare against them.
  EXPECT_DOUBLE_EQ(oracle.expected_transfer_time_s(NodeId{0}, NodeId{2}, 100.0),
                   routing.latency_s(NodeId{0}, NodeId{2}) + 100.0 / 10.0);
  EXPECT_DOUBLE_EQ(oracle.expected_transfer_time_s(NodeId{1}, NodeId{1}, 100.0), 0.0);
}

TEST(RateOracle, FairModeProbesSeeLiveContention) {
  const auto topo = line_topology();
  const net::Routing routing(topo);
  sim::Engine engine;
  TransferManager tm(engine, topo, routing, TransferManager::Mode::kFluidFair);
  const net::RateOracle& oracle = tm;

  // Idle network: the probe reports the full path rate.
  EXPECT_DOUBLE_EQ(oracle.predicted_rate_mbps(NodeId{0}, NodeId{2}), 10.0);

  // One fluid flow across 0->2; once it is past the latency phase a second
  // flow on the same path would have to share every link.
  bool done = false;
  tm.start(NodeId{0}, NodeId{2}, 1000.0, [&](bool) { done = true; });
  engine.run_until(1.0);  // past the 0.2 s latency phase, far from completion
  ASSERT_FALSE(done);
  EXPECT_DOUBLE_EQ(oracle.predicted_rate_mbps(NodeId{0}, NodeId{2}), 5.0);
  EXPECT_DOUBLE_EQ(oracle.predicted_rate_mbps(NodeId{0}, NodeId{1}), 5.0);
  EXPECT_DOUBLE_EQ(oracle.expected_transfer_time_s(NodeId{0}, NodeId{2}, 10.0),
                   routing.latency_s(NodeId{0}, NodeId{2}) + 10.0 / 5.0);

  // The probe must not have perturbed the live flow: it still completes at
  // the full-rate schedule (path latency + 1000 Mb / 10 Mb/s).
  engine.run_all();
  EXPECT_TRUE(done);
  EXPECT_NEAR(engine.now(), routing.latency_s(NodeId{0}, NodeId{2}) + 100.0, 1e-6);
}

TEST(RateOracle, ProbesDoNotChangeFluidOutcomes) {
  // Two identical simulations; one answers a barrage of oracle queries while
  // flows are in flight. Completion times must match exactly.
  const auto topo = line_topology();
  const net::Routing routing(topo);

  auto run = [&](bool with_probes) {
    sim::Engine engine;
    TransferManager tm(engine, topo, routing, TransferManager::Mode::kFluidFair);
    std::vector<double> finish_times;
    for (int i = 0; i < 6; ++i) {
      const NodeId src{i % 2 == 0 ? 0 : 1};
      tm.start(src, NodeId{2}, 50.0 + 10.0 * i,
               [&, i](bool) { finish_times.push_back(engine.now()); });
    }
    if (with_probes) {
      engine.schedule_at(0.5, [&] {
        for (int k = 0; k < 100; ++k) {
          (void)tm.predicted_rate_mbps(NodeId{0}, NodeId{2});
          (void)tm.expected_transfer_time_s(NodeId{1}, NodeId{2}, 123.0);
        }
      });
    }
    engine.run_all();
    return finish_times;
  };

  const auto quiet = run(false);
  const auto probed = run(true);
  ASSERT_EQ(quiet.size(), probed.size());
  for (std::size_t i = 0; i < quiet.size(); ++i) {
    EXPECT_EQ(quiet[i], probed[i]) << "flow " << i;
  }
}

}  // namespace
}  // namespace dpjit::grid
