// Unit tests of the quantised-fair barrier protocol (models/quantised_fair):
// admission at barriers, frozen rates in between, immediate aborts with
// deferred ledger cancels, drain delivery, and the barrier-stamped probe
// cache. The barrier driver (core/workflow_shard) is exercised separately;
// here the test IS the driver, calling the barrier API directly.
#include <gtest/gtest.h>

#include <vector>

#include "grid/transfer_manager.hpp"

namespace dpjit::grid {
namespace {

// 0 --(bw 10, lat 1)-- 1 --(bw 10, lat 1)-- 2 ; flows 0->2 cross both links.
struct Fixture {
  Fixture() : topo(net::Topology::from_links(3, {{NodeId{0}, NodeId{1}, 10.0, 1.0},
                                                 {NodeId{1}, NodeId{2}, 10.0, 1.0}})),
              routing(topo) {}
  sim::Engine engine;
  net::Topology topo;
  net::Routing routing;
};

TEST(QuantisedBarrier, AdmitsAfterLatencyAndReportsJoinAtFullVolume) {
  Fixture f;
  TransferManager tm(f.engine, f.topo, f.routing, TransferManager::Mode::kQuantisedFair);
  tm.start(NodeId{0}, NodeId{2}, 100.0, [](bool) {});
  f.engine.run_until(1.0);
  // Propagation (2 s) not over: nothing to admit yet.
  auto delta = tm.quantised_barrier();
  EXPECT_TRUE(delta.joins.empty());
  EXPECT_EQ(tm.quantised_pending_joins(), 0u);

  f.engine.run_until(2.0);
  EXPECT_EQ(tm.quantised_pending_joins(), 1u);
  delta = tm.quantised_barrier();
  ASSERT_EQ(delta.joins.size(), 1u);
  EXPECT_EQ(delta.joins[0].src, NodeId{0});
  // Lazy advance: the join carries the FULL volume - the manager never
  // integrated anything, that is the ledger's job from here on.
  EXPECT_DOUBLE_EQ(delta.joins[0].remaining_mb, 100.0);
  EXPECT_DOUBLE_EQ(delta.joins[0].rate_mbps, 10.0);
  EXPECT_TRUE(delta.rate_changes.empty());
  EXPECT_TRUE(delta.cancels.empty());
  EXPECT_EQ(tm.quantised_active(), 1u);

  // No completion machinery in this mode: with the latency phase done the
  // manager has NO scheduled events, so the engine goes idle with the flow
  // still in flight (the fluid mode would have armed a completion here).
  f.engine.run_all();
  EXPECT_EQ(tm.quantised_active(), 1u);
  EXPECT_EQ(tm.completed_count(), 0u);
}

TEST(QuantisedBarrier, ZeroSizeFlowDeliversAtAdmissionWithoutJoining) {
  Fixture f;
  TransferManager tm(f.engine, f.topo, f.routing, TransferManager::Mode::kQuantisedFair);
  bool delivered = false;
  tm.start(NodeId{0}, NodeId{2}, 0.0, [&](bool ok) { delivered = ok; });
  f.engine.run_until(2.0);
  const auto delta = tm.quantised_barrier();
  EXPECT_TRUE(delivered);
  EXPECT_TRUE(delta.joins.empty());
  EXPECT_TRUE(delta.cancels.empty());
  EXPECT_EQ(tm.completed_count(), 1u);
  EXPECT_EQ(tm.quantised_active(), 0u);
}

TEST(QuantisedBarrier, RatesFreezeBetweenBarriersAndRefreezeAtThem) {
  Fixture f;
  TransferManager tm(f.engine, f.topo, f.routing, TransferManager::Mode::kQuantisedFair);
  tm.start(NodeId{0}, NodeId{2}, 100.0, [](bool) {});
  f.engine.run_until(2.0);
  auto delta = tm.quantised_barrier();
  ASSERT_EQ(delta.joins.size(), 1u);
  const std::uint64_t first = delta.joins[0].id;
  EXPECT_DOUBLE_EQ(delta.joins[0].rate_mbps, 10.0);

  // A second flow finishes propagation mid-epoch: it does NOT touch the
  // solver until the next barrier, so the first flow's rate stays frozen.
  tm.start(NodeId{0}, NodeId{2}, 100.0, [](bool) {});
  f.engine.run_until(4.0);
  EXPECT_EQ(tm.quantised_pending_joins(), 1u);
  EXPECT_EQ(tm.quantised_active(), 1u);

  delta = tm.quantised_barrier();
  // Both flows cross both links: max-min gives each 5. The newcomer joins at
  // 5 and the incumbent's frozen 10 is re-frozen to 5 via a rate change.
  ASSERT_EQ(delta.joins.size(), 1u);
  EXPECT_DOUBLE_EQ(delta.joins[0].rate_mbps, 5.0);
  ASSERT_EQ(delta.rate_changes.size(), 1u);
  EXPECT_EQ(delta.rate_changes[0].id, first);
  EXPECT_DOUBLE_EQ(delta.rate_changes[0].rate_mbps, 5.0);
}

TEST(QuantisedBarrier, AbortFiresNowButSurvivorRatesMoveAtTheNextBarrier) {
  Fixture f;
  TransferManager tm(f.engine, f.topo, f.routing, TransferManager::Mode::kQuantisedFair);
  bool aborted_ok = true;
  const std::uint64_t a = tm.start(NodeId{0}, NodeId{2}, 100.0, [&](bool ok) { aborted_ok = ok; });
  tm.start(NodeId{0}, NodeId{2}, 100.0, [](bool) {});
  f.engine.run_until(2.0);
  auto delta = tm.quantised_barrier();
  ASSERT_EQ(delta.joins.size(), 2u);
  EXPECT_DOUBLE_EQ(delta.joins[0].rate_mbps, 5.0);
  EXPECT_DOUBLE_EQ(delta.joins[1].rate_mbps, 5.0);

  // Mid-epoch abort: the callback fires immediately (the grid layer retries
  // on it), the solver forgets the flow, but the survivor's frozen rate is
  // untouched until the barrier reads the solver back.
  f.engine.run_until(2.5);
  EXPECT_TRUE(tm.abort(a));
  EXPECT_FALSE(aborted_ok);
  EXPECT_EQ(tm.quantised_active(), 1u);

  f.engine.run_until(3.0);
  delta = tm.quantised_barrier();
  EXPECT_TRUE(delta.joins.empty());
  ASSERT_EQ(delta.cancels.size(), 1u);
  EXPECT_EQ(delta.cancels[0], a);
  ASSERT_EQ(delta.rate_changes.size(), 1u);
  EXPECT_DOUBLE_EQ(delta.rate_changes[0].rate_mbps, 10.0);
}

TEST(QuantisedBarrier, DeliverReportsSuccessAndSkipsDeadFlows) {
  Fixture f;
  TransferManager tm(f.engine, f.topo, f.routing, TransferManager::Mode::kQuantisedFair);
  int done = 0;
  bool ok_seen = false;
  const std::uint64_t a = tm.start(NodeId{0}, NodeId{2}, 100.0, [&](bool ok) {
    ++done;
    ok_seen = ok;
  });
  const std::uint64_t b = tm.start(NodeId{0}, NodeId{2}, 100.0, [&](bool) { ++done; });
  f.engine.run_until(2.0);
  (void)tm.quantised_barrier();

  // b aborts after the ledger (conceptually) detected both drains: its DONE
  // entry must be skipped - the abort callback already fired.
  f.engine.run_until(2.5);
  EXPECT_TRUE(tm.abort(b));
  EXPECT_EQ(done, 1);

  f.engine.run_until(3.0);
  tm.quantised_deliver({QuantisedDone{2.8, a}, QuantisedDone{2.9, b}});
  EXPECT_EQ(done, 2);
  EXPECT_TRUE(ok_seen);
  EXPECT_EQ(tm.completed_count(), 1u);
  EXPECT_DOUBLE_EQ(tm.total_delivered_mb(), 100.0);
  EXPECT_EQ(tm.quantised_active(), 0u);
}

TEST(QuantisedBarrier, ZeroCapacityPathStallsAtBarrierIntoSameDeltaCancel) {
  // Middle link has zero capacity: the flow can join the solver but gets
  // rate 0 - the barrier's stall guard must abort it in the same pass and
  // ship the cancel in the SAME delta (no join emitted for it).
  sim::Engine engine;
  const auto topo = net::Topology::from_links(3, {{NodeId{0}, NodeId{1}, 10.0, 1.0},
                                                  {NodeId{1}, NodeId{2}, 0.0, 1.0}});
  const net::Routing routing(topo);
  TransferManager tm(engine, topo, routing, TransferManager::Mode::kQuantisedFair);
  bool ok_seen = true;
  const std::uint64_t id = tm.start(NodeId{0}, NodeId{2}, 100.0, [&](bool ok) { ok_seen = ok; });
  engine.run_until(2.0);
  const auto delta = tm.quantised_barrier();
  EXPECT_FALSE(ok_seen);
  EXPECT_TRUE(delta.joins.empty());
  ASSERT_EQ(delta.cancels.size(), 1u);
  EXPECT_EQ(delta.cancels[0], id);
  EXPECT_EQ(tm.quantised_active(), 0u);
}

TEST(QuantisedBarrier, NodeLeftTearsDownActiveAndPendingFlowsImmediately) {
  Fixture f;
  TransferManager tm(f.engine, f.topo, f.routing, TransferManager::Mode::kQuantisedFair);
  std::vector<bool> results;
  tm.start(NodeId{0}, NodeId{2}, 100.0, [&](bool ok) { results.push_back(ok); });
  f.engine.run_until(2.0);
  (void)tm.quantised_barrier();
  tm.start(NodeId{2}, NodeId{0}, 100.0, [&](bool ok) { results.push_back(ok); });  // in latency
  f.engine.run_until(2.5);

  tm.node_left(NodeId{2});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0]);
  EXPECT_FALSE(results[1]);
  EXPECT_EQ(tm.active_count(), 0u);

  // Only the pool member needs a ledger cancel; the latency-phase flow never
  // reached any ledger.
  f.engine.run_until(3.0);
  const auto delta = tm.quantised_barrier();
  EXPECT_EQ(delta.cancels.size(), 1u);
}

TEST(QuantisedBarrier, BarrierStampInvalidatesTheProbeCache) {
  Fixture f;
  TransferManager tm(f.engine, f.topo, f.routing, TransferManager::Mode::kQuantisedFair);
  EXPECT_DOUBLE_EQ(tm.predicted_rate_mbps(NodeId{0}, NodeId{2}), 10.0);
  EXPECT_DOUBLE_EQ(tm.predicted_rate_mbps(NodeId{0}, NodeId{2}), 10.0);
  EXPECT_EQ(tm.probe_cache_misses(), 1u);
  EXPECT_EQ(tm.probe_cache_hits(), 1u);

  // A barrier re-freezes the rate landscape even when the solver's flow set
  // did not change; cached answers from the previous epoch must not survive.
  const std::uint64_t stamp = tm.barrier_stamp();
  (void)tm.quantised_barrier();
  EXPECT_EQ(tm.barrier_stamp(), stamp + 1);
  EXPECT_DOUBLE_EQ(tm.predicted_rate_mbps(NodeId{0}, NodeId{2}), 10.0);
  EXPECT_EQ(tm.probe_cache_misses(), 2u);
}

}  // namespace
}  // namespace dpjit::grid
