// CompletionIndex: the slab-indexed min-heap behind fair-mode next-completion
// arming. Differential-tested against a brute-force scan over randomized
// upsert/erase histories - the same agreement the TransferManager debug
// assert checks in vivo on every arming.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <random>
#include <vector>

#include "grid/completion_index.hpp"

namespace dpjit::grid {
namespace {

TEST(CompletionIndex, BasicSemantics) {
  CompletionIndex idx;
  EXPECT_TRUE(idx.empty());
  EXPECT_FALSE(idx.erase(42));

  idx.upsert(7, 30.0);
  idx.upsert(3, 10.0);
  idx.upsert(9, 20.0);
  EXPECT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx.top().id, 3u);
  EXPECT_DOUBLE_EQ(idx.top().finish_s, 10.0);

  idx.upsert(3, 50.0);  // re-key downward in priority
  EXPECT_EQ(idx.top().id, 9u);
  idx.upsert(7, 5.0);  // re-key upward
  EXPECT_EQ(idx.top().id, 7u);

  EXPECT_TRUE(idx.erase(7));
  EXPECT_EQ(idx.top().id, 9u);
  EXPECT_TRUE(idx.contains(3));
  EXPECT_FALSE(idx.contains(7));

  idx.clear();
  EXPECT_TRUE(idx.empty());
  idx.upsert(1, 1.0);  // slab reuse after clear
  EXPECT_EQ(idx.top().id, 1u);
}

TEST(CompletionIndex, TiesBreakTowardSmallerId) {
  CompletionIndex idx;
  idx.upsert(9, 10.0);
  idx.upsert(2, 10.0);
  idx.upsert(5, 10.0);
  EXPECT_EQ(idx.top().id, 2u);
  EXPECT_TRUE(idx.erase(2));
  EXPECT_EQ(idx.top().id, 5u);
}

TEST(CompletionIndex, CollectMinTiesFindsExactlyTheTiedSet) {
  CompletionIndex idx;
  std::vector<std::uint64_t> ties;
  idx.collect_min_ties(ties);  // empty index: no-op
  EXPECT_TRUE(ties.empty());

  idx.upsert(4, 7.0);
  idx.upsert(9, 7.0);
  idx.upsert(2, 7.0);
  idx.upsert(5, 8.0);
  idx.upsert(1, 9.0);
  idx.collect_min_ties(ties);
  std::sort(ties.begin(), ties.end());
  EXPECT_EQ(ties, (std::vector<std::uint64_t>{2, 4, 9}));

  ties.clear();
  idx.upsert(9, 6.5);  // now a unique minimum
  idx.collect_min_ties(ties);
  EXPECT_EQ(ties, (std::vector<std::uint64_t>{9}));
}

TEST(CompletionIndex, CollectMinTiesIncludesUlpNeighbors) {
  // Keys stamped at different instants can drift a few ulps apart while the
  // true minimum belongs to the nominally-larger key; the collection band
  // must cover such neighbors so the caller's fresh comparison can win.
  CompletionIndex idx;
  const double base = 131074.0;
  idx.upsert(1, std::nextafter(base, 1e18));  // 1 ulp above
  idx.upsert(2, base);
  idx.upsert(3, base + 1.0);  // far outside the band
  std::vector<std::uint64_t> ties;
  idx.collect_min_ties(ties);
  std::sort(ties.begin(), ties.end());
  EXPECT_EQ(ties, (std::vector<std::uint64_t>{1, 2}));
}

TEST(CompletionIndex, RandomizedDifferentialAgainstScan) {
  std::mt19937_64 gen(0xc0317);
  for (int round = 0; round < 10; ++round) {
    CompletionIndex idx;
    std::map<std::uint64_t, double> reference;
    std::uniform_int_distribution<int> op_pick(0, 9);
    std::uniform_int_distribution<std::uint64_t> id_pick(1, 60);
    std::uniform_real_distribution<double> key_pick(0.0, 1000.0);
    for (int op = 0; op < 2000; ++op) {
      const std::uint64_t id = id_pick(gen);
      if (op_pick(gen) < 6) {
        const double key = key_pick(gen);
        idx.upsert(id, key);
        reference[id] = key;
      } else {
        EXPECT_EQ(idx.erase(id), reference.erase(id) > 0);
      }
      ASSERT_EQ(idx.size(), reference.size());
      if (reference.empty()) {
        ASSERT_TRUE(idx.empty());
        continue;
      }
      // Brute-force scan: min by (key, id), exactly the order the index
      // promises.
      std::uint64_t best_id = 0;
      double best_key = std::numeric_limits<double>::infinity();
      for (const auto& [rid, rkey] : reference) {
        if (rkey < best_key || (rkey == best_key && rid < best_id)) {
          best_key = rkey;
          best_id = rid;
        }
      }
      const auto top = idx.top();
      ASSERT_EQ(top.id, best_id) << "op " << op;
      ASSERT_EQ(top.finish_s, best_key) << "op " << op;
    }
  }
}

}  // namespace
}  // namespace dpjit::grid
