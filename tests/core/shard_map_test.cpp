// compute_shard_map: contiguous near-equal partition of a routed network plus
// the conservative lookahead bounds the sharded PDES loop relies on. The
// lookahead semantics (min cross-shard latency vs min latency over all pairs)
// are the foundation of the scale/* shard-determinism guarantee.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/grid_system.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "util/types.hpp"

namespace dpjit::core {
namespace {

net::Topology line_topology(int nodes, double hop_latency_s) {
  std::vector<net::Link> links;
  for (int i = 0; i + 1 < nodes; ++i) {
    links.push_back({NodeId(i), NodeId(i + 1), 10.0, hop_latency_s});
  }
  return net::Topology::from_links(nodes, std::move(links));
}

TEST(ShardMap, PartitionIsContiguousNearEqualAndConsistent) {
  const net::Topology topo = line_topology(10, 0.05);
  const net::Routing routing(topo, 1);
  const ShardMap map = compute_shard_map(routing, 3);

  ASSERT_EQ(map.shards, 3);
  ASSERT_EQ(map.nodes, 10);
  ASSERT_EQ(map.ranges.size(), 3u);
  ASSERT_EQ(map.shard_of.size(), 10u);

  // Ranges tile [0, nodes) exactly, in order, with near-equal sizes.
  int cursor = 0;
  for (std::size_t s = 0; s < map.ranges.size(); ++s) {
    const auto [begin, end] = map.ranges[s];
    EXPECT_EQ(begin, cursor);
    EXPECT_GT(end, begin);
    const int size = end - begin;
    EXPECT_GE(size, 10 / 3);
    EXPECT_LE(size, 10 / 3 + 1);
    for (int n = begin; n < end; ++n) {
      EXPECT_EQ(map.shard_of[static_cast<std::size_t>(n)], static_cast<int>(s));
      EXPECT_EQ(map.shard(NodeId(n)), static_cast<int>(s));
    }
    cursor = end;
  }
  EXPECT_EQ(cursor, 10);
}

TEST(ShardMap, LookaheadIsMinCrossShardLatencyNotMinPairLatency) {
  // Line 0-1-2-3 with one fast hop INSIDE a shard and slower hops elsewhere:
  // the global min-pair latency must not leak into the cross-shard lookahead.
  std::vector<net::Link> links{
      {NodeId(0), NodeId(1), 10.0, 0.001},  // intra-shard (shard 0 = {0, 1})
      {NodeId(1), NodeId(2), 10.0, 0.200},  // the shard boundary
      {NodeId(2), NodeId(3), 10.0, 0.300},  // intra-shard (shard 1 = {2, 3})
  };
  const net::Topology topo = net::Topology::from_links(4, std::move(links));
  const net::Routing routing(topo, 1);
  const ShardMap map = compute_shard_map(routing, 2);

  // Cheapest cross-shard route is 1 -> 2.
  EXPECT_FLOAT_EQ(static_cast<float>(map.lookahead_s), 0.200f);
  // Min over ALL pairs sees the fast intra-shard hop.
  EXPECT_FLOAT_EQ(static_cast<float>(map.min_latency_s), 0.001f);
  // min_latency_s is the finest-partition lookahead, so it never exceeds the
  // lookahead of any coarser partition.
  EXPECT_LE(map.min_latency_s, map.lookahead_s);
}

TEST(ShardMap, SingleShardHasInfiniteLookahead) {
  const net::Topology topo = line_topology(5, 0.05);
  const net::Routing routing(topo, 1);
  const ShardMap map = compute_shard_map(routing, 1);
  EXPECT_EQ(map.shards, 1);
  EXPECT_TRUE(std::isinf(map.lookahead_s));
  EXPECT_FLOAT_EQ(static_cast<float>(map.min_latency_s), 0.05f);
  for (const int s : map.shard_of) EXPECT_EQ(s, 0);
}

TEST(ShardMap, ShardCountClampsToNodeCountAndOne) {
  const net::Topology topo = line_topology(3, 0.05);
  const net::Routing routing(topo, 1);

  const ShardMap finest = compute_shard_map(routing, 99);
  EXPECT_EQ(finest.shards, 3);
  ASSERT_EQ(finest.ranges.size(), 3u);
  for (int n = 0; n < 3; ++n) {
    EXPECT_EQ(finest.shard_of[static_cast<std::size_t>(n)], n);
  }
  // Every node its own shard: lookahead degenerates to the min pair latency.
  EXPECT_DOUBLE_EQ(finest.lookahead_s, finest.min_latency_s);

  const ShardMap floor = compute_shard_map(routing, 0);
  EXPECT_EQ(floor.shards, 1);
  const ShardMap negative = compute_shard_map(routing, -4);
  EXPECT_EQ(negative.shards, 1);
}

TEST(ShardMap, ZeroLatencyCrossShardLinkYieldsZeroLookahead) {
  // A zero-latency link across the shard boundary: the map must report the
  // partition as not conservatively shardable (lookahead 0), which is what
  // run_scale_model's delay clamp exists to absorb.
  std::vector<net::Link> links{
      {NodeId(0), NodeId(1), 10.0, 0.1},
      {NodeId(1), NodeId(2), 10.0, 0.0},
      {NodeId(2), NodeId(3), 10.0, 0.1},
  };
  const net::Topology topo = net::Topology::from_links(4, std::move(links));
  const net::Routing routing(topo, 1);
  const ShardMap map = compute_shard_map(routing, 2);
  EXPECT_DOUBLE_EQ(map.lookahead_s, 0.0);
  EXPECT_DOUBLE_EQ(map.min_latency_s, 0.0);
}

TEST(ShardMap, CoarserPartitionsNeverShrinkLookahead) {
  // Monotonicity on a generated backbone: merging shards can only remove
  // cross-shard pairs, so lookahead is non-decreasing as shards decrease.
  net::TopologyParams params;
  params.node_count = 24;
  util::Rng rng(42);
  const net::Topology topo = net::Topology::generate_waxman(params, rng);
  const net::Routing routing(topo, 1);

  double prev = -1.0;
  for (const int shards : {24, 12, 6, 3, 2}) {
    const ShardMap map = compute_shard_map(routing, shards);
    EXPECT_GE(map.lookahead_s, prev) << "shards=" << shards;
    EXPECT_DOUBLE_EQ(map.min_latency_s, compute_shard_map(routing, 24).min_latency_s);
    prev = map.lookahead_s;
  }
}

}  // namespace
}  // namespace dpjit::core
