#include "core/fullahead/timeline.hpp"

#include <gtest/gtest.h>

namespace dpjit::core {
namespace {

TEST(Timeline, EmptyStartsAtReadyTime) {
  Timeline t;
  EXPECT_DOUBLE_EQ(t.earliest_start(5.0, 10.0), 5.0);
  EXPECT_DOUBLE_EQ(t.makespan(), 0.0);
}

TEST(Timeline, AppendsAfterBookings) {
  Timeline t;
  t.book(0.0, 10.0);
  EXPECT_DOUBLE_EQ(t.earliest_start(0.0, 5.0), 10.0);
  EXPECT_DOUBLE_EQ(t.makespan(), 10.0);
}

TEST(Timeline, InsertionFillsGaps) {
  Timeline t;
  t.book(0.0, 10.0);
  t.book(20.0, 10.0);
  // A 5-second task fits in the [10, 20) gap.
  EXPECT_DOUBLE_EQ(t.earliest_start(0.0, 5.0), 10.0);
  // An 11-second task does not: goes after the last booking.
  EXPECT_DOUBLE_EQ(t.earliest_start(0.0, 11.0), 30.0);
}

TEST(Timeline, GapRespectsReadyTime) {
  Timeline t;
  t.book(0.0, 10.0);
  t.book(20.0, 10.0);
  // Ready at 18: the remaining gap [18, 20) is too small for 5 s.
  EXPECT_DOUBLE_EQ(t.earliest_start(18.0, 5.0), 30.0);
  // Ready at 12: [12, 20) fits 5 s.
  EXPECT_DOUBLE_EQ(t.earliest_start(12.0, 5.0), 12.0);
}

TEST(Timeline, BookKeepsSortedAndDetectsOverlap) {
  Timeline t;
  t.book(20.0, 10.0);
  t.book(0.0, 10.0);
  ASSERT_EQ(t.bookings().size(), 2u);
  EXPECT_DOUBLE_EQ(t.bookings()[0].first, 0.0);
  EXPECT_THROW(t.book(5.0, 10.0), std::logic_error);   // overlaps first
  EXPECT_THROW(t.book(25.0, 1.0), std::logic_error);   // overlaps second
  t.book(10.0, 10.0);                                  // exactly fills the gap
  EXPECT_EQ(t.bookings().size(), 3u);
}

TEST(Timeline, ZeroDurationBookingsAllowed) {
  Timeline t;
  t.book(5.0, 0.0);
  EXPECT_DOUBLE_EQ(t.earliest_start(0.0, 10.0), 0.0);  // zero-width slot: gap before is fine
}

TEST(Timeline, NegativeDurationThrows) {
  Timeline t;
  EXPECT_THROW(t.book(0.0, -1.0), std::logic_error);
}

TEST(Timeline, BackToBackBookings) {
  Timeline t;
  for (int i = 0; i < 10; ++i) t.book(i * 10.0, 10.0);
  EXPECT_DOUBLE_EQ(t.makespan(), 100.0);
  EXPECT_DOUBLE_EQ(t.earliest_start(0.0, 1.0), 100.0);
}

}  // namespace
}  // namespace dpjit::core
