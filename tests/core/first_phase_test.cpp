// First-phase policy behaviours beyond the Fig. 3 oracle: RSS-copy load
// updates (Algorithm 1 line 15), hotspot avoidance, batch heuristic iteration.
#include <gtest/gtest.h>

#include "core/policies/batch_heuristics.hpp"
#include "core/policies/dsmf.hpp"
#include "fig3_helpers.hpp"

namespace dpjit::core {
namespace {

/// A context with live Eq. (4)-(6) estimation and a mutable resource copy,
/// over tasks with no inputs (pure compute).
class ComputeContext final : public DispatchContext {
 public:
  ComputeContext(std::vector<gossip::ResourceEntry> resources,
                 std::vector<PendingWorkflow> pending)
      : resources_(std::move(resources)), pending_(std::move(pending)) {}

  [[nodiscard]] SimTime now() const override { return 0.0; }
  [[nodiscard]] NodeId home() const override { return NodeId{0}; }
  [[nodiscard]] std::vector<gossip::ResourceEntry>& resources() override { return resources_; }
  [[nodiscard]] const std::vector<PendingWorkflow>& pending() const override { return pending_; }

  [[nodiscard]] double finish_time(const CandidateTask& task,
                                   const gossip::ResourceEntry& r) const override {
    return estimate_finish_time(task.inputs, r, [](NodeId, NodeId) { return 1.0; }).finish_s;
  }
  [[nodiscard]] double exec_time(const CandidateTask& task,
                                 const gossip::ResourceEntry& r) const override {
    return execution_time_s(task.load_mi, r);
  }

  void dispatch(const CandidateTask& task, NodeId target) override {
    dispatched_.emplace_back(task.ref, target);
    for (auto& r : resources_) {
      if (r.node == target) r.load_mi += task.load_mi;
    }
  }

  std::vector<std::pair<TaskRef, NodeId>> dispatched_;

 private:
  std::vector<gossip::ResourceEntry> resources_;
  std::vector<PendingWorkflow> pending_;
};

CandidateTask compute_task(int wf, int idx, double load, double rpm, double ms) {
  CandidateTask c;
  c.ref = TaskRef{WorkflowId{wf}, TaskIndex{idx}};
  c.load_mi = load;
  c.inputs.load_mi = load;
  c.rpm = rpm;
  c.wf_makespan = ms;
  c.slack = ms - rpm;
  return c;
}

TEST(FirstPhase, LoadUpdateSpreadsTasksAcrossEqualNodes) {
  // Two identical nodes, four identical tasks: without the Algorithm-1-line-15
  // RSS update they would all pile on node 0; with it they alternate.
  std::vector<gossip::ResourceEntry> resources{
      {NodeId{0}, 0.0, 1.0, 0.0, 0},
      {NodeId{1}, 0.0, 1.0, 0.0, 0},
  };
  PendingWorkflow wf;
  wf.wf = WorkflowId{0};
  wf.makespan = 100;
  for (int i = 0; i < 4; ++i) wf.tasks.push_back(compute_task(0, i, 50, 100 - i, 100));
  ComputeContext ctx(resources, {wf});
  DsmfPolicy policy;
  policy.run(ctx);
  ASSERT_EQ(ctx.dispatched_.size(), 4u);
  int on0 = 0, on1 = 0;
  for (const auto& [ref, node] : ctx.dispatched_) (node == NodeId{0} ? on0 : on1)++;
  EXPECT_EQ(on0, 2);
  EXPECT_EQ(on1, 2);
}

TEST(FirstPhase, FasterNodePreferredUntilSaturated) {
  std::vector<gossip::ResourceEntry> resources{
      {NodeId{0}, 0.0, 4.0, 0.0, 0},  // fast
      {NodeId{1}, 0.0, 1.0, 0.0, 0},  // slow
  };
  PendingWorkflow wf;
  wf.wf = WorkflowId{0};
  wf.makespan = 10;
  for (int i = 0; i < 5; ++i) wf.tasks.push_back(compute_task(0, i, 40, 10 - i, 10));
  ComputeContext ctx(resources, {wf});
  DsmfPolicy policy;
  policy.run(ctx);
  // Fast node (cap 4) takes tasks until its queue makes the slow node
  // competitive: FT(fast) after k tasks = (k+1)*10; FT(slow) = 40.
  int on_fast = 0;
  for (const auto& [ref, node] : ctx.dispatched_) on_fast += node == NodeId{0} ? 1 : 0;
  EXPECT_EQ(on_fast, 4);
}

TEST(FirstPhase, MinMinReevaluatesAfterEachDispatch) {
  // Two tasks, one fast node. min-min puts the short task first; after the
  // RSS update the long task may prefer the other node.
  std::vector<gossip::ResourceEntry> resources{
      {NodeId{0}, 0.0, 2.0, 0.0, 0},
      {NodeId{1}, 0.0, 1.0, 0.0, 0},
  };
  PendingWorkflow wf;
  wf.wf = WorkflowId{0};
  wf.makespan = 100;
  wf.tasks.push_back(compute_task(0, 0, 100, 50, 100));  // long
  wf.tasks.push_back(compute_task(0, 1, 10, 100, 100));  // short
  ComputeContext ctx(resources, {wf});
  MinMinPolicy policy;
  policy.run(ctx);
  ASSERT_EQ(ctx.dispatched_.size(), 2u);
  // Short first (FT 5 on node 0), long second (node0 FT = 5+50=55 vs node1 100).
  EXPECT_EQ(ctx.dispatched_[0].first.task.get(), 1);
  EXPECT_EQ(ctx.dispatched_[0].second, NodeId{0});
  EXPECT_EQ(ctx.dispatched_[1].second, NodeId{0});
}

TEST(FirstPhase, MaxMinPutsLongTaskFirst) {
  std::vector<gossip::ResourceEntry> resources{
      {NodeId{0}, 0.0, 2.0, 0.0, 0},
      {NodeId{1}, 0.0, 1.0, 0.0, 0},
  };
  PendingWorkflow wf;
  wf.wf = WorkflowId{0};
  wf.makespan = 100;
  wf.tasks.push_back(compute_task(0, 0, 100, 50, 100));
  wf.tasks.push_back(compute_task(0, 1, 10, 100, 100));
  ComputeContext ctx(resources, {wf});
  MaxMinPolicy policy;
  policy.run(ctx);
  EXPECT_EQ(ctx.dispatched_[0].first.task.get(), 0);
}

TEST(FirstPhase, NoResourcesDispatchesNothing) {
  PendingWorkflow wf;
  wf.wf = WorkflowId{0};
  wf.tasks.push_back(compute_task(0, 0, 10, 1, 1));
  ComputeContext ctx({}, {wf});
  DsmfPolicy dsmf;
  dsmf.run(ctx);
  EXPECT_TRUE(ctx.dispatched_.empty());
  MinMinPolicy minmin;
  ComputeContext ctx2({}, {wf});
  minmin.run(ctx2);
  EXPECT_TRUE(ctx2.dispatched_.empty());
}

TEST(FirstPhase, SelectMinFtTieBreaksTowardFirstEntry) {
  std::vector<gossip::ResourceEntry> resources{
      {NodeId{3}, 0.0, 1.0, 0.0, 0},
      {NodeId{4}, 0.0, 1.0, 0.0, 0},
  };
  ComputeContext ctx(resources, {});
  const auto task = compute_task(0, 0, 10, 1, 1);
  EXPECT_EQ(select_min_ft(ctx, task), 0);
}

}  // namespace
}  // namespace dpjit::core
