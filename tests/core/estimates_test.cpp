#include "core/estimates.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace dpjit::core {
namespace {

gossip::ResourceEntry resource(int node, double load, double cap) {
  return gossip::ResourceEntry{NodeId{node}, load, cap, 0.0, 0};
}

BandwidthEstimateFn flat_bw(double mbps) {
  return [mbps](NodeId, NodeId) { return mbps; };
}

TEST(Estimates, QueuingDelayIsLoadOverCapacity) {
  EXPECT_DOUBLE_EQ(queuing_delay_s(resource(0, 100, 4)), 25.0);
  EXPECT_DOUBLE_EQ(queuing_delay_s(resource(0, 0, 4)), 0.0);
  EXPECT_DOUBLE_EQ(queuing_delay_s(resource(0, -5, 4)), 0.0);  // clamped
}

TEST(Estimates, ExecutionTime) {
  EXPECT_DOUBLE_EQ(execution_time_s(1000, resource(0, 0, 8)), 125.0);
}

TEST(Estimates, LtdTakesSlowestInput) {
  TaskEstimateInputs task;
  task.load_mi = 10;
  task.inputs = {{NodeId{1}, 100.0}, {NodeId{2}, 10.0}};
  auto bw = [](NodeId from, NodeId) { return from == NodeId{1} ? 10.0 : 1.0; };
  // Input from 1: 100/10 = 10 s; from 2: 10/1 = 10 s -> LTD = 10.
  EXPECT_DOUBLE_EQ(longest_transmission_delay_s(task, NodeId{0}, bw), 10.0);
}

TEST(Estimates, LocalInputsAreFree) {
  TaskEstimateInputs task;
  task.inputs = {{NodeId{5}, 1000.0}};
  EXPECT_DOUBLE_EQ(longest_transmission_delay_s(task, NodeId{5}, flat_bw(1.0)), 0.0);
}

TEST(Estimates, ZeroSizeInputsAreFree) {
  TaskEstimateInputs task;
  task.inputs = {{NodeId{1}, 0.0}};
  EXPECT_DOUBLE_EQ(longest_transmission_delay_s(task, NodeId{0}, flat_bw(1.0)), 0.0);
}

TEST(Estimates, ZeroBandwidthMeansInfiniteDelay) {
  TaskEstimateInputs task;
  task.inputs = {{NodeId{1}, 10.0}};
  EXPECT_TRUE(std::isinf(longest_transmission_delay_s(task, NodeId{0}, flat_bw(0.0))));
}

TEST(Estimates, StartTimeOverlapsQueueAndTransfers) {
  // Eq. (5): ST = max(R, LTD) - the two delays overlap in time.
  TaskEstimateInputs task;
  task.load_mi = 40;
  task.inputs = {{NodeId{1}, 100.0}};
  const auto r = resource(0, 200, 2);  // R = 100 s
  // LTD = 100/2 = 50 < R -> ST = R = 100; FT = 100 + 40/2 = 120.
  const auto est = estimate_finish_time(task, r, flat_bw(2.0));
  EXPECT_DOUBLE_EQ(est.start_s, 100.0);
  EXPECT_DOUBLE_EQ(est.finish_s, 120.0);
}

TEST(Estimates, TransferDominatesWhenSlower) {
  TaskEstimateInputs task;
  task.load_mi = 40;
  task.inputs = {{NodeId{1}, 1000.0}};
  const auto r = resource(0, 20, 2);  // R = 10 s, LTD = 500 s
  const auto est = estimate_finish_time(task, r, flat_bw(2.0));
  EXPECT_DOUBLE_EQ(est.start_s, 500.0);
  EXPECT_DOUBLE_EQ(est.finish_s, 520.0);
}

TEST(Estimates, IdleNodeNoInputsStartsImmediately) {
  TaskEstimateInputs task;
  task.load_mi = 16;
  const auto est = estimate_finish_time(task, resource(0, 0, 16), flat_bw(1.0));
  EXPECT_DOUBLE_EQ(est.start_s, 0.0);
  EXPECT_DOUBLE_EQ(est.finish_s, 1.0);
}

TEST(Estimates, FinishTimeMonotoneInLoadAndData) {
  // FT(tau, r) must never decrease when the task gets heavier or its inputs
  // larger - a sanity property Formula (9) relies on.
  util::Rng rng(77);
  for (int round = 0; round < 200; ++round) {
    TaskEstimateInputs task;
    task.load_mi = rng.uniform(1, 10000);
    task.inputs.push_back(InputSource{NodeId{1}, rng.uniform(0, 5000)});
    task.inputs.push_back(InputSource{NodeId{2}, rng.uniform(0, 5000)});
    const auto r = resource(0, rng.uniform(0, 50000), rng.uniform(1, 16));
    const auto bw = flat_bw(rng.uniform(0.1, 10.0));
    const double base = estimate_finish_time(task, r, bw).finish_s;

    TaskEstimateInputs heavier = task;
    heavier.load_mi *= 1.5;
    EXPECT_GE(estimate_finish_time(heavier, r, bw).finish_s, base);

    TaskEstimateInputs chattier = task;
    chattier.inputs[0].size_mb *= 2.0;
    EXPECT_GE(estimate_finish_time(chattier, r, bw).finish_s, base);

    auto busier = r;
    busier.load_mi += 1000.0;
    EXPECT_GE(estimate_finish_time(task, busier, bw).finish_s, base);
  }
}

TEST(Estimates, FasterNodeWinsDespiteLoad) {
  // A common Formula (9) situation: loaded fast node vs idle slow node.
  TaskEstimateInputs task;
  task.load_mi = 1600;
  const auto fast = resource(0, 800, 16);  // R = 50, et = 100 -> FT = 150
  const auto slow = resource(1, 0, 1);     // R = 0, et = 1600 -> FT = 1600
  const auto bw = flat_bw(1.0);
  EXPECT_LT(estimate_finish_time(task, fast, bw).finish_s,
            estimate_finish_time(task, slow, bw).finish_s);
}

}  // namespace
}  // namespace dpjit::core
