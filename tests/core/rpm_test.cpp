#include "core/rpm.hpp"

#include <gtest/gtest.h>

#include "dag/generator.hpp"

namespace dpjit::core {
namespace {

TEST(Rpm, ExitTaskRpmIsItsExecutionTime) {
  dag::Workflow wf;
  auto a = wf.add_task(10, 0);
  auto b = wf.add_task(30, 0);
  wf.add_dependency(a, b, 20);
  const auto rpm = rest_path_makespans(wf, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(rpm[static_cast<std::size_t>(b.get())], 30.0);
  EXPECT_DOUBLE_EQ(rpm[static_cast<std::size_t>(a.get())], 60.0);
}

TEST(Rpm, AveragesScaleRpm) {
  dag::Workflow wf;
  auto a = wf.add_task(100, 0);
  auto b = wf.add_task(200, 0);
  wf.add_dependency(a, b, 60);
  const auto rpm = rest_path_makespans(wf, {10.0, 6.0});
  // 100/10 + 60/6 + 200/10 = 10 + 10 + 20.
  EXPECT_DOUBLE_EQ(rpm[0], 40.0);
}

TEST(Rpm, RemainingMakespanIsMaxOverSchedulePoints) {
  std::vector<double> rpm{5.0, 80.0, 115.0, 60.0};
  EXPECT_DOUBLE_EQ(remaining_makespan(rpm, {TaskIndex{1}, TaskIndex{2}}), 115.0);
  EXPECT_DOUBLE_EQ(remaining_makespan(rpm, {TaskIndex{3}}), 60.0);
  EXPECT_DOUBLE_EQ(remaining_makespan(rpm, {}), 0.0);
}

TEST(Rpm, EntryRpmEqualsExpectedFinishTime) {
  util::Rng rng(4);
  for (int i = 0; i < 10; ++i) {
    const auto wf = dag::generate_workflow(WorkflowId{1}, dag::GeneratorParams{}, rng);
    const dag::AverageEstimates avg{6.2, 5.0};
    const auto rpm = rest_path_makespans(wf, avg);
    EXPECT_NEAR(rpm[static_cast<std::size_t>(wf.entry().get())],
                dag::expected_finish_time(wf, avg), 1e-9);
  }
}

TEST(Rpm, MakespanShrinksAsExecutionProgresses) {
  // ms(f) over later schedule points is never larger than over earlier ones
  // along any chain, because RPM decreases monotonically along edges.
  util::Rng rng(8);
  const auto wf = dag::generate_workflow(WorkflowId{1}, dag::GeneratorParams{}, rng);
  const auto rpm = rest_path_makespans(wf, {6.2, 5.0});
  const double ms_entry = remaining_makespan(rpm, {wf.entry()});
  std::vector<TaskIndex> second_wave = wf.successors(wf.entry());
  if (!second_wave.empty()) {
    EXPECT_LE(remaining_makespan(rpm, second_wave), ms_entry);
  }
}

}  // namespace
}  // namespace dpjit::core
