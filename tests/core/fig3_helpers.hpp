// Reconstruction of the paper's Fig. 3 worked example.
//
// The published numbers are: RPM(A2)=80, RPM(A3)=115, RPM(B2)=65, RPM(B3)=60
// (under average estimates), workflow makespans ms(A)=115, ms(B)=65, DSMF
// scheduling order B2, B3, A3, A2, HEFT order A3, A2, B2, B3, and a finish-
// time matrix on three idle resources X, Y, Z from which min-min first picks
// A2 and max-min first picks B2. We rebuild DAGs that reproduce exactly those
// RPM values with unit average capacity/bandwidth.
#pragma once

#include <map>
#include <vector>

#include "core/dispatch.hpp"
#include "dag/templates.hpp"
#include "dag/workflow.hpp"

namespace dpjit::core::testing {

/// Workflow A of Fig. 3 (see dag::make_fig3_workflow_a).
inline dag::Workflow fig3_workflow_a() { return dag::make_fig3_workflow_a(WorkflowId{0}); }

/// Workflow B of Fig. 3 (see dag::make_fig3_workflow_b).
inline dag::Workflow fig3_workflow_b() { return dag::make_fig3_workflow_b(WorkflowId{1}); }

/// Mock context exposing Fig. 3's schedule points and finish-time matrix.
/// Rows: A2, A3, B2, B3; columns: resources X, Y, Z (node ids 0, 1, 2).
class Fig3Context final : public DispatchContext {
 public:
  Fig3Context() {
    resources_ = {
        {NodeId{0}, 0.0, 1.0, 0.0, 0},  // X
        {NodeId{1}, 0.0, 1.0, 0.0, 0},  // Y
        {NodeId{2}, 0.0, 1.0, 0.0, 0},  // Z
    };
    // Paper's estimated finish-time matrix.
    ft_[{0, 1}] = {15, 10, 30};  // A2 (workflow 0, task index 1)
    ft_[{0, 2}] = {30, 50, 40};  // A3
    ft_[{1, 1}] = {50, 60, 40};  // B2 (workflow 1, task index 1)
    ft_[{1, 2}] = {40, 20, 30};  // B3

    PendingWorkflow a;
    a.wf = WorkflowId{0};
    a.makespan = 115;
    a.tasks.push_back(make_task(0, 1, 10, 80, 115));   // A2
    a.tasks.push_back(make_task(0, 2, 20, 115, 115));  // A3
    PendingWorkflow b;
    b.wf = WorkflowId{1};
    b.makespan = 65;
    b.tasks.push_back(make_task(1, 1, 10, 65, 65));  // B2
    b.tasks.push_back(make_task(1, 2, 40, 60, 65));  // B3
    pending_ = {a, b};
  }

  [[nodiscard]] SimTime now() const override { return 0.0; }
  [[nodiscard]] NodeId home() const override { return NodeId{9}; }
  [[nodiscard]] std::vector<gossip::ResourceEntry>& resources() override { return resources_; }
  [[nodiscard]] const std::vector<PendingWorkflow>& pending() const override { return pending_; }

  [[nodiscard]] double finish_time(const CandidateTask& task,
                                   const gossip::ResourceEntry& resource) const override {
    const auto row = ft_.at({task.ref.workflow.get(), task.ref.task.get()});
    return row[static_cast<std::size_t>(resource.node.get())];
  }

  [[nodiscard]] double exec_time(const CandidateTask& task,
                                 const gossip::ResourceEntry&) const override {
    return task.load_mi;
  }

  void dispatch(const CandidateTask& task, NodeId target) override {
    dispatched_.emplace_back(task.ref, target);
    sufferages_.push_back(task.sufferage);
  }

  /// Dispatch log: (task, chosen node) in dispatch order.
  [[nodiscard]] const std::vector<std::pair<TaskRef, NodeId>>& dispatched() const {
    return dispatched_;
  }
  [[nodiscard]] const std::vector<double>& sufferages() const { return sufferages_; }

  /// Name of a task for readable assertions ("A2", "B3"...).
  static std::string name(TaskRef ref) {
    // Built in two steps: string + to_string rvalue trips a -Wrestrict false
    // positive in GCC 12 (PR 105329) under -O2.
    std::string s(1, ref.workflow.get() == 0 ? 'A' : 'B');
    s += std::to_string(ref.task.get() + 1);
    return s;
  }

 private:
  static CandidateTask make_task(int wf, int task, double load, double rpm, double ms) {
    CandidateTask c;
    c.ref = TaskRef{WorkflowId{wf}, TaskIndex{task}};
    c.load_mi = load;
    c.rpm = rpm;
    c.wf_makespan = ms;
    c.slack = ms - rpm;
    return c;
  }

  std::vector<gossip::ResourceEntry> resources_;
  std::vector<PendingWorkflow> pending_;
  std::map<std::pair<int, int>, std::vector<double>> ft_;
  std::vector<std::pair<TaskRef, NodeId>> dispatched_;
  std::vector<double> sufferages_;
};

}  // namespace dpjit::core::testing
