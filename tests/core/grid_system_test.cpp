// GridSystem behaviour at the smallest useful scale: a hand-built 4-node
// line topology where every estimate can be reasoned about, plus fault
// injection for the failure paths.
#include "core/grid_system.hpp"

#include <gtest/gtest.h>

#include "dag/templates.hpp"

namespace dpjit::core {
namespace {

/// 4 nodes in a line, uniform 10 Mb/s links, 1 ms latency, capacities
/// {4, 1, 2, 8} MIPS.
struct TinyWorld {
  explicit TinyWorld(const std::string& algorithm, SystemConfig config = {})
      : topo(net::Topology::from_links(4, {{NodeId{0}, NodeId{1}, 10.0, 0.001},
                                           {NodeId{1}, NodeId{2}, 10.0, 0.001},
                                           {NodeId{2}, NodeId{3}, 10.0, 0.001}})),
        routing(topo),
        rng(99),
        landmarks(routing, 2, rng) {
    config.scheduling_interval_s = 100.0;
    config.first_schedule_at_s = 100.0;
    config.horizon_s = 200000.0;
    config.gossip.cycle_s = 50.0;
    system = std::make_unique<GridSystem>(engine, topo, routing, landmarks,
                                          std::vector<double>{4, 1, 2, 8},
                                          make_algorithm(algorithm), config);
  }

  sim::Engine engine;
  net::Topology topo;
  net::Routing routing;
  util::Rng rng;
  net::LandmarkEstimator landmarks;
  std::unique_ptr<GridSystem> system;
};

dag::Workflow chain3() { return dag::make_pipeline(WorkflowId{}, 3, {1000.0, 10.0, 50.0}); }

TEST(GridSystem, RejectsInvalidSubmissions) {
  TinyWorld w("dsmf");
  dag::Workflow cyclic;
  auto a = cyclic.add_task(1, 1);
  auto b = cyclic.add_task(1, 1);
  cyclic.add_dependency(a, b, 0);
  cyclic.add_dependency(b, a, 0);
  EXPECT_THROW(w.system->submit(NodeId{0}, std::move(cyclic)), std::invalid_argument);
  EXPECT_THROW(w.system->submit(NodeId{9}, chain3()), std::out_of_range);
}

TEST(GridSystem, SubmitNormalizesAndComputesEft) {
  TinyWorld w("dsmf");
  // Two entries: normalize() must add a virtual entry.
  dag::Workflow wf;
  auto a = wf.add_task(100, 10);
  auto b = wf.add_task(100, 10);
  auto c = wf.add_task(100, 10);
  wf.add_dependency(a, c, 50);
  wf.add_dependency(b, c, 50);
  const auto id = w.system->submit(NodeId{0}, std::move(wf));
  const auto& inst = w.system->workflow(id);
  EXPECT_EQ(inst.dag.entry_tasks().size(), 1u);
  // eft under true averages: capacity (4+1+2+8)/4 = 3.75 MIPS.
  EXPECT_GT(inst.eft, 0.0);
  const double avg_cap = w.system->true_averages().capacity_mips;
  EXPECT_DOUBLE_EQ(avg_cap, 3.75);
}

TEST(GridSystem, JitDispatchWaitsForSchedulingCycle) {
  TinyWorld w("dsmf");
  w.system->submit(NodeId{0}, chain3());
  w.system->start();
  w.engine.run_until(99.0);  // before the first cycle at t=100
  EXPECT_EQ(w.system->tasks_dispatched(), 0u);
  w.engine.run_until(101.0);
  EXPECT_EQ(w.system->tasks_dispatched(), 1u);  // the entry task
}

TEST(GridSystem, FullAheadStagesEntryImmediately) {
  TinyWorld w("smf");
  w.system->submit(NodeId{0}, chain3());
  w.system->start();  // full-ahead: plan + dispatch before any cycle
  EXPECT_EQ(w.system->tasks_dispatched(), 1u);
}

TEST(GridSystem, WorkflowCompletesAndReportsTimes) {
  TinyWorld w("dsmf");
  const auto id = w.system->submit(NodeId{0}, chain3());
  w.system->run();
  const auto& inst = w.system->workflow(id);
  ASSERT_TRUE(inst.done());
  EXPECT_GT(inst.entry_started_at, 0.0);
  EXPECT_GT(inst.finished_at, inst.entry_started_at);
  EXPECT_EQ(inst.finished_tasks, inst.dag.task_count());
  EXPECT_EQ(w.system->finished_workflows(), 1u);
}

TEST(GridSystem, EveryAlgorithmCompletesTinyWorkload) {
  for (const auto& algo : all_algorithms()) {
    TinyWorld w(algo);
    w.system->submit(NodeId{0}, chain3());
    w.system->submit(NodeId{3}, dag::make_diamond(WorkflowId{}, 2.0, {500.0, 5.0, 20.0}));
    w.system->run();
    EXPECT_EQ(w.system->finished_workflows(), 2u) << algo;
  }
}

TEST(GridSystem, FaultInjectionKillsRunningTask) {
  TinyWorld w("dsmf");
  w.system->submit(NodeId{0}, chain3());
  w.system->start();
  // Let the entry task start somewhere, then kill every other node.
  w.engine.run_until(150.0);
  std::size_t killed = 0;
  for (int i = 1; i < 4; ++i) {
    w.system->inject_node_failure(NodeId{i});
    ++killed;
  }
  EXPECT_EQ(w.system->alive_count(), 1u);
  w.engine.run_until(200000.0);
  // The workflow may or may not have been stranded depending on where tasks
  // ran, but no invariants break and failure accounting is consistent.
  EXPECT_EQ(w.system->tasks_failed() == 0, w.system->finished_workflows() == 1);
}

TEST(GridSystem, ReschedulingRecoversFromInjectedFailure) {
  SystemConfig cfg;
  cfg.reschedule_failed = true;
  TinyWorld w("dsmf", cfg);
  const auto id = w.system->submit(NodeId{0}, chain3());
  w.system->start();
  // Kill whichever node accepted the first task, mid-flight.
  w.engine.run_until(150.0);
  NodeId victim{};
  const auto& inst = w.system->workflow(id);
  for (const auto& rt : inst.tasks) {
    if (rt.exec_node.valid() && rt.exec_node != NodeId{0}) victim = rt.exec_node;
  }
  if (victim.valid()) {
    w.system->inject_node_failure(victim);
    w.system->inject_node_rejoin(victim);
  }
  w.engine.run_until(200000.0);
  EXPECT_EQ(w.system->finished_workflows(), 1u);
  EXPECT_TRUE(w.system->workflow(id).done());
}

TEST(GridSystem, HomeKeepsOutputsAllowsFetchAfterSourceDeath) {
  // chain: t0 -> t1 -> t2. Let t0 finish on some node, kill that node before
  // t1 is dispatched; with result collection the run still completes.
  SystemConfig cfg;
  cfg.home_keeps_outputs = true;
  cfg.reschedule_failed = true;
  TinyWorld w("dsmf", cfg);
  const auto id = w.system->submit(NodeId{0}, chain3());
  w.system->start();
  // Run until the first task finished, then kill its executor (if remote).
  for (int step = 0; step < 100000 && w.system->workflow(id).finished_tasks < 1; ++step) {
    if (!w.engine.step()) break;
  }
  const auto& inst = w.system->workflow(id);
  ASSERT_GE(inst.finished_tasks, 1u);
  const NodeId executor = inst.tasks[0].exec_node;
  if (executor != NodeId{0}) {
    w.system->inject_node_failure(executor);
  }
  w.engine.run_until(200000.0);
  EXPECT_TRUE(w.system->workflow(id).done());
}

TEST(GridSystem, StrictDataSemanticsStrandWorkflowOnSourceDeath) {
  SystemConfig cfg;
  cfg.home_keeps_outputs = false;  // ablation: data dies with the node
  TinyWorld w("dsmf", cfg);
  const auto id = w.system->submit(NodeId{0}, chain3());
  w.system->start();
  for (int step = 0; step < 100000 && w.system->workflow(id).finished_tasks < 1; ++step) {
    if (!w.engine.step()) break;
  }
  const auto& inst = w.system->workflow(id);
  ASSERT_GE(inst.finished_tasks, 1u);
  const NodeId executor = inst.tasks[0].exec_node;
  if (executor != NodeId{0}) {
    w.system->inject_node_failure(executor);
    w.engine.run_until(200000.0);
    EXPECT_FALSE(w.system->workflow(id).done());
    EXPECT_GT(w.system->tasks_failed(), 0u);
  }
}

TEST(GridSystem, InjectValidation) {
  TinyWorld w("dsmf");
  EXPECT_THROW(w.system->inject_node_failure(NodeId{17}), std::out_of_range);
  EXPECT_THROW(w.system->inject_node_rejoin(NodeId{-1}), std::out_of_range);
}

TEST(GridSystem, CapacityMismatchThrows) {
  TinyWorld w("dsmf");
  EXPECT_THROW(GridSystem(w.engine, w.topo, w.routing, w.landmarks, {1.0, 2.0},
                          make_algorithm("dsmf"), SystemConfig{}),
               std::invalid_argument);
}

TEST(GridSystem, DsmfShieldsShortWorkflowFromLongOnes) {
  // The paper's central behavioural claim (Section III.A): handling the
  // workflow with the shortest remaining makespan first protects short
  // workflows from being starved behind long ones. Three single-task
  // workflows (makespans tiny < medium < huge) contend at one home; under
  // DSMF the tiny one is dispatched and executed first, under DHEFT
  // (longest-RPM-first at both phases) the huge one goes first and the tiny
  // workflow pays for it.
  auto run_tiny_ct = [](const std::string& algorithm) {
    TinyWorld w(algorithm);
    const auto huge_id =
        w.system->submit(NodeId{0}, dag::make_pipeline(WorkflowId{}, 1, {40000.0, 10.0, 10.0}));
    const auto medium_id =
        w.system->submit(NodeId{0}, dag::make_pipeline(WorkflowId{}, 1, {16000.0, 10.0, 10.0}));
    const auto tiny_id =
        w.system->submit(NodeId{0}, dag::make_pipeline(WorkflowId{}, 1, {800.0, 1.0, 10.0}));
    w.system->run();
    EXPECT_TRUE(w.system->workflow(huge_id).done()) << algorithm;
    EXPECT_TRUE(w.system->workflow(medium_id).done()) << algorithm;
    EXPECT_TRUE(w.system->workflow(tiny_id).done()) << algorithm;
    const auto& inst = w.system->workflow(tiny_id);
    return inst.finished_at - inst.submit_time;
  };
  const double dsmf_ct = run_tiny_ct("dsmf");
  const double dheft_ct = run_tiny_ct("dheft");
  EXPECT_LT(dsmf_ct, dheft_ct);
}

TEST(GridSystem, GossipTracksNodeLoads) {
  TinyWorld w("dsmf");
  for (int i = 0; i < 3; ++i) w.system->submit(NodeId{0}, chain3());
  w.system->start();
  w.engine.run_until(5000.0);
  // After warm-up every node's view contains some peers.
  EXPECT_GT(w.system->gossip_service().mean_rss_size(), 0.5);
}

}  // namespace
}  // namespace dpjit::core
