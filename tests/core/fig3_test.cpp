// The paper's Fig. 3 worked example as an executable oracle: RPM values,
// workflow makespans, and the scheduling orders of DSMF vs min-min vs
// max-min vs HEFT-style ranking.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/policies/batch_heuristics.hpp"
#include "core/policies/dheft.hpp"
#include "core/policies/dsdf.hpp"
#include "core/policies/dsmf.hpp"
#include "core/rpm.hpp"
#include "fig3_helpers.hpp"

namespace dpjit::core {
namespace {

using testing::Fig3Context;
using testing::fig3_workflow_a;
using testing::fig3_workflow_b;

const dag::AverageEstimates kUnitAverages{1.0, 1.0};

TEST(Fig3, RpmValuesMatchThePaper) {
  const auto a = fig3_workflow_a();
  const auto rpm_a = rest_path_makespans(a, kUnitAverages);
  EXPECT_DOUBLE_EQ(rpm_a[1], 80.0) << "RPM(A2)";
  EXPECT_DOUBLE_EQ(rpm_a[2], 115.0) << "RPM(A3)";

  const auto b = fig3_workflow_b();
  const auto rpm_b = rest_path_makespans(b, kUnitAverages);
  EXPECT_DOUBLE_EQ(rpm_b[1], 65.0) << "RPM(B2)";
  EXPECT_DOUBLE_EQ(rpm_b[2], 60.0) << "RPM(B3)";
}

TEST(Fig3, WorkflowMakespansMatchThePaper) {
  const auto a = fig3_workflow_a();
  const auto b = fig3_workflow_b();
  // Schedule points: A2, A3 and B2, B3 (entry tasks already finished).
  const auto ms_a = remaining_makespan(rest_path_makespans(a, kUnitAverages),
                                       {TaskIndex{1}, TaskIndex{2}});
  const auto ms_b = remaining_makespan(rest_path_makespans(b, kUnitAverages),
                                       {TaskIndex{1}, TaskIndex{2}});
  EXPECT_DOUBLE_EQ(ms_a, 115.0);
  EXPECT_DOUBLE_EQ(ms_b, 65.0);
}

TEST(Fig3, DsmfSchedulesB2B3A3A2) {
  Fig3Context ctx;
  DsmfPolicy policy;
  policy.run(ctx);
  ASSERT_EQ(ctx.dispatched().size(), 4u);
  EXPECT_EQ(Fig3Context::name(ctx.dispatched()[0].first), "B2");
  EXPECT_EQ(Fig3Context::name(ctx.dispatched()[1].first), "B3");
  EXPECT_EQ(Fig3Context::name(ctx.dispatched()[2].first), "A3");
  EXPECT_EQ(Fig3Context::name(ctx.dispatched()[3].first), "A2");
}

TEST(Fig3, DsmfTargetsMinimizeFinishTime) {
  Fig3Context ctx;
  DsmfPolicy policy;
  policy.run(ctx);
  // Per the matrix: B2 -> Z(40), B3 -> Y(20), A3 -> X(30), A2 -> Y(10).
  EXPECT_EQ(ctx.dispatched()[0].second, NodeId{2});
  EXPECT_EQ(ctx.dispatched()[1].second, NodeId{1});
  EXPECT_EQ(ctx.dispatched()[2].second, NodeId{0});
  EXPECT_EQ(ctx.dispatched()[3].second, NodeId{1});
}

TEST(Fig3, HeftStyleRankingSchedulesA3A2B2B3) {
  // "The HEFT algorithm will choose A3, A2, B2, and B3 one by one, due to
  // their decreasing order of RPM" - DHEFT applies exactly that order.
  Fig3Context ctx;
  DheftPolicy policy;
  policy.run(ctx);
  ASSERT_EQ(ctx.dispatched().size(), 4u);
  EXPECT_EQ(Fig3Context::name(ctx.dispatched()[0].first), "A3");
  EXPECT_EQ(Fig3Context::name(ctx.dispatched()[1].first), "A2");
  EXPECT_EQ(Fig3Context::name(ctx.dispatched()[2].first), "B2");
  EXPECT_EQ(Fig3Context::name(ctx.dispatched()[3].first), "B3");
}

TEST(Fig3, MinMinPicksA2First) {
  Fig3Context ctx;
  MinMinPolicy policy;
  policy.run(ctx);
  ASSERT_FALSE(ctx.dispatched().empty());
  EXPECT_EQ(Fig3Context::name(ctx.dispatched()[0].first), "A2");
  EXPECT_EQ(ctx.dispatched()[0].second, NodeId{1}) << "A2's best node is Y";
}

TEST(Fig3, MaxMinPicksB2First) {
  Fig3Context ctx;
  MaxMinPolicy policy;
  policy.run(ctx);
  ASSERT_FALSE(ctx.dispatched().empty());
  EXPECT_EQ(Fig3Context::name(ctx.dispatched()[0].first), "B2");
  EXPECT_EQ(ctx.dispatched()[0].second, NodeId{2}) << "B2's best node is Z";
}

TEST(Fig3, SufferageStampsPositiveSufferages) {
  Fig3Context ctx;
  SufferagePolicy policy;
  policy.run(ctx);
  ASSERT_EQ(ctx.dispatched().size(), 4u);
  // Sufferage values per matrix: A2: 15-10=5, A3: 40-30=10, B2: 50-40=10,
  // B3: 30-20=10. The first pick has the maximal sufferage (10).
  EXPECT_DOUBLE_EQ(ctx.sufferages()[0], 10.0);
  for (double s : ctx.sufferages()) EXPECT_GE(s, 5.0);
}

TEST(Fig3, DsdfSchedulesCriticalTasksFirst) {
  Fig3Context ctx;
  DsdfPolicy policy;
  policy.run(ctx);
  ASSERT_EQ(ctx.dispatched().size(), 4u);
  // Slacks: A2: 115-80=35, A3: 0, B2: 0, B3: 5. Ties keep workflow order:
  // A3 (0) before B2 (0), then B3, then A2.
  EXPECT_EQ(Fig3Context::name(ctx.dispatched()[0].first), "A3");
  EXPECT_EQ(Fig3Context::name(ctx.dispatched()[1].first), "B2");
  EXPECT_EQ(Fig3Context::name(ctx.dispatched()[2].first), "B3");
  EXPECT_EQ(Fig3Context::name(ctx.dispatched()[3].first), "A2");
}

TEST(Fig3, AllTasksDispatchedExactlyOnceByEveryPolicy) {
  for (int which = 0; which < 5; ++which) {
    Fig3Context ctx;
    std::unique_ptr<FirstPhasePolicy> policy;
    switch (which) {
      case 0: policy = std::make_unique<DsmfPolicy>(); break;
      case 1: policy = std::make_unique<DheftPolicy>(); break;
      case 2: policy = std::make_unique<DsdfPolicy>(); break;
      case 3: policy = std::make_unique<MinMinPolicy>(); break;
      default: policy = std::make_unique<MaxMinPolicy>(); break;
    }
    policy->run(ctx);
    EXPECT_EQ(ctx.dispatched().size(), 4u) << policy->name();
    std::set<std::string> names;
    for (const auto& [ref, node] : ctx.dispatched()) names.insert(Fig3Context::name(ref));
    EXPECT_EQ(names.size(), 4u) << policy->name();
  }
}

}  // namespace
}  // namespace dpjit::core
