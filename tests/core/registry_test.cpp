#include "core/policy_registry.hpp"

#include <gtest/gtest.h>

namespace dpjit::core {
namespace {

TEST(Registry, PaperAlgorithmsAllConstruct) {
  for (const auto& name : paper_algorithms()) {
    const auto algo = make_algorithm(name);
    EXPECT_EQ(algo.name, name);
    EXPECT_TRUE(algo.make_second != nullptr);
    if (algo.full_ahead()) {
      EXPECT_TRUE(algo.make_planner != nullptr);
      EXPECT_TRUE(algo.make_first == nullptr);
      EXPECT_NE(algo.make_planner()->name(), "");
    } else {
      EXPECT_TRUE(algo.make_first != nullptr);
      EXPECT_NE(algo.make_first()->name(), "");
    }
    EXPECT_NE(algo.make_second()->name(), "");
  }
}

TEST(Registry, EightPaperAlgorithms) {
  EXPECT_EQ(paper_algorithms().size(), 8u);
}

TEST(Registry, FullAheadFlagCorrect) {
  EXPECT_TRUE(make_algorithm("heft").full_ahead());
  EXPECT_TRUE(make_algorithm("smf").full_ahead());
  EXPECT_FALSE(make_algorithm("dsmf").full_ahead());
  EXPECT_FALSE(make_algorithm("minmin").full_ahead());
}

TEST(Registry, PhasePairingsFollowSectionIVA) {
  EXPECT_EQ(make_algorithm("dsmf").make_second()->name(), "dsmf");
  EXPECT_EQ(make_algorithm("dheft").make_second()->name(), "lrpm");
  EXPECT_EQ(make_algorithm("dsdf").make_second()->name(), "slack");
  EXPECT_EQ(make_algorithm("minmin").make_second()->name(), "stf");
  EXPECT_EQ(make_algorithm("maxmin").make_second()->name(), "ltf");
  EXPECT_EQ(make_algorithm("sufferage").make_second()->name(), "lsf");
  EXPECT_EQ(make_algorithm("heft").make_second()->name(), "fcfs");
  EXPECT_EQ(make_algorithm("smf").make_second()->name(), "fcfs");
}

TEST(Registry, FcfsVariantsForSecondPhaseAblation) {
  for (const char* name :
       {"minmin-fcfs", "maxmin-fcfs", "sufferage-fcfs", "dheft-fcfs", "dsmf-fcfs"}) {
    const auto algo = make_algorithm(name);
    EXPECT_EQ(algo.make_second()->name(), "fcfs") << name;
    EXPECT_FALSE(algo.full_ahead()) << name;
  }
}

TEST(Registry, UnknownThrows) {
  EXPECT_THROW(make_algorithm("quantum"), std::invalid_argument);
}

TEST(Registry, AllAlgorithmsIncludesVariants) {
  const auto all = all_algorithms();
  EXPECT_EQ(all.size(), 18u);
  for (const auto& name : all) EXPECT_NO_THROW(make_algorithm(name));
}

TEST(Registry, ContentionAwareExtensionsRegistered) {
  const auto ca = make_algorithm("dsmf-ca");
  EXPECT_FALSE(ca.full_ahead());
  EXPECT_EQ(ca.make_first()->name(), "dsmf-ca");
  EXPECT_EQ(ca.make_second()->name(), "dsmf");

  const auto tc = make_algorithm("dsmf-tc");
  EXPECT_FALSE(tc.full_ahead());
  EXPECT_EQ(tc.make_first()->name(), "dsmf");
  EXPECT_EQ(tc.make_second()->name(), "tcms");

  const auto dca = make_algorithm("dheft-ca");
  EXPECT_FALSE(dca.full_ahead());
  EXPECT_FALSE(dca.contended_planner);
  EXPECT_EQ(dca.make_first()->name(), "dheft-ca");
  EXPECT_EQ(dca.make_second()->name(), "lrpm");

  const auto lca = make_algorithm("lookahead-ca");
  EXPECT_TRUE(lca.full_ahead());
  EXPECT_TRUE(lca.contended_planner);
  EXPECT_EQ(lca.make_planner()->name(), "heft-la");
  EXPECT_EQ(lca.make_second()->name(), "fcfs");
}

TEST(Registry, LookaheadHeftExtensionRegistered) {
  const auto algo = make_algorithm("heft-la");
  EXPECT_TRUE(algo.full_ahead());
  EXPECT_EQ(algo.make_planner()->name(), "heft-la");
}

}  // namespace
}  // namespace dpjit::core
