// run_quantised_transfers: the epoch-barrier/ledger driver that runs the
// classic workflow path's transfers on sim::ShardEngine. Checks the worked
// end-to-end timeline (admission -> lazy per-epoch integration -> drain ->
// DONE delivery two epochs later), mid-run aborts, the derived-epoch rule,
// and the headline guarantee: byte-identical completions at any shard and
// thread count.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "core/workflow_shard.hpp"
#include "grid/transfer_manager.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "util/types.hpp"

namespace dpjit::core {
namespace {

net::Topology line_topology(int nodes) {
  std::vector<net::Link> links;
  for (int i = 0; i + 1 < nodes; ++i) {
    links.push_back({NodeId(i), NodeId(i + 1), 10.0, 1.0});
  }
  return net::Topology::from_links(nodes, std::move(links));
}

TEST(WorkflowShard, DerivedEpochIsRequestedOrLatencyFlooredAtSixtySeconds) {
  const net::Topology topo = line_topology(4);
  const net::Routing routing(topo, 1);
  const ShardMap map = compute_shard_map(routing, 2);
  EXPECT_DOUBLE_EQ(derive_quantised_epoch(map, 5.0), 5.0);
  // min_latency_s = 1 s here: the 60 s floor wins.
  EXPECT_DOUBLE_EQ(derive_quantised_epoch(map, 0.0), 60.0);
  EXPECT_DOUBLE_EQ(derive_quantised_epoch(map, -3.0), 60.0);
}

TEST(WorkflowShard, EndToEndTimelineOfOneFlow) {
  // 0 -1s- 1 -1s- 2, both links 10 MB/s. One 100 MB flow 0 -> 2 started at
  // t = 0, epoch 1 s:
  //   t = 2   propagation done, admitted at barrier B_2 at rate 10
  //   t = 3   first ledger drive integrates [2, 3)
  //   t = 12  drive integrates [11, 12): remaining hits 0, drain t_f = 12
  //   t = 13  the (shard, epoch) DONE message reaches barrier B_13
  sim::Engine world;
  const net::Topology topo = line_topology(3);
  const net::Routing routing(topo, 1);
  grid::TransferManager tm(world, topo, routing, grid::TransferManager::Mode::kQuantisedFair);
  const ShardMap map = compute_shard_map(routing, 1);

  double done_at = -1.0;
  bool ok_seen = false;
  tm.start(NodeId{0}, NodeId{2}, 100.0, [&](bool ok) {
    done_at = world.now();
    ok_seen = ok;
  });

  const QuantisedRunStats stats = run_quantised_transfers(world, tm, map, 1.0, 1, 20.0);
  EXPECT_TRUE(ok_seen);
  EXPECT_DOUBLE_EQ(done_at, 13.0);
  EXPECT_EQ(tm.completed_count(), 1u);
  EXPECT_DOUBLE_EQ(tm.total_delivered_mb(), 100.0);
  EXPECT_EQ(stats.barriers, 21u);  // B_0 .. B_20
  EXPECT_EQ(stats.flows_joined, 1u);
  EXPECT_EQ(stats.flows_drained, 1u);
  EXPECT_EQ(stats.flows_cancelled, 0u);
  EXPECT_GT(stats.windows, 0u);
}

TEST(WorkflowShard, MidRunAbortCancelsTheLedgerFlow) {
  sim::Engine world;
  const net::Topology topo = line_topology(3);
  const net::Routing routing(topo, 1);
  grid::TransferManager tm(world, topo, routing, grid::TransferManager::Mode::kQuantisedFair);
  const ShardMap map = compute_shard_map(routing, 1);

  bool ok_seen = true;
  double done_at = -1.0;
  const std::uint64_t id = tm.start(NodeId{0}, NodeId{2}, 100.0, [&](bool ok) {
    done_at = world.now();
    ok_seen = ok;
  });
  // The abort is a world event mid-epoch: the failure callback fires right
  // there (t = 5.5, inside barrier B_6's world advance), while the ledger
  // copy is reaped by the cancel shipped with B_6's delta.
  world.schedule_at(5.5, [&tm, id] { (void)tm.abort(id); });

  const QuantisedRunStats stats = run_quantised_transfers(world, tm, map, 1.0, 1, 20.0);
  EXPECT_FALSE(ok_seen);
  EXPECT_DOUBLE_EQ(done_at, 5.5);
  EXPECT_EQ(tm.completed_count(), 0u);
  EXPECT_EQ(stats.flows_joined, 1u);
  EXPECT_EQ(stats.flows_drained, 0u);
  EXPECT_EQ(stats.flows_cancelled, 1u);
}

// One contended workload, every (shards, threads) combination: the completion
// transcript (time, success) must be IDENTICAL — this is the driver-level
// statement of the scenario-tier shard-determinism goldens.
TEST(WorkflowShard, CompletionTranscriptIsShardAndThreadInvariant) {
  struct Spec {
    int src;
    int dst;
    double mb;
  };
  const std::vector<Spec> specs{{0, 7, 100.0}, {6, 1, 250.0}, {3, 5, 40.0},
                                {7, 0, 500.0}, {1, 2, 35.0},  {2, 6, 120.0}};

  const auto run = [&specs](int shards, int threads) {
    sim::Engine world;
    const net::Topology topo = line_topology(8);
    const net::Routing routing(topo, 1);
    grid::TransferManager tm(world, topo, routing, grid::TransferManager::Mode::kQuantisedFair);
    const ShardMap map = compute_shard_map(routing, shards);

    std::vector<std::pair<double, bool>> transcript;
    for (const Spec& s : specs) {
      tm.start(NodeId(s.src), NodeId(s.dst), s.mb,
               [&transcript, &world](bool ok) { transcript.emplace_back(world.now(), ok); });
    }
    const QuantisedRunStats stats = run_quantised_transfers(world, tm, map, 1.0, threads, 400.0);
    EXPECT_EQ(stats.flows_joined, specs.size());
    EXPECT_EQ(stats.flows_drained, specs.size());
    EXPECT_EQ(tm.completed_count(), specs.size());
    if (shards > 1 && threads > 1) {
      EXPECT_GT(stats.parallel_windows, 0u) << "shards=" << shards << " threads=" << threads;
    }
    return transcript;
  };

  const std::vector<std::pair<double, bool>> reference = run(1, 1);
  ASSERT_EQ(reference.size(), specs.size());
  for (const int shards : {2, 3, 8}) {
    for (const int threads : {1, 2}) {
      EXPECT_EQ(run(shards, threads), reference) << "shards=" << shards << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace dpjit::core
