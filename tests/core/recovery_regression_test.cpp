// Churn-recovery regression tests for the demotion bookkeeping in
// GridSystem::recover_task (strict data semantics: a finished precedent whose
// execution node departed must be demoted and re-executed).
//
// The choreography drives the fork DAG  u -> {s1, s2} -> join  through two
// demotions of u, the second one while u's completion notification is still
// in flight to the home node:
//   - successors in kWaiting must get a recomputed (not blindly incremented)
//     precedent count, otherwise the in-flight notification is double-counted;
//   - successors in kFailed must come out of recovery with a consistent count;
//   - the stale notification of a demoted incarnation must be dropped, or a
//     successor becomes schedulable while its precedent is still re-executing
//     and gets dispatched against data that does not exist yet.
#include "core/grid_system.hpp"

#include <gtest/gtest.h>

#include "dag/workflow.hpp"

namespace dpjit::core {
namespace {

/// 8 nodes in a line with deliberately large 5 s control latencies, so the
/// window between a task finishing at its execution node and the home node
/// learning about it spans many engine events.
struct SlowWanWorld {
  SlowWanWorld()
      : topo(net::Topology::from_links(8, {{NodeId{0}, NodeId{1}, 10.0, 5.0},
                                           {NodeId{1}, NodeId{2}, 10.0, 5.0},
                                           {NodeId{2}, NodeId{3}, 10.0, 5.0},
                                           {NodeId{3}, NodeId{4}, 10.0, 5.0},
                                           {NodeId{4}, NodeId{5}, 10.0, 5.0},
                                           {NodeId{5}, NodeId{6}, 10.0, 5.0},
                                           {NodeId{6}, NodeId{7}, 10.0, 5.0}})),
        routing(topo),
        rng(7),
        landmarks(routing, 2, rng) {
    SystemConfig config;
    config.scheduling_interval_s = 100.0;
    config.first_schedule_at_s = 100.0;
    config.horizon_s = 200000.0;
    config.gossip.cycle_s = 50.0;
    config.home_keeps_outputs = false;  // strict: data dies with the node
    config.reschedule_failed = true;
    system = std::make_unique<GridSystem>(engine, topo, routing, landmarks,
                                          std::vector<double>{1, 8, 4, 8, 2, 8, 4, 8},
                                          make_algorithm("dsmf"), config);
  }

  /// Steps until `done()` returns true; hard-fails if the engine drains.
  template <typename Pred>
  void step_until(Pred done) {
    for (int i = 0; i < 5'000'000; ++i) {
      if (done()) return;
      ASSERT_TRUE(engine.step()) << "engine drained before the condition held";
    }
    FAIL() << "condition not reached within the step budget";
  }

  sim::Engine engine;
  net::Topology topo;
  net::Routing routing;
  util::Rng rng;
  net::LandmarkEstimator landmarks;
  std::unique_ptr<GridSystem> system;
};

TEST(ChurnRecovery, DemotionKeepsSuccessorCountsConsistentAcrossStaleNotifications) {
  SlowWanWorld w;
  dag::Workflow wf;
  const auto u = wf.add_task(2000.0, 10.0, "u");
  const auto s1 = wf.add_task(60000.0, 10.0, "s1");
  const auto s2 = wf.add_task(100000.0, 10.0, "s2");
  const auto join = wf.add_task(10.0, 1.0, "join");
  wf.add_dependency(u, s1, 10.0);
  wf.add_dependency(u, s2, 10.0);
  wf.add_dependency(s1, join, 10.0);
  wf.add_dependency(s2, join, 10.0);
  const NodeId home{0};
  const auto id = w.system->submit(home, std::move(wf));
  const auto& inst = w.system->workflow(id);
  const auto ui = static_cast<std::size_t>(u.get());
  const auto s1i = static_cast<std::size_t>(s1.get());
  const auto s2i = static_cast<std::size_t>(s2.get());
  w.system->start();

  // Phase 1: u executes remotely and the home node processes its completion.
  w.step_until([&] { return inst.tasks[ui].finish_notified; });
  const NodeId exec_a = inst.tasks[ui].exec_node;
  ASSERT_NE(exec_a, home) << "u must run remotely for its data to be killable";

  // Phase 2: both successors running on (distinct) remote nodes.
  w.step_until([&] {
    return inst.tasks[s1i].state == TaskState::kRunning &&
           inst.tasks[s2i].state == TaskState::kRunning;
  });
  const NodeId b1 = inst.tasks[s1i].exec_node;
  const NodeId b2 = inst.tasks[s2i].exec_node;
  ASSERT_NE(b1, home);
  ASSERT_NE(b2, home);
  ASSERT_NE(b1, b2) << "choreography needs s1/s2 on distinct nodes";

  // Phase 3: kill u's data and s1's executor; recovery demotes u (its output
  // is unreachable) and re-dispatches it.
  w.system->inject_node_failure(exec_a);
  w.system->inject_node_failure(b1);
  ASSERT_EQ(inst.tasks[s1i].state, TaskState::kFailed);
  w.system->run_scheduling_cycle();
  EXPECT_EQ(inst.tasks[s1i].state, TaskState::kWaiting);
  EXPECT_EQ(inst.tasks[s1i].unfinished_preds, 1);
  EXPECT_EQ(inst.tasks[ui].state, TaskState::kDispatched);
  EXPECT_FALSE(inst.tasks[ui].finish_notified);
  ASSERT_EQ(inst.tasks[s2i].state, TaskState::kRunning) << "s2 must survive u's demotion";

  // Phase 4: u finishes its re-execution; stop on the very event that marks
  // it finished at the execution node, before the notification (>= 5 s away)
  // reaches the home node.
  w.step_until([&] { return inst.tasks[ui].state == TaskState::kFinished; });
  const NodeId exec_c = inst.tasks[ui].exec_node;
  ASSERT_FALSE(inst.tasks[ui].finish_notified) << "notification must still be in flight";
  ASSERT_NE(exec_c, b2) << "choreography needs u's re-execution off s2's node";
  ASSERT_EQ(inst.tasks[s2i].state, TaskState::kRunning);

  // Phase 5: kill u's new data and s2's executor inside the notification
  // window, then recover. u is demoted again while its completion
  // notification is in flight - the regression heart.
  w.system->inject_node_failure(exec_c);
  w.system->inject_node_failure(b2);
  ASSERT_EQ(inst.tasks[s2i].state, TaskState::kFailed);
  w.system->run_scheduling_cycle();

  // The blind-increment bug left s1 (kWaiting, count already treating u as
  // unfinished) with unfinished_preds == 2 here; the kFailed-successor gap
  // left s2 with a stale count until its own recovery.
  EXPECT_EQ(inst.tasks[s1i].state, TaskState::kWaiting);
  EXPECT_EQ(inst.tasks[s1i].unfinished_preds, 1);
  EXPECT_EQ(inst.tasks[s2i].state, TaskState::kWaiting);
  EXPECT_EQ(inst.tasks[s2i].unfinished_preds, 1);
  EXPECT_EQ(inst.tasks[ui].state, TaskState::kDispatched);

  // Phase 6: run out. The stale notification of u's second incarnation must
  // be dropped; both successors only start after u's surviving re-execution
  // actually finished, and the workflow completes.
  w.engine.run_until(200000.0);
  ASSERT_TRUE(inst.done()) << "workflow stranded: recovery bookkeeping is inconsistent";
  EXPECT_GE(inst.tasks[s1i].started_at, inst.tasks[ui].finished_at)
      << "s1 started against data that did not exist yet";
  EXPECT_GE(inst.tasks[s2i].started_at, inst.tasks[ui].finished_at)
      << "s2 started against data that did not exist yet";
  EXPECT_EQ(inst.tasks[ui].state, TaskState::kFinished);
  EXPECT_GT(w.system->tasks_rescheduled(), 0u);
}

TEST(ChurnRecovery, RepeatedDemotionOfAChainStaysConsistent) {
  // Chain t0 -> t1 -> t2: kill t0's executor after t1 started, then kill
  // t1's executor as well - recovery must walk the chain upward, demote both,
  // and the workflow must still complete with consistent ordering.
  SlowWanWorld w;
  dag::Workflow wf;
  const auto t0 = wf.add_task(2000.0, 10.0);
  const auto t1 = wf.add_task(40000.0, 10.0);
  const auto t2 = wf.add_task(100.0, 10.0);
  wf.add_dependency(t0, t1, 10.0);
  wf.add_dependency(t1, t2, 10.0);
  const NodeId home{0};
  const auto id = w.system->submit(home, std::move(wf));
  const auto& inst = w.system->workflow(id);
  w.system->start();

  w.step_until([&] {
    return inst.tasks[static_cast<std::size_t>(t1.get())].state == TaskState::kRunning;
  });
  const NodeId a = inst.tasks[static_cast<std::size_t>(t0.get())].exec_node;
  const NodeId b = inst.tasks[static_cast<std::size_t>(t1.get())].exec_node;
  ASSERT_NE(a, home);
  if (a != b) w.system->inject_node_failure(a);
  w.system->inject_node_failure(b);
  ASSERT_EQ(inst.tasks[static_cast<std::size_t>(t1.get())].state, TaskState::kFailed);
  w.system->run_scheduling_cycle();
  // t0 demoted (its data died) and re-dispatched; t1 waits for it again.
  EXPECT_EQ(inst.tasks[static_cast<std::size_t>(t1.get())].state, TaskState::kWaiting);
  EXPECT_EQ(inst.tasks[static_cast<std::size_t>(t1.get())].unfinished_preds, 1);

  w.engine.run_until(200000.0);
  ASSERT_TRUE(inst.done());
  EXPECT_GE(inst.tasks[static_cast<std::size_t>(t1.get())].started_at,
            inst.tasks[static_cast<std::size_t>(t0.get())].finished_at);
  EXPECT_GE(w.system->tasks_rescheduled(), 2u);
}

}  // namespace
}  // namespace dpjit::core
