#include "core/policies/ready_policies.hpp"

#include <gtest/gtest.h>

namespace dpjit::core {
namespace {

grid::ReadyTask make(int id, double ms, double rpm, double load, double slack, double suff,
                     std::uint64_t seq) {
  grid::ReadyTask t;
  t.ref = TaskRef{WorkflowId{id}, TaskIndex{0}};
  t.wf_makespan = ms;
  t.rpm = rpm;
  t.load_mi = load;
  t.slack = slack;
  t.sufferage = suff;
  t.arrival_seq = seq;
  return t;
}

std::vector<const grid::ReadyTask*> ptrs(const std::vector<grid::ReadyTask>& v) {
  std::vector<const grid::ReadyTask*> out;
  for (const auto& t : v) out.push_back(&t);
  return out;
}

TEST(ReadyPolicies, DsmfPicksSmallestWorkflowMakespan) {
  const std::vector<grid::ReadyTask> tasks{
      make(0, 115, 80, 10, 35, 0, 0),
      make(1, 65, 65, 10, 0, 0, 1),
      make(2, 300, 10, 10, 290, 0, 2),
  };
  const auto policy = make_ready_policy("dsmf");
  EXPECT_EQ(policy->select(ptrs(tasks)), 1u);
}

TEST(ReadyPolicies, DsmfBreaksTiesByLongestRpm) {
  // Formula (10) + Algorithm 2 lines 3-5.
  const std::vector<grid::ReadyTask> tasks{
      make(0, 65, 20, 10, 45, 0, 0),
      make(1, 65, 60, 10, 5, 0, 1),
  };
  const auto policy = make_ready_policy("dsmf");
  EXPECT_EQ(policy->select(ptrs(tasks)), 1u);
}

TEST(ReadyPolicies, DsmfDoubleTieFallsBackToArrival) {
  const std::vector<grid::ReadyTask> tasks{
      make(0, 65, 60, 10, 5, 0, 7),
      make(1, 65, 60, 10, 5, 0, 3),
  };
  const auto policy = make_ready_policy("dsmf");
  EXPECT_EQ(policy->select(ptrs(tasks)), 1u);
}

TEST(ReadyPolicies, LrpmPicksLongestRpm) {
  const std::vector<grid::ReadyTask> tasks{
      make(0, 1, 80, 10, 0, 0, 0),
      make(1, 1, 115, 10, 0, 0, 1),
      make(2, 1, 60, 10, 0, 0, 2),
  };
  EXPECT_EQ(make_ready_policy("lrpm")->select(ptrs(tasks)), 1u);
}

TEST(ReadyPolicies, SlackPicksTightestDeadline) {
  const std::vector<grid::ReadyTask> tasks{
      make(0, 1, 1, 10, 35, 0, 0),
      make(1, 1, 1, 10, 0, 0, 1),
      make(2, 1, 1, 10, 5, 0, 2),
  };
  EXPECT_EQ(make_ready_policy("slack")->select(ptrs(tasks)), 1u);
}

TEST(ReadyPolicies, StfAndLtfUseLoad) {
  const std::vector<grid::ReadyTask> tasks{
      make(0, 1, 1, 500, 0, 0, 0),
      make(1, 1, 1, 100, 0, 0, 1),
      make(2, 1, 1, 900, 0, 0, 2),
  };
  EXPECT_EQ(make_ready_policy("stf")->select(ptrs(tasks)), 1u);
  EXPECT_EQ(make_ready_policy("ltf")->select(ptrs(tasks)), 2u);
}

TEST(ReadyPolicies, LsfPicksLargestSufferage) {
  const std::vector<grid::ReadyTask> tasks{
      make(0, 1, 1, 10, 0, 5, 0),
      make(1, 1, 1, 10, 0, 25, 1),
      make(2, 1, 1, 10, 0, 10, 2),
  };
  EXPECT_EQ(make_ready_policy("lsf")->select(ptrs(tasks)), 1u);
}

TEST(ReadyPolicies, FcfsPicksEarliestArrival) {
  const std::vector<grid::ReadyTask> tasks{
      make(0, 1, 99, 1, 0, 9, 5),
      make(1, 1, 1, 99, 0, 0, 2),
      make(2, 1, 50, 50, 0, 5, 9),
  };
  EXPECT_EQ(make_ready_policy("fcfs")->select(ptrs(tasks)), 1u);
}

TEST(ReadyPolicies, SingleCandidateAlwaysChosen) {
  const std::vector<grid::ReadyTask> tasks{make(0, 1, 1, 1, 0, 0, 0)};
  for (auto name : ready_policy_names()) {
    EXPECT_EQ(make_ready_policy(name)->select(ptrs(tasks)), 0u) << name;
  }
}

TEST(ReadyPolicies, EmptyCandidatesThrow) {
  EXPECT_THROW((void)make_ready_policy("dsmf")->select({}), std::logic_error);
}

TEST(ReadyPolicies, UnknownNameThrows) {
  EXPECT_THROW(make_ready_policy("nope"), std::invalid_argument);
}

TEST(ReadyPolicies, AllNamesConstructible) {
  for (auto name : ready_policy_names()) {
    const auto policy = make_ready_policy(name);
    EXPECT_EQ(policy->name(), name);
  }
}

}  // namespace
}  // namespace dpjit::core
