#include <gtest/gtest.h>

#include "core/fullahead/planner.hpp"
#include "fig3_helpers.hpp"

namespace dpjit::core {
namespace {

PlannerOracle oracle3() {
  PlannerOracle o;
  o.nodes = {
      {NodeId{0}, 0.0, 4.0, 0.0, 0},
      {NodeId{1}, 0.0, 2.0, 0.0, 0},
      {NodeId{2}, 0.0, 1.0, 0.0, 0},
  };
  o.averages = {1.0, 1.0};
  o.bandwidth = [](NodeId a, NodeId b) { return a == b ? kInf : 1.0; };

  return o;
}

void check_dependencies_precede(const dag::Workflow& wf, WorkflowId id, const Assignment& plan) {
  // Every task must be assigned, to a valid node.
  for (std::size_t t = 0; t < wf.task_count(); ++t) {
    const TaskRef ref{id, TaskIndex{static_cast<TaskIndex::underlying_type>(t)}};
    ASSERT_TRUE(plan.find(ref) != plan.end()) << "task " << t << " unplanned";
    EXPECT_TRUE(plan.at(ref).valid());
  }
}

TEST(FullAhead, HeftPlansEveryTask) {
  const auto wfa = testing::fig3_workflow_a();
  const auto wfb = testing::fig3_workflow_b();
  HeftPlanner planner;
  Assignment plan;
  const auto o = oracle3();
  planner.plan({{WorkflowId{0}, &wfa, NodeId{0}, 115.0}, {WorkflowId{1}, &wfb, NodeId{0}, 65.0}}, o, plan);
  EXPECT_EQ(plan.size(), wfa.task_count() + wfb.task_count());
  check_dependencies_precede(wfa, WorkflowId{0}, plan);
  check_dependencies_precede(wfb, WorkflowId{1}, plan);
}

TEST(FullAhead, SingleNodePlanSerializes) {
  // With one resource, the planned finish of the whole batch equals the sum
  // of execution times (no overlap possible on a timeline).
  dag::Workflow wf(WorkflowId{0});
  auto a = wf.add_task(40, 0);
  auto b = wf.add_task(40, 0);
  auto c = wf.add_task(40, 0);
  wf.add_dependency(a, b, 0);
  wf.add_dependency(a, c, 0);
  PlannerOracle o;
  o.nodes = {{NodeId{0}, 0.0, 4.0, 0.0, 0}};
  o.averages = {1.0, 1.0};
  o.bandwidth = [](NodeId, NodeId) { return kInf; };

  HeftPlanner planner;
  Assignment plan;
  planner.plan({{WorkflowId{0}, &wf, NodeId{0}, 120.0}}, o, plan);
  EXPECT_EQ(plan.size(), 3u);
  for (const auto& [ref, node] : plan) EXPECT_EQ(node, NodeId{0});
}

TEST(FullAhead, ParallelBranchesSpreadAcrossNodes) {
  // Fork of equal tasks with an idle 2-node oracle and free data movement:
  // HEFT books the branches on different nodes.
  dag::Workflow wf(WorkflowId{0});
  auto a = wf.add_task(1, 0);
  auto b = wf.add_task(100, 0);
  auto c = wf.add_task(100, 0);
  auto d = wf.add_task(1, 0);
  wf.add_dependency(a, b, 0);
  wf.add_dependency(a, c, 0);
  wf.add_dependency(b, d, 0);
  wf.add_dependency(c, d, 0);
  PlannerOracle o;
  o.nodes = {{NodeId{0}, 0.0, 1.0, 0.0, 0}, {NodeId{1}, 0.0, 1.0, 0.0, 0}};
  o.averages = {1.0, 1.0};
  o.bandwidth = [](NodeId, NodeId) { return kInf; };

  HeftPlanner planner;
  Assignment plan;
  planner.plan({{WorkflowId{0}, &wf, NodeId{0}, 202.0}}, o, plan);
  EXPECT_NE(plan.at(TaskRef{WorkflowId{0}, b}), plan.at(TaskRef{WorkflowId{0}, c}));
}

TEST(FullAhead, ExpensiveTransferKeepsTaskLocal) {
  // Huge edge data and slow links: HEFT should co-locate dependent tasks.
  dag::Workflow wf(WorkflowId{0});
  auto a = wf.add_task(100, 0);
  auto b = wf.add_task(100, 0);
  wf.add_dependency(a, b, 100000);
  PlannerOracle o;
  o.nodes = {{NodeId{0}, 0.0, 2.0, 0.0, 0}, {NodeId{1}, 0.0, 1.9, 0.0, 0}};
  o.averages = {1.0, 1.0};
  o.bandwidth = [](NodeId a2, NodeId b2) { return a2 == b2 ? kInf : 0.1; };

  HeftPlanner planner;
  Assignment plan;
  planner.plan({{WorkflowId{0}, &wf, NodeId{0}, 300.0}}, o, plan);
  EXPECT_EQ(plan.at(TaskRef{WorkflowId{0}, a}), plan.at(TaskRef{WorkflowId{0}, b}));
}

TEST(FullAhead, InitialBacklogSteersAway) {
  // Node 0 is fast but deeply backlogged; a short task goes to node 1.
  dag::Workflow wf(WorkflowId{0});
  wf.add_task(10, 0);
  PlannerOracle o;
  o.nodes = {{NodeId{0}, 100000.0, 10.0, 0.0, 0}, {NodeId{1}, 0.0, 1.0, 0.0, 0}};
  o.averages = {1.0, 1.0};
  o.bandwidth = [](NodeId, NodeId) { return kInf; };

  HeftPlanner planner;
  Assignment plan;
  planner.plan({{WorkflowId{0}, &wf, NodeId{1}, 10.0}}, o, plan);
  EXPECT_EQ(plan.at(TaskRef{WorkflowId{0}, TaskIndex{0}}), NodeId{1});
}

TEST(FullAhead, SmfPlansShorterWorkflowFirst) {
  // SMF plans the shorter workflow completely first: with one shared fast
  // node, the shorter workflow's tasks book the early slots.
  dag::Workflow longwf(WorkflowId{0});
  auto l1 = longwf.add_task(1000, 0);
  (void)l1;
  dag::Workflow shortwf(WorkflowId{1});
  auto s1 = shortwf.add_task(10, 0);
  (void)s1;
  PlannerOracle o;
  o.nodes = {{NodeId{0}, 0.0, 1.0, 0.0, 0}};
  o.averages = {1.0, 1.0};
  o.bandwidth = [](NodeId, NodeId) { return kInf; };

  SmfPlanner planner;
  Assignment plan;
  planner.plan({{WorkflowId{0}, &longwf, NodeId{0}, 1000.0}, {WorkflowId{1}, &shortwf, NodeId{0}, 10.0}}, o, plan);
  EXPECT_EQ(plan.size(), 2u);
  // Both land on the single node; the test of order is indirect but the
  // planner must not crash and must plan everything. (Order is asserted via
  // the integration tests where SMF yields the best ACT.)
}

TEST(FullAhead, IncrementalPlanningKeepsEarlierBookings) {
  dag::Workflow wf1(WorkflowId{0});
  wf1.add_task(100, 0);
  dag::Workflow wf2(WorkflowId{1});
  wf2.add_task(100, 0);
  PlannerOracle o;
  o.nodes = {{NodeId{0}, 0.0, 1.0, 0.0, 0}, {NodeId{1}, 0.0, 1.0, 0.0, 0}};
  o.averages = {1.0, 1.0};
  o.bandwidth = [](NodeId, NodeId) { return kInf; };

  HeftPlanner planner;
  Assignment plan;
  planner.plan({{WorkflowId{0}, &wf1, NodeId{0}, 100.0}}, o, plan);
  planner.plan({{WorkflowId{1}, &wf2, NodeId{0}, 100.0}}, o, plan);
  // Second call must see the first booking and use the other node.
  EXPECT_NE(plan.at(TaskRef{WorkflowId{0}, TaskIndex{0}}),
            plan.at(TaskRef{WorkflowId{1}, TaskIndex{0}}));
}

TEST(Lookahead, PlansEveryTaskLikeHeft) {
  const auto wfa = testing::fig3_workflow_a();
  const auto wfb = testing::fig3_workflow_b();
  LookaheadHeftPlanner planner;
  Assignment plan;
  const auto o = oracle3();
  planner.plan({{WorkflowId{0}, &wfa, NodeId{0}, 115.0}, {WorkflowId{1}, &wfb, NodeId{0}, 65.0}},
               o, plan);
  EXPECT_EQ(plan.size(), wfa.task_count() + wfb.task_count());
  check_dependencies_precede(wfa, WorkflowId{0}, plan);
  check_dependencies_precede(wfb, WorkflowId{1}, plan);
}

TEST(Lookahead, AvoidsNodeThatStrandsTheChild) {
  // Task a can run fast on node 0, but node 0's uplink to everywhere is
  // terrible and the child b is huge - only node 1 can run b on time, and
  // a's output is large. Plain HEFT puts a on node 0 (min EFT); lookahead
  // sees the child's transfer penalty and co-locates a with b's best node.
  dag::Workflow wf(WorkflowId{0});
  auto a = wf.add_task(100, 0);
  auto b = wf.add_task(4000, 0);
  wf.add_dependency(a, b, 10000);
  PlannerOracle o;
  o.nodes = {{NodeId{0}, 0.0, 10.0, 0.0, 0}, {NodeId{1}, 0.0, 8.0, 0.0, 0}};
  o.averages = {1.0, 1.0};
  o.bandwidth = [](NodeId x, NodeId y) { return x == y ? kInf : 0.1; };

  HeftPlanner heft;
  Assignment heft_plan;
  heft.plan({{WorkflowId{0}, &wf, NodeId{0}, 500.0}}, o, heft_plan);
  EXPECT_EQ(heft_plan.at(TaskRef{WorkflowId{0}, a}), NodeId{0}) << "HEFT greedily picks node 0";

  LookaheadHeftPlanner la;
  Assignment la_plan;
  la.plan({{WorkflowId{0}, &wf, NodeId{0}, 500.0}}, o, la_plan);
  EXPECT_EQ(la_plan.at(TaskRef{WorkflowId{0}, a}), la_plan.at(TaskRef{WorkflowId{0}, b}))
      << "lookahead co-locates parent with the child's node";
}

TEST(FullAhead, EmptyTransferTimeFnIsByteIdenticalToStaticPath) {
  // An unset PlannerOracle::transfer_time must leave planning EXACTLY the
  // classic static-bandwidth HEFT (heft/smf goldens depend on it), and a
  // transfer_time that encodes the same `size / bw` arithmetic must agree.
  const auto wfa = testing::fig3_workflow_a();
  const auto wfb = testing::fig3_workflow_b();
  const std::vector<PlanRequest> reqs = {{WorkflowId{0}, &wfa, NodeId{0}, 115.0},
                                         {WorkflowId{1}, &wfb, NodeId{0}, 65.0}};
  auto o = oracle3();
  HeftPlanner static_planner;
  Assignment static_plan;
  static_planner.plan(reqs, o, static_plan);

  auto o_live = oracle3();
  o_live.transfer_time = [&o](NodeId from, NodeId to, double mb) {
    const double bw = o.bandwidth(from, to);
    return bw > 0.0 ? mb / bw : kInf;
  };
  HeftPlanner live_planner;
  Assignment live_plan;
  live_planner.plan(reqs, o_live, live_plan);
  EXPECT_EQ(static_plan, live_plan);
}

TEST(FullAhead, TransferTimeOracleSteersAwayFromCongestedPath) {
  // One task with a 100 Mb image, home node 0 (slow CPU), node 1 fast. The
  // healthy bandwidth matrix says shipping the image to node 1 is cheap, so
  // the static planner offloads. The live oracle reports node 1's input path
  // as saturated right now - the contended planner must keep the task home.
  dag::Workflow wf(WorkflowId{0});
  auto t = wf.add_task(10, 100.0);
  PlannerOracle o;
  o.nodes = {{NodeId{0}, 0.0, 1.0, 0.0, 0}, {NodeId{1}, 0.0, 10.0, 0.0, 0}};
  o.averages = {1.0, 1.0};
  o.bandwidth = [](NodeId u, NodeId v) { return u == v ? kInf : 100.0; };

  HeftPlanner static_planner;
  Assignment static_plan;
  static_planner.plan({{WorkflowId{0}, &wf, NodeId{0}, 10.0}}, o, static_plan);
  EXPECT_EQ(static_plan.at(TaskRef{WorkflowId{0}, t}), NodeId{1});  // image 1 s, exec 1 s

  o.transfer_time = [](NodeId from, NodeId to, double mb) {
    if (from == to) return 0.0;
    // Anything flowing INTO node 1 crawls at 0.01 Mb/s right now.
    return to == NodeId{1} ? mb / 0.01 : mb / 100.0;
  };
  HeftPlanner live_planner;
  Assignment live_plan;
  live_planner.plan({{WorkflowId{0}, &wf, NodeId{0}, 10.0}}, o, live_plan);
  EXPECT_EQ(live_plan.at(TaskRef{WorkflowId{0}, t}), NodeId{0});

  LookaheadHeftPlanner la;
  Assignment la_plan;
  la.plan({{WorkflowId{0}, &wf, NodeId{0}, 10.0}}, o, la_plan);
  EXPECT_EQ(la_plan.at(TaskRef{WorkflowId{0}, t}), NodeId{0});
}

}  // namespace
}  // namespace dpjit::core
