// Dynamic-environment behaviour (paper Section IV.B) and the rescheduling
// extension (paper future work).
#include <gtest/gtest.h>

#include "exp/experiment.hpp"

namespace dpjit::exp {
namespace {

ExperimentConfig churn_config(double df, bool reschedule, std::uint64_t seed = 13) {
  ExperimentConfig cfg;
  cfg.algorithm = "dsmf";
  cfg.nodes = 40;
  cfg.workflows_per_node = 2;
  cfg.seed = seed;
  cfg.dynamic_factor = df;
  cfg.reschedule = reschedule;
  cfg.workflow.max_tasks = 12;
  cfg.workflow.min_data_mb = 10;
  cfg.workflow.max_data_mb = 100;
  return cfg;
}

TEST(ChurnIntegration, TasksFailUnderChurn) {
  const auto result = run_experiment(churn_config(0.3, false));
  EXPECT_GT(result.tasks_failed, 0u);
  EXPECT_EQ(result.tasks_rescheduled, 0u);
}

TEST(ChurnIntegration, ThroughputDegradesWithDynamicFactor) {
  const auto df0 = run_experiment(churn_config(0.0, false));
  const auto df3 = run_experiment(churn_config(0.3, false));
  EXPECT_EQ(df0.workflows_finished, df0.workflows_submitted);
  EXPECT_LT(df3.workflows_finished, df3.workflows_submitted)
      << "without rescheduling, churn must strand some workflows";
}

TEST(ChurnIntegration, FinishedWorkflowsKeepSaneMetricsUnderChurn) {
  // Paper: "each successfully finished workflow keeps relatively stable
  // finish-time and efficiency when df <= 0.2".
  const auto result = run_experiment(churn_config(0.2, false));
  if (result.workflows_finished > 0) {
    EXPECT_GT(result.act, 0.0);
    EXPECT_GT(result.ae, 0.0);
    EXPECT_LE(result.ae, 5.0);
  }
}

TEST(ChurnIntegration, ReschedulingRecoversThroughput) {
  const auto without = run_experiment(churn_config(0.3, false));
  const auto with = run_experiment(churn_config(0.3, true));
  EXPECT_GE(with.workflows_finished, without.workflows_finished);
  EXPECT_GT(with.tasks_rescheduled, 0u);
}

TEST(ChurnIntegration, ReschedulingIsNoOpWithoutChurn) {
  const auto result = run_experiment(churn_config(0.0, true));
  EXPECT_EQ(result.tasks_rescheduled, 0u);
  EXPECT_EQ(result.workflows_finished, result.workflows_submitted);
}

TEST(ChurnIntegration, HomesMustBeStable) {
  ExperimentConfig cfg = churn_config(0.2, false);
  World world(cfg);
  // Home ids >= stable_count are dynamic: submission must be rejected.
  const int dynamic_home = world.system().config().churn.stable_count;
  dag::Workflow wf;
  wf.add_task(100, 10);
  EXPECT_THROW(world.system().submit(NodeId{dynamic_home}, std::move(wf)),
               std::invalid_argument);
}

TEST(ChurnIntegration, AliveCountStaysWithinBounds) {
  ExperimentConfig cfg = churn_config(0.2, false);
  World world(cfg);
  world.run();
  const auto alive = world.system().alive_count();
  EXPECT_GE(alive, static_cast<std::size_t>(cfg.nodes) / 2);  // stable half
  EXPECT_LE(alive, static_cast<std::size_t>(cfg.nodes));
}

TEST(ChurnIntegration, DeterministicUnderChurn) {
  const auto a = run_experiment(churn_config(0.25, true, 77));
  const auto b = run_experiment(churn_config(0.25, true, 77));
  EXPECT_EQ(a.workflows_finished, b.workflows_finished);
  EXPECT_EQ(a.tasks_failed, b.tasks_failed);
  EXPECT_EQ(a.tasks_rescheduled, b.tasks_rescheduled);
  EXPECT_DOUBLE_EQ(a.act, b.act);
}

}  // namespace
}  // namespace dpjit::exp
