// End-to-end runs of the full stack (topology + gossip + dual-phase
// scheduling + transfers) at small scale, across all eight algorithms.
#include <gtest/gtest.h>

#include "core/policy_registry.hpp"
#include "exp/experiment.hpp"

namespace dpjit::exp {
namespace {

ExperimentConfig small_config(const std::string& algorithm, std::uint64_t seed = 5) {
  ExperimentConfig cfg;
  cfg.algorithm = algorithm;
  cfg.nodes = 24;
  cfg.workflows_per_node = 1;
  cfg.seed = seed;
  // Small DAGs and light data so every workflow finishes well inside 36 h.
  cfg.workflow.max_tasks = 10;
  cfg.workflow.min_data_mb = 10;
  cfg.workflow.max_data_mb = 100;
  return cfg;
}

class AllAlgorithms : public ::testing::TestWithParam<std::string> {};

TEST_P(AllAlgorithms, AllWorkflowsFinishInStaticEnvironment) {
  const auto result = run_experiment(small_config(GetParam()));
  EXPECT_EQ(result.workflows_finished, result.workflows_submitted) << GetParam();
  EXPECT_EQ(result.workflows_submitted, 24u);
  EXPECT_EQ(result.tasks_failed, 0u);
}

TEST_P(AllAlgorithms, MetricsAreSane) {
  const auto result = run_experiment(small_config(GetParam()));
  EXPECT_GT(result.act, 0.0);
  EXPECT_GT(result.ae, 0.0);
  EXPECT_LE(result.ae, 5.0);  // eft/ct stays in a physical range
  EXPECT_GE(result.mean_response, result.act);  // response includes initial wait
  EXPECT_GT(result.gossip_messages, 0u);
}

TEST_P(AllAlgorithms, DeterministicAcrossRuns) {
  const auto a = run_experiment(small_config(GetParam(), 17));
  const auto b = run_experiment(small_config(GetParam(), 17));
  EXPECT_EQ(a.workflows_finished, b.workflows_finished);
  EXPECT_DOUBLE_EQ(a.act, b.act);
  EXPECT_DOUBLE_EQ(a.ae, b.ae);
  EXPECT_EQ(a.tasks_dispatched, b.tasks_dispatched);
}

TEST_P(AllAlgorithms, SeedChangesOutcome) {
  const auto a = run_experiment(small_config(GetParam(), 1));
  const auto b = run_experiment(small_config(GetParam(), 2));
  // Different worlds: the exact ACT almost surely differs.
  EXPECT_NE(a.act, b.act);
}

INSTANTIATE_TEST_SUITE_P(Paper, AllAlgorithms,
                         ::testing::ValuesIn(dpjit::core::paper_algorithms()),
                         [](const auto& info) { return info.param; });

TEST(EndToEnd, ThroughputCurveIsMonotone) {
  const auto result = run_experiment(small_config("dsmf"));
  double prev = 0.0;
  for (const auto& p : result.throughput) {
    EXPECT_GE(p.value, prev);
    prev = p.value;
  }
  EXPECT_DOUBLE_EQ(prev, static_cast<double>(result.workflows_finished));
}

TEST(EndToEnd, FairSharingAblationStillCompletes) {
  auto cfg = small_config("dsmf");
  cfg.fair_sharing = true;
  cfg.nodes = 16;
  const auto result = run_experiment(cfg);
  EXPECT_EQ(result.workflows_finished, result.workflows_submitted);
  // Contention can only slow transfers down, never speed them up; ACT should
  // be at least that of the uncontended run.
  auto cfg2 = small_config("dsmf");
  cfg2.nodes = 16;
  const auto base = run_experiment(cfg2);
  EXPECT_GE(result.act, base.act * 0.999);
}

TEST(EndToEnd, HigherLoadFactorRaisesCompletionTime) {
  auto light = small_config("dsmf");
  auto heavy = small_config("dsmf");
  heavy.workflows_per_node = 6;
  const auto l = run_experiment(light);
  const auto h = run_experiment(heavy);
  EXPECT_GT(h.act, l.act);
}

TEST(EndToEnd, RssSizeBoundedByCache) {
  const auto result = run_experiment(small_config("dsmf"));
  EXPECT_GT(result.converged_rss_size, 1.0);
  EXPECT_LE(result.converged_rss_size, 30.0);
}

TEST(EndToEnd, ZeroWorkflowsIsValid) {
  auto cfg = small_config("dsmf");
  cfg.workflows_per_node = 0;
  const auto result = run_experiment(cfg);
  EXPECT_EQ(result.workflows_submitted, 0u);
  EXPECT_EQ(result.workflows_finished, 0u);
}

TEST(EndToEnd, UnknownAlgorithmThrows) {
  auto cfg = small_config("wat");
  EXPECT_THROW(run_experiment(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace dpjit::exp
